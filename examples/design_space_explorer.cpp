/**
 * @file
 * Design-space exploration with the public simulation API: capture
 * one workload trace, then sweep PE counts, counting-lane budgets,
 * drop rates and skip modes over it without re-running the functional
 * model — the workflow an architect would use to size a deployment.
 */

#include <iostream>

#include "common/table.hpp"
#include "core/experiment.hpp"

using namespace fastbcnn;

int
main()
{
    // One moderately sized workload, captured once.
    WorkloadConfig cfg;
    cfg.kind = ModelKind::Vgg16;
    cfg.width = 0.25;
    cfg.samples = 10;
    cfg.optimizerSamples = 3;
    cfg.evalInputs = 1;
    std::cout << "Capturing a B-VGG16 (width 0.25, T = 10) trace...\n";
    Workload w(cfg);
    const InferenceTrace &trace = w.bundles()[0].trace;
    const SimReport base = simulateBaseline(trace, baselineConfig());

    // 1. The Table I axis: PE count at a fixed MAC budget.
    std::cout << "\n1. PE count (fixed 256 MACs):\n";
    Table t1({"design", "speedup", "energy red.", "PE idle"});
    for (std::size_t tm : {8u, 16u, 32u, 64u, 128u, 256u}) {
        const AcceleratorConfig acc = fastBcnnConfig(tm);
        const SimReport fb = simulateFastBcnn(trace, acc);
        t1.addRow({acc.name, format("%.2fx", fb.speedupOver(base)),
                   format("%.0f %%",
                          100.0 * fb.energyReductionOver(base)),
                   format("%.0f %%", 100.0 * fb.peIdleFraction)});
    }
    t1.print(std::cout);

    // 2. Skip-mode ablation on the best design.
    std::cout << "\n2. Skip modes (FB-64):\n";
    Table t2({"mode", "speedup", "macs elided"});
    for (auto [name, mode] :
         {std::pair{"dropped only", SkipMode::DroppedOnly},
          {"unaffected only", SkipMode::UnaffectedOnly},
          {"both (Fast-BCNN)", SkipMode::Full}}) {
        SimOptions opts;
        opts.mode = mode;
        const SimReport fb = simulateFastBcnn(trace, fastBcnnConfig(64),
                                              opts);
        t2.addRow({name, format("%.2fx", fb.speedupOver(base)),
                   format("%.1f %%",
                          100.0 * static_cast<double>(fb.macsElided) /
                              static_cast<double>(fb.macsElided +
                                                  fb.macsComputed))});
    }
    t2.print(std::cout);

    // 3. Memory-bandwidth sensitivity.
    std::cout << "\n3. DRAM bandwidth sensitivity (FB-64):\n";
    Table t3({"bytes/cycle", "speedup", "bound"});
    for (double bpc : {4.0, 16.0, 64.0, 256.0}) {
        AcceleratorConfig acc = fastBcnnConfig(64);
        acc.dramBytesPerCycle = bpc;
        AcceleratorConfig bacc = baselineConfig();
        bacc.dramBytesPerCycle = bpc;
        const SimReport fb = simulateFastBcnn(trace, acc);
        const SimReport bl = simulateBaseline(trace, bacc);
        std::uint64_t dram_stall = 0;
        for (const LayerSimStats &l : fb.layers)
            dram_stall += l.dramStall;
        t3.addRow({format("%.0f", bpc),
                   format("%.2fx", fb.speedupOver(bl)),
                   dram_stall > 0 ? "memory" : "compute"});
    }
    t3.print(std::cout);

    std::cout << "\nThe captured trace was reused across "
                 "every configuration — no functional re-execution.\n";
    return 0;
}
