/**
 * @file
 * Uncertainty-gated triage, the workload that motivates BCNNs in the
 * paper's introduction (Leibig et al.'s diabetic-retinopathy triage):
 * a classifier defers to a human expert whenever its MC-dropout
 * predictive entropy exceeds a tolerance.  The example shows that
 * (a) deferring the most-uncertain cases removes a large share of the
 * would-be mistakes, and (b) Fast-BCNN's skipping leaves the referral
 * decisions essentially unchanged while cutting the accelerator time
 * per case.
 *
 * Labels come from the exact BCNN's own consensus on clean images, so
 * "mistake" means "the noisy-case prediction disagrees with the clean
 * consensus" — the standard proxy when no trained checkpoint exists
 * (DESIGN.md §2).
 */

#include <algorithm>
#include <iostream>
#include <random>

#include "common/table.hpp"
#include "core/engine.hpp"
#include "data/synthetic.hpp"
#include "models/zoo.hpp"

using namespace fastbcnn;

namespace {

/** Degrade an image with heavy noise (the "hard cases"). */
Tensor
degrade(const Tensor &img, double noise, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::normal_distribution<float> g(0.0f,
                                      static_cast<float>(noise));
    Tensor out = img;
    for (float &v : out.data())
        v = std::clamp(v + g(rng), 0.0f, 1.0f);
    return out;
}

} // namespace

int
main()
{
    ModelOptions mopts;
    mopts.dropRate = 0.3;
    Network net = buildLenet5(mopts);
    calibrateSparsity(net, {makeMnistLikeImage(0, 11),
                            makeMnistLikeImage(4, 12)});

    EngineOptions eopts;
    eopts.mc.samples = 40;
    FastBcnnEngine engine(std::move(net), eopts);
    engine.calibrate({makeMnistLikeImage(2, 13)});

    constexpr std::size_t cases = 24;
    struct Case {
        std::size_t id;
        std::size_t reference;  // clean-image consensus class
        EngineResult result;    // noisy-image inference
    };
    std::vector<Case> triage;

    std::cout << "Screening " << cases << " cases (half degraded by "
                 "sensor noise)...\n";
    double cycles_fb = 0.0, cycles_base = 0.0;
    for (std::size_t i = 0; i < cases; ++i) {
        const std::size_t label = i % 10;
        const Tensor clean = makeMnistLikeImage(label, 100 + i);
        const Tensor presented =
            i % 2 == 1 ? degrade(clean, 0.45, 200 + i) : clean;

        EngineResult ref = engine.infer(clean);
        EngineResult res = engine.infer(presented);
        cycles_fb += res.fastBcnn.cyclesPerSample;
        cycles_base += res.baseline.cyclesPerSample;
        triage.push_back(Case{i, ref.prediction.argmax,
                              std::move(res)});
    }

    // Refer the top-q most-uncertain cases by predictive entropy (the
    // operating rule a screening pipeline actually uses: the expert
    // budget fixes the referral fraction, the uncertainty ranks).
    std::vector<const Case *> by_entropy;
    for (const Case &c : triage)
        by_entropy.push_back(&c);
    std::sort(by_entropy.begin(), by_entropy.end(),
              [](const Case *a, const Case *b) {
                  return a->result.prediction.predictiveEntropy >
                         b->result.prediction.predictiveEntropy;
              });
    std::size_t base_mistakes = 0;
    for (const Case &c : triage) {
        base_mistakes +=
            c.result.prediction.argmax != c.reference ? 1 : 0;
    }

    Table t({"referral budget", "referred", "kept mistakes",
             "mistakes avoided", "random referral would avoid"});
    for (double q : {0.25, 0.5, 0.75}) {
        const std::size_t referred = static_cast<std::size_t>(
            q * static_cast<double>(by_entropy.size()));
        std::size_t kept_mistakes = 0;
        for (std::size_t i = referred; i < by_entropy.size(); ++i) {
            const Case &c = *by_entropy[i];
            kept_mistakes +=
                c.result.prediction.argmax != c.reference ? 1 : 0;
        }
        const double avoided =
            base_mistakes == 0
                ? 0.0
                : 100.0 *
                      static_cast<double>(base_mistakes -
                                          kept_mistakes) /
                      static_cast<double>(base_mistakes);
        t.addRow({format("%.0f %%", 100.0 * q),
                  format("%zu", referred),
                  format("%zu / %zu", kept_mistakes, base_mistakes),
                  format("%.0f %%", avoided),
                  format("%.0f %%", 100.0 * q)});
    }
    t.print(std::cout);
    std::cout << "(cf. the paper's motivation: ~80 % of prediction "
                 "mistakes avoided under a low uncertainty "
                 "tolerance)\n\n";

    std::cout << format("accelerator cost per case: Fast-BCNN64 %.0f "
                        "cycles/sample vs baseline %.0f (%.1fx "
                        "faster)\n",
                        cycles_fb / cases, cycles_base / cases,
                        cycles_base / cycles_fb);
    return 0;
}
