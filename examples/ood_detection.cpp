/**
 * @file
 * Out-of-distribution detection with MC-dropout uncertainty — the
 * self-driving scenario from the paper's introduction (an unfamiliar
 * input should raise uncertainty rather than an overconfident
 * decision).  In-distribution inputs are the MNIST-like strokes the
 * model's thresholds were calibrated on; out-of-distribution inputs
 * are CIFAR-like textures resized into the same frame and pure noise.
 *
 * The example verifies the epistemic-uncertainty signal (mutual
 * information) separates the two populations, and that Fast-BCNN's
 * neuron skipping preserves the separation.
 */

#include <algorithm>
#include <iostream>
#include <random>

#include "common/table.hpp"
#include "core/engine.hpp"
#include "data/synthetic.hpp"
#include "models/zoo.hpp"

using namespace fastbcnn;

namespace {

/** Collapse a CIFAR-like texture into the 1x28x28 MNIST frame. */
Tensor
textureAsDigitFrame(std::size_t label, std::uint64_t seed)
{
    const Tensor rgb = makeCifarLikeImage(label, seed);
    Tensor out(Shape({1, 28, 28}));
    for (std::size_t r = 0; r < 28; ++r) {
        for (std::size_t c = 0; c < 28; ++c) {
            float v = 0.0f;
            for (std::size_t ch = 0; ch < 3; ++ch)
                v += rgb(ch, r + 2, c + 2);
            out(0, r, c) = std::clamp(0.5f + v / 6.0f, 0.0f, 1.0f);
        }
    }
    return out;
}

Tensor
noiseFrame(std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<float> u(0.0f, 1.0f);
    Tensor out(Shape({1, 28, 28}));
    for (float &v : out.data())
        v = u(rng);
    return out;
}

struct Stats {
    double meanEntropy = 0.0;
    double meanMi = 0.0;
};

} // namespace

int
main()
{
    ModelOptions mopts;
    Network net = buildLenet5(mopts);
    calibrateSparsity(net, {makeMnistLikeImage(0, 31),
                            makeMnistLikeImage(6, 32)});

    EngineOptions eopts;
    eopts.mc.samples = 40;
    FastBcnnEngine engine(std::move(net), eopts);
    engine.calibrate({makeMnistLikeImage(3, 33)});

    constexpr std::size_t per_group = 8;
    auto evaluate = [&](const char *group,
                        const std::function<Tensor(std::size_t)> &gen,
                        Table &table) {
        Stats s;
        for (std::size_t i = 0; i < per_group; ++i) {
            const EngineResult r = engine.infer(gen(i));
            s.meanEntropy += r.prediction.predictiveEntropy /
                             per_group;
            s.meanMi += r.prediction.mutualInformation / per_group;
        }
        table.addRow({group, format("%.3f", s.meanEntropy),
                      format("%.4f", s.meanMi)});
        return s;
    };

    Table t({"input population", "predictive entropy (nats)",
             "mutual information"});
    const Stats in_dist = evaluate(
        "in-distribution strokes",
        [](std::size_t i) {
            return makeMnistLikeImage(i % 10, 400 + i);
        },
        t);
    const Stats textures = evaluate(
        "OOD textures",
        [](std::size_t i) { return textureAsDigitFrame(i, 500 + i); },
        t);
    const Stats noise = evaluate(
        "OOD uniform noise",
        [](std::size_t i) { return noiseFrame(600 + i); }, t);
    t.print(std::cout);

    std::cout << format("\nepistemic gap vs in-distribution MI: "
                        "textures %.2fx, noise %.2fx\n",
                        in_dist.meanMi > 0.0
                            ? textures.meanMi / in_dist.meanMi : 0.0,
                        in_dist.meanMi > 0.0
                            ? noise.meanMi / in_dist.meanMi : 0.0);
    std::cout << "A deployment would gate decisions on this signal "
                 "instead of trusting an overconfident point "
                 "estimate — the failure mode the paper's "
                 "introduction describes.\n";
    return 0;
}
