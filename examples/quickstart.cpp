/**
 * @file
 * Quickstart: build a Bayesian LeNet-5, calibrate the skipping
 * thresholds offline, run one uncertainty-aware inference and print
 * the prediction, the uncertainty, the neuron census and the
 * speedup/energy win of Fast-BCNN over the baseline accelerator.
 *
 * Flags (each tunes the MC-dropout run; see serve/ for the full
 * serving treatment of the same knobs):
 *   --threads N       parallel MC sampling threads (0 = hardware)
 *   --deadline-ms D   latency budget; late samples are not launched
 *                     and the run degrades to the survivors
 *   --quorum Q        minimum surviving samples for a usable result
 *   --audit-rate R    shadow-audit fraction of skipped neurons; any
 *                     R > 0 enables the skip guard and prints a
 *                     guard summary after the guarded run
 *   --checkpoint-format {text,binary}
 *                     demo the checkpoint pipeline: atomically save
 *                     the model in that format, reload it into a
 *                     fresh network, and print the integrity audit
 *   --simd {scalar,sse4,avx2}
 *                     force a SIMD dispatch level (default: strongest
 *                     the CPU supports; outputs are bit-identical at
 *                     every level)
 *   --precision {f32,int8}
 *                     numeric path for the MC reference; int8 builds
 *                     the engine's quantized mirror during calibration
 *                     and prints a side-by-side f32-vs-int8 comparison
 *                     (posterior mean/variance, zero/skip rates)
 *   --target-ci-width W
 *                     adaptive early exit: stop sampling once the
 *                     predictive-mean 95 % CI is narrower than W
 *                     (deterministic checkpoints; 0 = fixed T)
 *   --min-samples M   floor on samples before the early exit may stop
 *   --sample-budget B hard clamp on samples launched (the serving
 *                     brownout's lever; 0 = no clamp)
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/engine.hpp"
#include "data/synthetic.hpp"
#include "models/zoo.hpp"
#include "nn/checkpoint.hpp"
#include "simd/simd.hpp"
#include "skip/predictor.hpp"

using namespace fastbcnn;

namespace {

/** Parse "--flag value" pairs; exits with usage on a bad flag. */
struct CliOptions {
    std::size_t threads = 1;
    double deadlineMs = 0.0;  // 0 = no deadline
    std::size_t quorum = 0;   // 0 = any survivor suffices
    double auditRate = 0.0;   // 0 = guard off
    std::string checkpointFormat;  // empty = skip the demo
    std::string simdLevel;    // empty = strongest available
    Precision precision = Precision::Float32;
    double targetCiWidth = 0.0;   // 0 = fixed-T sampling
    std::size_t minSamples = 0;   // adaptive floor
    std::size_t sampleBudget = 0; // 0 = no clamp
};

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions cli;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << flag << " needs a value\n";
                // NOLINTNEXTLINE-FASTBCNN(error-discipline): CLI arg-parse exit
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--threads") {
            cli.threads = std::stoul(value());
        } else if (flag == "--deadline-ms") {
            cli.deadlineMs = std::stod(value());
        } else if (flag == "--quorum") {
            cli.quorum = std::stoul(value());
        } else if (flag == "--audit-rate") {
            cli.auditRate = std::stod(value());
        } else if (flag == "--checkpoint-format") {
            cli.checkpointFormat = value();
            if (cli.checkpointFormat != "text" &&
                cli.checkpointFormat != "binary") {
                std::cerr << "--checkpoint-format must be 'text' or "
                             "'binary'\n";
                // NOLINTNEXTLINE-FASTBCNN(error-discipline): CLI arg-parse exit
                std::exit(2);
            }
        } else if (flag == "--simd") {
            cli.simdLevel = value();
            simd::SimdLevel parsed;
            if (!simd::simdLevelFromName(cli.simdLevel, parsed)) {
                std::cerr << "--simd must be 'scalar', 'sse4' or "
                             "'avx2'\n";
                // NOLINTNEXTLINE-FASTBCNN(error-discipline): CLI arg-parse exit
                std::exit(2);
            }
        } else if (flag == "--precision") {
            if (!precisionFromName(value().c_str(),
                                   &cli.precision)) {
                std::cerr << "--precision must be 'f32' or 'int8'\n";
                // NOLINTNEXTLINE-FASTBCNN(error-discipline): CLI arg-parse exit
                std::exit(2);
            }
        } else if (flag == "--target-ci-width") {
            cli.targetCiWidth = std::stod(value());
        } else if (flag == "--min-samples") {
            cli.minSamples = std::stoul(value());
        } else if (flag == "--sample-budget") {
            cli.sampleBudget = std::stoul(value());
        } else {
            std::cerr << "usage: quickstart [--threads N] "
                         "[--deadline-ms D] [--quorum Q] "
                         "[--audit-rate R] "
                         "[--checkpoint-format text|binary] "
                         "[--simd scalar|sse4|avx2] "
                         "[--precision f32|int8] "
                         "[--target-ci-width W] [--min-samples M] "
                         "[--sample-budget B]\n";
            // NOLINTNEXTLINE-FASTBCNN(error-discipline): CLI usage exit
            std::exit(flag == "--help" ? 0 : 2);
        }
    }
    return cli;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions cli = parseArgs(argc, argv);

    // 0. SIMD dispatch: report what the CPU gives us and honor the
    //    --simd override (the kernels are bit-identical at every
    //    level, so this only changes speed).
    if (!cli.simdLevel.empty()) {
        simd::SimdLevel requested;
        simd::simdLevelFromName(cli.simdLevel, requested);
        simd::setLevel(requested);
    }
    std::cout << "SIMD: detected "
              << simd::simdLevelName(simd::detectedLevel())
              << ", running "
              << simd::simdLevelName(simd::activeLevel()) << "\n";

    // 1. Build the model: LeNet-5 with a dropout layer after every
    //    convolution (the BCNN construction, drop rate 0.3).
    ModelOptions mopts;
    mopts.dropRate = 0.3;
    Network net = buildLenet5(mopts);
    std::cout << "Model: " << net.name() << " ("
              << net.totalMacs() << " MACs per dense inference)\n";

    // Give the synthetic weights trained-network activation
    // statistics (~60 % post-ReLU zeros with shallow zeros).
    calibrateSparsity(net, {makeMnistLikeImage(0, 1),
                            makeMnistLikeImage(5, 2)});

    // 1b. With --checkpoint-format: the checkpoint pipeline the
    //     serving stack uses for hot-swaps.  The save is atomic (temp
    //     file + fsync + rename), the reload auto-detects the format
    //     and re-checks every CRC before a single weight is touched.
    if (!cli.checkpointFormat.empty()) {
        const CheckpointFormat fmt =
            cli.checkpointFormat == "binary" ? CheckpointFormat::Binary
                                             : CheckpointFormat::Text;
        const std::string path =
            std::string("quickstart_ckpt.") +
            (fmt == CheckpointFormat::Binary ? "bin" : "txt");
        const Status saved = trySaveCheckpointFile(net, path, fmt);
        if (!saved.isOk()) {
            std::cerr << "checkpoint save failed: " << saved.toString()
                      << "\n";
            return 1;
        }
        Network reloaded = buildLenet5(mopts);
        const Expected<CheckpointFormat> loaded =
            tryLoadCheckpointFile(reloaded, path);
        if (!loaded.hasValue()) {
            std::cerr << "checkpoint reload failed: "
                      << loaded.error().toString() << "\n";
            return 1;
        }
        std::cout << format(
            "Checkpoint round-trip: wrote %s, reloaded as %s format "
            "with every CRC verified\n", path.c_str(),
            checkpointFormatName(loaded.value()));
        std::remove(path.c_str());
    }

    // 2. Wrap it in the engine: 50 MC-dropout samples on the
    //    Fast-BCNN64 design point, thresholds tuned to p_cf = 68 %.
    EngineOptions eopts;
    eopts.mc.samples = 50;
    eopts.mc.threads = cli.threads;
    eopts.mc.deadlineMs = cli.deadlineMs;
    eopts.mc.quorum = cli.quorum;
    eopts.mc.targetCiWidth = cli.targetCiWidth;
    eopts.mc.minSamples = cli.minSamples;
    eopts.mc.sampleBudget = cli.sampleBudget;
    // int8 makes calibrate() also build the quantized mirror.
    eopts.mc.precision = cli.precision;
    eopts.optimizer.confidence = 0.68;
    if (cli.auditRate > 0.0) {
        eopts.guard.enabled = true;
        eopts.guard.audit.rate = cli.auditRate;
    }
    FastBcnnEngine engine(std::move(net), eopts);
    std::cout << format("MC config: T = %zu, threads = %zu",
                        eopts.mc.samples, cli.threads);
    if (cli.deadlineMs > 0.0)
        std::cout << format(", deadline %.1f ms", cli.deadlineMs);
    if (cli.quorum > 0)
        std::cout << format(", quorum %zu", cli.quorum);
    if (cli.targetCiWidth > 0.0)
        std::cout << format(", target CI width %.4g",
                            cli.targetCiWidth);
    if (cli.minSamples > 0)
        std::cout << format(", min samples %zu", cli.minSamples);
    if (cli.sampleBudget > 0)
        std::cout << format(", sample budget %zu", cli.sampleBudget);
    std::cout << "\n";

    // 3. Offline stage: Algorithm 1 on a small calibration set.
    const Dataset calib = makeDataset(true, 10, 2, 42);
    std::vector<Tensor> calib_inputs;
    for (const Example &e : calib.examples)
        calib_inputs.push_back(e.image);
    engine.calibrate(calib_inputs);
    std::cout << "Calibrated " << engine.tuneReports().size()
              << " conv blocks (mean alpha per block:";
    for (const BlockTuneReport &r : engine.tuneReports())
        std::cout << ' ' << format("%.1f", r.meanAlpha);
    std::cout << ")\n\n";

    // 4. One inference with uncertainty.  tryInfer() reports deadline
    //    and quorum failures as recoverable errors instead of
    //    aborting, so a too-tight budget prints a diagnosis.
    const Tensor input = makeMnistLikeImage(3, 7);
    Expected<EngineResult> inferred = engine.tryInfer(input);
    if (!inferred.hasValue()) {
        std::cerr << "inference failed ["
                  << errorCodeName(inferred.error().code())
                  << "]: " << inferred.error().message() << "\n";
        return 1;
    }
    EngineResult result = std::move(inferred).value();

    std::cout << "Prediction: class " << result.prediction.argmax
              << format(" (p = %.3f)", result.prediction.maxProbability)
              << format(", predictive entropy %.3f nats",
                        result.prediction.predictiveEntropy)
              << format(", mutual information %.4f\n",
                        result.prediction.mutualInformation);
    std::cout << "Exact MC-dropout reference agrees on argmax: "
              << (result.argmaxAgrees ? "yes" : "no") << "\n\n";

    Table census({"layer", "zero", "unaffected", "dropped",
                  "predicted", "skipped", "pred-acc"});
    for (const BlockCensus &c : result.census) {
        census.addRow({c.name, format("%.2f", c.zeroRatio),
                       format("%.2f", c.unaffectedRatio),
                       format("%.2f", c.droppedRatio),
                       format("%.2f", c.predictedRatio),
                       format("%.2f", c.skipRatio),
                       format("%.2f", c.predictionAccuracy)});
    }
    census.print(std::cout);

    std::cout << format("\nFast-BCNN64: %.0f cycles/sample, "
                        "%.1f uJ/sample\n",
                        result.fastBcnn.cyclesPerSample,
                        result.fastBcnn.energyPerSampleNj / 1000.0);
    std::cout << format("Baseline:    %.0f cycles/sample, "
                        "%.1f uJ/sample\n",
                        result.baseline.cyclesPerSample,
                        result.baseline.energyPerSampleNj / 1000.0);
    std::cout << format("Speedup %.2fx, energy reduction %.0f%%, "
                        "PE idle %.1f%%\n",
                        result.speedup, 100.0 * result.energyReduction,
                        100.0 * result.fastBcnn.peIdleFraction);

    // 5. The exact MC-dropout reference under the latency budget.
    //    --deadline-ms stops launching samples when the budget runs
    //    out (the run degrades to the survivors) and --quorum sets
    //    the floor below which the result is an error, not an answer.
    Expected<McResult> reference = engine.tryMcReference(input);
    if (!reference.hasValue()) {
        std::cerr << "\nMC reference failed ["
                  << errorCodeName(reference.error().code())
                  << "]: " << reference.error().message() << "\n";
        return 1;
    }
    const DegradationCensus &census2 = reference.value().census;
    std::cout << format("\nMC reference (%s): %zu of %zu samples "
                        "survived",
                        precisionName(cli.precision),
                        census2.survived, census2.requested)
              << (census2.degraded ? " (degraded by the deadline)"
                                   : "")
              << "\n";
    if (census2.converged) {
        std::cout << format(
            "Adaptive early exit: converged at T' = %zu of %zu "
            "(95%% CI width %.4g <= target %.4g)\n",
            census2.convergedAt, census2.requested, census2.ciWidth,
            cli.targetCiWidth);
    } else if (cli.targetCiWidth > 0.0) {
        std::cout << format(
            "Adaptive early exit: never converged (CI width %.4g > "
            "target %.4g at the final checkpoint); ran the full "
            "budget of %zu\n",
            census2.ciWidth, cli.targetCiWidth, census2.budget);
    }
    if (census2.budget < census2.requested) {
        std::cout << format(
            "Sample budget clamped the run to %zu of %zu samples\n",
            census2.budget, census2.requested);
    }

    // 5b. With --precision int8: the same MC reference on both
    //     numeric paths, side by side.  The masks are identical
    //     (same seed, same per-sample BRNG), so every difference
    //     below is quantization, not sampling noise.  "zero rate" is
    //     the pre-inference zero-map density — the quantity Eq. 5
    //     skipping feeds on — and skip rates come from the census of
    //     the skipping run above.
    if (cli.precision == Precision::Int8) {
        McOptions f32mc = engine.options().mc;
        f32mc.precision = Precision::Float32;
        Expected<McResult> f32ref =
            engine.tryMcReference(input, f32mc);
        if (!f32ref.hasValue()) {
            std::cerr << "f32 MC reference failed: "
                      << f32ref.error().toString() << "\n";
            return 1;
        }
        const UncertaintySummary &sf = f32ref.value().summary;
        const UncertaintySummary &sq = reference.value().summary;

        const ZeroMaps zf =
            computeZeroMaps(engine.topology(), input);
        const std::map<NodeId, BitVolume> zq =
            engine.quantized()->computeZeroMaps(input);
        std::size_t zf_set = 0, zq_set = 0, z_total = 0;
        for (const auto &[conv, map] : zf) {
            const BitVolume &qmap = zq.at(conv);
            z_total += map.size();
            for (std::size_t i = 0; i < map.size(); ++i) {
                zf_set += map.getFlat(i) ? 1 : 0;
                zq_set += qmap.getFlat(i) ? 1 : 0;
            }
        }
        double mean_skip = 0.0;
        for (const BlockCensus &c : result.census)
            mean_skip += c.skipRatio;
        mean_skip /= static_cast<double>(result.census.size());

        std::cout << "\nf32 vs int8 on the same masks:\n";
        Table side({"path", "argmax", "mean[argmax]", "var[argmax]",
                    "zero rate", "skip rate"});
        const auto row = [&](const char *path,
                             const UncertaintySummary &s,
                             std::size_t zeros) {
            side.addRow(
                {path, format("%zu", s.argmax),
                 format("%.4f", s.mean.at(s.argmax)),
                 format("%.6f", s.variance.at(s.argmax)),
                 format("%.3f", static_cast<double>(zeros) /
                                    static_cast<double>(z_total)),
                 format("%.3f", mean_skip)});
        };
        row("f32", sf, zf_set);
        row("int8", sq, zq_set);
        side.print(std::cout);
        double max_mean_diff = 0.0;
        for (std::size_t i = 0; i < sf.mean.numel(); ++i) {
            const double d = std::abs(
                static_cast<double>(sf.mean.at(i)) - sq.mean.at(i));
            if (d > max_mean_diff)
                max_mean_diff = d;
        }
        std::cout << format("max |mean diff| %.5f, argmax %s\n",
                            max_mean_diff,
                            sf.argmax == sq.argmax ? "agrees"
                                                   : "DISAGREES");
    }

    // 6. With --audit-rate, re-run through the guarded predictive
    //    path: a shadow audit re-computes a sample of the skipped
    //    neurons and the guard backs a kernel's alpha off when its
    //    mispredict rate confidently exceeds the calibrated budget.
    if (cli.auditRate > 0.0) {
        Expected<GuardedMcResult> guarded = engine.tryGuardedMc(input);
        if (!guarded.hasValue()) {
            std::cerr << "guarded run failed ["
                      << errorCodeName(guarded.error().code())
                      << "]: " << guarded.error().message() << "\n";
            return 1;
        }
        const GuardSnapshot &snap = guarded.value().finalSnapshot;
        std::cout << format(
            "\nSkip guard (audit rate %.3f, tolerance %.3f): "
            "%llu of %llu audited neurons mispredicted\n",
            cli.auditRate, snap.tolerance,
            static_cast<unsigned long long>(snap.mispredictedNeurons),
            static_cast<unsigned long long>(snap.auditedNeurons));
        std::cout << format(
            "Guard events: %llu backoffs, %llu disables, %llu probes, "
            "%llu recoveries (%zu kernels degraded)\n",
            static_cast<unsigned long long>(snap.backoffs),
            static_cast<unsigned long long>(snap.disables),
            static_cast<unsigned long long>(snap.probes),
            static_cast<unsigned long long>(snap.recoveries),
            snap.degradedKernels);
        if (snap.degradedKernels == 0) {
            std::cout << "All kernels healthy: every alpha is at its "
                         "calibrated value.\n";
        } else {
            Table guardTable({"conv", "kernel", "alpha", "calibrated",
                              "audited", "mispred-rate"});
            for (const KernelGuardStatus &k : snap.kernels) {
                if (k.healthy)
                    continue;  // only the backed-off kernels matter
                guardTable.addRow(
                    {format("%zu", k.conv), format("%zu", k.kernel),
                     format("%d", k.currentAlpha),
                     format("%d", k.calibratedAlpha),
                     format("%llu",
                            static_cast<unsigned long long>(k.audited)),
                     format("%.4f", k.mispredictRate)});
            }
            guardTable.print(std::cout);
        }
    }
    return 0;
}
