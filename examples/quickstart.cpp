/**
 * @file
 * Quickstart: build a Bayesian LeNet-5, calibrate the skipping
 * thresholds offline, run one uncertainty-aware inference and print
 * the prediction, the uncertainty, the neuron census and the
 * speedup/energy win of Fast-BCNN over the baseline accelerator.
 */

#include <iostream>

#include "common/table.hpp"
#include "core/engine.hpp"
#include "data/synthetic.hpp"
#include "models/zoo.hpp"

using namespace fastbcnn;

int
main()
{
    // 1. Build the model: LeNet-5 with a dropout layer after every
    //    convolution (the BCNN construction, drop rate 0.3).
    ModelOptions mopts;
    mopts.dropRate = 0.3;
    Network net = buildLenet5(mopts);
    std::cout << "Model: " << net.name() << " ("
              << net.totalMacs() << " MACs per dense inference)\n";

    // Give the synthetic weights trained-network activation
    // statistics (~60 % post-ReLU zeros with shallow zeros).
    calibrateSparsity(net, {makeMnistLikeImage(0, 1),
                            makeMnistLikeImage(5, 2)});

    // 2. Wrap it in the engine: 50 MC-dropout samples on the
    //    Fast-BCNN64 design point, thresholds tuned to p_cf = 68 %.
    EngineOptions eopts;
    eopts.mc.samples = 50;
    eopts.optimizer.confidence = 0.68;
    FastBcnnEngine engine(std::move(net), eopts);

    // 3. Offline stage: Algorithm 1 on a small calibration set.
    const Dataset calib = makeDataset(true, 10, 2, 42);
    std::vector<Tensor> calib_inputs;
    for (const Example &e : calib.examples)
        calib_inputs.push_back(e.image);
    engine.calibrate(calib_inputs);
    std::cout << "Calibrated " << engine.tuneReports().size()
              << " conv blocks (mean alpha per block:";
    for (const BlockTuneReport &r : engine.tuneReports())
        std::cout << ' ' << format("%.1f", r.meanAlpha);
    std::cout << ")\n\n";

    // 4. One inference with uncertainty.
    const Tensor input = makeMnistLikeImage(3, 7);
    EngineResult result = engine.infer(input);

    std::cout << "Prediction: class " << result.prediction.argmax
              << format(" (p = %.3f)", result.prediction.maxProbability)
              << format(", predictive entropy %.3f nats",
                        result.prediction.predictiveEntropy)
              << format(", mutual information %.4f\n",
                        result.prediction.mutualInformation);
    std::cout << "Exact MC-dropout reference agrees on argmax: "
              << (result.argmaxAgrees ? "yes" : "no") << "\n\n";

    Table census({"layer", "zero", "unaffected", "dropped",
                  "predicted", "skipped", "pred-acc"});
    for (const BlockCensus &c : result.census) {
        census.addRow({c.name, format("%.2f", c.zeroRatio),
                       format("%.2f", c.unaffectedRatio),
                       format("%.2f", c.droppedRatio),
                       format("%.2f", c.predictedRatio),
                       format("%.2f", c.skipRatio),
                       format("%.2f", c.predictionAccuracy)});
    }
    census.print(std::cout);

    std::cout << format("\nFast-BCNN64: %.0f cycles/sample, "
                        "%.1f uJ/sample\n",
                        result.fastBcnn.cyclesPerSample,
                        result.fastBcnn.energyPerSampleNj / 1000.0);
    std::cout << format("Baseline:    %.0f cycles/sample, "
                        "%.1f uJ/sample\n",
                        result.baseline.cyclesPerSample,
                        result.baseline.energyPerSampleNj / 1000.0);
    std::cout << format("Speedup %.2fx, energy reduction %.0f%%, "
                        "PE idle %.1f%%\n",
                        result.speedup, 100.0 * result.energyReduction,
                        100.0 * result.fastBcnn.peIdleFraction);
    return 0;
}
