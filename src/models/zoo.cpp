#include "zoo.hpp"

#include <cmath>

#include "common/table.hpp"
#include "nn/activations.hpp"
#include "nn/concat.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/pooling.hpp"

namespace fastbcnn {

namespace {

/** Apply the width multiplier, never scaling below one channel. */
std::size_t
scaled(std::size_t channels, double w)
{
    const auto s = static_cast<std::size_t>(
        std::llround(static_cast<double>(channels) * w));
    return std::max<std::size_t>(1, s);
}

/**
 * Append a Bayesian conv block (conv → ReLU → dropout) and return the
 * dropout node, the block's output.
 */
NodeId
addConvBlock(Network &net, const std::string &prefix,
             std::size_t in_ch, std::size_t out_ch, std::size_t k,
             std::size_t stride, std::size_t pad, double drop_rate,
             NodeId from)
{
    NodeId conv = net.add(std::make_unique<Conv2d>(
                              prefix + "_conv", in_ch, out_ch, k,
                              stride, pad),
                          {from});
    NodeId relu = net.add(std::make_unique<ReLU>(prefix + "_relu"),
                          {conv});
    return net.add(std::make_unique<Dropout>(prefix + "_drop",
                                             drop_rate),
                   {relu});
}

/** Channel recipe of one inception module (GoogLeNet Table 1). */
struct InceptionSpec {
    const char *name;
    std::size_t c1, c3r, c3, c5r, c5, pp;
};

/** Append an inception module; returns the concat node. */
NodeId
addInception(Network &net, const InceptionSpec &spec, std::size_t in_ch,
             double width, double drop_rate, NodeId from)
{
    const std::string &p = spec.name;
    const NodeId b1 = addConvBlock(net, p + "_1x1", in_ch,
                                   scaled(spec.c1, width), 1, 1, 0,
                                   drop_rate, from);
    const NodeId b2r = addConvBlock(net, p + "_3x3r", in_ch,
                                    scaled(spec.c3r, width), 1, 1, 0,
                                    drop_rate, from);
    const NodeId b2 = addConvBlock(net, p + "_3x3",
                                   scaled(spec.c3r, width),
                                   scaled(spec.c3, width), 3, 1, 1,
                                   drop_rate, b2r);
    const NodeId b3r = addConvBlock(net, p + "_5x5r", in_ch,
                                    scaled(spec.c5r, width), 1, 1, 0,
                                    drop_rate, from);
    const NodeId b3 = addConvBlock(net, p + "_5x5",
                                   scaled(spec.c5r, width),
                                   scaled(spec.c5, width), 5, 1, 2,
                                   drop_rate, b3r);
    const NodeId pool = net.add(std::make_unique<MaxPool2d>(
                                    p + "_pool", 3, 1, 1),
                                {from});
    const NodeId b4 = addConvBlock(net, p + "_poolproj",
                                   in_ch, scaled(spec.pp, width), 1, 1,
                                   0, drop_rate, pool);
    return net.add(std::make_unique<Concat>(p + "_concat", 4),
                   {b1, b2, b3, b4});
}

/** Output channels of an inception module after width scaling. */
std::size_t
inceptionOut(const InceptionSpec &spec, double width)
{
    return scaled(spec.c1, width) + scaled(spec.c3, width) +
           scaled(spec.c5, width) + scaled(spec.pp, width);
}

} // namespace

const char *
modelKindName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::LeNet5: return "B-LeNet-5";
      case ModelKind::Vgg16: return "B-VGG16";
      case ModelKind::GoogLeNet: return "B-GoogLeNet";
    }
    panic("unknown ModelKind %d", static_cast<int>(kind));
}

Network
buildLenet5(const ModelOptions &opts)
{
    const double w = opts.widthMultiplier;
    Network net("B-LeNet-5", Shape({1, 28, 28}));
    NodeId x = addConvBlock(net, "c1", 1, scaled(6, w), 5, 1, 2,
                            opts.dropRate, Network::inputNode);
    x = net.add(std::make_unique<MaxPool2d>("p1", 2), {x});
    x = addConvBlock(net, "c2", scaled(6, w), scaled(16, w), 5, 1, 0,
                     opts.dropRate, x);
    x = net.add(std::make_unique<MaxPool2d>("p2", 2), {x});
    x = addConvBlock(net, "c3", scaled(16, w), scaled(120, w), 5, 1, 0,
                     opts.dropRate, x);
    x = net.add(std::make_unique<Flatten>("flatten"), {x});
    x = net.add(std::make_unique<Linear>("fc1", scaled(120, w),
                                         scaled(84, w)), {x});
    x = net.add(std::make_unique<ReLU>("fc1_relu"), {x});
    x = net.add(std::make_unique<Linear>("fc2", scaled(84, w),
                                         opts.numClasses), {x});
    net.add(std::make_unique<Softmax>("softmax"), {x});
    initializeWeights(net, opts.init);
    return net;
}

Network
buildVgg16(const ModelOptions &opts)
{
    const double w = opts.widthMultiplier;
    // 0 marks a 2x2 max pool in the VGG16 configuration string.
    static constexpr std::size_t cfg[] = {64, 64, 0, 128, 128, 0,
                                          256, 256, 256, 0,
                                          512, 512, 512, 0,
                                          512, 512, 512, 0};
    Network net("B-VGG16", Shape({3, 32, 32}));
    NodeId x = Network::inputNode;
    std::size_t in_ch = 3;
    std::size_t conv_idx = 0, pool_idx = 0;
    for (std::size_t c : cfg) {
        if (c == 0) {
            x = net.add(std::make_unique<MaxPool2d>(
                            format("pool%zu", ++pool_idx), 2),
                        {x});
        } else {
            const std::size_t out_ch = scaled(c, w);
            x = addConvBlock(net, format("conv%zu", ++conv_idx), in_ch,
                             out_ch, 3, 1, 1, opts.dropRate, x);
            in_ch = out_ch;
        }
    }
    x = net.add(std::make_unique<Flatten>("flatten"), {x});
    x = net.add(std::make_unique<Linear>("fc1", in_ch,
                                         scaled(512, w)), {x});
    x = net.add(std::make_unique<ReLU>("fc1_relu"), {x});
    x = net.add(std::make_unique<Linear>("fc2", scaled(512, w),
                                         opts.numClasses), {x});
    net.add(std::make_unique<Softmax>("softmax"), {x});
    initializeWeights(net, opts.init);
    return net;
}

Network
buildGooglenet(const ModelOptions &opts)
{
    const double w = opts.widthMultiplier;
    static constexpr InceptionSpec specs[] = {
        {"i3a", 64, 96, 128, 16, 32, 32},
        {"i3b", 128, 128, 192, 32, 96, 64},
        {"i4a", 192, 96, 208, 16, 48, 64},
        {"i4b", 160, 112, 224, 24, 64, 64},
        {"i4c", 128, 128, 256, 24, 64, 64},
        {"i4d", 112, 144, 288, 32, 64, 64},
        {"i4e", 256, 160, 320, 32, 128, 128},
        {"i5a", 256, 160, 320, 32, 128, 128},
        {"i5b", 384, 192, 384, 48, 128, 128},
    };

    Network net("B-GoogLeNet", Shape({3, 32, 32}));
    // CIFAR-adapted stem: the 7x7/2 ImageNet stem becomes 3x3/1 and
    // the first pool is dropped (DESIGN.md §6 note 3).
    NodeId x = addConvBlock(net, "stem1", 3, scaled(64, w), 3, 1, 1,
                            opts.dropRate, Network::inputNode);
    x = addConvBlock(net, "stem2", scaled(64, w), scaled(64, w), 1, 1,
                     0, opts.dropRate, x);
    x = addConvBlock(net, "stem3", scaled(64, w), scaled(192, w), 3, 1,
                     1, opts.dropRate, x);
    x = net.add(std::make_unique<LocalResponseNorm>("stem_lrn"), {x});
    x = net.add(std::make_unique<MaxPool2d>("stem_pool", 2), {x});

    std::size_t in_ch = scaled(192, w);
    for (std::size_t s = 0; s < std::size(specs); ++s) {
        x = addInception(net, specs[s], in_ch, w, opts.dropRate, x);
        in_ch = inceptionOut(specs[s], w);
        // Pools after 3b and 4e, as in the published topology.
        if (std::string(specs[s].name) == "i3b") {
            x = net.add(std::make_unique<MaxPool2d>("pool3", 2), {x});
        } else if (std::string(specs[s].name) == "i4e") {
            x = net.add(std::make_unique<MaxPool2d>("pool4", 2), {x});
        }
    }
    x = net.add(std::make_unique<GlobalAvgPool>("gap"), {x});
    x = net.add(std::make_unique<Linear>("fc", in_ch,
                                         opts.numClasses), {x});
    net.add(std::make_unique<Softmax>("softmax"), {x});
    initializeWeights(net, opts.init);
    return net;
}

Network
buildModel(ModelKind kind, const ModelOptions &opts)
{
    switch (kind) {
      case ModelKind::LeNet5: return buildLenet5(opts);
      case ModelKind::Vgg16: return buildVgg16(opts);
      case ModelKind::GoogLeNet: return buildGooglenet(opts);
    }
    panic("unknown ModelKind %d", static_cast<int>(kind));
}

} // namespace fastbcnn
