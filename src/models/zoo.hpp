/**
 * @file
 * The model zoo: the three BCNNs the paper evaluates (Section VI-A) —
 * B-LeNet-5 (MNIST, 28×28×1), B-VGG16 and B-GoogLeNet (CIFAR, 32×32×3)
 * — each built with a dropout layer after every convolution.
 */

#ifndef FASTBCNN_MODELS_ZOO_HPP
#define FASTBCNN_MODELS_ZOO_HPP

#include "init.hpp"
#include "nn/network.hpp"

namespace fastbcnn {

/** The evaluated networks. */
enum class ModelKind {
    LeNet5,    ///< B-LeNet-5 on 28×28×1 (MNIST-like)
    Vgg16,     ///< B-VGG16 on 32×32×3 (CIFAR-like)
    GoogLeNet  ///< B-GoogLeNet on 32×32×3 (CIFAR-like, adapted stem)
};

/** @return human-readable model name ("B-LeNet-5", ...). */
const char *modelKindName(ModelKind kind);

/** Construction parameters shared by all model builders. */
struct ModelOptions {
    double dropRate = 0.3;        ///< the paper's default p
    std::size_t numClasses = 10;  ///< 10 (MNIST) or 100 (CIFAR-100)
    /**
     * Channel width multiplier.  1.0 is the full published topology;
     * benches default to smaller widths so the whole suite runs in
     * minutes (DESIGN.md §6 note 4) — the skipping statistics are
     * width-invariant to first order.
     */
    double widthMultiplier = 1.0;
    InitOptions init;             ///< synthetic weight calibration
};

/** Build B-LeNet-5 with random calibrated weights. */
Network buildLenet5(const ModelOptions &opts = {});

/** Build B-VGG16 with random calibrated weights. */
Network buildVgg16(const ModelOptions &opts = {});

/** Build B-GoogLeNet (inception 3a–5b) with random calibrated weights. */
Network buildGooglenet(const ModelOptions &opts = {});

/** Dispatch on @p kind. */
Network buildModel(ModelKind kind, const ModelOptions &opts = {});

} // namespace fastbcnn

#endif // FASTBCNN_MODELS_ZOO_HPP
