/**
 * @file
 * Synthetic calibrated weight initialisation.
 *
 * We do not have the paper's trained MNIST / CIFAR-100 checkpoints
 * (DESIGN.md §2).  Every statistic the experiments depend on — zero
 * activation ratios, nw-input distributions, unaffected-neuron ratios
 * — is a function of the weight/bias distribution, so we synthesise
 * weights with He-scaled zero-mean Gaussians and a configurable
 * negative bias shift that reproduces realistic post-ReLU sparsity
 * (~50-65 % zeros, matching Fig. 4's profile of trained networks).
 */

#ifndef FASTBCNN_MODELS_INIT_HPP
#define FASTBCNN_MODELS_INIT_HPP

#include <cstdint>

#include "nn/network.hpp"

namespace fastbcnn {

/** Weight synthesis parameters. */
struct InitOptions {
    std::uint64_t seed = 1234;
    /**
     * Bias as a multiple of the layer's pre-activation std, negated:
     * bias = -biasShift * σ.  0 gives ~50 % zeros; 0.25 ≈ 60 %;
     * 0.5 ≈ 69 %.
     */
    double biasShift = 0.25;
    /** Extra multiplier on the He weight scale (1 = standard). */
    double weightScale = 1.0;
};

/**
 * Initialise every Conv2d and Linear layer of @p net in place.
 * Deterministic for a fixed seed and network structure.
 */
void initializeWeights(Network &net, const InitOptions &opts = {});

/** Data-driven sparsity calibration parameters. */
struct SparsityOptions {
    /** Mean post-ReLU zero fraction to target per conv channel. */
    double targetZeroRatio = 0.62;
    /** Uniform per-channel jitter around the target (realistic
     *  layer-to-layer variation, cf. Fig. 4). */
    double channelJitter = 0.10;
    std::uint64_t seed = 99;
};

/**
 * Calibrate conv biases against probe inputs so that each output
 * channel's post-ReLU zero ratio matches the target (DESIGN.md §2).
 *
 * Trained networks have *shallow* zeros — pre-activations clustered
 * near the ReLU threshold — which is what makes a small number of
 * dropped nw-inputs able to flip a zero neuron (the affected-neuron
 * phenomenon, Fig. 2).  An open-loop bias shift produces deep zeros
 * and a degenerate, trivially predictable network; this closed-loop
 * quantile calibration reproduces the paper's activation statistics.
 *
 * Conv layers are processed in topological order; each layer's bias
 * is set per channel to the empirical target quantile of its
 * pre-activation distribution over the probes, then the layer output
 * is recomputed before calibrating downstream layers.
 *
 * @param net    the network to calibrate in place
 * @param probes at least one representative input
 * @param opts   target ratio / jitter / seed
 */
void calibrateSparsity(Network &net, const std::vector<Tensor> &probes,
                       const SparsityOptions &opts = {});

} // namespace fastbcnn

#endif // FASTBCNN_MODELS_INIT_HPP
