#include "init.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "nn/conv2d.hpp"
#include "nn/dense.hpp"

namespace fastbcnn {

void
initializeWeights(Network &net, const InitOptions &opts)
{
    std::mt19937_64 engine(opts.seed);
    std::normal_distribution<double> gauss(0.0, 1.0);

    for (NodeId id = 0; id < net.size(); ++id) {
        Layer &layer = net.layer(id);
        if (layer.kind() == LayerKind::Conv2d) {
            auto &conv = static_cast<Conv2d &>(layer);
            const double fan_in =
                static_cast<double>(conv.inChannels()) *
                static_cast<double>(conv.kernelSize()) *
                static_cast<double>(conv.kernelSize());
            const double sigma_w =
                opts.weightScale * std::sqrt(2.0 / fan_in);
            for (float &w : conv.weights().data())
                w = static_cast<float>(sigma_w * gauss(engine));
            // Pre-activation std for unit-variance inputs is roughly
            // sqrt(fan_in)·σ_w; shift the bias by a fraction of it so
            // post-ReLU sparsity lands in the calibrated band.
            const double sigma_pre = sigma_w * std::sqrt(fan_in);
            for (float &b : conv.bias().data()) {
                b = static_cast<float>(-opts.biasShift * sigma_pre *
                                       (0.75 + 0.5 *
                                        std::abs(gauss(engine))));
            }
        } else if (layer.kind() == LayerKind::Linear) {
            auto &fc = static_cast<Linear &>(layer);
            const double sigma_w =
                opts.weightScale *
                std::sqrt(2.0 / static_cast<double>(fc.inFeatures()));
            for (float &w : fc.weights().data())
                w = static_cast<float>(sigma_w * gauss(engine));
            for (float &b : fc.bias().data())
                b = static_cast<float>(0.01 * gauss(engine));
        }
    }
}

void
calibrateSparsity(Network &net, const std::vector<Tensor> &probes,
                  const SparsityOptions &opts)
{
    if (probes.empty())
        fatal("sparsity calibration needs at least one probe input");
    if (opts.targetZeroRatio <= 0.0 || opts.targetZeroRatio >= 1.0)
        fatal("target zero ratio must be in (0, 1)");

    std::mt19937_64 engine(opts.seed);
    std::uniform_real_distribution<double> jitter(-opts.channelJitter,
                                                  opts.channelJitter);

    auto eval_node = [&](NodeId id, std::size_t p,
                         std::vector<std::vector<Tensor>> &outs) {
        std::vector<const Tensor *> ins;
        for (NodeId producer : net.inputsOf(id)) {
            ins.push_back(producer == Network::inputNode
                              ? &probes[p] : &outs[p][producer]);
        }
        outs[p][id] = net.layer(id).forward(ins, nullptr);
    };

    std::vector<std::vector<Tensor>> outs(
        probes.size(), std::vector<Tensor>(net.size()));
    for (NodeId id = 0; id < net.size(); ++id) {
        for (std::size_t p = 0; p < probes.size(); ++p)
            eval_node(id, p, outs);
        if (net.layer(id).kind() != LayerKind::Conv2d)
            continue;

        auto &conv = static_cast<Conv2d &>(net.layer(id));
        const Shape &shape = net.shapeOf(id);
        const std::size_t plane = shape.dim(1) * shape.dim(2);
        std::vector<float> values(plane * probes.size());
        for (std::size_t m = 0; m < conv.outChannels(); ++m) {
            for (std::size_t p = 0; p < probes.size(); ++p) {
                const auto src = outs[p][id].data();
                std::copy(src.begin() +
                              static_cast<std::ptrdiff_t>(m * plane),
                          src.begin() +
                              static_cast<std::ptrdiff_t>((m + 1) *
                                                          plane),
                          values.begin() +
                              static_cast<std::ptrdiff_t>(p * plane));
            }
            // Shift the bias so the target quantile of the channel's
            // pre-activation distribution sits at the ReLU threshold.
            const double target = std::clamp(
                opts.targetZeroRatio + jitter(engine), 0.05, 0.95);
            const std::size_t k = static_cast<std::size_t>(
                target * static_cast<double>(values.size() - 1));
            std::nth_element(values.begin(),
                             values.begin() +
                                 static_cast<std::ptrdiff_t>(k),
                             values.end());
            conv.bias()(m) -= values[k];
        }
        // Downstream layers must see the calibrated activations.
        for (std::size_t p = 0; p < probes.size(); ++p)
            eval_node(id, p, outs);
    }
}

} // namespace fastbcnn
