#include "breaker.hpp"

#include <cmath>

namespace fastbcnn::serve {

Status
validateBreakerOptions(const BreakerOptions &opts)
{
    if (opts.failureThreshold == 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "BreakerOptions::failureThreshold must be >= 1");
    }
    if (!(opts.cooldownMs >= 0.0) || !std::isfinite(opts.cooldownMs)) {
        return errorf(ErrorCode::InvalidArgument,
                      "BreakerOptions::cooldownMs %g must be finite "
                      "and >= 0", opts.cooldownMs);
    }
    if (opts.halfOpenProbes == 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "BreakerOptions::halfOpenProbes must be >= 1");
    }
    if (opts.closeSuccesses == 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "BreakerOptions::closeSuccesses must be >= 1");
    }
    return Status::ok();
}

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
      case BreakerState::Closed:   return "Closed";
      case BreakerState::Open:     return "Open";
      case BreakerState::HalfOpen: return "HalfOpen";
    }
    return "Unknown";
}

CircuitBreaker::Admission
CircuitBreaker::admit(ServeClock::time_point now)
{
    Admission admission;
    if (!opts_.enabled)
        return admission;
    const std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == BreakerState::Open) {
        const double elapsed = elapsedMs(openedAt_, now);
        if (elapsed < opts_.cooldownMs) {
            ++rejections_;
            admission.admitted = false;
            return admission;
        }
        // Cooldown over: half-open and let the probe logic decide.
        state_ = BreakerState::HalfOpen;
        probesInFlight_ = 0;
        probeSuccesses_ = 0;
    }
    if (state_ == BreakerState::HalfOpen) {
        if (probesInFlight_ >= opts_.halfOpenProbes) {
            ++rejections_;
            admission.admitted = false;
            return admission;
        }
        ++probesInFlight_;
        admission.probe = true;
    }
    return admission;
}

void
CircuitBreaker::report(BreakerSignal signal, bool probe,
                       ServeClock::time_point now)
{
    if (!opts_.enabled)
        return;
    const std::lock_guard<std::mutex> lock(mutex_);
    if (probe) {
        if (probesInFlight_ > 0)
            --probesInFlight_;
        // A probe completing after the breaker already moved on (a
        // reopen by a sibling probe) only releases its slot.
        if (state_ != BreakerState::HalfOpen)
            return;
        switch (signal) {
          case BreakerSignal::Failure:
            state_ = BreakerState::Open;
            openedAt_ = now;
            ++opens_;
            probeSuccesses_ = 0;
            break;
          case BreakerSignal::Success:
            if (++probeSuccesses_ >= opts_.closeSuccesses) {
                state_ = BreakerState::Closed;
                consecutiveFailures_ = 0;
            }
            break;
          case BreakerSignal::Neutral:
            break;
        }
        return;
    }
    // Non-probe outcomes only matter while Closed: requests admitted
    // before a trip finishing afterwards must not double-punish.
    if (state_ != BreakerState::Closed)
        return;
    switch (signal) {
      case BreakerSignal::Failure:
        if (++consecutiveFailures_ >= opts_.failureThreshold) {
            state_ = BreakerState::Open;
            openedAt_ = now;
            ++opens_;
            consecutiveFailures_ = 0;
        }
        break;
      case BreakerSignal::Success:
        consecutiveFailures_ = 0;
        break;
      case BreakerSignal::Neutral:
        break;
    }
}

void
CircuitBreaker::reset()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    state_ = BreakerState::Closed;
    consecutiveFailures_ = 0;
    probesInFlight_ = 0;
    probeSuccesses_ = 0;
}

BreakerState
CircuitBreaker::state() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return state_;
}

std::uint64_t
CircuitBreaker::opens() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return opens_;
}

std::uint64_t
CircuitBreaker::rejections() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return rejections_;
}

} // namespace fastbcnn::serve
