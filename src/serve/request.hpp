/**
 * @file
 * Request / response types of the batch-inference serving layer.
 *
 * A request names a served model, carries one input tensor, an
 * end-to-end deadline, a scheduling priority, per-request overrides of
 * the replica's MC-dropout options (T, quorum, seed, fault plan — the
 * per-request policy knobs PR 2 added to the runner), and a
 * cancellation token.  The caller gets back a RequestHandle whose
 * future resolves to exactly one InferResponse, whatever happens to
 * the request (served, shed, cancelled, failed): the serving layer
 * never drops a promise on the floor.
 */

#ifndef FASTBCNN_SERVE_REQUEST_HPP
#define FASTBCNN_SERVE_REQUEST_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>

#include "bayes/mc_runner.hpp"
#include "guard/guarded_runner.hpp"
#include "tensor/tensor.hpp"

namespace fastbcnn::serve {

/** The serving layer's wall clock (monotonic; deadlines live on it). */
using ServeClock = std::chrono::steady_clock;

/** @return the duration between two time points in milliseconds. */
inline double
elapsedMs(ServeClock::time_point from, ServeClock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from).count();
}

/**
 * Scheduling class of a request.  Lower values dispatch first; within
 * one class the scheduler is earliest-deadline-first, with FIFO among
 * requests that carry no deadline.
 */
enum class Priority {
    Interactive = 0,  ///< latency-sensitive traffic
    Standard = 1,     ///< the default class
    Background = 2    ///< best-effort / bulk traffic
};

/** Number of Priority levels (array sizing). */
inline constexpr std::size_t kPriorityLevels = 3;

/** @return a stable human-readable name for @p priority. */
const char *priorityName(Priority priority);

/**
 * Rung of the overload-brownout pressure ladder (brownout.hpp).  Under
 * sustained queue pressure the controller escalates one rung at a time
 * — degrading *samples* (the quality knob) long before it sheds
 * *requests* — and recovers additively once the queue drains.
 */
enum class BrownoutLevel {
    Normal = 0,       ///< full configured T, no interference
    AdaptiveExit = 1, ///< adaptive CI early exit forced on
    BudgetClamp = 2,  ///< per-class sample budgets clamped below T
    Shed = 3          ///< Background traffic shed pre-dispatch
};

/** Number of BrownoutLevel rungs (array sizing). */
inline constexpr std::size_t kBrownoutLevels = 4;

/** @return a stable human-readable name for @p level. */
const char *brownoutLevelName(BrownoutLevel level);

/**
 * A shared cancellation flag.  Copies observe the same flag, so the
 * caller keeps one copy (in the RequestHandle) and the request carries
 * another; cancel() is sticky and thread-safe.  A cancelled request
 * that has not yet dispatched completes with Outcome::Cancelled;
 * cancellation does not interrupt a run already in flight.
 */
class CancellationToken
{
  public:
    CancellationToken()
        : cancelled_(std::make_shared<std::atomic<bool>>(false))
    {}

    /** Request cancellation (sticky; safe from any thread). */
    void cancel() const
    {
        cancelled_->store(true, std::memory_order_relaxed);
    }

    /** @return true once cancel() has been called on any copy. */
    bool cancelled() const
    {
        return cancelled_->load(std::memory_order_relaxed);
    }

  private:
    std::shared_ptr<std::atomic<bool>> cancelled_;
};

/**
 * Per-request overrides of the engine replica's McOptions.  Unset
 * fields inherit the replica's defaults; the worker merges the two at
 * dispatch time (worker.hpp).
 */
struct McOverrides {
    std::optional<std::size_t> samples;   ///< T
    std::optional<std::size_t> quorum;    ///< minimum survivors T'
    std::optional<std::size_t> threads;   ///< intra-request MC workers
    std::optional<std::uint64_t> seed;    ///< pin for reproducibility
    /**
     * Numeric path override (unset = replica default).  Int8 requires
     * the served model's engines to carry a quantized mirror —
     * admission rejects otherwise (see ModelInfo::int8Available).
     * Ignored by the guarded-skip path, which is float-only.
     */
    std::optional<Precision> precision;
    /**
     * Adaptive early-exit target CI width (McOptions::targetCiWidth;
     * 0 disables).  Note the brownout controller may force adaptive
     * exit on a request that did not ask for it — the per-request
     * value, when set, still wins if it is *tighter* than the
     * brownout's (the controller never degrades below what the caller
     * explicitly requested).
     */
    std::optional<double> targetCiWidth;
    /** Adaptive early-exit floor (McOptions::minSamples). */
    std::optional<std::size_t> minSamples;
    /** Hard sample-budget clamp (McOptions::sampleBudget; 0 off). */
    std::optional<std::size_t> sampleBudget;
    /**
     * Per-request fault-injection plan (not owned; may be nullptr =
     * inherit the replica default).  Must outlive the request — the
     * soak tests use this to fault individual requests on a healthy
     * server.
     */
    const FaultPlan *faults = nullptr;
};

/** One inference request. */
struct InferRequest {
    /** Which served model to run (must match a ModelSpec id). */
    std::string modelId;
    /** Input tensor (must match the model's input shape). */
    Tensor input;
    /** Scheduling class. */
    Priority priority = Priority::Standard;
    /**
     * End-to-end budget in milliseconds, measured from submit();
     * 0 disables.  The scheduler sheds the request if the budget
     * expires before dispatch, and the worker passes the *remaining*
     * budget to the MC runner as McOptions::deadlineMs otherwise.
     */
    double deadlineMs = 0.0;
    /** MC-dropout overrides (unset = replica defaults). */
    McOverrides mc;
    /**
     * Dispatch through the guarded predictive path (engine
     * tryGuardedMc) instead of the exact MC reference.  Requires the
     * model's engines to have EngineOptions::guard enabled (admission
     * rejects otherwise).  The guarded path honours the samples /
     * threads / seed overrides but not quorum, faults, or the
     * deadline — prediction-mode samples are not fault-isolated lanes.
     */
    bool useGuardedSkip = false;
    /** Cancellation flag (keep a copy to cancel later). */
    CancellationToken token;
};

/** How a request left the server. */
enum class Outcome {
    Ok = 0,     ///< served (possibly degraded; see McResult::census)
    Shed,       ///< dropped by load shedding: deadline expired first
    Cancelled,  ///< the caller cancelled before dispatch, or shutdown
    Failed      ///< the engine returned a run-level error
};

/** Number of Outcome values (array sizing). */
inline constexpr std::size_t kOutcomeCount = 4;

/** @return a stable human-readable name for @p outcome. */
const char *outcomeName(Outcome outcome);

/** @return the lowercase stats-key spelling of @p outcome. */
const char *outcomeStatKey(Outcome outcome);

/** What the server resolved a request's future with. */
struct InferResponse {
    /** The id submit() handed back. */
    std::uint64_t id = 0;
    /** How the request left the server. */
    Outcome outcome = Outcome::Failed;
    /** The run result (engaged iff outcome == Ok, exact MC path). */
    std::optional<McResult> result;
    /** The guarded-path result (engaged iff Ok via useGuardedSkip). */
    std::optional<GuardedMcResult> guarded;
    /** Why the request was not served (ok iff outcome == Ok). */
    Error error;
    /** Submit-to-dispatch wait in ms. */
    double queueMs = 0.0;
    /** Engine execution time in ms (0 when never dispatched). */
    double serviceMs = 0.0;
    /** Submit-to-completion time in ms. */
    double totalMs = 0.0;
    /** Size of the micro-batch this request dispatched in (0 = none). */
    std::size_t batchSize = 0;
    /** Index of the worker that served it (meaningless unless Ok). */
    std::size_t worker = 0;
    /**
     * Registry version of the model that served this request (0 when
     * never dispatched).  Every request in one micro-batch carries the
     * same value — the hot-swap atomicity the RegistrySwap tests pin.
     */
    std::uint64_t modelVersion = 0;
    /**
     * Numeric path the request actually ran on (replica default
     * merged with any McOverrides::precision; always Float32 on the
     * guarded-skip path).  Meaningless unless dispatched.
     */
    Precision precision = Precision::Float32;
    /**
     * Brownout rung in force when this request dispatched (Normal
     * when the controller is disabled or the request never
     * dispatched).  A browned-out response is still Outcome::Ok —
     * quality degradation is never a failure signal; the circuit
     * breaker and guard ignore it.
     */
    BrownoutLevel brownoutLevel = BrownoutLevel::Normal;
    /**
     * Samples the run actually averaged over (census.survived), i.e.
     * the effective T' after adaptive exit, budget clamps and fault
     * casualties.  0 when never dispatched or on the guarded path.
     */
    std::size_t effectiveSamples = 0;

    /** @return true when the request was served. */
    bool ok() const { return outcome == Outcome::Ok; }

    /** @return true when served but on fewer than T samples. */
    bool degraded() const
    {
        return result.has_value() && result->degraded();
    }

    /**
     * @return true when the guarded path backed off or disabled a
     * kernel during this request — the degradation signal the
     * circuit breaker counts as a failure.
     */
    bool guardTripped() const
    {
        if (!guarded.has_value())
            return false;
        for (const GuardEvent &ev : guarded->events) {
            if (ev.kind == GuardEventKind::Backoff ||
                ev.kind == GuardEventKind::Disable) {
                return true;
            }
        }
        return false;
    }
};

/** What submit() returns: the id, the token, and the future. */
struct RequestHandle {
    std::uint64_t id = 0;
    CancellationToken token;
    std::future<InferResponse> response;
};

/**
 * A queued request: the request plus its promise and timing state.
 * Internal currency of the queue / scheduler / worker pipeline;
 * move-only (the promise).
 */
struct PendingRequest {
    std::uint64_t id = 0;
    /** Admission order, the FIFO tiebreak within a priority class. */
    std::uint64_t seq = 0;
    InferRequest request;
    std::promise<InferResponse> promise;
    ServeClock::time_point submitted{};
    /** Absolute deadline (time_point::max() when none). */
    ServeClock::time_point deadline = ServeClock::time_point::max();
    bool hasDeadline = false;
    /** True when admission granted this request a breaker probe slot
     *  (completion must report it back, whatever the outcome). */
    bool breakerProbe = false;

    /** @return true when the deadline has passed at @p now. */
    bool expired(ServeClock::time_point now) const
    {
        return hasDeadline && now >= deadline;
    }

    /** @return remaining budget in ms at @p now (0 when none left). */
    double remainingMs(ServeClock::time_point now) const
    {
        if (!hasDeadline)
            return 0.0;
        const double left = elapsedMs(now, deadline);
        return left > 0.0 ? left : 0.0;
    }
};

} // namespace fastbcnn::serve

#endif // FASTBCNN_SERVE_REQUEST_HPP
