/**
 * @file
 * Bounded MPMC request queue with admission control.
 *
 * Producers are submit() callers; consumers are the scheduler running
 * on the worker threads.  The queue is the server's backpressure
 * point: push() never blocks — a full queue rejects the request with
 * ErrorCode::ResourceExhausted so the client can back off, and a
 * closed queue rejects with ErrorCode::Unavailable.
 *
 * Internally requests sit in one ordered bucket per priority class,
 * keyed by (absolute deadline, admission sequence): pop() serves the
 * highest non-empty priority earliest-deadline-first, with FIFO among
 * requests that carry no deadline (their key is time_point::max()).
 * tryPopModel() supports micro-batch formation by extracting the best
 * queued request of a given model without blocking.
 */

#ifndef FASTBCNN_SERVE_QUEUE_HPP
#define FASTBCNN_SERVE_QUEUE_HPP

#include <array>
#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "serve/request.hpp"

namespace fastbcnn::serve {

class BoundedRequestQueue
{
  public:
    /** @param capacity admission bound across all priority classes */
    explicit BoundedRequestQueue(std::size_t capacity);

    BoundedRequestQueue(const BoundedRequestQueue &) = delete;
    BoundedRequestQueue &operator=(const BoundedRequestQueue &) = delete;

    /**
     * Admit @p pending (never blocks).
     * @return ok, ResourceExhausted when full, Unavailable when
     *         closed.  On error the caller still owns the request.
     */
    [[nodiscard]] Status push(PendingRequest &&pending);

    /**
     * Block until a request is available, then extract the best one
     * (priority, then earliest deadline, then admission order).
     * @return nullopt once the queue is closed — immediately for a
     *         hard close, after running dry for a draining close.
     */
    [[nodiscard]] std::optional<PendingRequest> pop();

    /**
     * Extract the best queued request of @p model_id without
     * blocking (micro-batch fill).  Respects the same ordering as
     * pop() within the model's requests.
     */
    [[nodiscard]] std::optional<PendingRequest> tryPopModel(
        const std::string &model_id);

    /**
     * Stop admitting requests.  @p drain true lets consumers run the
     * queue dry before pop() returns nullopt; false makes pop()
     * return nullopt immediately, leaving leftovers for flush().
     */
    void close(bool drain);

    /** Remove and return every queued request (after a hard close). */
    [[nodiscard]] std::vector<PendingRequest> flush();

    /** @return the number of queued requests. */
    std::size_t size() const;

    /** @return the admission bound. */
    std::size_t capacity() const { return capacity_; }

    /** @return true once close() has been called. */
    bool closed() const;

  private:
    /** (absolute deadline, admission seq): EDF with FIFO tiebreak. */
    using Key = std::pair<ServeClock::time_point, std::uint64_t>;
    using Bucket = std::map<Key, PendingRequest>;

    /** Extract the globally best request.  Caller holds the lock. */
    PendingRequest takeBestLocked();

    mutable std::mutex mutex_;
    std::condition_variable available_;
    std::array<Bucket, kPriorityLevels> buckets_;
    std::size_t size_ = 0;
    const std::size_t capacity_;
    bool closed_ = false;
    bool drain_ = false;
};

} // namespace fastbcnn::serve

#endif // FASTBCNN_SERVE_QUEUE_HPP
