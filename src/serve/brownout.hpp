/**
 * @file
 * Overload brownout: degrade samples, not requests.
 *
 * Under sustained queue pressure a fixed-T MC-dropout server has only
 * one safety valve — shedding whole requests.  But T is a *quality*
 * knob: a posterior mean over fewer samples is a wider-variance answer,
 * not a dropped one.  The BrownoutController watches two pressure
 * signals — an EWMA of queue delay and an EWMA of the deadline-miss
 * rate, both fed from request completions — and walks a pressure
 * ladder (BrownoutLevel in request.hpp):
 *
 *   Normal       → full configured T, no interference
 *   AdaptiveExit → force the adaptive CI early exit on every run, so
 *                  easy inputs finish at T' << T (bayes/adaptive.hpp)
 *   BudgetClamp  → additionally clamp each class's sample budget to a
 *                  per-priority fraction of T (Interactive keeps the
 *                  most), never below the quorum or the budget floor
 *   Shed         → last resort: Background traffic is shed
 *                  pre-dispatch; paying classes keep their clamped T
 *
 * Escalation is immediate (one rung per pressured tick — the
 * multiplicative-decrease analog); recovery is additive: one rung down
 * only after recoverTicks consecutive healthy ticks, with a hysteresis
 * band between the high and low thresholds where the level holds.
 *
 * Brownout is never a failure signal: a browned-out response is still
 * Outcome::Ok, the circuit breaker sees Success, and clamped or
 * converged-away samples appear in no failure census.
 */

#ifndef FASTBCNN_SERVE_BROWNOUT_HPP
#define FASTBCNN_SERVE_BROWNOUT_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>

#include "bayes/mc_runner.hpp"
#include "serve/request.hpp"

namespace fastbcnn::serve {

/** Brownout policy knobs. */
struct BrownoutOptions {
    /** Master switch; a disabled controller never leaves Normal. */
    bool enabled = false;

    /** Controller tick period in ms (pressure is evaluated per tick,
     *  not per completion, so one hot burst cannot slam the ladder
     *  through several rungs). */
    double tickIntervalMs = 50.0;

    /** Queue-delay EWMA above this escalates one rung. */
    double queueDelayHighMs = 50.0;
    /** Queue-delay EWMA below this counts toward recovery.  The band
     *  between low and high is hysteresis: the level holds. */
    double queueDelayLowMs = 20.0;

    /** Deadline-miss-rate EWMA above this escalates one rung. */
    double missRateHigh = 0.10;
    /** Deadline-miss-rate EWMA below this counts toward recovery. */
    double missRateLow = 0.02;

    /** Per-completion EWMA weight in (0, 1]. */
    double ewmaAlpha = 0.2;

    /** Consecutive healthy ticks required per rung of recovery (the
     *  additive-increase half of AIMD). */
    std::size_t recoverTicks = 4;

    /** CI width forced on runs at AdaptiveExit and above.  A request
     *  that asked for a *tighter* width keeps its own. */
    double targetCiWidth = 0.05;
    /** Adaptive floor forced alongside targetCiWidth (a request's own
     *  higher floor wins). */
    std::size_t minSamples = 2;

    /** Per-priority-class sample-budget fraction of T applied at
     *  BudgetClamp and above (Interactive, Standard, Background). */
    std::array<double, kPriorityLevels> budgetFraction = {0.75, 0.50,
                                                          0.25};
    /** No class's budget is ever clamped below this (nor below the
     *  run's quorum — quality degrades, correctness floors hold). */
    std::size_t budgetFloor = 2;
};

/**
 * Validate @p opts at the API boundary.
 * @return ok, or an InvalidArgument error naming the bad value.
 */
[[nodiscard]] Status validateBrownoutOptions(const BrownoutOptions &opts);

/** Point-in-time controller snapshot (InferenceServer::health()). */
struct BrownoutState {
    bool enabled = false;
    BrownoutLevel level = BrownoutLevel::Normal;
    double queueDelayEwmaMs = 0.0;
    double missRateEwma = 0.0;
    std::uint64_t ticks = 0;
    std::uint64_t escalations = 0;  ///< rungs climbed, total
    std::uint64_t recoveries = 0;   ///< rungs descended, total
    /** Background requests shed by the Shed rung (distinct from
     *  deadline-expiry sheds). */
    std::uint64_t brownoutSheds = 0;
    /** Served responses whose run converged early (census.converged). */
    std::uint64_t converged = 0;
};

/**
 * The brownout state machine.  Thread-safe: workers call level() /
 * apply() lock-free on their hot path; the server's completion path
 * calls recordCompletion(); a dedicated timer thread calls tick().
 */
class BrownoutController
{
  public:
    /** @p opts must already have passed validateBrownoutOptions(). */
    explicit BrownoutController(BrownoutOptions opts);

    BrownoutController(const BrownoutController &) = delete;
    BrownoutController &operator=(const BrownoutController &) = delete;

    /** @return the current ladder rung (Normal when disabled). */
    BrownoutLevel level() const
    {
        return static_cast<BrownoutLevel>(
            level_.load(std::memory_order_relaxed));
    }

    /** @return the policy knobs. */
    const BrownoutOptions &options() const { return opts_; }

    /**
     * Feed one completed request into the pressure EWMAs.
     * @param queue_ms submit-to-dispatch wait (or total wait, for a
     *                 request that never dispatched)
     * @param missed   the request missed its deadline (shed, or failed
     *                 with DeadlineExceeded)
     * @param converged the served run converged early
     */
    void recordCompletion(double queue_ms, bool missed, bool converged);

    /**
     * Evaluate pressure and move the ladder (timer thread).  With no
     * completions since the last tick, an empty queue reads as healthy
     * (the EWMAs are stale — nothing is flowing, nothing is hurting)
     * and a non-empty one holds the level.
     * @param queue_depth current admission-queue depth
     */
    void tick(std::size_t queue_depth);

    /**
     * Apply the current rung's quality levers to @p mc for a request
     * of @p priority, and return the rung applied (recorded in the
     * response).  Never loosens what the caller asked for: a tighter
     * per-request CI width, a higher minSamples floor, or a smaller
     * sampleBudget all win; the result always still satisfies
     * validateMcOptions() if @p mc did.
     */
    BrownoutLevel apply(McOptions &mc, Priority priority) const;

    /**
     * The sample budget a class gets at the current rung for a run of
     * @p samples with @p quorum: samples itself below BudgetClamp,
     * else ceil(budgetFraction[class] · samples) floored at
     * max(budgetFloor, quorum, 1) and capped at samples.
     */
    std::size_t effectiveSamples(std::size_t samples,
                                 Priority priority,
                                 std::size_t quorum) const;

    /** @return true when the Shed rung wants Background traffic
     *  dropped pre-dispatch. */
    bool shedBackground() const
    {
        return opts_.enabled && level() == BrownoutLevel::Shed;
    }

    /** Count one Background request shed by the Shed rung. */
    void noteShed()
    {
        brownoutSheds_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Pin the ladder to @p level (tests; resets recovery credit). */
    void forceLevel(BrownoutLevel level);

    /** @return a consistent snapshot of the controller. */
    BrownoutState state() const;

  private:
    BrownoutOptions opts_;
    std::atomic<int> level_{0};
    std::atomic<std::uint64_t> brownoutSheds_{0};
    std::atomic<std::uint64_t> converged_{0};

    mutable std::mutex mutex_;  ///< guards the EWMAs + tick state
    double queueDelayEwmaMs_ = 0.0;
    double missRateEwma_ = 0.0;
    std::uint64_t completionsSinceTick_ = 0;
    std::size_t healthyTicks_ = 0;
    std::uint64_t ticks_ = 0;
    std::uint64_t escalations_ = 0;
    std::uint64_t recoveries_ = 0;
};

} // namespace fastbcnn::serve

#endif // FASTBCNN_SERVE_BROWNOUT_HPP
