#include "worker.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/table.hpp"

namespace fastbcnn::serve {

EngineWorker::EngineWorker(std::size_t index,
                           const ModelRegistry *registry,
                           const BrownoutController *brownout)
    : index_(index), registry_(registry), brownout_(brownout)
{
    FASTBCNN_CHECK(registry_ != nullptr,
                   "EngineWorker needs a model registry");
    FASTBCNN_CHECK(index_ < registry_->replicas(),
                   "worker index exceeds the registry's replica count");
}

std::shared_ptr<const VersionedEngine>
EngineWorker::replica(const std::string &model_id) const
{
    return registry_->acquire(model_id, index_);
}

McOptions
EngineWorker::effectiveOptions(const FastBcnnEngine &engine,
                               const PendingRequest &pending,
                               ServeClock::time_point now)
{
    McOptions mc = engine.options().mc;
    const McOverrides &over = pending.request.mc;
    if (over.samples.has_value())
        mc.samples = *over.samples;
    if (over.quorum.has_value())
        mc.quorum = *over.quorum;
    if (over.threads.has_value())
        mc.threads = *over.threads;
    if (over.seed.has_value())
        mc.seed = *over.seed;
    if (over.precision.has_value())
        mc.precision = *over.precision;
    if (over.targetCiWidth.has_value())
        mc.targetCiWidth = *over.targetCiWidth;
    if (over.minSamples.has_value())
        mc.minSamples = *over.minSamples;
    if (over.sampleBudget.has_value())
        mc.sampleBudget = *over.sampleBudget;
    if (over.faults != nullptr)
        mc.faults = over.faults;
    if (pending.hasDeadline) {
        // Hand the MC runner only what is left of the end-to-end
        // budget, tightened further by any replica-level deadline.
        const double remaining = pending.remainingMs(now);
        mc.deadlineMs = mc.deadlineMs > 0.0
                            ? std::min(mc.deadlineMs, remaining)
                            : remaining;
    }
    return mc;
}

void
EngineWorker::runBatch(std::vector<PendingRequest> &&batch,
                       const CompleteFn &complete)
{
    FASTBCNN_CHECK(!batch.empty(), "runBatch on an empty batch");
    // Acquire the replica once for the whole batch: same-model
    // grouping means every request shares this engine's calibrated
    // thresholds and predictor state, and the single acquisition is
    // what makes hot-swaps atomic — every request in the batch runs
    // on exactly one version, pinned by this shared_ptr until the
    // batch completes.
    const std::string &model = batch.front().request.modelId;
    const std::shared_ptr<const VersionedEngine> pinned =
        replica(model);
    FASTBCNN_CHECK(pinned != nullptr,
                   format("worker %zu has no replica of model '%s' "
                          "(admission should have rejected this)",
                          index_, model.c_str())
                       .c_str());
    const FastBcnnEngine *engine = pinned->engine.get();
    const std::size_t batchSize = batch.size();

    for (PendingRequest &pending : batch) {
        FASTBCNN_DCHECK(pending.request.modelId == model,
                        "mixed-model batch");
        InferResponse response;
        response.id = pending.id;
        response.batchSize = batchSize;
        response.worker = index_;
        response.modelVersion = pinned->version;

        const ServeClock::time_point now = ServeClock::now();
        if (pending.request.token.cancelled()) {
            response.outcome = Outcome::Cancelled;
            response.error = errorf(ErrorCode::Cancelled,
                                    "cancelled before dispatch");
            complete(std::move(pending), std::move(response));
            continue;
        }
        if (pending.expired(now)) {
            response.outcome = Outcome::Shed;
            response.error =
                errorf(ErrorCode::DeadlineExceeded,
                       "deadline (%.3f ms) expired before dispatch",
                       pending.request.deadlineMs);
            complete(std::move(pending), std::move(response));
            continue;
        }

        McOptions mc = effectiveOptions(*engine, pending, now);
        // Brownout rides on top of the merged options: the ladder's
        // quality levers (adaptive exit, sample-budget clamp) degrade
        // the run, never past what the caller explicitly asked for.
        // The guarded path has no sample census to degrade, so the
        // ladder leaves it alone.
        if (brownout_ != nullptr && !pending.request.useGuardedSkip) {
            response.brownoutLevel =
                brownout_->apply(mc, pending.request.priority);
        }
        // The guarded predictive path is float-only; the exact path
        // runs whatever the merged options selected.
        response.precision = pending.request.useGuardedSkip
                                 ? Precision::Float32
                                 : mc.precision;
        const ServeClock::time_point begin = ServeClock::now();
        if (pending.request.useGuardedSkip) {
            // Guarded predictive path: same sampling knobs, but no
            // quorum / faults / deadline — prediction-mode samples
            // are not fault-isolated lanes (see InferRequest).
            GuardedMcOptions gopts;
            gopts.samples = mc.samples;
            gopts.dropRate = mc.dropRate;
            gopts.brng = mc.brng;
            gopts.seed = mc.seed;
            gopts.threads = mc.threads;
            Expected<GuardedMcResult> run =
                engine->tryGuardedMc(pending.request.input, gopts);
            response.serviceMs = elapsedMs(begin, ServeClock::now());
            if (run.hasValue()) {
                response.outcome = Outcome::Ok;
                response.guarded = std::move(run).value();
            } else {
                response.outcome = Outcome::Failed;
                response.error =
                    std::move(run).takeError().withContext(
                        format("serving model '%s' (guarded)",
                               model.c_str()));
            }
            complete(std::move(pending), std::move(response));
            continue;
        }
        Expected<McResult> run =
            engine->tryMcReference(pending.request.input, mc);
        response.serviceMs = elapsedMs(begin, ServeClock::now());
        if (run.hasValue()) {
            response.outcome = Outcome::Ok;
            response.result = std::move(run).value();
            response.effectiveSamples =
                response.result->census.survived;
        } else {
            response.outcome = Outcome::Failed;
            response.error = std::move(run).takeError().withContext(
                format("serving model '%s'", model.c_str()));
        }
        complete(std::move(pending), std::move(response));
    }
}

} // namespace fastbcnn::serve
