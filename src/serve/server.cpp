#include "server.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/table.hpp"
#include "nn/serialize.hpp"

namespace fastbcnn::serve {

Status
validateServerOptions(const ServerOptions &opts)
{
    if (opts.workers == 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "ServerOptions::workers must be >= 1");
    }
    if (opts.queueCapacity == 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "ServerOptions::queueCapacity must be >= 1");
    }
    if (opts.maxBatch == 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "ServerOptions::maxBatch must be >= 1");
    }
    FASTBCNN_RETURN_IF_ERROR(
        validateBreakerOptions(opts.breaker)
            .withContext("ServerOptions::breaker"));
    FASTBCNN_RETURN_IF_ERROR(
        validateRegistryOptions(opts.registry)
            .withContext("ServerOptions::registry"));
    FASTBCNN_RETURN_IF_ERROR(
        validateBrownoutOptions(opts.brownout)
            .withContext("ServerOptions::brownout"));
    return Status::ok();
}

InferenceServer::InferenceServer(ServerOptions opts)
    : opts_(opts), queue_(opts.queueCapacity)
{}

Expected<std::unique_ptr<InferenceServer>>
InferenceServer::create(std::vector<ModelSpec> models,
                        ServerOptions opts)
{
    {
        Status valid = validateServerOptions(opts);
        if (!valid.isOk())
            return std::move(valid).withContext("creating server");
    }
    if (models.empty()) {
        return errorf(ErrorCode::InvalidArgument,
                      "InferenceServer needs at least one ModelSpec");
    }

    // The constructor is private; create() is the only way in.
    std::unique_ptr<InferenceServer> server(
        new InferenceServer(opts));

    // Install every model into the registry as its initial version.
    // Replica 0 of each model defines the admission-time contract
    // (input shape, MC defaults); the registry rebuilds one replica
    // per worker through the same factory.
    server->registry_ = std::make_unique<ModelRegistry>(
        opts.workers, opts.registry);
    for (ModelSpec &spec : models) {
        if (spec.id.empty()) {
            return errorf(ErrorCode::InvalidArgument,
                          "ModelSpec::id must be non-empty");
        }
        if (spec.factory == nullptr) {
            return errorf(ErrorCode::InvalidArgument,
                          "ModelSpec '%s' has no factory",
                          spec.id.c_str());
        }
        if (server->models_.count(spec.id) != 0) {
            return errorf(ErrorCode::InvalidArgument,
                          "duplicate ModelSpec id '%s'",
                          spec.id.c_str());
        }
        ModelVersionSpec initial;
        initial.modelId = spec.id;
        initial.version = spec.version;
        initial.factory = std::move(spec.factory);
        initial.gate = std::move(spec.gate);
        Status installed = server->registry_->swapNow(initial);
        if (!installed.isOk()) {
            return std::move(installed).withContext(
                format("installing model '%s'", spec.id.c_str()));
        }
        const std::shared_ptr<const VersionedEngine> replica0 =
            server->registry_->acquire(spec.id, 0);
        FASTBCNN_CHECK(replica0 != nullptr,
                       "freshly installed model has no replica 0");
        ModelInfo info;
        info.inputShape = replica0->engine->network().inputShape();
        info.mcDefaults = replica0->engine->options().mc;
        info.guardEnabled = replica0->engine->guard() != nullptr;
        info.int8Available = replica0->engine->int8Available();
        server->models_.emplace(spec.id, std::move(info));
        server->breakers_.emplace(
            spec.id, std::make_unique<CircuitBreaker>(opts.breaker));
    }
    // Later swaps refresh admission metadata and reset the breaker;
    // wired only now so the initial installs above stay simple.
    InferenceServer *raw0 = server.get();
    server->registry_->setSwapCallback(
        [raw0](const std::string &model_id,
               const VersionedEngine &replica0) {
            raw0->onSwapSuccess(model_id, replica0);
        });

    server->brownout_ =
        std::make_unique<BrownoutController>(opts.brownout);
    for (std::size_t w = 0; w < opts.workers; ++w) {
        server->workers_.push_back(std::make_unique<EngineWorker>(
            w, server->registry_.get(), server->brownout_.get()));
    }
    InferenceServer *raw = server.get();
    server->scheduler_ = std::make_unique<BatchScheduler>(
        server->queue_, SchedulerOptions{opts.maxBatch},
        [raw](PendingRequest &&pending) {
            raw->shed(std::move(pending));
        },
        server->brownout_.get(),
        [raw](PendingRequest &&pending) {
            raw->brownoutShed(std::move(pending));
        });
    server->threads_.reserve(opts.workers);
    for (std::size_t w = 0; w < opts.workers; ++w)
        server->threads_.emplace_back(
            [raw, w]() { raw->workerLoop(w); });
    if (opts.brownout.enabled)
        server->brownoutThread_ =
            std::thread([raw]() { raw->brownoutLoop(); });
    return server;
}

InferenceServer::~InferenceServer()
{
    stop(false);
}

Expected<RequestHandle>
InferenceServer::submit(InferRequest request)
{
    stats_.add("submitted");
    ModelInfo info;
    {
        // Copy the admission contract out: a concurrent hot-swap may
        // refresh mcDefaults / guardEnabled mid-validation.
        const std::lock_guard<std::mutex> lock(modelsMutex_);
        auto it = models_.find(request.modelId);
        if (it == models_.end()) {
            stats_.add("rejected_invalid");
            return errorf(ErrorCode::NotFound,
                          "model '%s' is not served",
                          request.modelId.c_str());
        }
        info = it->second;
    }
    if (!(request.input.shape() == info.inputShape)) {
        stats_.add("rejected_invalid");
        return errorf(ErrorCode::InvalidArgument,
                      "input shape %s does not match model '%s' "
                      "input %s",
                      request.input.shape().toString().c_str(),
                      request.modelId.c_str(),
                      info.inputShape.toString().c_str());
    }
    if (!(request.deadlineMs >= 0.0) ||
        !std::isfinite(request.deadlineMs)) {
        stats_.add("rejected_invalid");
        return errorf(ErrorCode::InvalidArgument,
                      "InferRequest::deadlineMs %g must be finite "
                      "and >= 0", request.deadlineMs);
    }
    if (static_cast<std::size_t>(request.priority) >=
        kPriorityLevels) {
        stats_.add("rejected_invalid");
        return errorf(ErrorCode::InvalidArgument,
                      "InferRequest::priority %d out of range",
                      static_cast<int>(request.priority));
    }
    {
        // Validate the merged MC options now, so a bad override is an
        // immediate submit error instead of a deferred Failed
        // response.  The deadline merge is dispatch-time state and is
        // validated by construction (remainingMs() >= 0).
        McOptions merged = info.mcDefaults;
        const McOverrides &over = request.mc;
        if (over.samples.has_value())
            merged.samples = *over.samples;
        if (over.quorum.has_value())
            merged.quorum = *over.quorum;
        if (over.threads.has_value())
            merged.threads = *over.threads;
        if (over.seed.has_value())
            merged.seed = *over.seed;
        if (over.precision.has_value())
            merged.precision = *over.precision;
        if (over.targetCiWidth.has_value())
            merged.targetCiWidth = *over.targetCiWidth;
        if (over.minSamples.has_value())
            merged.minSamples = *over.minSamples;
        if (over.sampleBudget.has_value())
            merged.sampleBudget = *over.sampleBudget;
        Status valid = validateMcOptions(merged);
        if (!valid.isOk()) {
            stats_.add("rejected_invalid");
            return std::move(valid).withContext(
                "per-request MC overrides");
        }
        if (merged.precision == Precision::Int8 &&
            !info.int8Available) {
            stats_.add("rejected_invalid");
            return errorf(ErrorCode::InvalidArgument,
                          "model '%s' is served without an int8 "
                          "mirror; Precision::Int8 needs engines "
                          "quantized at build time",
                          request.modelId.c_str());
        }
    }
    if (request.useGuardedSkip && !info.guardEnabled) {
        stats_.add("rejected_invalid");
        return errorf(ErrorCode::InvalidArgument,
                      "model '%s' is served without a skip guard; "
                      "useGuardedSkip needs engines with "
                      "EngineOptions::guard enabled",
                      request.modelId.c_str());
    }

    // Breaker admission runs last: only requests that would otherwise
    // be accepted consume half-open probe slots.
    CircuitBreaker &breaker = *breakers_.at(request.modelId);
    const CircuitBreaker::Admission admission =
        breaker.admit(ServeClock::now());
    if (!admission.admitted) {
        stats_.add("rejected_breaker");
        return errorf(ErrorCode::Unavailable,
                      "model '%s' circuit breaker is %s; rejecting "
                      "fast", request.modelId.c_str(),
                      breakerStateName(breaker.state()));
    }

    PendingRequest pending;
    pending.breakerProbe = admission.probe;
    pending.id = nextId_.fetch_add(1, std::memory_order_relaxed);
    pending.seq = nextSeq_.fetch_add(1, std::memory_order_relaxed);
    pending.submitted = ServeClock::now();
    if (request.deadlineMs > 0.0) {
        pending.hasDeadline = true;
        pending.deadline =
            pending.submitted +
            std::chrono::duration_cast<ServeClock::duration>(
                std::chrono::duration<double, std::milli>(
                    request.deadlineMs));
    }
    RequestHandle handle;
    handle.id = pending.id;
    handle.token = request.token;
    handle.response = pending.promise.get_future();
    pending.request = std::move(request);

    const bool heldProbe = pending.breakerProbe;
    Status admitted = queue_.push(std::move(pending));
    if (!admitted.isOk()) {
        // A probe that never reaches the engine says nothing about
        // model health; release its slot.
        if (heldProbe) {
            breaker.report(BreakerSignal::Neutral, true,
                           ServeClock::now());
        }
        stats_.add(admitted.code() == ErrorCode::ResourceExhausted
                       ? "rejected_full"
                       : "rejected_closed");
        return std::move(admitted).withContext("submitting request");
    }
    stats_.add("accepted");
    return handle;
}

void
InferenceServer::workerLoop(std::size_t index)
{
    EngineWorker &worker = *workers_[index];
    const EngineWorker::CompleteFn completer =
        [this](PendingRequest &&pending, InferResponse &&response) {
            complete(std::move(pending), std::move(response));
        };
    while (auto batch = scheduler_->nextBatch()) {
        stats_.add("batches");
        stats_.add("batched_requests", batch->size());
        worker.runBatch(std::move(*batch), completer);
    }
}

void
InferenceServer::complete(PendingRequest &&pending,
                          InferResponse &&response)
{
    response.totalMs =
        elapsedMs(pending.submitted, ServeClock::now());
    response.queueMs = response.totalMs - response.serviceMs;
    if (response.queueMs < 0.0)
        response.queueMs = 0.0;

    stats_.add(outcomeStatKey(response.outcome));
    if (response.degraded())
        stats_.add("degraded");
    const bool converged = response.result.has_value() &&
                           response.result->census.converged;
    if (converged)
        stats_.add("converged");
    latency_[static_cast<std::size_t>(response.outcome)].record(
        response.totalMs);

    // Feed the brownout controller's pressure EWMAs: queue delay from
    // every completion, deadline misses from expiry sheds and
    // DeadlineExceeded failures.  Brownout sheds (ResourceExhausted)
    // are the ladder's own output, not a pressure signal — counting
    // them would wedge the Shed rung against its own recovery.
    if (brownout_ != nullptr) {
        const bool missed =
            (response.outcome == Outcome::Shed ||
             response.outcome == Outcome::Failed) &&
            response.error.code() == ErrorCode::DeadlineExceeded;
        brownout_->recordCompletion(response.queueMs, missed,
                                    converged);
    }

    // Feed the model's breaker.  A served response still counts as a
    // failure when the guard tripped mid-request (the output stands,
    // but the model is visibly misbehaving); shed / cancelled requests
    // say nothing about model health, so they only release a held
    // probe slot.
    auto breaker = breakers_.find(pending.request.modelId);
    if (breaker != breakers_.end()) {
        BreakerSignal signal = BreakerSignal::Neutral;
        if (response.outcome == Outcome::Ok) {
            signal = response.guardTripped() ? BreakerSignal::Failure
                                             : BreakerSignal::Success;
        } else if (response.outcome == Outcome::Failed) {
            signal = BreakerSignal::Failure;
        }
        breaker->second->report(signal, pending.breakerProbe,
                                ServeClock::now());
    }
    pending.promise.set_value(std::move(response));
}

void
InferenceServer::shed(PendingRequest &&pending)
{
    InferResponse response;
    response.id = pending.id;
    response.outcome = Outcome::Shed;
    response.error =
        errorf(ErrorCode::DeadlineExceeded,
               "shed: deadline (%.3f ms) expired while queued",
               pending.request.deadlineMs);
    complete(std::move(pending), std::move(response));
}

void
InferenceServer::brownoutShed(PendingRequest &&pending)
{
    brownout_->noteShed();
    stats_.add("brownout_shed");
    InferResponse response;
    response.id = pending.id;
    response.outcome = Outcome::Shed;
    response.brownoutLevel = BrownoutLevel::Shed;
    response.error =
        errorf(ErrorCode::ResourceExhausted,
               "browned out: overload shed of Background traffic");
    complete(std::move(pending), std::move(response));
}

void
InferenceServer::brownoutLoop()
{
    const auto interval =
        std::chrono::duration_cast<ServeClock::duration>(
            std::chrono::duration<double, std::milli>(
                opts_.brownout.tickIntervalMs));
    std::unique_lock<std::mutex> lock(brownoutMutex_);
    while (!brownoutStop_) {
        if (brownoutCv_.wait_for(lock, interval,
                                 [this]() { return brownoutStop_; }))
            break;
        lock.unlock();
        brownout_->tick(queue_.size());
        lock.lock();
    }
}

void
InferenceServer::stop(bool drain_queue)
{
    {
        const std::lock_guard<std::mutex> lock(lifecycle_);
        if (stopped_)
            return;
        stopped_ = true;
    }
    {
        const std::lock_guard<std::mutex> lock(brownoutMutex_);
        brownoutStop_ = true;
    }
    brownoutCv_.notify_all();
    if (brownoutThread_.joinable())
        brownoutThread_.join();
    queue_.close(drain_queue);
    for (std::thread &thread : threads_)
        thread.join();
    // Hard shutdown: everything the workers never pulled resolves as
    // Cancelled (drain leaves nothing behind).
    for (PendingRequest &pending : queue_.flush()) {
        InferResponse response;
        response.id = pending.id;
        response.outcome = Outcome::Cancelled;
        response.error = errorf(ErrorCode::Cancelled,
                                "server shut down before dispatch");
        complete(std::move(pending), std::move(response));
    }
}

void
InferenceServer::drain()
{
    stop(true);
}

void
InferenceServer::shutdown()
{
    stop(false);
}

bool
InferenceServer::accepting() const
{
    return !queue_.closed();
}

std::vector<std::string>
InferenceServer::modelIds() const
{
    const std::lock_guard<std::mutex> lock(modelsMutex_);
    std::vector<std::string> ids;
    ids.reserve(models_.size());
    for (const auto &[id, info] : models_)
        ids.push_back(id);
    return ids;
}

void
InferenceServer::onSwapSuccess(const std::string &model_id,
                               const VersionedEngine &replica0)
{
    {
        const std::lock_guard<std::mutex> lock(modelsMutex_);
        auto it = models_.find(model_id);
        if (it != models_.end()) {
            // inputShape is swap-invariant (the registry rejects
            // shape changes); the tunables may move with the version.
            it->second.mcDefaults = replica0.engine->options().mc;
            it->second.guardEnabled =
                replica0.engine->guard() != nullptr;
            it->second.int8Available =
                replica0.engine->int8Available();
        }
    }
    // Failures accumulated against the old version say nothing about
    // the new one: give it a Closed breaker.
    auto breaker = breakers_.find(model_id);
    if (breaker != breakers_.end())
        breaker->second->reset();
    stats_.add("swaps");
}

Expected<std::future<Status>>
InferenceServer::requestSwap(ModelVersionSpec spec)
{
    {
        const std::lock_guard<std::mutex> lock(modelsMutex_);
        if (models_.count(spec.modelId) == 0) {
            return errorf(ErrorCode::NotFound,
                          "model '%s' is not served; hot-swap "
                          "changes versions, not the model set",
                          spec.modelId.c_str());
        }
    }
    return registry_->requestSwap(std::move(spec));
}

LatencyHistogram
InferenceServer::latencySnapshot(Outcome outcome) const
{
    return latency_[static_cast<std::size_t>(outcome)];
}

HealthReport
InferenceServer::health() const
{
    HealthReport report;
    report.accepting = accepting();
    report.queueDepth = queue_.size();
    report.submitted = stats_.counter("submitted");
    report.accepted = stats_.counter("accepted");
    report.ok = stats_.counter("ok");
    report.failed = stats_.counter("failed");
    report.shed = stats_.counter("shed");
    report.cancelled = stats_.counter("cancelled");
    report.rejectedBreaker = stats_.counter("rejected_breaker");
    report.legacyTextLoads =
        checkpointStats().counter("legacy_text_loads");

    const LatencyHistogram &served =
        latency_[static_cast<std::size_t>(Outcome::Ok)];
    report.p50Ms = served.p50Ms();
    report.p95Ms = served.p95Ms();
    report.p99Ms = served.p99Ms();
    report.brownout = brownout_->state();

    // Copy the model map out so guard / registry snapshots (which
    // take other locks) run without holding modelsMutex_.
    std::map<std::string, ModelInfo> models;
    {
        const std::lock_guard<std::mutex> lock(modelsMutex_);
        models = models_;
    }
    report.models.reserve(models.size());
    for (const auto &[id, info] : models) {
        ModelHealth model;
        model.id = id;
        model.guardEnabled = info.guardEnabled;
        model.int8Available = info.int8Available;
        for (std::size_t p = 0; p < kPriorityLevels; ++p) {
            model.effectiveSamples[p] = brownout_->effectiveSamples(
                info.mcDefaults.samples, static_cast<Priority>(p),
                info.mcDefaults.quorum);
        }
        auto breaker = breakers_.find(id);
        if (breaker != breakers_.end()) {
            model.breakerState = breaker->second->state();
            model.breakerOpens = breaker->second->opens();
            model.breakerRejections = breaker->second->rejections();
        }
        Expected<RegistryModelHealth> registry =
            registry_->modelHealth(id);
        if (registry.hasValue())
            model.registry = std::move(registry).value();
        if (info.guardEnabled) {
            std::vector<GuardSnapshot> snapshots;
            snapshots.reserve(workers_.size());
            for (const auto &worker : workers_) {
                const std::shared_ptr<const VersionedEngine> replica =
                    worker->replica(id);
                if (replica != nullptr &&
                    replica->engine->guard() != nullptr) {
                    snapshots.push_back(
                        replica->engine->guard()->snapshot());
                }
            }
            model.guard = mergeGuardSnapshots(snapshots);
        }
        report.models.push_back(std::move(model));
    }
    return report;
}

std::string
healthJson(const HealthReport &report)
{
    std::string out = format(
        "{\"accepting\":%s,\"queue_depth\":%zu,"
        "\"submitted\":%llu,\"accepted\":%llu,\"ok\":%llu,"
        "\"failed\":%llu,\"shed\":%llu,\"cancelled\":%llu,"
        "\"rejected_breaker\":%llu,"
        "\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f",
        report.accepting ? "true" : "false", report.queueDepth,
        static_cast<unsigned long long>(report.submitted),
        static_cast<unsigned long long>(report.accepted),
        static_cast<unsigned long long>(report.ok),
        static_cast<unsigned long long>(report.failed),
        static_cast<unsigned long long>(report.shed),
        static_cast<unsigned long long>(report.cancelled),
        static_cast<unsigned long long>(report.rejectedBreaker),
        report.p50Ms, report.p95Ms, report.p99Ms);
    const BrownoutState &bo = report.brownout;
    out += format(
        ",\"brownout\":{\"enabled\":%s,\"level\":\"%s\","
        "\"queue_delay_ewma_ms\":%.3f,\"miss_rate_ewma\":%.4f,"
        "\"ticks\":%llu,\"escalations\":%llu,\"recoveries\":%llu,"
        "\"brownout_sheds\":%llu,\"converged\":%llu}",
        bo.enabled ? "true" : "false", brownoutLevelName(bo.level),
        bo.queueDelayEwmaMs, bo.missRateEwma,
        static_cast<unsigned long long>(bo.ticks),
        static_cast<unsigned long long>(bo.escalations),
        static_cast<unsigned long long>(bo.recoveries),
        static_cast<unsigned long long>(bo.brownoutSheds),
        static_cast<unsigned long long>(bo.converged));
    out += ",\"models\":[";
    for (std::size_t i = 0; i < report.models.size(); ++i) {
        const ModelHealth &m = report.models[i];
        if (i > 0)
            out += ",";
        out += format(
            "{\"id\":\"%s\",\"breaker\":\"%s\","
            "\"effective_samples\":[", m.id.c_str(),
            breakerStateName(m.breakerState));
        for (std::size_t p = 0; p < kPriorityLevels; ++p) {
            if (p > 0)
                out += ",";
            out += format("%zu", m.effectiveSamples[p]);
        }
        out += "]}";
    }
    out += "]}";
    return out;
}

const CircuitBreaker *
InferenceServer::breaker(const std::string &model_id) const
{
    auto it = breakers_.find(model_id);
    return it == breakers_.end() ? nullptr : it->second.get();
}

} // namespace fastbcnn::serve
