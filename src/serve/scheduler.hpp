/**
 * @file
 * Deadline- and priority-aware batch scheduler.
 *
 * Worker threads call nextBatch() in a loop.  The scheduler pulls the
 * best queued request (priority, then earliest deadline — the queue's
 * ordering), sheds any request whose deadline already expired before
 * dispatch (load shedding: completing it now with Outcome::Shed is
 * strictly better than burning a replica on an answer nobody is
 * waiting for), and then fills a micro-batch with up to maxBatch - 1
 * more queued requests of the *same model*.  Batching by model is
 * what makes the amortization work: every request in the batch runs
 * on one already-calibrated engine replica, so the predictor
 * thresholds and pre-inference machinery are resolved once per batch
 * instead of once per request.
 */

#ifndef FASTBCNN_SERVE_SCHEDULER_HPP
#define FASTBCNN_SERVE_SCHEDULER_HPP

#include <functional>
#include <optional>
#include <vector>

#include "serve/brownout.hpp"
#include "serve/queue.hpp"

namespace fastbcnn::serve {

/** Scheduling policy knobs. */
struct SchedulerOptions {
    /** Micro-batch size cap (1 disables batching). */
    std::size_t maxBatch = 8;
};

class BatchScheduler
{
  public:
    /** Disposal of a request shed before dispatch. */
    using ShedFn = std::function<void(PendingRequest &&)>;

    /**
     * @param queue the admission queue (not owned; must outlive this)
     * @param opts  policy knobs
     * @param shed  called with every load-shed request; must complete
     *              its promise (the server wires this to its
     *              completion path)
     * @param brownout optional brownout controller (not owned; must
     *              outlive this).  At the Shed rung the scheduler
     *              drops Background requests pre-dispatch through
     *              @p brownout_shed.
     * @param brownout_shed disposal of a browned-out Background
     *              request; must complete its promise.  Falls back to
     *              @p shed when null.
     */
    BatchScheduler(BoundedRequestQueue &queue, SchedulerOptions opts,
                   ShedFn shed,
                   const BrownoutController *brownout = nullptr,
                   ShedFn brownout_shed = nullptr);

    BatchScheduler(const BatchScheduler &) = delete;
    BatchScheduler &operator=(const BatchScheduler &) = delete;

    /**
     * Block until a micro-batch of unexpired same-model requests is
     * available (at least one request; never empty).
     * @return nullopt once the queue is closed and — when draining —
     *         empty.
     */
    std::optional<std::vector<PendingRequest>> nextBatch();

  private:
    /** @return true when the Shed rung drops @p pending (Background
     *  only); completes its promise through the brownout-shed path. */
    bool brownoutSheds(PendingRequest &pending);

    BoundedRequestQueue &queue_;
    SchedulerOptions opts_;
    ShedFn shed_;
    const BrownoutController *brownout_;
    ShedFn brownoutShed_;
};

} // namespace fastbcnn::serve

#endif // FASTBCNN_SERVE_SCHEDULER_HPP
