/**
 * @file
 * ModelRegistry — versioned engine replicas with atomic hot-swap.
 *
 * Each served model id maps to one *active* version: a set of
 * calibrated engine replicas (one per worker) published as
 * shared_ptr<const VersionedEngine> slots.  A worker acquires its slot
 * once per micro-batch, so every request observes exactly one version
 * and an old version keeps serving in-flight batches until its last
 * shared_ptr drops — the swap is atomic per batch and drains by
 * refcount, with no lock held across engine work.
 *
 * Swapping in a new version is the failure-isolated path:
 *
 *   1. the factory builds + warms (calibrates) all replicas in the
 *      background, outside every lock;
 *   2. the candidate must pass a health gate — a deterministic
 *      reference-digest inference compared element-wise against a
 *      recorded expectation;
 *   3. only then are the slots republished and the version flipped.
 *
 * Any failure (factory error, uncalibrated engine, shape mismatch,
 * gate miss) leaves the previous version exactly in place — rollback
 * is the no-op of never having published — and arms an exponential
 * backoff so a crash-looping artefact cannot hot-loop rebuild work.
 */

#ifndef FASTBCNN_SERVE_REGISTRY_HPP
#define FASTBCNN_SERVE_REGISTRY_HPP

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "serve/request.hpp"

namespace fastbcnn::serve {

/** Registry policy knobs (ServerOptions::registry). */
struct RegistryOptions {
    /** First-failure backoff window in ms. */
    double backoffBaseMs = 100.0;
    /** Backoff ceiling in ms (doubling stops here). */
    double backoffMaxMs = 10000.0;
};

/**
 * Validate @p opts at the API boundary.
 * @return ok, or an InvalidArgument error naming the bad value.
 */
[[nodiscard]] Status validateRegistryOptions(const RegistryOptions &opts);

/**
 * Pre-swap health gate: the candidate's replica 0 must reproduce a
 * recorded reference digest (FastBcnnEngine::tryReferenceDigest)
 * element-wise within @p epsilon before the swap publishes.  Disabled
 * by default — initial installs usually have no recorded expectation
 * yet.
 */
struct HealthGate {
    bool enabled = false;
    /** Reference input (must match the model's input shape). */
    Tensor input;
    /** Expected predictive-mean digest on @p input. */
    std::vector<double> expectedMean;
    /** Element-wise tolerance. */
    double epsilon = 1e-6;
    /** Digest sampling: MC sample count and seed (determinism pin). */
    std::size_t samples = 8;
    std::uint64_t seed = 0x9e3779b9u;
};

/** Builds one calibrated engine replica. */
using EngineFactory =
    std::function<Expected<std::unique_ptr<FastBcnnEngine>>()>;

/** One candidate version of one model. */
struct ModelVersionSpec {
    /** The served model id this version belongs to. */
    std::string modelId;
    /** Monotonic version number (must exceed the active version). */
    std::uint64_t version = 1;
    /** Replica builder; called once per worker, outside all locks. */
    EngineFactory factory;
    /** Pre-swap acceptance gate. */
    HealthGate gate;
};

/** A published engine replica tagged with its version. */
struct VersionedEngine {
    std::uint64_t version = 0;
    std::unique_ptr<FastBcnnEngine> engine;
};

/** Point-in-time registry state of one model (for health()). */
struct RegistryModelHealth {
    std::string id;
    std::uint64_t activeVersion = 0;
    /** Version currently building/gating (0 = none). */
    std::uint64_t warmingVersion = 0;
    /** Successful swaps, the initial install included. */
    std::uint64_t swaps = 0;
    /** Failed swap attempts that left the old version live. */
    std::uint64_t rollbacks = 0;
    std::size_t consecutiveLoadFailures = 0;
    /** Current backoff window in ms (0 = not backing off). */
    double backoffMs = 0.0;
    /** Human-readable description of the last lifecycle event. */
    std::string lastEvent;
};

class ModelRegistry
{
  public:
    /**
     * Invoked (outside the registry lock) after each successful swap
     * with the model id and the new version's replica-0 engine — the
     * server uses it to refresh admission metadata and reset the
     * model's circuit breaker.
     */
    using SwapCallback = std::function<void(
        const std::string &model_id, const VersionedEngine &replica0)>;

    /**
     * @param replicas slots published per model == worker count
     * @param opts     backoff policy (must validate)
     */
    ModelRegistry(std::size_t replicas, RegistryOptions opts);

    /** Joins the background swap thread (pending swaps are failed). */
    ~ModelRegistry();

    ModelRegistry(const ModelRegistry &) = delete;
    ModelRegistry &operator=(const ModelRegistry &) = delete;

    /** Set the post-swap callback (call before the first swap). */
    void setSwapCallback(SwapCallback callback);

    /**
     * Build, warm, gate and publish @p spec synchronously.  For a new
     * model id this is the initial install; for an existing id the
     * version must exceed the active one, the input shape must match
     * (in-flight requests were admitted against it), and the model
     * must not be inside its failure backoff window (Unavailable).
     * On any error the previously active version stays published.
     */
    [[nodiscard]] Status swapNow(const ModelVersionSpec &spec);

    /**
     * Queue @p spec for the background swap thread.  The future
     * resolves with swapNow()'s status; a registry destroyed first
     * resolves it with Cancelled.
     */
    [[nodiscard]] std::future<Status> requestSwap(ModelVersionSpec spec);

    /**
     * Acquire worker @p replica's slot of @p model_id's active
     * version; nullptr when the model is not installed.  The returned
     * pointer keeps the version alive for as long as the caller holds
     * it — hold it for one micro-batch, no longer.
     */
    [[nodiscard]] std::shared_ptr<const VersionedEngine> acquire(
        const std::string &model_id, std::size_t replica) const;

    /** @return installed model ids (sorted). */
    std::vector<std::string> modelIds() const;

    /** @return registry state of every model (sorted by id). */
    std::vector<RegistryModelHealth> health() const;

    /** @return registry state of @p model_id (NotFound if absent). */
    [[nodiscard]] Expected<RegistryModelHealth> modelHealth(
        const std::string &model_id) const;

    /** @return slots published per model. */
    std::size_t replicas() const { return replicas_; }

  private:
    struct ModelState {
        std::vector<std::shared_ptr<const VersionedEngine>> slots;
        std::uint64_t activeVersion = 0;
        std::uint64_t warmingVersion = 0;
        std::uint64_t swaps = 0;
        std::uint64_t rollbacks = 0;
        std::size_t consecutiveLoadFailures = 0;
        double backoffMs = 0.0;
        ServeClock::time_point nextRetryAt{};
        std::string lastEvent = "never installed";
    };

    struct SwapJob {
        ModelVersionSpec spec;
        std::promise<Status> done;
    };

    /** Record a failed attempt: arm backoff, count the rollback. */
    void noteFailure(const std::string &model_id, std::uint64_t version,
                     const std::string &what);

    RegistryModelHealth healthOf(const std::string &id,
                                 const ModelState &state) const;

    void swapLoop();

    const std::size_t replicas_;
    const RegistryOptions opts_;
    SwapCallback onSwap_;

    mutable std::mutex mutex_;
    std::map<std::string, ModelState> models_;

    std::mutex jobsMutex_;
    std::condition_variable jobsCv_;
    std::deque<SwapJob> jobs_;
    bool stopping_ = false;
    std::thread swapThread_;
};

} // namespace fastbcnn::serve

#endif // FASTBCNN_SERVE_REGISTRY_HPP
