#include "brownout.hpp"

#include <cmath>

#include "common/check.hpp"

namespace fastbcnn::serve {

Status
validateBrownoutOptions(const BrownoutOptions &opts)
{
    if (!(opts.tickIntervalMs > 0.0) ||
        !std::isfinite(opts.tickIntervalMs)) {
        return errorf(ErrorCode::InvalidArgument,
                      "BrownoutOptions::tickIntervalMs %g must be > 0 "
                      "and finite", opts.tickIntervalMs);
    }
    if (!(opts.queueDelayLowMs >= 0.0) ||
        !(opts.queueDelayHighMs >= opts.queueDelayLowMs) ||
        !std::isfinite(opts.queueDelayHighMs)) {
        return errorf(ErrorCode::InvalidArgument,
                      "BrownoutOptions queue-delay thresholds need "
                      "0 <= low (%g) <= high (%g) < inf",
                      opts.queueDelayLowMs, opts.queueDelayHighMs);
    }
    if (!(opts.missRateLow >= 0.0) ||
        !(opts.missRateHigh >= opts.missRateLow) ||
        !(opts.missRateHigh <= 1.0)) {
        return errorf(ErrorCode::InvalidArgument,
                      "BrownoutOptions miss-rate thresholds need "
                      "0 <= low (%g) <= high (%g) <= 1",
                      opts.missRateLow, opts.missRateHigh);
    }
    if (!(opts.ewmaAlpha > 0.0) || !(opts.ewmaAlpha <= 1.0)) {
        return errorf(ErrorCode::InvalidArgument,
                      "BrownoutOptions::ewmaAlpha %g outside (0, 1]",
                      opts.ewmaAlpha);
    }
    if (opts.recoverTicks == 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "BrownoutOptions::recoverTicks must be >= 1");
    }
    if (!(opts.targetCiWidth > 0.0) ||
        !std::isfinite(opts.targetCiWidth)) {
        return errorf(ErrorCode::InvalidArgument,
                      "BrownoutOptions::targetCiWidth %g must be > 0 "
                      "and finite (the AdaptiveExit rung needs a "
                      "criterion)", opts.targetCiWidth);
    }
    for (std::size_t p = 0; p < kPriorityLevels; ++p) {
        const double f = opts.budgetFraction[p];
        if (!(f > 0.0) || !(f <= 1.0)) {
            return errorf(ErrorCode::InvalidArgument,
                          "BrownoutOptions::budgetFraction[%s] %g "
                          "outside (0, 1]",
                          priorityName(static_cast<Priority>(p)), f);
        }
    }
    if (opts.budgetFloor == 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "BrownoutOptions::budgetFloor must be >= 1 "
                      "(an average needs at least one sample)");
    }
    return Status::ok();
}

BrownoutController::BrownoutController(BrownoutOptions opts)
    : opts_(opts)
{
    FASTBCNN_CHECK(validateBrownoutOptions(opts_).isOk(),
                   "BrownoutController built from invalid options");
}

void
BrownoutController::recordCompletion(double queue_ms, bool missed,
                                     bool converged)
{
    if (converged)
        converged_.fetch_add(1, std::memory_order_relaxed);
    if (!opts_.enabled)
        return;
    const std::lock_guard<std::mutex> lock(mutex_);
    const double a = opts_.ewmaAlpha;
    queueDelayEwmaMs_ = (1.0 - a) * queueDelayEwmaMs_ + a * queue_ms;
    missRateEwma_ =
        (1.0 - a) * missRateEwma_ + a * (missed ? 1.0 : 0.0);
    ++completionsSinceTick_;
}

void
BrownoutController::tick(std::size_t queue_depth)
{
    if (!opts_.enabled)
        return;
    const std::lock_guard<std::mutex> lock(mutex_);
    ++ticks_;
    bool pressured = false;
    bool healthy = false;
    if (completionsSinceTick_ == 0) {
        // Nothing completed since the last tick: the EWMAs are stale.
        // An empty queue means nothing is flowing and nothing is
        // hurting — count it toward recovery; a non-empty one holds.
        healthy = queue_depth == 0;
    } else {
        pressured = queueDelayEwmaMs_ > opts_.queueDelayHighMs ||
                    missRateEwma_ > opts_.missRateHigh;
        healthy = queueDelayEwmaMs_ < opts_.queueDelayLowMs &&
                  missRateEwma_ < opts_.missRateLow;
    }
    completionsSinceTick_ = 0;

    const int level = level_.load(std::memory_order_relaxed);
    if (pressured) {
        healthyTicks_ = 0;
        if (level + 1 < static_cast<int>(kBrownoutLevels)) {
            level_.store(level + 1, std::memory_order_relaxed);
            ++escalations_;
        }
        return;
    }
    if (!healthy) {
        // Hysteresis band: hold the rung, forfeit recovery credit.
        healthyTicks_ = 0;
        return;
    }
    if (level > 0 && ++healthyTicks_ >= opts_.recoverTicks) {
        level_.store(level - 1, std::memory_order_relaxed);
        ++recoveries_;
        healthyTicks_ = 0;
    }
}

BrownoutLevel
BrownoutController::apply(McOptions &mc, Priority priority) const
{
    const BrownoutLevel rung = opts_.enabled ? level()
                                             : BrownoutLevel::Normal;
    if (rung == BrownoutLevel::Normal)
        return rung;

    // AdaptiveExit and every rung above it force the CI early exit.
    // A request that asked for a *tighter* width keeps its own (the
    // ladder degrades toward the caller's floor, never past it).
    if (!(mc.targetCiWidth > 0.0 &&
          mc.targetCiWidth < opts_.targetCiWidth)) {
        mc.targetCiWidth = opts_.targetCiWidth;
    }
    if (opts_.minSamples > mc.minSamples)
        mc.minSamples = opts_.minSamples;
    if (mc.minSamples > mc.samples)
        mc.minSamples = mc.samples;

    if (rung >= BrownoutLevel::BudgetClamp) {
        const std::size_t budget =
            effectiveSamples(mc.samples, priority, mc.quorum);
        if (!(mc.sampleBudget > 0 && mc.sampleBudget < budget))
            mc.sampleBudget = budget;
    }
    return rung;
}

std::size_t
BrownoutController::effectiveSamples(std::size_t samples,
                                     Priority priority,
                                     std::size_t quorum) const
{
    if (!opts_.enabled || level() < BrownoutLevel::BudgetClamp)
        return samples;
    const double fraction =
        opts_.budgetFraction[static_cast<std::size_t>(priority)];
    std::size_t budget = static_cast<std::size_t>(
        std::ceil(fraction * static_cast<double>(samples)));
    if (budget < opts_.budgetFloor)
        budget = opts_.budgetFloor;
    if (budget < quorum)
        budget = quorum;
    if (budget < 1)
        budget = 1;
    return budget < samples ? budget : samples;
}

void
BrownoutController::forceLevel(BrownoutLevel level)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
    healthyTicks_ = 0;
}

BrownoutState
BrownoutController::state() const
{
    BrownoutState out;
    out.enabled = opts_.enabled;
    out.level = level();
    out.brownoutSheds =
        brownoutSheds_.load(std::memory_order_relaxed);
    out.converged = converged_.load(std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(mutex_);
    out.queueDelayEwmaMs = queueDelayEwmaMs_;
    out.missRateEwma = missRateEwma_;
    out.ticks = ticks_;
    out.escalations = escalations_;
    out.recoveries = recoveries_;
    return out;
}

} // namespace fastbcnn::serve
