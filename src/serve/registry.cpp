#include "registry.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"

namespace fastbcnn::serve {

Status
validateRegistryOptions(const RegistryOptions &opts)
{
    if (!(opts.backoffBaseMs > 0.0) ||
        !std::isfinite(opts.backoffBaseMs)) {
        return errorf(ErrorCode::InvalidArgument,
                      "RegistryOptions::backoffBaseMs %g must be "
                      "finite and > 0", opts.backoffBaseMs);
    }
    if (!(opts.backoffMaxMs >= opts.backoffBaseMs) ||
        !std::isfinite(opts.backoffMaxMs)) {
        return errorf(ErrorCode::InvalidArgument,
                      "RegistryOptions::backoffMaxMs %g must be "
                      "finite and >= backoffBaseMs (%g)",
                      opts.backoffMaxMs, opts.backoffBaseMs);
    }
    return Status::ok();
}

ModelRegistry::ModelRegistry(std::size_t replicas, RegistryOptions opts)
    : replicas_(replicas), opts_(opts)
{
    FASTBCNN_CHECK(replicas_ > 0,
                   "ModelRegistry needs at least one replica slot");
    swapThread_ = std::thread([this]() { swapLoop(); });
}

ModelRegistry::~ModelRegistry()
{
    std::deque<SwapJob> orphans;
    {
        const std::lock_guard<std::mutex> lock(jobsMutex_);
        stopping_ = true;
        orphans.swap(jobs_);
    }
    jobsCv_.notify_all();
    swapThread_.join();
    for (SwapJob &job : orphans) {
        job.done.set_value(
            errorf(ErrorCode::Cancelled,
                   "registry destroyed before swapping model '%s' to "
                   "v%llu", job.spec.modelId.c_str(),
                   static_cast<unsigned long long>(job.spec.version)));
    }
}

void
ModelRegistry::setSwapCallback(SwapCallback callback)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    onSwap_ = std::move(callback);
}

void
ModelRegistry::swapLoop()
{
    for (;;) {
        SwapJob job;
        {
            std::unique_lock<std::mutex> lock(jobsMutex_);
            jobsCv_.wait(lock, [this]() {
                return stopping_ || !jobs_.empty();
            });
            if (stopping_)
                return;
            job = std::move(jobs_.front());
            jobs_.pop_front();
        }
        job.done.set_value(swapNow(job.spec));
    }
}

std::future<Status>
ModelRegistry::requestSwap(ModelVersionSpec spec)
{
    SwapJob job;
    job.spec = std::move(spec);
    std::future<Status> done = job.done.get_future();
    {
        const std::lock_guard<std::mutex> lock(jobsMutex_);
        if (stopping_) {
            job.done.set_value(errorf(
                ErrorCode::Unavailable,
                "registry is shutting down; swap not queued"));
            return done;
        }
        jobs_.push_back(std::move(job));
    }
    jobsCv_.notify_one();
    return done;
}

void
ModelRegistry::noteFailure(const std::string &model_id,
                           std::uint64_t version,
                           const std::string &what)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    ModelState &state = models_[model_id];
    state.warmingVersion = 0;
    ++state.consecutiveLoadFailures;
    const double exponent = static_cast<double>(
        std::min<std::size_t>(state.consecutiveLoadFailures, 30) - 1);
    state.backoffMs = std::min(
        opts_.backoffBaseMs * std::pow(2.0, exponent),
        opts_.backoffMaxMs);
    state.nextRetryAt =
        ServeClock::now() +
        std::chrono::duration_cast<ServeClock::duration>(
            std::chrono::duration<double, std::milli>(state.backoffMs));
    if (state.activeVersion != 0)
        ++state.rollbacks;
    state.lastEvent = format(
        "v%llu rejected (%s); %s v%llu, next retry in %.0f ms",
        static_cast<unsigned long long>(version), what.c_str(),
        state.activeVersion != 0 ? "rolled back to" : "still without",
        static_cast<unsigned long long>(state.activeVersion),
        state.backoffMs);
    warn("registry: model '%s' %s", model_id.c_str(),
         state.lastEvent.c_str());
}

Status
ModelRegistry::swapNow(const ModelVersionSpec &spec)
{
    if (spec.modelId.empty()) {
        return errorf(ErrorCode::InvalidArgument,
                      "ModelVersionSpec::modelId must be non-empty");
    }
    if (spec.version == 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "ModelVersionSpec::version must be >= 1 "
                      "(0 means 'not installed')");
    }
    if (spec.factory == nullptr) {
        return errorf(ErrorCode::InvalidArgument,
                      "ModelVersionSpec of '%s' has no factory",
                      spec.modelId.c_str());
    }

    // Admission: backoff gate + version monotonicity, then mark the
    // model as warming so health() shows the build in progress.
    std::optional<Shape> activeShape;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ModelState &state = models_[spec.modelId];
        const ServeClock::time_point now = ServeClock::now();
        if (state.consecutiveLoadFailures > 0 &&
            now < state.nextRetryAt) {
            return errorf(
                ErrorCode::Unavailable,
                "model '%s' is backing off after %zu failed "
                "load(s); retry in %.0f ms", spec.modelId.c_str(),
                state.consecutiveLoadFailures,
                elapsedMs(now, state.nextRetryAt));
        }
        if (spec.version <= state.activeVersion) {
            return errorf(
                ErrorCode::InvalidArgument,
                "model '%s' version %llu does not exceed the active "
                "v%llu", spec.modelId.c_str(),
                static_cast<unsigned long long>(spec.version),
                static_cast<unsigned long long>(state.activeVersion));
        }
        if (state.warmingVersion != 0) {
            return errorf(
                ErrorCode::Unavailable,
                "model '%s' is already warming v%llu",
                spec.modelId.c_str(),
                static_cast<unsigned long long>(state.warmingVersion));
        }
        state.warmingVersion = spec.version;
        if (!state.slots.empty()) {
            activeShape =
                state.slots.front()->engine->network().inputShape();
        }
    }

    // Build + warm every replica outside the lock: serving continues
    // on the old version for the whole (potentially long) build.
    std::vector<std::shared_ptr<const VersionedEngine>> slots;
    slots.reserve(replicas_);
    for (std::size_t w = 0; w < replicas_; ++w) {
        Expected<std::unique_ptr<FastBcnnEngine>> built = spec.factory();
        if (!built.hasValue()) {
            Error err = std::move(built).takeError().withContext(
                format("building replica %zu of model '%s' v%llu", w,
                       spec.modelId.c_str(),
                       static_cast<unsigned long long>(spec.version)));
            noteFailure(spec.modelId, spec.version, "factory failed");
            return err;
        }
        std::unique_ptr<FastBcnnEngine> engine =
            std::move(built).value();
        if (engine == nullptr || !engine->calibrated()) {
            noteFailure(spec.modelId, spec.version,
                        "factory returned an uncalibrated engine");
            return errorf(ErrorCode::InvalidArgument,
                          "factory of model '%s' v%llu must return a "
                          "calibrated engine", spec.modelId.c_str(),
                          static_cast<unsigned long long>(
                              spec.version));
        }
        if (activeShape.has_value() &&
            !(engine->network().inputShape() == *activeShape)) {
            noteFailure(spec.modelId, spec.version,
                        "input shape changed");
            return errorf(
                ErrorCode::Mismatch,
                "model '%s' v%llu input shape %s differs from the "
                "active version's %s — admitted requests would no "
                "longer fit", spec.modelId.c_str(),
                static_cast<unsigned long long>(spec.version),
                engine->network().inputShape().toString().c_str(),
                activeShape->toString().c_str());
        }
        auto slot = std::make_shared<VersionedEngine>();
        slot->version = spec.version;
        slot->engine = std::move(engine);
        slots.push_back(std::move(slot));
    }

    // Health gate: the candidate must reproduce the recorded digest
    // before it is allowed to serve a single request.
    if (spec.gate.enabled) {
        Expected<std::vector<double>> digest =
            slots.front()->engine->tryReferenceDigest(
                spec.gate.input, spec.gate.samples, spec.gate.seed);
        if (!digest.hasValue()) {
            noteFailure(spec.modelId, spec.version,
                        "health-gate inference failed");
            return std::move(digest).takeError().withContext(
                format("health-gating model '%s' v%llu",
                       spec.modelId.c_str(),
                       static_cast<unsigned long long>(spec.version)));
        }
        const std::vector<double> &got = digest.value();
        const std::vector<double> &want = spec.gate.expectedMean;
        if (got.size() != want.size()) {
            noteFailure(spec.modelId, spec.version,
                        "health-gate digest size mismatch");
            return errorf(ErrorCode::Mismatch,
                          "model '%s' v%llu digest has %zu elements; "
                          "the recorded reference has %zu",
                          spec.modelId.c_str(),
                          static_cast<unsigned long long>(spec.version),
                          got.size(), want.size());
        }
        for (std::size_t i = 0; i < got.size(); ++i) {
            if (!(std::fabs(got[i] - want[i]) <= spec.gate.epsilon)) {
                noteFailure(spec.modelId, spec.version,
                            "health-gate digest mismatch");
                return errorf(
                    ErrorCode::DataLoss,
                    "model '%s' v%llu failed its health gate: "
                    "digest[%zu] = %.9g, expected %.9g (epsilon %g) "
                    "— the checkpoint does not reproduce the "
                    "recorded reference", spec.modelId.c_str(),
                    static_cast<unsigned long long>(spec.version), i,
                    got[i], want[i], spec.gate.epsilon);
            }
        }
    }

    // Publish: flip every slot under the lock.  Workers acquire a slot
    // once per micro-batch, so each batch sees exactly one version and
    // the old engines drain by refcount as their batches finish.
    SwapCallback callback;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ModelState &state = models_[spec.modelId];
        state.slots = std::move(slots);
        state.activeVersion = spec.version;
        state.warmingVersion = 0;
        state.consecutiveLoadFailures = 0;
        state.backoffMs = 0.0;
        ++state.swaps;
        state.lastEvent = format(
            "swapped to v%llu",
            static_cast<unsigned long long>(spec.version));
        callback = onSwap_;
    }
    if (callback) {
        const std::shared_ptr<const VersionedEngine> replica0 =
            acquire(spec.modelId, 0);
        FASTBCNN_CHECK(replica0 != nullptr,
                       "freshly swapped model lost its slots");
        callback(spec.modelId, *replica0);
    }
    inform("registry: model '%s' now serving v%llu (%zu replicas)",
         spec.modelId.c_str(),
         static_cast<unsigned long long>(spec.version), replicas_);
    return Status::ok();
}

std::shared_ptr<const VersionedEngine>
ModelRegistry::acquire(const std::string &model_id,
                       std::size_t replica) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = models_.find(model_id);
    if (it == models_.end() || it->second.slots.empty())
        return nullptr;
    FASTBCNN_CHECK(replica < it->second.slots.size(),
                   "replica index out of range");
    return it->second.slots[replica];
}

std::vector<std::string>
ModelRegistry::modelIds() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> ids;
    ids.reserve(models_.size());
    for (const auto &[id, state] : models_) {
        if (state.activeVersion != 0)
            ids.push_back(id);
    }
    return ids;
}

RegistryModelHealth
ModelRegistry::healthOf(const std::string &id,
                        const ModelState &state) const
{
    RegistryModelHealth health;
    health.id = id;
    health.activeVersion = state.activeVersion;
    health.warmingVersion = state.warmingVersion;
    health.swaps = state.swaps;
    health.rollbacks = state.rollbacks;
    health.consecutiveLoadFailures = state.consecutiveLoadFailures;
    health.backoffMs = state.backoffMs;
    health.lastEvent = state.lastEvent;
    return health;
}

std::vector<RegistryModelHealth>
ModelRegistry::health() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<RegistryModelHealth> all;
    all.reserve(models_.size());
    for (const auto &[id, state] : models_)
        all.push_back(healthOf(id, state));
    return all;
}

Expected<RegistryModelHealth>
ModelRegistry::modelHealth(const std::string &model_id) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = models_.find(model_id);
    if (it == models_.end()) {
        return errorf(ErrorCode::NotFound,
                      "model '%s' is not in the registry",
                      model_id.c_str());
    }
    return healthOf(model_id, it->second);
}

} // namespace fastbcnn::serve
