/**
 * @file
 * Engine-replica worker: executes micro-batches on registry replicas.
 *
 * Each worker is driven by exactly one thread and owns a replica
 * *slot index* into the ModelRegistry rather than the engines
 * themselves: at the start of every same-model micro-batch it acquires
 * its slot's shared_ptr<const VersionedEngine> once, so every request
 * in the batch observes exactly one model version — a hot-swap
 * published mid-batch takes effect at the next batch, and the old
 * version stays alive (via the shared_ptr) until the last in-flight
 * batch on it completes.  No engine is ever touched concurrently; the
 * only cross-thread state is the queue, the registry's slot map and
 * the server's (internally locked) metrics.
 *
 * For every request the worker re-checks cancellation and the deadline
 * at dispatch time, merges the request's McOverrides into the
 * replica's default McOptions — converting the *remaining* end-to-end
 * budget into McOptions::deadlineMs so the MC runner stops launching
 * samples when the request's budget runs out — and dispatches through
 * the engine's Expected<T> API.
 */

#ifndef FASTBCNN_SERVE_WORKER_HPP
#define FASTBCNN_SERVE_WORKER_HPP

#include <functional>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "serve/brownout.hpp"
#include "serve/registry.hpp"
#include "serve/request.hpp"

namespace fastbcnn::serve {

class EngineWorker
{
  public:
    /** Disposal of a finished request: must complete its promise. */
    using CompleteFn =
        std::function<void(PendingRequest &&, InferResponse &&)>;

    /**
     * @param index    worker id == registry replica slot (reported in
     *                 responses)
     * @param registry the replica source (not owned; must outlive the
     *                 worker)
     * @param brownout optional brownout controller (not owned; must
     *                 outlive the worker).  Its current rung's quality
     *                 levers are applied to every exact-path dispatch
     *                 after the per-request override merge.
     */
    EngineWorker(std::size_t index, const ModelRegistry *registry,
                 const BrownoutController *brownout = nullptr);

    EngineWorker(const EngineWorker &) = delete;
    EngineWorker &operator=(const EngineWorker &) = delete;

    /**
     * Execute one same-model micro-batch on the model's currently
     * active version, completing every request through @p complete
     * (exactly once each).
     */
    void runBatch(std::vector<PendingRequest> &&batch,
                  const CompleteFn &complete);

    /**
     * @return this worker's slot of @p model_id's active version
     * (nullptr: not installed).  Holding the pointer pins the version.
     */
    std::shared_ptr<const VersionedEngine> replica(
        const std::string &model_id) const;

    /** @return the worker id. */
    std::size_t index() const { return index_; }

    /**
     * Merge @p pending's overrides into @p engine's default McOptions
     * at dispatch time @p now (remaining-deadline conversion included).
     * Exposed for tests.
     */
    static McOptions effectiveOptions(const FastBcnnEngine &engine,
                                      const PendingRequest &pending,
                                      ServeClock::time_point now);

  private:
    std::size_t index_;
    const ModelRegistry *registry_;
    const BrownoutController *brownout_;
};

} // namespace fastbcnn::serve

#endif // FASTBCNN_SERVE_WORKER_HPP
