/**
 * @file
 * Engine-replica worker: executes micro-batches on its own engines.
 *
 * Each worker owns one calibrated FastBcnnEngine replica per served
 * model and is driven by exactly one thread, so no engine is ever
 * touched concurrently — the only cross-thread state is the request
 * queue and the server's (internally locked) metrics.  For every
 * request the worker re-checks cancellation and the deadline at
 * dispatch time, merges the request's McOverrides into the replica's
 * default McOptions — converting the *remaining* end-to-end budget
 * into McOptions::deadlineMs so the MC runner stops launching samples
 * when the request's budget runs out — and dispatches through the
 * engine's Expected<T> API.
 */

#ifndef FASTBCNN_SERVE_WORKER_HPP
#define FASTBCNN_SERVE_WORKER_HPP

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "serve/request.hpp"

namespace fastbcnn::serve {

class EngineWorker
{
  public:
    /** Disposal of a finished request: must complete its promise. */
    using CompleteFn =
        std::function<void(PendingRequest &&, InferResponse &&)>;

    /**
     * @param index    worker id (reported in responses)
     * @param replicas one calibrated engine per served model id
     */
    EngineWorker(
        std::size_t index,
        std::map<std::string, std::unique_ptr<FastBcnnEngine>>
            replicas);

    EngineWorker(const EngineWorker &) = delete;
    EngineWorker &operator=(const EngineWorker &) = delete;

    /**
     * Execute one same-model micro-batch, completing every request
     * through @p complete (exactly once each).
     */
    void runBatch(std::vector<PendingRequest> &&batch,
                  const CompleteFn &complete);

    /** @return this worker's replica of @p model_id (nullptr: none). */
    const FastBcnnEngine *replica(const std::string &model_id) const;

    /** @return the worker id. */
    std::size_t index() const { return index_; }

    /**
     * Merge @p pending's overrides into @p engine's default McOptions
     * at dispatch time @p now (remaining-deadline conversion included).
     * Exposed for tests.
     */
    static McOptions effectiveOptions(const FastBcnnEngine &engine,
                                      const PendingRequest &pending,
                                      ServeClock::time_point now);

  private:
    std::size_t index_;
    std::map<std::string, std::unique_ptr<FastBcnnEngine>> replicas_;
};

} // namespace fastbcnn::serve

#endif // FASTBCNN_SERVE_WORKER_HPP
