#include "queue.hpp"

#include "common/check.hpp"

namespace fastbcnn::serve {

BoundedRequestQueue::BoundedRequestQueue(std::size_t capacity)
    : capacity_(capacity)
{
    FASTBCNN_CHECK(capacity > 0,
                   "BoundedRequestQueue needs a non-zero capacity");
}

Status
BoundedRequestQueue::push(PendingRequest &&pending)
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (closed_) {
            return errorf(ErrorCode::Unavailable,
                          "request queue is closed (server shutting "
                          "down)");
        }
        if (size_ >= capacity_) {
            return errorf(ErrorCode::ResourceExhausted,
                          "request queue full (%zu of %zu); retry "
                          "with backoff", size_, capacity_);
        }
        const auto level =
            static_cast<std::size_t>(pending.request.priority);
        FASTBCNN_CHECK(level < kPriorityLevels,
                       "priority out of range");
        const Key key{pending.deadline, pending.seq};
        buckets_[level].emplace(key, std::move(pending));
        ++size_;
    }
    available_.notify_one();
    return Status::ok();
}

PendingRequest
BoundedRequestQueue::takeBestLocked()
{
    for (Bucket &bucket : buckets_) {
        if (bucket.empty())
            continue;
        auto it = bucket.begin();
        PendingRequest best = std::move(it->second);
        bucket.erase(it);
        --size_;
        return best;
    }
    panic("takeBestLocked on an empty queue");
}

std::optional<PendingRequest>
BoundedRequestQueue::pop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    available_.wait(lock, [this]() { return size_ > 0 || closed_; });
    // A hard close abandons leftovers to flush(); a draining close
    // keeps serving until the queue runs dry.
    if (closed_ && (!drain_ || size_ == 0))
        return std::nullopt;
    if (size_ == 0)
        return std::nullopt;
    return takeBestLocked();
}

std::optional<PendingRequest>
BoundedRequestQueue::tryPopModel(const std::string &model_id)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    for (Bucket &bucket : buckets_) {
        for (auto it = bucket.begin(); it != bucket.end(); ++it) {
            if (it->second.request.modelId != model_id)
                continue;
            PendingRequest found = std::move(it->second);
            bucket.erase(it);
            --size_;
            return found;
        }
    }
    return std::nullopt;
}

void
BoundedRequestQueue::close(bool drain)
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        drain_ = drain;
    }
    available_.notify_all();
}

std::vector<PendingRequest>
BoundedRequestQueue::flush()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<PendingRequest> leftovers;
    leftovers.reserve(size_);
    for (Bucket &bucket : buckets_) {
        for (auto &[key, pending] : bucket)
            leftovers.push_back(std::move(pending));
        bucket.clear();
    }
    size_ = 0;
    return leftovers;
}

std::size_t
BoundedRequestQueue::size() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return size_;
}

bool
BoundedRequestQueue::closed() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

} // namespace fastbcnn::serve
