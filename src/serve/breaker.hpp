/**
 * @file
 * Per-model circuit breaker for the serving layer.
 *
 * Closed → Open after a run of consecutive failures (engine run-level
 * errors or guard-tripped degradations); while Open every request is
 * rejected immediately with Unavailable — no queueing, no engine time.
 * After a cooldown the breaker half-opens and admits a bounded number
 * of probe requests; enough probe successes close it again, any probe
 * failure reopens it.  The state machine is a mutex-guarded
 * monitor — admission and completion race freely across the server's
 * threads.
 */

#ifndef FASTBCNN_SERVE_BREAKER_HPP
#define FASTBCNN_SERVE_BREAKER_HPP

#include <cstdint>
#include <mutex>

#include "common/error.hpp"
#include "serve/request.hpp"

namespace fastbcnn::serve {

/** Circuit-breaker policy knobs. */
struct BreakerOptions {
    /** Master switch; off = every request admitted, nothing tracked. */
    bool enabled = false;
    /** Consecutive failures that trip Closed → Open. */
    std::size_t failureThreshold = 5;
    /** Time Open before probing, in ms on ServeClock. */
    double cooldownMs = 1000.0;
    /** Probe requests admitted concurrently while HalfOpen. */
    std::size_t halfOpenProbes = 1;
    /** Probe successes required to close from HalfOpen. */
    std::size_t closeSuccesses = 2;
};

/**
 * Validate @p opts at the API boundary.
 * @return ok, or an InvalidArgument error naming the bad value.
 */
[[nodiscard]] Status validateBreakerOptions(const BreakerOptions &opts);

/** Breaker state machine positions. */
enum class BreakerState {
    Closed,   ///< healthy: everything admitted, failures counted
    Open,     ///< tripped: everything rejected until cooldown expires
    HalfOpen  ///< probing: bounded probes admitted, rest rejected
};

/** @return a stable display name for @p state. */
const char *breakerStateName(BreakerState state);

/** How a completed request reads to the breaker. */
enum class BreakerSignal {
    Success,  ///< served cleanly
    Failure,  ///< engine error or guard-tripped degradation
    Neutral   ///< shed / cancelled: says nothing about model health
};

/**
 * The breaker itself.  Thread-safe; a default-constructed breaker is
 * disabled and admits everything.
 */
class CircuitBreaker
{
  public:
    /** What admit() decided. */
    struct Admission {
        bool admitted = true;  ///< false = reject with Unavailable
        bool probe = false;    ///< true = holds a half-open probe slot
    };

    CircuitBreaker() = default;
    explicit CircuitBreaker(BreakerOptions opts) : opts_(opts) {}

    /**
     * Admission decision at @p now.  An admitted probe MUST be
     * reported back via report(..., probe = true, ...) exactly once —
     * with Neutral if the request dies before reaching the engine —
     * or its slot leaks and the breaker sticks HalfOpen.
     */
    Admission admit(ServeClock::time_point now);

    /** Fold one completed request's outcome into the state machine. */
    void report(BreakerSignal signal, bool probe,
                ServeClock::time_point now);

    /** @return the current state (Open may flip HalfOpen on admit). */
    BreakerState state() const;

    /**
     * Force the breaker back to Closed with a clean failure count —
     * the model registry calls this after a successful hot-swap, since
     * failures accumulated against the old version say nothing about
     * the new one.  Cumulative opens/rejections counters are kept.
     */
    void reset();

    /** @return times the breaker tripped open (incl. probe reopens). */
    std::uint64_t opens() const;

    /** @return requests rejected while Open / probe-saturated. */
    std::uint64_t rejections() const;

    /** @return the policy options. */
    const BreakerOptions &options() const { return opts_; }

  private:
    mutable std::mutex mutex_;
    BreakerOptions opts_;
    BreakerState state_ = BreakerState::Closed;
    std::size_t consecutiveFailures_ = 0;
    std::size_t probesInFlight_ = 0;
    std::size_t probeSuccesses_ = 0;
    ServeClock::time_point openedAt_{};
    std::uint64_t opens_ = 0;
    std::uint64_t rejections_ = 0;
};

} // namespace fastbcnn::serve

#endif // FASTBCNN_SERVE_BREAKER_HPP
