/**
 * @file
 * InferenceServer — concurrent batch-inference serving front end.
 *
 * Owns the full pipeline: a bounded MPMC admission queue
 * (backpressure: a full queue rejects with ResourceExhausted), a
 * deadline/priority-aware batch scheduler with pre-dispatch load
 * shedding, and a pool of worker threads each holding its own
 * calibrated engine replica per served model.  Per-outcome latency
 * histograms and a StatGroup give the load-generator harness and the
 * soak tests a consistent view of what happened to every request.
 *
 * Lifecycle: create() → submit()* → drain() (graceful: serve
 * everything queued, then stop) or shutdown() (hard: stop pulling,
 * cancel everything still queued).  Either way every accepted
 * request's future resolves exactly once; the destructor performs a
 * hard shutdown if neither was called.
 */

#ifndef FASTBCNN_SERVE_SERVER_HPP
#define FASTBCNN_SERVE_SERVER_HPP

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "serve/breaker.hpp"
#include "serve/brownout.hpp"
#include "serve/queue.hpp"
#include "serve/registry.hpp"
#include "serve/scheduler.hpp"
#include "serve/worker.hpp"

namespace fastbcnn::serve {

/** One model the server hosts. */
struct ModelSpec {
    /** The id requests address (InferRequest::modelId). */
    std::string id;
    /**
     * Builds one *calibrated* engine replica.  Called once per worker
     * at create() time; every call must produce an engine with the
     * same input shape and MC defaults (replicas of one model).
     */
    EngineFactory factory;
    /** Registry version the initial install publishes as. */
    std::uint64_t version = 1;
    /** Pre-install health gate (disabled by default). */
    HealthGate gate;
};

/** Server sizing knobs. */
struct ServerOptions {
    /** Worker threads == engine replicas per model. */
    std::size_t workers = 2;
    /** Admission-queue bound (backpressure point). */
    std::size_t queueCapacity = 64;
    /** Micro-batch size cap (1 disables batching). */
    std::size_t maxBatch = 8;
    /** Per-model circuit breaker (disabled by default). */
    BreakerOptions breaker;
    /** Model-registry policy (hot-swap backoff). */
    RegistryOptions registry;
    /** Overload brownout controller (disabled by default). */
    BrownoutOptions brownout;
};

/**
 * Validate @p opts at the API boundary.
 * @return ok, or an InvalidArgument error naming the bad value.
 */
[[nodiscard]] Status validateServerOptions(const ServerOptions &opts);

/** Point-in-time health of one served model. */
struct ModelHealth {
    std::string id;
    /** True when the model's engines run with a skip guard. */
    bool guardEnabled = false;
    /** True when the model's engines carry an int8 mirror. */
    bool int8Available = false;
    BreakerState breakerState = BreakerState::Closed;
    std::uint64_t breakerOpens = 0;
    std::uint64_t breakerRejections = 0;
    /** Guard state merged across the worker replicas' guards. */
    GuardSnapshot guard;
    /**
     * Registry lifecycle state: active / warming version, swap and
     * rollback counts, failure backoff, last lifecycle event.
     */
    RegistryModelHealth registry;
    /**
     * Sample budget each priority class gets for this model at the
     * current brownout rung (== the model's default T everywhere when
     * the ladder is at Normal or the controller is disabled).
     */
    std::array<std::size_t, kPriorityLevels> effectiveSamples{};
};

/** Point-in-time health of the whole server (health()). */
struct HealthReport {
    bool accepting = false;
    std::size_t queueDepth = 0;
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::uint64_t shed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t rejectedBreaker = 0;
    /**
     * Process-wide count of text checkpoints loaded without a CRC
     * footer (checkpointStats() "legacy_text_loads") — weight files
     * that predate integrity footers and should be re-saved.
     */
    std::uint64_t legacyTextLoads = 0;
    /** Served-request (Outcome::Ok) latency percentiles in ms. */
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    /** Brownout controller snapshot (enabled == false when off). */
    BrownoutState brownout;
    std::vector<ModelHealth> models;
};

/**
 * Render @p report as a single JSON object on one line.  Additive
 * over time: existing keys keep their names and types (bench and soak
 * consumers parse this), new subsystems append new keys.
 */
std::string healthJson(const HealthReport &report);

class InferenceServer
{
  public:
    /**
     * Build a server: validates @p opts, instantiates
     * opts.workers replicas of every model in @p models (rejecting
     * factories that fail or return uncalibrated engines), and starts
     * the worker threads.
     */
    [[nodiscard]] static Expected<std::unique_ptr<InferenceServer>>
    create(
        std::vector<ModelSpec> models, ServerOptions opts = {});

    /** Hard shutdown if the caller never stopped the server. */
    ~InferenceServer();

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /**
     * Submit one request (thread-safe, never blocks).
     *
     * Admission control rejects — returning the error, with no future
     * ever created — on: unknown model (NotFound), wrong input shape
     * or invalid merged MC options (InvalidArgument), full queue
     * (ResourceExhausted), stopping server (Unavailable).  An
     * accepted request's future resolves exactly once with its
     * InferResponse.
     */
    [[nodiscard]] Expected<RequestHandle> submit(InferRequest request);

    /**
     * Graceful drain: stop admitting, serve everything queued
     * (shedding what expires on the way), join the workers.
     * Idempotent with shutdown(); first caller wins.
     */
    void drain();

    /**
     * Hard shutdown: stop admitting, finish only the batches already
     * dispatched, complete everything still queued with
     * Outcome::Cancelled, join the workers.
     */
    void shutdown();

    /** @return true while submit() can still accept requests. */
    bool accepting() const;

    /** @return the number of queued (not yet dispatched) requests. */
    std::size_t queueDepth() const { return queue_.size(); }

    /** @return the server options. */
    const ServerOptions &options() const { return opts_; }

    /** @return the served model ids. */
    std::vector<std::string> modelIds() const;

    /**
     * Serving counters: accepted, rejected_full, rejected_invalid,
     * ok, shed, cancelled, failed, degraded, batches,
     * batched_requests.
     */
    const StatGroup &stats() const { return stats_; }

    /** @return a snapshot of the latency histogram of @p outcome. */
    LatencyHistogram latencySnapshot(Outcome outcome) const;

    /**
     * Assemble a health report: queue depth, admission/outcome
     * counters, served-latency percentiles, and per-model breaker +
     * registry state plus the guard snapshots merged across worker
     * replicas.  Safe to call at any time from any thread.
     */
    HealthReport health() const;

    /** @return the breaker of @p model_id (nullptr: not served). */
    const CircuitBreaker *breaker(const std::string &model_id) const;

    /**
     * Queue a hot-swap of @p spec.modelId to @p spec (thread-safe;
     * the model must already be served — swaps change versions, not
     * the model set).  The new version builds, warms and health-gates
     * on the registry's background thread while the old one keeps
     * serving; on success admission metadata is refreshed, the
     * model's circuit breaker resets, and the "swaps" counter ticks —
     * on failure the old version keeps serving (rollback) and the
     * model enters exponential backoff.  The returned future resolves
     * with the final status.
     */
    [[nodiscard]] Expected<std::future<Status>> requestSwap(
        ModelVersionSpec spec);

    /** @return the model registry (for tests / direct inspection). */
    const ModelRegistry &registry() const { return *registry_; }

    /** @return the brownout controller (for tests / benches). */
    BrownoutController &brownout() { return *brownout_; }
    const BrownoutController &brownout() const { return *brownout_; }

  private:
    /** Admission-time knowledge about one served model. */
    struct ModelInfo {
        Shape inputShape;
        McOptions mcDefaults;
        /** True when the model's engines carry a skip guard. */
        bool guardEnabled = false;
        /** True when the model's engines carry an int8 mirror —
         *  admission rejects Precision::Int8 requests otherwise. */
        bool int8Available = false;
    };

    explicit InferenceServer(ServerOptions opts);

    /** Registry post-swap hook: refresh ModelInfo, reset the breaker. */
    void onSwapSuccess(const std::string &model_id,
                       const VersionedEngine &replica0);

    void workerLoop(std::size_t index);
    /** Resolve @p pending's promise and account for the outcome. */
    void complete(PendingRequest &&pending, InferResponse &&response);
    /** complete() for a load-shed request. */
    void shed(PendingRequest &&pending);
    /** complete() for a Background request the Shed rung dropped. */
    void brownoutShed(PendingRequest &&pending);
    /** Brownout tick thread body (runs only when brownout.enabled). */
    void brownoutLoop();
    void stop(bool drain_queue);

    ServerOptions opts_;
    /** Guards models_ (mutated by onSwapSuccess, read by submit). */
    mutable std::mutex modelsMutex_;
    std::map<std::string, ModelInfo> models_;
    /** Per-model breakers (stable addresses; created at create()). */
    std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
    BoundedRequestQueue queue_;
    /** Built before the scheduler / workers (both hold pointers). */
    std::unique_ptr<BrownoutController> brownout_;
    std::unique_ptr<BatchScheduler> scheduler_;
    std::vector<std::unique_ptr<EngineWorker>> workers_;
    std::vector<std::thread> threads_;

    /** Brownout tick thread (joined by stop()). */
    std::thread brownoutThread_;
    std::mutex brownoutMutex_;
    std::condition_variable brownoutCv_;
    bool brownoutStop_ = false;

    StatGroup stats_{"serve"};
    std::array<LatencyHistogram, kOutcomeCount> latency_;
    std::atomic<std::uint64_t> nextId_{1};
    std::atomic<std::uint64_t> nextSeq_{1};

    /**
     * Versioned engine replicas (workers acquire per batch).
     * Declared after every member its swap callback touches (models_,
     * breakers_, stats_), so its destructor — which joins the swap
     * thread, possibly mid-callback — runs first.
     */
    std::unique_ptr<ModelRegistry> registry_;

    std::mutex lifecycle_;
    bool stopped_ = false;
};

} // namespace fastbcnn::serve

#endif // FASTBCNN_SERVE_SERVER_HPP
