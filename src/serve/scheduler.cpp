#include "scheduler.hpp"

#include "common/check.hpp"

namespace fastbcnn::serve {

BatchScheduler::BatchScheduler(BoundedRequestQueue &queue,
                               SchedulerOptions opts, ShedFn shed,
                               const BrownoutController *brownout,
                               ShedFn brownout_shed)
    : queue_(queue), opts_(opts), shed_(std::move(shed)),
      brownout_(brownout), brownoutShed_(std::move(brownout_shed))
{
    FASTBCNN_CHECK(opts_.maxBatch > 0,
                   "SchedulerOptions::maxBatch must be >= 1");
    FASTBCNN_CHECK(shed_ != nullptr,
                   "BatchScheduler needs a shed callback");
}

bool
BatchScheduler::brownoutSheds(PendingRequest &pending)
{
    if (brownout_ == nullptr || !brownout_->shedBackground() ||
        pending.request.priority != Priority::Background) {
        return false;
    }
    (brownoutShed_ != nullptr ? brownoutShed_ : shed_)(
        std::move(pending));
    return true;
}

std::optional<std::vector<PendingRequest>>
BatchScheduler::nextBatch()
{
    for (;;) {
        std::optional<PendingRequest> head = queue_.pop();
        if (!head.has_value())
            return std::nullopt;
        if (head->expired(ServeClock::now())) {
            shed_(std::move(*head));
            continue;
        }
        // The brownout ladder's last rung: Background traffic is
        // dropped pre-dispatch so the paying classes keep their
        // (already clamped) sample budgets.
        if (brownoutSheds(*head))
            continue;

        std::vector<PendingRequest> batch;
        batch.reserve(opts_.maxBatch);
        batch.push_back(std::move(*head));
        // The batch head fixes the model; fill with compatible
        // requests, shedding expired ones found along the way (they
        // would be shed at their own dispatch anyway — doing it here
        // frees queue slots sooner).
        const std::string model = batch.front().request.modelId;
        while (batch.size() < opts_.maxBatch) {
            std::optional<PendingRequest> next =
                queue_.tryPopModel(model);
            if (!next.has_value())
                break;
            if (next->expired(ServeClock::now())) {
                shed_(std::move(*next));
                continue;
            }
            if (brownoutSheds(*next))
                continue;
            batch.push_back(std::move(*next));
        }
        return batch;
    }
}

} // namespace fastbcnn::serve
