#include "request.hpp"

#include "common/check.hpp"

namespace fastbcnn::serve {

const char *
priorityName(Priority priority)
{
    switch (priority) {
      case Priority::Interactive: return "Interactive";
      case Priority::Standard: return "Standard";
      case Priority::Background: return "Background";
    }
    panic("unknown Priority %d", static_cast<int>(priority));
}

const char *
brownoutLevelName(BrownoutLevel level)
{
    switch (level) {
      case BrownoutLevel::Normal: return "Normal";
      case BrownoutLevel::AdaptiveExit: return "AdaptiveExit";
      case BrownoutLevel::BudgetClamp: return "BudgetClamp";
      case BrownoutLevel::Shed: return "Shed";
    }
    panic("unknown BrownoutLevel %d", static_cast<int>(level));
}

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::Ok: return "Ok";
      case Outcome::Shed: return "Shed";
      case Outcome::Cancelled: return "Cancelled";
      case Outcome::Failed: return "Failed";
    }
    panic("unknown Outcome %d", static_cast<int>(outcome));
}

const char *
outcomeStatKey(Outcome outcome)
{
    switch (outcome) {
      case Outcome::Ok: return "ok";
      case Outcome::Shed: return "shed";
      case Outcome::Cancelled: return "cancelled";
      case Outcome::Failed: return "failed";
    }
    panic("unknown Outcome %d", static_cast<int>(outcome));
}

} // namespace fastbcnn::serve
