#include "synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>

#include "common/check.hpp"

namespace fastbcnn {

Tensor
makeMnistLikeImage(std::size_t label, std::uint64_t seed)
{
    std::mt19937_64 engine(seed * 0x9e3779b97f4a7c15ull + label);
    std::normal_distribution<double> noise(0.0, 0.05);
    std::uniform_real_distribution<double> jitter(-1.5, 1.5);

    Tensor img(Shape({1, 28, 28}));
    const double cx = 14.0 + jitter(engine);
    const double cy = 14.0 + jitter(engine);
    // Class-dependent stroke: orientation and curvature derived from
    // the label, echoing how digit classes differ by stroke geometry.
    const double angle = static_cast<double>(label) *
                         std::numbers::pi / 5.0;
    const double curve = 0.05 + 0.02 * static_cast<double>(label % 5);
    const double thickness = 1.6 + 0.15 *
                             static_cast<double>(label % 3);

    for (std::size_t r = 0; r < 28; ++r) {
        for (std::size_t c = 0; c < 28; ++c) {
            const double x = static_cast<double>(c) - cx;
            const double y = static_cast<double>(r) - cy;
            // Rotated coordinates.
            const double u = x * std::cos(angle) + y * std::sin(angle);
            const double v = -x * std::sin(angle) + y * std::cos(angle);
            // Distance to a parabolic stroke v = curve * u^2.
            const double d = std::fabs(v - curve * u * u);
            double value = std::exp(-d * d / (2.0 * thickness *
                                              thickness));
            // Second stroke for even labels (loops/crossbars).
            if (label % 2 == 0) {
                const double d2 = std::fabs(u + 0.3 * v);
                value = std::max(value,
                                 0.8 * std::exp(-d2 * d2 / 4.0));
            }
            value += noise(engine);
            img(0, r, c) = static_cast<float>(
                std::clamp(value, 0.0, 1.0));
        }
    }
    return img;
}

Tensor
makeCifarLikeImage(std::size_t label, std::uint64_t seed)
{
    std::mt19937_64 engine(seed * 0xd1b54a32d192ed03ull + label);
    std::normal_distribution<double> noise(0.0, 0.15);
    std::uniform_real_distribution<double> phase(0.0,
                                                 2.0 * std::numbers::pi);

    Tensor img(Shape({3, 32, 32}));
    const double fx = 0.2 + 0.08 * static_cast<double>(label % 7);
    const double fy = 0.15 + 0.06 * static_cast<double>(label % 5);
    const double ph0 = phase(engine);
    const double blob_x = 8.0 + static_cast<double>(
        (label * 7 + seed) % 16);
    const double blob_y = 8.0 + static_cast<double>(
        (label * 13 + seed / 3) % 16);

    for (std::size_t ch = 0; ch < 3; ++ch) {
        const double chroma = 0.5 + 0.5 * std::cos(
            static_cast<double>(label) + static_cast<double>(ch) *
            2.0 * std::numbers::pi / 3.0);
        double mean = 0.0, sq = 0.0;
        for (std::size_t r = 0; r < 32; ++r) {
            for (std::size_t c = 0; c < 32; ++c) {
                const double grating = std::sin(
                    fx * static_cast<double>(c) +
                    fy * static_cast<double>(r) + ph0 +
                    static_cast<double>(ch));
                const double dx = static_cast<double>(c) - blob_x;
                const double dy = static_cast<double>(r) - blob_y;
                const double blob = std::exp(-(dx * dx + dy * dy) /
                                             40.0);
                const double v = chroma * grating + 1.5 * blob +
                                 noise(engine);
                img(ch, r, c) = static_cast<float>(v);
                mean += v;
                sq += v * v;
            }
        }
        // Standardise the channel (zero mean, unit variance).
        mean /= 1024.0;
        const double var = std::max(sq / 1024.0 - mean * mean, 1e-6);
        const double inv_std = 1.0 / std::sqrt(var);
        for (std::size_t r = 0; r < 32; ++r) {
            for (std::size_t c = 0; c < 32; ++c) {
                img(ch, r, c) = static_cast<float>(
                    (img(ch, r, c) - mean) * inv_std);
            }
        }
    }
    return img;
}

Dataset
makeDataset(bool mnist_like, std::size_t num_classes, std::size_t count,
            std::uint64_t seed)
{
    FASTBCNN_CHECK(num_classes > 0, "need at least one class");
    Dataset set;
    set.numClasses = num_classes;
    set.examples.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t label = i % num_classes;
        Tensor img = mnist_like
                         ? makeMnistLikeImage(label, seed + i * 101)
                         : makeCifarLikeImage(label, seed + i * 101);
        set.examples.push_back(Example{std::move(img), label});
    }
    return set;
}

} // namespace fastbcnn
