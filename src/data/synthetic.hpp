/**
 * @file
 * Synthetic structured datasets standing in for MNIST and CIFAR-100
 * (DESIGN.md §2): class-conditioned procedural images with additive
 * noise.  The experiments measure sparsity statistics and prediction
 * agreement, which depend on activation distributions rather than
 * dataset semantics; structured inputs (strokes / textures, non-zero
 * background statistics) exercise the same code paths real images do.
 */

#ifndef FASTBCNN_DATA_SYNTHETIC_HPP
#define FASTBCNN_DATA_SYNTHETIC_HPP

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace fastbcnn {

/** One labelled example. */
struct Example {
    Tensor image;
    std::size_t label;
};

/** A labelled dataset. */
struct Dataset {
    std::vector<Example> examples;
    std::size_t numClasses = 0;
};

/**
 * Generate an MNIST-like 1×28×28 image: a class-dependent stroke
 * pattern (orientation and curvature vary with the label) on a dark
 * background, with Gaussian pixel noise.  Pixels land in [0, 1].
 */
Tensor makeMnistLikeImage(std::size_t label, std::uint64_t seed);

/**
 * Generate a CIFAR-like 3×32×32 image: class-dependent colour
 * gratings and blob textures with noise.  Pixels are standardised to
 * roughly zero mean, unit variance per channel (the preprocessing
 * trained CIFAR models assume).
 */
Tensor makeCifarLikeImage(std::size_t label, std::uint64_t seed);

/**
 * Build a balanced dataset of @p count examples.
 *
 * @param mnist_like true → 1×28×28 images, false → 3×32×32
 * @param num_classes labels cycle over [0, num_classes)
 * @param count       number of examples
 * @param seed        generator seed (deterministic)
 */
Dataset makeDataset(bool mnist_like, std::size_t num_classes,
                    std::size_t count, std::uint64_t seed);

} // namespace fastbcnn

#endif // FASTBCNN_DATA_SYNTHETIC_HPP
