#include "fault.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "common/math_util.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"

namespace fastbcnn {

namespace {

/** Flip bit @p bit of the float at @p slot (type-punned, no UB). */
void
flipBit(float &slot, unsigned bit)
{
    auto word = std::bit_cast<std::uint32_t>(slot);
    word ^= 1u << (bit & 31u);
    slot = std::bit_cast<float>(word);
}

/** @return the parameter tensor of @p layer, or nullptr. */
Tensor *
weightsOf(Layer &layer)
{
    switch (layer.kind()) {
      case LayerKind::Conv2d:
        return &static_cast<Conv2d &>(layer).weights();
      case LayerKind::Linear:
        return &static_cast<Linear &>(layer).weights();
      default:
        return nullptr;
    }
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::WeightBitFlip: return "WeightBitFlip";
      case FaultKind::ActivationBitFlip: return "ActivationBitFlip";
      case FaultKind::ActivationNaN: return "ActivationNaN";
      case FaultKind::ActivationInf: return "ActivationInf";
      case FaultKind::MaskCorrupt: return "MaskCorrupt";
      case FaultKind::StuckBrng: return "StuckBrng";
      case FaultKind::SampleKill: return "SampleKill";
    }
    panic("unknown FaultKind %d", static_cast<int>(kind));
}

FaultPlan &
FaultPlan::add(FaultSpec spec)
{
    switch (spec.kind) {
      case FaultKind::WeightBitFlip:
      case FaultKind::ActivationBitFlip:
      case FaultKind::ActivationNaN:
      case FaultKind::ActivationInf:
      case FaultKind::MaskCorrupt:
        FASTBCNN_CHECK(!spec.layer.empty(),
                       "layer-targeted fault needs a layer name");
        break;
      case FaultKind::StuckBrng:
      case FaultKind::SampleKill:
        break;
    }
    specs_.push_back(std::move(spec));
    return *this;
}

FaultPlan &
FaultPlan::killRandomSamples(std::size_t k, std::size_t total)
{
    FASTBCNN_CHECK_LE(k, total);
    // Seeded rejection sampling over the plan's splitmix64 stream:
    // deterministic for a given (seed, k, total) and independent of
    // everything else in the plan.
    std::uint64_t stream = splitmix64(seed_ ^ 0xfa0175ebc3b1d2e4ull);
    std::vector<bool> taken(total, false);
    std::size_t chosen = 0;
    while (chosen < k) {
        stream = splitmix64(stream);
        const std::size_t victim =
            static_cast<std::size_t>(stream % total);
        if (taken[victim])
            continue;
        taken[victim] = true;
        ++chosen;
        FaultSpec spec;
        spec.kind = FaultKind::SampleKill;
        spec.sample = victim;
        specs_.push_back(std::move(spec));
    }
    return *this;
}

bool
FaultPlan::sampleKilled(std::size_t sample) const
{
    for (const FaultSpec &spec : specs_) {
        if (spec.kind == FaultKind::SampleKill &&
            appliesTo(spec, sample)) {
            return true;
        }
    }
    return false;
}

std::unique_ptr<Brng>
FaultPlan::wrapBrng(std::unique_ptr<Brng> inner,
                    std::size_t sample) const
{
    for (const FaultSpec &spec : specs_) {
        if (spec.kind == FaultKind::StuckBrng &&
            appliesTo(spec, sample)) {
            inner = std::make_unique<StuckBrng>(
                std::move(inner), spec.fromDraw, spec.stuckBit);
        }
    }
    return inner;
}

const BitVolume *
FaultInjectionHooks::dropoutMask(const std::string &layer_name,
                                 const Shape &shape)
{
    const BitVolume *mask =
        inner_ ? inner_->dropoutMask(layer_name, shape) : nullptr;
    if (mask == nullptr)
        return nullptr;
    for (const FaultSpec &spec : plan_->specs()) {
        if (spec.kind != FaultKind::MaskCorrupt ||
            !FaultPlan::appliesTo(spec, sample_) ||
            spec.layer != layer_name) {
            continue;
        }
        // Corrupt a private copy; the inner hooks keep (and record)
        // the uncorrupted mask they produced.
        auto [it, ignored] =
            corrupted_.insert_or_assign(layer_name, *mask);
        (void)ignored;
        BitVolume &bad = it->second;
        if (spec.element == kAllElements) {
            for (std::size_t i = 0; i < bad.size(); ++i)
                bad.setFlat(i, !bad.getFlat(i));
        } else {
            const std::size_t i = spec.element % bad.size();
            bad.setFlat(i, !bad.getFlat(i));
        }
        mask = &bad;
    }
    return mask;
}

void
FaultInjectionHooks::onActivation(const std::string &layer_name,
                                  LayerKind kind, const Tensor &out)
{
    if (inner_)
        inner_->onActivation(layer_name, kind, out);
}

void
FaultInjectionHooks::mutateActivation(const std::string &layer_name,
                                      LayerKind kind, Tensor &out)
{
    if (inner_)
        inner_->mutateActivation(layer_name, kind, out);
    for (const FaultSpec &spec : plan_->specs()) {
        if (!FaultPlan::appliesTo(spec, sample_) ||
            spec.layer != layer_name || out.numel() == 0) {
            continue;
        }
        const std::size_t i = spec.element == kAllElements
                                  ? 0
                                  : spec.element % out.numel();
        switch (spec.kind) {
          case FaultKind::ActivationBitFlip:
            flipBit(out.at(i), spec.bit);
            break;
          case FaultKind::ActivationNaN:
            out.at(i) = std::numeric_limits<float>::quiet_NaN();
            break;
          case FaultKind::ActivationInf:
            out.at(i) = std::numeric_limits<float>::infinity();
            break;
          default:
            break;
        }
    }
}

Expected<std::size_t>
applyWeightFaults(Network &net, const FaultPlan &plan)
{
    std::size_t flips = 0;
    for (const FaultSpec &spec : plan.specs()) {
        if (spec.kind != FaultKind::WeightBitFlip)
            continue;
        const std::optional<NodeId> id = net.tryFindNode(spec.layer);
        if (!id) {
            return errorf(ErrorCode::NotFound,
                          "weight fault targets unknown layer '%s'",
                          spec.layer.c_str());
        }
        Tensor *weights = weightsOf(net.layer(*id));
        if (weights == nullptr || weights->numel() == 0) {
            return errorf(ErrorCode::InvalidArgument,
                          "weight fault targets layer '%s' which has "
                          "no parameters", spec.layer.c_str());
        }
        flipBit(weights->at(spec.element % weights->numel()),
                spec.bit);
        ++flips;
    }
    return flips;
}

} // namespace fastbcnn
