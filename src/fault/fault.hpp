/**
 * @file
 * Deterministic fault injection for fault-tolerance testing.
 *
 * A FaultPlan is a seedable, reproducible list of faults to inject
 * into an MC-dropout run.  The FPGA BNN accelerator line this library
 * mirrors (Fan et al.) runs the T Monte-Carlo samples as independent
 * hardware lanes, so the interesting failure unit is one sample: a
 * single-event upset flips a weight or activation bit, an LFSR gets
 * stuck, a DMA error corrupts a dropout mask, or a whole lane dies.
 * The plan models exactly those, and the guarded runner
 * (tryRunMcDropout) turns each into a per-sample failure instead of a
 * process abort — a posterior estimate over the surviving T' samples
 * is still valid (Gal & Ghahramani), just wider.
 *
 * Injection points:
 *  - weights:  applyWeightFaults() flips bits in stored parameters
 *              (whole-run faults; applied once, before inference)
 *  - activations: FaultInjectionHooks::mutateActivation() flips bits
 *              or poisons values with NaN/Inf inside the forward pass
 *  - dropout masks: FaultInjectionHooks::dropoutMask() corrupts the
 *              mask a SamplingHooks delegate produced
 *  - BRNG:     StuckBrng pins the Bernoulli stream to a constant from
 *              a configurable draw onward (stuck LFSR state)
 *  - samples:  SampleKill fails a sample outright (dead lane)
 *
 * Everything is a pure function of (plan contents, plan seed, sample
 * index), so a faulted run is bit-identical for any thread count.
 */

#ifndef FASTBCNN_FAULT_FAULT_HPP
#define FASTBCNN_FAULT_FAULT_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "nn/network.hpp"
#include "rng/brng.hpp"

namespace fastbcnn {

/** What a single FaultSpec injects. */
enum class FaultKind {
    WeightBitFlip,     ///< flip one bit of a stored weight
    ActivationBitFlip, ///< flip one bit of a layer output value
    ActivationNaN,     ///< overwrite a layer output value with NaN
    ActivationInf,     ///< overwrite a layer output value with +Inf
    MaskCorrupt,       ///< invert dropout-mask bit(s)
    StuckBrng,         ///< BRNG emits a constant bit from a draw on
    SampleKill         ///< the whole sample fails (dead lane)
};

/** @return a stable human-readable name for @p kind. */
const char *faultKindName(FaultKind kind);

/** FaultSpec::sample value meaning "inject into every sample". */
inline constexpr std::size_t kEverySample =
    static_cast<std::size_t>(-1);
/** FaultSpec::element value meaning "every element of the target". */
inline constexpr std::size_t kAllElements =
    static_cast<std::size_t>(-1);

/** One fault to inject.  Unused fields are ignored per kind. */
struct FaultSpec {
    FaultKind kind = FaultKind::SampleKill;
    /** Target MC sample index, or kEverySample. */
    std::size_t sample = kEverySample;
    /**
     * Target layer name (Weight/Activation/Mask kinds).  Must name a
     * layer of the network the plan is applied to.
     */
    std::string layer;
    /**
     * Flat element index into the target tensor / mask, reduced
     * modulo its size; kAllElements hits every element (MaskCorrupt
     * only — a fully inverted mask).
     */
    std::size_t element = 0;
    /** Bit to flip for the *BitFlip kinds (0 = LSB ... 31 = sign). */
    unsigned bit = 30;
    /** StuckBrng: index of the first stuck draw. */
    std::size_t fromDraw = 0;
    /** StuckBrng: the constant output bit. */
    bool stuckBit = true;
};

/**
 * A deterministic, seedable collection of FaultSpecs.
 *
 * The seed only matters for the randomized helpers
 * (killRandomSamples); explicitly added specs are deterministic by
 * construction.  Plans are immutable while a run is in flight — the
 * guarded runner reads them concurrently from worker threads.
 */
class FaultPlan
{
  public:
    FaultPlan() = default;
    explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

    /** @return the plan seed (0 when defaulted). */
    std::uint64_t seed() const { return seed_; }

    /** Append one fault.  Chainable. */
    FaultPlan &add(FaultSpec spec);

    /**
     * Deterministically pick @p k distinct victims among @p total
     * samples (derived from the plan seed) and add a SampleKill for
     * each.  Chainable.
     */
    FaultPlan &killRandomSamples(std::size_t k, std::size_t total);

    /** @return every spec, in insertion order. */
    const std::vector<FaultSpec> &specs() const { return specs_; }

    /** @return true when the plan injects nothing. */
    bool empty() const { return specs_.empty(); }

    /** @return true when @p spec targets @p sample. */
    static bool appliesTo(const FaultSpec &spec, std::size_t sample)
    {
        return spec.sample == kEverySample || spec.sample == sample;
    }

    /** @return true when a SampleKill targets @p sample. */
    bool sampleKilled(std::size_t sample) const;

    /**
     * Wrap @p inner with the plan's BRNG faults for @p sample;
     * returns @p inner unchanged when none apply.
     */
    std::unique_ptr<Brng> wrapBrng(std::unique_ptr<Brng> inner,
                                   std::size_t sample) const;

  private:
    std::uint64_t seed_ = 0;
    std::vector<FaultSpec> specs_;
};

/**
 * Brng decorator modelling a stuck LFSR: delegates to the inner
 * generator (keeping its stream position advancing) until
 * @p from_draw, then emits @p stuck_bit forever.
 */
class StuckBrng : public Brng
{
  public:
    StuckBrng(std::unique_ptr<Brng> inner, std::size_t from_draw,
              bool stuck_bit)
        : inner_(std::move(inner)), fromDraw_(from_draw),
          stuckBit_(stuck_bit)
    {}

    bool nextBit() override
    {
        const bool real = inner_->nextBit();
        return draw_++ < fromDraw_ ? real : stuckBit_;
    }

    double dropRate() const override { return inner_->dropRate(); }

  private:
    std::unique_ptr<Brng> inner_;
    std::size_t fromDraw_;
    std::size_t draw_ = 0;
    bool stuckBit_;
};

/**
 * ForwardHooks decorator injecting one sample's activation and mask
 * faults around an inner hooks object (typically SamplingHooks).
 * Stateless with respect to the network; safe to create per sample on
 * worker threads.
 */
class FaultInjectionHooks : public ForwardHooks
{
  public:
    /**
     * @param plan   the fault plan (not owned; must outlive this)
     * @param sample index of the MC sample this object serves
     * @param inner  delegate producing the real masks (may be null)
     */
    FaultInjectionHooks(const FaultPlan &plan, std::size_t sample,
                        ForwardHooks *inner)
        : plan_(&plan), sample_(sample), inner_(inner)
    {}

    const BitVolume *dropoutMask(const std::string &layer_name,
                                 const Shape &shape) override;
    void onActivation(const std::string &layer_name, LayerKind kind,
                      const Tensor &out) override;
    void mutateActivation(const std::string &layer_name,
                          LayerKind kind, Tensor &out) override;

  private:
    const FaultPlan *plan_;
    std::size_t sample_;
    ForwardHooks *inner_;
    /** Storage keeping corrupted masks alive through forward(). */
    std::map<std::string, BitVolume> corrupted_;
};

/**
 * Apply the plan's WeightBitFlip specs to @p net in place (whole-run
 * faults: every sample and the pre-inference see them).
 *
 * @return the number of bits flipped, or an Error when a spec targets
 *         an unknown layer / a layer without parameters.
 */
Expected<std::size_t> applyWeightFaults(Network &net,
                                        const FaultPlan &plan);

/** Record of one failed or never-launched MC sample. */
struct SampleFailure {
    std::size_t sample = 0;  ///< sample index in [0, T)
    ErrorCode code = ErrorCode::SampleFailed;
    std::string reason;      ///< human-readable diagnosis
};

/**
 * Degradation census of a guarded MC run: how many samples were
 * requested, how many survived, and why each casualty died.  The sim
 * reporting layer renders this next to the timing results
 * (degradationTable / degradationSummary in sim/report.hpp).
 */
struct DegradationCensus {
    std::size_t requested = 0;  ///< T, as configured
    /**
     * Effective sample budget: T after any McOptions::sampleBudget
     * clamp (== requested when unclamped).  Samples in
     * [budget, requested) were administratively traded away — a
     * serving brownout, not a fault — and appear in no failure list.
     */
    std::size_t budget = 0;
    std::size_t survived = 0;   ///< healthy samples actually produced
    /**
     * True iff any *launched or deadline-starved* sample was lost —
     * i.e. failures is non-empty.  Samples never launched because the
     * run converged early (converged below) or because the budget was
     * clamped do NOT count as degradation: the estimate met its
     * target, nothing died.
     */
    bool degraded = false;
    /**
     * Adaptive early exit (bayes/adaptive.hpp): true when the run
     * stopped at a convergence checkpoint because the predictive-mean
     * confidence interval tightened past McOptions::targetCiWidth.
     */
    bool converged = false;
    /** Samples launched when the criterion stopped the run (0 when
     *  converged is false). */
    std::size_t convergedAt = 0;
    /** CI width at the last convergence checkpoint evaluated (0 when
     *  no checkpoint was ever evaluated). */
    double ciWidth = 0.0;
    std::vector<SampleFailure> failures;  ///< ascending sample index
};

} // namespace fastbcnn

#endif // FASTBCNN_FAULT_FAULT_HPP
