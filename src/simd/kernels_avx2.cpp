/**
 * @file
 * AVX2 dispatch table: 8-wide float kernels with 4-wide/scalar tails
 * and the unrolled 4x64-bit popcount lanes for the bit side.
 * Compiled with -mavx2 -mpopcnt -ffp-contract=off and only when
 * FASTBCNN_SIMD_BUILD_AVX2 is defined (x86 targets with the
 * FASTBCNN_SIMD_AVX2 CMake option on).
 *
 * Bit-identity notes (full contract in simd.hpp): identical structure
 * to the SSE4.2 level — vectorize across output columns only, scalar
 * tap order per output element, separate mul + add (never fmadd,
 * which would double-round differently), cmp + blendv max semantics,
 * cmp + and ReLU semantics, lane-strided dense doubles (two __m256d
 * registers = the 8 scalar lanes).  Conv column tails narrow to
 * 4-wide SSE and then scalar — same per-element mul + add either way.
 */

#include "simd/kernels_internal.hpp"

#if defined(FASTBCNN_SIMD_BUILD_AVX2)

#include <immintrin.h>

namespace fastbcnn::simd::detail {
namespace {

/** Valid output-column range [c0, c1) for tap offset d = j - p at
 *  stride 1: keeps c + d inside [0, in_w). */
inline void
validRangeS1(std::ptrdiff_t d, std::size_t out_w, std::size_t in_w,
             std::size_t &c0, std::size_t &c1)
{
    c0 = d < 0 ? static_cast<std::size_t>(-d) : 0;
    const std::ptrdiff_t hi = static_cast<std::ptrdiff_t>(in_w) - d;
    c1 = hi <= 0 ? 0
                 : std::min(out_w, static_cast<std::size_t>(hi));
    if (c0 > c1)
        c0 = c1;
}

/** Valid output-column range [c0, c1) for tap offset d at stride 2:
 *  keeps 2c + d inside [0, in_w). */
inline void
validRangeS2(std::ptrdiff_t d, std::size_t out_w, std::size_t in_w,
             std::size_t &c0, std::size_t &c1)
{
    c0 = d < 0 ? static_cast<std::size_t>((-d) + 1) / 2 : 0;
    const std::ptrdiff_t hi =
        static_cast<std::ptrdiff_t>(in_w) - 1 - d;
    c1 = hi < 0 ? 0
                : std::min(out_w,
                           static_cast<std::size_t>(hi) / 2 + 1);
    if (c0 > c1)
        c0 = c1;
}

/** [in[b], in[b+2], ..., in[b+14]] — stride-2 gather of 8 floats.
 *  Reads 16 floats starting at @p b (caller guarantees in-range). */
FASTBCNN_HOT inline __m256
loadEven8(const float *in, std::size_t b)
{
    const __m256 a = _mm256_loadu_ps(in + b);
    const __m256 c = _mm256_loadu_ps(in + b + 8);
    const __m256 sh = _mm256_shuffle_ps(a, c, _MM_SHUFFLE(2, 0, 2, 0));
    const __m256d perm = _mm256_permute4x64_pd(_mm256_castps_pd(sh),
                                               _MM_SHUFFLE(3, 1, 2, 0));
    return _mm256_castpd_ps(perm);
}

FASTBCNN_HOT void
avx2ConvForward(const float *in_data, const float *w_data,
                const float *bias, float *out_data,
                std::size_t in_channels, std::size_t out_channels,
                std::size_t in_h, std::size_t in_w, std::size_t out_h,
                std::size_t out_w, std::size_t kernel,
                std::size_t stride, std::size_t padding)
{
    if (stride != 1) {
        scalarConvForward(in_data, w_data, bias, out_data, in_channels,
                          out_channels, in_h, in_w, out_h, out_w,
                          kernel, stride, padding);
        return;
    }
    for (std::size_t m = 0; m < out_channels; ++m) {
        float *out_plane = out_data + m * out_h * out_w;
        const float b = bias[m];
        const __m256 b8 = _mm256_set1_ps(b);
        std::size_t z = 0;
        for (; z + 8 <= out_h * out_w; z += 8)
            _mm256_storeu_ps(out_plane + z, b8);
        for (; z < out_h * out_w; ++z)
            out_plane[z] = b;
        for (std::size_t n = 0; n < in_channels; ++n) {
            const float *in_plane = in_data + n * in_h * in_w;
            const float *w_kernel =
                w_data + (m * in_channels + n) * kernel * kernel;
            for (std::size_t i = 0; i < kernel; ++i) {
                for (std::size_t j = 0; j < kernel; ++j) {
                    const float wv = w_kernel[i * kernel + j];
                    if (wv == 0.0f)
                        continue;
                    const std::ptrdiff_t d =
                        static_cast<std::ptrdiff_t>(j) -
                        static_cast<std::ptrdiff_t>(padding);
                    std::size_t c0, c1;
                    validRangeS1(d, out_w, in_w, c0, c1);
                    const __m256 wv8 = _mm256_set1_ps(wv);
                    const __m128 wv4 = _mm_set1_ps(wv);
                    for (std::size_t r = 0; r < out_h; ++r) {
                        const std::ptrdiff_t in_r =
                            static_cast<std::ptrdiff_t>(r + i) -
                            static_cast<std::ptrdiff_t>(padding);
                        if (in_r < 0 ||
                            in_r >= static_cast<std::ptrdiff_t>(in_h)) {
                            continue;
                        }
                        const float *in_row = in_plane + in_r * in_w;
                        float *out_row = out_plane + r * out_w;
                        std::size_t c = c0;
                        for (; c + 8 <= c1; c += 8) {
                            const __m256 v = _mm256_loadu_ps(
                                in_row +
                                (static_cast<std::ptrdiff_t>(c) + d));
                            const __m256 o =
                                _mm256_loadu_ps(out_row + c);
                            _mm256_storeu_ps(
                                out_row + c,
                                _mm256_add_ps(o,
                                              _mm256_mul_ps(wv8, v)));
                        }
                        // Tails narrow to 4-wide + scalar: masked
                        // 256-bit load/store is microcoded on common
                        // server cores, and narrow late-layer planes
                        // (out_w = 4, 2) are all tail.
                        for (; c + 4 <= c1; c += 4) {
                            const __m128 v = _mm_loadu_ps(
                                in_row +
                                (static_cast<std::ptrdiff_t>(c) + d));
                            const __m128 o = _mm_loadu_ps(out_row + c);
                            _mm_storeu_ps(
                                out_row + c,
                                _mm_add_ps(o, _mm_mul_ps(wv4, v)));
                        }
                        for (; c < c1; ++c) {
                            out_row[c] +=
                                wv *
                                in_row[static_cast<std::ptrdiff_t>(c) +
                                       d];
                        }
                    }
                }
            }
        }
    }
}

FASTBCNN_HOT void
avx2DenseForward(const float *w, const float *bias, const float *x,
                 float *out, std::size_t out_features,
                 std::size_t in_features)
{
    for (std::size_t o = 0; o < out_features; ++o) {
        const float *row = w + o * in_features;
        __m256d lo = _mm256_setzero_pd();
        __m256d hi = _mm256_setzero_pd();
        std::size_t i = 0;
        for (; i + 8 <= in_features; i += 8) {
            const __m128 r0 = _mm_loadu_ps(row + i);
            const __m128 r1 = _mm_loadu_ps(row + i + 4);
            const __m128 x0 = _mm_loadu_ps(x + i);
            const __m128 x1 = _mm_loadu_ps(x + i + 4);
            lo = _mm256_add_pd(lo,
                               _mm256_mul_pd(_mm256_cvtps_pd(r0),
                                             _mm256_cvtps_pd(x0)));
            hi = _mm256_add_pd(hi,
                               _mm256_mul_pd(_mm256_cvtps_pd(r1),
                                             _mm256_cvtps_pd(x1)));
        }
        double lanes[8];
        _mm256_storeu_pd(lanes + 0, lo);
        _mm256_storeu_pd(lanes + 4, hi);
        for (; i < in_features; ++i) {
            lanes[i & 7] += static_cast<double>(row[i]) *
                            static_cast<double>(x[i]);
        }
        double acc = bias[o];
        for (std::size_t l = 0; l < 8; ++l)
            acc += lanes[l];
        out[o] = static_cast<float>(acc);
    }
}

FASTBCNN_HOT void
avx2PoolMax(const float *in, float *out, std::size_t channels,
            std::size_t in_h, std::size_t in_w, std::size_t out_h,
            std::size_t out_w, std::size_t k, std::size_t s,
            std::size_t p, float init)
{
    if (s > 2) {
        scalarPoolMax(in, out, channels, in_h, in_w, out_h, out_w, k,
                      s, p, init);
        return;
    }
    const __m256 init8 = _mm256_set1_ps(init);
    for (std::size_t ch = 0; ch < channels; ++ch) {
        const float *in_plane = in + ch * in_h * in_w;
        float *out_plane = out + ch * out_h * out_w;
        std::size_t z = 0;
        for (; z + 8 <= out_h * out_w; z += 8)
            _mm256_storeu_ps(out_plane + z, init8);
        for (; z < out_h * out_w; ++z)
            out_plane[z] = init;
        for (std::size_t r = 0; r < out_h; ++r) {
            float *out_row = out_plane + r * out_w;
            for (std::size_t i = 0; i < k; ++i) {
                const std::ptrdiff_t in_r =
                    static_cast<std::ptrdiff_t>(r * s + i) -
                    static_cast<std::ptrdiff_t>(p);
                if (in_r < 0 ||
                    in_r >= static_cast<std::ptrdiff_t>(in_h)) {
                    continue;
                }
                const float *in_row = in_plane + in_r * in_w;
                for (std::size_t j = 0; j < k; ++j) {
                    const std::ptrdiff_t d =
                        static_cast<std::ptrdiff_t>(j) -
                        static_cast<std::ptrdiff_t>(p);
                    std::size_t c0, c1;
                    std::size_t c;
                    if (s == 1) {
                        validRangeS1(d, out_w, in_w, c0, c1);
                        c = c0;
                        for (; c + 8 <= c1; c += 8) {
                            const __m256 v = _mm256_loadu_ps(
                                in_row +
                                (static_cast<std::ptrdiff_t>(c) + d));
                            const __m256 acc =
                                _mm256_loadu_ps(out_row + c);
                            const __m256 lt =
                                _mm256_cmp_ps(acc, v, _CMP_LT_OQ);
                            _mm256_storeu_ps(
                                out_row + c,
                                _mm256_blendv_ps(acc, v, lt));
                        }
                    } else {
                        validRangeS2(d, out_w, in_w, c0, c1);
                        c = c0;
                        for (; c + 8 <= c1 &&
                               static_cast<std::ptrdiff_t>(2 * c + 16) +
                                       d <=
                                   static_cast<std::ptrdiff_t>(in_w);
                             c += 8) {
                            const __m256 v = loadEven8(
                                in_row, static_cast<std::size_t>(
                                            static_cast<std::ptrdiff_t>(
                                                2 * c) +
                                            d));
                            const __m256 acc =
                                _mm256_loadu_ps(out_row + c);
                            const __m256 lt =
                                _mm256_cmp_ps(acc, v, _CMP_LT_OQ);
                            _mm256_storeu_ps(
                                out_row + c,
                                _mm256_blendv_ps(acc, v, lt));
                        }
                    }
                    for (; c < c1; ++c) {
                        const float v =
                            in_row[static_cast<std::ptrdiff_t>(c * s) +
                                   d];
                        const float acc = out_row[c];
                        out_row[c] = (acc < v) ? v : acc;
                    }
                }
            }
        }
    }
}

FASTBCNN_HOT void
avx2PoolAvg(const float *in, float *out, std::size_t channels,
            std::size_t in_h, std::size_t in_w, std::size_t out_h,
            std::size_t out_w, std::size_t k, std::size_t s,
            std::size_t p)
{
    if (s > 2) {
        scalarPoolAvg(in, out, channels, in_h, in_w, out_h, out_w, k,
                      s, p);
        return;
    }
    const __m256 zero8 = _mm256_setzero_ps();
    const __m256 denom8 = _mm256_set1_ps(static_cast<float>(k * k));
    for (std::size_t ch = 0; ch < channels; ++ch) {
        const float *in_plane = in + ch * in_h * in_w;
        float *out_plane = out + ch * out_h * out_w;
        std::size_t z = 0;
        for (; z + 8 <= out_h * out_w; z += 8)
            _mm256_storeu_ps(out_plane + z, zero8);
        for (; z < out_h * out_w; ++z)
            out_plane[z] = 0.0f;
        for (std::size_t r = 0; r < out_h; ++r) {
            float *out_row = out_plane + r * out_w;
            for (std::size_t i = 0; i < k; ++i) {
                const std::ptrdiff_t in_r =
                    static_cast<std::ptrdiff_t>(r * s + i) -
                    static_cast<std::ptrdiff_t>(p);
                if (in_r < 0 ||
                    in_r >= static_cast<std::ptrdiff_t>(in_h)) {
                    continue;
                }
                const float *in_row = in_plane + in_r * in_w;
                for (std::size_t j = 0; j < k; ++j) {
                    const std::ptrdiff_t d =
                        static_cast<std::ptrdiff_t>(j) -
                        static_cast<std::ptrdiff_t>(p);
                    std::size_t c0, c1;
                    std::size_t c;
                    if (s == 1) {
                        validRangeS1(d, out_w, in_w, c0, c1);
                        c = c0;
                        for (; c + 8 <= c1; c += 8) {
                            const __m256 v = _mm256_loadu_ps(
                                in_row +
                                (static_cast<std::ptrdiff_t>(c) + d));
                            const __m256 acc =
                                _mm256_loadu_ps(out_row + c);
                            _mm256_storeu_ps(out_row + c,
                                             _mm256_add_ps(acc, v));
                        }
                    } else {
                        validRangeS2(d, out_w, in_w, c0, c1);
                        c = c0;
                        for (; c + 8 <= c1 &&
                               static_cast<std::ptrdiff_t>(2 * c + 16) +
                                       d <=
                                   static_cast<std::ptrdiff_t>(in_w);
                             c += 8) {
                            const __m256 v = loadEven8(
                                in_row, static_cast<std::size_t>(
                                            static_cast<std::ptrdiff_t>(
                                                2 * c) +
                                            d));
                            const __m256 acc =
                                _mm256_loadu_ps(out_row + c);
                            _mm256_storeu_ps(out_row + c,
                                             _mm256_add_ps(acc, v));
                        }
                    }
                    for (; c < c1; ++c) {
                        out_row[c] +=
                            in_row[static_cast<std::ptrdiff_t>(c * s) +
                                   d];
                    }
                }
            }
        }
        z = 0;
        for (; z + 8 <= out_h * out_w; z += 8) {
            _mm256_storeu_ps(
                out_plane + z,
                _mm256_div_ps(_mm256_loadu_ps(out_plane + z), denom8));
        }
        for (; z < out_h * out_w; ++z)
            out_plane[z] /= static_cast<float>(k * k);
    }
}

FASTBCNN_HOT void
avx2Relu(const float *in, float *out, std::size_t n)
{
    const __m256 zero8 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 v = _mm256_loadu_ps(in + i);
        const __m256 gt = _mm256_cmp_ps(v, zero8, _CMP_GT_OQ);
        _mm256_storeu_ps(out + i, _mm256_and_ps(v, gt));
    }
    for (; i < n; ++i)
        out[i] = in[i] > 0.0f ? in[i] : 0.0f;
}

FASTBCNN_HOT std::size_t
avx2PopcountWords(const std::uint64_t *w, std::size_t n)
{
    return popcountWords4(w, n);
}

FASTBCNN_HOT std::size_t
avx2PopcountBits(const std::uint64_t *w, std::size_t start_bit,
                 std::size_t n_bits)
{
    return popcountBitsWords(w, start_bit, n_bits);
}

FASTBCNN_HOT std::size_t
avx2AndPopcountWords(const std::uint64_t *a, const std::uint64_t *b,
                     std::size_t n)
{
    return andPopcountWords4(a, b, n);
}

FASTBCNN_HOT void
avx2CountKernelPlane(const std::uint64_t *mask_words,
                     const std::uint64_t *ind_words, std::uint16_t *out,
                     std::uint32_t *row_scratch,
                     std::size_t in_channels, std::size_t in_h,
                     std::size_t in_w, std::size_t out_h,
                     std::size_t out_w, std::size_t k, std::size_t s,
                     std::size_t p)
{
    if (k + p > kMaxWordWindow) {
        scalarCountKernelPlane(mask_words, ind_words, out, row_scratch,
                               in_channels, in_h, in_w, out_h, out_w,
                               k, s, p);
        return;
    }
    countKernelPlaneWords<4>(mask_words, ind_words, out, row_scratch,
                             in_channels, in_h, in_w, out_h, out_w, k,
                             s, p);
}

/*
 * int8 quant kernels.  Integer arithmetic is exact (simd.hpp), so
 * these may vectorize across reductions freely; only saturation and
 * the requantSat convention are pinned, both shared from
 * kernels_internal.hpp.
 */

/** Pack an (i16, i16) weight pair into the i32 operand of madd_epi16:
 *  low word multiplies the even (channel n) lanes, high word the odd
 *  (channel n+1) lanes of the interleaved activation vector. */
FASTBCNN_HOT inline std::int32_t
packWeightPair(std::int32_t w0, std::int32_t w1)
{
    return static_cast<std::int32_t>(
        (static_cast<std::uint32_t>(w0) & 0xffffu) |
        (static_cast<std::uint32_t>(w1) << 16));
}

/*
 * Register-resident int8 conv: one 16- or 8-column output block stays
 * in accumulator registers across the whole (n, i, j) tap loop, and
 * input channels are consumed in PAIRS so each madd_epi16 retires two
 * MACs per i32 lane — double the ALU density of the float path.
 * Products |w*x| <= 16129 fit i16, so the madd pair-sum is exact; the
 * per-lane summation order differs from scalar but integer addition is
 * associative, so the result is bit-identical (simd.hpp).
 *
 * Requires stride 1 and padding 0 (callers pre-pad activations into
 * the conv input, which also makes every block load in-range:
 * c0 + 15 + j <= out_w - 1 + kernel - 1 = in_w - 1).  Everything else
 * falls back to the scalar reference.
 */

/** 16-column block: cols [c0, c0+16) of output row r, channel m. */
FASTBCNN_HOT inline void
avx2QuantConvBlock16(const std::int8_t *in_data,
                     const std::int8_t *w_base, std::int32_t b,
                     std::int8_t *out_row, std::size_t c0,
                     std::size_t r, std::size_t in_channels,
                     std::size_t in_h, std::size_t in_w, std::size_t k,
                     std::int32_t shift)
{
    // A = cols (0..3, 8..11), B = cols (4..7, 12..15) of the block —
    // the natural unpacklo/unpackhi + madd lane layout.
    __m256i acc_a = _mm256_set1_epi32(b);
    __m256i acc_b = _mm256_set1_epi32(b);
    std::size_t n = 0;
    for (; n + 2 <= in_channels; n += 2) {
        const std::int8_t *p0 = in_data + n * in_h * in_w;
        const std::int8_t *p1 = p0 + in_h * in_w;
        const std::int8_t *wk0 = w_base + n * k * k;
        const std::int8_t *wk1 = wk0 + k * k;
        for (std::size_t i = 0; i < k; ++i) {
            const std::size_t row = (r + i) * in_w + c0;
            for (std::size_t j = 0; j < k; ++j) {
                const std::int32_t w0 = wk0[i * k + j];
                const std::int32_t w1 = wk1[i * k + j];
                if ((w0 | w1) == 0)
                    continue;
                const __m256i wp =
                    _mm256_set1_epi32(packWeightPair(w0, w1));
                const __m256i a16 =
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(
                        reinterpret_cast<const __m128i *>(p0 + row +
                                                          j)));
                const __m256i b16 =
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(
                        reinterpret_cast<const __m128i *>(p1 + row +
                                                          j)));
                acc_a = _mm256_add_epi32(
                    acc_a,
                    _mm256_madd_epi16(_mm256_unpacklo_epi16(a16, b16),
                                      wp));
                acc_b = _mm256_add_epi32(
                    acc_b,
                    _mm256_madd_epi16(_mm256_unpackhi_epi16(a16, b16),
                                      wp));
            }
        }
    }
    if (n < in_channels) {
        const std::int8_t *p0 = in_data + n * in_h * in_w;
        const std::int8_t *wk0 = w_base + n * k * k;
        for (std::size_t i = 0; i < k; ++i) {
            const std::size_t row = (r + i) * in_w + c0;
            for (std::size_t j = 0; j < k; ++j) {
                const std::int32_t w0 = wk0[i * k + j];
                if (w0 == 0)
                    continue;
                const __m256i wp =
                    _mm256_set1_epi32(packWeightPair(w0, 0));
                const __m256i a16 =
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(
                        reinterpret_cast<const __m128i *>(p0 + row +
                                                          j)));
                acc_a = _mm256_add_epi32(
                    acc_a,
                    _mm256_madd_epi16(_mm256_unpacklo_epi16(a16, a16),
                                      wp));
                acc_b = _mm256_add_epi32(
                    acc_b,
                    _mm256_madd_epi16(_mm256_unpackhi_epi16(a16, a16),
                                      wp));
            }
        }
    }
    alignas(32) std::int32_t tmp[16];
    _mm256_store_si256(reinterpret_cast<__m256i *>(tmp),
                       _mm256_permute2x128_si256(acc_a, acc_b, 0x20));
    _mm256_store_si256(reinterpret_cast<__m256i *>(tmp + 8),
                       _mm256_permute2x128_si256(acc_a, acc_b, 0x31));
    for (std::size_t t = 0; t < 16; ++t)
        out_row[c0 + t] = requantSat(tmp[t], shift);
}

/** 8-column block (same scheme at SSE width, for narrow planes). */
FASTBCNN_HOT inline void
avx2QuantConvBlock8(const std::int8_t *in_data, const std::int8_t *w_base,
                    std::int32_t b, std::int8_t *out_row,
                    std::size_t c0, std::size_t r,
                    std::size_t in_channels, std::size_t in_h,
                    std::size_t in_w, std::size_t k, std::int32_t shift)
{
    __m128i acc_a = _mm_set1_epi32(b); // cols 0..3
    __m128i acc_b = _mm_set1_epi32(b); // cols 4..7
    std::size_t n = 0;
    for (; n + 2 <= in_channels; n += 2) {
        const std::int8_t *p0 = in_data + n * in_h * in_w;
        const std::int8_t *p1 = p0 + in_h * in_w;
        const std::int8_t *wk0 = w_base + n * k * k;
        const std::int8_t *wk1 = wk0 + k * k;
        for (std::size_t i = 0; i < k; ++i) {
            const std::size_t row = (r + i) * in_w + c0;
            for (std::size_t j = 0; j < k; ++j) {
                const std::int32_t w0 = wk0[i * k + j];
                const std::int32_t w1 = wk1[i * k + j];
                if ((w0 | w1) == 0)
                    continue;
                const __m128i wp =
                    _mm_set1_epi32(packWeightPair(w0, w1));
                const __m128i a16 = _mm_cvtepi8_epi16(_mm_loadl_epi64(
                    reinterpret_cast<const __m128i *>(p0 + row + j)));
                const __m128i b16 = _mm_cvtepi8_epi16(_mm_loadl_epi64(
                    reinterpret_cast<const __m128i *>(p1 + row + j)));
                acc_a = _mm_add_epi32(
                    acc_a,
                    _mm_madd_epi16(_mm_unpacklo_epi16(a16, b16), wp));
                acc_b = _mm_add_epi32(
                    acc_b,
                    _mm_madd_epi16(_mm_unpackhi_epi16(a16, b16), wp));
            }
        }
    }
    if (n < in_channels) {
        const std::int8_t *p0 = in_data + n * in_h * in_w;
        const std::int8_t *wk0 = w_base + n * k * k;
        for (std::size_t i = 0; i < k; ++i) {
            const std::size_t row = (r + i) * in_w + c0;
            for (std::size_t j = 0; j < k; ++j) {
                const std::int32_t w0 = wk0[i * k + j];
                if (w0 == 0)
                    continue;
                const __m128i wp =
                    _mm_set1_epi32(packWeightPair(w0, 0));
                const __m128i a16 = _mm_cvtepi8_epi16(_mm_loadl_epi64(
                    reinterpret_cast<const __m128i *>(p0 + row + j)));
                acc_a = _mm_add_epi32(
                    acc_a,
                    _mm_madd_epi16(_mm_unpacklo_epi16(a16, a16), wp));
                acc_b = _mm_add_epi32(
                    acc_b,
                    _mm_madd_epi16(_mm_unpackhi_epi16(a16, a16), wp));
            }
        }
    }
    alignas(16) std::int32_t tmp[8];
    _mm_store_si128(reinterpret_cast<__m128i *>(tmp), acc_a);
    _mm_store_si128(reinterpret_cast<__m128i *>(tmp + 4), acc_b);
    for (std::size_t t = 0; t < 8; ++t)
        out_row[c0 + t] = requantSat(tmp[t], shift);
}

FASTBCNN_HOT void
avx2QuantConvForward(const std::int8_t *in_data, const std::int8_t *w_data,
                     const std::int32_t *bias, std::int8_t *out_data,
                     std::int32_t *acc, std::size_t in_channels,
                     std::size_t out_channels, std::size_t in_h,
                     std::size_t in_w, std::size_t out_h,
                     std::size_t out_w, std::size_t kernel,
                     std::size_t stride, std::size_t padding,
                     std::int32_t shift)
{
    if (stride != 1 || padding != 0) {
        scalarQuantConvForward(in_data, w_data, bias, out_data, acc,
                               in_channels, out_channels, in_h, in_w,
                               out_h, out_w, kernel, stride, padding,
                               shift);
        return;
    }
    for (std::size_t m = 0; m < out_channels; ++m) {
        const std::int8_t *w_base =
            w_data + m * in_channels * kernel * kernel;
        const std::int32_t b = bias[m];
        for (std::size_t r = 0; r < out_h; ++r) {
            std::int8_t *out_row = out_data + (m * out_h + r) * out_w;
            std::size_t c0 = 0;
            for (; c0 + 16 <= out_w; c0 += 16) {
                avx2QuantConvBlock16(in_data, w_base, b, out_row, c0,
                                     r, in_channels, in_h, in_w,
                                     kernel, shift);
            }
            for (; c0 + 8 <= out_w; c0 += 8) {
                avx2QuantConvBlock8(in_data, w_base, b, out_row, c0, r,
                                    in_channels, in_h, in_w, kernel,
                                    shift);
            }
            for (; c0 < out_w; ++c0) {
                std::int32_t a = b;
                for (std::size_t n = 0; n < in_channels; ++n) {
                    const std::int8_t *p0 = in_data + n * in_h * in_w;
                    const std::int8_t *wk = w_base + n * kernel * kernel;
                    for (std::size_t i = 0; i < kernel; ++i) {
                        const std::int8_t *in_row =
                            p0 + (r + i) * in_w + c0;
                        for (std::size_t j = 0; j < kernel; ++j) {
                            a += static_cast<std::int32_t>(
                                     wk[i * kernel + j]) *
                                 static_cast<std::int32_t>(in_row[j]);
                        }
                    }
                }
                out_row[c0] = requantSat(a, shift);
            }
        }
    }
}

FASTBCNN_HOT void
avx2QuantDenseAccum(const std::int8_t *w, const std::int32_t *bias,
                    const std::int8_t *x, std::int32_t *acc,
                    std::size_t out_features, std::size_t in_features)
{
    for (std::size_t o = 0; o < out_features; ++o) {
        const std::int8_t *row = w + o * in_features;
        __m256i acc8 = _mm256_setzero_si256();
        std::size_t i = 0;
        for (; i + 16 <= in_features; i += 16) {
            const __m256i w16 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(row + i)));
            const __m256i x16 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(x + i)));
            acc8 = _mm256_add_epi32(acc8,
                                    _mm256_madd_epi16(w16, x16));
        }
        std::int32_t lanes[8];
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(lanes), acc8);
        std::int32_t sum = bias[o];
        for (std::size_t l = 0; l < 8; ++l)
            sum += lanes[l];
        for (; i < in_features; ++i) {
            sum += static_cast<std::int32_t>(row[i]) *
                   static_cast<std::int32_t>(x[i]);
        }
        acc[o] = sum;
    }
}

FASTBCNN_HOT void
avx2QuantRelu(const std::int8_t *in, std::int8_t *out, std::size_t n)
{
    const __m256i zero32 = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(in + i));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(out + i),
            _mm256_and_si256(v, _mm256_cmpgt_epi8(v, zero32)));
    }
    for (; i < n; ++i)
        out[i] = in[i] > 0 ? in[i] : std::int8_t{0};
}

FASTBCNN_HOT void
avx2QuantPoolMax(const std::int8_t *in, std::int8_t *out,
                 std::size_t channels, std::size_t in_h,
                 std::size_t in_w, std::size_t out_h, std::size_t out_w,
                 std::size_t k, std::size_t s, std::size_t p,
                 std::int8_t init)
{
    if (s != 1) {
        scalarQuantPoolMax(in, out, channels, in_h, in_w, out_h, out_w,
                           k, s, p, init);
        return;
    }
    const __m256i init32 = _mm256_set1_epi8(static_cast<char>(init));
    for (std::size_t ch = 0; ch < channels; ++ch) {
        const std::int8_t *in_plane = in + ch * in_h * in_w;
        std::int8_t *out_plane = out + ch * out_h * out_w;
        std::size_t z = 0;
        for (; z + 32 <= out_h * out_w; z += 32) {
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(out_plane + z), init32);
        }
        for (; z < out_h * out_w; ++z)
            out_plane[z] = init;
        for (std::size_t r = 0; r < out_h; ++r) {
            std::int8_t *out_row = out_plane + r * out_w;
            for (std::size_t i = 0; i < k; ++i) {
                const std::ptrdiff_t in_r =
                    static_cast<std::ptrdiff_t>(r + i) -
                    static_cast<std::ptrdiff_t>(p);
                if (in_r < 0 ||
                    in_r >= static_cast<std::ptrdiff_t>(in_h)) {
                    continue;
                }
                const std::int8_t *in_row =
                    in_plane + in_r * static_cast<std::ptrdiff_t>(in_w);
                for (std::size_t j = 0; j < k; ++j) {
                    const std::ptrdiff_t d =
                        static_cast<std::ptrdiff_t>(j) -
                        static_cast<std::ptrdiff_t>(p);
                    std::size_t c0, c1;
                    validRangeS1(d, out_w, in_w, c0, c1);
                    std::size_t c = c0;
                    for (; c + 32 <= c1; c += 32) {
                        const __m256i v = _mm256_loadu_si256(
                            reinterpret_cast<const __m256i *>(
                                in_row +
                                (static_cast<std::ptrdiff_t>(c) + d)));
                        __m256i *op =
                            reinterpret_cast<__m256i *>(out_row + c);
                        _mm256_storeu_si256(
                            op,
                            _mm256_max_epi8(_mm256_loadu_si256(op), v));
                    }
                    for (; c < c1; ++c) {
                        const std::int8_t v =
                            in_row[static_cast<std::ptrdiff_t>(c) + d];
                        const std::int8_t a = out_row[c];
                        out_row[c] = (a < v) ? v : a;
                    }
                }
            }
        }
    }
}

} // namespace

const SimdKernels *
avx2TableOrNull()
{
    static const SimdKernels table = {
        &avx2ConvForward,       &avx2DenseForward,
        &avx2PoolMax,           &avx2PoolAvg,
        &avx2Relu,              &avx2PopcountWords,
        &avx2PopcountBits,      &avx2AndPopcountWords,
        &avx2CountKernelPlane,  &avx2QuantConvForward,
        &avx2QuantDenseAccum,   &avx2QuantRelu,
        &avx2QuantPoolMax,
    };
    return &table;
}

} // namespace fastbcnn::simd::detail

#else // !FASTBCNN_SIMD_BUILD_AVX2

namespace fastbcnn::simd::detail {

const SimdKernels *
avx2TableOrNull()
{
    return nullptr;
}

} // namespace fastbcnn::simd::detail

#endif // FASTBCNN_SIMD_BUILD_AVX2
