/**
 * @file
 * Runtime-dispatched SIMD kernel layer.
 *
 * One function-pointer table (SimdKernels) holds every FASTBCNN_HOT
 * inner kernel of the library: the float compute side (conv / dense /
 * pooling / ReLU) and the bit-parallel skip-prediction side (word
 * popcounts and the Eq. 5 nw-input counting).  At startup the best
 * table the CPU supports is selected by cpuid (Scalar → SSE4.2 →
 * AVX2), overridable for testing with FASTBCNN_SIMD=scalar|sse4|avx2
 * — the layering follows Stockfish NNUE's USE_AVX2 / kSimdWidth
 * scheme, but resolved at run time instead of build time.
 *
 * Bit-identity contract: every table produces bit-identical float
 * outputs and bit-identical skip counts to the Scalar reference table
 * on any input.  Concretely:
 *  - no FMA contraction anywhere (every kernel translation unit is
 *    compiled with -ffp-contract=off; vector paths use separate
 *    mul + add);
 *  - per-output-element accumulation order is the scalar order (vector
 *    kernels parallelise across independent output elements, never
 *    across the reduction of one element);
 *  - the one true reduction (dense) is defined lane-strided: 8 partial
 *    double sums over lanes i % 8, reduced in fixed lane order — the
 *    scalar reference computes the same 8 partials, so all levels
 *    agree to the last bit;
 *  - NaN / signed-zero semantics of ReLU and max-pooling are
 *    reproduced with compare + blend rather than native vector max.
 * The SimdDispatch test suite pins all of this by running every
 * compiled level against Scalar on randomized and adversarial shapes.
 */

#ifndef FASTBCNN_SIMD_SIMD_HPP
#define FASTBCNN_SIMD_SIMD_HPP

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fastbcnn::simd {

/** Dispatch levels, ordered weakest to strongest. */
enum class SimdLevel : int {
    Scalar = 0, ///< portable reference kernels (any CPU)
    Sse4 = 1,   ///< SSE4.2 + POPCNT
    Avx2 = 2,   ///< AVX2 (8-wide float lanes, 4x64-bit popcount lanes)
};

/** Number of dispatch levels (for iteration in tests/benches). */
inline constexpr int kSimdLevelCount = 3;

/**
 * The dispatch table: one entry per hot kernel.  All pointers are
 * always non-null.  Buffer contracts match the historical in-layer
 * kernels: callers preallocate every output, kernels are pure
 * arithmetic over raw pointers (FASTBCNN_HOT discipline).
 */
struct SimdKernels {
    /**
     * Convolution forward: accumulate bias + sum over (n, i, j) of
     * w(m,n,i,j) * in(n, r*stride+i-padding, c*stride+j-padding) into
     * out(m, r, c), skipping out-of-range (padding) taps and
     * exactly-zero weights.
     */
    void (*convForward)(const float *in, const float *w,
                        const float *bias, float *out,
                        std::size_t in_channels, std::size_t out_channels,
                        std::size_t in_h, std::size_t in_w,
                        std::size_t out_h, std::size_t out_w,
                        std::size_t kernel, std::size_t stride,
                        std::size_t padding);

    /**
     * Dense (row-major matrix-vector) forward with the lane-strided
     * double accumulation described in the file header: out[o] =
     * float(bias[o] + lane0 + ... + lane7) where lane l sums
     * w[o*in+i] * x[i] over i with i % 8 == l, in index order.
     */
    void (*denseForward)(const float *w, const float *bias,
                         const float *x, float *out,
                         std::size_t out_features,
                         std::size_t in_features);

    /**
     * Windowed max-pool: out = max over in-window taps, starting from
     * @p init (0 for padded pools, -inf otherwise), with scalar
     * semantics acc = (acc < v) ? v : acc.
     */
    void (*poolMax)(const float *in, float *out, std::size_t channels,
                    std::size_t in_h, std::size_t in_w,
                    std::size_t out_h, std::size_t out_w, std::size_t k,
                    std::size_t s, std::size_t p, float init);

    /**
     * Windowed average-pool: sum of in-window taps (padding taps
     * contribute nothing) divided by k*k.
     */
    void (*poolAvg)(const float *in, float *out, std::size_t channels,
                    std::size_t in_h, std::size_t in_w,
                    std::size_t out_h, std::size_t out_w, std::size_t k,
                    std::size_t s, std::size_t p);

    /** Elementwise out[i] = in[i] > 0 ? in[i] : 0 (NaN maps to 0). */
    void (*relu)(const float *in, float *out, std::size_t n);

    /** Total set bits across @p n words. */
    std::size_t (*popcountWords)(const std::uint64_t *w, std::size_t n);

    /**
     * Set bits in the bit range [start_bit, start_bit + n_bits) of a
     * packed bit array.  The array must extend one guard word past the
     * last addressed word (BitVolume guarantees this).
     */
    std::size_t (*popcountBits)(const std::uint64_t *w,
                                std::size_t start_bit,
                                std::size_t n_bits);

    /** Total set bits of a[i] & b[i] across @p n word pairs. */
    std::size_t (*andPopcountWords)(const std::uint64_t *a,
                                    const std::uint64_t *b,
                                    std::size_t n);

    /**
     * Eq. 5 counting for one output kernel: slide the (in_channels,
     * k, k) indicator volume @p ind_words over the (in_channels,
     * in_h, in_w) dropout-mask volume @p mask_words and write the
     * dropped nw-input count of every output position into @p out
     * (out_h * out_w uint16 entries, saturated at 0xffff).  Both bit
     * volumes are flat row-major packed with a guard word past the
     * end.  @p row_scratch is caller-provided working storage of
     * out_h * out_w uint32 entries (contents undefined before and
     * after).
     */
    void (*countKernelPlane)(const std::uint64_t *mask_words,
                             const std::uint64_t *ind_words,
                             std::uint16_t *out,
                             std::uint32_t *row_scratch,
                             std::size_t in_channels, std::size_t in_h,
                             std::size_t in_w, std::size_t out_h,
                             std::size_t out_w, std::size_t k,
                             std::size_t s, std::size_t p);

    /*
     * Quantized int8 kernels.  Integer arithmetic is exact and
     * associative, so — unlike the float kernels above — the vector
     * variants MAY reorder and vectorise across a single output's
     * reduction: any summation order of the int32 partial products
     * yields the same accumulator, and the bit-identity contract holds
     * for free.  The only pinned conventions are saturation to
     * [-128, 127] and round-half-up requantization:
     * shift > 0: out = sat8((acc + (1 << (shift-1))) >> shift);
     * shift == 0: out = sat8(acc).
     */

    /**
     * Quantized convolution forward: for each output channel m,
     * acc(r, c) = bias[m] + sum over (n, i, j) of w(m,n,i,j) *
     * in(n, r*s+i-p, c*s+j-p) in int32, then out(m,r,c) =
     * requantized acc (per-layer right shift, see above).  Zero
     * quantized weights are skipped like the float kernel.
     * @p acc_scratch is caller-provided storage of out_h * out_w
     * int32 entries (contents undefined before and after).
     */
    void (*quantConvForward)(const std::int8_t *in, const std::int8_t *w,
                             const std::int32_t *bias, std::int8_t *out,
                             std::int32_t *acc_scratch,
                             std::size_t in_channels,
                             std::size_t out_channels, std::size_t in_h,
                             std::size_t in_w, std::size_t out_h,
                             std::size_t out_w, std::size_t kernel,
                             std::size_t stride, std::size_t padding,
                             std::int32_t shift);

    /**
     * Quantized dense accumulation: acc[o] = bias[o] + sum over i of
     * w[o*in+i] * x[i], all int32, written WITHOUT requantization —
     * the head layer dequantizes raw accumulators straight to float
     * logits; hidden layers requantize in the caller.
     */
    void (*quantDenseAccum)(const std::int8_t *w, const std::int32_t *bias,
                            const std::int8_t *x, std::int32_t *acc,
                            std::size_t out_features,
                            std::size_t in_features);

    /** Elementwise int8 ReLU: out[i] = in[i] > 0 ? in[i] : 0. */
    void (*quantRelu)(const std::int8_t *in, std::int8_t *out,
                      std::size_t n);

    /**
     * Quantized windowed max-pool: integer max over in-window taps
     * starting from @p init (0 for padded pools, -128 otherwise).
     * Quantization is monotone, so this commutes with the float pool.
     */
    void (*quantPoolMax)(const std::int8_t *in, std::int8_t *out,
                         std::size_t channels, std::size_t in_h,
                         std::size_t in_w, std::size_t out_h,
                         std::size_t out_w, std::size_t k, std::size_t s,
                         std::size_t p, std::int8_t init);
};

/**
 * @return the active dispatch table.  Initialised on first use from
 * cpuid and the FASTBCNN_SIMD environment override; safe to call from
 * any thread.
 */
const SimdKernels &active();

/** @return the level of the active table. */
SimdLevel activeLevel();

/**
 * @return the strongest level this binary can run here: the cpuid
 * capability clamped to what was compiled in (FASTBCNN_SIMD_SSE4 /
 * FASTBCNN_SIMD_AVX2 CMake options).
 */
SimdLevel detectedLevel();

/** @return true when @p level's kernels were compiled into the binary
 *  and the CPU supports them. */
bool levelAvailable(SimdLevel level);

/**
 * Install the table for @p level (clamped to detectedLevel()) as the
 * active table and return the level actually installed.  Intended for
 * startup configuration (the --simd CLI knob) and for tests; swapping
 * mid-inference is safe but gives a mixed-level run.
 */
SimdLevel setLevel(SimdLevel level);

/**
 * @return the table for @p level, clamped to detectedLevel().  Lets
 * tests and benches drive a specific level without touching the
 * process-global active table.
 */
const SimdKernels &kernelsFor(SimdLevel level);

/** @return "scalar" / "sse4" / "avx2". */
const char *simdLevelName(SimdLevel level);

/**
 * Parse a level name ("scalar" | "sse4" | "avx2", as accepted by
 * FASTBCNN_SIMD and --simd).  @return false on an unknown name.
 */
bool simdLevelFromName(std::string_view name, SimdLevel &out);

} // namespace fastbcnn::simd

#endif // FASTBCNN_SIMD_SIMD_HPP
