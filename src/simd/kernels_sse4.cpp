/**
 * @file
 * SSE4.2 dispatch table: 4-wide float kernels plus hardware-POPCNT
 * bit kernels.  Compiled with -msse4.2 -mpopcnt -ffp-contract=off and
 * only when FASTBCNN_SIMD_BUILD_SSE4 is defined (x86 targets with the
 * FASTBCNN_SIMD_SSE4 CMake option on); otherwise this TU degrades to
 * a nullptr provider and dispatch clamps to Scalar.
 *
 * Bit-identity notes (the full contract lives in simd.hpp):
 *  - conv/pool vectorize across output columns only; each output
 *    element sees its taps in the exact scalar (n, i, j) order with
 *    separate mul + add, so sums round identically;
 *  - dense uses the lane-strided 8x double accumulation — two
 *    converted-double products per __m128d register, four registers,
 *    matching the scalar reference's lanes i % 8 exactly;
 *  - max-pool uses cmplt + blendv to replicate (acc < v) ? v : acc
 *    (NaN taps keep acc, matching the scalar comparison); ReLU uses
 *    cmpgt + and (NaN and -0 both map to +0, like the scalar ternary);
 *  - strides > 1 (conv) and > 2 (pool) fall back to the scalar
 *    reference — same results, no vector win.
 */

#include "simd/kernels_internal.hpp"

#if defined(FASTBCNN_SIMD_BUILD_SSE4)

#include <nmmintrin.h>

namespace fastbcnn::simd::detail {
namespace {

/** Valid output-column range [c0, c1) for tap offset d = j - p at
 *  stride 1: keeps c + d inside [0, in_w). */
inline void
validRangeS1(std::ptrdiff_t d, std::size_t out_w, std::size_t in_w,
             std::size_t &c0, std::size_t &c1)
{
    c0 = d < 0 ? static_cast<std::size_t>(-d) : 0;
    const std::ptrdiff_t hi = static_cast<std::ptrdiff_t>(in_w) - d;
    c1 = hi <= 0 ? 0
                 : std::min(out_w, static_cast<std::size_t>(hi));
    if (c0 > c1)
        c0 = c1;
}

/** Valid output-column range [c0, c1) for tap offset d at stride 2:
 *  keeps 2c + d inside [0, in_w). */
inline void
validRangeS2(std::ptrdiff_t d, std::size_t out_w, std::size_t in_w,
             std::size_t &c0, std::size_t &c1)
{
    c0 = d < 0 ? static_cast<std::size_t>((-d) + 1) / 2 : 0;
    const std::ptrdiff_t hi =
        static_cast<std::ptrdiff_t>(in_w) - 1 - d;
    c1 = hi < 0 ? 0
                : std::min(out_w,
                           static_cast<std::size_t>(hi) / 2 + 1);
    if (c0 > c1)
        c0 = c1;
}

/** [in[b], in[b+2], in[b+4], in[b+6]] — stride-2 gather of 4 floats.
 *  Reads 8 floats starting at @p b (caller guarantees in-range). */
FASTBCNN_HOT inline __m128
loadEven4(const float *in, std::size_t b)
{
    const __m128 a = _mm_loadu_ps(in + b);
    const __m128 c = _mm_loadu_ps(in + b + 4);
    return _mm_shuffle_ps(a, c, _MM_SHUFFLE(2, 0, 2, 0));
}

FASTBCNN_HOT void
sse4ConvForward(const float *in_data, const float *w_data,
                const float *bias, float *out_data,
                std::size_t in_channels, std::size_t out_channels,
                std::size_t in_h, std::size_t in_w, std::size_t out_h,
                std::size_t out_w, std::size_t kernel,
                std::size_t stride, std::size_t padding)
{
    if (stride != 1) {
        scalarConvForward(in_data, w_data, bias, out_data, in_channels,
                          out_channels, in_h, in_w, out_h, out_w,
                          kernel, stride, padding);
        return;
    }
    for (std::size_t m = 0; m < out_channels; ++m) {
        float *out_plane = out_data + m * out_h * out_w;
        const float b = bias[m];
        const __m128 b4 = _mm_set1_ps(b);
        std::size_t z = 0;
        for (; z + 4 <= out_h * out_w; z += 4)
            _mm_storeu_ps(out_plane + z, b4);
        for (; z < out_h * out_w; ++z)
            out_plane[z] = b;
        for (std::size_t n = 0; n < in_channels; ++n) {
            const float *in_plane = in_data + n * in_h * in_w;
            const float *w_kernel =
                w_data + (m * in_channels + n) * kernel * kernel;
            for (std::size_t i = 0; i < kernel; ++i) {
                for (std::size_t j = 0; j < kernel; ++j) {
                    const float wv = w_kernel[i * kernel + j];
                    if (wv == 0.0f)
                        continue;
                    const std::ptrdiff_t d =
                        static_cast<std::ptrdiff_t>(j) -
                        static_cast<std::ptrdiff_t>(padding);
                    std::size_t c0, c1;
                    validRangeS1(d, out_w, in_w, c0, c1);
                    const __m128 wv4 = _mm_set1_ps(wv);
                    for (std::size_t r = 0; r < out_h; ++r) {
                        const std::ptrdiff_t in_r =
                            static_cast<std::ptrdiff_t>(r + i) -
                            static_cast<std::ptrdiff_t>(padding);
                        if (in_r < 0 ||
                            in_r >= static_cast<std::ptrdiff_t>(in_h)) {
                            continue;
                        }
                        const float *in_row = in_plane + in_r * in_w;
                        float *out_row = out_plane + r * out_w;
                        std::size_t c = c0;
                        for (; c + 4 <= c1; c += 4) {
                            const __m128 v = _mm_loadu_ps(
                                in_row +
                                (static_cast<std::ptrdiff_t>(c) + d));
                            const __m128 o =
                                _mm_loadu_ps(out_row + c);
                            _mm_storeu_ps(
                                out_row + c,
                                _mm_add_ps(o, _mm_mul_ps(wv4, v)));
                        }
                        for (; c < c1; ++c) {
                            out_row[c] +=
                                wv *
                                in_row[static_cast<std::ptrdiff_t>(c) +
                                       d];
                        }
                    }
                }
            }
        }
    }
}

FASTBCNN_HOT void
sse4DenseForward(const float *w, const float *bias, const float *x,
                 float *out, std::size_t out_features,
                 std::size_t in_features)
{
    for (std::size_t o = 0; o < out_features; ++o) {
        const float *row = w + o * in_features;
        __m128d a01 = _mm_setzero_pd();
        __m128d a23 = _mm_setzero_pd();
        __m128d a45 = _mm_setzero_pd();
        __m128d a67 = _mm_setzero_pd();
        std::size_t i = 0;
        for (; i + 8 <= in_features; i += 8) {
            const __m128 r0 = _mm_loadu_ps(row + i);
            const __m128 r1 = _mm_loadu_ps(row + i + 4);
            const __m128 x0 = _mm_loadu_ps(x + i);
            const __m128 x1 = _mm_loadu_ps(x + i + 4);
            a01 = _mm_add_pd(
                a01, _mm_mul_pd(_mm_cvtps_pd(r0), _mm_cvtps_pd(x0)));
            a23 = _mm_add_pd(
                a23,
                _mm_mul_pd(_mm_cvtps_pd(_mm_movehl_ps(r0, r0)),
                           _mm_cvtps_pd(_mm_movehl_ps(x0, x0))));
            a45 = _mm_add_pd(
                a45, _mm_mul_pd(_mm_cvtps_pd(r1), _mm_cvtps_pd(x1)));
            a67 = _mm_add_pd(
                a67,
                _mm_mul_pd(_mm_cvtps_pd(_mm_movehl_ps(r1, r1)),
                           _mm_cvtps_pd(_mm_movehl_ps(x1, x1))));
        }
        double lanes[8];
        _mm_storeu_pd(lanes + 0, a01);
        _mm_storeu_pd(lanes + 2, a23);
        _mm_storeu_pd(lanes + 4, a45);
        _mm_storeu_pd(lanes + 6, a67);
        for (; i < in_features; ++i) {
            lanes[i & 7] += static_cast<double>(row[i]) *
                            static_cast<double>(x[i]);
        }
        double acc = bias[o];
        for (std::size_t l = 0; l < 8; ++l)
            acc += lanes[l];
        out[o] = static_cast<float>(acc);
    }
}

FASTBCNN_HOT void
sse4PoolMax(const float *in, float *out, std::size_t channels,
            std::size_t in_h, std::size_t in_w, std::size_t out_h,
            std::size_t out_w, std::size_t k, std::size_t s,
            std::size_t p, float init)
{
    if (s > 2) {
        scalarPoolMax(in, out, channels, in_h, in_w, out_h, out_w, k,
                      s, p, init);
        return;
    }
    const __m128 init4 = _mm_set1_ps(init);
    for (std::size_t ch = 0; ch < channels; ++ch) {
        const float *in_plane = in + ch * in_h * in_w;
        float *out_plane = out + ch * out_h * out_w;
        std::size_t z = 0;
        for (; z + 4 <= out_h * out_w; z += 4)
            _mm_storeu_ps(out_plane + z, init4);
        for (; z < out_h * out_w; ++z)
            out_plane[z] = init;
        for (std::size_t r = 0; r < out_h; ++r) {
            float *out_row = out_plane + r * out_w;
            for (std::size_t i = 0; i < k; ++i) {
                const std::ptrdiff_t in_r =
                    static_cast<std::ptrdiff_t>(r * s + i) -
                    static_cast<std::ptrdiff_t>(p);
                if (in_r < 0 ||
                    in_r >= static_cast<std::ptrdiff_t>(in_h)) {
                    continue;
                }
                const float *in_row = in_plane + in_r * in_w;
                for (std::size_t j = 0; j < k; ++j) {
                    const std::ptrdiff_t d =
                        static_cast<std::ptrdiff_t>(j) -
                        static_cast<std::ptrdiff_t>(p);
                    std::size_t c0, c1;
                    std::size_t c;
                    if (s == 1) {
                        validRangeS1(d, out_w, in_w, c0, c1);
                        c = c0;
                        for (; c + 4 <= c1; c += 4) {
                            const __m128 v = _mm_loadu_ps(
                                in_row +
                                (static_cast<std::ptrdiff_t>(c) + d));
                            const __m128 acc =
                                _mm_loadu_ps(out_row + c);
                            const __m128 lt = _mm_cmplt_ps(acc, v);
                            _mm_storeu_ps(out_row + c,
                                          _mm_blendv_ps(acc, v, lt));
                        }
                    } else {
                        validRangeS2(d, out_w, in_w, c0, c1);
                        c = c0;
                        for (; c + 4 <= c1 &&
                               static_cast<std::ptrdiff_t>(2 * c + 8) +
                                       d <=
                                   static_cast<std::ptrdiff_t>(in_w);
                             c += 4) {
                            const __m128 v = loadEven4(
                                in_row, static_cast<std::size_t>(
                                            static_cast<std::ptrdiff_t>(
                                                2 * c) +
                                            d));
                            const __m128 acc =
                                _mm_loadu_ps(out_row + c);
                            const __m128 lt = _mm_cmplt_ps(acc, v);
                            _mm_storeu_ps(out_row + c,
                                          _mm_blendv_ps(acc, v, lt));
                        }
                    }
                    for (; c < c1; ++c) {
                        const float v =
                            in_row[static_cast<std::ptrdiff_t>(c * s) +
                                   d];
                        const float acc = out_row[c];
                        out_row[c] = (acc < v) ? v : acc;
                    }
                }
            }
        }
    }
}

FASTBCNN_HOT void
sse4PoolAvg(const float *in, float *out, std::size_t channels,
            std::size_t in_h, std::size_t in_w, std::size_t out_h,
            std::size_t out_w, std::size_t k, std::size_t s,
            std::size_t p)
{
    if (s > 2) {
        scalarPoolAvg(in, out, channels, in_h, in_w, out_h, out_w, k,
                      s, p);
        return;
    }
    const __m128 zero4 = _mm_setzero_ps();
    const __m128 denom4 = _mm_set1_ps(static_cast<float>(k * k));
    for (std::size_t ch = 0; ch < channels; ++ch) {
        const float *in_plane = in + ch * in_h * in_w;
        float *out_plane = out + ch * out_h * out_w;
        std::size_t z = 0;
        for (; z + 4 <= out_h * out_w; z += 4)
            _mm_storeu_ps(out_plane + z, zero4);
        for (; z < out_h * out_w; ++z)
            out_plane[z] = 0.0f;
        for (std::size_t r = 0; r < out_h; ++r) {
            float *out_row = out_plane + r * out_w;
            for (std::size_t i = 0; i < k; ++i) {
                const std::ptrdiff_t in_r =
                    static_cast<std::ptrdiff_t>(r * s + i) -
                    static_cast<std::ptrdiff_t>(p);
                if (in_r < 0 ||
                    in_r >= static_cast<std::ptrdiff_t>(in_h)) {
                    continue;
                }
                const float *in_row = in_plane + in_r * in_w;
                for (std::size_t j = 0; j < k; ++j) {
                    const std::ptrdiff_t d =
                        static_cast<std::ptrdiff_t>(j) -
                        static_cast<std::ptrdiff_t>(p);
                    std::size_t c0, c1;
                    std::size_t c;
                    if (s == 1) {
                        validRangeS1(d, out_w, in_w, c0, c1);
                        c = c0;
                        for (; c + 4 <= c1; c += 4) {
                            const __m128 v = _mm_loadu_ps(
                                in_row +
                                (static_cast<std::ptrdiff_t>(c) + d));
                            const __m128 acc =
                                _mm_loadu_ps(out_row + c);
                            _mm_storeu_ps(out_row + c,
                                          _mm_add_ps(acc, v));
                        }
                    } else {
                        validRangeS2(d, out_w, in_w, c0, c1);
                        c = c0;
                        for (; c + 4 <= c1 &&
                               static_cast<std::ptrdiff_t>(2 * c + 8) +
                                       d <=
                                   static_cast<std::ptrdiff_t>(in_w);
                             c += 4) {
                            const __m128 v = loadEven4(
                                in_row, static_cast<std::size_t>(
                                            static_cast<std::ptrdiff_t>(
                                                2 * c) +
                                            d));
                            const __m128 acc =
                                _mm_loadu_ps(out_row + c);
                            _mm_storeu_ps(out_row + c,
                                          _mm_add_ps(acc, v));
                        }
                    }
                    for (; c < c1; ++c) {
                        out_row[c] +=
                            in_row[static_cast<std::ptrdiff_t>(c * s) +
                                   d];
                    }
                }
            }
        }
        z = 0;
        for (; z + 4 <= out_h * out_w; z += 4) {
            _mm_storeu_ps(
                out_plane + z,
                _mm_div_ps(_mm_loadu_ps(out_plane + z), denom4));
        }
        for (; z < out_h * out_w; ++z)
            out_plane[z] /= static_cast<float>(k * k);
    }
}

FASTBCNN_HOT void
sse4Relu(const float *in, float *out, std::size_t n)
{
    const __m128 zero4 = _mm_setzero_ps();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 v = _mm_loadu_ps(in + i);
        const __m128 gt = _mm_cmpgt_ps(v, zero4);
        _mm_storeu_ps(out + i, _mm_and_ps(v, gt));
    }
    for (; i < n; ++i)
        out[i] = in[i] > 0.0f ? in[i] : 0.0f;
}

FASTBCNN_HOT std::size_t
sse4PopcountWords(const std::uint64_t *w, std::size_t n)
{
    return popcountWords4(w, n);
}

FASTBCNN_HOT std::size_t
sse4PopcountBits(const std::uint64_t *w, std::size_t start_bit,
                 std::size_t n_bits)
{
    return popcountBitsWords(w, start_bit, n_bits);
}

FASTBCNN_HOT std::size_t
sse4AndPopcountWords(const std::uint64_t *a, const std::uint64_t *b,
                     std::size_t n)
{
    return andPopcountWords4(a, b, n);
}

FASTBCNN_HOT void
sse4CountKernelPlane(const std::uint64_t *mask_words,
                     const std::uint64_t *ind_words, std::uint16_t *out,
                     std::uint32_t *row_scratch,
                     std::size_t in_channels, std::size_t in_h,
                     std::size_t in_w, std::size_t out_h,
                     std::size_t out_w, std::size_t k, std::size_t s,
                     std::size_t p)
{
    if (k + p > kMaxWordWindow) {
        scalarCountKernelPlane(mask_words, ind_words, out, row_scratch,
                               in_channels, in_h, in_w, out_h, out_w,
                               k, s, p);
        return;
    }
    countKernelPlaneWords<1>(mask_words, ind_words, out, row_scratch,
                             in_channels, in_h, in_w, out_h, out_w, k,
                             s, p);
}

/*
 * int8 quant kernels.  Integer arithmetic is exact (simd.hpp), so
 * these may vectorize across reductions freely; only saturation and
 * the requantSat convention are pinned, both shared from
 * kernels_internal.hpp.
 */

FASTBCNN_HOT void
sse4QuantConvForward(const std::int8_t *in_data, const std::int8_t *w_data,
                     const std::int32_t *bias, std::int8_t *out_data,
                     std::int32_t *acc, std::size_t in_channels,
                     std::size_t out_channels, std::size_t in_h,
                     std::size_t in_w, std::size_t out_h,
                     std::size_t out_w, std::size_t kernel,
                     std::size_t stride, std::size_t padding,
                     std::int32_t shift)
{
    if (stride != 1) {
        scalarQuantConvForward(in_data, w_data, bias, out_data, acc,
                               in_channels, out_channels, in_h, in_w,
                               out_h, out_w, kernel, stride, padding,
                               shift);
        return;
    }
    for (std::size_t m = 0; m < out_channels; ++m) {
        const std::int32_t b = bias[m];
        const __m128i b4 = _mm_set1_epi32(b);
        std::size_t z = 0;
        for (; z + 4 <= out_h * out_w; z += 4) {
            _mm_storeu_si128(reinterpret_cast<__m128i *>(acc + z), b4);
        }
        for (; z < out_h * out_w; ++z)
            acc[z] = b;
        for (std::size_t n = 0; n < in_channels; ++n) {
            const std::int8_t *in_plane = in_data + n * in_h * in_w;
            const std::int8_t *w_kernel =
                w_data + (m * in_channels + n) * kernel * kernel;
            for (std::size_t i = 0; i < kernel; ++i) {
                for (std::size_t j = 0; j < kernel; ++j) {
                    const std::int32_t wv = w_kernel[i * kernel + j];
                    if (wv == 0)
                        continue;
                    const std::ptrdiff_t d =
                        static_cast<std::ptrdiff_t>(j) -
                        static_cast<std::ptrdiff_t>(padding);
                    std::size_t c0, c1;
                    validRangeS1(d, out_w, in_w, c0, c1);
                    const __m128i wv8 = _mm_set1_epi16(
                        static_cast<short>(wv));
                    for (std::size_t r = 0; r < out_h; ++r) {
                        const std::ptrdiff_t in_r =
                            static_cast<std::ptrdiff_t>(r + i) -
                            static_cast<std::ptrdiff_t>(padding);
                        if (in_r < 0 ||
                            in_r >= static_cast<std::ptrdiff_t>(in_h)) {
                            continue;
                        }
                        const std::int8_t *in_row =
                            in_plane +
                            in_r * static_cast<std::ptrdiff_t>(in_w);
                        std::int32_t *acc_row = acc + r * out_w;
                        std::size_t c = c0;
                        for (; c + 8 <= c1; c += 8) {
                            const __m128i v8 = _mm_loadl_epi64(
                                reinterpret_cast<const __m128i *>(
                                    in_row +
                                    (static_cast<std::ptrdiff_t>(c) +
                                     d)));
                            // i8*i8 fits i16 (|w*x| <= 16129), so the
                            // widened mullo_epi16 product is exact.
                            const __m128i prod = _mm_mullo_epi16(
                                _mm_cvtepi8_epi16(v8), wv8);
                            const __m128i lo =
                                _mm_cvtepi16_epi32(prod);
                            const __m128i hi = _mm_cvtepi16_epi32(
                                _mm_srli_si128(prod, 8));
                            __m128i *alo = reinterpret_cast<__m128i *>(
                                acc_row + c);
                            __m128i *ahi = reinterpret_cast<__m128i *>(
                                acc_row + c + 4);
                            _mm_storeu_si128(
                                alo, _mm_add_epi32(
                                         _mm_loadu_si128(alo), lo));
                            _mm_storeu_si128(
                                ahi, _mm_add_epi32(
                                         _mm_loadu_si128(ahi), hi));
                        }
                        for (; c < c1; ++c) {
                            acc_row[c] +=
                                wv *
                                in_row[static_cast<std::ptrdiff_t>(c) +
                                       d];
                        }
                    }
                }
            }
        }
        std::int8_t *out_plane = out_data + m * out_h * out_w;
        for (std::size_t q = 0; q < out_h * out_w; ++q)
            out_plane[q] = requantSat(acc[q], shift);
    }
}

FASTBCNN_HOT void
sse4QuantDenseAccum(const std::int8_t *w, const std::int32_t *bias,
                    const std::int8_t *x, std::int32_t *acc,
                    std::size_t out_features, std::size_t in_features)
{
    for (std::size_t o = 0; o < out_features; ++o) {
        const std::int8_t *row = w + o * in_features;
        __m128i acc4 = _mm_setzero_si128();
        std::size_t i = 0;
        for (; i + 16 <= in_features; i += 16) {
            const __m128i wv = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(row + i));
            const __m128i xv = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(x + i));
            acc4 = _mm_add_epi32(
                acc4, _mm_madd_epi16(_mm_cvtepi8_epi16(wv),
                                     _mm_cvtepi8_epi16(xv)));
            acc4 = _mm_add_epi32(
                acc4,
                _mm_madd_epi16(
                    _mm_cvtepi8_epi16(_mm_srli_si128(wv, 8)),
                    _mm_cvtepi8_epi16(_mm_srli_si128(xv, 8))));
        }
        std::int32_t lanes[4];
        _mm_storeu_si128(reinterpret_cast<__m128i *>(lanes), acc4);
        std::int32_t sum =
            bias[o] + lanes[0] + lanes[1] + lanes[2] + lanes[3];
        for (; i < in_features; ++i) {
            sum += static_cast<std::int32_t>(row[i]) *
                   static_cast<std::int32_t>(x[i]);
        }
        acc[o] = sum;
    }
}

FASTBCNN_HOT void
sse4QuantRelu(const std::int8_t *in, std::int8_t *out, std::size_t n)
{
    const __m128i zero16 = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(in + i));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                         _mm_and_si128(v, _mm_cmpgt_epi8(v, zero16)));
    }
    for (; i < n; ++i)
        out[i] = in[i] > 0 ? in[i] : std::int8_t{0};
}

FASTBCNN_HOT void
sse4QuantPoolMax(const std::int8_t *in, std::int8_t *out,
                 std::size_t channels, std::size_t in_h,
                 std::size_t in_w, std::size_t out_h, std::size_t out_w,
                 std::size_t k, std::size_t s, std::size_t p,
                 std::int8_t init)
{
    if (s != 1) {
        scalarQuantPoolMax(in, out, channels, in_h, in_w, out_h, out_w,
                           k, s, p, init);
        return;
    }
    const __m128i init16 = _mm_set1_epi8(static_cast<char>(init));
    for (std::size_t ch = 0; ch < channels; ++ch) {
        const std::int8_t *in_plane = in + ch * in_h * in_w;
        std::int8_t *out_plane = out + ch * out_h * out_w;
        std::size_t z = 0;
        for (; z + 16 <= out_h * out_w; z += 16) {
            _mm_storeu_si128(reinterpret_cast<__m128i *>(out_plane + z),
                             init16);
        }
        for (; z < out_h * out_w; ++z)
            out_plane[z] = init;
        for (std::size_t r = 0; r < out_h; ++r) {
            std::int8_t *out_row = out_plane + r * out_w;
            for (std::size_t i = 0; i < k; ++i) {
                const std::ptrdiff_t in_r =
                    static_cast<std::ptrdiff_t>(r + i) -
                    static_cast<std::ptrdiff_t>(p);
                if (in_r < 0 ||
                    in_r >= static_cast<std::ptrdiff_t>(in_h)) {
                    continue;
                }
                const std::int8_t *in_row =
                    in_plane + in_r * static_cast<std::ptrdiff_t>(in_w);
                for (std::size_t j = 0; j < k; ++j) {
                    const std::ptrdiff_t d =
                        static_cast<std::ptrdiff_t>(j) -
                        static_cast<std::ptrdiff_t>(p);
                    std::size_t c0, c1;
                    validRangeS1(d, out_w, in_w, c0, c1);
                    std::size_t c = c0;
                    for (; c + 16 <= c1; c += 16) {
                        const __m128i v = _mm_loadu_si128(
                            reinterpret_cast<const __m128i *>(
                                in_row +
                                (static_cast<std::ptrdiff_t>(c) + d)));
                        __m128i *op =
                            reinterpret_cast<__m128i *>(out_row + c);
                        _mm_storeu_si128(
                            op, _mm_max_epi8(_mm_loadu_si128(op), v));
                    }
                    for (; c < c1; ++c) {
                        const std::int8_t v =
                            in_row[static_cast<std::ptrdiff_t>(c) + d];
                        const std::int8_t a = out_row[c];
                        out_row[c] = (a < v) ? v : a;
                    }
                }
            }
        }
    }
}

} // namespace

const SimdKernels *
sse4TableOrNull()
{
    static const SimdKernels table = {
        &sse4ConvForward,       &sse4DenseForward,
        &sse4PoolMax,           &sse4PoolAvg,
        &sse4Relu,              &sse4PopcountWords,
        &sse4PopcountBits,      &sse4AndPopcountWords,
        &sse4CountKernelPlane,  &sse4QuantConvForward,
        &sse4QuantDenseAccum,   &sse4QuantRelu,
        &sse4QuantPoolMax,
    };
    return &table;
}

} // namespace fastbcnn::simd::detail

#else // !FASTBCNN_SIMD_BUILD_SSE4

namespace fastbcnn::simd::detail {

const SimdKernels *
sse4TableOrNull()
{
    return nullptr;
}

} // namespace fastbcnn::simd::detail

#endif // FASTBCNN_SIMD_BUILD_SSE4
