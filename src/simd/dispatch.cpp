/**
 * @file
 * Runtime dispatch: pick the strongest kernel table the CPU supports
 * (clamped to what was compiled in), honour the FASTBCNN_SIMD
 * environment override, and expose thread-safe get/set of the active
 * table.  See simd.hpp for the API contract.
 */

#include "simd/simd.hpp"

#include <atomic>
#include <cstdlib>

#include "common/logging.hpp"
#include "simd/kernels_internal.hpp"

namespace fastbcnn::simd {

namespace {

/** @return the compiled-in table for @p level, or nullptr. */
const SimdKernels *
tableFor(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar:
        return &detail::scalarTable();
    case SimdLevel::Sse4:
        return detail::sse4TableOrNull();
    case SimdLevel::Avx2:
        return detail::avx2TableOrNull();
    }
    return nullptr;
}

/** @return true when the running CPU can execute @p level. */
bool
cpuSupports(SimdLevel level)
{
#if defined(__x86_64__) || defined(__i386__)
    switch (level) {
    case SimdLevel::Scalar:
        return true;
    case SimdLevel::Sse4:
        return __builtin_cpu_supports("sse4.2") &&
               __builtin_cpu_supports("popcnt");
    case SimdLevel::Avx2:
        return __builtin_cpu_supports("avx2") &&
               __builtin_cpu_supports("popcnt");
    }
    return false;
#else
    return level == SimdLevel::Scalar;
#endif
}

/** Strongest available level at or below @p level (always >= Scalar). */
SimdLevel
clampToAvailable(SimdLevel level)
{
    for (int l = static_cast<int>(level); l > 0; --l) {
        const auto candidate = static_cast<SimdLevel>(l);
        if (levelAvailable(candidate))
            return candidate;
    }
    return SimdLevel::Scalar;
}

/** Startup level: cpuid-detected best, then the env override. */
SimdLevel
initialLevel()
{
    SimdLevel level = detectedLevel();
    const char *env = std::getenv("FASTBCNN_SIMD");
    if (env == nullptr || *env == '\0')
        return level;
    SimdLevel requested;
    if (!simdLevelFromName(env, requested)) {
        warn("FASTBCNN_SIMD=%s is not a dispatch level "
             "(scalar|sse4|avx2); using %s",
             env, simdLevelName(level));
        return level;
    }
    if (!levelAvailable(requested)) {
        const SimdLevel clamped = clampToAvailable(requested);
        warn("FASTBCNN_SIMD=%s is not available on this CPU/build; "
             "using %s",
             env, simdLevelName(clamped));
        return clamped;
    }
    return requested;
}

/** The process-global active level (atomic so setLevel() from one
 *  thread is visible to concurrent active() readers). */
std::atomic<int> &
activeLevelSlot()
{
    static std::atomic<int> slot{static_cast<int>(initialLevel())};
    return slot;
}

} // namespace

const SimdKernels &
active()
{
    return kernelsFor(activeLevel());
}

SimdLevel
activeLevel()
{
    return static_cast<SimdLevel>(
        activeLevelSlot().load(std::memory_order_relaxed));
}

SimdLevel
detectedLevel()
{
    static const SimdLevel detected = [] {
        SimdLevel best = SimdLevel::Scalar;
        for (int l = 1; l < kSimdLevelCount; ++l) {
            const auto candidate = static_cast<SimdLevel>(l);
            if (tableFor(candidate) != nullptr &&
                cpuSupports(candidate)) {
                best = candidate;
            }
        }
        return best;
    }();
    return detected;
}

bool
levelAvailable(SimdLevel level)
{
    return tableFor(level) != nullptr && cpuSupports(level);
}

SimdLevel
setLevel(SimdLevel level)
{
    const SimdLevel clamped = clampToAvailable(level);
    activeLevelSlot().store(static_cast<int>(clamped),
                            std::memory_order_relaxed);
    return clamped;
}

const SimdKernels &
kernelsFor(SimdLevel level)
{
    const SimdKernels *table = tableFor(clampToAvailable(level));
    FASTBCNN_DCHECK(table != nullptr, "no kernel table available");
    return *table;
}

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar:
        return "scalar";
    case SimdLevel::Sse4:
        return "sse4";
    case SimdLevel::Avx2:
        return "avx2";
    }
    return "unknown";
}

bool
simdLevelFromName(std::string_view name, SimdLevel &out)
{
    if (name == "scalar") {
        out = SimdLevel::Scalar;
    } else if (name == "sse4") {
        out = SimdLevel::Sse4;
    } else if (name == "avx2") {
        out = SimdLevel::Avx2;
    } else {
        return false;
    }
    return true;
}

} // namespace fastbcnn::simd
