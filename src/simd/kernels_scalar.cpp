/**
 * @file
 * Scalar dispatch table: thin table over the shared reference kernels
 * in kernels_internal.hpp.  Always compiled, always available — this
 * is the semantics every vector level must reproduce bit-for-bit.
 */

#include "simd/kernels_internal.hpp"

namespace fastbcnn::simd::detail {

const SimdKernels &
scalarTable()
{
    static const SimdKernels table = {
        &scalarConvForward,       &scalarDenseForward,
        &scalarPoolMax,           &scalarPoolAvg,
        &scalarRelu,              &scalarPopcountWords,
        &scalarPopcountBits,      &scalarAndPopcountWords,
        &scalarCountKernelPlane,  &scalarQuantConvForward,
        &scalarQuantDenseAccum,   &scalarQuantRelu,
        &scalarQuantPoolMax,
    };
    return table;
}

} // namespace fastbcnn::simd::detail
