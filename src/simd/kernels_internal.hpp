/**
 * @file
 * Internal glue of the SIMD kernel layer: per-level table providers
 * (consumed by dispatch.cpp) and the shared scalar reference
 * implementations.
 *
 * The scalar kernels are inline here — not in kernels_scalar.cpp — so
 * the SSE4 / AVX2 translation units can fall back to them for shapes
 * their vector paths do not cover (e.g. exotic strides, k + padding
 * too wide for single-word windows) while still being compiled under
 * the same -ffp-contract=off policy.  Falling back never changes
 * results: the scalar kernels ARE the semantics, the vector kernels
 * are bit-identical reimplementations (see simd.hpp).
 */

#ifndef FASTBCNN_SIMD_KERNELS_INTERNAL_HPP
#define FASTBCNN_SIMD_KERNELS_INTERNAL_HPP

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "common/check.hpp"
#include "simd/simd.hpp"

namespace fastbcnn::simd::detail {

/** @return the scalar reference table (always available). */
const SimdKernels &scalarTable();
/** @return the SSE4.2 table, or nullptr when not compiled in. */
const SimdKernels *sse4TableOrNull();
/** @return the AVX2 table, or nullptr when not compiled in. */
const SimdKernels *avx2TableOrNull();

/**
 * Widest (k + padding) the single-word sliding-window formulation of
 * countKernelPlane supports: the k window bits plus up to p bits of
 * left-edge shift must fit one 64-bit extract with headroom.
 */
inline constexpr std::size_t kMaxWordWindow = 57;

/** Read bit @p pos of a packed bit array. */
FASTBCNN_HOT inline bool
bitAt(const std::uint64_t *w, std::size_t pos)
{
    return ((w[pos >> 6] >> (pos & 63)) & 1ull) != 0;
}

/**
 * Extract 64 bits starting at bit @p pos.  Requires one readable
 * guard word past the last data word (BitVolume over-allocates it).
 */
FASTBCNN_HOT inline std::uint64_t
extract64(const std::uint64_t *w, std::size_t pos)
{
    const std::size_t wi = pos >> 6;
    const std::size_t sh = pos & 63;
    const std::uint64_t lo = w[wi] >> sh;
    return sh == 0 ? lo : (lo | (w[wi + 1] << (64 - sh)));
}

// ------------------------------------------------- scalar references

/** Scalar conv forward (the historical convForwardKernel, verbatim). */
FASTBCNN_HOT inline void
scalarConvForward(const float *in_data, const float *w_data,
                  const float *bias, float *out_data,
                  std::size_t in_channels, std::size_t out_channels,
                  std::size_t in_h, std::size_t in_w, std::size_t out_h,
                  std::size_t out_w, std::size_t kernel,
                  std::size_t stride, std::size_t padding)
{
    for (std::size_t m = 0; m < out_channels; ++m) {
        float *out_plane = out_data + m * out_h * out_w;
        const float b = bias[m];
        for (std::size_t i = 0; i < out_h * out_w; ++i)
            out_plane[i] = b;
        for (std::size_t n = 0; n < in_channels; ++n) {
            const float *in_plane = in_data + n * in_h * in_w;
            const float *w_kernel =
                w_data + (m * in_channels + n) * kernel * kernel;
            for (std::size_t i = 0; i < kernel; ++i) {
                for (std::size_t j = 0; j < kernel; ++j) {
                    const float wv = w_kernel[i * kernel + j];
                    if (wv == 0.0f)
                        continue;
                    for (std::size_t r = 0; r < out_h; ++r) {
                        const std::ptrdiff_t in_r =
                            static_cast<std::ptrdiff_t>(r * stride + i)
                            - static_cast<std::ptrdiff_t>(padding);
                        if (in_r < 0 ||
                            in_r >= static_cast<std::ptrdiff_t>(in_h)) {
                            continue;
                        }
                        const float *in_row = in_plane + in_r * in_w;
                        float *out_row = out_plane + r * out_w;
                        for (std::size_t c = 0; c < out_w; ++c) {
                            const std::ptrdiff_t in_c =
                                static_cast<std::ptrdiff_t>(
                                    c * stride + j) -
                                static_cast<std::ptrdiff_t>(padding);
                            if (in_c < 0 ||
                                in_c >=
                                    static_cast<std::ptrdiff_t>(in_w)) {
                                continue;
                            }
                            out_row[c] += wv * in_row[in_c];
                        }
                    }
                }
            }
        }
    }
}

/**
 * Scalar dense forward with the lane-strided accumulation contract:
 * eight double partial sums over lanes i % 8, reduced in lane order
 * after the bias.  This IS the reference semantics all vector levels
 * reproduce (see simd.hpp).
 */
FASTBCNN_HOT inline void
scalarDenseForward(const float *w, const float *bias, const float *x,
                   float *out, std::size_t out_features,
                   std::size_t in_features)
{
    for (std::size_t o = 0; o < out_features; ++o) {
        const float *row = w + o * in_features;
        double lanes[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
        std::size_t i = 0;
        for (; i + 8 <= in_features; i += 8) {
            for (std::size_t l = 0; l < 8; ++l) {
                lanes[l] += static_cast<double>(row[i + l]) *
                            static_cast<double>(x[i + l]);
            }
        }
        for (; i < in_features; ++i) {
            lanes[i & 7] += static_cast<double>(row[i]) *
                            static_cast<double>(x[i]);
        }
        double acc = bias[o];
        for (std::size_t l = 0; l < 8; ++l)
            acc += lanes[l];
        out[o] = static_cast<float>(acc);
    }
}

/** Scalar windowed max-pool: acc = (acc < v) ? v : acc over taps. */
FASTBCNN_HOT inline void
scalarPoolMax(const float *in, float *out, std::size_t channels,
              std::size_t in_h, std::size_t in_w, std::size_t out_h,
              std::size_t out_w, std::size_t k, std::size_t s,
              std::size_t p, float init)
{
    for (std::size_t ch = 0; ch < channels; ++ch) {
        const float *in_plane = in + ch * in_h * in_w;
        float *out_plane = out + ch * out_h * out_w;
        for (std::size_t r = 0; r < out_h; ++r) {
            for (std::size_t c = 0; c < out_w; ++c) {
                float acc = init;
                for (std::size_t i = 0; i < k; ++i) {
                    const std::ptrdiff_t in_r =
                        static_cast<std::ptrdiff_t>(r * s + i) -
                        static_cast<std::ptrdiff_t>(p);
                    if (in_r < 0 ||
                        in_r >= static_cast<std::ptrdiff_t>(in_h)) {
                        continue;
                    }
                    for (std::size_t j = 0; j < k; ++j) {
                        const std::ptrdiff_t in_c =
                            static_cast<std::ptrdiff_t>(c * s + j) -
                            static_cast<std::ptrdiff_t>(p);
                        if (in_c < 0 ||
                            in_c >= static_cast<std::ptrdiff_t>(in_w)) {
                            continue;
                        }
                        const float v =
                            in_plane[static_cast<std::size_t>(in_r) *
                                         in_w +
                                     static_cast<std::size_t>(in_c)];
                        acc = (acc < v) ? v : acc;
                    }
                }
                out_plane[r * out_w + c] = acc;
            }
        }
    }
}

/** Scalar windowed average-pool: tap sum divided by k*k. */
FASTBCNN_HOT inline void
scalarPoolAvg(const float *in, float *out, std::size_t channels,
              std::size_t in_h, std::size_t in_w, std::size_t out_h,
              std::size_t out_w, std::size_t k, std::size_t s,
              std::size_t p)
{
    for (std::size_t ch = 0; ch < channels; ++ch) {
        const float *in_plane = in + ch * in_h * in_w;
        float *out_plane = out + ch * out_h * out_w;
        for (std::size_t r = 0; r < out_h; ++r) {
            for (std::size_t c = 0; c < out_w; ++c) {
                float acc = 0.0f;
                for (std::size_t i = 0; i < k; ++i) {
                    const std::ptrdiff_t in_r =
                        static_cast<std::ptrdiff_t>(r * s + i) -
                        static_cast<std::ptrdiff_t>(p);
                    if (in_r < 0 ||
                        in_r >= static_cast<std::ptrdiff_t>(in_h)) {
                        continue;
                    }
                    for (std::size_t j = 0; j < k; ++j) {
                        const std::ptrdiff_t in_c =
                            static_cast<std::ptrdiff_t>(c * s + j) -
                            static_cast<std::ptrdiff_t>(p);
                        if (in_c < 0 ||
                            in_c >= static_cast<std::ptrdiff_t>(in_w)) {
                            continue;
                        }
                        acc += in_plane[static_cast<std::size_t>(in_r) *
                                            in_w +
                                        static_cast<std::size_t>(in_c)];
                    }
                }
                out_plane[r * out_w + c] =
                    acc / static_cast<float>(k * k);
            }
        }
    }
}

/** Scalar ReLU: out[i] = in[i] > 0 ? in[i] : 0. */
FASTBCNN_HOT inline void
scalarRelu(const float *in, float *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = in[i] > 0.0f ? in[i] : 0.0f;
}

/** Scalar whole-array popcount. */
FASTBCNN_HOT inline std::size_t
scalarPopcountWords(const std::uint64_t *w, std::size_t n)
{
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i)
        total += static_cast<std::size_t>(std::popcount(w[i]));
    return total;
}

/** Scalar bit-range popcount (bit-by-bit, the historical walk). */
FASTBCNN_HOT inline std::size_t
scalarPopcountBits(const std::uint64_t *w, std::size_t start_bit,
                   std::size_t n_bits)
{
    std::size_t total = 0;
    for (std::size_t i = 0; i < n_bits; ++i)
        total += bitAt(w, start_bit + i) ? 1 : 0;
    return total;
}

/** Scalar AND-popcount over word pairs. */
FASTBCNN_HOT inline std::size_t
scalarAndPopcountWords(const std::uint64_t *a, const std::uint64_t *b,
                       std::size_t n)
{
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i)
        total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
    return total;
}

/**
 * Scalar Eq. 5 counting (the historical countKernelPlane, bit-by-bit
 * over raw words).  @p row_scratch is unused at this level.
 */
FASTBCNN_HOT inline void
scalarCountKernelPlane(const std::uint64_t *mask_words,
                       const std::uint64_t *ind_words,
                       std::uint16_t *out, std::uint32_t *row_scratch,
                       std::size_t in_channels, std::size_t in_h,
                       std::size_t in_w, std::size_t out_h,
                       std::size_t out_w, std::size_t k, std::size_t s,
                       std::size_t p)
{
    (void)row_scratch;
    for (std::size_t r = 0; r < out_h; ++r) {
        for (std::size_t c = 0; c < out_w; ++c) {
            std::uint32_t n_d = 0;
            for (std::size_t n = 0; n < in_channels; ++n) {
                for (std::size_t i = 0; i < k; ++i) {
                    const std::ptrdiff_t in_r =
                        static_cast<std::ptrdiff_t>(r * s + i) -
                        static_cast<std::ptrdiff_t>(p);
                    if (in_r < 0 ||
                        in_r >= static_cast<std::ptrdiff_t>(in_h)) {
                        continue;
                    }
                    for (std::size_t j = 0; j < k; ++j) {
                        const std::ptrdiff_t in_c =
                            static_cast<std::ptrdiff_t>(c * s + j) -
                            static_cast<std::ptrdiff_t>(p);
                        if (in_c < 0 ||
                            in_c >=
                                static_cast<std::ptrdiff_t>(in_w)) {
                            continue;
                        }
                        const std::size_t mask_bit =
                            (n * in_h +
                             static_cast<std::size_t>(in_r)) *
                                in_w +
                            static_cast<std::size_t>(in_c);
                        const std::size_t ind_bit =
                            (n * k + i) * k + j;
                        if (bitAt(mask_words, mask_bit) &&
                            bitAt(ind_words, ind_bit)) {
                            ++n_d;
                        }
                    }
                }
            }
            out[r * out_w + c] = static_cast<std::uint16_t>(
                std::min<std::uint32_t>(n_d, 0xffffu));
        }
    }
}

// ------------------------------------ scalar int8 quant references

/** Saturate an int32 accumulator to the int8 range. */
FASTBCNN_HOT inline std::int8_t
sat8(std::int32_t v)
{
    if (v > 127)
        return 127;
    if (v < -128)
        return -128;
    return static_cast<std::int8_t>(v);
}

/**
 * The pinned requantization convention (see simd.hpp): round-half-up
 * right shift, then saturate.  shift == 0 is a plain saturation.
 * Shared by every level — integer arithmetic is exact, so there is
 * nothing level-specific to reimplement.
 */
FASTBCNN_HOT inline std::int8_t
requantSat(std::int32_t acc, std::int32_t shift)
{
    if (shift > 0)
        acc = (acc + (std::int32_t{1} << (shift - 1))) >> shift;
    return sat8(acc);
}

/**
 * Scalar quantized conv forward: int32 accumulation into @p acc
 * (out_h * out_w caller scratch) per output channel, then one
 * requantization pass.  Mirrors scalarConvForward's tap order and
 * zero-weight skip.
 */
FASTBCNN_HOT inline void
scalarQuantConvForward(const std::int8_t *in_data,
                       const std::int8_t *w_data,
                       const std::int32_t *bias, std::int8_t *out_data,
                       std::int32_t *acc, std::size_t in_channels,
                       std::size_t out_channels, std::size_t in_h,
                       std::size_t in_w, std::size_t out_h,
                       std::size_t out_w, std::size_t kernel,
                       std::size_t stride, std::size_t padding,
                       std::int32_t shift)
{
    for (std::size_t m = 0; m < out_channels; ++m) {
        const std::int32_t b = bias[m];
        for (std::size_t z = 0; z < out_h * out_w; ++z)
            acc[z] = b;
        for (std::size_t n = 0; n < in_channels; ++n) {
            const std::int8_t *in_plane = in_data + n * in_h * in_w;
            const std::int8_t *w_kernel =
                w_data + (m * in_channels + n) * kernel * kernel;
            for (std::size_t i = 0; i < kernel; ++i) {
                for (std::size_t j = 0; j < kernel; ++j) {
                    const std::int32_t wv = w_kernel[i * kernel + j];
                    if (wv == 0)
                        continue;
                    for (std::size_t r = 0; r < out_h; ++r) {
                        const std::ptrdiff_t in_r =
                            static_cast<std::ptrdiff_t>(r * stride + i)
                            - static_cast<std::ptrdiff_t>(padding);
                        if (in_r < 0 ||
                            in_r >= static_cast<std::ptrdiff_t>(in_h)) {
                            continue;
                        }
                        const std::int8_t *in_row =
                            in_plane + in_r * static_cast<std::ptrdiff_t>(
                                                  in_w);
                        std::int32_t *acc_row = acc + r * out_w;
                        for (std::size_t c = 0; c < out_w; ++c) {
                            const std::ptrdiff_t in_c =
                                static_cast<std::ptrdiff_t>(
                                    c * stride + j) -
                                static_cast<std::ptrdiff_t>(padding);
                            if (in_c < 0 ||
                                in_c >=
                                    static_cast<std::ptrdiff_t>(in_w)) {
                                continue;
                            }
                            acc_row[c] += wv * in_row[in_c];
                        }
                    }
                }
            }
        }
        std::int8_t *out_plane = out_data + m * out_h * out_w;
        for (std::size_t z = 0; z < out_h * out_w; ++z)
            out_plane[z] = requantSat(acc[z], shift);
    }
}

/** Scalar quantized dense accumulation (raw int32, no requant). */
FASTBCNN_HOT inline void
scalarQuantDenseAccum(const std::int8_t *w, const std::int32_t *bias,
                      const std::int8_t *x, std::int32_t *acc,
                      std::size_t out_features, std::size_t in_features)
{
    for (std::size_t o = 0; o < out_features; ++o) {
        const std::int8_t *row = w + o * in_features;
        std::int32_t sum = bias[o];
        for (std::size_t i = 0; i < in_features; ++i) {
            sum += static_cast<std::int32_t>(row[i]) *
                   static_cast<std::int32_t>(x[i]);
        }
        acc[o] = sum;
    }
}

/** Scalar int8 ReLU. */
FASTBCNN_HOT inline void
scalarQuantRelu(const std::int8_t *in, std::int8_t *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = in[i] > 0 ? in[i] : std::int8_t{0};
}

/** Scalar int8 windowed max-pool: acc = (acc < v) ? v : acc. */
FASTBCNN_HOT inline void
scalarQuantPoolMax(const std::int8_t *in, std::int8_t *out,
                   std::size_t channels, std::size_t in_h,
                   std::size_t in_w, std::size_t out_h,
                   std::size_t out_w, std::size_t k, std::size_t s,
                   std::size_t p, std::int8_t init)
{
    for (std::size_t ch = 0; ch < channels; ++ch) {
        const std::int8_t *in_plane = in + ch * in_h * in_w;
        std::int8_t *out_plane = out + ch * out_h * out_w;
        for (std::size_t r = 0; r < out_h; ++r) {
            for (std::size_t c = 0; c < out_w; ++c) {
                std::int8_t acc = init;
                for (std::size_t i = 0; i < k; ++i) {
                    const std::ptrdiff_t in_r =
                        static_cast<std::ptrdiff_t>(r * s + i) -
                        static_cast<std::ptrdiff_t>(p);
                    if (in_r < 0 ||
                        in_r >= static_cast<std::ptrdiff_t>(in_h)) {
                        continue;
                    }
                    for (std::size_t j = 0; j < k; ++j) {
                        const std::ptrdiff_t in_c =
                            static_cast<std::ptrdiff_t>(c * s + j) -
                            static_cast<std::ptrdiff_t>(p);
                        if (in_c < 0 ||
                            in_c >= static_cast<std::ptrdiff_t>(in_w)) {
                            continue;
                        }
                        const std::int8_t v =
                            in_plane[static_cast<std::size_t>(in_r) *
                                         in_w +
                                     static_cast<std::size_t>(in_c)];
                        acc = (acc < v) ? v : acc;
                    }
                }
                out_plane[r * out_w + c] = acc;
            }
        }
    }
}

// --------------------------------------- shared word-parallel Eq. 5

/**
 * Word-parallel Eq. 5 counting: the j loop collapses into one
 * popcount(window & indicator_row) per (n, i) tap row — the xnor/
 * popcount formulation of binarized-network inference, applied to the
 * skip predictor's AND-count.
 *
 * Narrow planes (in_w <= 64, every CNN the paper evaluates) take the
 * row-resident path: one funnel shift per (n, i, input row) yields the
 * whole masked row with zeros at and past in_w, so every window along
 * it is edge-masked for free by a plain shift — the indicator row is
 * hoisted out of the row loop entirely.  Wider planes fall back to
 * per-window extraction.  Both paths accumulate into a caller-provided
 * out_h * out_w uint32 scratch plane and saturate into @p out at the
 * end.  @p kUnroll = 4 gives the unrolled 4x64-bit popcount lanes the
 * AVX2 level uses (independent popcnt chains).
 *
 * Instantiated inside each vector TU so std::popcount lowers to the
 * hardware POPCNT of that TU's -m flags.  Integer arithmetic only —
 * identical counts to scalarCountKernelPlane by construction.
 * Requires k + p <= kMaxWordWindow (callers gate and fall back).
 */
template <int kUnroll>
FASTBCNN_HOT inline void
countKernelPlaneWords(const std::uint64_t *mask_words,
                      const std::uint64_t *ind_words,
                      std::uint16_t *out, std::uint32_t *scratch,
                      std::size_t in_channels, std::size_t in_h,
                      std::size_t in_w, std::size_t out_h,
                      std::size_t out_w, std::size_t k, std::size_t s,
                      std::size_t p)
{
    const std::uint64_t kmask = (1ull << k) - 1;
    for (std::size_t z = 0; z < out_h * out_w; ++z)
        scratch[z] = 0;
    const bool narrow =
        in_w <= 64 && p <= 63 &&
        (out_w == 0 || (out_w - 1) * s <= 63 + p);
    if (narrow) {
        const std::uint64_t row_mask =
            in_w >= 64 ? ~0ull : (1ull << in_w) - 1;
        for (std::size_t n = 0; n < in_channels; ++n) {
            for (std::size_t i = 0; i < k; ++i) {
                const std::uint64_t ind =
                    extract64(ind_words, (n * k + i) * k) & kmask;
                if (ind == 0)
                    continue;
                for (std::size_t r = 0; r < out_h; ++r) {
                    const std::ptrdiff_t in_r =
                        static_cast<std::ptrdiff_t>(r * s + i) -
                        static_cast<std::ptrdiff_t>(p);
                    if (in_r < 0 ||
                        in_r >= static_cast<std::ptrdiff_t>(in_h)) {
                        continue;
                    }
                    const std::uint64_t mrow =
                        extract64(
                            mask_words,
                            (n * in_h +
                             static_cast<std::size_t>(in_r)) *
                                in_w) &
                        row_mask;
                    if (mrow == 0)
                        continue;
                    std::uint32_t *srow = scratch + r * out_w;
                    const auto windowCount =
                        [&](std::size_t c0) -> std::uint32_t {
                        const std::ptrdiff_t base =
                            static_cast<std::ptrdiff_t>(c0 * s) -
                            static_cast<std::ptrdiff_t>(p);
                        const std::uint64_t win =
                            base < 0 ? mrow << (-base) : mrow >> base;
                        return static_cast<std::uint32_t>(
                            std::popcount(win & ind));
                    };
                    std::size_t c = 0;
                    if constexpr (kUnroll == 4) {
                        for (; c + 4 <= out_w; c += 4) {
                            const std::uint32_t p0 = windowCount(c);
                            const std::uint32_t p1 = windowCount(c + 1);
                            const std::uint32_t p2 = windowCount(c + 2);
                            const std::uint32_t p3 = windowCount(c + 3);
                            srow[c] += p0;
                            srow[c + 1] += p1;
                            srow[c + 2] += p2;
                            srow[c + 3] += p3;
                        }
                    }
                    for (; c < out_w; ++c)
                        srow[c] += windowCount(c);
                }
            }
        }
    } else {
        for (std::size_t r = 0; r < out_h; ++r) {
            std::uint32_t *srow = scratch + r * out_w;
            for (std::size_t n = 0; n < in_channels; ++n) {
                for (std::size_t i = 0; i < k; ++i) {
                    const std::ptrdiff_t in_r =
                        static_cast<std::ptrdiff_t>(r * s + i) -
                        static_cast<std::ptrdiff_t>(p);
                    if (in_r < 0 ||
                        in_r >= static_cast<std::ptrdiff_t>(in_h)) {
                        continue;
                    }
                    const std::uint64_t ind =
                        extract64(ind_words, (n * k + i) * k) & kmask;
                    if (ind == 0)
                        continue;
                    const std::size_t row_bit =
                        (n * in_h + static_cast<std::size_t>(in_r)) *
                        in_w;
                    const auto windowCount =
                        [&](std::size_t c0) -> std::uint32_t {
                        const std::ptrdiff_t base =
                            static_cast<std::ptrdiff_t>(c0 * s) -
                            static_cast<std::ptrdiff_t>(p);
                        std::uint64_t win;
                        if (base < 0) {
                            win = extract64(mask_words, row_bit)
                                  << (-base);
                        } else {
                            win = extract64(
                                mask_words,
                                row_bit +
                                    static_cast<std::size_t>(base));
                        }
                        const std::ptrdiff_t valid_bits =
                            static_cast<std::ptrdiff_t>(in_w) - base;
                        std::uint64_t valid = kmask;
                        if (valid_bits <= 0)
                            valid = 0;
                        else if (valid_bits <
                                 static_cast<std::ptrdiff_t>(k))
                            valid &= (1ull << valid_bits) - 1;
                        return static_cast<std::uint32_t>(
                            std::popcount(win & ind & valid));
                    };
                    std::size_t c = 0;
                    if constexpr (kUnroll == 4) {
                        for (; c + 4 <= out_w; c += 4) {
                            const std::uint32_t p0 = windowCount(c);
                            const std::uint32_t p1 = windowCount(c + 1);
                            const std::uint32_t p2 = windowCount(c + 2);
                            const std::uint32_t p3 = windowCount(c + 3);
                            srow[c] += p0;
                            srow[c + 1] += p1;
                            srow[c + 2] += p2;
                            srow[c + 3] += p3;
                        }
                    }
                    for (; c < out_w; ++c)
                        srow[c] += windowCount(c);
                }
            }
        }
    }
    for (std::size_t z = 0; z < out_h * out_w; ++z) {
        out[z] = static_cast<std::uint16_t>(
            std::min<std::uint32_t>(scratch[z], 0xffffu));
    }
}

/** Word-at-a-time bit-range popcount (masked first/last words). */
FASTBCNN_HOT inline std::size_t
popcountBitsWords(const std::uint64_t *w, std::size_t start_bit,
                  std::size_t n_bits)
{
    if (n_bits == 0)
        return 0;
    const std::size_t end_bit = start_bit + n_bits;
    const std::size_t first = start_bit >> 6;
    const std::size_t last = (end_bit - 1) >> 6;
    const std::size_t lo_sh = start_bit & 63;
    const std::size_t hi_used = ((end_bit - 1) & 63) + 1;
    const std::uint64_t lo_mask = ~0ull << lo_sh;
    const std::uint64_t hi_mask =
        hi_used == 64 ? ~0ull : ((1ull << hi_used) - 1);
    if (first == last) {
        return static_cast<std::size_t>(
            std::popcount(w[first] & lo_mask & hi_mask));
    }
    std::size_t total =
        static_cast<std::size_t>(std::popcount(w[first] & lo_mask));
    for (std::size_t i = first + 1; i < last; ++i)
        total += static_cast<std::size_t>(std::popcount(w[i]));
    total += static_cast<std::size_t>(std::popcount(w[last] & hi_mask));
    return total;
}

/** Unrolled 4x64-bit whole-array popcount. */
FASTBCNN_HOT inline std::size_t
popcountWords4(const std::uint64_t *w, std::size_t n)
{
    std::size_t t0 = 0, t1 = 0, t2 = 0, t3 = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        t0 += static_cast<std::size_t>(std::popcount(w[i]));
        t1 += static_cast<std::size_t>(std::popcount(w[i + 1]));
        t2 += static_cast<std::size_t>(std::popcount(w[i + 2]));
        t3 += static_cast<std::size_t>(std::popcount(w[i + 3]));
    }
    for (; i < n; ++i)
        t0 += static_cast<std::size_t>(std::popcount(w[i]));
    return t0 + t1 + t2 + t3;
}

/** Unrolled 4x64-bit AND-popcount over word pairs. */
FASTBCNN_HOT inline std::size_t
andPopcountWords4(const std::uint64_t *a, const std::uint64_t *b,
                  std::size_t n)
{
    std::size_t t0 = 0, t1 = 0, t2 = 0, t3 = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        t0 += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
        t1 += static_cast<std::size_t>(
            std::popcount(a[i + 1] & b[i + 1]));
        t2 += static_cast<std::size_t>(
            std::popcount(a[i + 2] & b[i + 2]));
        t3 += static_cast<std::size_t>(
            std::popcount(a[i + 3] & b[i + 3]));
    }
    for (; i < n; ++i)
        t0 += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
    return t0 + t1 + t2 + t3;
}

} // namespace fastbcnn::simd::detail

#endif // FASTBCNN_SIMD_KERNELS_INTERNAL_HPP
