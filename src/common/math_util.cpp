#include "math_util.hpp"

#include <algorithm>
#include <cmath>

namespace fastbcnn {

bool
nearlyEqual(float a, float b, float tol)
{
    const float scale = std::max({1.0f, std::fabs(a), std::fabs(b)});
    return std::fabs(a - b) <= tol * scale;
}

} // namespace fastbcnn
