#include "atomic_file.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/table.hpp"

namespace fastbcnn {

namespace {

/** errno rendered for error messages (thread-safe, bounded). */
std::string
errnoString()
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "errno %d (%.96s)", errno,
                  std::strerror(errno));
    return buf;
}

/** Directory part of @p path ("." when it has none). */
std::string
dirOf(const std::string &path)
{
    const std::size_t slash = path.rfind('/');
    if (slash == std::string::npos)
        return ".";
    return slash == 0 ? "/" : path.substr(0, slash);
}

/**
 * A unique temp sibling of @p path.  A process-local counter (not
 * wall clock) keeps names unique across concurrent writers in one
 * process; the pid keeps crashed leftovers from colliding across
 * restarts.
 */
std::string
tempSibling(const std::string &path)
{
    static std::atomic<std::uint64_t> counter{0};
    char suffix[64];
    std::snprintf(suffix, sizeof(suffix), ".tmp-%ld-%llu",
                  static_cast<long>(::getpid()),
                  static_cast<unsigned long long>(
                      counter.fetch_add(1, std::memory_order_relaxed)));
    return path + suffix;
}

/** Write all of @p bytes to @p fd, handling short writes. */
Status
writeAll(int fd, const char *bytes, std::size_t len)
{
    std::size_t done = 0;
    while (done < len) {
        const ::ssize_t n = ::write(fd, bytes + done, len - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return errorf(ErrorCode::IoError, "write failed: %s",
                          errnoString().c_str());
        }
        done += static_cast<std::size_t>(n);
    }
    return Status::ok();
}

/** fsync the directory holding @p path so the rename is durable. */
Status
syncDir(const std::string &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
        return errorf(ErrorCode::IoError,
                      "cannot open directory '%s' for fsync: %s",
                      dir.c_str(), errnoString().c_str());
    }
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
        return errorf(ErrorCode::IoError,
                      "fsync of directory '%s' failed: %s",
                      dir.c_str(), errnoString().c_str());
    }
    return Status::ok();
}

} // namespace

Status
tryAtomicWriteFile(const std::string &path, std::string_view bytes,
                   const AtomicWriteOptions &opts)
{
    const std::string tmp = tempSibling(path);
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL,
                          0644);
    if (fd < 0) {
        return errorf(ErrorCode::IoError,
                      "cannot create temp file '%s': %s", tmp.c_str(),
                      errnoString().c_str());
    }

    // Simulated mid-write kill: leave the torn temp file on disk —
    // exactly the debris a real crash leaves — and stop.
    const std::size_t toWrite =
        opts.failAfterBytes.has_value() &&
                *opts.failAfterBytes < bytes.size()
            ? *opts.failAfterBytes
            : bytes.size();
    Status wrote = writeAll(fd, bytes.data(), toWrite);
    if (!wrote.isOk()) {
        ::close(fd);
        ::unlink(tmp.c_str());
        return std::move(wrote).withContext(
            format("writing '%s'", tmp.c_str()));
    }
    if (toWrite != bytes.size()) {
        ::close(fd);
        return errorf(ErrorCode::IoError,
                      "simulated crash after %zu of %zu bytes of "
                      "'%s' (temp file left torn, target untouched)",
                      toWrite, bytes.size(), tmp.c_str());
    }

    if (opts.sync && ::fsync(fd) != 0) {
        const Status failed =
            errorf(ErrorCode::IoError, "fsync of '%s' failed: %s",
                   tmp.c_str(), errnoString().c_str());
        ::close(fd);
        ::unlink(tmp.c_str());
        return failed;
    }
    if (::close(fd) != 0) {
        const Status failed =
            errorf(ErrorCode::IoError, "close of '%s' failed: %s",
                   tmp.c_str(), errnoString().c_str());
        ::unlink(tmp.c_str());
        return failed;
    }

    if (opts.failBeforeRename) {
        return errorf(ErrorCode::IoError,
                      "simulated crash between fsync and rename of "
                      "'%s' (target untouched)", tmp.c_str());
    }

    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const Status failed = errorf(
            ErrorCode::IoError, "rename '%s' -> '%s' failed: %s",
            tmp.c_str(), path.c_str(), errnoString().c_str());
        ::unlink(tmp.c_str());
        return failed;
    }
    if (opts.sync)
        FASTBCNN_RETURN_IF_ERROR(syncDir(dirOf(path)));
    return Status::ok();
}

Expected<std::string>
tryReadFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        struct stat st;
        if (::stat(path.c_str(), &st) != 0 && errno == ENOENT) {
            return errorf(ErrorCode::NotFound, "no file at '%s'",
                          path.c_str());
        }
        return errorf(ErrorCode::IoError, "cannot open '%s'",
                      path.c_str());
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad()) {
        return errorf(ErrorCode::IoError, "read of '%s' failed",
                      path.c_str());
    }
    return ss.str();
}

} // namespace fastbcnn
