#include "logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace fastbcnn {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Normal};

/** Serialises whole report lines so concurrent logs never interleave. */
std::mutex &
reportMutex()
{
    static std::mutex m;
    return m;
}

void
vreport(const char *tag, const char *fmt, va_list args)
{
    const std::lock_guard<std::mutex> lock(reportMutex());
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (logLevel() == LogLevel::Quiet)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
informVerbose(const char *fmt, ...)
{
    if (logLevel() != LogLevel::Verbose)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

} // namespace fastbcnn
