/**
 * @file
 * A small ASCII / CSV table formatter used by the benchmark harness to
 * print paper-vs-measured rows.
 */

#ifndef FASTBCNN_COMMON_TABLE_HPP
#define FASTBCNN_COMMON_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace fastbcnn {

/**
 * A column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"network", "speedup (paper)", "speedup (ours)"});
 *   t.addRow({"B-LeNet-5", "7.0x", format("%.1fx", s)});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Construct a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; its size must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render with aligned columns and a header rule. */
    void print(std::ostream &os) const;

    /** Render as RFC-4180-ish CSV (no quoting of embedded commas). */
    void printCsv(std::ostream &os) const;

    /** @return number of data rows added (separators excluded). */
    std::size_t rowCount() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;  // empty row = separator
};

/** printf-style std::string formatter. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace fastbcnn

#endif // FASTBCNN_COMMON_TABLE_HPP
