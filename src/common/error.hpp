/**
 * @file
 * Recoverable-error layer: Error / Status / Expected<T>.
 *
 * The contract-check layer (check.hpp) aborts on violated invariants —
 * the right response to bugs *inside* the library.  Boundary paths
 * (deserialisation of untrusted streams, user-supplied options, engine
 * entry points, the MC sample guard) instead return these values, so a
 * serving process can reject one bad request without dying:
 *
 *  - Error:       an error code plus a human-readable message and a
 *                 chain of context frames added on the way up.
 *  - Status:      alias of Error used when a function returns "ok or
 *                 an error" with no payload.
 *  - Expected<T>: either a T or an Error (a minimal std::expected
 *                 stand-in; the repo targets C++20).
 *
 * Policy (DESIGN.md, "Fault tolerance & error handling"): boundary
 * code returns Error; hot-path invariants stay FASTBCNN_DCHECK;
 * internal bugs stay panic().  Legacy void/value-returning wrappers
 * (loadWeights, runMcDropout, ...) remain and fatal() on error, so
 * CLI-style callers keep their old behaviour.
 */

#ifndef FASTBCNN_COMMON_ERROR_HPP
#define FASTBCNN_COMMON_ERROR_HPP

#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "check.hpp"

namespace fastbcnn {

/** Coarse classification of recoverable errors. */
enum class ErrorCode {
    Ok = 0,
    InvalidArgument,   ///< caller-supplied value out of contract
    ParseError,        ///< malformed serialized stream
    Truncated,         ///< stream ended before the advertised payload
    NotFound,          ///< named entity absent (layer, node, ...)
    Mismatch,          ///< counts / shapes disagree with the target
    NonFinite,         ///< NaN / Inf where finite values are required
    FaultInjected,     ///< a FaultPlan deliberately failed this path
    SampleFailed,      ///< an MC sample died for a non-injected reason
    QuorumNotMet,      ///< surviving samples below the required quorum
    DeadlineExceeded,  ///< wall-clock budget expired
    ResourceExhausted, ///< a bounded resource (queue, pool) is full
    Cancelled,         ///< the caller abandoned the request
    Unavailable,       ///< the component is shut down / not accepting
    IoError,           ///< underlying stream reported failure
    DataLoss,          ///< stored data failed an integrity check
    Internal           ///< caught exception / unclassified failure
};

/** @return a stable human-readable name for @p code. */
const char *errorCodeName(ErrorCode code);

/**
 * A recoverable error: code + message + context chain.
 *
 * A default-constructed Error is "ok".  Context frames are added with
 * withContext() as the error propagates outward; toString() renders
 * "[Code] outer: inner: message".
 */
class [[nodiscard]] Error
{
  public:
    /** Construct an ok (no-error) value. */
    Error() = default;

    /** Construct an error; @p code must not be ErrorCode::Ok. */
    Error(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
        FASTBCNN_CHECK(code != ErrorCode::Ok,
                       "ErrorCode::Ok carries no message");
    }

    /** @return the ok value (synonym of Error()). */
    static Error ok() { return {}; }

    /** @return true when this represents success. */
    bool isOk() const { return code_ == ErrorCode::Ok; }

    /** @return the error code (Ok for success). */
    ErrorCode code() const { return code_; }

    /** @return the original (innermost) message. */
    const std::string &message() const { return message_; }

    /** @return context frames, outermost first. */
    const std::vector<std::string> &context() const { return context_; }

    /**
     * Prepend a context frame (no-op on ok).  Chainable:
     * `return std::move(err).withContext("loading checkpoint");`
     */
    Error &withContext(std::string frame) &
    {
        if (!isOk())
            context_.insert(context_.begin(), std::move(frame));
        return *this;
    }
    Error &&withContext(std::string frame) &&
    {
        return std::move(this->withContext(std::move(frame)));
    }

    /** @return "[Code] ctx: ctx: message", or "ok". */
    std::string toString() const;

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
    std::vector<std::string> context_;
};

/** A function result that is either ok or an Error. */
using Status = Error;

/** printf-style Error constructor. */
Error errorf(ErrorCode code, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Either a value or an Error.  Implicitly constructible from both, so
 * `return makeThing();` and `return errorf(...);` both work.
 * Accessing the wrong alternative is a contract violation (panic).
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    Expected(T value) : v_(std::in_place_index<0>, std::move(value)) {}

    Expected(Error error) : v_(std::in_place_index<1>, std::move(error))
    {
        FASTBCNN_CHECK(!std::get<1>(v_).isOk(),
                       "Expected constructed from an ok Error");
    }

    /** @return true when a value is held. */
    bool hasValue() const { return v_.index() == 0; }
    explicit operator bool() const { return hasValue(); }

    /** @return the value; panics when holding an error. */
    const T &value() const &
    {
        checkHasValue();
        return std::get<0>(v_);
    }
    T &value() &
    {
        checkHasValue();
        return std::get<0>(v_);
    }
    T &&value() &&
    {
        checkHasValue();
        return std::get<0>(std::move(v_));
    }

    /** @return the held value, or @p fallback when holding an error. */
    T valueOr(T fallback) const &
    {
        return hasValue() ? std::get<0>(v_) : std::move(fallback);
    }

    /** @return the error; panics when holding a value. */
    const Error &error() const
    {
        FASTBCNN_CHECK(!hasValue(),
                       "Expected::error() on a value result");
        return std::get<1>(v_);
    }

    /** Move the error out (for re-wrapping with extra context). */
    Error takeError() &&
    {
        FASTBCNN_CHECK(!hasValue(),
                       "Expected::takeError() on a value result");
        return std::get<1>(std::move(v_));
    }

  private:
    void checkHasValue() const
    {
        if (!hasValue()) {
            panic("Expected::value() on error: %s",
                  std::get<1>(v_).toString().c_str());
        }
    }

    std::variant<T, Error> v_;
};

} // namespace fastbcnn

/** Propagate a non-ok Status to the caller. */
#define FASTBCNN_RETURN_IF_ERROR(expr)                                     \
    do {                                                                   \
        ::fastbcnn::Status fberr_status_ = (expr);                         \
        if (!fberr_status_.isOk())                                         \
            return fberr_status_;                                          \
    } while (0)

#endif // FASTBCNN_COMMON_ERROR_HPP
