/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for integrity
 * footers on serialized artefacts.  Bit rot in a stored weight file
 * must surface as ErrorCode::DataLoss at load time, not as silently
 * perturbed inference.
 */

#ifndef FASTBCNN_COMMON_CRC32_HPP
#define FASTBCNN_COMMON_CRC32_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace fastbcnn {

/**
 * Running CRC-32: feed chunks by passing the previous return value as
 * @p crc (start from 0).  Matches zlib's crc32() on the same bytes.
 */
std::uint32_t crc32(const void *data, std::size_t len,
                    std::uint32_t crc = 0);

/** Convenience overload for a whole string. */
inline std::uint32_t
crc32(const std::string &s, std::uint32_t crc = 0)
{
    return crc32(s.data(), s.size(), crc);
}

} // namespace fastbcnn

#endif // FASTBCNN_COMMON_CRC32_HPP
