/**
 * @file
 * Crash-safe whole-file writes: temp file + fsync + atomic rename.
 *
 * A checkpoint writer that dies mid-write must never leave a torn
 * file where the old one was — a restarting replica has to find
 * either the complete old bytes or the complete new bytes.  POSIX
 * rename() within one directory is atomic, so the recipe is: write
 * everything to a unique sibling temp file, fsync it, rename over the
 * target, fsync the directory.  A crash at any byte of that sequence
 * leaves the target untouched (at worst a stray *.tmp-* sibling).
 *
 * The crash points are modelled explicitly (AtomicWriteOptions::
 * failAfterBytes / failBeforeRename) so the fault-injection tests can
 * prove the old-or-new invariant at randomized kill offsets without
 * actually killing the process.
 */

#ifndef FASTBCNN_COMMON_ATOMIC_FILE_HPP
#define FASTBCNN_COMMON_ATOMIC_FILE_HPP

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace fastbcnn {

/** Knobs (and test-only crash hooks) of tryAtomicWriteFile(). */
struct AtomicWriteOptions {
    /**
     * fsync the temp file before rename and the directory after.
     * Leave on for durability; tests turn it off for speed.
     */
    bool sync = true;
    /**
     * Test hook: simulate the writer being killed after this many
     * bytes reached the temp file.  The temp file is left behind
     * exactly as a real crash would leave it, no rename happens, and
     * the call returns an IoError describing the simulated kill.
     */
    std::optional<std::size_t> failAfterBytes;
    /**
     * Test hook: simulate a kill after the temp file is complete and
     * synced but before the rename — the last instant a crash can
     * still lose the new version.
     */
    bool failBeforeRename = false;
};

/**
 * Atomically replace (or create) @p path with @p bytes.
 *
 * On success the file at @p path contains exactly @p bytes and the
 * data is durable (when opts.sync).  On any error — including the
 * simulated crashes — the previous content of @p path is intact.
 *
 * @return ok, or an IoError naming the failing step.
 */
[[nodiscard]] Status tryAtomicWriteFile(
    const std::string &path, std::string_view bytes,
    const AtomicWriteOptions &opts = {});

/**
 * Read the entire file at @p path.
 * @return the bytes, or an IoError when the file cannot be read.
 */
[[nodiscard]] Expected<std::string> tryReadFile(
    const std::string &path);

} // namespace fastbcnn

#endif // FASTBCNN_COMMON_ATOMIC_FILE_HPP
