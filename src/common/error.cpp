#include "error.hpp"

#include <cstdarg>
#include <cstdio>

namespace fastbcnn {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok: return "Ok";
      case ErrorCode::InvalidArgument: return "InvalidArgument";
      case ErrorCode::ParseError: return "ParseError";
      case ErrorCode::Truncated: return "Truncated";
      case ErrorCode::NotFound: return "NotFound";
      case ErrorCode::Mismatch: return "Mismatch";
      case ErrorCode::NonFinite: return "NonFinite";
      case ErrorCode::FaultInjected: return "FaultInjected";
      case ErrorCode::SampleFailed: return "SampleFailed";
      case ErrorCode::QuorumNotMet: return "QuorumNotMet";
      case ErrorCode::DeadlineExceeded: return "DeadlineExceeded";
      case ErrorCode::ResourceExhausted: return "ResourceExhausted";
      case ErrorCode::Cancelled: return "Cancelled";
      case ErrorCode::Unavailable: return "Unavailable";
      case ErrorCode::IoError: return "IoError";
      case ErrorCode::DataLoss: return "DataLoss";
      case ErrorCode::Internal: return "Internal";
    }
    panic("unknown ErrorCode %d", static_cast<int>(code));
}

std::string
Error::toString() const
{
    if (isOk())
        return "ok";
    std::string out = "[";
    out += errorCodeName(code_);
    out += "] ";
    for (const std::string &frame : context_) {
        out += frame;
        out += ": ";
    }
    out += message_;
    return out;
}

Error
errorf(ErrorCode code, const char *fmt, ...)
{
    char buf[1024];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return {code, std::string(buf)};
}

} // namespace fastbcnn
