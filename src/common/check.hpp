/**
 * @file
 * Contract-check layer: runtime invariant macros built on top of the
 * panic() reporting in logging.hpp.
 *
 * Three tiers, following the usual CHECK/DCHECK convention:
 *
 *  - FASTBCNN_CHECK(cond, msg): always active, in every build type.
 *    Use for API preconditions and correctness-critical invariants
 *    whose cost is negligible next to the work they guard.
 *  - FASTBCNN_DCHECK(cond, msg): compiled out when
 *    FASTBCNN_ENABLE_DCHECKS is 0.  Use for hot-path checks (per-element
 *    bounds checks in Tensor / BitVolume accessors) that would dominate
 *    the inner loops of a release build.
 *  - FASTBCNN_CHECK_EQ / _NE / _LT / _LE / _GT / _GE (and FASTBCNN_DCHECK_*
 *    variants): comparison checks that print both operand values on
 *    failure, so a violated contract is diagnosable from the log alone.
 *
 * The build system defines FASTBCNN_ENABLE_DCHECKS (the FASTBCNN_DCHECKS
 * CMake option, ON by default).  When the definition is absent the
 * fallback mirrors assert(): on unless NDEBUG.
 */

#ifndef FASTBCNN_COMMON_CHECK_HPP
#define FASTBCNN_COMMON_CHECK_HPP

#include <sstream>

#include "logging.hpp"

#ifndef FASTBCNN_ENABLE_DCHECKS
#ifdef NDEBUG
#define FASTBCNN_ENABLE_DCHECKS 0
#else
#define FASTBCNN_ENABLE_DCHECKS 1
#endif
#endif

/**
 * Hot-path marker for the inner compute kernels (conv / dense /
 * pooling loops, the skip predictor's counting kernels, the MC
 * runner's per-sample scans).  Carrying this attribute is a contract
 * enforced by fastbcnn-lint rule `hot-path` (R3): the function body
 * may not allocate (new / make_unique / container growth), take
 * locks, perform I/O, or log — FASTBCNN_DCHECK* stays allowed because
 * it compiles out of release-speed builds.  The macro also expands to
 * the compiler's `hot` attribute so annotated kernels get optimizer
 * priority; keep it on the *definition* so the linter sees the body.
 */
#if defined(__GNUC__) || defined(__clang__)
#define FASTBCNN_HOT __attribute__((hot))
#else
#define FASTBCNN_HOT
#endif

namespace fastbcnn::detail {

/** Report a failed comparison check, printing both operand values. */
template <typename A, typename B>
[[noreturn]] void
checkOpFail(const char *file, int line, const char *op_str,
            const char *a_str, const char *b_str, const A &a, const B &b)
{
    std::ostringstream os;
    os << a_str << ' ' << op_str << ' ' << b_str << " (with " << a_str
       << " = " << a << ", " << b_str << " = " << b << ")";
    panic("check '%s' failed at %s:%d", os.str().c_str(), file, line);
}

} // namespace fastbcnn::detail

/**
 * Assert an invariant in every build type; calls panic() with location
 * info when the condition is false.
 */
#define FASTBCNN_CHECK(cond, msg)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::fastbcnn::panic("check '%s' failed at %s:%d: %s", #cond,     \
                              __FILE__, __LINE__, (msg));                  \
        }                                                                  \
    } while (0)

/** Comparison check printing both values on failure (always active). */
#define FASTBCNN_CHECK_OP(op, a, b)                                        \
    do {                                                                   \
        const auto &fbchk_a_ = (a);                                        \
        const auto &fbchk_b_ = (b);                                        \
        if (!(fbchk_a_ op fbchk_b_)) {                                     \
            ::fastbcnn::detail::checkOpFail(__FILE__, __LINE__, #op, #a,   \
                                            #b, fbchk_a_, fbchk_b_);       \
        }                                                                  \
    } while (0)

#define FASTBCNN_CHECK_EQ(a, b) FASTBCNN_CHECK_OP(==, a, b)
#define FASTBCNN_CHECK_NE(a, b) FASTBCNN_CHECK_OP(!=, a, b)
#define FASTBCNN_CHECK_LT(a, b) FASTBCNN_CHECK_OP(<, a, b)
#define FASTBCNN_CHECK_LE(a, b) FASTBCNN_CHECK_OP(<=, a, b)
#define FASTBCNN_CHECK_GT(a, b) FASTBCNN_CHECK_OP(>, a, b)
#define FASTBCNN_CHECK_GE(a, b) FASTBCNN_CHECK_OP(>=, a, b)

#if FASTBCNN_ENABLE_DCHECKS

#define FASTBCNN_DCHECK(cond, msg) FASTBCNN_CHECK(cond, msg)
#define FASTBCNN_DCHECK_EQ(a, b) FASTBCNN_CHECK_EQ(a, b)
#define FASTBCNN_DCHECK_NE(a, b) FASTBCNN_CHECK_NE(a, b)
#define FASTBCNN_DCHECK_LT(a, b) FASTBCNN_CHECK_LT(a, b)
#define FASTBCNN_DCHECK_LE(a, b) FASTBCNN_CHECK_LE(a, b)
#define FASTBCNN_DCHECK_GT(a, b) FASTBCNN_CHECK_GT(a, b)
#define FASTBCNN_DCHECK_GE(a, b) FASTBCNN_CHECK_GE(a, b)

#else

// Parsed (so the condition stays type-checked) but never evaluated.
#define FASTBCNN_DCHECK(cond, msg)                                         \
    do {                                                                   \
        if (false) {                                                       \
            (void)(cond);                                                  \
            (void)(msg);                                                   \
        }                                                                  \
    } while (0)
#define FASTBCNN_DCHECK_OP_OFF(a, b)                                       \
    do {                                                                   \
        if (false) {                                                       \
            (void)(a);                                                     \
            (void)(b);                                                     \
        }                                                                  \
    } while (0)
#define FASTBCNN_DCHECK_EQ(a, b) FASTBCNN_DCHECK_OP_OFF(a, b)
#define FASTBCNN_DCHECK_NE(a, b) FASTBCNN_DCHECK_OP_OFF(a, b)
#define FASTBCNN_DCHECK_LT(a, b) FASTBCNN_DCHECK_OP_OFF(a, b)
#define FASTBCNN_DCHECK_LE(a, b) FASTBCNN_DCHECK_OP_OFF(a, b)
#define FASTBCNN_DCHECK_GT(a, b) FASTBCNN_DCHECK_OP_OFF(a, b)
#define FASTBCNN_DCHECK_GE(a, b) FASTBCNN_DCHECK_OP_OFF(a, b)

#endif // FASTBCNN_ENABLE_DCHECKS

#endif // FASTBCNN_COMMON_CHECK_HPP
