/**
 * @file
 * Logging and error-reporting primitives, following the gem5
 * panic/fatal/warn/inform semantics:
 *
 *  - panic():  an internal invariant was violated (a bug in this
 *              library).  Aborts, so a debugger or core dump can catch
 *              the broken state.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid arguments).  Exits cleanly
 *              with a non-zero status.
 *  - warn():   something may be modelled imprecisely; execution
 *              continues.
 *  - inform(): status messages with no connotation of incorrectness.
 *
 * All reporting functions are thread-safe: concurrent calls serialize
 * through an internal mutex so lines never interleave, and the log
 * level is an atomic (setLogLevel() from one thread is visible to
 * concurrent inform() calls without a data race).  The parallel
 * MC-dropout runner logs from worker threads, so this is load-bearing,
 * not defensive.
 *
 * Invariant checking lives in check.hpp (FASTBCNN_CHECK and friends),
 * which layers on panic().
 */

#ifndef FASTBCNN_COMMON_LOGGING_HPP
#define FASTBCNN_COMMON_LOGGING_HPP

#include <cstdarg>
#include <string>

namespace fastbcnn {

/** Verbosity levels for inform(); warnings are always printed. */
enum class LogLevel {
    Quiet,   ///< suppress inform()
    Normal,  ///< default
    Verbose  ///< also print debug-ish detail sent via informVerbose()
};

/** Set the global logging verbosity (atomic; safe from any thread). */
void setLogLevel(LogLevel level);

/** @return the current global logging verbosity. */
LogLevel logLevel();

/**
 * Report an internal invariant violation and abort.
 *
 * @param fmt printf-style format string followed by its arguments.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error and exit(1).
 *
 * @param fmt printf-style format string followed by its arguments.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about possibly-imprecise behaviour; continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message (suppressed at LogLevel::Quiet). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a detailed status message (only at LogLevel::Verbose). */
void informVerbose(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace fastbcnn

#endif // FASTBCNN_COMMON_LOGGING_HPP
