#include "table.hpp"

#include <cstdarg>
#include <cstdio>

#include "check.hpp"

namespace fastbcnn {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    FASTBCNN_CHECK(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    FASTBCNN_CHECK(cells.size() == headers_.size(),
                   "row width does not match header width");
    rows_.push_back(std::move(cells));
}

void
Table::addSeparator()
{
    rows_.emplace_back();
}

std::size_t
Table::rowCount() const
{
    std::size_t n = 0;
    for (const auto &r : rows_)
        n += r.empty() ? 0 : 1;
    return n;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    auto print_rule = [&]() {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            os << '+' << std::string(widths[i] + 2, '-');
        }
        os << "+\n";
    };
    auto print_cells = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &c = i < cells.size() ? cells[i] : "";
            os << "| " << c << std::string(widths[i] - c.size() + 1, ' ');
        }
        os << "|\n";
    };

    print_rule();
    print_cells(headers_);
    print_rule();
    for (const auto &row : rows_) {
        if (row.empty())
            print_rule();
        else
            print_cells(row);
    }
    print_rule();
}

void
Table::printCsv(std::ostream &os) const
{
    auto print_cells = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            os << cells[i] << (i + 1 < cells.size() ? "," : "");
        os << '\n';
    };
    print_cells(headers_);
    for (const auto &row : rows_) {
        if (!row.empty())
            print_cells(row);
    }
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    FASTBCNN_CHECK(needed >= 0, "vsnprintf failed");
    std::string out(static_cast<std::size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    va_end(args);
    return out;
}

} // namespace fastbcnn
