/**
 * @file
 * Cache-line-aligned storage for the SIMD kernel layer.
 *
 * The vector kernels in src/simd/ issue 32-byte loads against Tensor
 * and BitVolume backing storage; aligning the allocations to a full
 * 64-byte cache line guarantees no vector load ever splits a line and
 * keeps the alignment contract (DESIGN.md §14) independent of what the
 * default allocator happens to return.
 */

#ifndef FASTBCNN_COMMON_ALIGNED_HPP
#define FASTBCNN_COMMON_ALIGNED_HPP

#include <cstddef>
#include <new>
#include <vector>

namespace fastbcnn {

/** Alignment (bytes) of all kernel-visible backing storage. */
inline constexpr std::size_t kCacheLineBytes = 64;

/**
 * Minimal C++17 aligned allocator: every allocation is aligned to
 * @p Alignment bytes via the align_val_t overloads of operator new.
 * Stateless, so any two instances compare equal and containers can
 * propagate it freely.
 */
template <typename T, std::size_t Alignment = kCacheLineBytes>
class AlignedAllocator
{
  public:
    using value_type = T;
    static_assert(Alignment >= alignof(T),
                  "alignment below the type's natural alignment");
    static_assert((Alignment & (Alignment - 1)) == 0,
                  "alignment must be a power of two");

    AlignedAllocator() = default;

    template <typename U>
    explicit constexpr AlignedAllocator(
        const AlignedAllocator<U, Alignment> &) noexcept
    {
    }

    template <typename U>
    struct rebind {
        using other = AlignedAllocator<U, Alignment>;
    };

    T *allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t(Alignment)));
    }

    void deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t(Alignment));
    }

    bool operator==(const AlignedAllocator &) const { return true; }
    bool operator!=(const AlignedAllocator &) const { return false; }
};

/** A std::vector whose storage starts on a 64-byte cache line. */
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

} // namespace fastbcnn

#endif // FASTBCNN_COMMON_ALIGNED_HPP
