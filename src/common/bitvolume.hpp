/**
 * @file
 * Packed bit containers for dropout masks, zero-neuron indices and
 * weight-sign indicator planes.
 *
 * The hardware stores all of these as single bits (Section V-B2 of the
 * paper: "the information of kernels is compressed as indicator bits");
 * packing them 64-per-word keeps the functional simulator's memory
 * footprint proportional to what the accelerator's mini-buffers hold
 * and makes popcounts (the counting lanes) cheap.
 */

#ifndef FASTBCNN_COMMON_BITVOLUME_HPP
#define FASTBCNN_COMMON_BITVOLUME_HPP

#include <cstddef>
#include <cstdint>

#include "aligned.hpp"
#include "check.hpp"

namespace fastbcnn {

/**
 * A dense 3-D bit tensor with (channel, row, column) indexing.
 *
 * Bits are stored row-major in 64-bit words.  A 2-D plane is simply a
 * BitVolume with one channel.
 */
class BitVolume
{
  public:
    /** Construct an empty volume (all dimensions zero). */
    BitVolume() = default;

    /**
     * Construct a zero-filled volume.
     *
     * @param channels number of channels (C)
     * @param height   rows per channel (H)
     * @param width    columns per row (W)
     */
    BitVolume(std::size_t channels, std::size_t height, std::size_t width);

    /** @return number of channels. */
    std::size_t channels() const { return channels_; }
    /** @return rows per channel. */
    std::size_t height() const { return height_; }
    /** @return columns per row. */
    std::size_t width() const { return width_; }
    /** @return total number of bits held. */
    std::size_t size() const { return channels_ * height_ * width_; }
    /** @return true when the volume holds no bits. */
    bool empty() const { return size() == 0; }

    /** Read the bit at (c, r, col); bounds-checked via FASTBCNN_DCHECK. */
    bool get(std::size_t c, std::size_t r, std::size_t col) const;

    /** Write the bit at (c, r, col). */
    void set(std::size_t c, std::size_t r, std::size_t col, bool value);

    /** Read by flat index (c*H*W + r*W + col). */
    bool getFlat(std::size_t idx) const;

    /** Write by flat index. */
    void setFlat(std::size_t idx, bool value);

    /** @return number of set bits in the whole volume. */
    std::size_t popcount() const;

    /** @return number of set bits in channel @p c. */
    std::size_t popcountChannel(std::size_t c) const;

    /** @return number of 64-bit words backing size() bits. */
    std::size_t wordCount() const { return (size() + 63) / 64; }

    /**
     * @return the packed words (64-byte-aligned).  One zero guard word
     * is allocated past wordCount() so the SIMD layer's 64-bit window
     * extraction may read one word beyond the last data word; bits at
     * and past size() are always zero.
     */
    const std::uint64_t *words() const { return words_.data(); }

    /** Set every bit to zero, keeping the shape. */
    void clear();

    /** Set every bit to @p value, keeping the shape. */
    void fill(bool value);

    /**
     * Count the set bits shared with @p other (bitwise-AND popcount).
     * Shapes must match.  This is exactly what one "counting lane"
     * accumulates over a convolution window: AND of dropout bit and
     * indicator bit, summed by a counter.
     */
    std::size_t andPopcount(const BitVolume &other) const;

    /** Element-wise OR with @p other (shapes must match). */
    void orWith(const BitVolume &other);

    /** @return true when shapes and all bits are equal. */
    bool operator==(const BitVolume &other) const;

  private:
    std::size_t flatIndex(std::size_t c, std::size_t r,
                          std::size_t col) const
    {
        FASTBCNN_DCHECK(c < channels_ && r < height_ && col < width_,
                        "BitVolume index out of range");
        return (c * height_ + r) * width_ + col;
    }

    std::size_t channels_ = 0;
    std::size_t height_ = 0;
    std::size_t width_ = 0;
    // wordCount() data words plus one always-zero guard word, aligned
    // to a cache line for the SIMD kernel layer (DESIGN.md §14).
    AlignedVector<std::uint64_t> words_;
};

} // namespace fastbcnn

#endif // FASTBCNN_COMMON_BITVOLUME_HPP
