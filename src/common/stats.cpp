#include "stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "check.hpp"

namespace fastbcnn {

void
StatGroup::add(const std::string &key, std::uint64_t delta)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    counters_[key] += delta;
}

void
StatGroup::set(const std::string &key, double value)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    gauges_[key] = value;
}

std::uint64_t
StatGroup::counter(const std::string &key) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
}

double
StatGroup::gauge(const std::string &key) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(key);
    return it == gauges_.end() ? 0.0 : it->second;
}

void
StatGroup::reset()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
}

void
StatGroup::merge(const StatGroup &other)
{
    FASTBCNN_CHECK(&other != this, "StatGroup cannot merge with itself");
    // Lock both sides deadlock-free (merge(a,b) racing merge(b,a)).
    const std::scoped_lock lock(mutex_, other.mutex_);
    for (const auto &[k, v] : other.counters_)
        counters_[k] += v;
    for (const auto &[k, v] : other.gauges_)
        gauges_[k] = v;
}

void
StatGroup::dump(std::ostream &os) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[k, v] : counters_)
        os << name_ << '.' << k << " = " << v << '\n';
    for (const auto &[k, v] : gauges_)
        os << name_ << '.' << k << " = " << v << '\n';
}

LatencyHistogram::LatencyHistogram(const LatencyHistogram &other)
{
    const std::lock_guard<std::mutex> lock(other.mutex_);
    buckets_ = other.buckets_;
    count_ = other.count_;
    sumMs_ = other.sumMs_;
    minMs_ = other.minMs_;
    maxMs_ = other.maxMs_;
}

LatencyHistogram &
LatencyHistogram::operator=(const LatencyHistogram &other)
{
    if (this == &other)
        return *this;
    // Lock both sides deadlock-free (a = b racing b = a).
    const std::scoped_lock lock(mutex_, other.mutex_);
    buckets_ = other.buckets_;
    count_ = other.count_;
    sumMs_ = other.sumMs_;
    minMs_ = other.minMs_;
    maxMs_ = other.maxMs_;
    return *this;
}

std::size_t
LatencyHistogram::bucketIndex(double ms)
{
    const double us = ms * 1000.0;
    if (!(us >= 1.0))
        return 0;
    const auto floored = static_cast<std::uint64_t>(us);
    const std::size_t index = std::bit_width(floored);
    return index < kBuckets ? index : kBuckets - 1;
}

double
LatencyHistogram::bucketLowerMs(std::size_t bucket)
{
    if (bucket == 0)
        return 0.0;
    return std::ldexp(1.0, static_cast<int>(bucket) - 1) / 1000.0;
}

double
LatencyHistogram::bucketUpperMs(std::size_t bucket)
{
    return std::ldexp(1.0, static_cast<int>(bucket)) / 1000.0;
}

void
LatencyHistogram::record(double ms)
{
    const double clamped = std::isfinite(ms) && ms > 0.0 ? ms : 0.0;
    const std::lock_guard<std::mutex> lock(mutex_);
    ++buckets_[bucketIndex(clamped)];
    if (count_ == 0) {
        minMs_ = maxMs_ = clamped;
    } else {
        minMs_ = std::min(minMs_, clamped);
        maxMs_ = std::max(maxMs_, clamped);
    }
    ++count_;
    sumMs_ += clamped;
}

std::uint64_t
LatencyHistogram::count() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

double
LatencyHistogram::totalMs() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return sumMs_;
}

double
LatencyHistogram::meanMs() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return count_ == 0 ? 0.0 : sumMs_ / static_cast<double>(count_);
}

double
LatencyHistogram::minMs() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return minMs_;
}

double
LatencyHistogram::maxMs() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return maxMs_;
}

double
LatencyHistogram::quantileLocked(double q) const
{
    if (count_ == 0)
        return 0.0;
    const double clampedQ = std::clamp(q, 0.0, 1.0);
    // Nearest-rank target: the smallest rank covering q of the mass.
    const auto target = static_cast<std::uint64_t>(
        std::ceil(clampedQ * static_cast<double>(count_)));
    const std::uint64_t rank = target == 0 ? 1 : target;
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        if (buckets_[b] == 0)
            continue;
        if (cumulative + buckets_[b] >= rank) {
            // Interpolate the rank's position inside this bucket.
            const double into =
                static_cast<double>(rank - cumulative) /
                static_cast<double>(buckets_[b]);
            const double lo = bucketLowerMs(b);
            const double hi = bucketUpperMs(b);
            const double estimate = lo + into * (hi - lo);
            return std::clamp(estimate, minMs_, maxMs_);
        }
        cumulative += buckets_[b];
    }
    return maxMs_;
}

double
LatencyHistogram::quantileMs(double q) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return quantileLocked(q);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    FASTBCNN_CHECK(&other != this,
                   "LatencyHistogram cannot merge with itself");
    const std::scoped_lock lock(mutex_, other.mutex_);
    if (other.count_ == 0)
        return;
    for (std::size_t b = 0; b < kBuckets; ++b)
        buckets_[b] += other.buckets_[b];
    minMs_ = count_ == 0 ? other.minMs_ : std::min(minMs_, other.minMs_);
    maxMs_ = count_ == 0 ? other.maxMs_ : std::max(maxMs_, other.maxMs_);
    count_ += other.count_;
    sumMs_ += other.sumMs_;
}

void
LatencyHistogram::reset()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    buckets_.fill(0);
    count_ = 0;
    sumMs_ = 0.0;
    minMs_ = 0.0;
    maxMs_ = 0.0;
}

double
wilsonLowerBound(std::uint64_t hits, std::uint64_t trials, double z)
{
    if (trials == 0)
        return 0.0;
    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(hits) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (p + z2 / (2.0 * n)) / denom;
    const double half =
        z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
    return std::max(0.0, center - half);
}

double
wilsonUpperBound(std::uint64_t hits, std::uint64_t trials, double z)
{
    if (trials == 0)
        return 1.0;
    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(hits) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (p + z2 / (2.0 * n)) / denom;
    const double half =
        z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
    return std::min(1.0, center + half);
}

void
RateEstimator::observe(std::uint64_t hits, std::uint64_t trials)
{
    if (trials == 0)
        return;
    FASTBCNN_CHECK(hits <= trials,
                   "RateEstimator: more hits than trials");
    hits_ += hits;
    trials_ += trials;
    const double batch =
        static_cast<double>(hits) / static_cast<double>(trials);
    if (!seeded_) {
        ewma_ = batch;
        seeded_ = true;
    } else {
        ewma_ = ewmaAlpha_ * batch + (1.0 - ewmaAlpha_) * ewma_;
    }
}

double
RateEstimator::rate() const
{
    return trials_ == 0 ? 0.0
                        : static_cast<double>(hits_) /
                              static_cast<double>(trials_);
}

void
RateEstimator::reset()
{
    seeded_ = false;
    ewma_ = 0.0;
    hits_ = 0;
    trials_ = 0;
}

void
LatencyHistogram::dump(std::ostream &os, const std::string &prefix) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    os << prefix << ".count = " << count_ << '\n';
    const double mean =
        count_ == 0 ? 0.0 : sumMs_ / static_cast<double>(count_);
    os << prefix << ".mean_ms = " << mean << '\n';
    os << prefix << ".min_ms = " << minMs_ << '\n';
    os << prefix << ".p50_ms = " << quantileLocked(0.50) << '\n';
    os << prefix << ".p95_ms = " << quantileLocked(0.95) << '\n';
    os << prefix << ".p99_ms = " << quantileLocked(0.99) << '\n';
    os << prefix << ".max_ms = " << maxMs_ << '\n';
}

} // namespace fastbcnn
