#include "stats.hpp"

#include "check.hpp"

namespace fastbcnn {

void
StatGroup::add(const std::string &key, std::uint64_t delta)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    counters_[key] += delta;
}

void
StatGroup::set(const std::string &key, double value)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    gauges_[key] = value;
}

std::uint64_t
StatGroup::counter(const std::string &key) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
}

double
StatGroup::gauge(const std::string &key) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(key);
    return it == gauges_.end() ? 0.0 : it->second;
}

void
StatGroup::reset()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
}

void
StatGroup::merge(const StatGroup &other)
{
    FASTBCNN_CHECK(&other != this, "StatGroup cannot merge with itself");
    // Lock both sides deadlock-free (merge(a,b) racing merge(b,a)).
    const std::scoped_lock lock(mutex_, other.mutex_);
    for (const auto &[k, v] : other.counters_)
        counters_[k] += v;
    for (const auto &[k, v] : other.gauges_)
        gauges_[k] = v;
}

void
StatGroup::dump(std::ostream &os) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[k, v] : counters_)
        os << name_ << '.' << k << " = " << v << '\n';
    for (const auto &[k, v] : gauges_)
        os << name_ << '.' << k << " = " << v << '\n';
}

} // namespace fastbcnn
