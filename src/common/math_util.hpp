/**
 * @file
 * Small arithmetic helpers shared across the library.
 */

#ifndef FASTBCNN_COMMON_MATH_UTIL_HPP
#define FASTBCNN_COMMON_MATH_UTIL_HPP

#include <cstdint>
#include <type_traits>

#include "logging.hpp"

namespace fastbcnn {

/**
 * Integer ceiling division.  Matches the ⌈a/b⌉ terms that appear in
 * the paper's cycle equations (e.g. K·K·⌈N/T_n⌉ cycles per neuron).
 *
 * @param a dividend, must be >= 0
 * @param b divisor, must be > 0
 * @return smallest integer >= a/b
 */
template <typename T>
constexpr T
ceilDiv(T a, T b)
{
    static_assert(std::is_integral_v<T>, "ceilDiv is for integers");
    return (a + b - 1) / b;
}

/** @return true iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Round @p v up to the next multiple of @p align (align > 0). */
template <typename T>
constexpr T
roundUp(T v, T align)
{
    static_assert(std::is_integral_v<T>, "roundUp is for integers");
    return ceilDiv(v, align) * align;
}

/** Clamp @p v into [lo, hi]. */
template <typename T>
constexpr T
clampValue(T v, T lo, T hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/**
 * Relative tolerance comparison used wherever "the same neuron value"
 * must be decided in the presence of float round-off (e.g.
 * EvaluatePredict in Algorithm 1, see DESIGN.md §5).
 *
 * @return true when |a-b| <= tol * max(1, |a|, |b|)
 */
bool nearlyEqual(float a, float b, float tol);

} // namespace fastbcnn

#endif // FASTBCNN_COMMON_MATH_UTIL_HPP
