/**
 * @file
 * Small arithmetic helpers shared across the library.
 */

#ifndef FASTBCNN_COMMON_MATH_UTIL_HPP
#define FASTBCNN_COMMON_MATH_UTIL_HPP

#include <cstdint>
#include <type_traits>

#include "logging.hpp"

namespace fastbcnn {

/**
 * Integer ceiling division.  Matches the ⌈a/b⌉ terms that appear in
 * the paper's cycle equations (e.g. K·K·⌈N/T_n⌉ cycles per neuron).
 *
 * @param a dividend, must be >= 0
 * @param b divisor, must be > 0
 * @return smallest integer >= a/b
 */
template <typename T>
constexpr T
ceilDiv(T a, T b)
{
    static_assert(std::is_integral_v<T>, "ceilDiv is for integers");
    return (a + b - 1) / b;
}

/** @return true iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Round @p v up to the next multiple of @p align (align > 0). */
template <typename T>
constexpr T
roundUp(T v, T align)
{
    static_assert(std::is_integral_v<T>, "roundUp is for integers");
    return ceilDiv(v, align) * align;
}

/** Clamp @p v into [lo, hi]. */
template <typename T>
constexpr T
clampValue(T v, T lo, T hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/**
 * splitmix64 finalizer (Steele, Lea & Flood; the xorshift-multiply
 * avalanche stage of SplitMix64).  Bijective on 64-bit values, so
 * distinct inputs always yield distinct outputs, and every output bit
 * depends on every input bit — the property the BRNG seed derivation
 * needs (a plain multiply-and-truncate collides, see mixSeedTo32()).
 */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Mix a 64-bit seed down to 32 bits with full avalanche: splitmix64
 * then fold the halves.  Unlike a bare static_cast, seeds differing
 * only in their high word map to different values (with overwhelming
 * probability), and seed 0 does not map to 0, so it never trips the
 * Lfsr32 all-zero fallback.
 */
constexpr std::uint32_t
mixSeedTo32(std::uint64_t seed)
{
    const std::uint64_t m = splitmix64(seed);
    return static_cast<std::uint32_t>(m ^ (m >> 32));
}

/**
 * Derive the seed of MC-dropout sample @p index from the user-facing
 * run seed.  Each sample owns an independent BRNG seeded here, which
 * is what makes the runner's output independent of the number of
 * worker threads (DESIGN.md, "Verification & sanitizers").
 */
constexpr std::uint64_t
sampleSeed(std::uint64_t run_seed, std::uint64_t index)
{
    // Distinct (run_seed, index) pairs land on distinct splitmix64
    // streams; the golden-ratio stride keeps neighbouring runs apart.
    return splitmix64(run_seed + (index + 1) * 0x9e3779b97f4a7c15ull);
}

/**
 * Relative tolerance comparison used wherever "the same neuron value"
 * must be decided in the presence of float round-off (e.g.
 * EvaluatePredict in Algorithm 1, see DESIGN.md §5).
 *
 * @return true when |a-b| <= tol * max(1, |a|, |b|)
 */
bool nearlyEqual(float a, float b, float tol);

} // namespace fastbcnn

#endif // FASTBCNN_COMMON_MATH_UTIL_HPP
