#include "bitvolume.hpp"

#include <bit>

#include "check.hpp"
#include "math_util.hpp"

namespace fastbcnn {

BitVolume::BitVolume(std::size_t channels, std::size_t height,
                     std::size_t width)
    : channels_(channels), height_(height), width_(width),
      words_(ceilDiv<std::size_t>(channels * height * width, 64), 0)
{
}

bool
BitVolume::get(std::size_t c, std::size_t r, std::size_t col) const
{
    return getFlat(flatIndex(c, r, col));
}

void
BitVolume::set(std::size_t c, std::size_t r, std::size_t col, bool value)
{
    setFlat(flatIndex(c, r, col), value);
}

bool
BitVolume::getFlat(std::size_t idx) const
{
    FASTBCNN_DCHECK(idx < size(), "BitVolume flat index out of range");
    return (words_[idx / 64] >> (idx % 64)) & 1ull;
}

void
BitVolume::setFlat(std::size_t idx, bool value)
{
    FASTBCNN_DCHECK(idx < size(), "BitVolume flat index out of range");
    const std::uint64_t mask = 1ull << (idx % 64);
    if (value)
        words_[idx / 64] |= mask;
    else
        words_[idx / 64] &= ~mask;
}

std::size_t
BitVolume::popcount() const
{
    std::size_t total = 0;
    for (std::uint64_t w : words_)
        total += static_cast<std::size_t>(std::popcount(w));
    return total;
}

std::size_t
BitVolume::popcountChannel(std::size_t c) const
{
    FASTBCNN_CHECK(c < channels_, "channel out of range");
    // Channels are not word-aligned, so walk bit-by-bit; channel sizes
    // are small (feature-map planes) and this is not on a hot path.
    std::size_t total = 0;
    const std::size_t base = c * height_ * width_;
    for (std::size_t i = 0; i < height_ * width_; ++i)
        total += getFlat(base + i) ? 1 : 0;
    return total;
}

void
BitVolume::clear()
{
    std::fill(words_.begin(), words_.end(), 0ull);
}

void
BitVolume::fill(bool value)
{
    std::fill(words_.begin(), words_.end(),
              value ? ~0ull : 0ull);
    if (value) {
        // Clear the padding bits past size() so popcount() stays exact.
        const std::size_t used = size() % 64;
        if (used != 0 && !words_.empty())
            words_.back() &= (1ull << used) - 1;
    }
}

std::size_t
BitVolume::andPopcount(const BitVolume &other) const
{
    FASTBCNN_CHECK(channels_ == other.channels_ &&
                   height_ == other.height_ && width_ == other.width_,
                   "BitVolume shape mismatch in andPopcount");
    std::size_t total = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        total += static_cast<std::size_t>(
            std::popcount(words_[i] & other.words_[i]));
    }
    return total;
}

void
BitVolume::orWith(const BitVolume &other)
{
    FASTBCNN_CHECK(channels_ == other.channels_ &&
                   height_ == other.height_ && width_ == other.width_,
                   "BitVolume shape mismatch in orWith");
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] |= other.words_[i];
}

bool
BitVolume::operator==(const BitVolume &other) const
{
    return channels_ == other.channels_ && height_ == other.height_ &&
           width_ == other.width_ && words_ == other.words_;
}

} // namespace fastbcnn
