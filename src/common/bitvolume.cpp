#include "bitvolume.hpp"

#include <algorithm>

#include "check.hpp"
#include "math_util.hpp"
#include "simd/simd.hpp"

namespace fastbcnn {

BitVolume::BitVolume(std::size_t channels, std::size_t height,
                     std::size_t width)
    : channels_(channels), height_(height), width_(width),
      // +1: the guard word the SIMD layer's window extraction may read.
      words_(ceilDiv<std::size_t>(channels * height * width, 64) + 1, 0)
{
}

bool
BitVolume::get(std::size_t c, std::size_t r, std::size_t col) const
{
    return getFlat(flatIndex(c, r, col));
}

void
BitVolume::set(std::size_t c, std::size_t r, std::size_t col, bool value)
{
    setFlat(flatIndex(c, r, col), value);
}

bool
BitVolume::getFlat(std::size_t idx) const
{
    FASTBCNN_DCHECK(idx < size(), "BitVolume flat index out of range");
    return (words_[idx / 64] >> (idx % 64)) & 1ull;
}

void
BitVolume::setFlat(std::size_t idx, bool value)
{
    FASTBCNN_DCHECK(idx < size(), "BitVolume flat index out of range");
    const std::uint64_t mask = 1ull << (idx % 64);
    if (value)
        words_[idx / 64] |= mask;
    else
        words_[idx / 64] &= ~mask;
}

std::size_t
BitVolume::popcount() const
{
    return simd::active().popcountWords(words_.data(), wordCount());
}

std::size_t
BitVolume::popcountChannel(std::size_t c) const
{
    FASTBCNN_CHECK(c < channels_, "channel out of range");
    // Channels are not word-aligned; the dispatched kernel masks the
    // partial first/last words and counts whole words in between.
    return simd::active().popcountBits(
        words_.data(), c * height_ * width_, height_ * width_);
}

void
BitVolume::clear()
{
    std::fill(words_.begin(), words_.end(), 0ull);
}

void
BitVolume::fill(bool value)
{
    std::fill_n(words_.begin(), wordCount(), value ? ~0ull : 0ull);
    if (value) {
        // Clear the padding bits past size() so popcount() stays exact
        // (the guard word past wordCount() is never written).
        const std::size_t used = size() % 64;
        if (used != 0)
            words_[wordCount() - 1] &= (1ull << used) - 1;
    }
}

std::size_t
BitVolume::andPopcount(const BitVolume &other) const
{
    FASTBCNN_DCHECK_EQ(wordCount(), other.wordCount());
    FASTBCNN_DCHECK(channels_ == other.channels_ &&
                    height_ == other.height_ && width_ == other.width_,
                    "BitVolume shape mismatch in andPopcount");
    return simd::active().andPopcountWords(words_.data(),
                                           other.words_.data(),
                                           wordCount());
}

void
BitVolume::orWith(const BitVolume &other)
{
    FASTBCNN_CHECK(channels_ == other.channels_ &&
                   height_ == other.height_ && width_ == other.width_,
                   "BitVolume shape mismatch in orWith");
    for (std::size_t i = 0; i < wordCount(); ++i)
        words_[i] |= other.words_[i];
}

bool
BitVolume::operator==(const BitVolume &other) const
{
    return channels_ == other.channels_ && height_ == other.height_ &&
           width_ == other.width_ &&
           std::equal(words_.begin(), words_.begin() + wordCount(),
                      other.words_.begin());
}

} // namespace fastbcnn
