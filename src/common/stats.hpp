/**
 * @file
 * A tiny named-counter statistics registry, in the spirit of gem5's
 * stats package.  Simulator components register scalar counters and
 * the harness dumps them grouped by component.
 */

#ifndef FASTBCNN_COMMON_STATS_HPP
#define FASTBCNN_COMMON_STATS_HPP

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

namespace fastbcnn {

/**
 * A group of named 64-bit counters and double-valued gauges.
 *
 * Thread-safe: every member serialises on an internal mutex, so a
 * group can act as a shared sink for the parallel MC-dropout workers
 * (add() from many threads, dump() from the harness).  The cycle-level
 * simulator itself remains single-threaded and pays one uncontended
 * lock per update.
 */
class StatGroup
{
  public:
    /** Construct a group with a dotted-path name, e.g. "fb64.pe0". */
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Add @p delta to counter @p key (creating it at zero). */
    void add(const std::string &key, std::uint64_t delta = 1);

    /** Set gauge @p key to @p value. */
    void set(const std::string &key, double value);

    /** @return counter value (0 when absent). */
    std::uint64_t counter(const std::string &key) const;

    /** @return gauge value (0.0 when absent). */
    double gauge(const std::string &key) const;

    /** Reset all counters and gauges to zero. */
    void reset();

    /** Merge another group's counters into this one (summing). */
    void merge(const StatGroup &other);

    /** Dump "name.key = value" lines. */
    void dump(std::ostream &os) const;

    /** @return the group's dotted-path name. */
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    mutable std::mutex mutex_;
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
};

/**
 * A log-bucketed latency histogram with quantile estimation.
 *
 * Samples are recorded in milliseconds and land in power-of-two
 * microsecond buckets (bucket 0 covers [0, 1) us, bucket b covers
 * [2^(b-1), 2^b) us), so sub-microsecond dispatch overheads and
 * multi-second soak-test stalls share one fixed-size array.  Quantiles
 * interpolate linearly inside the winning bucket and are clamped to
 * the observed [min, max], which keeps single-sample histograms exact.
 *
 * Thread-safe like StatGroup (internal mutex): the serving layer
 * records completions from every worker thread into one per-outcome
 * histogram.  merge() makes per-worker local histograms cheap to
 * aggregate; copying takes a consistent snapshot.
 */
class LatencyHistogram
{
  public:
    LatencyHistogram() = default;

    LatencyHistogram(const LatencyHistogram &other);
    LatencyHistogram &operator=(const LatencyHistogram &other);

    /** Record one latency sample (negative values clamp to zero). */
    void record(double ms);

    /** @return the number of recorded samples. */
    std::uint64_t count() const;

    /** @return the sum of all samples in ms (0 when empty). */
    double totalMs() const;

    /** @return the arithmetic mean in ms (0 when empty). */
    double meanMs() const;

    /** @return the smallest recorded sample (0 when empty). */
    double minMs() const;

    /** @return the largest recorded sample (0 when empty). */
    double maxMs() const;

    /**
     * Estimate the @p q quantile (q in [0, 1]) in ms; 0 when empty.
     * Log-bucket resolution: the estimate is exact to within its
     * bucket's width (a factor of two) and clamped to [min, max].
     */
    double quantileMs(double q) const;

    /** Median estimate. */
    double p50Ms() const { return quantileMs(0.50); }
    /** 95th-percentile estimate. */
    double p95Ms() const { return quantileMs(0.95); }
    /** 99th-percentile estimate. */
    double p99Ms() const { return quantileMs(0.99); }

    /** Fold another histogram's samples into this one. */
    void merge(const LatencyHistogram &other);

    /** Forget every sample. */
    void reset();

    /** Dump "prefix.count / .mean_ms / .p50_ms ..." lines. */
    void dump(std::ostream &os, const std::string &prefix) const;

  private:
    /** [0,1)us, [1,2)us, [2,4)us ... ~2^62 us: covers any latency. */
    static constexpr std::size_t kBuckets = 64;

    static std::size_t bucketIndex(double ms);
    static double bucketLowerMs(std::size_t bucket);
    static double bucketUpperMs(std::size_t bucket);

    double quantileLocked(double q) const;

    mutable std::mutex mutex_;
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    double sumMs_ = 0.0;
    double minMs_ = 0.0;
    double maxMs_ = 0.0;
};

/**
 * Wilson score interval lower bound for a Bernoulli rate observed as
 * @p hits over @p trials, at normal quantile @p z (1.96 ~ 95 %).  The
 * Wilson interval stays calibrated at the small trial counts a
 * per-kernel audit produces (unlike the naive normal interval, which
 * collapses to [p, p] near 0 and 1).  @return 0 when trials == 0.
 */
double wilsonLowerBound(std::uint64_t hits, std::uint64_t trials,
                        double z);

/** Wilson score interval upper bound; 1 when trials == 0. */
double wilsonUpperBound(std::uint64_t hits, std::uint64_t trials,
                        double z);

/**
 * A Bernoulli-rate estimator combining a lifetime hit/trial count with
 * an EWMA over observation batches, plus Wilson interval bounds.
 *
 * This is the guard layer's mispredict-rate tracker: observe() folds
 * one batch (e.g. one decision round's audited neurons) at a time, the
 * EWMA weights recent batches so drift shows up quickly, and the
 * Wilson bounds say how sure the estimate is given the trials seen.
 *
 * NOT thread-safe and fully deterministic: same observe() sequence,
 * same state, bit for bit.  Callers needing concurrency (SkipGuard)
 * serialise access themselves, which keeps the estimator usable in
 * bit-identical replay paths.
 */
class RateEstimator
{
  public:
    /** @param ewma_alpha weight of the newest batch in [0, 1]. */
    explicit RateEstimator(double ewma_alpha = 0.2)
        : ewmaAlpha_(ewma_alpha)
    {}

    /** Fold one observation batch (no-op when trials == 0). */
    void observe(std::uint64_t hits, std::uint64_t trials);

    /** @return total trials observed. */
    std::uint64_t trials() const { return trials_; }

    /** @return total hits observed. */
    std::uint64_t hits() const { return hits_; }

    /** @return lifetime hits/trials (0 when empty). */
    double rate() const;

    /** @return the batch-rate EWMA (0 before the first batch). */
    double ewma() const { return ewma_; }

    /** @return Wilson lower bound on the lifetime rate. */
    double lowerBound(double z = 1.96) const
    {
        return wilsonLowerBound(hits_, trials_, z);
    }

    /** @return Wilson upper bound on the lifetime rate. */
    double upperBound(double z = 1.96) const
    {
        return wilsonUpperBound(hits_, trials_, z);
    }

    /** Forget everything (a threshold change invalidates history). */
    void reset();

  private:
    double ewmaAlpha_;
    bool seeded_ = false;
    double ewma_ = 0.0;
    std::uint64_t hits_ = 0;
    std::uint64_t trials_ = 0;
};

} // namespace fastbcnn

#endif // FASTBCNN_COMMON_STATS_HPP
