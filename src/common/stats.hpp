/**
 * @file
 * A tiny named-counter statistics registry, in the spirit of gem5's
 * stats package.  Simulator components register scalar counters and
 * the harness dumps them grouped by component.
 */

#ifndef FASTBCNN_COMMON_STATS_HPP
#define FASTBCNN_COMMON_STATS_HPP

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

namespace fastbcnn {

/**
 * A group of named 64-bit counters and double-valued gauges.
 *
 * Thread-safe: every member serialises on an internal mutex, so a
 * group can act as a shared sink for the parallel MC-dropout workers
 * (add() from many threads, dump() from the harness).  The cycle-level
 * simulator itself remains single-threaded and pays one uncontended
 * lock per update.
 */
class StatGroup
{
  public:
    /** Construct a group with a dotted-path name, e.g. "fb64.pe0". */
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Add @p delta to counter @p key (creating it at zero). */
    void add(const std::string &key, std::uint64_t delta = 1);

    /** Set gauge @p key to @p value. */
    void set(const std::string &key, double value);

    /** @return counter value (0 when absent). */
    std::uint64_t counter(const std::string &key) const;

    /** @return gauge value (0.0 when absent). */
    double gauge(const std::string &key) const;

    /** Reset all counters and gauges to zero. */
    void reset();

    /** Merge another group's counters into this one (summing). */
    void merge(const StatGroup &other);

    /** Dump "name.key = value" lines. */
    void dump(std::ostream &os) const;

    /** @return the group's dotted-path name. */
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    mutable std::mutex mutex_;
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
};

} // namespace fastbcnn

#endif // FASTBCNN_COMMON_STATS_HPP
