/**
 * @file
 * Trace-driven cycle and energy models of the four accelerators the
 * paper evaluates: the skip-oblivious baseline, Fast-BCNN (with
 * dropped-only / unaffected-only ablation modes), a Cnvlutin-style
 * zero-input skipper, and the ideal (perfectly balanced, zero
 * overhead) bound.  See DESIGN.md §5 for the cycle-accounting rules.
 */

#ifndef FASTBCNN_SIM_ACCELERATOR_HPP
#define FASTBCNN_SIM_ACCELERATOR_HPP

#include "config.hpp"
#include "report.hpp"
#include "trace/trace.hpp"

namespace fastbcnn {

/** Which neuron classes the skip engine elides (Fig. 11 ablation). */
enum class SkipMode {
    None,            ///< baseline behaviour
    DroppedOnly,     ///< FB-d: dropout bits only, prediction off
    UnaffectedOnly,  ///< FB-u: prediction bits only
    Full             ///< dropped OR predicted (Fast-BCNN proper)
};

/** How prediction-unit latency interacts with convolution (Eq. 8). */
enum class SyncModel {
    /**
     * Prediction for block l+1 overlaps only block l's convolution —
     * the strictest reading of Eq. 8, used by the sync-sizing
     * ablation bench to expose undersized counting-lane arrays.
     */
    Pairwise,
    /**
     * Prediction is throughput-bound over the whole run: dropout bits
     * are input-independent (the BRNG can run ahead), so the counting
     * lanes stall convolution only when their cumulative backlog
     * exceeds the convolution time available so far — the behaviour
     * the paper's Eq. 9 sizing is designed to guarantee.  Default.
     */
    Aggregate
};

/** Fast-BCNN simulation options. */
struct SimOptions {
    SkipMode mode = SkipMode::Full;
    SyncModel sync = SyncModel::Aggregate;
    /** Reuse pre-inference layer-1 outputs in samples >= 2 (§V-B1). */
    bool firstLayerShortcut = true;
    EnergyParams energy;
};

/**
 * Simulate the skip-oblivious baseline CNN accelerator running the
 * full T-sample MC-dropout workload (no pre-inference).
 */
SimReport simulateBaseline(const InferenceTrace &trace,
                           const AcceleratorConfig &cfg,
                           const EnergyParams &energy = {});

/**
 * Simulate Fast-BCNN: the pre-inference plus T skipping samples.
 * The mode selects the Fig. 11 ablation variant.
 */
SimReport simulateFastBcnn(const InferenceTrace &trace,
                           const AcceleratorConfig &cfg,
                           const SimOptions &opts = {});

/**
 * Simulate a Cnvlutin-style accelerator: every output neuron is
 * computed, but multiplications with a zero input are elided
 * (ceil(nnz/T_n) cycles per neuron); the first layer is not skipped.
 */
SimReport simulateCnvlutin(const InferenceTrace &trace,
                           const AcceleratorConfig &cfg,
                           const EnergyParams &energy = {});

/**
 * Simulate the ideal bound: Fast-BCNN's computation savings with
 * perfect PE load balance and zero skip/prediction overhead.
 */
SimReport simulateIdeal(const InferenceTrace &trace,
                        const AcceleratorConfig &cfg,
                        const SimOptions &opts = {});

} // namespace fastbcnn

#endif // FASTBCNN_SIM_ACCELERATOR_HPP
