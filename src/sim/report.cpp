#include "report.hpp"

#include <map>
#include <ostream>

#include "common/table.hpp"

namespace fastbcnn {

std::string
degradationSummary(const DegradationCensus &census)
{
    std::string out = format("%zu/%zu samples survived",
                             census.survived, census.requested);
    if (census.budget > 0 && census.budget < census.requested)
        out += format(" (budget clamped to %zu)", census.budget);
    if (census.converged) {
        out += format(" (converged at T'=%zu, CI width %.4g)",
                      census.convergedAt, census.ciWidth);
    }
    if (!census.degraded)
        return out;
    // Aggregate casualties by error code, in code order.
    std::map<ErrorCode, std::size_t> byCode;
    for (const SampleFailure &f : census.failures)
        ++byCode[f.code];
    out += " (degraded; ";
    bool first = true;
    for (const auto &[code, count] : byCode) {
        if (!first)
            out += ", ";
        out += format("%zu %s", count, errorCodeName(code));
        first = false;
    }
    out += ")";
    return out;
}

void
printDegradation(const DegradationCensus &census, std::ostream &os)
{
    os << degradationSummary(census) << '\n';
    if (!census.degraded)
        return;
    Table t({"sample", "code", "reason"});
    for (const SampleFailure &f : census.failures) {
        t.addRow({format("%zu", f.sample), errorCodeName(f.code),
                  f.reason});
    }
    t.print(os);
}

} // namespace fastbcnn
