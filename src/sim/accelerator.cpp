#include "accelerator.hpp"

#include <algorithm>

#include "common/math_util.hpp"

namespace fastbcnn {

namespace {

/** Derived per-block constants under one configuration. */
struct BlockGeom {
    std::uint64_t cyclesPerNeuron = 0;   ///< K²·ceil(N/T_n)
    std::uint64_t laneSlotsPerNeuron = 0;///< K²·ceil(N/T_n)·T_n
    std::uint64_t macsPerNeuron = 0;     ///< K²·N
    std::uint64_t weightBytes = 0;
    std::uint64_t inputBytes = 0;
    std::uint64_t outputBytes = 0;
    std::uint64_t indicatorBytes = 0;    ///< weight-sign bits
    std::uint64_t zeroIndexBytes = 0;    ///< 1 bit per neuron
};

BlockGeom
geomOf(const BlockInfo &b, const AcceleratorConfig &cfg)
{
    BlockGeom g;
    const std::uint64_t kk = static_cast<std::uint64_t>(b.kernel) *
                             b.kernel;
    g.cyclesPerNeuron = kk * ceilDiv(b.inChannels, cfg.tn);
    g.laneSlotsPerNeuron = g.cyclesPerNeuron * cfg.tn;
    g.macsPerNeuron = kk * b.inChannels;
    const std::uint64_t in_h =
        (b.outH - 1) * b.stride + b.kernel - 2 * b.padding;
    const std::uint64_t in_w =
        (b.outW - 1) * b.stride + b.kernel - 2 * b.padding;
    g.weightBytes = static_cast<std::uint64_t>(b.outChannels) *
                    b.inChannels * kk * 4;
    g.inputBytes = static_cast<std::uint64_t>(b.inChannels) * in_h *
                   in_w * 4;
    g.outputBytes = b.neurons() * 4;
    g.indicatorBytes = ceilDiv<std::uint64_t>(
        static_cast<std::uint64_t>(b.outChannels) * b.inChannels * kk,
        8);
    g.zeroIndexBytes = ceilDiv<std::uint64_t>(b.neurons(), 8);
    return g;
}

/**
 * Latency of one layer pass given per-channel busy cycles: channels
 * are distributed round-robin over T_m PEs; the layer finishes when
 * the busiest PE finishes.
 */
std::uint64_t
layerLatency(const std::vector<std::uint64_t> &busy_per_channel,
             std::size_t tm, std::uint64_t &sum_busy)
{
    std::vector<std::uint64_t> pe(tm, 0);
    for (std::size_t m = 0; m < busy_per_channel.size(); ++m)
        pe[m % tm] += busy_per_channel[m];
    std::uint64_t max_busy = 0;
    sum_busy = 0;
    for (std::uint64_t v : pe) {
        max_busy = std::max(max_busy, v);
        sum_busy += v;
    }
    return max_busy;
}

/** Prediction-unit cycles to cover block @p b (Eq. 8 LHS). */
std::uint64_t
predictionCycles(const BlockInfo &b, const AcceleratorConfig &cfg)
{
    if (cfg.countingLanes == 0)
        return 0;
    return static_cast<std::uint64_t>(b.kernel) * b.kernel *
           ceilDiv(b.outChannels, cfg.countingLanes) * b.plane();
}

/** Shared accumulator mapping runs into a SimReport. */
class Accounting
{
  public:
    Accounting(const InferenceTrace &trace, const AcceleratorConfig &cfg,
               const EnergyParams &energy, std::string accel_name)
        : trace_(trace), cfg_(cfg), energy_(energy)
    {
        report_.accelerator = std::move(accel_name);
        report_.model = trace.model;
        report_.samples = trace.samples;
        report_.layers.resize(trace.blocks.size());
        for (std::size_t i = 0; i < trace.blocks.size(); ++i)
            report_.layers[i].name = trace.blocks[i].name;
    }

    /**
     * Account one dense or skipping pass over one block.
     *
     * @param bi            block index
     * @param busy          per-channel busy cycles
     * @param computed      computed neurons in the block
     * @param skipped       skipped neurons in the block
     * @param lane_slots    multiplier-lane slots consumed
     * @param macs          real multiplications issued
     * @param stall         prediction-sync stall preceding the block
     * @param dram_bytes    off-chip traffic of the pass
     * @return the block's total latency contribution (cycles)
     */
    std::uint64_t
    addPass(std::size_t bi, const std::vector<std::uint64_t> &busy,
            std::uint64_t computed, std::uint64_t skipped,
            std::uint64_t lane_slots, std::uint64_t macs,
            std::uint64_t stall, std::uint64_t dram_bytes)
    {
        std::uint64_t sum_busy = 0;
        const std::uint64_t compute = layerLatency(busy, cfg_.tm,
                                                   sum_busy);
        std::uint64_t latency = compute + stall;
        std::uint64_t dram_stall = 0;
        if (cfg_.modelDram && cfg_.dramBytesPerCycle > 0.0) {
            const auto dram_cycles = static_cast<std::uint64_t>(
                static_cast<double>(dram_bytes) /
                cfg_.dramBytesPerCycle);
            if (dram_cycles > latency) {
                dram_stall = dram_cycles - latency;
                latency = dram_cycles;
            }
        }
        LayerSimStats &layer = report_.layers[bi];
        layer.cycles += latency;
        layer.stallCycles += stall;
        layer.dramStall += dram_stall;
        layer.busyCycles += sum_busy;
        // Idle covers every non-busy PE-cycle of the pass, including
        // stall and DRAM-bound time; per-cause splits are in
        // stallCycles / dramStall.
        layer.idleCycles += cfg_.tm * latency - sum_busy;

        report_.totalCycles += latency;
        report_.neuronsComputed += computed;
        report_.neuronsSkipped += skipped;
        report_.macsComputed += macs;
        report_.dramBytes += dram_bytes;

        // Convolution-unit energy: multiplies, operand reads, output
        // writes, skip-engine advances; static burn over the latency.
        energyOut_.convNj +=
            1e-3 * (static_cast<double>(macs) * energy_.macPj +
                    2.0 * static_cast<double>(lane_slots) *
                        energy_.sramReadPj +
                    static_cast<double>(computed + skipped) *
                        energy_.sramWritePj +
                    static_cast<double>(skipped) *
                        energy_.skipEnginePj +
                    static_cast<double>(cfg_.tm) *
                        static_cast<double>(latency) *
                        energy_.peStaticPj);
        energyOut_.dramNj += 1e-3 * static_cast<double>(dram_bytes) *
                             energy_.dramBytePj;
        return latency;
    }

    /** Account the prediction unit + central predictor for one block. */
    void
    addPredictionWork(const BlockInfo &next, std::uint64_t pred_cycles)
    {
        const double lane_ops =
            static_cast<double>(cfg_.tm) *
            static_cast<double>(cfg_.countingLanes) *
            static_cast<double>(pred_cycles);
        energyOut_.predNj += 1e-3 * lane_ops * energy_.countLanePj;
        // Central predictor: a T_m-input adder tree plus one compare
        // per next-layer neuron.
        energyOut_.centralNj +=
            1e-3 * static_cast<double>(next.neurons()) *
            static_cast<double>(cfg_.tm) * energy_.adder10Pj;
    }

    /** Finalise the report; @p with_prediction_static gates the
     *  prediction/central leakage terms. */
    SimReport
    finish(std::uint64_t pre_inference_cycles, bool with_prediction_static)
    {
        if (with_prediction_static && cfg_.countingLanes > 0) {
            energyOut_.predNj +=
                1e-3 * static_cast<double>(cfg_.tm) *
                static_cast<double>(report_.totalCycles) *
                energy_.predStaticPj;
            energyOut_.centralNj +=
                1e-3 * static_cast<double>(report_.totalCycles) *
                energy_.centralStaticPj;
        }
        report_.preInferenceCycles = pre_inference_cycles;
        report_.cyclesPerSample =
            static_cast<double>(report_.totalCycles) /
            static_cast<double>(report_.samples);
        report_.msPerSample = report_.cyclesPerSample /
                              (cfg_.clockMhz * 1e3);
        report_.energy = energyOut_;
        report_.energyPerSampleNj = energyOut_.total() /
                                    static_cast<double>(report_.samples);
        std::uint64_t busy = 0, idle = 0;
        for (const LayerSimStats &l : report_.layers) {
            busy += l.busyCycles;
            idle += l.idleCycles;
        }
        report_.peIdleFraction =
            busy + idle == 0
                ? 0.0
                : static_cast<double>(idle) /
                      static_cast<double>(busy + idle);
        // Elided multiplications: dense minus issued.
        std::uint64_t dense = 0;
        for (const BlockInfo &b : trace_.blocks) {
            dense += b.neurons() * b.macsPerNeuron() *
                     (report_.samples +
                      (pre_inference_cycles > 0 ? 1 : 0));
        }
        report_.macsElided = dense > report_.macsComputed
                                 ? dense - report_.macsComputed : 0;
        return report_;
    }

  private:
    const InferenceTrace &trace_;
    const AcceleratorConfig &cfg_;
    EnergyParams energy_;
    SimReport report_;
    EnergyBreakdown energyOut_;
};

/**
 * Weight traffic of one pass.  Weights are identical across all T+1
 * passes of an MC-dropout run, so the scheduler streams each layer's
 * weights from DRAM once: layers that fit stay resident in the weight
 * store, larger layers are amortised by batching the T samples
 * through the layer back-to-back (the natural MC-dropout schedule —
 * the paper does not model DRAM at all, see DESIGN.md §5).
 */
std::uint64_t
weightTraffic(const BlockGeom &g, const AcceleratorConfig &cfg,
              bool first_pass)
{
    (void)cfg;
    return first_pass ? g.weightBytes : 0;
}

/** Dense pass over one block (baseline / pre-inference). */
std::uint64_t
densePass(Accounting &acc, const BlockInfo &b, const BlockGeom &g,
          const AcceleratorConfig &cfg, std::size_t bi,
          bool write_zero_index, bool first_pass)
{
    std::vector<std::uint64_t> busy(
        b.outChannels,
        static_cast<std::uint64_t>(b.plane()) * g.cyclesPerNeuron);
    const std::uint64_t neurons = b.neurons();
    std::uint64_t bytes = weightTraffic(g, cfg, first_pass) +
                          g.inputBytes + g.outputBytes;
    if (write_zero_index)
        bytes += g.zeroIndexBytes;
    return acc.addPass(bi, busy, neurons, 0,
                       neurons * g.laneSlotsPerNeuron,
                       neurons * g.macsPerNeuron, 0, bytes);
}

} // namespace

SimReport
simulateBaseline(const InferenceTrace &trace,
                 const AcceleratorConfig &cfg, const EnergyParams &energy)
{
    Accounting acc(trace, cfg, energy, cfg.name);
    std::vector<BlockGeom> geoms;
    geoms.reserve(trace.blocks.size());
    for (const BlockInfo &b : trace.blocks)
        geoms.push_back(geomOf(b, cfg));

    for (std::size_t t = 0; t < trace.samples; ++t) {
        for (std::size_t bi = 0; bi < trace.blocks.size(); ++bi) {
            densePass(acc, trace.blocks[bi], geoms[bi], cfg, bi, false,
                      t == 0);
        }
    }
    return acc.finish(0, false);
}

SimReport
simulateFastBcnn(const InferenceTrace &trace,
                 const AcceleratorConfig &cfg, const SimOptions &opts)
{
    if (opts.mode == SkipMode::None)
        return simulateBaseline(trace, cfg, opts.energy);
    const bool uses_prediction = opts.mode == SkipMode::Full ||
                                 opts.mode == SkipMode::UnaffectedOnly;

    Accounting acc(trace, cfg, opts.energy, cfg.name);
    std::vector<BlockGeom> geoms;
    geoms.reserve(trace.blocks.size());
    for (const BlockInfo &b : trace.blocks)
        geoms.push_back(geomOf(b, cfg));

    // Pre-inference: dense, writes the zero index off-chip.
    std::uint64_t pre_cycles = 0;
    for (std::size_t bi = 0; bi < trace.blocks.size(); ++bi) {
        pre_cycles += densePass(acc, trace.blocks[bi], geoms[bi], cfg,
                                bi, true, true);
    }

    // Aggregate sync bookkeeping (SyncModel::Aggregate): prediction
    // backlog vs conv progress, carried across samples because dropout
    // bits are input-independent and can be generated ahead of time.
    std::uint64_t pred_backlog = 0, conv_progress = pre_cycles;

    for (const SampleTrace &sample : trace.perSample) {
        std::uint64_t prev_latency = 0;

        for (std::size_t bi = 0; bi < trace.blocks.size(); ++bi) {
            const BlockInfo &b = trace.blocks[bi];
            const BlockGeom &g = geoms[bi];
            const BlockSampleTrace &bst = sample.blocks[bi];

            // Prediction work for this block overlapped the previous
            // block's convolution (Eq. 8); the first block needs no
            // prediction thanks to the shortcut / full compute.
            std::uint64_t stall = 0;
            std::uint64_t pred = 0;
            if (uses_prediction && bi > 0) {
                pred = predictionCycles(b, cfg);
                acc.addPredictionWork(b, pred);
                if (opts.sync == SyncModel::Pairwise) {
                    stall = pred > prev_latency ? pred - prev_latency
                                                : 0;
                } else {
                    pred_backlog += pred;
                    if (pred_backlog > conv_progress) {
                        stall = pred_backlog - conv_progress;
                        conv_progress = pred_backlog;
                    }
                }
            }

            if (bi == 0 && opts.firstLayerShortcut) {
                // Layer-1 shortcut: reuse pre-inference outputs, one
                // cycle per neuron (read, mask-multiply, write).  The
                // stored outputs stay in the input buffer across
                // samples when they fit; otherwise each sample
                // re-reads them from DRAM.
                std::vector<std::uint64_t> busy(
                    b.outChannels,
                    static_cast<std::uint64_t>(b.plane()));
                const bool resident =
                    g.outputBytes <= cfg.weightBufferBytes;
                const bool first = &sample == &trace.perSample[0];
                const std::uint64_t bytes =
                    g.outputBytes +
                    ((first || !resident) ? g.outputBytes : 0);
                prev_latency = acc.addPass(
                    bi, busy, 0, b.neurons(), 0, 0, stall, bytes);
                conv_progress += prev_latency;
                continue;
            }

            std::vector<std::uint64_t> busy(b.outChannels, 0);
            std::uint64_t computed = 0, skipped = 0;
            for (std::size_t m = 0; m < b.outChannels; ++m) {
                std::uint32_t sk = 0;
                switch (opts.mode) {
                  case SkipMode::DroppedOnly:
                    sk = bst.dropped[m];
                    break;
                  case SkipMode::UnaffectedOnly:
                    sk = bst.predicted[m];
                    break;
                  case SkipMode::Full:
                    sk = bst.skipped[m];
                    break;
                  case SkipMode::None:
                    break;
                }
                const std::uint64_t comp = b.plane() - sk;
                busy[m] = comp * g.cyclesPerNeuron + sk;
                computed += comp;
                skipped += sk;
            }
            std::uint64_t bytes = weightTraffic(g, cfg, false) +
                                  g.inputBytes + g.outputBytes;
            if (uses_prediction)
                bytes += g.zeroIndexBytes;
            prev_latency = acc.addPass(
                bi, busy, computed, skipped,
                computed * g.laneSlotsPerNeuron,
                computed * g.macsPerNeuron, stall, bytes);
            conv_progress += prev_latency;
        }
    }
    return acc.finish(pre_cycles, uses_prediction);
}

SimReport
simulateCnvlutin(const InferenceTrace &trace,
                 const AcceleratorConfig &cfg, const EnergyParams &energy)
{
    // Locate the precomputed ceil-sum column for this T_n.
    std::size_t tn_idx = traceTnValues.size();
    for (std::size_t i = 0; i < traceTnValues.size(); ++i) {
        if (traceTnValues[i] == cfg.tn)
            tn_idx = i;
    }
    if (tn_idx == traceTnValues.size()) {
        fatal("trace has no Cnvlutin work sums for T_n = %zu "
              "(available: 4, 8, 16, 32)", cfg.tn);
    }

    Accounting acc(trace, cfg, energy, cfg.name);
    std::vector<BlockGeom> geoms;
    geoms.reserve(trace.blocks.size());
    for (const BlockInfo &b : trace.blocks)
        geoms.push_back(geomOf(b, cfg));

    for (const SampleTrace &sample : trace.perSample) {
        for (std::size_t bi = 0; bi < trace.blocks.size(); ++bi) {
            const BlockInfo &b = trace.blocks[bi];
            const BlockGeom &g = geoms[bi];
            const std::uint64_t per_channel =
                sample.blocks[bi].cnvLaneCyclesPerChannel[tn_idx];
            std::vector<std::uint64_t> busy(b.outChannels, per_channel);
            const std::uint64_t neurons = b.neurons();
            // All neurons are produced; the issued multiplications are
            // the nonzero-input products (idle lane slots are gated).
            const std::uint64_t lane_slots =
                sample.blocks[bi].cnvMacsPerChannel * b.outChannels;
            const std::uint64_t bytes =
                weightTraffic(g, cfg, &sample == &trace.perSample[0]) +
                g.inputBytes + g.outputBytes;
            acc.addPass(bi, busy, neurons, 0, lane_slots,
                        lane_slots, 0, bytes);
        }
    }
    return acc.finish(0, false);
}

SimReport
simulateIdeal(const InferenceTrace &trace, const AcceleratorConfig &cfg,
              const SimOptions &opts)
{
    Accounting acc(trace, cfg, opts.energy, "Ideal");
    std::vector<BlockGeom> geoms;
    geoms.reserve(trace.blocks.size());
    for (const BlockInfo &b : trace.blocks)
        geoms.push_back(geomOf(b, cfg));

    // Ideal pre-inference: perfectly balanced dense pass.
    std::uint64_t pre_cycles = 0;
    for (std::size_t bi = 0; bi < trace.blocks.size(); ++bi) {
        const BlockInfo &b = trace.blocks[bi];
        const BlockGeom &g = geoms[bi];
        const std::uint64_t work = b.neurons() * g.cyclesPerNeuron;
        std::vector<std::uint64_t> busy(
            cfg.tm, ceilDiv(work, static_cast<std::uint64_t>(cfg.tm)));
        pre_cycles += acc.addPass(
            bi, busy, b.neurons(), 0,
            b.neurons() * g.laneSlotsPerNeuron,
            b.neurons() * g.macsPerNeuron, 0,
            g.weightBytes + g.inputBytes + g.outputBytes +
                g.zeroIndexBytes);
    }

    for (const SampleTrace &sample : trace.perSample) {
        for (std::size_t bi = 0; bi < trace.blocks.size(); ++bi) {
            const BlockInfo &b = trace.blocks[bi];
            const BlockGeom &g = geoms[bi];
            if (bi == 0 && opts.firstLayerShortcut) {
                std::vector<std::uint64_t> busy(
                    cfg.tm, ceilDiv(b.neurons(),
                                    static_cast<std::uint64_t>(cfg.tm)));
                const bool first = &sample == &trace.perSample[0];
                const bool resident =
                    g.outputBytes <= cfg.weightBufferBytes;
                acc.addPass(bi, busy, 0, b.neurons(), 0, 0, 0,
                            g.outputBytes +
                                ((first || !resident) ? g.outputBytes
                                                      : 0));
                continue;
            }
            const std::uint64_t skipped =
                sample.blocks[bi].totalSkipped();
            const std::uint64_t computed = b.neurons() - skipped;
            const std::uint64_t work = computed * g.cyclesPerNeuron;
            std::vector<std::uint64_t> busy(
                cfg.tm, ceilDiv(work, static_cast<std::uint64_t>(cfg.tm)));
            acc.addPass(bi, busy, computed, skipped,
                        computed * g.laneSlotsPerNeuron,
                        computed * g.macsPerNeuron, 0,
                        weightTraffic(g, cfg, false) + g.inputBytes +
                            g.outputBytes);
        }
    }
    return acc.finish(pre_cycles, false);
}

} // namespace fastbcnn
