/**
 * @file
 * Analytic FPGA resource model (Table II substitution, DESIGN.md §2):
 * LUT / FF / BRAM usage of the convolution units, prediction units and
 * central predictor as a function of <T_m, T_n>, with per-primitive
 * constants calibrated against the paper's post-synthesis numbers for
 * the 64-PE design on a Virtex-7 VC709 (433 K LUT, 866 K FF,
 * 1470 BRAM).
 */

#ifndef FASTBCNN_SIM_RESOURCES_HPP
#define FASTBCNN_SIM_RESOURCES_HPP

#include "config.hpp"

namespace fastbcnn {

/** Resource usage of one component. */
struct ResourceUsage {
    std::uint64_t lut = 0;
    std::uint64_t ff = 0;
    std::uint64_t bram = 0;  ///< 18 Kb block count
};

/** The VC709's available resources. */
struct DeviceCapacity {
    std::uint64_t lut = 433'200;
    std::uint64_t ff = 866'400;
    std::uint64_t bram = 1'470;
};

/** Per-primitive synthesis cost constants (calibrated, see file doc). */
struct ResourceParams {
    // Convolution unit, per PE.
    std::uint64_t lutPerMultiplier = 700;   ///< 32-bit FP multiplier
    std::uint64_t lutPerAdder = 350;        ///< 32-bit FP adder
    std::uint64_t lutSkipEngine = 124;      ///< skip engine + MUX/FIFO
    std::uint64_t ffPerMultiplier = 1000;
    std::uint64_t ffPerAdder = 370;
    std::uint64_t ffSkipEngine = 135;
    std::uint64_t bramPerPe = 8;            ///< duplicated input buffer
    // Prediction unit, per PE.
    std::uint64_t lutPerCountingLane = 1;   ///< AND + 10-bit counter
    std::uint64_t ffPerCountingLane = 1;
    std::uint64_t bramMaskBuffer = 1;       ///< >= 18 Kb granularity
    // Central predictor (whole accelerator).
    std::uint64_t lutPerTreeAdder = 120;    ///< 10-bit add + compare
    std::uint64_t ffPerTreeAdder = 120;
    std::uint64_t lutCentralControl = 2686;
    std::uint64_t ffCentralControl = 2686;
    std::uint64_t bramCentral = 2;
};

/** Complete Table II row set for one configuration. */
struct ResourceReport {
    ResourceUsage convUnits;
    ResourceUsage predictionUnits;
    ResourceUsage centralPredictor;
    DeviceCapacity device;

    /** @return the summed usage of all components. */
    ResourceUsage total() const;
};

/**
 * Estimate the resource usage of a configuration.
 *
 * Convolution units: T_n multipliers, a (T_n − 1)-adder tree, an
 * accumulator adder and a skip engine per PE, plus 8 BRAMs for the
 * duplicated input buffer (the feature-map-parallelism cost, Eq. 7).
 * Prediction units: T_m' counting lanes plus one mask-buffer BRAM per
 * PE (1 KB needed, 18 Kb minimum granularity — the paper's note).
 * Central predictor: a (T_m − 1)-node 10-bit adder tree, comparators
 * and the threshold store.
 */
ResourceReport estimateResources(const AcceleratorConfig &cfg,
                                 const ResourceParams &params = {});

} // namespace fastbcnn

#endif // FASTBCNN_SIM_RESOURCES_HPP
