/**
 * @file
 * Accelerator configurations — the Table I design space plus the
 * baseline and Cnvlutin comparison points.
 */

#ifndef FASTBCNN_SIM_CONFIG_HPP
#define FASTBCNN_SIM_CONFIG_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace fastbcnn {

/**
 * Hardware parameters of one design point.  The paper fixes the MAC
 * budget at 256 (T_m · T_n) and varies the PE count T_m; the counting
 * lanes T_m' scale inversely so the prediction throughput matches
 * Eq. 9.
 */
struct AcceleratorConfig {
    std::string name = "Fast-BCNN64";
    std::size_t tm = 64;             ///< number of PEs
    std::size_t tn = 4;              ///< multiplier lanes per PE
    std::size_t countingLanes = 16;  ///< T_m' counting lanes per PE
    double clockMhz = 100.0;         ///< VC709 design frequency
    double dramBytesPerCycle = 64.0; ///< DDR3 MIG effective bandwidth
    bool modelDram = true;           ///< include the bandwidth bound
    /**
     * On-chip activation/weight store used by the layer-1 shortcut:
     * pre-inference layer-1 outputs smaller than this stay resident
     * across samples; larger ones are re-read from DRAM per sample.
     * (Weights themselves are streamed once per MC run regardless —
     * the sample-batched schedule of DESIGN.md §5.)
     */
    std::size_t weightBufferBytes = 1u << 20;

    /** @return total multiplier count (T_m · T_n). */
    std::size_t totalMacs() const { return tm * tn; }
};

/**
 * Validate a (possibly hand-built) design point at the API boundary.
 * @return ok, or an InvalidArgument error naming the bad value: zero
 * PEs / lanes, non-positive or non-finite clock, non-positive DRAM
 * bandwidth while modelDram is set.  countingLanes may be 0 (the
 * baseline has no prediction hardware).
 */
[[nodiscard]] Status validateAcceleratorConfig(
    const AcceleratorConfig &cfg);

/**
 * @return the Fast-BCNN design point with @p tm PEs (Table I):
 * T_n = 256 / T_m and T_m' = 1024 / T_m.
 */
AcceleratorConfig fastBcnnConfig(std::size_t tm);

/** @return the skip-oblivious baseline (same <64, 4> parallelism). */
AcceleratorConfig baselineConfig();

/**
 * @return the Cnvlutin comparison point: the original design scaled to
 * 8×8 sub-units with 4 synapse lanes (Section VI-A), i.e. the same
 * 256-MAC budget as every other design point.
 */
AcceleratorConfig cnvlutinConfig();

/** @return all four Fast-BCNN design points of Table I. */
std::vector<AcceleratorConfig> designSpace();

/**
 * Eq. 9: the minimum counting lanes per PE, T_m' >= δ·T_n with
 * δ = M'R'C' / (N·R·C·(1 − skip_rate)), for the worst block pair of a
 * network geometry.  Exposed for the sync-sizing ablation bench.
 *
 * @param m_next, r_next, c_next, k_next next layer geometry
 * @param n, r, c                        current layer geometry
 * @param tn                             multiplier lanes
 * @param skip_rate                      estimated skip rate
 */
double minCountingLanes(std::size_t k_next, std::size_t m_next,
                        std::size_t r_next, std::size_t c_next,
                        std::size_t k, std::size_t n, std::size_t r,
                        std::size_t c, std::size_t tn,
                        double skip_rate);

} // namespace fastbcnn

#endif // FASTBCNN_SIM_CONFIG_HPP
