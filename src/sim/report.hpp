/**
 * @file
 * The result record every accelerator timing model produces.
 */

#ifndef FASTBCNN_SIM_REPORT_HPP
#define FASTBCNN_SIM_REPORT_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "energy.hpp"
#include "fault/fault.hpp"

namespace fastbcnn {

/** Per-conv-block cycle statistics, summed across samples. */
struct LayerSimStats {
    std::string name;
    std::uint64_t cycles = 0;      ///< compute latency (max over PEs)
    std::uint64_t stallCycles = 0; ///< prediction-sync stalls (Eq. 8)
    std::uint64_t dramStall = 0;   ///< bandwidth-bound extra latency
    std::uint64_t idleCycles = 0;  ///< Σ over PEs of (max − busy)
    std::uint64_t busyCycles = 0;  ///< Σ over PEs of busy cycles
};

/** Complete outcome of one simulated MC-dropout execution. */
struct SimReport {
    std::string accelerator;       ///< config name
    std::string model;             ///< network name
    std::size_t samples = 0;       ///< T
    std::uint64_t totalCycles = 0; ///< everything, incl. pre-inference
    std::uint64_t preInferenceCycles = 0;  ///< 0 when not needed
    double cyclesPerSample = 0.0;  ///< totalCycles / T (paper's metric)
    double msPerSample = 0.0;      ///< at the config's clock
    std::uint64_t macsComputed = 0;
    std::uint64_t macsElided = 0;  ///< multiplications never issued
    std::uint64_t neuronsSkipped = 0;
    std::uint64_t neuronsComputed = 0;
    std::uint64_t dramBytes = 0;
    double peIdleFraction = 0.0;   ///< idle / (idle + busy)
    EnergyBreakdown energy;        ///< absolute nanojoules
    double energyPerSampleNj = 0.0;
    std::vector<LayerSimStats> layers;

    /**
     * Degradation census of the MC run behind this report.  Default
     * (all-zero) means "census not recorded"; callers running the
     * guarded MC path (FastBcnnEngine::tryMcReference, the fault
     * bench) copy McResult::census here so timing and survivability
     * are reported side by side.
     */
    DegradationCensus degradation;

    /** @return speedup of this report relative to @p base. */
    double speedupOver(const SimReport &base) const
    {
        return base.cyclesPerSample / cyclesPerSample;
    }

    /** @return fractional energy reduction relative to @p base. */
    double energyReductionOver(const SimReport &base) const
    {
        return 1.0 - energyPerSampleNj / base.energyPerSampleNj;
    }

    /** @return fractional cycle reduction relative to @p base. */
    double cycleReductionOver(const SimReport &base) const
    {
        return 1.0 - cyclesPerSample / base.cyclesPerSample;
    }
};

/**
 * One-line rendering of a degradation census, e.g.
 * "47/50 samples survived (degraded; 2 FaultInjected, 1 NonFinite)"
 * or "50/50 samples survived" for a clean run.  Brownout budget
 * clamps and adaptive convergence are annotated but are not
 * degradation: "12/50 samples survived (converged at T'=12,
 * CI width 0.018)".
 */
std::string degradationSummary(const DegradationCensus &census);

/**
 * Print the full per-casualty census table (sample, code, reason) —
 * the sim-report counterpart of the per-block skip census tables.
 * Prints a single clean-run line when nothing failed.
 */
void printDegradation(const DegradationCensus &census,
                      std::ostream &os);

} // namespace fastbcnn

#endif // FASTBCNN_SIM_REPORT_HPP
