#include "resources.hpp"

namespace fastbcnn {

ResourceUsage
ResourceReport::total() const
{
    return ResourceUsage{
        convUnits.lut + predictionUnits.lut + centralPredictor.lut,
        convUnits.ff + predictionUnits.ff + centralPredictor.ff,
        convUnits.bram + predictionUnits.bram + centralPredictor.bram};
}

ResourceReport
estimateResources(const AcceleratorConfig &cfg,
                  const ResourceParams &p)
{
    ResourceReport r;

    // Convolution units: per PE, T_n multipliers + (T_n - 1) adder
    // tree + 1 accumulator adder + skip engine.
    const std::uint64_t adders = cfg.tn;  // (tn - 1) tree + accumulator
    r.convUnits.lut = cfg.tm * (cfg.tn * p.lutPerMultiplier +
                                adders * p.lutPerAdder +
                                p.lutSkipEngine);
    r.convUnits.ff = cfg.tm * (cfg.tn * p.ffPerMultiplier +
                               adders * p.ffPerAdder + p.ffSkipEngine);
    r.convUnits.bram = cfg.tm * p.bramPerPe;

    // Prediction units: counting lanes are register-level logic; the
    // mask buffer consumes a whole BRAM despite needing only ~1 KB.
    r.predictionUnits.lut = cfg.tm * cfg.countingLanes *
                            p.lutPerCountingLane;
    r.predictionUnits.ff = cfg.tm * cfg.countingLanes *
                           p.ffPerCountingLane;
    r.predictionUnits.bram =
        cfg.countingLanes > 0 ? cfg.tm * p.bramMaskBuffer : 0;

    // Central predictor: (T_m - 1) tree adders + per-lane comparators
    // + control / threshold store.
    if (cfg.countingLanes > 0) {
        r.centralPredictor.lut = (cfg.tm - 1) * p.lutPerTreeAdder +
                                 p.lutCentralControl;
        r.centralPredictor.ff = (cfg.tm - 1) * p.ffPerTreeAdder +
                                p.ffCentralControl;
        r.centralPredictor.bram = p.bramCentral;
    }
    return r;
}

} // namespace fastbcnn
