#include "config.hpp"

#include "common/check.hpp"
#include "common/table.hpp"

namespace fastbcnn {

Status
validateAcceleratorConfig(const AcceleratorConfig &cfg)
{
    if (cfg.tm == 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "AcceleratorConfig '%s': tm (PE count) must be "
                      "positive", cfg.name.c_str());
    }
    if (cfg.tn == 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "AcceleratorConfig '%s': tn (multiplier lanes) "
                      "must be positive", cfg.name.c_str());
    }
    if (!(cfg.clockMhz > 0.0) ||
        !(cfg.clockMhz < 1e9)) {  // also rejects NaN / Inf
        return errorf(ErrorCode::InvalidArgument,
                      "AcceleratorConfig '%s': clockMhz %g must be a "
                      "finite positive frequency", cfg.name.c_str(),
                      cfg.clockMhz);
    }
    if (cfg.modelDram && !(cfg.dramBytesPerCycle > 0.0)) {
        return errorf(ErrorCode::InvalidArgument,
                      "AcceleratorConfig '%s': dramBytesPerCycle %g "
                      "must be positive while modelDram is set",
                      cfg.name.c_str(), cfg.dramBytesPerCycle);
    }
    return Status::ok();
}

AcceleratorConfig
fastBcnnConfig(std::size_t tm)
{
    if (tm == 0 || 256 % tm != 0)
        fatal("T_m must divide the 256-MAC budget (got %zu)", tm);
    AcceleratorConfig cfg;
    cfg.name = format("Fast-BCNN%zu", tm);
    cfg.tm = tm;
    cfg.tn = 256 / tm;
    cfg.countingLanes = std::max<std::size_t>(1, 1024 / tm);
    return cfg;
}

AcceleratorConfig
baselineConfig()
{
    AcceleratorConfig cfg = fastBcnnConfig(64);
    cfg.name = "Baseline";
    cfg.countingLanes = 0;  // no prediction hardware
    return cfg;
}

AcceleratorConfig
cnvlutinConfig()
{
    AcceleratorConfig cfg;
    cfg.name = "Cnvlutin";
    cfg.tm = 64;  // 8x8 sub-units
    cfg.tn = 4;   // 4 synapse lanes each
    cfg.countingLanes = 0;
    return cfg;
}

std::vector<AcceleratorConfig>
designSpace()
{
    return {fastBcnnConfig(8), fastBcnnConfig(16), fastBcnnConfig(32),
            fastBcnnConfig(64)};
}

double
minCountingLanes(std::size_t k_next, std::size_t m_next,
                 std::size_t r_next, std::size_t c_next, std::size_t k,
                 std::size_t n, std::size_t r, std::size_t c,
                 std::size_t tn, double skip_rate)
{
    FASTBCNN_CHECK(skip_rate >= 0.0 && skip_rate < 1.0,
                   "skip rate must be in [0, 1)");
    const double num = static_cast<double>(k_next) * k_next * m_next *
                       r_next * c_next;
    const double den = static_cast<double>(k) * k * n * r * c *
                       (1.0 - skip_rate);
    return num / den * static_cast<double>(tn);
}

} // namespace fastbcnn
