/**
 * @file
 * Energy model parameters (DESIGN.md §2): per-operation dynamic
 * energies plus per-module static power, standing in for the paper's
 * Xilinx Power Estimator measurements.  The constants are calibrated
 * estimates for a Virtex-7 at 100 MHz chosen so that (a) the baseline
 * energy is MAC/buffer dominated and (b) the FB-64 prediction-unit /
 * central-predictor overheads land near the paper's reported 8 % / 5 %
 * split — making every *relative* energy claim reproducible.
 */

#ifndef FASTBCNN_SIM_ENERGY_HPP
#define FASTBCNN_SIM_ENERGY_HPP

namespace fastbcnn {

/** Per-op (picojoule) and per-cycle static energy constants. */
struct EnergyParams {
    // --- dynamic, pJ per operation ---
    double macPj = 4.0;         ///< 32-bit FP multiply + add
    double sramReadPj = 0.9;    ///< 32-bit on-chip buffer read
    double sramWritePj = 1.1;   ///< 32-bit on-chip buffer write
    double skipEnginePj = 0.05; ///< skip-engine advance + zero write
    double countLanePj = 0.015; ///< AND gate + counter increment
    double adder10Pj = 0.06;    ///< central predictor 10-bit add/cmp
    /**
     * FPGA-side DRAM interface energy per byte (MIG + I/O).  The
     * paper's XPE numbers cover device power only, not the external
     * DDR3 chips, so the modelled constant reflects the same scope.
     */
    double dramBytePj = 8.0;
    // --- static, pJ per cycle ---
    double peStaticPj = 2.2;      ///< per PE (conv unit + buffers)
    double predStaticPj = 0.22;   ///< per PE prediction unit
    double centralStaticPj = 6.0; ///< central predictor (whole)
};

/** Energy bookkeeping of one simulated run, in nanojoules. */
struct EnergyBreakdown {
    double convNj = 0.0;     ///< convolution units (incl. buffers)
    double predNj = 0.0;     ///< prediction units
    double centralNj = 0.0;  ///< central predictor
    double dramNj = 0.0;     ///< off-chip traffic

    /** @return the total across all components. */
    double total() const { return convNj + predNj + centralNj + dramNj; }
};

} // namespace fastbcnn

#endif // FASTBCNN_SIM_ENERGY_HPP
