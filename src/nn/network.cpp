#include "network.hpp"

#include "common/check.hpp"
#include "concat.hpp"
#include "conv2d.hpp"
#include "dense.hpp"

namespace fastbcnn {

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv2d: return "Conv2d";
      case LayerKind::ReLU: return "ReLU";
      case LayerKind::MaxPool2d: return "MaxPool2d";
      case LayerKind::AvgPool2d: return "AvgPool2d";
      case LayerKind::GlobalAvgPool: return "GlobalAvgPool";
      case LayerKind::Dropout: return "Dropout";
      case LayerKind::Linear: return "Linear";
      case LayerKind::Flatten: return "Flatten";
      case LayerKind::Concat: return "Concat";
      case LayerKind::Softmax: return "Softmax";
      case LayerKind::LocalResponseNorm: return "LocalResponseNorm";
    }
    panic("unknown LayerKind %d", static_cast<int>(kind));
}

Network::Network(std::string name, Shape input_shape)
    : name_(std::move(name)), inputShape_(std::move(input_shape))
{
    if (inputShape_.numel() == 0)
        fatal("network '%s': empty input shape", name_.c_str());
}

NodeId
Network::add(std::unique_ptr<Layer> layer, std::vector<NodeId> inputs)
{
    FASTBCNN_CHECK(layer != nullptr, "null layer");
    if (inputs.empty()) {
        inputs.push_back(nodes_.empty() ? inputNode : nodes_.size() - 1);
    }
    if (inputs.size() != layer->arity()) {
        fatal("layer '%s' expects %zu inputs, got %zu",
              layer->name().c_str(), layer->arity(), inputs.size());
    }
    std::vector<Shape> in_shapes;
    in_shapes.reserve(inputs.size());
    for (NodeId id : inputs) {
        if (id == inputNode) {
            in_shapes.push_back(inputShape_);
        } else if (id < nodes_.size()) {
            in_shapes.push_back(nodes_[id].shape);
        } else {
            fatal("layer '%s' references unknown node %zu",
                  layer->name().c_str(), id);
        }
    }
    for (const Node &n : nodes_) {
        if (n.layer->name() == layer->name()) {
            fatal("duplicate layer name '%s' in network '%s'",
                  layer->name().c_str(), name_.c_str());
        }
    }
    Shape out_shape = layer->outputShape(in_shapes);
    nodes_.push_back(Node{std::move(layer), std::move(inputs),
                          std::move(out_shape)});
    return nodes_.size() - 1;
}

Tensor
Network::forward(const Tensor &input, ForwardHooks *hooks) const
{
    if (!(input.shape() == inputShape_)) {
        fatal("network '%s': input shape %s does not match declared %s",
              name_.c_str(), input.shape().toString().c_str(),
              inputShape_.toString().c_str());
    }
    FASTBCNN_CHECK(!nodes_.empty(), "forward on empty network");
    std::vector<Tensor> outputs(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        std::vector<const Tensor *> ins;
        ins.reserve(nodes_[i].inputs.size());
        for (NodeId id : nodes_[i].inputs) {
            ins.push_back(id == inputNode ? &input : &outputs[id]);
        }
        outputs[i] = nodes_[i].layer->forward(ins, hooks);
        if (hooks) {
            hooks->mutateActivation(nodes_[i].layer->name(),
                                    nodes_[i].layer->kind(), outputs[i]);
        }
    }
    return std::move(outputs.back());
}

const Layer &
Network::layer(NodeId id) const
{
    FASTBCNN_CHECK(id < nodes_.size(), "node id out of range");
    return *nodes_[id].layer;
}

Layer &
Network::layer(NodeId id)
{
    FASTBCNN_CHECK(id < nodes_.size(), "node id out of range");
    return *nodes_[id].layer;
}

const std::vector<NodeId> &
Network::inputsOf(NodeId id) const
{
    FASTBCNN_CHECK(id < nodes_.size(), "node id out of range");
    return nodes_[id].inputs;
}

const Shape &
Network::shapeOf(NodeId id) const
{
    FASTBCNN_CHECK(id < nodes_.size(), "node id out of range");
    return nodes_[id].shape;
}

const Shape &
Network::outputShape() const
{
    FASTBCNN_CHECK(!nodes_.empty(), "empty network has no output");
    return nodes_.back().shape;
}

NodeId
Network::findNode(const std::string &layer_name) const
{
    if (std::optional<NodeId> id = tryFindNode(layer_name))
        return *id;
    fatal("network '%s' has no layer named '%s'", name_.c_str(),
          layer_name.c_str());
}

std::optional<NodeId>
Network::tryFindNode(const std::string &layer_name) const noexcept
{
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].layer->name() == layer_name)
            return i;
    }
    return std::nullopt;
}

std::uint64_t
Network::totalMacs() const
{
    std::uint64_t macs = 0;
    for (const Node &n : nodes_) {
        if (n.layer->kind() == LayerKind::Conv2d) {
            const auto &conv = static_cast<const Conv2d &>(*n.layer);
            macs += static_cast<std::uint64_t>(n.shape.numel()) *
                    conv.inChannels() * conv.kernelSize() *
                    conv.kernelSize();
        } else if (n.layer->kind() == LayerKind::Linear) {
            const auto &fc = static_cast<const Linear &>(*n.layer);
            macs += static_cast<std::uint64_t>(fc.inFeatures()) *
                    fc.outFeatures();
        }
    }
    return macs;
}

} // namespace fastbcnn
