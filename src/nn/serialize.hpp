/**
 * @file
 * Weight (de)serialisation and model summaries.
 *
 * The text format stores one record per parameterised layer keyed by
 * layer name, so weights survive rebuilds as long as the topology's
 * names match — the property the offline threshold store (Algorithm 1
 * artefacts) also relies on.
 */

#ifndef FASTBCNN_NN_SERIALIZE_HPP
#define FASTBCNN_NN_SERIALIZE_HPP

#include <iosfwd>

#include "network.hpp"

namespace fastbcnn {

/**
 * Write every Conv2d / Linear layer's weights and biases.
 *
 * Format: `layer <name> <kind> <weight-count> <bias-count>` followed
 * by the values in row-major order (hex floats, lossless round trip).
 */
void saveWeights(const Network &net, std::ostream &os);

/**
 * Load weights saved by saveWeights() into @p net.
 *
 * Layers are matched by name; a record whose name or element counts do
 * not match the network is a user error (fatal()).  Records for
 * layers absent from the network are also fatal — a silently ignored
 * checkpoint is worse than a loud one.
 */
void loadWeights(Network &net, std::istream &is);

/**
 * Print a per-layer summary table: name, kind, output shape and
 * parameter count, followed by totals.
 */
void printSummary(const Network &net, std::ostream &os);

} // namespace fastbcnn

#endif // FASTBCNN_NN_SERIALIZE_HPP
