/**
 * @file
 * Weight (de)serialisation and model summaries.
 *
 * Two interchangeable on-disk formats share one in-memory currency,
 * the CheckpointImage (model name + per-layer records):
 *
 *  - text (this header): one record per parameterised layer keyed by
 *    layer name, hex-float values, "crc32 %08x" integrity footer.
 *    Human-diffable; the original format.
 *  - binary (checkpoint.hpp): versioned magic header, 64-byte-aligned
 *    sections with per-section CRC32s and a whole-file footer CRC,
 *    little-endian IEEE-754 payload.  The fleet-scale format.
 *
 * Both key records by layer name, so weights survive rebuilds as long
 * as the topology's names match — the property the offline threshold
 * store (Algorithm 1 artefacts) also relies on.
 *
 * Loading is a boundary path: checkpoint streams are untrusted input
 * (truncated files, bit rot, wrong formats), so every loader returns
 * an Error instead of terminating, and commits weights all-or-nothing
 * — a failed load leaves the network untouched.
 */

#ifndef FASTBCNN_NN_SERIALIZE_HPP
#define FASTBCNN_NN_SERIALIZE_HPP

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "network.hpp"

namespace fastbcnn {

/** One parameterised layer's checkpointed state. */
struct CheckpointRecord {
    std::string name;          ///< layer name (the matching key)
    LayerKind kind = LayerKind::Conv2d;  ///< Conv2d or Linear
    std::vector<float> weights;
    std::vector<float> bias;
};

/**
 * One parameterised layer's quantized state: int8 weights, int32
 * biases, and the symmetric per-layer scale chain (real ≈ q * scale,
 * zero-point 0).  The requant invariant outScale == inScale * wScale *
 * 2^shift holds exactly — QuantizedNetwork::fromRecords() verifies it.
 * Only the binary checkpoint format carries quant records; the text
 * format refuses them (it has no section for int8 payloads).
 */
struct QuantRecord {
    std::string name;          ///< layer name (the matching key)
    LayerKind kind = LayerKind::Conv2d;  ///< Conv2d or Linear
    std::vector<std::int8_t> weights;
    std::vector<std::int32_t> bias;
    float wScale = 1.0f;       ///< weight scale (real w ≈ q * wScale)
    float inScale = 1.0f;      ///< input activation scale
    float outScale = 1.0f;     ///< output activation scale
    std::int32_t shift = 0;    ///< requant right shift, in [0, 30]
};

/**
 * A parsed checkpoint, independent of any network: the format
 * converter (tools/fastbcnn_ckpt) round-trips images without ever
 * building a model, and both loaders commit through the same staged
 * all-or-nothing path.
 */
struct CheckpointImage {
    std::string modelName;
    std::vector<CheckpointRecord> records;
    /** Quantized sections (binary format only; may be empty). */
    std::vector<QuantRecord> quantRecords;
};

/** Snapshot every Conv2d / Linear layer of @p net into an image. */
CheckpointImage checkpointImageOf(const Network &net);

/**
 * Commit @p image into @p net (layers matched by name).  Validates
 * every record first — unknown layer names (NotFound), layers without
 * parameters or element-count disagreements (Mismatch) — and only
 * then writes, so on any error the network's weights are left exactly
 * as they were.  Quant records are not committed here — a float
 * Network has nowhere to put them; the engine adopts them via
 * FastBcnnEngine::tryAdoptQuantRecords().
 */
[[nodiscard]] Status tryCommitCheckpointImage(Network &net,
                                              const CheckpointImage &image);

/**
 * Parse a text checkpoint stream into an image.  Verifies the CRC32
 * footer when present (DataLoss on mismatch); a footer-less stream is
 * a legacy checkpoint — accepted with a warning and counted in
 * checkpointStats() as "legacy_text_loads".
 */
[[nodiscard]] Expected<CheckpointImage> tryParseTextCheckpoint(
    std::istream &is);

/**
 * Serialise @p image in the text format (with CRC footer).  Refuses
 * (InvalidArgument) an image carrying quant records — only the binary
 * format has a section for them.
 */
[[nodiscard]] Status tryEmitTextCheckpoint(const CheckpointImage &image,
                                           std::ostream &os);

/**
 * Process-wide checkpoint counters, surfaced by the serving layer's
 * health():
 *   text_loads, binary_loads  — successful loads by format
 *   legacy_text_loads         — text loads that had no CRC footer
 */
StatGroup &checkpointStats();

/**
 * Write every Conv2d / Linear layer's weights and biases.
 *
 * Format: `layer <name> <kind> <weight-count> <bias-count>` followed
 * by the values in row-major order (hex floats, lossless round trip).
 *
 * @return ok, or IoError when the stream reports failure.
 */
[[nodiscard]] Status trySaveWeights(const Network &net,
                                    std::ostream &os);

/** Legacy wrapper around trySaveWeights(); fatal() on error. */
void saveWeights(const Network &net, std::ostream &os);

/**
 * Load weights saved by saveWeights() into @p net.
 *
 * Layers are matched by name.  Every malformed input — wrong magic,
 * truncation, bit-corrupted values, unknown layer names, element
 * counts that do not match the network — returns a descriptive Error
 * (ParseError / Truncated / NotFound / Mismatch).  On any error the
 * network's weights are left exactly as they were (staged commit).
 */
[[nodiscard]] Status tryLoadWeights(Network &net, std::istream &is);

/** Legacy wrapper around tryLoadWeights(); fatal() on error. */
void loadWeights(Network &net, std::istream &is);

/**
 * Print a per-layer summary table: name, kind, output shape and
 * parameter count, followed by totals.
 */
void printSummary(const Network &net, std::ostream &os);

} // namespace fastbcnn

#endif // FASTBCNN_NN_SERIALIZE_HPP
