/**
 * @file
 * Weight (de)serialisation and model summaries.
 *
 * The text format stores one record per parameterised layer keyed by
 * layer name, so weights survive rebuilds as long as the topology's
 * names match — the property the offline threshold store (Algorithm 1
 * artefacts) also relies on.
 *
 * Loading is a boundary path: checkpoint streams are untrusted input
 * (truncated files, bit rot, wrong formats), so tryLoadWeights()
 * returns an Error instead of terminating, and commits weights
 * all-or-nothing — a failed load leaves the network untouched.
 */

#ifndef FASTBCNN_NN_SERIALIZE_HPP
#define FASTBCNN_NN_SERIALIZE_HPP

#include <iosfwd>

#include "common/error.hpp"
#include "network.hpp"

namespace fastbcnn {

/**
 * Write every Conv2d / Linear layer's weights and biases.
 *
 * Format: `layer <name> <kind> <weight-count> <bias-count>` followed
 * by the values in row-major order (hex floats, lossless round trip).
 *
 * @return ok, or IoError when the stream reports failure.
 */
[[nodiscard]] Status trySaveWeights(const Network &net,
                                    std::ostream &os);

/** Legacy wrapper around trySaveWeights(); fatal() on error. */
void saveWeights(const Network &net, std::ostream &os);

/**
 * Load weights saved by saveWeights() into @p net.
 *
 * Layers are matched by name.  Every malformed input — wrong magic,
 * truncation, bit-corrupted values, unknown layer names, element
 * counts that do not match the network — returns a descriptive Error
 * (ParseError / Truncated / NotFound / Mismatch).  On any error the
 * network's weights are left exactly as they were (staged commit).
 */
[[nodiscard]] Status tryLoadWeights(Network &net, std::istream &is);

/** Legacy wrapper around tryLoadWeights(); fatal() on error. */
void loadWeights(Network &net, std::istream &is);

/**
 * Print a per-layer summary table: name, kind, output shape and
 * parameter count, followed by totals.
 */
void printSummary(const Network &net, std::ostream &os);

} // namespace fastbcnn

#endif // FASTBCNN_NN_SERIALIZE_HPP
