#include "dense.hpp"

#include "common/check.hpp"
#include "simd/simd.hpp"

namespace fastbcnn {

Shape
Flatten::outputShape(const std::vector<Shape> &input_shapes) const
{
    FASTBCNN_CHECK(input_shapes.size() == 1, "Flatten takes one input");
    return Shape({input_shapes[0].numel()});
}

Tensor
Flatten::forward(const std::vector<const Tensor *> &inputs,
                 ForwardHooks *hooks) const
{
    FASTBCNN_CHECK(inputs.size() == 1 && inputs[0] != nullptr,
                   "Flatten takes one input");
    Tensor out(Shape({inputs[0]->numel()}),
               std::vector<float>(inputs[0]->data().begin(),
                                  inputs[0]->data().end()));
    if (hooks)
        hooks->onActivation(name(), kind(), out);
    return out;
}

Linear::Linear(std::string name, std::size_t in_features,
               std::size_t out_features)
    : Layer(std::move(name)), inFeatures_(in_features),
      outFeatures_(out_features),
      weights_(Shape({out_features * in_features})),
      bias_(Shape({out_features}))
{
    if (in_features == 0 || out_features == 0) {
        fatal("Linear '%s': feature counts must be positive",
              this->name().c_str());
    }
}

Shape
Linear::outputShape(const std::vector<Shape> &input_shapes) const
{
    FASTBCNN_CHECK(input_shapes.size() == 1, "Linear takes one input");
    if (input_shapes[0].numel() != inFeatures_) {
        fatal("Linear '%s': expected %zu input features, got %s",
              name().c_str(), inFeatures_,
              input_shapes[0].toString().c_str());
    }
    return Shape({outFeatures_});
}

Tensor
Linear::forward(const std::vector<const Tensor *> &inputs,
                ForwardHooks *hooks) const
{
    FASTBCNN_CHECK(inputs.size() == 1 && inputs[0] != nullptr,
                   "Linear takes one input");
    const Tensor &in = *inputs[0];
    FASTBCNN_CHECK_EQ(in.numel(), inFeatures_);
    Tensor out(Shape({outFeatures_}));
    // Dispatched matrix-vector product with the lane-strided double
    // accumulation contract (bit-identical across dispatch levels).
    simd::active().denseForward(weights_.data().data(),
                                bias_.data().data(), in.data().data(),
                                out.data().data(), outFeatures_,
                                inFeatures_);
    if (hooks)
        hooks->onActivation(name(), kind(), out);
    return out;
}

} // namespace fastbcnn
