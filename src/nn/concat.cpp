#include "concat.hpp"

#include <cmath>

#include "common/check.hpp"

namespace fastbcnn {

Concat::Concat(std::string name, std::size_t arity)
    : Layer(std::move(name)), arity_(arity)
{
    if (arity < 2)
        fatal("Concat '%s': needs at least 2 inputs", this->name().c_str());
}

Shape
Concat::outputShape(const std::vector<Shape> &input_shapes) const
{
    FASTBCNN_CHECK(input_shapes.size() == arity_,
                   "Concat input count mismatch");
    std::size_t channels = 0;
    for (const Shape &s : input_shapes) {
        if (s.rank() != 3) {
            fatal("Concat '%s': expected CHW inputs, got %s",
                  name().c_str(), s.toString().c_str());
        }
        if (s.dim(1) != input_shapes[0].dim(1) ||
            s.dim(2) != input_shapes[0].dim(2)) {
            fatal("Concat '%s': spatial dims mismatch (%s vs %s)",
                  name().c_str(), s.toString().c_str(),
                  input_shapes[0].toString().c_str());
        }
        channels += s.dim(0);
    }
    return Shape({channels, input_shapes[0].dim(1),
                  input_shapes[0].dim(2)});
}

Tensor
Concat::forward(const std::vector<const Tensor *> &inputs,
                ForwardHooks *hooks) const
{
    FASTBCNN_CHECK(inputs.size() == arity_,
                   "Concat input count mismatch");
    std::vector<Shape> shapes;
    shapes.reserve(inputs.size());
    for (const Tensor *t : inputs) {
        FASTBCNN_CHECK(t != nullptr, "null Concat input");
        shapes.push_back(t->shape());
    }
    Tensor out(outputShape(shapes));
    auto dst = out.data();
    std::size_t offset = 0;
    for (const Tensor *t : inputs) {
        const auto src = t->data();
        std::copy(src.begin(), src.end(), dst.begin() + offset);
        offset += src.size();
    }
    if (hooks)
        hooks->onActivation(name(), kind(), out);
    return out;
}

LocalResponseNorm::LocalResponseNorm(std::string name, std::size_t size,
                                     float alpha, float beta, float k)
    : Layer(std::move(name)), size_(size), alpha_(alpha), beta_(beta),
      k_(k)
{
    if (size == 0)
        fatal("LRN '%s': window must be positive", this->name().c_str());
}

Shape
LocalResponseNorm::outputShape(
    const std::vector<Shape> &input_shapes) const
{
    FASTBCNN_CHECK(input_shapes.size() == 1, "LRN takes one input");
    if (input_shapes[0].rank() != 3) {
        fatal("LRN '%s': expected CHW input, got %s", name().c_str(),
              input_shapes[0].toString().c_str());
    }
    return input_shapes[0];
}

Tensor
LocalResponseNorm::forward(const std::vector<const Tensor *> &inputs,
                           ForwardHooks *hooks) const
{
    FASTBCNN_CHECK(inputs.size() == 1 && inputs[0] != nullptr,
                   "LRN takes one input");
    const Tensor &in = *inputs[0];
    const std::size_t channels = in.shape().dim(0);
    const std::size_t h = in.shape().dim(1);
    const std::size_t w = in.shape().dim(2);
    Tensor out(in.shape());
    const std::size_t half = size_ / 2;
    for (std::size_t c = 0; c < channels; ++c) {
        const std::size_t lo = c >= half ? c - half : 0;
        const std::size_t hi = std::min(channels - 1, c + half);
        for (std::size_t r = 0; r < h; ++r) {
            for (std::size_t col = 0; col < w; ++col) {
                float sum_sq = 0.0f;
                for (std::size_t cc = lo; cc <= hi; ++cc)
                    sum_sq += in(cc, r, col) * in(cc, r, col);
                const float denom = std::pow(
                    k_ + alpha_ / static_cast<float>(size_) * sum_sq,
                    beta_);
                out(c, r, col) = in(c, r, col) / denom;
            }
        }
    }
    if (hooks)
        hooks->onActivation(name(), kind(), out);
    return out;
}

} // namespace fastbcnn
