/**
 * @file
 * Fully connected (Linear) and Flatten layers for the classifier heads.
 */

#ifndef FASTBCNN_NN_DENSE_HPP
#define FASTBCNN_NN_DENSE_HPP

#include "layer.hpp"

namespace fastbcnn {

/** Flatten CHW (or any rank) into a rank-1 vector. */
class Flatten : public Layer
{
  public:
    explicit Flatten(std::string name) : Layer(std::move(name)) {}

    LayerKind kind() const override { return LayerKind::Flatten; }
    Shape outputShape(
        const std::vector<Shape> &input_shapes) const override;
    Tensor forward(const std::vector<const Tensor *> &inputs,
                   ForwardHooks *hooks) const override;
};

/** Fully connected layer: out = W * in + b with W of shape (out, in). */
class Linear : public Layer
{
  public:
    /**
     * @param name         unique layer name
     * @param in_features  input dimensionality
     * @param out_features output dimensionality
     */
    Linear(std::string name, std::size_t in_features,
           std::size_t out_features);

    LayerKind kind() const override { return LayerKind::Linear; }
    Shape outputShape(
        const std::vector<Shape> &input_shapes) const override;
    Tensor forward(const std::vector<const Tensor *> &inputs,
                   ForwardHooks *hooks) const override;

    /** @return input dimensionality. */
    std::size_t inFeatures() const { return inFeatures_; }
    /** @return output dimensionality. */
    std::size_t outFeatures() const { return outFeatures_; }

    /** @return mutable (out, in) weight matrix. */
    Tensor &weights() { return weights_; }
    /** @return (out, in) weight matrix. */
    const Tensor &weights() const { return weights_; }
    /** @return mutable bias vector. */
    Tensor &bias() { return bias_; }
    /** @return bias vector. */
    const Tensor &bias() const { return bias_; }

  private:
    std::size_t inFeatures_;
    std::size_t outFeatures_;
    Tensor weights_;
    Tensor bias_;
};

} // namespace fastbcnn

#endif // FASTBCNN_NN_DENSE_HPP
