#include "conv2d.hpp"

#include "common/check.hpp"
#include "simd/simd.hpp"

namespace fastbcnn {

Conv2d::Conv2d(std::string name, std::size_t in_channels,
               std::size_t out_channels, std::size_t kernel_size,
               std::size_t stride, std::size_t padding)
    : Layer(std::move(name)), inChannels_(in_channels),
      outChannels_(out_channels), kernelSize_(kernel_size),
      stride_(stride), padding_(padding),
      weights_(Shape({out_channels, in_channels, kernel_size,
                      kernel_size})),
      bias_(Shape({out_channels}))
{
    if (in_channels == 0 || out_channels == 0 || kernel_size == 0 ||
        stride == 0) {
        fatal("Conv2d '%s': channels, kernel size and stride must be "
              "positive", this->name().c_str());
    }
}

Shape
Conv2d::outputShape(const std::vector<Shape> &input_shapes) const
{
    FASTBCNN_CHECK(input_shapes.size() == 1, "Conv2d takes one input");
    const Shape &in = input_shapes[0];
    if (in.rank() != 3 || in.dim(0) != inChannels_) {
        fatal("Conv2d '%s': expected CHW input with %zu channels, got %s",
              name().c_str(), inChannels_, in.toString().c_str());
    }
    const std::size_t h = in.dim(1), w = in.dim(2);
    if (h + 2 * padding_ < kernelSize_ || w + 2 * padding_ < kernelSize_) {
        fatal("Conv2d '%s': kernel %zu larger than padded input %zux%zu",
              name().c_str(), kernelSize_, h + 2 * padding_,
              w + 2 * padding_);
    }
    const std::size_t out_h = (h + 2 * padding_ - kernelSize_) / stride_
                              + 1;
    const std::size_t out_w = (w + 2 * padding_ - kernelSize_) / stride_
                              + 1;
    return Shape({outChannels_, out_h, out_w});
}

FASTBCNN_HOT float
Conv2d::computeNeuron(const Tensor &input, std::size_t m, std::size_t r,
                      std::size_t c) const
{
    const std::size_t h = input.shape().dim(1);
    const std::size_t w = input.shape().dim(2);
    float acc = bias_(m);
    for (std::size_t n = 0; n < inChannels_; ++n) {
        for (std::size_t i = 0; i < kernelSize_; ++i) {
            const std::ptrdiff_t in_r =
                static_cast<std::ptrdiff_t>(r * stride_ + i) -
                static_cast<std::ptrdiff_t>(padding_);
            if (in_r < 0 || in_r >= static_cast<std::ptrdiff_t>(h))
                continue;
            for (std::size_t j = 0; j < kernelSize_; ++j) {
                const std::ptrdiff_t in_c =
                    static_cast<std::ptrdiff_t>(c * stride_ + j) -
                    static_cast<std::ptrdiff_t>(padding_);
                if (in_c < 0 || in_c >= static_cast<std::ptrdiff_t>(w))
                    continue;
                acc += weights_(m, n, i, j) *
                       input(n, static_cast<std::size_t>(in_r),
                             static_cast<std::size_t>(in_c));
            }
        }
    }
    return acc;
}

Tensor
Conv2d::forward(const std::vector<const Tensor *> &inputs,
                ForwardHooks *hooks) const
{
    FASTBCNN_CHECK(inputs.size() == 1 && inputs[0] != nullptr,
                   "Conv2d takes one input");
    const Tensor &input = *inputs[0];
    const Shape out_shape = outputShape({input.shape()});
    Tensor out(out_shape);
    const std::size_t in_h = input.shape().dim(1);
    const std::size_t in_w = input.shape().dim(2);
    const std::size_t out_h = out_shape.dim(1);
    const std::size_t out_w = out_shape.dim(2);

    // Hot loops live in the dispatched SIMD kernel layer (the checked
    // per-neuron path is computeNeuron(), kept as the reference; every
    // dispatch level accumulates taps in its exact order).
    simd::active().convForward(input.data().data(),
                               weights_.data().data(),
                               bias_.data().data(), out.data().data(),
                               inChannels_, outChannels_, in_h, in_w,
                               out_h, out_w, kernelSize_, stride_,
                               padding_);
    if (hooks)
        hooks->onActivation(name(), kind(), out);
    return out;
}

} // namespace fastbcnn
