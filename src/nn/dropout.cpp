#include "dropout.hpp"

#include "common/check.hpp"

namespace fastbcnn {

Dropout::Dropout(std::string name, double drop_rate)
    : Layer(std::move(name)), dropRate_(drop_rate)
{
    if (drop_rate < 0.0 || drop_rate >= 1.0) {
        fatal("Dropout '%s': drop rate %f outside [0, 1)",
              this->name().c_str(), drop_rate);
    }
}

Shape
Dropout::outputShape(const std::vector<Shape> &input_shapes) const
{
    FASTBCNN_CHECK(input_shapes.size() == 1, "Dropout takes one input");
    if (input_shapes[0].rank() != 3) {
        fatal("Dropout '%s': expected CHW input, got %s",
              name().c_str(), input_shapes[0].toString().c_str());
    }
    return input_shapes[0];
}

Tensor
Dropout::forward(const std::vector<const Tensor *> &inputs,
                 ForwardHooks *hooks) const
{
    FASTBCNN_CHECK(inputs.size() == 1 && inputs[0] != nullptr,
                   "Dropout takes one input");
    const Tensor &in = *inputs[0];
    const BitVolume *mask =
        hooks ? hooks->dropoutMask(name(), in.shape()) : nullptr;
    Tensor out = in;  // identity when no mask is supplied
    if (mask) {
        FASTBCNN_CHECK(mask->channels() == in.shape().dim(0) &&
                       mask->height() == in.shape().dim(1) &&
                       mask->width() == in.shape().dim(2),
                       "dropout mask shape mismatch");
        auto o = out.data();
        for (std::size_t i = 0; i < o.size(); ++i) {
            if (mask->getFlat(i))
                o[i] = 0.0f;
        }
    }
    if (hooks)
        hooks->onActivation(name(), kind(), out);
    return out;
}

} // namespace fastbcnn
