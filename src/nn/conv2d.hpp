/**
 * @file
 * 2-D convolution layer (the computation the accelerator executes).
 */

#ifndef FASTBCNN_NN_CONV2D_HPP
#define FASTBCNN_NN_CONV2D_HPP

#include "layer.hpp"

namespace fastbcnn {

/**
 * Dense 2-D convolution over CHW feature maps.
 *
 * Weights are MCKK (output channel, input channel, kernel row, kernel
 * column) plus one bias per output channel; square kernels, symmetric
 * zero padding, uniform stride — the configurations used by LeNet-5,
 * VGG16 and GoogLeNet.
 */
class Conv2d : public Layer
{
  public:
    /**
     * @param name         unique layer name
     * @param in_channels  N (input channels)
     * @param out_channels M (output channels / kernels)
     * @param kernel_size  K (square kernels)
     * @param stride       spatial stride (>= 1)
     * @param padding      symmetric zero padding
     */
    Conv2d(std::string name, std::size_t in_channels,
           std::size_t out_channels, std::size_t kernel_size,
           std::size_t stride = 1, std::size_t padding = 0);

    LayerKind kind() const override { return LayerKind::Conv2d; }
    Shape outputShape(
        const std::vector<Shape> &input_shapes) const override;
    Tensor forward(const std::vector<const Tensor *> &inputs,
                   ForwardHooks *hooks) const override;

    /**
     * Compute a single output neuron (m, r, c) for @p input.  This is
     * the unit of work the PE skip engine elides; exposed so tests can
     * verify skip-correctness neuron by neuron.
     */
    float computeNeuron(const Tensor &input, std::size_t m,
                        std::size_t r, std::size_t c) const;

    /** @return N, the number of input channels. */
    std::size_t inChannels() const { return inChannels_; }
    /** @return M, the number of output channels. */
    std::size_t outChannels() const { return outChannels_; }
    /** @return K, the square kernel size. */
    std::size_t kernelSize() const { return kernelSize_; }
    /** @return spatial stride. */
    std::size_t stride() const { return stride_; }
    /** @return symmetric zero padding. */
    std::size_t padding() const { return padding_; }

    /** @return mutable MCKK weight tensor. */
    Tensor &weights() { return weights_; }
    /** @return MCKK weight tensor. */
    const Tensor &weights() const { return weights_; }
    /** @return mutable per-output-channel bias vector. */
    Tensor &bias() { return bias_; }
    /** @return per-output-channel bias vector. */
    const Tensor &bias() const { return bias_; }

  private:
    std::size_t inChannels_;
    std::size_t outChannels_;
    std::size_t kernelSize_;
    std::size_t stride_;
    std::size_t padding_;
    Tensor weights_;  ///< MCKK
    Tensor bias_;     ///< M
};

} // namespace fastbcnn

#endif // FASTBCNN_NN_CONV2D_HPP
