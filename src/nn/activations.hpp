/**
 * @file
 * Element-wise activation layers: ReLU and Softmax.
 */

#ifndef FASTBCNN_NN_ACTIVATIONS_HPP
#define FASTBCNN_NN_ACTIVATIONS_HPP

#include "layer.hpp"

namespace fastbcnn {

/**
 * Rectified linear unit.  ReLU is what makes the unaffected-neuron
 * phenomenon possible: dropping negative products makes a negative
 * pre-activation "less negative", but ReLU clamps it to zero either
 * way (Fig. 2 of the paper).
 */
class ReLU : public Layer
{
  public:
    explicit ReLU(std::string name) : Layer(std::move(name)) {}

    LayerKind kind() const override { return LayerKind::ReLU; }
    Shape outputShape(
        const std::vector<Shape> &input_shapes) const override;
    Tensor forward(const std::vector<const Tensor *> &inputs,
                   ForwardHooks *hooks) const override;
};

/** Numerically stable softmax over a rank-1 logit vector. */
class Softmax : public Layer
{
  public:
    explicit Softmax(std::string name) : Layer(std::move(name)) {}

    LayerKind kind() const override { return LayerKind::Softmax; }
    Shape outputShape(
        const std::vector<Shape> &input_shapes) const override;
    Tensor forward(const std::vector<const Tensor *> &inputs,
                   ForwardHooks *hooks) const override;
};

} // namespace fastbcnn

#endif // FASTBCNN_NN_ACTIVATIONS_HPP
