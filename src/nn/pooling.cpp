#include "pooling.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "simd/simd.hpp"

namespace fastbcnn {

Pool2dBase::Pool2dBase(std::string name, std::size_t kernel_size,
                       std::size_t stride, std::size_t padding)
    : Layer(std::move(name)), kernelSize_(kernel_size), stride_(stride),
      padding_(padding)
{
    if (kernel_size == 0 || stride == 0) {
        fatal("pool '%s': kernel size and stride must be positive",
              this->name().c_str());
    }
}

Shape
Pool2dBase::outputShape(const std::vector<Shape> &input_shapes) const
{
    FASTBCNN_CHECK(input_shapes.size() == 1, "pool takes one input");
    const Shape &in = input_shapes[0];
    if (in.rank() != 3) {
        fatal("pool '%s': expected CHW input, got %s", name().c_str(),
              in.toString().c_str());
    }
    const std::size_t h = in.dim(1) + 2 * padding_;
    const std::size_t w = in.dim(2) + 2 * padding_;
    if (h < kernelSize_ || w < kernelSize_) {
        fatal("pool '%s': window %zu larger than padded input %zux%zu",
              name().c_str(), kernelSize_, h, w);
    }
    return Shape({in.dim(0), (h - kernelSize_) / stride_ + 1,
                  (w - kernelSize_) / stride_ + 1});
}

Tensor
MaxPool2d::forward(const std::vector<const Tensor *> &inputs,
                   ForwardHooks *hooks) const
{
    FASTBCNN_CHECK(inputs.size() == 1 && inputs[0] != nullptr,
                   "pool takes one input");
    const Tensor &input = *inputs[0];
    const Shape out_shape = outputShape({input.shape()});
    Tensor out(out_shape);
    // Padding positions act as zeros, matching ReLU-positive maps;
    // init with 0 rather than -inf so padded windows pool to zero.
    // Hot loops live in the dispatched SIMD kernel layer.
    simd::active().poolMax(
        input.data().data(), out.data().data(), out_shape.dim(0),
        input.shape().dim(1), input.shape().dim(2), out_shape.dim(1),
        out_shape.dim(2), kernelSize(), stride(), padding(),
        padding() > 0 ? 0.0f
                      : -std::numeric_limits<float>::infinity());
    if (hooks)
        hooks->onActivation(name(), kind(), out);
    return out;
}

Tensor
AvgPool2d::forward(const std::vector<const Tensor *> &inputs,
                   ForwardHooks *hooks) const
{
    FASTBCNN_CHECK(inputs.size() == 1 && inputs[0] != nullptr,
                   "pool takes one input");
    const Tensor &input = *inputs[0];
    const Shape out_shape = outputShape({input.shape()});
    Tensor out(out_shape);
    simd::active().poolAvg(
        input.data().data(), out.data().data(), out_shape.dim(0),
        input.shape().dim(1), input.shape().dim(2), out_shape.dim(1),
        out_shape.dim(2), kernelSize(), stride(), padding());
    if (hooks)
        hooks->onActivation(name(), kind(), out);
    return out;
}

Shape
GlobalAvgPool::outputShape(const std::vector<Shape> &input_shapes) const
{
    FASTBCNN_CHECK(input_shapes.size() == 1,
                   "global pool takes one input");
    const Shape &in = input_shapes[0];
    if (in.rank() != 3) {
        fatal("global pool '%s': expected CHW input, got %s",
              name().c_str(), in.toString().c_str());
    }
    return Shape({in.dim(0)});
}

Tensor
GlobalAvgPool::forward(const std::vector<const Tensor *> &inputs,
                       ForwardHooks *hooks) const
{
    FASTBCNN_CHECK(inputs.size() == 1 && inputs[0] != nullptr,
                   "global pool takes one input");
    const Tensor &in = *inputs[0];
    const std::size_t c = in.shape().dim(0);
    const std::size_t plane = in.shape().dim(1) * in.shape().dim(2);
    Tensor out(Shape({c}));
    for (std::size_t ch = 0; ch < c; ++ch) {
        double total = 0.0;
        for (std::size_t i = 0; i < plane; ++i)
            total += in.data()[ch * plane + i];
        out(ch) = static_cast<float>(total / static_cast<double>(plane));
    }
    if (hooks)
        hooks->onActivation(name(), kind(), out);
    return out;
}

} // namespace fastbcnn
