#include "pooling.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace fastbcnn {

Pool2dBase::Pool2dBase(std::string name, std::size_t kernel_size,
                       std::size_t stride, std::size_t padding)
    : Layer(std::move(name)), kernelSize_(kernel_size), stride_(stride),
      padding_(padding)
{
    if (kernel_size == 0 || stride == 0) {
        fatal("pool '%s': kernel size and stride must be positive",
              this->name().c_str());
    }
}

Shape
Pool2dBase::outputShape(const std::vector<Shape> &input_shapes) const
{
    FASTBCNN_CHECK(input_shapes.size() == 1, "pool takes one input");
    const Shape &in = input_shapes[0];
    if (in.rank() != 3) {
        fatal("pool '%s': expected CHW input, got %s", name().c_str(),
              in.toString().c_str());
    }
    const std::size_t h = in.dim(1) + 2 * padding_;
    const std::size_t w = in.dim(2) + 2 * padding_;
    if (h < kernelSize_ || w < kernelSize_) {
        fatal("pool '%s': window %zu larger than padded input %zux%zu",
              name().c_str(), kernelSize_, h, w);
    }
    return Shape({in.dim(0), (h - kernelSize_) / stride_ + 1,
                  (w - kernelSize_) / stride_ + 1});
}

namespace {

/**
 * Windowed-pool inner loops over preallocated raw buffers
 * (FASTBCNN_HOT — lint rule R3 keeps allocation, locks, I/O and
 * logging out).  @p reduce folds in-window values; out-of-range
 * (padding) positions contribute the init value for max pooling and
 * are counted as zeros for average pooling.
 */
template <typename Reduce>
FASTBCNN_HOT void
poolKernel(const float *in, float *out, std::size_t channels,
           std::size_t in_h, std::size_t in_w, std::size_t out_h,
           std::size_t out_w, std::size_t k, std::size_t s,
           std::size_t p, Reduce reduce, float init, bool average)
{
    for (std::size_t ch = 0; ch < channels; ++ch) {
        const float *in_plane = in + ch * in_h * in_w;
        float *out_plane = out + ch * out_h * out_w;
        for (std::size_t r = 0; r < out_h; ++r) {
            for (std::size_t c = 0; c < out_w; ++c) {
                float acc = init;
                for (std::size_t i = 0; i < k; ++i) {
                    const std::ptrdiff_t in_r =
                        static_cast<std::ptrdiff_t>(r * s + i) -
                        static_cast<std::ptrdiff_t>(p);
                    if (in_r < 0 ||
                        in_r >= static_cast<std::ptrdiff_t>(in_h)) {
                        continue;
                    }
                    for (std::size_t j = 0; j < k; ++j) {
                        const std::ptrdiff_t in_c =
                            static_cast<std::ptrdiff_t>(c * s + j) -
                            static_cast<std::ptrdiff_t>(p);
                        if (in_c < 0 ||
                            in_c >= static_cast<std::ptrdiff_t>(in_w)) {
                            continue;
                        }
                        acc = reduce(
                            acc, in_plane[static_cast<std::size_t>(in_r)
                                              * in_w +
                                          static_cast<std::size_t>(
                                              in_c)]);
                    }
                }
                out_plane[r * out_w + c] =
                    average ? acc / static_cast<float>(k * k) : acc;
            }
        }
    }
}

/** Shared windowed-pool implementation: shape checks and the output
 *  allocation, with the arithmetic delegated to poolKernel(). */
template <typename Reduce>
Tensor
poolForward(const Pool2dBase &layer, const Tensor &input, Reduce reduce,
            float init, bool average)
{
    const Shape out_shape = layer.outputShape({input.shape()});
    Tensor out(out_shape);
    poolKernel(input.data().data(), out.data().data(),
               out_shape.dim(0), input.shape().dim(1),
               input.shape().dim(2), out_shape.dim(1),
               out_shape.dim(2), layer.kernelSize(), layer.stride(),
               layer.padding(), reduce, init, average);
    return out;
}

} // namespace

Tensor
MaxPool2d::forward(const std::vector<const Tensor *> &inputs,
                   ForwardHooks *hooks) const
{
    FASTBCNN_CHECK(inputs.size() == 1 && inputs[0] != nullptr,
                   "pool takes one input");
    // Padding positions act as zeros, matching ReLU-positive maps;
    // init with 0 rather than -inf so padded windows pool to zero.
    Tensor out = poolForward(
        *this, *inputs[0],
        [](float a, float b) { return std::max(a, b); },
        padding() > 0 ? 0.0f : -std::numeric_limits<float>::infinity(),
        false);
    if (hooks)
        hooks->onActivation(name(), kind(), out);
    return out;
}

Tensor
AvgPool2d::forward(const std::vector<const Tensor *> &inputs,
                   ForwardHooks *hooks) const
{
    FASTBCNN_CHECK(inputs.size() == 1 && inputs[0] != nullptr,
                   "pool takes one input");
    Tensor out = poolForward(
        *this, *inputs[0],
        [](float a, float b) { return a + b; }, 0.0f, true);
    if (hooks)
        hooks->onActivation(name(), kind(), out);
    return out;
}

Shape
GlobalAvgPool::outputShape(const std::vector<Shape> &input_shapes) const
{
    FASTBCNN_CHECK(input_shapes.size() == 1,
                   "global pool takes one input");
    const Shape &in = input_shapes[0];
    if (in.rank() != 3) {
        fatal("global pool '%s': expected CHW input, got %s",
              name().c_str(), in.toString().c_str());
    }
    return Shape({in.dim(0)});
}

Tensor
GlobalAvgPool::forward(const std::vector<const Tensor *> &inputs,
                       ForwardHooks *hooks) const
{
    FASTBCNN_CHECK(inputs.size() == 1 && inputs[0] != nullptr,
                   "global pool takes one input");
    const Tensor &in = *inputs[0];
    const std::size_t c = in.shape().dim(0);
    const std::size_t plane = in.shape().dim(1) * in.shape().dim(2);
    Tensor out(Shape({c}));
    for (std::size_t ch = 0; ch < c; ++ch) {
        double total = 0.0;
        for (std::size_t i = 0; i < plane; ++i)
            total += in.data()[ch * plane + i];
        out(ch) = static_cast<float>(total / static_cast<double>(plane));
    }
    if (hooks)
        hooks->onActivation(name(), kind(), out);
    return out;
}

} // namespace fastbcnn
