#include "checkpoint.hpp"

#include <bit>
#include <cstring>
#include <istream>
#include <iterator>
#include <ostream>
#include <sstream>

#include "common/crc32.hpp"
#include "common/table.hpp"

namespace fastbcnn {

namespace {

constexpr char kFileMagic[8] = {'F', 'B', 'C', 'N', 'N', 'C', 'K', '1'};
constexpr char kFooterMagic[8] = {'F', 'B', 'C', 'N', 'N', 'F', 'T', '1'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kAlign = 64;
constexpr std::size_t kHeaderBytes = 64;

/** Section kind codes (a subset of LayerKind with pinned values).
 *  Codes 3/4 mark quantized sections of the same layer kinds; their
 *  payload layout differs (see quantSectionPayload). */
constexpr std::uint32_t kKindConv2d = 1;
constexpr std::uint32_t kKindLinear = 2;
constexpr std::uint32_t kKindQuantConv2d = 3;
constexpr std::uint32_t kKindQuantLinear = 4;

/** Byte size of a quant section's scale/shift parameter block. */
constexpr std::size_t kQuantParamBytes = 16;

std::size_t
alignUp(std::size_t n)
{
    return (n + kAlign - 1) & ~(kAlign - 1);
}

// ---------------------------------------------------------------------
// Little-endian scalar packing.  Byte-shuffling (not memcpy of host
// structs) pins the on-disk layout independent of host endianness and
// struct padding.
// ---------------------------------------------------------------------

void
putU32(std::string &out, std::uint32_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    putU32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
    putU32(out, static_cast<std::uint32_t>(v >> 32));
}

void
putF32(std::string &out, float v)
{
    putU32(out, std::bit_cast<std::uint32_t>(v));
}

std::uint32_t
getU32(const char *p)
{
    const auto b = [&](std::size_t i) {
        return static_cast<std::uint32_t>(
            static_cast<unsigned char>(p[i]));
    };
    return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

std::uint64_t
getU64(const char *p)
{
    return static_cast<std::uint64_t>(getU32(p)) |
           (static_cast<std::uint64_t>(getU32(p + 4)) << 32);
}

float
getF32(const char *p)
{
    return std::bit_cast<float>(getU32(p));
}

void
pad(std::string &out, std::size_t boundary_from)
{
    out.append(alignUp(out.size() - boundary_from) -
                   (out.size() - boundary_from),
               '\0');
}

std::uint32_t
kindCode(LayerKind kind)
{
    return kind == LayerKind::Linear ? kKindLinear : kKindConv2d;
}

std::uint32_t
quantKindCode(LayerKind kind)
{
    return kind == LayerKind::Linear ? kKindQuantLinear
                                     : kKindQuantConv2d;
}

Status
kindFromCode(std::uint32_t code, LayerKind &kind)
{
    switch (code) {
      case kKindConv2d:
      case kKindQuantConv2d:
        kind = LayerKind::Conv2d;
        return Status::ok();
      case kKindLinear:
      case kKindQuantLinear:
        kind = LayerKind::Linear;
        return Status::ok();
      default:
        return errorf(ErrorCode::ParseError,
                      "section kind code %u is not a checkpointable "
                      "layer kind", code);
    }
}

bool
isQuantKindCode(std::uint32_t code)
{
    return code == kKindQuantConv2d || code == kKindQuantLinear;
}

/**
 * Append one 64-byte header built from @p fields (everything but the
 * trailing CRC), then the CRC32 over those 60 bytes.
 */
void
sealHeader(std::string &out, const std::string &fields)
{
    FASTBCNN_DCHECK(fields.size() == kHeaderBytes - 4,
                    "header fields must be 60 bytes");
    out += fields;
    putU32(out, crc32(fields));
}

/** One section's payload: name + pad, weights, bias, pad. */
std::string
sectionPayload(const CheckpointRecord &rec)
{
    std::string payload;
    payload.reserve(alignUp(rec.name.size()) +
                    alignUp(4 * (rec.weights.size() +
                                 rec.bias.size())));
    payload += rec.name;
    pad(payload, 0);
    for (float v : rec.weights)
        putF32(payload, v);
    for (float v : rec.bias)
        putF32(payload, v);
    pad(payload, 0);
    return payload;
}

/**
 * One quant section's payload: name + pad, a 16-byte parameter block
 * (wScale, inScale, outScale as f32 LE, shift as i32 LE), int8
 * weights (one byte each), int32 bias (4 bytes LE each), pad.
 */
std::string
quantSectionPayload(const QuantRecord &rec)
{
    std::string payload;
    payload.reserve(alignUp(rec.name.size()) +
                    alignUp(kQuantParamBytes + rec.weights.size() +
                            4 * rec.bias.size()));
    payload += rec.name;
    pad(payload, 0);
    putF32(payload, rec.wScale);
    putF32(payload, rec.inScale);
    putF32(payload, rec.outScale);
    putU32(payload, static_cast<std::uint32_t>(rec.shift));
    for (std::int8_t v : rec.weights)
        payload.push_back(static_cast<char>(v));
    for (std::int32_t v : rec.bias)
        putU32(payload, static_cast<std::uint32_t>(v));
    pad(payload, 0);
    return payload;
}

} // namespace

const char *
checkpointFormatName(CheckpointFormat format)
{
    return format == CheckpointFormat::Binary ? "binary" : "text";
}

Expected<CheckpointFormat>
detectCheckpointFormat(const std::string &bytes)
{
    if (bytes.size() >= sizeof(kFileMagic) &&
        std::memcmp(bytes.data(), kFileMagic,
                    sizeof(kFileMagic)) == 0) {
        return CheckpointFormat::Binary;
    }
    constexpr const char *kTextMagic = "fastbcnn-weights";
    if (bytes.compare(0, std::strlen(kTextMagic), kTextMagic) == 0)
        return CheckpointFormat::Text;
    return errorf(ErrorCode::ParseError,
                  "not a fastbcnn checkpoint (unrecognised magic in "
                  "the first %zu bytes)",
                  std::min<std::size_t>(bytes.size(), 16));
}

Status
tryEmitBinaryCheckpoint(const CheckpointImage &image, std::ostream &os)
{
    // Sections first so the header can carry the total payload size.
    std::string body;  // name region + sections
    body.append(image.modelName);
    pad(body, 0);
    const std::uint32_t nameCrc = crc32(body);

    for (const CheckpointRecord &rec : image.records) {
        const std::string payload = sectionPayload(rec);
        std::string fields;
        putU32(fields, kindCode(rec.kind));
        putU32(fields, static_cast<std::uint32_t>(rec.name.size()));
        putU64(fields, rec.weights.size());
        putU64(fields, rec.bias.size());
        putU64(fields, payload.size());
        putU32(fields, crc32(payload));
        fields.append(kHeaderBytes - 4 - fields.size(), '\0');
        sealHeader(body, fields);
        body += payload;
    }
    // Quantized sections ride after the float ones; same header
    // layout, distinct kind codes, int8/int32 payload encoding.
    for (const QuantRecord &rec : image.quantRecords) {
        const std::string payload = quantSectionPayload(rec);
        std::string fields;
        putU32(fields, quantKindCode(rec.kind));
        putU32(fields, static_cast<std::uint32_t>(rec.name.size()));
        putU64(fields, rec.weights.size());
        putU64(fields, rec.bias.size());
        putU64(fields, payload.size());
        putU32(fields, crc32(payload));
        fields.append(kHeaderBytes - 4 - fields.size(), '\0');
        sealHeader(body, fields);
        body += payload;
    }

    std::string file;
    file.reserve(kHeaderBytes + body.size() + kHeaderBytes);
    {
        std::string fields;
        fields.append(kFileMagic, sizeof(kFileMagic));
        putU32(fields, kFormatVersion);
        putU32(fields,
               static_cast<std::uint32_t>(image.records.size() +
                                          image.quantRecords.size()));
        putU64(fields, body.size());
        putU32(fields,
               static_cast<std::uint32_t>(image.modelName.size()));
        putU32(fields, nameCrc);
        fields.append(kHeaderBytes - 4 - fields.size(), '\0');
        sealHeader(file, fields);
    }
    file += body;
    {
        std::string fields;
        fields.append(kFooterMagic, sizeof(kFooterMagic));
        putU64(fields, file.size());
        putU32(fields, crc32(file));
        fields.append(kHeaderBytes - 4 - fields.size(), '\0');
        sealHeader(file, fields);
    }

    os.write(file.data(),
             static_cast<std::streamsize>(file.size()));
    if (!os.good()) {
        return errorf(ErrorCode::IoError,
                      "stream failed while saving binary checkpoint "
                      "of '%s'", image.modelName.c_str());
    }
    return Status::ok();
}

Expected<CheckpointImage>
tryParseBinaryCheckpoint(const std::string &bytes)
{
    // --- file header -------------------------------------------------
    if (bytes.size() < kHeaderBytes) {
        return errorf(ErrorCode::Truncated,
                      "binary checkpoint is %zu bytes; even the "
                      "header needs %zu", bytes.size(), kHeaderBytes);
    }
    if (std::memcmp(bytes.data(), kFileMagic, sizeof(kFileMagic)) !=
        0) {
        return errorf(ErrorCode::ParseError,
                      "not a fastbcnn binary checkpoint (bad magic)");
    }
    if (crc32(bytes.data(), kHeaderBytes - 4) !=
        getU32(bytes.data() + kHeaderBytes - 4)) {
        return errorf(ErrorCode::DataLoss,
                      "binary checkpoint file header failed its "
                      "CRC32 check");
    }
    const std::uint32_t version = getU32(bytes.data() + 8);
    if (version != kFormatVersion) {
        return errorf(ErrorCode::ParseError,
                      "unsupported binary checkpoint version %u "
                      "(this build reads v%u)", version,
                      kFormatVersion);
    }
    const std::uint32_t sectionCount = getU32(bytes.data() + 12);
    const std::uint64_t payloadBytes = getU64(bytes.data() + 16);
    const std::uint32_t modelNameBytes = getU32(bytes.data() + 24);
    const std::uint32_t nameCrc = getU32(bytes.data() + 28);

    const std::uint64_t expectTotal =
        kHeaderBytes + payloadBytes + kHeaderBytes;
    if (bytes.size() < expectTotal) {
        return errorf(ErrorCode::Truncated,
                      "binary checkpoint is %zu bytes but its header "
                      "advertises %llu", bytes.size(),
                      static_cast<unsigned long long>(expectTotal));
    }
    if (bytes.size() > expectTotal) {
        return errorf(ErrorCode::ParseError,
                      "binary checkpoint carries %zu trailing bytes "
                      "after the footer",
                      bytes.size() -
                          static_cast<std::size_t>(expectTotal));
    }

    // --- footer (whole-file integrity before touching sections) ------
    const char *footer = bytes.data() + kHeaderBytes + payloadBytes;
    if (std::memcmp(footer, kFooterMagic, sizeof(kFooterMagic)) != 0) {
        return errorf(ErrorCode::ParseError,
                      "binary checkpoint footer has a bad magic");
    }
    if (crc32(footer, kHeaderBytes - 4) !=
        getU32(footer + kHeaderBytes - 4)) {
        return errorf(ErrorCode::DataLoss,
                      "binary checkpoint footer failed its CRC32 "
                      "check");
    }
    const std::uint64_t footerSize = getU64(footer + 8);
    if (footerSize != kHeaderBytes + payloadBytes) {
        return errorf(ErrorCode::ParseError,
                      "footer byte count %llu disagrees with the "
                      "header's %llu",
                      static_cast<unsigned long long>(footerSize),
                      static_cast<unsigned long long>(kHeaderBytes +
                                                      payloadBytes));
    }
    if (crc32(bytes.data(), static_cast<std::size_t>(footerSize)) !=
        getU32(footer + 16)) {
        return errorf(ErrorCode::DataLoss,
                      "binary checkpoint failed its whole-file CRC32 "
                      "check");
    }

    // --- model-name region -------------------------------------------
    const std::uint64_t nameRegion = alignUp(modelNameBytes);
    if (nameRegion > payloadBytes) {
        return errorf(ErrorCode::ParseError,
                      "model-name length %u exceeds the payload",
                      modelNameBytes);
    }
    if (crc32(bytes.data() + kHeaderBytes,
              static_cast<std::size_t>(nameRegion)) != nameCrc) {
        return errorf(ErrorCode::DataLoss,
                      "binary checkpoint model-name region failed "
                      "its CRC32 check");
    }

    CheckpointImage image;
    image.modelName.assign(bytes.data() + kHeaderBytes,
                           modelNameBytes);

    // --- sections ----------------------------------------------------
    std::uint64_t at = kHeaderBytes + nameRegion;
    const std::uint64_t end = kHeaderBytes + payloadBytes;
    for (std::uint32_t s = 0; s < sectionCount; ++s) {
        if (at + kHeaderBytes > end) {
            return errorf(ErrorCode::Truncated,
                          "section %u of %u starts past the payload "
                          "end", s, sectionCount);
        }
        const char *hdr = bytes.data() + at;
        if (crc32(hdr, kHeaderBytes - 4) !=
            getU32(hdr + kHeaderBytes - 4)) {
            return errorf(ErrorCode::DataLoss,
                          "section %u header failed its CRC32 check",
                          s);
        }
        const std::uint32_t kind = getU32(hdr);
        const std::uint32_t nameBytes = getU32(hdr + 4);
        const std::uint64_t weightCount = getU64(hdr + 8);
        const std::uint64_t biasCount = getU64(hdr + 16);
        const std::uint64_t secPayload = getU64(hdr + 24);
        const std::uint32_t payloadCrc = getU32(hdr + 32);

        if (secPayload > end - at - kHeaderBytes) {
            return errorf(ErrorCode::Truncated,
                          "section %u payload (%llu bytes) overruns "
                          "the file", s,
                          static_cast<unsigned long long>(secPayload));
        }
        // The advertised element counts must reproduce the payload
        // size exactly; any disagreement means a rotted length field
        // the CRCs happened to miss is caught structurally.  Quant
        // sections pack int8 weights + int32 bias behind a 16-byte
        // parameter block; float sections are f32 throughout.
        const std::uint64_t wantPayload =
            isQuantKindCode(kind)
                ? alignUp(nameBytes) +
                      alignUp(kQuantParamBytes + weightCount +
                              4 * biasCount)
                : alignUp(nameBytes) +
                      alignUp(4 * (weightCount + biasCount));
        if (wantPayload != secPayload) {
            return errorf(ErrorCode::ParseError,
                          "section %u claims %llu name bytes and "
                          "%llu+%llu values but %llu payload bytes",
                          s,
                          static_cast<unsigned long long>(nameBytes),
                          static_cast<unsigned long long>(weightCount),
                          static_cast<unsigned long long>(biasCount),
                          static_cast<unsigned long long>(secPayload));
        }
        const char *payload = hdr + kHeaderBytes;
        if (crc32(payload, static_cast<std::size_t>(secPayload)) !=
            payloadCrc) {
            return errorf(ErrorCode::DataLoss,
                          "section %u payload failed its CRC32 check",
                          s);
        }

        if (isQuantKindCode(kind)) {
            QuantRecord rec;
            FASTBCNN_RETURN_IF_ERROR(kindFromCode(kind, rec.kind));
            rec.name.assign(payload, nameBytes);
            const char *values = payload + alignUp(nameBytes);
            rec.wScale = getF32(values);
            rec.inScale = getF32(values + 4);
            rec.outScale = getF32(values + 8);
            rec.shift =
                static_cast<std::int32_t>(getU32(values + 12));
            values += kQuantParamBytes;
            rec.weights.reserve(
                static_cast<std::size_t>(weightCount));
            for (std::uint64_t i = 0; i < weightCount; ++i)
                rec.weights.push_back(
                    static_cast<std::int8_t>(values[i]));
            values += weightCount;
            rec.bias.reserve(static_cast<std::size_t>(biasCount));
            for (std::uint64_t i = 0; i < biasCount; ++i)
                rec.bias.push_back(static_cast<std::int32_t>(
                    getU32(values + 4 * i)));
            image.quantRecords.push_back(std::move(rec));
        } else {
            CheckpointRecord rec;
            FASTBCNN_RETURN_IF_ERROR(kindFromCode(kind, rec.kind));
            rec.name.assign(payload, nameBytes);
            const char *values = payload + alignUp(nameBytes);
            rec.weights.reserve(
                static_cast<std::size_t>(weightCount));
            for (std::uint64_t i = 0; i < weightCount; ++i)
                rec.weights.push_back(getF32(values + 4 * i));
            values += 4 * weightCount;
            rec.bias.reserve(static_cast<std::size_t>(biasCount));
            for (std::uint64_t i = 0; i < biasCount; ++i)
                rec.bias.push_back(getF32(values + 4 * i));
            image.records.push_back(std::move(rec));
        }

        at += kHeaderBytes + secPayload;
    }
    if (at != end) {
        return errorf(ErrorCode::ParseError,
                      "payload holds %llu unclaimed bytes after the "
                      "last section",
                      static_cast<unsigned long long>(end - at));
    }
    return image;
}

Expected<CheckpointImage>
tryParseBinaryCheckpoint(std::istream &is)
{
    std::string bytes{std::istreambuf_iterator<char>(is),
                      std::istreambuf_iterator<char>()};
    return tryParseBinaryCheckpoint(bytes);
}

Status
trySaveWeightsBinary(const Network &net, std::ostream &os)
{
    return tryEmitBinaryCheckpoint(checkpointImageOf(net), os);
}

Status
tryLoadWeightsBinary(Network &net, std::istream &is)
{
    Expected<CheckpointImage> image = tryParseBinaryCheckpoint(is);
    if (!image.hasValue())
        return std::move(image).takeError();
    FASTBCNN_RETURN_IF_ERROR(
        tryCommitCheckpointImage(net, image.value()));
    checkpointStats().add("binary_loads");
    return Status::ok();
}

Expected<CheckpointAudit>
tryAuditCheckpoint(const std::string &bytes, CheckpointImage *image)
{
    Expected<CheckpointFormat> format = detectCheckpointFormat(bytes);
    if (!format.hasValue())
        return std::move(format).takeError();

    Expected<CheckpointImage> parsed = [&]() {
        if (format.value() == CheckpointFormat::Binary)
            return tryParseBinaryCheckpoint(bytes);
        std::istringstream is(bytes);
        return tryParseTextCheckpoint(is);
    }();
    if (!parsed.hasValue()) {
        return std::move(parsed).takeError().withContext(
            format.value() == CheckpointFormat::Binary
                ? "auditing binary checkpoint"
                : "auditing text checkpoint");
    }

    CheckpointAudit audit;
    audit.format = format.value();
    audit.modelName = parsed.value().modelName;
    audit.sections = parsed.value().records.size();
    audit.quantSections = parsed.value().quantRecords.size();
    audit.fileBytes = bytes.size();
    for (const CheckpointRecord &rec : parsed.value().records)
        audit.totalValues += rec.weights.size() + rec.bias.size();
    for (const QuantRecord &rec : parsed.value().quantRecords)
        audit.totalValues += rec.weights.size() + rec.bias.size();
    // Text checkpoints without a footer parse fine but carry no CRC;
    // binary files cannot parse without passing every CRC.
    audit.crcVerified = audit.format == CheckpointFormat::Binary ||
                        bytes.rfind("\ncrc32 ") != std::string::npos;
    if (image != nullptr)
        *image = std::move(parsed).value();
    return audit;
}

Status
trySaveCheckpointFile(const Network &net, const std::string &path,
                      CheckpointFormat format,
                      const AtomicWriteOptions &write_opts)
{
    std::ostringstream os;
    FASTBCNN_RETURN_IF_ERROR(
        format == CheckpointFormat::Binary
            ? trySaveWeightsBinary(net, os)
            : trySaveWeights(net, os));
    return tryAtomicWriteFile(path, os.str(), write_opts)
        .withContext(fastbcnn::format(
            "saving %s checkpoint of '%s'",
            checkpointFormatName(format), net.name().c_str()));
}

Status
trySaveCheckpointImageFile(const CheckpointImage &image,
                           const std::string &path,
                           CheckpointFormat format,
                           const AtomicWriteOptions &write_opts)
{
    std::ostringstream os;
    FASTBCNN_RETURN_IF_ERROR(
        format == CheckpointFormat::Binary
            ? tryEmitBinaryCheckpoint(image, os)
            : tryEmitTextCheckpoint(image, os));
    return tryAtomicWriteFile(path, os.str(), write_opts)
        .withContext(fastbcnn::format(
            "saving %s checkpoint of '%s'",
            checkpointFormatName(format), image.modelName.c_str()));
}

Expected<CheckpointFormat>
tryLoadCheckpointFile(Network &net, const std::string &path)
{
    Expected<std::string> bytes = tryReadFile(path);
    if (!bytes.hasValue()) {
        return std::move(bytes).takeError().withContext(
            "loading checkpoint file");
    }
    Expected<CheckpointFormat> format =
        detectCheckpointFormat(bytes.value());
    if (!format.hasValue()) {
        return std::move(format).takeError().withContext(
            fastbcnn::format("loading '%s'", path.c_str()));
    }
    std::istringstream is(bytes.value());
    const Status loaded = format.value() == CheckpointFormat::Binary
                              ? tryLoadWeightsBinary(net, is)
                              : tryLoadWeights(net, is);
    if (!loaded.isOk()) {
        return Status(loaded).withContext(
            fastbcnn::format("loading '%s'", path.c_str()));
    }
    return format.value();
}

} // namespace fastbcnn
