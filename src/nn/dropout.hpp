/**
 * @file
 * Monte-Carlo dropout layer: masks conv-block outputs with Bernoulli
 * 0/1 bits supplied by ForwardHooks.
 */

#ifndef FASTBCNN_NN_DROPOUT_HPP
#define FASTBCNN_NN_DROPOUT_HPP

#include "layer.hpp"

namespace fastbcnn {

/**
 * Element-wise 0/1 masking, O^l_d = O^l ⊙ M^l (Section II-B).
 *
 * The layer holds only the nominal drop rate; the actual mask bits are
 * requested from ForwardHooks::dropoutMask() so the caller controls
 * the RNG (hardware LFSR vs software), records masks into traces, or
 * replays recorded masks.  When the hook returns nullptr the layer is
 * an identity (non-dropout pre-inference).
 *
 * Following Gal & Ghahramani's MC-dropout formulation the mask is a
 * pure 0/1 multiply with no 1/(1-p) rescaling at inference — exactly
 * what the accelerator hardware implements.
 */
class Dropout : public Layer
{
  public:
    /**
     * @param name      unique layer name
     * @param drop_rate nominal Bernoulli drop probability p
     */
    Dropout(std::string name, double drop_rate);

    LayerKind kind() const override { return LayerKind::Dropout; }
    Shape outputShape(
        const std::vector<Shape> &input_shapes) const override;
    Tensor forward(const std::vector<const Tensor *> &inputs,
                   ForwardHooks *hooks) const override;

    /** @return nominal drop probability p. */
    double dropRate() const { return dropRate_; }

  private:
    double dropRate_;
};

} // namespace fastbcnn

#endif // FASTBCNN_NN_DROPOUT_HPP
