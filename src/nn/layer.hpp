/**
 * @file
 * Layer abstraction for the functional CNN/BCNN inference library.
 *
 * The functional model is the numerical reference for every
 * experiment: the cycle-level accelerator models never recompute
 * values, they replay traces captured from these layers (DESIGN.md §5).
 */

#ifndef FASTBCNN_NN_LAYER_HPP
#define FASTBCNN_NN_LAYER_HPP

#include <memory>
#include <string>
#include <vector>

#include "common/bitvolume.hpp"
#include "tensor/tensor.hpp"

namespace fastbcnn {

/** Discriminator for layer types (used by analyzers and traces). */
enum class LayerKind {
    Conv2d,
    ReLU,
    MaxPool2d,
    AvgPool2d,
    GlobalAvgPool,
    Dropout,
    Linear,
    Flatten,
    Concat,
    Softmax,
    LocalResponseNorm
};

/** @return a human-readable name for @p kind. */
const char *layerKindName(LayerKind kind);

/**
 * Hooks threaded through Network::forward().
 *
 * Dropout layers request masks here, so RNG policy (LFSR vs software,
 * recording vs replay) lives with the caller; activation capture is
 * how the trace module observes intermediate feature maps.
 */
class ForwardHooks
{
  public:
    virtual ~ForwardHooks() = default;

    /**
     * Supply the dropout mask for layer @p layer_name with output
     * shape @p shape (CHW).  Return nullptr to disable dropout for
     * this layer (identity pass-through).  The pointed-to mask must
     * stay alive until forward() returns.
     */
    virtual const BitVolume *dropoutMask(const std::string &layer_name,
                                         const Shape &shape) = 0;

    /** Observe the output of layer @p layer_name. */
    virtual void onActivation(const std::string &layer_name,
                              LayerKind kind, const Tensor &out)
    {
        (void)layer_name; (void)kind; (void)out;
    }

    /**
     * Mutate the output of node @p layer_name in place before any
     * downstream layer consumes it.  Called by Network::forward()
     * after the layer finishes (so the faulted value also reaches the
     * network output when the layer is last).  Default: no-op.  The
     * fault-injection layer (src/fault) uses this to model datapath
     * bit-flips and NaN/Inf poisoning; the mutated tensor is what the
     * rest of the forward pass — and the MC sample guard — sees.
     */
    virtual void mutateActivation(const std::string &layer_name,
                                  LayerKind kind, Tensor &out)
    {
        (void)layer_name; (void)kind; (void)out;
    }
};

/**
 * Base class for all layers.
 *
 * Layers are stateless with respect to activations: forward() maps
 * inputs to an output tensor.  Multi-input layers (Concat) receive all
 * inputs; every other layer receives exactly one.
 */
class Layer
{
  public:
    /** @param name unique name within a network (used in traces). */
    explicit Layer(std::string name) : name_(std::move(name)) {}
    virtual ~Layer() = default;

    Layer(const Layer &) = delete;
    Layer &operator=(const Layer &) = delete;

    /** @return the layer's unique name. */
    const std::string &name() const { return name_; }

    /** @return the layer's kind discriminator. */
    virtual LayerKind kind() const = 0;

    /** @return number of inputs this layer consumes (1 except Concat). */
    virtual std::size_t arity() const { return 1; }

    /**
     * Infer the output shape from input shapes; calls fatal() when the
     * shapes are not admissible (user configuration error).
     */
    virtual Shape outputShape(
        const std::vector<Shape> &input_shapes) const = 0;

    /**
     * Compute the layer's output.
     *
     * @param inputs one tensor per input edge
     * @param hooks  may be nullptr (no dropout, no capture)
     */
    virtual Tensor forward(const std::vector<const Tensor *> &inputs,
                           ForwardHooks *hooks) const = 0;

  private:
    std::string name_;
};

} // namespace fastbcnn

#endif // FASTBCNN_NN_LAYER_HPP
