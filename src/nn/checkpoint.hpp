/**
 * @file
 * Binary checkpoint format + crash-safe checkpoint files.
 *
 * Byte-level layout (all integers little-endian, every region padded
 * to a 64-byte boundary so float payloads are 64-byte-aligned from
 * the start of the file — mmap-friendly):
 *
 *   FileHeader   (64 B)  magic "FBCNNCK1", format version, section
 *                        count, payload byte count, model-name length
 *                        + CRC32, header CRC32 over bytes [0, 60)
 *   name region          model name, zero-padded to 64 B
 *   Section × N (each):
 *     SectionHeader (64 B)  layer kind, name length, weight/bias
 *                           element counts, payload byte count,
 *                           payload CRC32, header CRC32
 *     payload             layer name (zero-padded to 64 B), weights
 *                         as f32 LE, bias as f32 LE, zero-padded to
 *                         64 B; the payload CRC covers all of it
 *
 * Quantized sections (kind codes 3 = quant Conv2d, 4 = quant Linear)
 * share the SectionHeader layout but pack a different payload: layer
 * name (zero-padded to 64 B), a 16-byte parameter block (wScale,
 * inScale, outScale as f32 LE, requant shift as i32 LE), weights as
 * int8 (one byte each), bias as i32 LE, zero-padded to 64 B.  They
 * ride after the float sections and are counted in the header's
 * section count; a checkpoint without them is simply float-only.
 *   FileFooter   (64 B)  magic "FBCNNFT1", byte count of everything
 *                        before the footer, whole-file CRC32 over
 *                        those bytes, footer CRC32
 *
 * Every length field is validated against the actual stream size
 * before any allocation it implies, so rotted lengths surface as
 * Truncated / ParseError — never as an over-read or a giant alloc.
 * CRC mismatches surface as DataLoss, at the finest granularity that
 * detects them (header, name, section, whole file).
 *
 * File-level helpers write through tryAtomicWriteFile() (temp file +
 * fsync + rename), so a writer killed at any byte leaves the previous
 * checkpoint intact: a reader finds either the old file or the new
 * one, never a torn hybrid.
 */

#ifndef FASTBCNN_NN_CHECKPOINT_HPP
#define FASTBCNN_NN_CHECKPOINT_HPP

#include <iosfwd>

#include "common/atomic_file.hpp"
#include "serialize.hpp"

namespace fastbcnn {

/** The two interchangeable on-disk checkpoint encodings. */
enum class CheckpointFormat {
    Text,    ///< hex-float records + "crc32" footer (serialize.hpp)
    Binary   ///< this header's sectioned binary layout
};

/** @return a stable lowercase name ("text" / "binary"). */
const char *checkpointFormatName(CheckpointFormat format);

/**
 * Sniff the encoding of @p bytes from its magic.
 * @return the format, or ParseError when it is neither.
 */
[[nodiscard]] Expected<CheckpointFormat> detectCheckpointFormat(
    const std::string &bytes);

/** Serialise @p image in the binary format. */
[[nodiscard]] Status tryEmitBinaryCheckpoint(
    const CheckpointImage &image, std::ostream &os);

/**
 * Parse a binary checkpoint into an image, verifying every CRC and
 * bounds-checking every length field.  Errors: ParseError (bad magic
 * / version / field inconsistency), Truncated (stream shorter than
 * the advertised layout), DataLoss (any CRC mismatch).
 */
[[nodiscard]] Expected<CheckpointImage> tryParseBinaryCheckpoint(
    const std::string &bytes);

/** Stream overload of tryParseBinaryCheckpoint(). */
[[nodiscard]] Expected<CheckpointImage> tryParseBinaryCheckpoint(
    std::istream &is);

/** Binary analogue of trySaveWeights(). */
[[nodiscard]] Status trySaveWeightsBinary(const Network &net,
                                          std::ostream &os);

/**
 * Binary analogue of tryLoadWeights(): parse, verify, staged
 * all-or-nothing commit into @p net.
 */
[[nodiscard]] Status tryLoadWeightsBinary(Network &net,
                                          std::istream &is);

/**
 * Result of a structural audit of one checkpoint (fastbcnn_ckpt
 * --verify): what the file claims to hold, with every CRC re-checked.
 */
struct CheckpointAudit {
    CheckpointFormat format = CheckpointFormat::Text;
    std::string modelName;
    std::size_t sections = 0;       ///< parameterised-layer records
    std::size_t quantSections = 0;  ///< quantized-layer records
    std::size_t totalValues = 0;    ///< weight + bias element count
    std::size_t fileBytes = 0;
    bool crcVerified = false;       ///< false only for legacy text
};

/**
 * Parse + CRC-verify @p bytes in whichever format it carries and
 * report what was found.  @p image (optional) receives the parsed
 * records for conversion.
 */
[[nodiscard]] Expected<CheckpointAudit> tryAuditCheckpoint(
    const std::string &bytes, CheckpointImage *image = nullptr);

/**
 * Atomically write @p net's checkpoint to @p path in @p format.  The
 * write goes through tryAtomicWriteFile(): a crash at any point —
 * including the simulated kills in @p write_opts — leaves the
 * previous file intact.
 */
[[nodiscard]] Status trySaveCheckpointFile(
    const Network &net, const std::string &path,
    CheckpointFormat format,
    const AtomicWriteOptions &write_opts = {});

/**
 * Image overload of trySaveCheckpointFile(): atomically write an
 * already-assembled image — the path that carries quant records
 * (append QuantizedNetwork::records() to checkpointImageOf(net)).
 * Text format refuses images with quant records.
 */
[[nodiscard]] Status trySaveCheckpointImageFile(
    const CheckpointImage &image, const std::string &path,
    CheckpointFormat format,
    const AtomicWriteOptions &write_opts = {});

/**
 * Load the checkpoint at @p path into @p net, auto-detecting the
 * format from the file magic.
 * @return the detected format, or the load error.
 */
[[nodiscard]] Expected<CheckpointFormat> tryLoadCheckpointFile(
    Network &net, const std::string &path);

} // namespace fastbcnn

#endif // FASTBCNN_NN_CHECKPOINT_HPP
