#include "serialize.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <iterator>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/crc32.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "conv2d.hpp"
#include "dense.hpp"

namespace fastbcnn {

namespace {

/** Parameter tensors of a layer, or nullptrs when it has none. */
struct ParamRefs {
    Tensor *weights = nullptr;
    Tensor *bias = nullptr;
};

ParamRefs
paramsOf(Layer &layer)
{
    switch (layer.kind()) {
      case LayerKind::Conv2d: {
        auto &conv = static_cast<Conv2d &>(layer);
        return {&conv.weights(), &conv.bias()};
      }
      case LayerKind::Linear: {
        auto &fc = static_cast<Linear &>(layer);
        return {&fc.weights(), &fc.bias()};
      }
      default:
        return {};
    }
}

void
writeValues(std::ostream &os, const std::vector<float> &values)
{
    char buf[64];
    for (float v : values) {
        // Hex floats round-trip exactly through text.
        std::snprintf(buf, sizeof(buf), "%a", static_cast<double>(v));
        os << buf << '\n';
    }
}

/**
 * Cap on reserve-ahead when a count field comes from the untrusted
 * stream: a rotted count must not become a giant allocation before
 * the (cheap) truncation check below catches it.
 */
constexpr std::size_t kReserveCap = 1u << 16;

/**
 * Read @p count float tokens into @p out.  Rejects truncation and
 * tokens that are not entirely a float literal (bit rot inside a
 * value), so corrupt streams fail loudly instead of loading zeros.
 */
Status
readValues(std::istream &is, std::size_t count,
           std::vector<float> &out)
{
    out.clear();
    out.reserve(std::min(count, kReserveCap));
    std::string token;
    for (std::size_t i = 0; i < count; ++i) {
        if (!(is >> token)) {
            return errorf(ErrorCode::Truncated,
                          "weight file truncated after %zu of %zu "
                          "values", i, count);
        }
        char *end = nullptr;
        const float v = std::strtof(token.c_str(), &end);
        if (end == token.c_str() ||
            end != token.c_str() + token.size()) {
            // A half-token at end of stream is a cut, not bit rot.
            if (is.peek() == std::istream::traits_type::eof()) {
                return errorf(ErrorCode::Truncated,
                              "weight file truncated inside value %zu "
                              "of %zu ('%.32s')", i, count,
                              token.c_str());
            }
            return errorf(ErrorCode::ParseError,
                          "corrupt value token '%.32s' at value %zu "
                          "of %zu", token.c_str(), i, count);
        }
        out.push_back(v);
    }
    return Status::ok();
}

/** The integrity footer tag ("crc32 <8 hex digits>" on its own line). */
constexpr const char *kCrcFooterTag = "\ncrc32 ";

/**
 * Split the trailing "crc32 XXXXXXXX" footer off @p body (the stream
 * content after the header line's tokens, starting with the header's
 * newline).  On success @p payload gets the record region the CRC was
 * computed over and @p crc its stored value.  A body with no footer
 * returns ok with @p has_footer false (legacy file).  A mangled footer
 * is reported as Truncated: the only way to half-write this line is a
 * cut (or rot) at the very end of the file.
 */
Status
splitCrcFooter(const std::string &body, std::string &payload,
               std::uint32_t &crc, bool &has_footer)
{
    has_footer = false;
    payload = body.empty() ? body : body.substr(1);
    const std::size_t pos = body.rfind(kCrcFooterTag);
    if (pos == std::string::npos)
        return Status::ok();
    const std::size_t hex_at = pos + std::strlen(kCrcFooterTag);
    std::size_t hex_len = 0;
    while (hex_at + hex_len < body.size() &&
           std::isxdigit(static_cast<unsigned char>(
               body[hex_at + hex_len]))) {
        ++hex_len;
    }
    std::size_t tail = hex_at + hex_len;
    while (tail < body.size() &&
           std::isspace(static_cast<unsigned char>(body[tail]))) {
        ++tail;
    }
    if (tail != body.size()) {
        // "crc32" appearing mid-stream is not a footer (the record
        // grammar cannot produce it, but be conservative).
        return Status::ok();
    }
    if (hex_len != 8) {
        return errorf(ErrorCode::Truncated,
                      "weight file ends in a mangled crc32 footer "
                      "(%zu hex digits, want 8)", hex_len);
    }
    crc = static_cast<std::uint32_t>(
        std::strtoul(body.substr(hex_at, 8).c_str(), nullptr, 16));
    // The payload is everything between the header newline and the
    // footer's leading newline, inclusive of the final record newline.
    payload = body.substr(1, pos);
    has_footer = true;
    return Status::ok();
}

/** Map a text kind token onto the two checkpointable LayerKinds. */
Status
parseRecordKind(const std::string &token, LayerKind &kind)
{
    if (token == "Conv2d") {
        kind = LayerKind::Conv2d;
        return Status::ok();
    }
    if (token == "Linear") {
        kind = LayerKind::Linear;
        return Status::ok();
    }
    return errorf(ErrorCode::ParseError,
                  "unknown checkpoint layer kind '%.32s' (want "
                  "Conv2d or Linear)", token.c_str());
}

} // namespace

StatGroup &
checkpointStats()
{
    static StatGroup stats("checkpoint");
    return stats;
}

CheckpointImage
checkpointImageOf(const Network &net)
{
    CheckpointImage image;
    image.modelName = net.name();
    for (NodeId id = 0; id < net.size(); ++id) {
        // paramsOf needs mutable access; snapshotting only reads.
        ParamRefs p = paramsOf(const_cast<Layer &>(net.layer(id)));
        if (!p.weights)
            continue;
        CheckpointRecord rec;
        rec.name = net.layer(id).name();
        rec.kind = net.layer(id).kind();
        rec.weights.assign(p.weights->data().begin(),
                           p.weights->data().end());
        rec.bias.assign(p.bias->data().begin(), p.bias->data().end());
        image.records.push_back(std::move(rec));
    }
    return image;
}

Status
tryCommitCheckpointImage(Network &net, const CheckpointImage &image)
{
    // Stage 1: resolve and validate every record without touching the
    // network, so any error leaves the weights exactly as they were.
    std::vector<NodeId> nodes;
    nodes.reserve(image.records.size());
    for (const CheckpointRecord &rec : image.records) {
        const std::optional<NodeId> id = net.tryFindNode(rec.name);
        if (!id) {
            return errorf(ErrorCode::NotFound,
                          "network '%s' has no layer named '%.64s'",
                          net.name().c_str(), rec.name.c_str());
        }
        ParamRefs p = paramsOf(net.layer(*id));
        if (!p.weights) {
            return errorf(ErrorCode::Mismatch,
                          "layer '%.64s' in weight file has no "
                          "parameters in the network",
                          rec.name.c_str());
        }
        if (p.weights->numel() != rec.weights.size() ||
            p.bias->numel() != rec.bias.size()) {
            return errorf(ErrorCode::Mismatch,
                          "layer '%.64s': checkpoint holds %zu/%zu "
                          "values but the network needs %zu/%zu",
                          rec.name.c_str(), rec.weights.size(),
                          rec.bias.size(), p.weights->numel(),
                          p.bias->numel());
        }
        nodes.push_back(*id);
    }

    // Stage 2: commit.  Counts were validated above, so this cannot
    // fail half-way.
    for (std::size_t i = 0; i < image.records.size(); ++i) {
        const CheckpointRecord &rec = image.records[i];
        ParamRefs p = paramsOf(net.layer(nodes[i]));
        std::copy(rec.weights.begin(), rec.weights.end(),
                  p.weights->data().begin());
        std::copy(rec.bias.begin(), rec.bias.end(),
                  p.bias->data().begin());
    }
    return Status::ok();
}

Status
tryEmitTextCheckpoint(const CheckpointImage &image, std::ostream &os)
{
    if (!image.quantRecords.empty()) {
        return errorf(ErrorCode::InvalidArgument,
                      "the text checkpoint format has no section for "
                      "quantized weights; save '%s' (%zu quant "
                      "records) as a binary checkpoint instead",
                      image.modelName.c_str(),
                      image.quantRecords.size());
    }
    // Records are built in memory first so the CRC footer can cover
    // the exact byte region the loader will re-hash.
    std::ostringstream records;
    for (const CheckpointRecord &rec : image.records) {
        records << "layer " << rec.name << ' '
                << layerKindName(rec.kind) << ' '
                << rec.weights.size() << ' ' << rec.bias.size()
                << '\n';
        writeValues(records, rec.weights);
        writeValues(records, rec.bias);
    }
    const std::string payload = records.str();
    char footer[16];
    std::snprintf(footer, sizeof(footer), "crc32 %08x",
                  crc32(payload));
    os << "fastbcnn-weights v1 " << image.modelName << '\n'
       << payload << footer << '\n';
    if (!os.good()) {
        return errorf(ErrorCode::IoError,
                      "stream failed while saving weights of '%s'",
                      image.modelName.c_str());
    }
    return Status::ok();
}

Expected<CheckpointImage>
tryParseTextCheckpoint(std::istream &is)
{
    std::string magic, version, model;
    if (!(is >> magic >> version >> model) ||
        magic != "fastbcnn-weights" || version != "v1") {
        return errorf(ErrorCode::ParseError,
                      "not a fastbcnn v1 weight file (header "
                      "'%.32s %.32s')", magic.c_str(),
                      version.c_str());
    }

    // Integrity first: hash the record region and compare with the
    // footer before spending any time parsing.  A footer-less stream
    // is a legacy (pre-footer) checkpoint — still accepted, with a
    // warning and a counted stat, because parse-level validation
    // below catches gross damage anyway.
    std::string body{std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>()};
    std::string payload;
    std::uint32_t stored_crc = 0;
    bool has_footer = false;
    FASTBCNN_RETURN_IF_ERROR(
        splitCrcFooter(body, payload, stored_crc, has_footer));
    if (has_footer) {
        const std::uint32_t actual = crc32(payload);
        if (actual != stored_crc) {
            return errorf(ErrorCode::DataLoss,
                          "weight file of '%.64s' failed its integrity "
                          "check (stored crc32 %08x, computed %08x)",
                          model.c_str(), stored_crc, actual);
        }
    } else if (!payload.empty()) {
        checkpointStats().add("legacy_text_loads");
        warn("weight file of '%s' has no crc32 footer (legacy "
             "format); loading without an integrity check",
             model.c_str());
    }
    std::istringstream records(payload);

    CheckpointImage image;
    image.modelName = std::move(model);
    std::string tag;
    while (records >> tag) {
        if (tag != "layer") {
            return errorf(ErrorCode::ParseError,
                          "malformed weight file near '%.32s'",
                          tag.c_str());
        }
        std::string name, kind;
        std::size_t w_count = 0, b_count = 0;
        if (!(records >> name >> kind >> w_count >> b_count)) {
            return errorf(ErrorCode::ParseError,
                          "malformed layer record near '%.64s'",
                          name.c_str());
        }
        CheckpointRecord rec;
        rec.name = std::move(name);
        FASTBCNN_RETURN_IF_ERROR(parseRecordKind(kind, rec.kind));
        FASTBCNN_RETURN_IF_ERROR(
            readValues(records, w_count, rec.weights)
                .withContext(format("weights of layer '%.64s'",
                                    rec.name.c_str())));
        FASTBCNN_RETURN_IF_ERROR(
            readValues(records, b_count, rec.bias)
                .withContext(format("bias of layer '%.64s'",
                                    rec.name.c_str())));
        image.records.push_back(std::move(rec));
    }
    return image;
}

Status
trySaveWeights(const Network &net, std::ostream &os)
{
    return tryEmitTextCheckpoint(checkpointImageOf(net), os);
}

void
saveWeights(const Network &net, std::ostream &os)
{
    Status status = trySaveWeights(net, os);
    if (!status.isOk())
        fatal("%s", status.toString().c_str());
}

Status
tryLoadWeights(Network &net, std::istream &is)
{
    Expected<CheckpointImage> image = tryParseTextCheckpoint(is);
    if (!image.hasValue())
        return std::move(image).takeError();
    FASTBCNN_RETURN_IF_ERROR(
        tryCommitCheckpointImage(net, image.value()));
    checkpointStats().add("text_loads");
    return Status::ok();
}

void
loadWeights(Network &net, std::istream &is)
{
    Status status = tryLoadWeights(net, is);
    if (!status.isOk())
        fatal("%s", status.toString().c_str());
}

void
printSummary(const Network &net, std::ostream &os)
{
    Table t({"#", "layer", "kind", "output shape", "params"});
    std::uint64_t total_params = 0;
    for (NodeId id = 0; id < net.size(); ++id) {
        ParamRefs p = paramsOf(const_cast<Layer &>(net.layer(id)));
        const std::uint64_t params =
            p.weights ? p.weights->numel() + p.bias->numel() : 0;
        total_params += params;
        t.addRow({format("%zu", id), net.layer(id).name(),
                  layerKindName(net.layer(id).kind()),
                  net.shapeOf(id).toString(),
                  params == 0 ? "-" : format("%llu",
                                             static_cast<unsigned long long>(params))});
    }
    t.print(os);
    os << net.name() << ": " << total_params << " parameters, "
       << net.totalMacs() << " MACs per dense inference\n";
}

} // namespace fastbcnn
