#include "serialize.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <utility>
#include <vector>

#include "common/table.hpp"
#include "conv2d.hpp"
#include "dense.hpp"

namespace fastbcnn {

namespace {

/** Parameter tensors of a layer, or nullptrs when it has none. */
struct ParamRefs {
    Tensor *weights = nullptr;
    Tensor *bias = nullptr;
};

ParamRefs
paramsOf(Layer &layer)
{
    switch (layer.kind()) {
      case LayerKind::Conv2d: {
        auto &conv = static_cast<Conv2d &>(layer);
        return {&conv.weights(), &conv.bias()};
      }
      case LayerKind::Linear: {
        auto &fc = static_cast<Linear &>(layer);
        return {&fc.weights(), &fc.bias()};
      }
      default:
        return {};
    }
}

void
writeValues(std::ostream &os, const Tensor &t)
{
    char buf[64];
    for (float v : t.data()) {
        // Hex floats round-trip exactly through text.
        std::snprintf(buf, sizeof(buf), "%a", static_cast<double>(v));
        os << buf << '\n';
    }
}

/**
 * Read @p count float tokens into @p out.  Rejects truncation and
 * tokens that are not entirely a float literal (bit rot inside a
 * value), so corrupt streams fail loudly instead of loading zeros.
 */
Status
readValues(std::istream &is, std::size_t count,
           std::vector<float> &out)
{
    out.clear();
    out.reserve(count);
    std::string token;
    for (std::size_t i = 0; i < count; ++i) {
        if (!(is >> token)) {
            return errorf(ErrorCode::Truncated,
                          "weight file truncated after %zu of %zu "
                          "values", i, count);
        }
        char *end = nullptr;
        const float v = std::strtof(token.c_str(), &end);
        if (end == token.c_str() ||
            end != token.c_str() + token.size()) {
            // A half-token at end of stream is a cut, not bit rot.
            if (is.peek() == std::istream::traits_type::eof()) {
                return errorf(ErrorCode::Truncated,
                              "weight file truncated inside value %zu "
                              "of %zu ('%.32s')", i, count,
                              token.c_str());
            }
            return errorf(ErrorCode::ParseError,
                          "corrupt value token '%.32s' at value %zu "
                          "of %zu", token.c_str(), i, count);
        }
        out.push_back(v);
    }
    return Status::ok();
}

/** One parsed-and-validated record awaiting commit. */
struct StagedRecord {
    NodeId node = 0;
    std::vector<float> weights;
    std::vector<float> bias;
};

} // namespace

Status
trySaveWeights(const Network &net, std::ostream &os)
{
    os << "fastbcnn-weights v1 " << net.name() << '\n';
    for (NodeId id = 0; id < net.size(); ++id) {
        // paramsOf needs mutable access; serialisation only reads.
        ParamRefs p = paramsOf(const_cast<Layer &>(net.layer(id)));
        if (!p.weights)
            continue;
        os << "layer " << net.layer(id).name() << ' '
           << layerKindName(net.layer(id).kind()) << ' '
           << p.weights->numel() << ' ' << p.bias->numel() << '\n';
        writeValues(os, *p.weights);
        writeValues(os, *p.bias);
    }
    if (!os.good()) {
        return errorf(ErrorCode::IoError,
                      "stream failed while saving weights of '%s'",
                      net.name().c_str());
    }
    return Status::ok();
}

void
saveWeights(const Network &net, std::ostream &os)
{
    Status status = trySaveWeights(net, os);
    if (!status.isOk())
        fatal("%s", status.toString().c_str());
}

Status
tryLoadWeights(Network &net, std::istream &is)
{
    std::string magic, version, model;
    if (!(is >> magic >> version >> model) ||
        magic != "fastbcnn-weights" || version != "v1") {
        return errorf(ErrorCode::ParseError,
                      "not a fastbcnn v1 weight file (header "
                      "'%.32s %.32s')", magic.c_str(),
                      version.c_str());
    }

    // Stage 1: parse and validate every record without touching the
    // network, so any error leaves the weights exactly as they were.
    std::vector<StagedRecord> staged;
    std::string tag;
    while (is >> tag) {
        if (tag != "layer") {
            return errorf(ErrorCode::ParseError,
                          "malformed weight file near '%.32s'",
                          tag.c_str());
        }
        std::string name, kind;
        std::size_t w_count = 0, b_count = 0;
        if (!(is >> name >> kind >> w_count >> b_count)) {
            return errorf(ErrorCode::ParseError,
                          "malformed layer record near '%.64s'",
                          name.c_str());
        }
        const std::optional<NodeId> id = net.tryFindNode(name);
        if (!id) {
            return errorf(ErrorCode::NotFound,
                          "network '%s' has no layer named '%.64s'",
                          net.name().c_str(), name.c_str());
        }
        ParamRefs p = paramsOf(net.layer(*id));
        if (!p.weights) {
            return errorf(ErrorCode::Mismatch,
                          "layer '%.64s' in weight file has no "
                          "parameters in the network", name.c_str());
        }
        if (p.weights->numel() != w_count ||
            p.bias->numel() != b_count) {
            return errorf(ErrorCode::Mismatch,
                          "layer '%.64s': checkpoint holds %zu/%zu "
                          "values but the network needs %zu/%zu",
                          name.c_str(), w_count, b_count,
                          p.weights->numel(), p.bias->numel());
        }
        StagedRecord rec;
        rec.node = *id;
        FASTBCNN_RETURN_IF_ERROR(
            readValues(is, w_count, rec.weights)
                .withContext(format("weights of layer '%.64s'",
                                    name.c_str())));
        FASTBCNN_RETURN_IF_ERROR(
            readValues(is, b_count, rec.bias)
                .withContext(format("bias of layer '%.64s'",
                                    name.c_str())));
        staged.push_back(std::move(rec));
    }

    // Stage 2: commit.  Counts were validated above, so this cannot
    // fail half-way.
    for (StagedRecord &rec : staged) {
        ParamRefs p = paramsOf(net.layer(rec.node));
        std::copy(rec.weights.begin(), rec.weights.end(),
                  p.weights->data().begin());
        std::copy(rec.bias.begin(), rec.bias.end(),
                  p.bias->data().begin());
    }
    return Status::ok();
}

void
loadWeights(Network &net, std::istream &is)
{
    Status status = tryLoadWeights(net, is);
    if (!status.isOk())
        fatal("%s", status.toString().c_str());
}

void
printSummary(const Network &net, std::ostream &os)
{
    Table t({"#", "layer", "kind", "output shape", "params"});
    std::uint64_t total_params = 0;
    for (NodeId id = 0; id < net.size(); ++id) {
        ParamRefs p = paramsOf(const_cast<Layer &>(net.layer(id)));
        const std::uint64_t params =
            p.weights ? p.weights->numel() + p.bias->numel() : 0;
        total_params += params;
        t.addRow({format("%zu", id), net.layer(id).name(),
                  layerKindName(net.layer(id).kind()),
                  net.shapeOf(id).toString(),
                  params == 0 ? "-" : format("%llu",
                                             static_cast<unsigned long long>(params))});
    }
    t.print(os);
    os << net.name() << ": " << total_params << " parameters, "
       << net.totalMacs() << " MACs per dense inference\n";
}

} // namespace fastbcnn
