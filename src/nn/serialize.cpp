#include "serialize.hpp"

#include <cstdio>
#include <istream>
#include <ostream>

#include "common/table.hpp"
#include "conv2d.hpp"
#include "dense.hpp"

namespace fastbcnn {

namespace {

/** Parameter tensors of a layer, or nullptrs when it has none. */
struct ParamRefs {
    Tensor *weights = nullptr;
    Tensor *bias = nullptr;
};

ParamRefs
paramsOf(Layer &layer)
{
    switch (layer.kind()) {
      case LayerKind::Conv2d: {
        auto &conv = static_cast<Conv2d &>(layer);
        return {&conv.weights(), &conv.bias()};
      }
      case LayerKind::Linear: {
        auto &fc = static_cast<Linear &>(layer);
        return {&fc.weights(), &fc.bias()};
      }
      default:
        return {};
    }
}

void
writeValues(std::ostream &os, const Tensor &t)
{
    char buf[64];
    for (float v : t.data()) {
        // Hex floats round-trip exactly through text.
        std::snprintf(buf, sizeof(buf), "%a", static_cast<double>(v));
        os << buf << '\n';
    }
}

void
readValues(std::istream &is, Tensor &t)
{
    for (float &v : t.data()) {
        std::string token;
        if (!(is >> token))
            fatal("weight file truncated");
        v = std::strtof(token.c_str(), nullptr);
    }
}

} // namespace

void
saveWeights(const Network &net, std::ostream &os)
{
    os << "fastbcnn-weights v1 " << net.name() << '\n';
    for (NodeId id = 0; id < net.size(); ++id) {
        // paramsOf needs mutable access; serialisation only reads.
        ParamRefs p = paramsOf(const_cast<Layer &>(net.layer(id)));
        if (!p.weights)
            continue;
        os << "layer " << net.layer(id).name() << ' '
           << layerKindName(net.layer(id).kind()) << ' '
           << p.weights->numel() << ' ' << p.bias->numel() << '\n';
        writeValues(os, *p.weights);
        writeValues(os, *p.bias);
    }
}

void
loadWeights(Network &net, std::istream &is)
{
    std::string magic, version, model;
    if (!(is >> magic >> version >> model) ||
        magic != "fastbcnn-weights" || version != "v1") {
        fatal("not a fastbcnn v1 weight file");
    }
    std::string tag;
    while (is >> tag) {
        if (tag != "layer")
            fatal("malformed weight file near '%s'", tag.c_str());
        std::string name, kind;
        std::size_t w_count = 0, b_count = 0;
        if (!(is >> name >> kind >> w_count >> b_count))
            fatal("malformed layer record");
        const NodeId id = net.findNode(name);  // fatal when absent
        ParamRefs p = paramsOf(net.layer(id));
        if (!p.weights) {
            fatal("layer '%s' in weight file has no parameters in "
                  "the network", name.c_str());
        }
        if (p.weights->numel() != w_count ||
            p.bias->numel() != b_count) {
            fatal("layer '%s': checkpoint holds %zu/%zu values but "
                  "the network needs %zu/%zu",
                  name.c_str(), w_count, b_count, p.weights->numel(),
                  p.bias->numel());
        }
        readValues(is, *p.weights);
        readValues(is, *p.bias);
    }
}

void
printSummary(const Network &net, std::ostream &os)
{
    Table t({"#", "layer", "kind", "output shape", "params"});
    std::uint64_t total_params = 0;
    for (NodeId id = 0; id < net.size(); ++id) {
        ParamRefs p = paramsOf(const_cast<Layer &>(net.layer(id)));
        const std::uint64_t params =
            p.weights ? p.weights->numel() + p.bias->numel() : 0;
        total_params += params;
        t.addRow({format("%zu", id), net.layer(id).name(),
                  layerKindName(net.layer(id).kind()),
                  net.shapeOf(id).toString(),
                  params == 0 ? "-" : format("%llu",
                                             static_cast<unsigned long long>(params))});
    }
    t.print(os);
    os << net.name() << ": " << total_params << " parameters, "
       << net.totalMacs() << " MACs per dense inference\n";
}

} // namespace fastbcnn
