/**
 * @file
 * Channel-wise concatenation (GoogLeNet inception join) and local
 * response normalisation.
 */

#ifndef FASTBCNN_NN_CONCAT_HPP
#define FASTBCNN_NN_CONCAT_HPP

#include "layer.hpp"

namespace fastbcnn {

/**
 * Concatenate CHW inputs along the channel axis.  All inputs must
 * share spatial dimensions; the arity is fixed at construction.
 */
class Concat : public Layer
{
  public:
    /**
     * @param name  unique layer name
     * @param arity number of input branches (>= 2)
     */
    Concat(std::string name, std::size_t arity);

    LayerKind kind() const override { return LayerKind::Concat; }
    std::size_t arity() const override { return arity_; }
    Shape outputShape(
        const std::vector<Shape> &input_shapes) const override;
    Tensor forward(const std::vector<const Tensor *> &inputs,
                   ForwardHooks *hooks) const override;

  private:
    std::size_t arity_;
};

/**
 * Local response normalisation across channels (GoogLeNet stem),
 * b_c = a_c / (k + alpha/n * sum a_{c'}^2)^beta over a window of n
 * neighbouring channels.
 */
class LocalResponseNorm : public Layer
{
  public:
    /**
     * @param name  unique layer name
     * @param size  channel window n
     * @param alpha scaling constant
     * @param beta  exponent
     * @param k     additive constant
     */
    LocalResponseNorm(std::string name, std::size_t size = 5,
                      float alpha = 1e-4f, float beta = 0.75f,
                      float k = 2.0f);

    LayerKind kind() const override
    {
        return LayerKind::LocalResponseNorm;
    }
    Shape outputShape(
        const std::vector<Shape> &input_shapes) const override;
    Tensor forward(const std::vector<const Tensor *> &inputs,
                   ForwardHooks *hooks) const override;

  private:
    std::size_t size_;
    float alpha_;
    float beta_;
    float k_;
};

} // namespace fastbcnn

#endif // FASTBCNN_NN_CONCAT_HPP
