#include "activations.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "simd/simd.hpp"

namespace fastbcnn {

Shape
ReLU::outputShape(const std::vector<Shape> &input_shapes) const
{
    FASTBCNN_CHECK(input_shapes.size() == 1, "ReLU takes one input");
    return input_shapes[0];
}

Tensor
ReLU::forward(const std::vector<const Tensor *> &inputs,
              ForwardHooks *hooks) const
{
    FASTBCNN_CHECK(inputs.size() == 1 && inputs[0] != nullptr,
                   "ReLU takes one input");
    Tensor out(inputs[0]->shape());
    simd::active().relu(inputs[0]->data().data(), out.data().data(),
                        inputs[0]->numel());
    if (hooks)
        hooks->onActivation(name(), kind(), out);
    return out;
}

Shape
Softmax::outputShape(const std::vector<Shape> &input_shapes) const
{
    FASTBCNN_CHECK(input_shapes.size() == 1, "Softmax takes one input");
    if (input_shapes[0].rank() != 1) {
        fatal("Softmax '%s': expected rank-1 logits, got %s",
              name().c_str(), input_shapes[0].toString().c_str());
    }
    return input_shapes[0];
}

Tensor
Softmax::forward(const std::vector<const Tensor *> &inputs,
                 ForwardHooks *hooks) const
{
    FASTBCNN_CHECK(inputs.size() == 1 && inputs[0] != nullptr,
                   "Softmax takes one input");
    const Tensor &in = *inputs[0];
    Tensor out(in.shape());
    float max_v = -std::numeric_limits<float>::infinity();
    for (float v : in.data())
        max_v = std::max(max_v, v);
    double total = 0.0;
    for (std::size_t i = 0; i < in.numel(); ++i) {
        const float e = std::exp(in.at(i) - max_v);
        out.at(i) = e;
        total += e;
    }
    for (std::size_t i = 0; i < out.numel(); ++i)
        out.at(i) = static_cast<float>(out.at(i) / total);
    if (hooks)
        hooks->onActivation(name(), kind(), out);
    return out;
}

} // namespace fastbcnn
