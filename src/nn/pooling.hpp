/**
 * @file
 * Spatial pooling layers: max, average and global-average pooling.
 */

#ifndef FASTBCNN_NN_POOLING_HPP
#define FASTBCNN_NN_POOLING_HPP

#include "layer.hpp"

namespace fastbcnn {

/** Shared geometry for windowed pooling layers. */
class Pool2dBase : public Layer
{
  public:
    /**
     * @param name        unique layer name
     * @param kernel_size square pooling window
     * @param stride      window stride (defaults to kernel_size)
     * @param padding     symmetric zero padding (GoogLeNet uses
     *                    padded 3x3/s1 pooling inside inception)
     */
    Pool2dBase(std::string name, std::size_t kernel_size,
               std::size_t stride, std::size_t padding);

    Shape outputShape(
        const std::vector<Shape> &input_shapes) const override;

    /** @return square pooling window size. */
    std::size_t kernelSize() const { return kernelSize_; }
    /** @return window stride. */
    std::size_t stride() const { return stride_; }
    /** @return symmetric zero padding. */
    std::size_t padding() const { return padding_; }

  protected:
    std::size_t kernelSize_;
    std::size_t stride_;
    std::size_t padding_;
};

/**
 * Max pooling.  Its interaction with dropout masks is modelled by the
 * hardware's mask-pooling unit (Section V-B2): a pooled position is
 * "dropped" only when every bit in its window is 1.
 */
class MaxPool2d : public Pool2dBase
{
  public:
    MaxPool2d(std::string name, std::size_t kernel_size,
              std::size_t stride = 0, std::size_t padding = 0)
        : Pool2dBase(std::move(name), kernel_size,
                     stride == 0 ? kernel_size : stride, padding)
    {}

    LayerKind kind() const override { return LayerKind::MaxPool2d; }
    Tensor forward(const std::vector<const Tensor *> &inputs,
                   ForwardHooks *hooks) const override;
};

/** Average pooling (LeNet-5 sub-sampling, GoogLeNet inception pools). */
class AvgPool2d : public Pool2dBase
{
  public:
    AvgPool2d(std::string name, std::size_t kernel_size,
              std::size_t stride = 0, std::size_t padding = 0)
        : Pool2dBase(std::move(name), kernel_size,
                     stride == 0 ? kernel_size : stride, padding)
    {}

    LayerKind kind() const override { return LayerKind::AvgPool2d; }
    Tensor forward(const std::vector<const Tensor *> &inputs,
                   ForwardHooks *hooks) const override;
};

/** Global average pooling (GoogLeNet head): CHW -> C. */
class GlobalAvgPool : public Layer
{
  public:
    explicit GlobalAvgPool(std::string name) : Layer(std::move(name)) {}

    LayerKind kind() const override { return LayerKind::GlobalAvgPool; }
    Shape outputShape(
        const std::vector<Shape> &input_shapes) const override;
    Tensor forward(const std::vector<const Tensor *> &inputs,
                   ForwardHooks *hooks) const override;
};

} // namespace fastbcnn

#endif // FASTBCNN_NN_POOLING_HPP
