/**
 * @file
 * DAG network container: owns layers, infers shapes at construction
 * and evaluates forward passes with optional hooks.
 */

#ifndef FASTBCNN_NN_NETWORK_HPP
#define FASTBCNN_NN_NETWORK_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "layer.hpp"

namespace fastbcnn {

/** Identifier of a network node (insertion order). */
using NodeId = std::size_t;

/**
 * A feed-forward DAG of layers with a single input node.
 *
 * Nodes are appended in topological order (a node may only consume
 * previously added nodes or the input).  The output of the network is
 * the last node added.  Sequential networks are the special case where
 * every node consumes its predecessor.
 */
class Network
{
  public:
    /** Sentinel NodeId denoting the network input. */
    static constexpr NodeId inputNode = static_cast<NodeId>(-1);

    /**
     * @param name        model name (e.g. "B-LeNet-5")
     * @param input_shape CHW shape of the network input
     */
    Network(std::string name, Shape input_shape);

    Network(Network &&) = default;
    Network &operator=(Network &&) = default;

    /**
     * Append a layer consuming the given nodes.
     *
     * @param layer  the layer (ownership transferred); its name must be
     *               unique within the network
     * @param inputs producer nodes; defaults to {previous node} (or the
     *               network input for the first layer)
     * @return the new node's id
     */
    NodeId add(std::unique_ptr<Layer> layer,
               std::vector<NodeId> inputs = {});

    /**
     * Run a forward pass.
     *
     * @param input tensor matching the declared input shape
     * @param hooks optional dropout/capture hooks (may be nullptr)
     * @return the output of the last node
     */
    Tensor forward(const Tensor &input, ForwardHooks *hooks = nullptr)
        const;

    /** @return the model name. */
    const std::string &name() const { return name_; }
    /** @return declared input shape (CHW). */
    const Shape &inputShape() const { return inputShape_; }
    /** @return number of layer nodes. */
    std::size_t size() const { return nodes_.size(); }
    /** @return the layer at node @p id. */
    const Layer &layer(NodeId id) const;
    /** @return mutable layer at node @p id (for weight initialisation). */
    Layer &layer(NodeId id);
    /** @return producer node ids of node @p id. */
    const std::vector<NodeId> &inputsOf(NodeId id) const;
    /** @return the inferred output shape of node @p id. */
    const Shape &shapeOf(NodeId id) const;
    /** @return the output shape of the network (last node). */
    const Shape &outputShape() const;

    /**
     * Find a node by layer name.
     * @return the node id, or fatal() when absent.
     */
    NodeId findNode(const std::string &layer_name) const;

    /**
     * Find a node by layer name without terminating on a miss — the
     * error-returning boundary paths (tryLoadWeights, fault targeting)
     * use this to reject untrusted names gracefully.
     */
    std::optional<NodeId> tryFindNode(const std::string &layer_name)
        const noexcept;

    /** @return total multiply-accumulate count of one dense inference. */
    std::uint64_t totalMacs() const;

  private:
    struct Node {
        std::unique_ptr<Layer> layer;
        std::vector<NodeId> inputs;
        Shape shape;
    };

    std::string name_;
    Shape inputShape_;
    std::vector<Node> nodes_;
};

} // namespace fastbcnn

#endif // FASTBCNN_NN_NETWORK_HPP
