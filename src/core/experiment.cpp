#include "experiment.hpp"

#include <cmath>

#include "common/check.hpp"

namespace fastbcnn {

AggregateMetrics
aggregate(const std::vector<SimReport> &reports)
{
    AggregateMetrics m;
    if (reports.empty())
        return m;
    for (const SimReport &r : reports) {
        m.cyclesPerSample += r.cyclesPerSample;
        m.energyPerSampleNj += r.energyPerSampleNj;
        const double total = r.energy.total();
        if (total > 0.0) {
            m.convEnergyFraction += r.energy.convNj / total;
            m.predEnergyFraction += r.energy.predNj / total;
            m.centralEnergyFraction += r.energy.centralNj / total;
        }
        m.peIdleFraction += r.peIdleFraction;
        const double neurons = static_cast<double>(
            r.neuronsSkipped + r.neuronsComputed);
        if (neurons > 0.0) {
            m.skipRate += static_cast<double>(r.neuronsSkipped) /
                          neurons;
        }
    }
    const double n = static_cast<double>(reports.size());
    m.cyclesPerSample /= n;
    m.energyPerSampleNj /= n;
    m.convEnergyFraction /= n;
    m.predEnergyFraction /= n;
    m.centralEnergyFraction /= n;
    m.peIdleFraction /= n;
    m.skipRate /= n;
    return m;
}

Workload::Workload(const WorkloadConfig &cfg) : cfg_(cfg)
{
    ModelOptions mopts;
    mopts.dropRate = cfg.dropRate;
    mopts.widthMultiplier = cfg.width;
    mopts.numClasses = cfg.kind == ModelKind::LeNet5 ? 10 : 100;
    mopts.init.seed = cfg.seed * 77 + 5;

    EngineOptions eopts;
    eopts.mc.samples = cfg.samples;
    eopts.mc.dropRate = cfg.dropRate;
    eopts.mc.brng = cfg.brng;
    eopts.mc.seed = cfg.seed;
    eopts.optimizer.confidence = cfg.confidence;
    eopts.optimizer.samples = cfg.optimizerSamples;
    eopts.optimizer.dropRate = cfg.dropRate;
    eopts.optimizer.seed = cfg.seed + 13;

    Network net = buildModel(cfg.kind, mopts);

    // Closed-loop activation-sparsity calibration (DESIGN.md §2):
    // gives the synthetic weights the post-ReLU statistics of trained
    // networks before any experiment measures them.
    const bool mnist_like = cfg.kind == ModelKind::LeNet5;
    const Dataset probe_set = makeDataset(mnist_like, mopts.numClasses,
                                          2, cfg.seed + 3000);
    std::vector<Tensor> probes;
    for (const Example &e : probe_set.examples)
        probes.push_back(e.image);
    SparsityOptions sopts;
    sopts.seed = cfg.seed + 17;
    calibrateSparsity(net, probes, sopts);

    engine_ = std::make_unique<FastBcnnEngine>(std::move(net), eopts);
    const Dataset calib = makeDataset(mnist_like, mopts.numClasses,
                                      cfg.calibrationInputs,
                                      cfg.seed + 1000);
    std::vector<Tensor> calib_inputs;
    calib_inputs.reserve(calib.examples.size());
    for (const Example &e : calib.examples)
        calib_inputs.push_back(e.image);
    engine_->calibrate(calib_inputs);

    TraceOptions topts;
    topts.samples = cfg.samples;
    topts.dropRate = cfg.dropRate;
    topts.brng = cfg.brng;
    topts.seed = cfg.seed;
    topts.captureFunctional = cfg.captureFunctional;
    const Dataset eval = makeDataset(mnist_like, mopts.numClasses,
                                     cfg.evalInputs, cfg.seed + 2000);
    bundles_.reserve(eval.examples.size());
    for (const Example &e : eval.examples)
        bundles_.push_back(engine_->trace(e.image, topts));
}

std::vector<SimReport>
Workload::simulateAll(
    const std::function<SimReport(const InferenceTrace &)> &fn) const
{
    std::vector<SimReport> reports;
    reports.reserve(bundles_.size());
    for (const TraceBundle &b : bundles_)
        reports.push_back(fn(b.trace));
    return reports;
}

double
Workload::argmaxDisagreement() const
{
    if (!cfg_.captureFunctional) {
        fatal("accuracy metrics need captureFunctional = true in the "
              "workload configuration");
    }
    if (bundles_.empty())
        return 0.0;
    std::size_t disagree = 0;
    for (const TraceBundle &b : bundles_) {
        disagree += b.functional.fbArgmax != b.functional.exactArgmax
                        ? 1 : 0;
    }
    return static_cast<double>(disagree) /
           static_cast<double>(bundles_.size());
}

double
Workload::noiseFloorDisagreement() const
{
    if (!cfg_.captureFunctional) {
        fatal("accuracy metrics need captureFunctional = true in the "
              "workload configuration");
    }
    if (bundles_.empty())
        return 0.0;
    std::size_t disagree = 0;
    for (const TraceBundle &b : bundles_)
        disagree += b.functional.exactSplitDisagree ? 1 : 0;
    return static_cast<double>(disagree) /
           static_cast<double>(bundles_.size());
}

double
Workload::meanOutputError() const
{
    if (!cfg_.captureFunctional) {
        fatal("accuracy metrics need captureFunctional = true in the "
              "workload configuration");
    }
    if (bundles_.empty())
        return 0.0;
    double total = 0.0;
    for (const TraceBundle &b : bundles_) {
        const Tensor &a = b.functional.exactMean;
        const Tensor &c = b.functional.fbMean;
        double err = 0.0;
        for (std::size_t i = 0; i < a.numel(); ++i)
            err += std::abs(a.at(i) - c.at(i));
        total += err / static_cast<double>(a.numel());
    }
    return total / static_cast<double>(bundles_.size());
}

std::vector<BlockCensus>
Workload::census() const
{
    FASTBCNN_CHECK(!bundles_.empty(), "workload has no traces");
    std::vector<BlockCensus> acc = censusOf(bundles_[0].trace);
    for (std::size_t i = 1; i < bundles_.size(); ++i) {
        const auto c = censusOf(bundles_[i].trace);
        for (std::size_t b = 0; b < acc.size(); ++b) {
            acc[b].zeroRatio += c[b].zeroRatio;
            acc[b].unaffectedRatio += c[b].unaffectedRatio;
            acc[b].affectedRatio += c[b].affectedRatio;
            acc[b].unaffectedOfZero += c[b].unaffectedOfZero;
            acc[b].droppedRatio += c[b].droppedRatio;
            acc[b].predictedRatio += c[b].predictedRatio;
            acc[b].skipRatio += c[b].skipRatio;
            acc[b].predictionAccuracy += c[b].predictionAccuracy;
        }
    }
    const double n = static_cast<double>(bundles_.size());
    for (BlockCensus &b : acc) {
        b.zeroRatio /= n;
        b.unaffectedRatio /= n;
        b.affectedRatio /= n;
        b.unaffectedOfZero /= n;
        b.droppedRatio /= n;
        b.predictedRatio /= n;
        b.skipRatio /= n;
        b.predictionAccuracy /= n;
    }
    return acc;
}

} // namespace fastbcnn
