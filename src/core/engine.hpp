/**
 * @file
 * FastBcnnEngine — the library's front door.
 *
 * Wraps a Bayesian CNN with the complete Fast-BCNN pipeline: offline
 * threshold calibration (Algorithm 1), the pre-inference, T skipping
 * sample inferences, uncertainty estimation, and cycle/energy
 * simulation of the chosen accelerator configuration against the
 * skip-oblivious baseline.
 */

#ifndef FASTBCNN_CORE_ENGINE_HPP
#define FASTBCNN_CORE_ENGINE_HPP

#include <memory>
#include <optional>

#include "common/error.hpp"
#include "guard/guarded_runner.hpp"
#include "quant/quantize.hpp"
#include "sim/accelerator.hpp"

namespace fastbcnn {

/** Engine construction options. */
struct EngineOptions {
    /** MC-dropout sampling (T, p, BRNG, seed). */
    McOptions mc;
    /** Algorithm 1 parameters (p_cf, Th, Δs, tuning samples). */
    OptimizerOptions optimizer;
    /** Accelerator design point to simulate. */
    AcceleratorConfig config = fastBcnnConfig(64);
    /** Timing-model options (skip mode, sync model, shortcut). */
    SimOptions sim;
    /**
     * Runtime skip guardrails (off by default).  When enabled,
     * calibrate() constructs a SkipGuard over the tuned thresholds; a
     * tolerance of 0 resolves to 1 − p_cf, the mispredict budget the
     * thresholds were calibrated against.
     */
    GuardOptions guard;
};

/**
 * Validate every sub-option block of @p opts at the engine boundary.
 * @return ok, or the first InvalidArgument error, with context naming
 * the offending block (mc / optimizer / config).
 */
[[nodiscard]] Status validateEngineOptions(const EngineOptions &opts);

/** The outcome of one engine inference. */
struct EngineResult {
    /** Fast-BCNN functional prediction (with neuron skipping). */
    UncertaintySummary prediction;
    /** Exact MC-dropout reference on the same masks. */
    UncertaintySummary exactReference;
    /** True iff skipping left the argmax class unchanged. */
    bool argmaxAgrees = false;
    /** Timing/energy of the configured Fast-BCNN design. */
    SimReport fastBcnn;
    /** Timing/energy of the baseline on the same workload. */
    SimReport baseline;
    /** Neuron census of the run (Fig. 3/4 statistics). */
    std::vector<BlockCensus> census;
    /** fastBcnn vs baseline speedup. */
    double speedup = 0.0;
    /** fastBcnn vs baseline fractional energy reduction. */
    double energyReduction = 0.0;
};

/**
 * The Fast-BCNN execution engine.
 *
 * Non-copyable and non-movable: internal analyses hold pointers into
 * the owned network.
 */
class FastBcnnEngine
{
  public:
    /**
     * @param net  a BCNN (dropout after every conv); ownership moves in
     * @param opts engine configuration (must validate; see create()
     *             for the error-returning construction path)
     */
    explicit FastBcnnEngine(Network net, EngineOptions opts = {});

    FastBcnnEngine(const FastBcnnEngine &) = delete;
    FastBcnnEngine &operator=(const FastBcnnEngine &) = delete;

    /**
     * Error-returning construction: validates @p opts (and that the
     * network is non-trivial) before building, so a serving process
     * can reject a bad configuration instead of dying in the
     * constructor.
     */
    [[nodiscard]] static Expected<std::unique_ptr<FastBcnnEngine>> create(
        Network net, EngineOptions opts = {});

    /**
     * Offline stage: run Algorithm 1 on a calibration set.  Must be
     * called once before infer(); calling infer() first triggers an
     * automatic single-input self-calibration with a warning.
     */
    void calibrate(const std::vector<Tensor> &calibration_inputs);

    /**
     * Error-returning calibrate(): rejects an empty set or inputs of
     * the wrong shape instead of terminating.
     */
    [[nodiscard]] Status tryCalibrate(
        const std::vector<Tensor> &calibration_inputs);

    /** @return true once thresholds have been calibrated. */
    bool calibrated() const { return thresholds_.has_value(); }

    /**
     * Build the engine's int8 mirror: calibrate per-layer activation
     * ranges on @p calibration_inputs and quantize the owned network
     * (src/quant).  Called automatically by calibrate() when
     * EngineOptions::mc.precision is Int8; callable directly to add
     * int8 capability to a float-default engine.  On error the engine
     * keeps its previous quantized model (if any).
     */
    [[nodiscard]] Status tryQuantize(
        const std::vector<Tensor> &calibration_inputs);

    /**
     * Adopt quantized parameters from checkpointed QuantRecords
     * (validated against the owned network's topology) — the load
     * path mirror of tryQuantize(), used when a binary checkpoint
     * already carries a quantized-weights section.
     */
    [[nodiscard]] Status tryAdoptQuantRecords(
        const std::vector<QuantRecord> &records);

    /** @return true when an int8 mirror is ready to serve. */
    bool int8Available() const { return quantNet_ != nullptr; }

    /** @return the int8 mirror, or nullptr before tryQuantize(). */
    const quant::QuantizedNetwork *quantized() const
    {
        return quantNet_.get();
    }

    /** Run the full pipeline on one input. */
    EngineResult infer(const Tensor &input);

    /**
     * Error-returning infer(): rejects a wrong-shape input and an
     * uncalibrated engine (no silent self-calibration) instead of
     * warning / terminating.
     */
    [[nodiscard]] Expected<EngineResult> tryInfer(const Tensor &input);

    /**
     * Fault-isolating exact MC-dropout reference on the owned
     * network, using the engine's McOptions (including any FaultPlan,
     * quorum and deadline).  This is the serving-path entry point the
     * degradation census flows from; copy McResult::census into a
     * SimReport::degradation to report it beside timing results.
     */
    [[nodiscard]] Expected<McResult> tryMcReference(
        const Tensor &input) const;

    /**
     * Per-request overload: run the MC reference with caller-supplied
     * @p mc options instead of the engine defaults.  This is the
     * serving-path hook — the serve worker merges a request's
     * overrides (T, quorum, remaining deadline budget, fault plan)
     * into the replica's defaults and dispatches here, so one
     * calibrated engine replica can serve requests with heterogeneous
     * sampling policies.
     */
    [[nodiscard]] Expected<McResult> tryMcReference(
        const Tensor &input, const McOptions &mc) const;

    /**
     * Deterministic health-gate digest: the predictive mean of a
     * serial, fault-free, deadline-free MC reference on @p input with
     * exactly @p samples samples and @p seed.  Two replicas built
     * from the same checkpoint produce bit-identical digests, so the
     * model registry compares a candidate version's digest against a
     * recorded reference before swapping it live.
     */
    [[nodiscard]] Expected<std::vector<double>> tryReferenceDigest(
        const Tensor &input, std::size_t samples,
        std::uint64_t seed) const;

    /**
     * Guarded predictive MC inference (EngineOptions::guard must be
     * enabled and the engine calibrated): samples run in prediction
     * mode under the guard's effective thresholds with shadow
     * auditing; backoff levels persist across calls on the engine's
     * guard.  The default overload derives GuardedMcOptions from the
     * engine's McOptions (T, p, BRNG, seed, threads).
     */
    [[nodiscard]] Expected<GuardedMcResult> tryGuardedMc(
        const Tensor &input) const;

    /** Per-request overload with caller-supplied sampling options. */
    [[nodiscard]] Expected<GuardedMcResult> tryGuardedMc(
        const Tensor &input, const GuardedMcOptions &opts) const;

    /**
     * @return the engine's skip guard, or nullptr before calibration
     * or when EngineOptions::guard is disabled.
     */
    SkipGuard *guard() { return guard_.get(); }
    /** Const overload (snapshot access). */
    const SkipGuard *guard() const { return guard_.get(); }

    /**
     * Build (and return) the raw trace bundle of one input — the
     * benches use this to evaluate many accelerator configurations on
     * one captured workload.
     */
    TraceBundle trace(const Tensor &input,
                      std::optional<TraceOptions> opts = std::nullopt);

    /** @return the per-kernel thresholds (fatal before calibrate()). */
    const ThresholdSet &thresholds() const;

    /** @return the analysed topology. */
    const BcnnTopology &topology() const { return topo_; }

    /** @return the owned network. */
    const Network &network() const { return net_; }

    /** @return the engine options. */
    const EngineOptions &options() const { return opts_; }

    /** @return the Algorithm 1 per-block tuning reports. */
    const std::vector<BlockTuneReport> &tuneReports() const
    {
        return tuneReports_;
    }

  private:
    /** Algorithm 1 + guard construction (shared calibration body). */
    void calibrateThresholds(
        const std::vector<Tensor> &calibration_inputs);

    Network net_;
    EngineOptions opts_;
    BcnnTopology topo_;
    IndicatorSet indicators_;
    std::optional<ThresholdSet> thresholds_;
    std::vector<BlockTuneReport> tuneReports_;
    /** Constructed by calibrate() when EngineOptions::guard.enabled. */
    std::unique_ptr<SkipGuard> guard_;
    /** Int8 mirror; built by tryQuantize() / tryAdoptQuantRecords(). */
    std::unique_ptr<quant::QuantizedNetwork> quantNet_;
};

} // namespace fastbcnn

#endif // FASTBCNN_CORE_ENGINE_HPP
