#include "engine.hpp"

namespace fastbcnn {

Status
validateEngineOptions(const EngineOptions &opts)
{
    FASTBCNN_RETURN_IF_ERROR(validateMcOptions(opts.mc)
                                 .withContext("EngineOptions::mc"));
    FASTBCNN_RETURN_IF_ERROR(
        validateOptimizerOptions(opts.optimizer)
            .withContext("EngineOptions::optimizer"));
    FASTBCNN_RETURN_IF_ERROR(
        validateAcceleratorConfig(opts.config)
            .withContext("EngineOptions::config"));
    FASTBCNN_RETURN_IF_ERROR(
        validateGuardOptions(opts.guard)
            .withContext("EngineOptions::guard"));
    return Status::ok();
}

FastBcnnEngine::FastBcnnEngine(Network net, EngineOptions opts)
    : net_(std::move(net)), opts_(std::move(opts)), topo_(net_),
      indicators_(topo_)
{
    if (Status status = validateEngineOptions(opts_); !status.isOk())
        fatal("%s", status.toString().c_str());
    // Keep the optimizer's sampling consistent with inference unless
    // the caller configured it explicitly.
    if (opts_.optimizer.dropRate != opts_.mc.dropRate)
        opts_.optimizer.dropRate = opts_.mc.dropRate;
}

Expected<std::unique_ptr<FastBcnnEngine>>
FastBcnnEngine::create(Network net, EngineOptions opts)
{
    FASTBCNN_RETURN_IF_ERROR(
        validateEngineOptions(opts).withContext("creating engine"));
    if (net.size() == 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "network '%s' has no layers",
                      net.name().c_str());
    }
    // Options are valid, so the constructor cannot fatal() on them.
    return std::make_unique<FastBcnnEngine>(std::move(net),
                                            std::move(opts));
}

void
FastBcnnEngine::calibrateThresholds(
    const std::vector<Tensor> &calibration_inputs)
{
    OptimizeResult res = optimizeThresholds(topo_, indicators_,
                                            calibration_inputs,
                                            opts_.optimizer);
    thresholds_ = std::move(res.thresholds);
    tuneReports_ = std::move(res.reports);
    if (opts_.guard.enabled) {
        // Re-calibration replaces the guard: old backoff history was
        // measured against the previous thresholds.
        GuardOptions gopts = opts_.guard;
        if (gopts.tolerance == 0.0) {
            const double budget = 1.0 - opts_.optimizer.confidence;
            // p_cf = 1 leaves no mispredict budget; fall back to a
            // strict 1 % so the guard stays constructible.
            gopts.tolerance = budget > 0.0 ? budget : 0.01;
        }
        guard_ = std::make_unique<SkipGuard>(topo_, *thresholds_,
                                             gopts);
    }
}

void
FastBcnnEngine::calibrate(const std::vector<Tensor> &calibration_inputs)
{
    calibrateThresholds(calibration_inputs);
    if (opts_.mc.precision == Precision::Int8) {
        if (Status status = tryQuantize(calibration_inputs);
            !status.isOk()) {
            fatal("%s", status.toString().c_str());
        }
    }
}

Status
FastBcnnEngine::tryCalibrate(
    const std::vector<Tensor> &calibration_inputs)
{
    if (calibration_inputs.empty()) {
        return errorf(ErrorCode::InvalidArgument,
                      "calibration needs at least one input");
    }
    for (std::size_t i = 0; i < calibration_inputs.size(); ++i) {
        if (!(calibration_inputs[i].shape() == net_.inputShape())) {
            return errorf(
                ErrorCode::InvalidArgument,
                "calibration input %zu shape %s does not match "
                "network '%s' input %s", i,
                calibration_inputs[i].shape().toString().c_str(),
                net_.name().c_str(),
                net_.inputShape().toString().c_str());
        }
    }
    calibrateThresholds(calibration_inputs);
    if (opts_.mc.precision == Precision::Int8)
        FASTBCNN_RETURN_IF_ERROR(tryQuantize(calibration_inputs));
    return Status::ok();
}

const ThresholdSet &
FastBcnnEngine::thresholds() const
{
    if (!thresholds_)
        fatal("engine is not calibrated; call calibrate() first");
    return *thresholds_;
}

TraceBundle
FastBcnnEngine::trace(const Tensor &input,
                      std::optional<TraceOptions> opts)
{
    if (!thresholds_) {
        warn("engine not calibrated; self-calibrating on the inference "
             "input (prefer an explicit calibration set)");
        calibrate({input});
    }
    TraceOptions topts;
    if (opts) {
        topts = *opts;
    } else {
        topts.samples = opts_.mc.samples;
        topts.dropRate = opts_.mc.dropRate;
        topts.brng = opts_.mc.brng;
        topts.seed = opts_.mc.seed;
        // Default traces run under the engine's guard (when enabled)
        // so drift observed while tracing feeds the backoff policy;
        // explicit TraceOptions choose their own guard (or none).
        topts.guard = guard_.get();
    }
    return buildTrace(topo_, indicators_, *thresholds_, input, topts);
}

EngineResult
FastBcnnEngine::infer(const Tensor &input)
{
    TraceBundle bundle = trace(input);

    EngineResult result;
    result.prediction = bundle.functional.fbSummary;
    result.exactReference = bundle.functional.exactSummary;
    result.argmaxAgrees = bundle.functional.fbArgmax ==
                          bundle.functional.exactArgmax;
    result.fastBcnn = simulateFastBcnn(bundle.trace, opts_.config,
                                       opts_.sim);
    result.baseline = simulateBaseline(bundle.trace, baselineConfig(),
                                       opts_.sim.energy);
    result.census = censusOf(bundle.trace);
    result.speedup = result.fastBcnn.speedupOver(result.baseline);
    result.energyReduction =
        result.fastBcnn.energyReductionOver(result.baseline);
    return result;
}

Expected<EngineResult>
FastBcnnEngine::tryInfer(const Tensor &input)
{
    if (!(input.shape() == net_.inputShape())) {
        return errorf(ErrorCode::InvalidArgument,
                      "input shape %s does not match network '%s' "
                      "input %s", input.shape().toString().c_str(),
                      net_.name().c_str(),
                      net_.inputShape().toString().c_str());
    }
    if (!calibrated()) {
        return errorf(ErrorCode::InvalidArgument,
                      "engine is not calibrated; call tryCalibrate() "
                      "before tryInfer()");
    }
    return infer(input);
}

Status
FastBcnnEngine::tryQuantize(const std::vector<Tensor> &calibration_inputs)
{
    Expected<quant::CalibrationProfile> profile =
        quant::tryCalibrateActivations(net_, calibration_inputs);
    if (!profile.hasValue()) {
        return std::move(profile).takeError().withContext(
            "quantizing engine");
    }
    Expected<quant::QuantizedNetwork> qnet =
        quant::QuantizedNetwork::build(net_, profile.value());
    if (!qnet.hasValue()) {
        return std::move(qnet).takeError().withContext(
            "quantizing engine");
    }
    quantNet_ = std::make_unique<quant::QuantizedNetwork>(
        std::move(qnet.value()));
    return Status::ok();
}

Status
FastBcnnEngine::tryAdoptQuantRecords(
    const std::vector<QuantRecord> &records)
{
    Expected<quant::QuantizedNetwork> qnet =
        quant::QuantizedNetwork::fromRecords(net_, records);
    if (!qnet.hasValue()) {
        return std::move(qnet).takeError().withContext(
            "adopting checkpointed quant records");
    }
    quantNet_ = std::make_unique<quant::QuantizedNetwork>(
        std::move(qnet.value()));
    return Status::ok();
}

Expected<McResult>
FastBcnnEngine::tryMcReference(const Tensor &input) const
{
    return tryMcReference(input, opts_.mc);
}

Expected<McResult>
FastBcnnEngine::tryMcReference(const Tensor &input,
                               const McOptions &mc) const
{
    if (mc.precision == Precision::Int8) {
        if (!int8Available()) {
            return errorf(ErrorCode::InvalidArgument,
                          "int8 inference requested but engine '%s' "
                          "has no quantized model; call tryQuantize() "
                          "first", net_.name().c_str());
        }
        ForwardTarget target;
        const quant::QuantizedNetwork *qnet = quantNet_.get();
        target.forward = [qnet](const Tensor &in,
                                ForwardHooks *hooks) {
            return qnet->forward(in, hooks);
        };
        target.name = net_.name();
        target.inputShape = net_.inputShape();
        return tryRunMcDropoutWith(target, input, mc);
    }
    return tryRunMcDropout(net_, input, mc);
}

Expected<std::vector<double>>
FastBcnnEngine::tryReferenceDigest(const Tensor &input,
                                   std::size_t samples,
                                   std::uint64_t seed) const
{
    McOptions mc = opts_.mc;
    mc.samples = samples == 0 ? opts_.mc.samples : samples;
    mc.seed = seed;
    mc.threads = 1;       // serial: digest must be machine-independent
    mc.recordMasks = false;
    mc.quorum = mc.samples;  // a digest over casualties is meaningless
    mc.deadlineMs = 0.0;
    mc.faults = nullptr;
    Expected<McResult> result = tryMcReference(input, mc);
    if (!result.hasValue()) {
        return std::move(result).takeError().withContext(
            "computing reference digest");
    }
    const Tensor &mean = result.value().summary.mean;
    std::vector<double> digest(mean.numel());
    for (std::size_t i = 0; i < mean.numel(); ++i)
        digest[i] = mean.at(i);
    return digest;
}

Expected<GuardedMcResult>
FastBcnnEngine::tryGuardedMc(const Tensor &input) const
{
    GuardedMcOptions gopts;
    gopts.samples = opts_.mc.samples;
    gopts.dropRate = opts_.mc.dropRate;
    gopts.brng = opts_.mc.brng;
    gopts.seed = opts_.mc.seed;
    gopts.threads = opts_.mc.threads;
    return tryGuardedMc(input, gopts);
}

Expected<GuardedMcResult>
FastBcnnEngine::tryGuardedMc(const Tensor &input,
                             const GuardedMcOptions &opts) const
{
    if (!calibrated()) {
        return errorf(ErrorCode::InvalidArgument,
                      "engine is not calibrated; call tryCalibrate() "
                      "before tryGuardedMc()");
    }
    if (guard_ == nullptr) {
        return errorf(ErrorCode::InvalidArgument,
                      "EngineOptions::guard is disabled on engine "
                      "'%s'; enable it before calibrating to use "
                      "guarded inference", net_.name().c_str());
    }
    return tryRunGuardedPredictive(topo_, indicators_, *guard_, input,
                                   opts);
}

} // namespace fastbcnn
