#include "engine.hpp"

namespace fastbcnn {

FastBcnnEngine::FastBcnnEngine(Network net, EngineOptions opts)
    : net_(std::move(net)), opts_(std::move(opts)), topo_(net_),
      indicators_(topo_)
{
    // Keep the optimizer's sampling consistent with inference unless
    // the caller configured it explicitly.
    if (opts_.optimizer.dropRate != opts_.mc.dropRate)
        opts_.optimizer.dropRate = opts_.mc.dropRate;
}

void
FastBcnnEngine::calibrate(const std::vector<Tensor> &calibration_inputs)
{
    OptimizeResult res = optimizeThresholds(topo_, indicators_,
                                            calibration_inputs,
                                            opts_.optimizer);
    thresholds_ = std::move(res.thresholds);
    tuneReports_ = std::move(res.reports);
}

const ThresholdSet &
FastBcnnEngine::thresholds() const
{
    if (!thresholds_)
        fatal("engine is not calibrated; call calibrate() first");
    return *thresholds_;
}

TraceBundle
FastBcnnEngine::trace(const Tensor &input,
                      std::optional<TraceOptions> opts)
{
    if (!thresholds_) {
        warn("engine not calibrated; self-calibrating on the inference "
             "input (prefer an explicit calibration set)");
        calibrate({input});
    }
    TraceOptions topts;
    if (opts) {
        topts = *opts;
    } else {
        topts.samples = opts_.mc.samples;
        topts.dropRate = opts_.mc.dropRate;
        topts.brng = opts_.mc.brng;
        topts.seed = opts_.mc.seed;
    }
    return buildTrace(topo_, indicators_, *thresholds_, input, topts);
}

EngineResult
FastBcnnEngine::infer(const Tensor &input)
{
    TraceBundle bundle = trace(input);

    EngineResult result;
    result.prediction = bundle.functional.fbSummary;
    result.exactReference = bundle.functional.exactSummary;
    result.argmaxAgrees = bundle.functional.fbArgmax ==
                          bundle.functional.exactArgmax;
    result.fastBcnn = simulateFastBcnn(bundle.trace, opts_.config,
                                       opts_.sim);
    result.baseline = simulateBaseline(bundle.trace, baselineConfig(),
                                       opts_.sim.energy);
    result.census = censusOf(bundle.trace);
    result.speedup = result.fastBcnn.speedupOver(result.baseline);
    result.energyReduction =
        result.fastBcnn.energyReductionOver(result.baseline);
    return result;
}

} // namespace fastbcnn
