/**
 * @file
 * Shared experiment harness for the benches: prepares a (model,
 * dataset, thresholds) workload once and hands out cached traces so
 * every accelerator configuration is evaluated on identical inputs.
 */

#ifndef FASTBCNN_CORE_EXPERIMENT_HPP
#define FASTBCNN_CORE_EXPERIMENT_HPP

#include <functional>
#include <memory>

#include "data/synthetic.hpp"
#include "engine.hpp"
#include "models/zoo.hpp"

namespace fastbcnn {

/** Everything needed to reproduce one experiment's workload. */
struct WorkloadConfig {
    ModelKind kind = ModelKind::LeNet5;
    /** Channel width; benches default to scaled nets (DESIGN.md §6.4). */
    double width = 1.0;
    double dropRate = 0.3;
    std::size_t samples = 50;       ///< T per MC inference
    double confidence = 0.68;       ///< p_cf for Algorithm 1
    std::size_t optimizerSamples = 6;
    std::size_t calibrationInputs = 1;
    std::size_t evalInputs = 1;
    std::uint64_t seed = 1;
    BrngKind brng = BrngKind::Lfsr;
    /**
     * Capture the functional Fast-BCNN outputs (needed for the
     * accuracy metrics; ~35 % slower to build).  Timing-only
     * experiments disable it.
     */
    bool captureFunctional = true;
};

/** Scalar metrics aggregated over a workload's evaluation inputs. */
struct AggregateMetrics {
    double cyclesPerSample = 0.0;
    double energyPerSampleNj = 0.0;
    double convEnergyFraction = 0.0;
    double predEnergyFraction = 0.0;
    double centralEnergyFraction = 0.0;
    double peIdleFraction = 0.0;
    double skipRate = 0.0;  ///< skipped / (skipped + computed)
};

/** Average the scalar metrics of per-input reports. */
AggregateMetrics aggregate(const std::vector<SimReport> &reports);

/**
 * A prepared workload: built model, calibrated thresholds and one
 * cached trace bundle per evaluation input.
 */
class Workload
{
  public:
    /** Build, calibrate and trace; this is the expensive step. */
    explicit Workload(const WorkloadConfig &cfg);

    Workload(const Workload &) = delete;
    Workload &operator=(const Workload &) = delete;

    /** @return the workload configuration. */
    const WorkloadConfig &config() const { return cfg_; }

    /** @return the engine (network, topology, thresholds). */
    FastBcnnEngine &engine() { return *engine_; }

    /** @return cached trace bundles, one per evaluation input. */
    const std::vector<TraceBundle> &bundles() const { return bundles_; }

    /**
     * Run a timing model over every cached trace.
     * @param fn maps one trace to one report
     */
    std::vector<SimReport>
    simulateAll(const std::function<SimReport(const InferenceTrace &)>
                    &fn) const;

    /**
     * Fraction of evaluation inputs whose Fast-BCNN argmax differs
     * from the exact MC-dropout argmax — the accuracy-loss proxy
     * (upper bound on classification accuracy loss; DESIGN.md §2).
     */
    double argmaxDisagreement() const;

    /**
     * Fraction of evaluation inputs whose exact MC estimator flips
     * its own argmax between the two halves of its samples — the
     * noise floor against which argmaxDisagreement() must be read.
     */
    double noiseFloorDisagreement() const;

    /** Mean absolute difference of the averaged output vectors. */
    double meanOutputError() const;

    /** Census averaged across evaluation inputs. */
    std::vector<BlockCensus> census() const;

  private:
    WorkloadConfig cfg_;
    std::unique_ptr<FastBcnnEngine> engine_;
    std::vector<TraceBundle> bundles_;
};

/**
 * Paper-vs-measured row helper: "paper" column values come straight
 * from the publication, "ours" from the simulation.
 */
struct ComparisonRow {
    std::string experiment;
    std::string metric;
    std::string paper;
    std::string measured;
};

} // namespace fastbcnn

#endif // FASTBCNN_CORE_EXPERIMENT_HPP
