/**
 * @file
 * The self-healing skip guard: per-kernel mispredict-rate estimators
 * fed by the shadow audit (audit.hpp), plus a backoff policy that
 * moves a misbehaving kernel's threshold α toward conservative — and
 * ultimately disables its prediction — when the audited mispredict
 * rate is confidently above the tolerance the thresholds were
 * calibrated for (1 − p_cf).  Hysteresis-gated recovery probes step α
 * back toward the calibrated value once the rate subsides.
 *
 * Decisions are made at fixed sample-count boundaries (decision
 * rounds) over audits folded in ascending sample order, so a guarded
 * run is bit-identical for every thread count.
 */

#ifndef FASTBCNN_GUARD_GUARD_HPP
#define FASTBCNN_GUARD_GUARD_HPP

#include <mutex>

#include "audit.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "skip/thresholds.hpp"

namespace fastbcnn {

/** Guardrail policy configuration. */
struct GuardOptions {
    /** Master switch; off = no guard is constructed by the engine. */
    bool enabled = false;
    /** Shadow-audit sampling (rate 0 = thresholds never adapt). */
    AuditOptions audit;
    /**
     * Mispredict-rate tolerance.  0 means "derive from calibration":
     * the engine substitutes 1 − p_cf, the mispredict budget the
     * offline optimizer tuned the thresholds to.
     */
    double tolerance = 0.0;
    /** Samples per decision round (policy acts at round boundaries). */
    std::size_t decisionInterval = 8;
    /** Minimum audited neurons before a kernel's rate is trusted. */
    std::uint64_t minAudited = 64;
    /** Normal quantile for the Wilson interval (1.96 ~ 95 %). */
    double wilsonZ = 1.96;
    /** EWMA weight of the newest round in the rate estimators. */
    double ewmaAlpha = 0.2;
    /** Rounds a kernel must hold after any α change (hysteresis). */
    std::size_t cooldownRounds = 4;
    /** Cooldown multiplier applied per repeated backoff (capped). */
    std::size_t cooldownGrowth = 2;
    /**
     * Recovery requires the Wilson upper bound below tolerance ×
     * recoverFraction — strictly harder than the trip condition, so
     * the policy cannot oscillate on a borderline rate.
     */
    double recoverFraction = 0.5;
};

/**
 * Validate @p opts at the API boundary.
 * @return ok, or an InvalidArgument error naming the bad value.
 */
Status validateGuardOptions(const GuardOptions &opts);

/** What a guard decision did to a kernel. */
enum class GuardEventKind {
    Backoff,  ///< α halved toward conservative (still predicting)
    Disable,  ///< α reached 0: prediction off for this kernel
    Probe,    ///< recovery probe: α stepped back up, under watch
    Recover   ///< α restored to its calibrated value
};

/** @return a stable display name for @p kind. */
const char *guardEventKindName(GuardEventKind kind);

/** One guard decision, recorded for tracing and tests. */
struct GuardEvent {
    std::uint64_t sample = 0;  ///< samples seen when decided
    NodeId conv = 0;
    std::size_t kernel = 0;
    GuardEventKind kind = GuardEventKind::Backoff;
    int fromAlpha = 0;
    int toAlpha = 0;
    double mispredictRate = 0.0;  ///< lifetime rate at decision time
    double wilsonLower = 0.0;     ///< trip evidence (Backoff/Disable)
};

/** Point-in-time guard status of one kernel. */
struct KernelGuardStatus {
    NodeId conv = 0;
    std::size_t kernel = 0;
    int calibratedAlpha = 0;
    int currentAlpha = 0;
    std::size_t backoffLevel = 0;    ///< α = calibrated >> level
    std::uint64_t audited = 0;
    std::uint64_t mispredicted = 0;
    double mispredictRate = 0.0;
    double ewmaRate = 0.0;
    double wilsonLower = 0.0;
    double wilsonUpper = 0.0;
    bool healthy = true;             ///< current == calibrated
};

/** Snapshot of a guard's whole state (health reporting). */
struct GuardSnapshot {
    double tolerance = 0.0;
    std::uint64_t samplesSeen = 0;
    std::uint64_t auditedNeurons = 0;
    std::uint64_t mispredictedNeurons = 0;
    std::uint64_t backoffs = 0;
    std::uint64_t disables = 0;
    std::uint64_t probes = 0;
    std::uint64_t recoveries = 0;
    std::size_t degradedKernels = 0;
    std::vector<KernelGuardStatus> kernels;
};

/**
 * Merge snapshots from several guards (the serving layer's per-worker
 * engine replicas): counters sum, per-kernel tallies merge by
 * (conv, kernel) with interval bounds recomputed from the aggregate,
 * and the reported α is the most conservative across replicas.
 */
GuardSnapshot mergeGuardSnapshots(
    const std::vector<GuardSnapshot> &parts);

/**
 * The guard itself: owns the effective thresholds (starting at the
 * calibrated set), accumulates per-kernel audit tallies, and runs the
 * backoff/recovery policy at decision-round boundaries.
 *
 * Thread-safe (internal mutex); deterministic given the onSampleAudit
 * call order.  Runners therefore fold audits in ascending sample
 * order at round boundaries — see guarded_runner.cpp.
 */
class SkipGuard
{
  public:
    /**
     * @param topo       analysed BCNN (kernel enumeration)
     * @param calibrated the offline-optimized threshold set
     * @param opts       validated policy options; tolerance must be
     *                   resolved (> 0) by the caller
     */
    SkipGuard(const BcnnTopology &topo, ThresholdSet calibrated,
              const GuardOptions &opts);

    /** @return the policy options (tolerance resolved). */
    const GuardOptions &options() const { return opts_; }

    /** @return a consistent copy of the effective thresholds. */
    ThresholdSet effectiveThresholds() const;

    /**
     * Fold one sample's audit tallies; every decisionInterval-th call
     * runs the policy over the accumulated round.  Call in ascending
     * sample order for bit-identical runs.
     */
    void onSampleAudit(const SampleAudit &audit);

    /** @return a consistent point-in-time snapshot. */
    GuardSnapshot snapshot() const;

    /** @return total decisions recorded so far. */
    std::size_t eventCount() const;

    /** @return events [first, end) — "what happened since". */
    std::vector<GuardEvent> eventsSince(std::size_t first) const;

    /** @return the guard's counter group (trace/diagnostics sink). */
    const StatGroup &stats() const { return stats_; }

  private:
    /** Mutable per-kernel policy state. */
    struct KernelState {
        int calibrated = 0;
        int current = 0;
        std::size_t level = 0;         ///< current = calibrated >> level
        RateEstimator estimator;
        std::uint64_t roundAudited = 0;
        std::uint64_t roundMispredicted = 0;
        std::uint64_t lifetimeAudited = 0;
        std::uint64_t lifetimeMispredicted = 0;
        std::size_t cooldown = 0;      ///< rounds until change allowed
        std::size_t penalty = 1;       ///< cooldown escalation factor
    };

    void decideLocked();
    void recordEventLocked(KernelState &st, NodeId conv,
                           std::size_t kernel, GuardEventKind kind,
                           int from, double lower);

    mutable std::mutex mutex_;
    GuardOptions opts_;
    ThresholdSet calibrated_;
    ThresholdSet current_;
    std::map<NodeId, std::vector<KernelState>> kernels_;
    std::vector<GuardEvent> events_;
    std::uint64_t samplesSeen_ = 0;
    StatGroup stats_{"guard"};
};

} // namespace fastbcnn

#endif // FASTBCNN_GUARD_GUARD_HPP
