#include "guarded_runner.hpp"

#include <atomic>
#include <thread>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace fastbcnn {

namespace {

/** One sample's private result, filled by its worker lane. */
struct GuardedSlot {
    Tensor output;
    SampleAudit audit;
    std::uint64_t predictedNeurons = 0;
};

} // namespace

Status
validateGuardedMcOptions(const GuardedMcOptions &opts)
{
    if (opts.samples == 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "GuardedMcOptions::samples: need at least one "
                      "MC sample (got 0)");
    }
    if (!(opts.dropRate >= 0.0 && opts.dropRate < 1.0)) {
        return errorf(ErrorCode::InvalidArgument,
                      "GuardedMcOptions::dropRate %g outside [0, 1)",
                      opts.dropRate);
    }
    if (opts.threads > kMaxMcThreads) {
        return errorf(ErrorCode::InvalidArgument,
                      "GuardedMcOptions::threads %zu exceeds the "
                      "%zu-thread ceiling", opts.threads,
                      kMaxMcThreads);
    }
    return Status::ok();
}

Expected<GuardedMcResult>
tryRunGuardedPredictive(const BcnnTopology &topo,
                        const IndicatorSet &indicators,
                        SkipGuard &guard, const Tensor &input,
                        const GuardedMcOptions &opts)
{
    FASTBCNN_RETURN_IF_ERROR(validateGuardedMcOptions(opts));
    const Network &net = topo.network();
    if (!(input.shape() == net.inputShape())) {
        return errorf(ErrorCode::InvalidArgument,
                      "input shape %s does not match network '%s' "
                      "input %s", input.shape().toString().c_str(),
                      net.name().c_str(),
                      net.inputShape().toString().c_str());
    }

    GuardedMcResult result;
    result.preOutput = net.forward(input, nullptr);
    const ZeroMaps zero_maps = computeZeroMaps(topo, input);
    const AuditOptions &audit_opts = guard.options().audit;
    const std::size_t interval = guard.options().decisionInterval;
    const std::size_t events_before = guard.eventCount();
    result.outputs.reserve(opts.samples);

    for (std::size_t round_start = 0; round_start < opts.samples;
         round_start += interval) {
        const std::size_t count =
            std::min(interval, opts.samples - round_start);
        // Thresholds are frozen for the whole round: every sample in
        // it sees the same alphas no matter which lane runs it.
        const ThresholdSet thresholds = guard.effectiveThresholds();
        std::vector<GuardedSlot> slots(count);

        const auto runOne = [&](std::size_t i) {
            const std::size_t t = round_start + i;
            auto brng = makeBrng(opts.brng, opts.dropRate,
                                 sampleSeed(opts.seed, t));
            const MaskSet masks = sampleMasks(net, *brng);
            PredictiveOptions popts;
            popts.captureNodeOutputs = audit_opts.rate > 0.0;
            PredictiveResult pres = predictiveForward(
                topo, indicators, zero_maps, thresholds, input, masks,
                popts);
            GuardedSlot &slot = slots[i];
            slot.predictedNeurons = pres.predictedNeurons;
            if (audit_opts.rate > 0.0) {
                slot.audit = auditPredictedNeurons(
                    topo, input, pres.nodeOutputs, pres.predicted,
                    audit_opts, t);
            } else {
                slot.audit.sample = t;
            }
            slot.output = std::move(pres.output);
        };

        const std::size_t workers =
            resolveMcThreads(opts.threads, count);
        if (workers <= 1) {
            for (std::size_t i = 0; i < count; ++i)
                runOne(i);
        } else {
            std::atomic<std::size_t> next{0};
            std::vector<std::thread> pool;
            pool.reserve(workers);
            for (std::size_t w = 0; w < workers; ++w) {
                pool.emplace_back([&]() {
                    for (std::size_t i = next.fetch_add(1); i < count;
                         i = next.fetch_add(1)) {
                        runOne(i);
                    }
                });
            }
            for (std::thread &worker : pool)
                worker.join();
        }

        // Fold in ascending sample order: the guard decides at round
        // boundaries, so the decision sees a deterministic prefix.
        for (std::size_t i = 0; i < count; ++i) {
            GuardedSlot &slot = slots[i];
            result.predictedNeurons += slot.predictedNeurons;
            result.audited += slot.audit.audited();
            result.mispredicted += slot.audit.mispredicted();
            guard.onSampleAudit(slot.audit);
            result.outputs.push_back(std::move(slot.output));
        }
    }

    result.summary = summarizeSamples(result.outputs);
    result.events = guard.eventsSince(events_before);
    result.finalSnapshot = guard.snapshot();
    return result;
}

} // namespace fastbcnn
