#include "guard.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace fastbcnn {

namespace {

/** Cooldown-penalty ceiling: escalation stops doubling here. */
constexpr std::size_t kPenaltyCeiling = 64;

} // namespace

Status
validateGuardOptions(const GuardOptions &opts)
{
    if (!(opts.audit.rate >= 0.0 && opts.audit.rate <= 1.0)) {
        return errorf(ErrorCode::InvalidArgument,
                      "GuardOptions::audit.rate %g outside [0, 1]",
                      opts.audit.rate);
    }
    if (!(opts.tolerance >= 0.0 && opts.tolerance < 1.0)) {
        return errorf(ErrorCode::InvalidArgument,
                      "GuardOptions::tolerance %g outside [0, 1) "
                      "(0 = derive from calibration)", opts.tolerance);
    }
    if (opts.decisionInterval == 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "GuardOptions::decisionInterval must be >= 1");
    }
    if (opts.minAudited == 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "GuardOptions::minAudited must be >= 1 (a rate "
                      "over zero trials is meaningless)");
    }
    if (!(opts.wilsonZ > 0.0)) {
        return errorf(ErrorCode::InvalidArgument,
                      "GuardOptions::wilsonZ %g must be positive",
                      opts.wilsonZ);
    }
    if (!(opts.ewmaAlpha > 0.0 && opts.ewmaAlpha <= 1.0)) {
        return errorf(ErrorCode::InvalidArgument,
                      "GuardOptions::ewmaAlpha %g outside (0, 1]",
                      opts.ewmaAlpha);
    }
    if (opts.cooldownGrowth == 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "GuardOptions::cooldownGrowth must be >= 1");
    }
    if (!(opts.recoverFraction > 0.0 && opts.recoverFraction <= 1.0)) {
        return errorf(ErrorCode::InvalidArgument,
                      "GuardOptions::recoverFraction %g outside (0, 1]",
                      opts.recoverFraction);
    }
    return Status::ok();
}

const char *
guardEventKindName(GuardEventKind kind)
{
    switch (kind) {
      case GuardEventKind::Backoff: return "Backoff";
      case GuardEventKind::Disable: return "Disable";
      case GuardEventKind::Probe:   return "Probe";
      case GuardEventKind::Recover: return "Recover";
    }
    return "Unknown";
}

GuardSnapshot
mergeGuardSnapshots(const std::vector<GuardSnapshot> &parts)
{
    GuardSnapshot merged;
    std::map<std::pair<NodeId, std::size_t>, KernelGuardStatus> byKey;
    for (const GuardSnapshot &part : parts) {
        merged.tolerance = part.tolerance;
        merged.samplesSeen += part.samplesSeen;
        merged.auditedNeurons += part.auditedNeurons;
        merged.mispredictedNeurons += part.mispredictedNeurons;
        merged.backoffs += part.backoffs;
        merged.disables += part.disables;
        merged.probes += part.probes;
        merged.recoveries += part.recoveries;
        for (const KernelGuardStatus &k : part.kernels) {
            auto [it, inserted] =
                byKey.emplace(std::make_pair(k.conv, k.kernel), k);
            if (inserted)
                continue;
            KernelGuardStatus &acc = it->second;
            acc.audited += k.audited;
            acc.mispredicted += k.mispredicted;
            // Report the most conservative replica: the serving layer
            // cares about the worst-case degradation.
            if (k.currentAlpha < acc.currentAlpha)
                acc.currentAlpha = k.currentAlpha;
            acc.backoffLevel = std::max(acc.backoffLevel,
                                        k.backoffLevel);
            acc.ewmaRate = std::max(acc.ewmaRate, k.ewmaRate);
            acc.healthy = acc.healthy && k.healthy;
        }
    }
    merged.kernels.reserve(byKey.size());
    for (auto &[key, k] : byKey) {
        if (k.audited > 0) {
            k.mispredictRate = static_cast<double>(k.mispredicted) /
                               static_cast<double>(k.audited);
        }
        k.wilsonLower = wilsonLowerBound(k.mispredicted, k.audited,
                                         1.96);
        k.wilsonUpper = wilsonUpperBound(k.mispredicted, k.audited,
                                         1.96);
        if (!k.healthy)
            ++merged.degradedKernels;
        merged.kernels.push_back(k);
    }
    return merged;
}

SkipGuard::SkipGuard(const BcnnTopology &topo, ThresholdSet calibrated,
                     const GuardOptions &opts)
    : opts_(opts), calibrated_(std::move(calibrated)),
      current_(calibrated_)
{
    FASTBCNN_CHECK(opts_.tolerance > 0.0,
                   "SkipGuard needs a resolved tolerance (> 0); the "
                   "engine derives 1 - p_cf before construction");
    if (Status status = validateGuardOptions(opts_); !status.isOk())
        fatal("%s", status.toString().c_str());
    for (const ConvBlock &b : topo.blocks()) {
        const std::vector<int> &alphas = calibrated_.layer(b.conv);
        std::vector<KernelState> states(alphas.size());
        for (std::size_t m = 0; m < alphas.size(); ++m) {
            states[m].calibrated = alphas[m];
            states[m].current = alphas[m];
            states[m].estimator = RateEstimator(opts_.ewmaAlpha);
        }
        kernels_.emplace(b.conv, std::move(states));
    }
}

ThresholdSet
SkipGuard::effectiveThresholds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return current_;
}

void
SkipGuard::onSampleAudit(const SampleAudit &audit)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++samplesSeen_;
    std::uint64_t audited = 0;
    std::uint64_t mispredicted = 0;
    for (const auto &[conv, tallies] : audit.kernels) {
        auto it = kernels_.find(conv);
        if (it == kernels_.end())
            continue;
        std::vector<KernelState> &states = it->second;
        const std::size_t n = std::min(states.size(), tallies.size());
        for (std::size_t m = 0; m < n; ++m) {
            states[m].roundAudited += tallies[m].audited;
            states[m].roundMispredicted += tallies[m].mispredicted;
            audited += tallies[m].audited;
            mispredicted += tallies[m].mispredicted;
        }
    }
    stats_.add("samples");
    stats_.add("audited", audited);
    stats_.add("mispredicted", mispredicted);
    if (samplesSeen_ % opts_.decisionInterval == 0)
        decideLocked();
}

void
SkipGuard::recordEventLocked(KernelState &st, NodeId conv,
                             std::size_t kernel, GuardEventKind kind,
                             int from, double lower)
{
    GuardEvent ev;
    ev.sample = samplesSeen_;
    ev.conv = conv;
    ev.kernel = kernel;
    ev.kind = kind;
    ev.fromAlpha = from;
    ev.toAlpha = st.current;
    ev.mispredictRate = st.estimator.rate();
    ev.wilsonLower = lower;
    events_.push_back(ev);
    switch (kind) {
      case GuardEventKind::Backoff: stats_.add("backoffs"); break;
      case GuardEventKind::Disable: stats_.add("disables"); break;
      case GuardEventKind::Probe:   stats_.add("probes"); break;
      case GuardEventKind::Recover: stats_.add("recoveries"); break;
    }
}

void
SkipGuard::decideLocked()
{
    std::size_t degraded = 0;
    for (auto &[conv, states] : kernels_) {
        for (std::size_t m = 0; m < states.size(); ++m) {
            KernelState &st = states[m];
            st.estimator.observe(st.roundMispredicted,
                                 st.roundAudited);
            st.lifetimeAudited += st.roundAudited;
            st.lifetimeMispredicted += st.roundMispredicted;
            st.roundAudited = 0;
            st.roundMispredicted = 0;

            // A kernel calibrated to alpha = 0 never predicts and
            // never produces audit signal; nothing to manage.
            if (st.calibrated <= 0)
                continue;
            if (st.cooldown > 0) {
                --st.cooldown;
                if (st.current != st.calibrated)
                    ++degraded;
                continue;
            }

            const bool confident =
                st.estimator.trials() >= opts_.minAudited;
            const double lower =
                st.estimator.lowerBound(opts_.wilsonZ);
            const double upper =
                st.estimator.upperBound(opts_.wilsonZ);
            const int from = st.current;

            if (st.current > 0 && confident &&
                lower > opts_.tolerance) {
                // Confidently over tolerance: halve toward
                // conservative; at 0 the kernel's prediction is off.
                ++st.level;
                st.current = st.calibrated >> st.level;
                current_.set(conv, m, st.current);
                recordEventLocked(st, conv, m,
                                  st.current == 0
                                      ? GuardEventKind::Disable
                                      : GuardEventKind::Backoff,
                                  from, lower);
                st.cooldown = opts_.cooldownRounds * st.penalty;
                st.penalty = std::min(st.penalty *
                                          opts_.cooldownGrowth,
                                      kPenaltyCeiling);
                st.estimator.reset();
            } else if (st.current > 0 && st.level > 0 && confident &&
                       upper < opts_.tolerance *
                                   opts_.recoverFraction) {
                // Confidently well under tolerance (hysteresis gap):
                // probe one step back toward the calibrated alpha.
                --st.level;
                st.current = st.calibrated >> st.level;
                current_.set(conv, m, st.current);
                recordEventLocked(st, conv, m,
                                  st.level == 0
                                      ? GuardEventKind::Recover
                                      : GuardEventKind::Probe,
                                  from, lower);
                st.cooldown = opts_.cooldownRounds;
                st.estimator.reset();
            } else if (st.current == 0) {
                // Disabled kernels produce no audit signal, so
                // recovery must probe blind: re-enable a conservative
                // alpha and let the next rounds measure it.
                do {
                    --st.level;
                    st.current = st.calibrated >> st.level;
                } while (st.level > 0 && st.current == 0);
                current_.set(conv, m, st.current);
                recordEventLocked(st, conv, m,
                                  st.level == 0
                                      ? GuardEventKind::Recover
                                      : GuardEventKind::Probe,
                                  from, lower);
                st.cooldown = opts_.cooldownRounds * st.penalty;
                st.estimator.reset();
            }
            if (st.current != st.calibrated)
                ++degraded;
        }
    }
    stats_.set("degraded_kernels", static_cast<double>(degraded));
}

GuardSnapshot
SkipGuard::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    GuardSnapshot snap;
    snap.tolerance = opts_.tolerance;
    snap.samplesSeen = samplesSeen_;
    snap.backoffs = stats_.counter("backoffs");
    snap.disables = stats_.counter("disables");
    snap.probes = stats_.counter("probes");
    snap.recoveries = stats_.counter("recoveries");
    for (const auto &[conv, states] : kernels_) {
        for (std::size_t m = 0; m < states.size(); ++m) {
            const KernelState &st = states[m];
            KernelGuardStatus status;
            status.conv = conv;
            status.kernel = m;
            status.calibratedAlpha = st.calibrated;
            status.currentAlpha = st.current;
            status.backoffLevel = st.level;
            status.audited = st.lifetimeAudited + st.roundAudited;
            status.mispredicted =
                st.lifetimeMispredicted + st.roundMispredicted;
            if (status.audited > 0) {
                status.mispredictRate =
                    static_cast<double>(status.mispredicted) /
                    static_cast<double>(status.audited);
            }
            status.ewmaRate = st.estimator.ewma();
            status.wilsonLower =
                st.estimator.lowerBound(opts_.wilsonZ);
            status.wilsonUpper =
                st.estimator.upperBound(opts_.wilsonZ);
            status.healthy = st.current == st.calibrated;
            if (!status.healthy)
                ++snap.degradedKernels;
            snap.auditedNeurons += status.audited;
            snap.mispredictedNeurons += status.mispredicted;
            snap.kernels.push_back(status);
        }
    }
    return snap;
}

std::size_t
SkipGuard::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::vector<GuardEvent>
SkipGuard::eventsSince(std::size_t first) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (first >= events_.size())
        return {};
    return std::vector<GuardEvent>(events_.begin() +
                                       static_cast<std::ptrdiff_t>(
                                           first),
                                   events_.end());
}

} // namespace fastbcnn
