#include "audit.hpp"

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace fastbcnn {

std::uint64_t
SampleAudit::audited() const
{
    std::uint64_t total = 0;
    for (const auto &[conv, ks] : kernels) {
        for (const KernelAudit &k : ks)
            total += k.audited;
    }
    return total;
}

std::uint64_t
SampleAudit::mispredicted() const
{
    std::uint64_t total = 0;
    for (const auto &[conv, ks] : kernels) {
        for (const KernelAudit &k : ks)
            total += k.mispredicted;
    }
    return total;
}

bool
auditSelected(std::uint64_t seed, NodeId conv, std::size_t sample,
              std::size_t flat, double rate)
{
    if (rate >= 1.0)
        return true;
    if (rate <= 0.0)
        return false;
    std::uint64_t h = splitmix64(seed ^ splitmix64(conv + 1));
    h = splitmix64(h ^ sample);
    h = splitmix64(h ^ flat);
    // Top 53 bits as a uniform double in [0, 1): exact comparison
    // against the rate with no overflow at either boundary.
    const double u = static_cast<double>(h >> 11) *
                     (1.0 / 9007199254740992.0);
    return u < rate;
}

SampleAudit
auditPredictedNeurons(const BcnnTopology &topo, const Tensor &input,
                      const std::vector<Tensor> &node_outputs,
                      const std::map<NodeId, BitVolume> &predicted,
                      const AuditOptions &opts, std::size_t sample)
{
    SampleAudit audit;
    audit.sample = sample;
    if (opts.rate <= 0.0)
        return audit;

    const Network &net = topo.network();
    FASTBCNN_CHECK(node_outputs.size() == net.size(),
                   "auditPredictedNeurons needs the full node-output "
                   "capture (PredictiveOptions::captureNodeOutputs)");

    for (const ConvBlock &b : topo.blocks()) {
        const auto it = predicted.find(b.conv);
        if (it == predicted.end())
            continue;
        const BitVolume &pred = it->second;
        const auto &conv =
            static_cast<const Conv2d &>(net.layer(b.conv));
        const std::vector<NodeId> &producers = net.inputsOf(b.conv);
        FASTBCNN_CHECK_EQ(producers.size(), std::size_t{1});
        const Tensor &conv_in = producers[0] == Network::inputNode
                                    ? input
                                    : node_outputs[producers[0]];

        const std::size_t plane =
            b.outShape.dim(1) * b.outShape.dim(2);
        const std::size_t width = b.outShape.dim(2);
        std::vector<KernelAudit> &kernels = audit.kernels[b.conv];
        kernels.resize(conv.outChannels());

        for (std::size_t flat = 0; flat < pred.size(); ++flat) {
            if (!pred.getFlat(flat))
                continue;
            if (!auditSelected(opts.seed, b.conv, sample, flat,
                               opts.rate)) {
                continue;
            }
            KernelAudit &k = kernels[flat / plane];
            ++k.audited;
            const std::size_t rem = flat % plane;
            // Mispredict <=> positive pre-activation: the exact
            // cascade would have produced a live neuron here.
            if (conv.computeNeuron(conv_in, flat / plane, rem / width,
                                   rem % width) > 0.0f) {
                ++k.mispredicted;
            }
        }
    }
    return audit;
}

} // namespace fastbcnn
