/**
 * @file
 * Shadow auditing of skip predictions: during predictive inference a
 * deterministic sampler selects a configurable fraction of the
 * *skipped* (predicted-unaffected) neurons and re-computes them
 * exactly from the cascade's conv input.  A re-computed neuron whose
 * pre-activation is positive was mispredicted — the skip engine forced
 * a live neuron to zero.  Per-kernel audit tallies feed the SkipGuard
 * mispredict-rate estimators (guard.hpp).
 *
 * Selection is a pure hash of (seed, conv, sample, flat index): the
 * same neurons are audited regardless of thread count or evaluation
 * order, so guarded runs stay bit-identical.
 */

#ifndef FASTBCNN_GUARD_AUDIT_HPP
#define FASTBCNN_GUARD_AUDIT_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "skip/predictive_inference.hpp"

namespace fastbcnn {

/** Shadow-audit configuration. */
struct AuditOptions {
    /**
     * Fraction of predicted (skipped) neurons to re-compute, in
     * [0, 1].  0 disables auditing; 1 audits every skipped neuron.
     * The default keeps the clean-path overhead well under the 3 %
     * budget (see bench_guard_overhead).
     */
    double rate = 0.02;
    /** Selection-hash seed (decoupled from the dropout seed). */
    std::uint64_t seed = 0x5eed;
};

/** Audit tallies for one kernel of one conv block. */
struct KernelAudit {
    std::uint64_t audited = 0;       ///< skipped neurons re-computed
    std::uint64_t mispredicted = 0;  ///< of those, actually positive
};

/** One MC sample's audit: per-conv, per-kernel tallies. */
struct SampleAudit {
    std::size_t sample = 0;  ///< the sample index t
    /** Tallies keyed by conv node, indexed by kernel m. */
    std::map<NodeId, std::vector<KernelAudit>> kernels;

    /** @return total audited neurons across every kernel. */
    std::uint64_t audited() const;
    /** @return total mispredicted neurons across every kernel. */
    std::uint64_t mispredicted() const;
};

/**
 * Deterministic audit selection: true iff the neuron at @p flat of
 * conv @p conv in sample @p sample is audited at @p rate.  A pure
 * splitmix64 chain over (seed, conv, sample, flat) — no shared state,
 * no ordering dependence.
 */
bool auditSelected(std::uint64_t seed, NodeId conv, std::size_t sample,
                   std::size_t flat, double rate);

/**
 * Audit one predictive sample: re-compute the selected fraction of
 * each block's predicted neurons from the cascade's conv input and
 * classify true-skip vs mispredict.
 *
 * Mispredict is defined against the *cascaded* computation — the conv
 * input already reflects upstream zeroing — matching the optimizer's
 * correctness notion (a predicted neuron is correct exactly when its
 * true value is zero, i.e. pre-activation <= 0).
 *
 * @param topo         analysed BCNN
 * @param input        the network input
 * @param node_outputs per-node outputs of the predictive pass
 *                     (PredictiveOptions::captureNodeOutputs)
 * @param predicted    per-conv predicted maps (PredictiveResult)
 * @param opts         audit rate and seed
 * @param sample       the MC sample index t (selection-hash input)
 */
SampleAudit auditPredictedNeurons(
    const BcnnTopology &topo, const Tensor &input,
    const std::vector<Tensor> &node_outputs,
    const std::map<NodeId, BitVolume> &predicted,
    const AuditOptions &opts, std::size_t sample);

} // namespace fastbcnn

#endif // FASTBCNN_GUARD_AUDIT_HPP
