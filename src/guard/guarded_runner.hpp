/**
 * @file
 * Guarded predictive MC-dropout: the skip-mode counterpart of the
 * bayes MC runner, with the SkipGuard closed into the loop.  Samples
 * run in fixed decision rounds; within a round every sample uses the
 * same frozen threshold set and its skipped neurons are shadow-audited
 * (audit.hpp); at the round boundary the audits are folded into the
 * guard in ascending sample order and the policy may adjust the
 * thresholds for the next round.  The round structure makes the run —
 * outputs, audits, guard events and final thresholds — bit-identical
 * for every thread count.
 */

#ifndef FASTBCNN_GUARD_GUARDED_RUNNER_HPP
#define FASTBCNN_GUARD_GUARDED_RUNNER_HPP

#include "bayes/mc_runner.hpp"
#include "guard.hpp"

namespace fastbcnn {

/** Options for one guarded predictive MC run. */
struct GuardedMcOptions {
    std::size_t samples = 50;      ///< T, the paper's default
    double dropRate = 0.3;         ///< p, the paper's default
    BrngKind brng = BrngKind::Lfsr;
    std::uint64_t seed = 1;        ///< RNG seed (deterministic runs)
    /**
     * Worker threads per decision round; 1 = serial, 0 = one per
     * hardware thread.  Masks come from private per-sample BRNGs and
     * audits fold in ascending sample order, so the result is
     * bit-identical for every thread count.
     */
    std::size_t threads = 1;
};

/**
 * Validate @p opts at the API boundary.
 * @return ok, or an InvalidArgument error naming the bad value.
 */
[[nodiscard]] Status validateGuardedMcOptions(
    const GuardedMcOptions &opts);

/** Outcome of one guarded predictive MC run. */
struct GuardedMcResult {
    Tensor preOutput;              ///< non-dropout inference output
    std::vector<Tensor> outputs;   ///< per-sample predictive outputs
    UncertaintySummary summary;    ///< Eq. 4 average over samples
    std::uint64_t predictedNeurons = 0;  ///< total skipped neurons
    std::uint64_t audited = 0;           ///< shadow-audited neurons
    std::uint64_t mispredicted = 0;      ///< of those, mispredicted
    std::vector<GuardEvent> events;      ///< decisions made this run
    GuardSnapshot finalSnapshot;         ///< guard state after the run
};

/**
 * Run a guarded predictive MC-dropout inference over @p guard's
 * effective thresholds.  The guard is shared, long-lived state: its
 * backoff levels persist across calls, which is the point — drift
 * detected on one request protects the next.
 *
 * Errors (never aborts): invalid options or input shape mismatch.
 *
 * @param topo       analysed BCNN
 * @param indicators weight-sign indicators
 * @param guard      the model's skip guard (thresholds + policy)
 * @param input      input tensor matching the network input shape
 * @param opts       sampling configuration
 */
[[nodiscard]] Expected<GuardedMcResult> tryRunGuardedPredictive(
    const BcnnTopology &topo, const IndicatorSet &indicators,
    SkipGuard &guard, const Tensor &input,
    const GuardedMcOptions &opts = {});

} // namespace fastbcnn

#endif // FASTBCNN_GUARD_GUARDED_RUNNER_HPP
