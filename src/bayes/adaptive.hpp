/**
 * @file
 * Adaptive-sample early exit ("enough Monte Carlo") for MC-dropout
 * inference, following the multi-exit MC-dropout line (arXiv
 * 2308.06849): most inputs converge long before the configured T, so
 * the runner may stop sampling once the running predictive mean has
 * tightened past a target confidence-interval width.
 *
 * Determinism contract: convergence is only ever evaluated at *fixed
 * sample-count checkpoints* — after samples [0, c) have all been
 * produced, for checkpoint counts c that are a pure function of the
 * options — and the criterion itself is computed serially, in
 * ascending sample order, in double precision, outside the SIMD
 * dispatch layer.  Because per-sample outputs are already
 * bit-identical across thread counts and SIMD levels (and exactly
 * reproducible per precision), the stop decision — and therefore the
 * entire result — is bit-identical across threads × SIMD levels for
 * each numeric path.
 */

#ifndef FASTBCNN_BAYES_ADAPTIVE_HPP
#define FASTBCNN_BAYES_ADAPTIVE_HPP

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace fastbcnn {

/**
 * Samples between consecutive convergence checkpoints.  Checking
 * after every single sample would serialize the threaded runner;
 * a stride of 4 keeps worker lanes busy between checks while bounding
 * overshoot past the true convergence point to at most 3 samples.
 */
inline constexpr std::size_t kAdaptiveCheckStride = 4;

/** z-score of the two-sided 95 % confidence interval the criterion
 *  uses (the standard choice in the multi-exit MC-dropout work). */
inline constexpr double kAdaptiveCiZ = 1.959963984540054;

/**
 * The first sample count at which convergence may be evaluated:
 * at least two samples (a variance needs two data points), and never
 * before @p min_samples or @p quorum samples exist.
 */
std::size_t firstConvergenceCheckpoint(std::size_t min_samples,
                                       std::size_t quorum);

/**
 * The checkpoint after @p current, clamped to @p budget (the
 * effective sample budget; the final "checkpoint" is simply the end
 * of the run).
 */
std::size_t nextConvergenceCheckpoint(std::size_t current,
                                      std::size_t budget);

/**
 * Width of the 95 % confidence interval of the predictive mean,
 * maximised over output elements: max_c 2·z·sqrt(s²_c / n) for the
 * per-element sample variance s²_c over the @p outputs produced so
 * far.  Deterministic by construction: a serial double-precision
 * two-pass reduction in ascending sample order.
 *
 * @param outputs surviving sample outputs, ascending sample order;
 *        all sharing one shape.  Fewer than two outputs cannot be
 *        assessed and return an infinite width (never converged).
 */
double predictiveCiWidth(const std::vector<const Tensor *> &outputs);

} // namespace fastbcnn

#endif // FASTBCNN_BAYES_ADAPTIVE_HPP
