/**
 * @file
 * Uncertainty statistics over the T sample outputs of an MC-dropout
 * inference (Section II-B, Eq. 4 and the uncertainty metrics the
 * paper's motivating applications use).
 */

#ifndef FASTBCNN_BAYES_UNCERTAINTY_HPP
#define FASTBCNN_BAYES_UNCERTAINTY_HPP

#include <vector>

#include "tensor/tensor.hpp"

namespace fastbcnn {

/** Summary statistics of a set of per-sample class-probability rows. */
struct UncertaintySummary {
    Tensor mean;               ///< ȳ = (1/T) Σ y_t (Eq. 4)
    Tensor variance;           ///< per-class sample variance
    double predictiveEntropy;  ///< H[ȳ] — total uncertainty
    double expectedEntropy;    ///< E_t H[y_t] — aleatoric part
    double mutualInformation;  ///< BALD = H[ȳ] − E_t H[y_t] (epistemic)
    std::size_t argmax;        ///< class with the largest mean prob
    double maxProbability;     ///< value of the largest mean prob
};

/**
 * Compute the MC-dropout summary from T sample outputs.
 *
 * @param samples T rank-1 probability vectors (softmax outputs); all
 *        must share a shape and T must be >= 1.
 */
UncertaintySummary summarizeSamples(const std::vector<Tensor> &samples);

/** Shannon entropy (nats) of a probability vector; 0·log0 = 0. */
double entropy(const Tensor &probs);

} // namespace fastbcnn

#endif // FASTBCNN_BAYES_UNCERTAINTY_HPP
