/**
 * @file
 * ForwardHooks implementations for BCNN inference: mask sampling from
 * a BRNG, mask replay from a recorded set, and activation capture.
 */

#ifndef FASTBCNN_BAYES_HOOKS_HPP
#define FASTBCNN_BAYES_HOOKS_HPP

#include <functional>
#include <map>
#include <string>

#include "nn/layer.hpp"
#include "rng/brng.hpp"

namespace fastbcnn {

/** All dropout masks of one sample inference, keyed by layer name. */
using MaskSet = std::map<std::string, BitVolume>;

class Network;

/**
 * Draw the full MaskSet of one MC sample directly from @p brng,
 * without running a forward pass: every Dropout layer of @p net, in
 * node order, gets shape.numel() bits in flat CHW order — exactly the
 * stream SamplingHooks would consume during net.forward().  The
 * predictive-only paths (the guarded skip runner) use this to obtain
 * the same per-sample masks as the exact MC runner at zero forward
 * cost, so their sample t is mask-identical to the reference's
 * sample t for the same seed.
 */
MaskSet sampleMasks(const Network &net, Brng &brng);

/**
 * Generates fresh Bernoulli masks from a Brng for every dropout layer
 * it encounters, recording them for later replay / trace capture.
 *
 * Bits are drawn in flat CHW order, matching the hardware where one
 * BRNG produces a stream of dropout bits per feature map.
 */
class SamplingHooks : public ForwardHooks
{
  public:
    /**
     * @param brng    dropout-bit source (not owned; must outlive this)
     * @param enabled when false, dropoutMask() returns nullptr (the
     *                non-dropout pre-inference)
     */
    SamplingHooks(Brng &brng, bool enabled = true)
        : brng_(&brng), enabled_(enabled)
    {}

    const BitVolume *dropoutMask(const std::string &layer_name,
                                 const Shape &shape) override;

    /** @return the recorded masks (empty when disabled). */
    const MaskSet &masks() const { return masks_; }

    /** Move the recorded masks out (resets internal state). */
    MaskSet takeMasks() { return std::move(masks_); }

  private:
    Brng *brng_;
    bool enabled_;
    MaskSet masks_;
};

/** Replays a fixed MaskSet (deterministic re-execution of a sample). */
class ReplayHooks : public ForwardHooks
{
  public:
    /** @param masks recorded masks; must outlive this object. */
    explicit ReplayHooks(const MaskSet &masks) : masks_(&masks) {}

    const BitVolume *dropoutMask(const std::string &layer_name,
                                 const Shape &shape) override;

  private:
    const MaskSet *masks_;
};

/**
 * Decorator adding activation capture to any inner hooks object.
 * The filter decides which layers to record (nullptr records all).
 */
class CaptureHooks : public ForwardHooks
{
  public:
    using Filter = std::function<bool(const std::string &, LayerKind)>;

    /**
     * @param inner  delegate for dropout masks (may be nullptr: no
     *               dropout)
     * @param filter which activations to keep (nullptr keeps all)
     */
    explicit CaptureHooks(ForwardHooks *inner = nullptr,
                          Filter filter = nullptr)
        : inner_(inner), filter_(std::move(filter))
    {}

    const BitVolume *dropoutMask(const std::string &layer_name,
                                 const Shape &shape) override;
    void onActivation(const std::string &layer_name, LayerKind kind,
                      const Tensor &out) override;
    void mutateActivation(const std::string &layer_name, LayerKind kind,
                          Tensor &out) override;

    /** @return captured activations keyed by layer name. */
    const std::map<std::string, Tensor> &activations() const
    {
        return activations_;
    }

    /** @return one captured activation; fatal() when absent. */
    const Tensor &activation(const std::string &layer_name) const;

  private:
    ForwardHooks *inner_;
    Filter filter_;
    std::map<std::string, Tensor> activations_;
};

} // namespace fastbcnn

#endif // FASTBCNN_BAYES_HOOKS_HPP
