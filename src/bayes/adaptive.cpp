#include "adaptive.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace fastbcnn {

std::size_t
firstConvergenceCheckpoint(std::size_t min_samples, std::size_t quorum)
{
    std::size_t first = 2;
    if (min_samples > first)
        first = min_samples;
    if (quorum > first)
        first = quorum;
    return first;
}

std::size_t
nextConvergenceCheckpoint(std::size_t current, std::size_t budget)
{
    const std::size_t next = current + kAdaptiveCheckStride;
    return next < budget ? next : budget;
}

double
predictiveCiWidth(const std::vector<const Tensor *> &outputs)
{
    const std::size_t n = outputs.size();
    if (n < 2)
        return std::numeric_limits<double>::infinity();
    const std::size_t numel = outputs[0]->numel();

    // Two-pass per-element mean/variance, serial over samples in
    // ascending order and over elements in ascending flat index —
    // the accumulation order is fixed, so the result is a pure
    // function of the sample outputs.
    double maxWidth = 0.0;
    for (std::size_t c = 0; c < numel; ++c) {
        double mean = 0.0;
        for (std::size_t t = 0; t < n; ++t) {
            FASTBCNN_DCHECK(outputs[t]->numel() == numel,
                            "CI criterion over mismatched outputs");
            mean += static_cast<double>(outputs[t]->at(c));
        }
        mean /= static_cast<double>(n);
        double m2 = 0.0;
        for (std::size_t t = 0; t < n; ++t) {
            const double d =
                static_cast<double>(outputs[t]->at(c)) - mean;
            m2 += d * d;
        }
        const double var = m2 / static_cast<double>(n - 1);
        const double width =
            2.0 * kAdaptiveCiZ *
            std::sqrt(var / static_cast<double>(n));
        if (width > maxWidth)
            maxWidth = width;
    }
    return maxWidth;
}

} // namespace fastbcnn
