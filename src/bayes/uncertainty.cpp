#include "uncertainty.hpp"

#include <cmath>

#include "common/check.hpp"

namespace fastbcnn {

double
entropy(const Tensor &probs)
{
    double h = 0.0;
    for (float p : probs.data()) {
        if (p > 0.0f)
            h -= static_cast<double>(p) * std::log(static_cast<double>(p));
    }
    return h;
}

UncertaintySummary
summarizeSamples(const std::vector<Tensor> &samples)
{
    FASTBCNN_CHECK(!samples.empty(), "need at least one sample");
    const Shape shape = samples[0].shape();
    const std::size_t n = shape.numel();
    const double t = static_cast<double>(samples.size());

    UncertaintySummary s;
    s.mean = Tensor(shape);
    s.variance = Tensor(shape);
    double expected_entropy = 0.0;

    for (const Tensor &y : samples) {
        FASTBCNN_CHECK(y.shape() == shape, "sample shape mismatch");
        for (std::size_t i = 0; i < n; ++i)
            s.mean.at(i) += y.at(i) / static_cast<float>(t);
        expected_entropy += entropy(y) / t;
    }
    for (const Tensor &y : samples) {
        for (std::size_t i = 0; i < n; ++i) {
            const float d = y.at(i) - s.mean.at(i);
            s.variance.at(i) += d * d / static_cast<float>(t);
        }
    }

    s.predictiveEntropy = entropy(s.mean);
    s.expectedEntropy = expected_entropy;
    s.mutualInformation = s.predictiveEntropy - expected_entropy;
    s.argmax = 0;
    s.maxProbability = s.mean.numel() > 0 ? s.mean.at(0) : 0.0;
    for (std::size_t i = 1; i < n; ++i) {
        if (s.mean.at(i) > s.maxProbability) {
            s.maxProbability = s.mean.at(i);
            s.argmax = i;
        }
    }
    return s;
}

} // namespace fastbcnn
