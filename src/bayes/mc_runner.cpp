#include "mc_runner.hpp"

namespace fastbcnn {

std::unique_ptr<Brng>
makeBrng(BrngKind kind, double drop_rate, std::uint64_t seed)
{
    switch (kind) {
      case BrngKind::Lfsr:
        return std::make_unique<LfsrBrng>(
            drop_rate, static_cast<std::uint32_t>(seed * 2654435761ull
                                                  + 0x9e3779b9ull));
      case BrngKind::Software:
        return std::make_unique<SoftwareBrng>(drop_rate, seed);
    }
    panic("unknown BrngKind %d", static_cast<int>(kind));
}

McResult
runMcDropout(const Network &net, const Tensor &input,
             const McOptions &opts)
{
    if (opts.samples == 0)
        fatal("MC dropout needs at least one sample");
    McResult result;

    // Pre-inference: dropout off.  Its zero-neuron positions seed the
    // unaffected-neuron machinery downstream.
    result.preOutput = net.forward(input, nullptr);

    auto brng = makeBrng(opts.brng, opts.dropRate, opts.seed);
    result.outputs.reserve(opts.samples);
    for (std::size_t t = 0; t < opts.samples; ++t) {
        SamplingHooks hooks(*brng, true);
        result.outputs.push_back(net.forward(input, &hooks));
        if (opts.recordMasks)
            result.masks.push_back(hooks.takeMasks());
    }
    result.summary = summarizeSamples(result.outputs);
    return result;
}

} // namespace fastbcnn
