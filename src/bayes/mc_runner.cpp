#include "mc_runner.hpp"

#include <atomic>
#include <thread>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace fastbcnn {

namespace {

/** Resolve McOptions::threads to a concrete worker count. */
std::size_t
resolveThreads(std::size_t requested, std::size_t samples)
{
    std::size_t n = requested;
    if (n == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        n = hw == 0 ? 1 : hw;
    }
    return n < samples ? n : samples;
}

/** Run sample @p t into its reserved result slots. */
void
runOneSample(const Network &net, const Tensor &input,
             const McOptions &opts, std::size_t t, McResult &result)
{
    auto brng = makeBrng(opts.brng, opts.dropRate,
                         sampleSeed(opts.seed, t));
    SamplingHooks hooks(*brng, true);
    result.outputs[t] = net.forward(input, &hooks);
    if (opts.recordMasks)
        result.masks[t] = hooks.takeMasks();
}

} // namespace

std::unique_ptr<Brng>
makeBrng(BrngKind kind, double drop_rate, std::uint64_t seed)
{
    switch (kind) {
      case BrngKind::Lfsr:
        return std::make_unique<LfsrBrng>(drop_rate, mixSeedTo32(seed));
      case BrngKind::Software:
        return std::make_unique<SoftwareBrng>(drop_rate,
                                              splitmix64(seed));
    }
    panic("unknown BrngKind %d", static_cast<int>(kind));
}

McResult
runMcDropout(const Network &net, const Tensor &input,
             const McOptions &opts)
{
    if (opts.samples == 0)
        fatal("MC dropout needs at least one sample");
    McResult result;

    // Pre-inference: dropout off.  Its zero-neuron positions seed the
    // unaffected-neuron machinery downstream.
    result.preOutput = net.forward(input, nullptr);

    // Every sample t owns slot t of outputs/masks and a private BRNG
    // seeded by sampleSeed(seed, t): workers never share mutable state
    // and the result is identical for any thread count.
    result.outputs.resize(opts.samples);
    if (opts.recordMasks)
        result.masks.resize(opts.samples);

    const std::size_t workers = resolveThreads(opts.threads, opts.samples);
    if (workers <= 1) {
        for (std::size_t t = 0; t < opts.samples; ++t)
            runOneSample(net, input, opts, t, result);
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            pool.emplace_back([&]() {
                for (std::size_t t = next.fetch_add(1);
                     t < opts.samples; t = next.fetch_add(1)) {
                    runOneSample(net, input, opts, t, result);
                }
            });
        }
        for (std::thread &worker : pool)
            worker.join();
    }

    result.summary = summarizeSamples(result.outputs);
    return result;
}

} // namespace fastbcnn
