#include "mc_runner.hpp"

#include "adaptive.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <optional>
#include <thread>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "common/table.hpp"

namespace fastbcnn {

namespace {

using Clock = std::chrono::steady_clock;

/**
 * @return the flat index of the first non-finite element, or npos.
 * Runs over every sample output inside the MC sample loop when the
 * sample guard is on (FASTBCNN_HOT — lint rule R3 keeps allocation,
 * locks, I/O and logging out of it).
 */
FASTBCNN_HOT std::size_t
firstNonFinite(const Tensor &t)
{
    const auto data = t.data();
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (!std::isfinite(data[i]))
            return i;
    }
    return static_cast<std::size_t>(-1);
}

/** One sample's reserved slot: its output, masks, and fate. */
struct SampleSlot {
    Tensor output;
    MaskSet masks;
    ErrorCode code = ErrorCode::Ok;  ///< Ok = survived
    std::string reason;
};

/** Run sample @p t (unguarded body shared by both paths). */
void
runSampleBody(const ForwardTarget &target, const Tensor &input,
              const McOptions &opts, std::size_t t, SampleSlot &slot)
{
    auto brng = makeBrng(opts.brng, opts.dropRate,
                         sampleSeed(opts.seed, t));
    if (opts.faults != nullptr)
        brng = opts.faults->wrapBrng(std::move(brng), t);
    SamplingHooks sampling(*brng, true);
    ForwardHooks *hooks = &sampling;
    std::optional<FaultInjectionHooks> injector;
    if (opts.faults != nullptr && !opts.faults->empty()) {
        injector.emplace(*opts.faults, t, &sampling);
        hooks = &*injector;
    }
    slot.output = target.forward(input, hooks);
    if (opts.recordMasks)
        slot.masks = sampling.takeMasks();
}

/** Run sample @p t under the isolation guard, recording its fate. */
void
runGuardedSample(const ForwardTarget &target, const Tensor &input,
                 const McOptions &opts, std::size_t t,
                 SampleSlot &slot)
{
    if (opts.faults != nullptr && opts.faults->sampleKilled(t)) {
        slot.code = ErrorCode::FaultInjected;
        slot.reason = "injected sample failure (SampleKill)";
        return;
    }
    if (!opts.sampleGuard) {
        runSampleBody(target, input, opts, t, slot);
        return;
    }
    try {
        runSampleBody(target, input, opts, t, slot);
        const std::size_t bad = firstNonFinite(slot.output);
        if (bad != static_cast<std::size_t>(-1)) {
            slot.code = ErrorCode::NonFinite;
            slot.reason = format(
                "sample output non-finite at element %zu", bad);
            slot.output = Tensor();
            slot.masks.clear();
        }
    } catch (const std::exception &e) {
        slot.code = ErrorCode::SampleFailed;
        slot.reason = format("exception: %s", e.what());
        slot.output = Tensor();
        slot.masks.clear();
    }
}

} // namespace

std::size_t
resolveMcThreads(std::size_t requested, std::size_t samples)
{
    std::size_t n = requested;
    if (n == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        n = hw == 0 ? 1 : hw;
    }
    return n < samples ? n : samples;
}

Status
validateMcOptions(const McOptions &opts)
{
    if (opts.samples == 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "McOptions::samples: need at least one MC "
                      "sample (got 0)");
    }
    if (!(opts.dropRate >= 0.0 && opts.dropRate < 1.0)) {
        return errorf(ErrorCode::InvalidArgument,
                      "McOptions::dropRate %g outside [0, 1)",
                      opts.dropRate);
    }
    if (opts.threads > kMaxMcThreads) {
        return errorf(ErrorCode::InvalidArgument,
                      "McOptions::threads %zu exceeds the %zu-thread "
                      "ceiling", opts.threads, kMaxMcThreads);
    }
    if (opts.quorum > opts.samples) {
        return errorf(ErrorCode::InvalidArgument,
                      "McOptions::quorum %zu exceeds samples %zu "
                      "(can never be met)", opts.quorum, opts.samples);
    }
    if (!(opts.deadlineMs >= 0.0)) {
        return errorf(ErrorCode::InvalidArgument,
                      "McOptions::deadlineMs %g must be >= 0 and "
                      "finite", opts.deadlineMs);
    }
    if (!(opts.targetCiWidth >= 0.0) ||
        !std::isfinite(opts.targetCiWidth)) {
        return errorf(ErrorCode::InvalidArgument,
                      "McOptions::targetCiWidth %g must be >= 0 and "
                      "finite", opts.targetCiWidth);
    }
    if (opts.minSamples > opts.samples) {
        return errorf(ErrorCode::InvalidArgument,
                      "McOptions::minSamples %zu exceeds samples %zu",
                      opts.minSamples, opts.samples);
    }
    const std::size_t quorumFloor =
        opts.quorum > 0 ? opts.quorum : std::size_t{1};
    if (opts.sampleBudget > 0 && opts.sampleBudget < quorumFloor) {
        return errorf(ErrorCode::InvalidArgument,
                      "McOptions::sampleBudget %zu below the quorum "
                      "floor %zu (no clamped run could ever succeed)",
                      opts.sampleBudget, quorumFloor);
    }
    return Status::ok();
}

std::unique_ptr<Brng>
makeBrng(BrngKind kind, double drop_rate, std::uint64_t seed)
{
    switch (kind) {
      case BrngKind::Lfsr:
        return std::make_unique<LfsrBrng>(drop_rate, mixSeedTo32(seed));
      case BrngKind::Software:
        return std::make_unique<SoftwareBrng>(drop_rate,
                                              splitmix64(seed));
    }
    panic("unknown BrngKind %d", static_cast<int>(kind));
}

Expected<McResult>
tryRunMcDropout(const Network &net, const Tensor &input,
                const McOptions &opts)
{
    ForwardTarget target;
    target.forward = [&net](const Tensor &in, ForwardHooks *hooks) {
        return net.forward(in, hooks);
    };
    target.name = net.name();
    target.inputShape = net.inputShape();
    return tryRunMcDropoutWith(target, input, opts);
}

Expected<McResult>
tryRunMcDropoutWith(const ForwardTarget &target, const Tensor &input,
                    const McOptions &opts)
{
    FASTBCNN_RETURN_IF_ERROR(validateMcOptions(opts));
    if (!target.forward) {
        return errorf(ErrorCode::InvalidArgument,
                      "ForwardTarget '%s' has no forward function",
                      target.name.c_str());
    }
    if (!(input.shape() == target.inputShape)) {
        return errorf(ErrorCode::InvalidArgument,
                      "input shape %s does not match network '%s' "
                      "input %s", input.shape().toString().c_str(),
                      target.name.c_str(),
                      target.inputShape.toString().c_str());
    }

    // Deadline support is the one sanctioned wall-clock read in the
    // MC path: it gates *whether* later samples launch, never what any
    // launched sample computes, so results stay bit-identical.
    // NOLINTNEXTLINE-FASTBCNN(determinism): deadline anchor
    const Clock::time_point start = Clock::now();
    const bool haveDeadline = opts.deadlineMs > 0.0;
    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        opts.deadlineMs));

    McResult result;

    // Pre-inference: dropout off.  Its zero-neuron positions seed the
    // unaffected-neuron machinery downstream.  A non-finite output
    // here is a whole-run failure — every sample shares these
    // weights, so no quorum of samples could be healthy.
    result.preOutput = target.forward(input, nullptr);
    if (opts.sampleGuard) {
        const std::size_t bad = firstNonFinite(result.preOutput);
        if (bad != static_cast<std::size_t>(-1)) {
            return errorf(ErrorCode::NonFinite,
                          "pre-inference output non-finite at element "
                          "%zu (poisoned weights?)", bad);
        }
    }

    // The effective sample budget: the brownout clamp trades samples
    // in [budget, requested) away administratively — they are never
    // slotted, never launched, and never counted as failures.
    const std::size_t effectiveT =
        (opts.sampleBudget > 0 && opts.sampleBudget < opts.samples)
            ? opts.sampleBudget
            : opts.samples;

    // Every sample t owns slot t and a private BRNG seeded by
    // sampleSeed(seed, t): workers never share mutable state and the
    // result is identical for any thread count.  Failed samples leave
    // their slot's fate code set; survivors are compacted afterwards
    // in ascending sample order.
    std::vector<SampleSlot> slots(effectiveT);
    const auto expired = [&]() {
        // NOLINTNEXTLINE-FASTBCNN(determinism): deadline check
        return haveDeadline && Clock::now() >= deadline;
    };
    const auto markSkipped = [&](SampleSlot &slot) {
        slot.code = ErrorCode::DeadlineExceeded;
        slot.reason = format("not launched: %.3f ms deadline expired",
                             opts.deadlineMs);
    };

    // Produce samples [lo, hi), serially or on the worker pool.  Both
    // the adaptive and the fixed-T paths run entirely through here, so
    // a non-adaptive run is exactly one block [0, effectiveT) — the
    // pre-existing behaviour, unchanged.
    const auto runBlock = [&](std::size_t lo, std::size_t hi) {
        const std::size_t workers =
            resolveMcThreads(opts.threads, hi - lo);
        if (workers <= 1) {
            for (std::size_t t = lo; t < hi; ++t) {
                // Sample 0 always launches: a partial average needs
                // at least one term no matter how tight the deadline.
                if (t > 0 && expired()) {
                    markSkipped(slots[t]);
                    continue;
                }
                runGuardedSample(target, input, opts, t, slots[t]);
            }
        } else {
            std::atomic<std::size_t> next{lo};
            std::vector<std::thread> pool;
            pool.reserve(workers);
            for (std::size_t w = 0; w < workers; ++w) {
                pool.emplace_back([&, hi]() {
                    for (std::size_t t = next.fetch_add(1); t < hi;
                         t = next.fetch_add(1)) {
                        if (t > 0 && expired()) {
                            markSkipped(slots[t]);
                            continue;
                        }
                        runGuardedSample(target, input, opts, t,
                                         slots[t]);
                    }
                });
            }
            for (std::thread &worker : pool)
                worker.join();
        }
    };

    result.census.requested = opts.samples;
    result.census.budget = effectiveT;

    // How many samples were actually launched (or deadline-marked):
    // the compaction below only walks [0, launched), so samples the
    // adaptive exit never reached leave no trace in the census.
    std::size_t launched = 0;
    if (opts.targetCiWidth <= 0.0) {
        runBlock(0, effectiveT);
        launched = effectiveT;
    } else {
        // Adaptive early exit: run to fixed sample-count checkpoints
        // and evaluate the CI-width criterion over the survivors so
        // far.  Checkpoint counts and the criterion are pure functions
        // of the options and the sample outputs — bit-identical across
        // thread counts and SIMD levels (see bayes/adaptive.hpp).
        const std::size_t minFloor =
            opts.minSamples < effectiveT ? opts.minSamples
                                         : effectiveT;
        const std::size_t needed =
            firstConvergenceCheckpoint(minFloor, opts.quorum);
        std::size_t checkpoint =
            needed < effectiveT ? needed : effectiveT;
        std::vector<const Tensor *> survivors;
        for (;;) {
            runBlock(launched, checkpoint);
            launched = checkpoint;
            survivors.clear();
            for (std::size_t t = 0; t < launched; ++t) {
                if (slots[t].code == ErrorCode::Ok)
                    survivors.push_back(&slots[t].output);
            }
            // Casualties push the evaluation out: the criterion needs
            // the same floor in *survivors* that the first checkpoint
            // guarantees in launches, or a lucky tight pair could
            // stop a run below its minSamples/quorum floor.
            if (survivors.size() >= needed) {
                const double width = predictiveCiWidth(survivors);
                result.census.ciWidth = width;
                if (width <= opts.targetCiWidth) {
                    result.census.converged = true;
                    result.census.convergedAt = launched;
                    break;
                }
            }
            if (launched >= effectiveT)
                break;
            checkpoint = nextConvergenceCheckpoint(launched,
                                                   effectiveT);
        }
    }

    // Compact survivors and build the census, both in sample order.
    for (std::size_t t = 0; t < launched; ++t) {
        SampleSlot &slot = slots[t];
        if (slot.code == ErrorCode::Ok) {
            result.outputs.push_back(std::move(slot.output));
            if (opts.recordMasks)
                result.masks.push_back(std::move(slot.masks));
            result.sampleIndices.push_back(t);
        } else {
            result.census.failures.push_back(
                SampleFailure{t, slot.code, std::move(slot.reason)});
        }
    }
    result.census.survived = result.outputs.size();
    // Degradation means something *died*: converged-early and
    // budget-clamped samples were traded away on purpose and leave no
    // failure record, so survived < requested alone is not degraded.
    result.census.degraded = !result.census.failures.empty();

    const std::size_t quorum =
        opts.quorum > 0 ? opts.quorum : std::size_t{1};
    if (result.census.survived < quorum) {
        // A quorum starved by the deadline is a deadline failure: the
        // samples were healthy, the budget simply ran out before
        // enough of them could launch.  Callers (the serving layer)
        // key retry/shed policy off this distinction.
        bool deadlineStarved = false;
        for (const SampleFailure &f : result.census.failures) {
            if (f.code == ErrorCode::DeadlineExceeded) {
                deadlineStarved = true;
                break;
            }
        }
        return errorf(deadlineStarved ? ErrorCode::DeadlineExceeded
                                      : ErrorCode::QuorumNotMet,
                      "only %zu of %zu MC samples survived "
                      "(quorum %zu)%s", result.census.survived,
                      result.census.requested, quorum,
                      deadlineStarved
                          ? " after the deadline stopped launches"
                          : "");
    }

    result.summary = summarizeSamples(result.outputs);
    return result;
}

McResult
runMcDropout(const Network &net, const Tensor &input,
             const McOptions &opts)
{
    Expected<McResult> result = tryRunMcDropout(net, input, opts);
    if (!result)
        fatal("MC dropout failed: %s",
              result.error().toString().c_str());
    return std::move(result).value();
}

} // namespace fastbcnn
