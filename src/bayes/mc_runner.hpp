/**
 * @file
 * Monte-Carlo dropout inference driver (Section II-B): T stochastic
 * forward passes over one input plus one non-dropout pre-inference,
 * producing the averaged prediction, uncertainty statistics, and the
 * recorded masks / activations the tracing layer consumes.
 *
 * The runner is fault-isolating: every sample executes under a guard
 * that catches injected faults (FaultPlan), natural non-finite
 * outputs, and thrown errors, drops the casualty, and degrades the
 * estimate to the T' survivors — each MC sample is an independent
 * lane, exactly as in the FPGA BNN accelerators the design mirrors,
 * and a posterior mean over T' < T Bernoulli-dropout samples is still
 * a valid (wider-variance) estimate.
 */

#ifndef FASTBCNN_BAYES_MC_RUNNER_HPP
#define FASTBCNN_BAYES_MC_RUNNER_HPP

#include <cstdint>
#include <functional>

#include "fault/fault.hpp"
#include "hooks.hpp"
#include "nn/network.hpp"
#include "quant/precision.hpp"
#include "uncertainty.hpp"

namespace fastbcnn {

/** Which Bernoulli generator drives the dropout bits. */
enum class BrngKind {
    Lfsr,     ///< the hardware 8-LFSR design (Section V-B3)
    Software  ///< std::mt19937 reference
};

/** Hard ceiling on McOptions::threads (suspicious beyond this). */
inline constexpr std::size_t kMaxMcThreads = 4096;

/** Options for one MC-dropout run. */
struct McOptions {
    std::size_t samples = 50;      ///< T, the paper's default
    double dropRate = 0.3;         ///< p, the paper's default
    BrngKind brng = BrngKind::Lfsr;
    std::uint64_t seed = 1;        ///< RNG seed (deterministic runs)
    bool recordMasks = true;       ///< keep per-sample MaskSets

    /**
     * Worker threads running samples concurrently; 1 = serial, 0 =
     * one per hardware thread.  Every sample draws its masks from a
     * private BRNG seeded by sampleSeed(seed, t) and lands at index t
     * of McResult::outputs / masks, so the result — summary included —
     * is bit-identical for every thread count.  This mirrors the
     * per-sample parallelism of the FPGA BNN accelerators (Fan et al.),
     * where the T MC passes map onto independent compute lanes.
     */
    std::size_t threads = 1;

    /**
     * Per-sample fault isolation.  When on, each sample runs under a
     * guard that converts injected faults, non-finite outputs and
     * thrown exceptions into per-sample failures recorded in
     * McResult::census; the run degrades to the survivors instead of
     * dying.  When off the runner behaves exactly like the unguarded
     * PR 1 path (no output scanning, no catch) — the fault-overhead
     * bench compares the two.
     */
    bool sampleGuard = true;

    /**
     * Minimum surviving samples T' for the run to count as usable;
     * fewer survivors fail the whole run with ErrorCode::QuorumNotMet
     * — or ErrorCode::DeadlineExceeded when the quorum was starved by
     * the deadline stopping launches (the samples themselves were
     * healthy; the budget ran out).  0 means "any", but at least one
     * survivor is always required (an average over zero samples is
     * meaningless).
     */
    std::size_t quorum = 0;

    /**
     * Wall-clock budget in milliseconds; 0 disables.  Once the budget
     * is spent the runner stops *launching* samples (in-flight ones
     * finish), records the never-launched ones as DeadlineExceeded in
     * the census, and returns the partial average.  Sample 0 is
     * always launched, so a quorum of <= 1 cannot be starved by the
     * deadline alone.  Note this knob is inherently wall-clock
     * dependent: results with a deadline are NOT reproducible across
     * machines or runs.
     */
    double deadlineMs = 0.0;

    /**
     * Adaptive early exit ("enough Monte Carlo"; bayes/adaptive.hpp):
     * when > 0, the runner evaluates the predictive-mean 95 %
     * confidence-interval width at fixed sample-count checkpoints and
     * stops launching samples once it falls to this target.  The stop
     * decision is a pure function of the sample outputs, so adaptive
     * runs stay bit-identical across thread counts and SIMD levels.
     * 0 disables (every run uses the full budget).
     */
    double targetCiWidth = 0.0;

    /**
     * Floor on the samples produced before adaptive early exit may
     * stop the run (the criterion additionally needs >= 2 survivors
     * and never stops below quorum).  Ignored when targetCiWidth is
     * 0.  Clamped to the effective budget.
     */
    std::size_t minSamples = 0;

    /**
     * Hard clamp on the samples this run may launch: the effective
     * budget is min(samples, sampleBudget) when > 0.  This is the
     * serving brownout's lever — a controller trades samples for
     * deadline headroom per priority class without touching the
     * configured T.  Clamped-away samples are reported in the census
     * (budget < requested) but are neither failures nor degradation.
     * Must be >= quorum when both are set.  0 disables.
     */
    std::size_t sampleBudget = 0;

    /**
     * Fault-injection plan (not owned; may be nullptr).  Must outlive
     * the run.  See fault/fault.hpp for the plan format.
     */
    const FaultPlan *faults = nullptr;

    /**
     * Numeric path for the forward passes.  The runner itself is
     * precision-agnostic (it drives whatever ForwardTarget it is
     * handed); this knob is consumed by the engine layer, which picks
     * the float network or its int8 mirror before calling the runner,
     * and by the serving layer's per-request override plumbing.
     */
    Precision precision = Precision::Float32;
};

/**
 * A forward pass the MC runner can drive: the float Network, its int8
 * QuantizedNetwork mirror, or anything else that maps (input, hooks)
 * to an output tensor.  Must be thread-safe for concurrent calls —
 * every MC sample may run on a different worker.
 */
using ForwardFn = std::function<Tensor(const Tensor &, ForwardHooks *)>;

/** The subject of an MC run when driving a ForwardFn directly. */
struct ForwardTarget {
    ForwardFn forward;  ///< the forward pass (required, non-empty)
    std::string name;   ///< model name for error messages
    Shape inputShape;   ///< validated against the run's input
};

/**
 * Validate @p opts at the API boundary.
 * @return ok, or an InvalidArgument error naming the bad value.
 */
[[nodiscard]] Status validateMcOptions(const McOptions &opts);

/** The outcome of one MC-dropout run. */
struct McResult {
    Tensor preOutput;              ///< non-dropout inference output
    /**
     * Surviving per-sample outputs in ascending sample order.  With
     * no failures this is exactly the T requested samples; after
     * casualties it holds the T' survivors (sampleIndices maps each
     * entry back to its original sample index).
     */
    std::vector<Tensor> outputs;
    std::vector<MaskSet> masks;    ///< per-survivor masks (recorded)
    std::vector<std::size_t> sampleIndices;  ///< outputs[i] ran as t
    UncertaintySummary summary;    ///< Eq. 4 average over survivors
    DegradationCensus census;      ///< requested/survived/casualties

    /** @return true when fewer than the requested samples survived. */
    bool degraded() const { return census.degraded; }
};

/**
 * Resolve a requested thread count (0 = one per hardware thread) to a
 * concrete worker count, capped at @p samples.  Shared by the MC
 * runner and the guarded predictive runner so both schedule sample
 * lanes the same way.
 */
std::size_t resolveMcThreads(std::size_t requested,
                             std::size_t samples);

/**
 * Construct the requested Brng implementation.  The 64-bit seed is
 * mixed with a splitmix64 finalizer before any narrowing, so distinct
 * seeds yield distinct generator states (no truncation collisions, no
 * silent trip through the Lfsr32 zero-seed fallback).
 */
std::unique_ptr<Brng> makeBrng(BrngKind kind, double drop_rate,
                               std::uint64_t seed);

/**
 * Run a complete MC-dropout inference: one pre-inference with dropout
 * off, then @p opts.samples stochastic samples, serially or on
 * @p opts.threads workers (deterministic either way; see McOptions).
 *
 * Errors (never aborts): invalid options, input shape mismatch,
 * non-finite pre-inference output, or fewer survivors than the
 * quorum.  Per-sample failures degrade the result instead (see
 * McResult::census).
 *
 * @param net   a BCNN (dropout after every conv; see BcnnTopology)
 * @param input input tensor matching the network input shape
 * @param opts  sampling configuration
 */
[[nodiscard]] Expected<McResult> tryRunMcDropout(
    const Network &net, const Tensor &input, const McOptions &opts);

/**
 * Generalised MC-dropout run over an arbitrary forward pass.  Same
 * semantics, guards and determinism contract as tryRunMcDropout() —
 * that overload is a thin wrapper handing the Network's forward here.
 * The int8 engine hands its QuantizedNetwork mirror instead, so both
 * precisions share one scheduler, guard and census implementation.
 */
[[nodiscard]] Expected<McResult> tryRunMcDropoutWith(
    const ForwardTarget &target, const Tensor &input,
    const McOptions &opts);

/**
 * Legacy convenience wrapper around tryRunMcDropout(): identical
 * behaviour, but a run-level Error is fatal().  Per-sample
 * degradation still only degrades.
 */
McResult runMcDropout(const Network &net, const Tensor &input,
                      const McOptions &opts);

} // namespace fastbcnn

#endif // FASTBCNN_BAYES_MC_RUNNER_HPP
