/**
 * @file
 * Monte-Carlo dropout inference driver (Section II-B): T stochastic
 * forward passes over one input plus one non-dropout pre-inference,
 * producing the averaged prediction, uncertainty statistics, and the
 * recorded masks / activations the tracing layer consumes.
 */

#ifndef FASTBCNN_BAYES_MC_RUNNER_HPP
#define FASTBCNN_BAYES_MC_RUNNER_HPP

#include <cstdint>

#include "hooks.hpp"
#include "nn/network.hpp"
#include "uncertainty.hpp"

namespace fastbcnn {

/** Which Bernoulli generator drives the dropout bits. */
enum class BrngKind {
    Lfsr,     ///< the hardware 8-LFSR design (Section V-B3)
    Software  ///< std::mt19937 reference
};

/** Options for one MC-dropout run. */
struct McOptions {
    std::size_t samples = 50;      ///< T, the paper's default
    double dropRate = 0.3;         ///< p, the paper's default
    BrngKind brng = BrngKind::Lfsr;
    std::uint64_t seed = 1;        ///< RNG seed (deterministic runs)
    bool recordMasks = true;       ///< keep per-sample MaskSets

    /**
     * Worker threads running samples concurrently; 1 = serial, 0 =
     * one per hardware thread.  Every sample draws its masks from a
     * private BRNG seeded by sampleSeed(seed, t) and lands at index t
     * of McResult::outputs / masks, so the result — summary included —
     * is bit-identical for every thread count.  This mirrors the
     * per-sample parallelism of the FPGA BNN accelerators (Fan et al.),
     * where the T MC passes map onto independent compute lanes.
     */
    std::size_t threads = 1;
};

/** The outcome of one MC-dropout run. */
struct McResult {
    Tensor preOutput;              ///< non-dropout inference output
    std::vector<Tensor> outputs;   ///< T per-sample outputs
    std::vector<MaskSet> masks;    ///< per-sample masks (when recorded)
    UncertaintySummary summary;    ///< Eq. 4 average + uncertainty
};

/**
 * Construct the requested Brng implementation.  The 64-bit seed is
 * mixed with a splitmix64 finalizer before any narrowing, so distinct
 * seeds yield distinct generator states (no truncation collisions, no
 * silent trip through the Lfsr32 zero-seed fallback).
 */
std::unique_ptr<Brng> makeBrng(BrngKind kind, double drop_rate,
                               std::uint64_t seed);

/**
 * Run a complete MC-dropout inference: one pre-inference with dropout
 * off, then @p opts.samples stochastic samples, serially or on
 * @p opts.threads workers (deterministic either way; see McOptions).
 *
 * @param net   a BCNN (dropout after every conv; see BcnnTopology)
 * @param input input tensor matching the network input shape
 * @param opts  sampling configuration
 */
McResult runMcDropout(const Network &net, const Tensor &input,
                      const McOptions &opts);

} // namespace fastbcnn

#endif // FASTBCNN_BAYES_MC_RUNNER_HPP
