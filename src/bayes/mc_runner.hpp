/**
 * @file
 * Monte-Carlo dropout inference driver (Section II-B): T stochastic
 * forward passes over one input plus one non-dropout pre-inference,
 * producing the averaged prediction, uncertainty statistics, and the
 * recorded masks / activations the tracing layer consumes.
 */

#ifndef FASTBCNN_BAYES_MC_RUNNER_HPP
#define FASTBCNN_BAYES_MC_RUNNER_HPP

#include <cstdint>

#include "hooks.hpp"
#include "nn/network.hpp"
#include "uncertainty.hpp"

namespace fastbcnn {

/** Which Bernoulli generator drives the dropout bits. */
enum class BrngKind {
    Lfsr,     ///< the hardware 8-LFSR design (Section V-B3)
    Software  ///< std::mt19937 reference
};

/** Options for one MC-dropout run. */
struct McOptions {
    std::size_t samples = 50;      ///< T, the paper's default
    double dropRate = 0.3;         ///< p, the paper's default
    BrngKind brng = BrngKind::Lfsr;
    std::uint64_t seed = 1;        ///< RNG seed (deterministic runs)
    bool recordMasks = true;       ///< keep per-sample MaskSets
};

/** The outcome of one MC-dropout run. */
struct McResult {
    Tensor preOutput;              ///< non-dropout inference output
    std::vector<Tensor> outputs;   ///< T per-sample outputs
    std::vector<MaskSet> masks;    ///< per-sample masks (when recorded)
    UncertaintySummary summary;    ///< Eq. 4 average + uncertainty
};

/** Construct the requested Brng implementation. */
std::unique_ptr<Brng> makeBrng(BrngKind kind, double drop_rate,
                               std::uint64_t seed);

/**
 * Run a complete MC-dropout inference: one pre-inference with dropout
 * off, then @p opts.samples stochastic samples.
 *
 * @param net   a BCNN (dropout after every conv; see BcnnTopology)
 * @param input input tensor matching the network input shape
 * @param opts  sampling configuration
 */
McResult runMcDropout(const Network &net, const Tensor &input,
                      const McOptions &opts);

} // namespace fastbcnn

#endif // FASTBCNN_BAYES_MC_RUNNER_HPP
