#include "hooks.hpp"

#include "common/check.hpp"
#include "nn/network.hpp"

namespace fastbcnn {

MaskSet
sampleMasks(const Network &net, Brng &brng)
{
    MaskSet masks;
    for (NodeId id = 0; id < net.size(); ++id) {
        const Layer &layer = net.layer(id);
        if (layer.kind() != LayerKind::Dropout)
            continue;
        // A dropout node's output shape equals the input shape the
        // forward hook sees, so drawing over shapeOf(id) consumes the
        // identical bit count in the identical order.
        const Shape &shape = net.shapeOf(id);
        FASTBCNN_CHECK_EQ(shape.rank(), 3u);
        BitVolume mask(shape.dim(0), shape.dim(1), shape.dim(2));
        for (std::size_t i = 0; i < mask.size(); ++i)
            mask.setFlat(i, brng.nextBit());
        masks.emplace(layer.name(), std::move(mask));
    }
    return masks;
}

const BitVolume *
SamplingHooks::dropoutMask(const std::string &layer_name,
                           const Shape &shape)
{
    if (!enabled_)
        return nullptr;
    FASTBCNN_CHECK_EQ(shape.rank(), 3u);
    BitVolume mask(shape.dim(0), shape.dim(1), shape.dim(2));
    for (std::size_t i = 0; i < mask.size(); ++i)
        mask.setFlat(i, brng_->nextBit());
    auto [it, inserted] = masks_.insert_or_assign(layer_name,
                                                  std::move(mask));
    (void)inserted;
    return &it->second;
}

const BitVolume *
ReplayHooks::dropoutMask(const std::string &layer_name,
                         const Shape &shape)
{
    auto it = masks_->find(layer_name);
    if (it == masks_->end())
        return nullptr;
    FASTBCNN_CHECK(it->second.channels() == shape.dim(0) &&
                   it->second.height() == shape.dim(1) &&
                   it->second.width() == shape.dim(2),
                   "replayed mask shape mismatch");
    return &it->second;
}

const BitVolume *
CaptureHooks::dropoutMask(const std::string &layer_name,
                          const Shape &shape)
{
    return inner_ ? inner_->dropoutMask(layer_name, shape) : nullptr;
}

void
CaptureHooks::onActivation(const std::string &layer_name, LayerKind kind,
                           const Tensor &out)
{
    if (inner_)
        inner_->onActivation(layer_name, kind, out);
    if (!filter_ || filter_(layer_name, kind))
        activations_.insert_or_assign(layer_name, out);
}

void
CaptureHooks::mutateActivation(const std::string &layer_name,
                               LayerKind kind, Tensor &out)
{
    if (inner_)
        inner_->mutateActivation(layer_name, kind, out);
}

const Tensor &
CaptureHooks::activation(const std::string &layer_name) const
{
    auto it = activations_.find(layer_name);
    if (it == activations_.end())
        fatal("no captured activation for layer '%s'",
              layer_name.c_str());
    return it->second;
}

} // namespace fastbcnn
