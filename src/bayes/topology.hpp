/**
 * @file
 * BCNN structural analysis: identifies the conv → ReLU → dropout
 * (→ pool) blocks that the skipping machinery and the accelerator
 * timing models operate on.
 */

#ifndef FASTBCNN_BAYES_TOPOLOGY_HPP
#define FASTBCNN_BAYES_TOPOLOGY_HPP

#include <vector>

#include "nn/conv2d.hpp"
#include "nn/network.hpp"

namespace fastbcnn {

/**
 * One Bayesian convolution block: a Conv2d whose output flows through
 * ReLU into a Dropout layer (the BCNN construction of Section II-A:
 * "a dropout layer after every convolutional layer").
 */
struct ConvBlock {
    std::size_t index;   ///< 0-based position in topological order
    NodeId conv;         ///< the Conv2d node
    NodeId relu;         ///< the ReLU consuming the conv
    NodeId dropout;      ///< the Dropout consuming the ReLU
    Shape outShape;      ///< conv output shape (CHW); equals mask shape
};

/**
 * Extracts and owns the list of ConvBlocks of a network.
 *
 * The analyzer requires every Conv2d (except none) to be followed by
 * ReLU then Dropout — the invariant of a properly constructed BCNN —
 * and calls fatal() otherwise, because the skipping strategy is
 * meaningless on a plain CNN.
 */
class BcnnTopology
{
  public:
    /** Analyse @p net; the network must outlive this object. */
    explicit BcnnTopology(const Network &net);

    /** @return the conv blocks in topological order. */
    const std::vector<ConvBlock> &blocks() const { return blocks_; }

    /** @return the analysed network. */
    const Network &network() const { return *net_; }

    /** @return the block whose conv node is @p conv; fatal if absent. */
    const ConvBlock &blockOfConv(NodeId conv) const;

    /** @return the block whose dropout layer has @p name. */
    const ConvBlock &blockOfDropout(const std::string &name) const;

    /** @return consumers of node @p id (nodes listing it as input). */
    const std::vector<NodeId> &consumersOf(NodeId id) const;

  private:
    const Network *net_;
    std::vector<ConvBlock> blocks_;
    std::vector<std::vector<NodeId>> consumers_;  // per node id
};

} // namespace fastbcnn

#endif // FASTBCNN_BAYES_TOPOLOGY_HPP
