#include "topology.hpp"

#include "common/check.hpp"
#include "nn/dropout.hpp"

namespace fastbcnn {

BcnnTopology::BcnnTopology(const Network &net)
    : net_(&net), consumers_(net.size())
{
    for (NodeId id = 0; id < net.size(); ++id) {
        for (NodeId producer : net.inputsOf(id)) {
            if (producer != Network::inputNode)
                consumers_[producer].push_back(id);
        }
    }

    for (NodeId id = 0; id < net.size(); ++id) {
        if (net.layer(id).kind() != LayerKind::Conv2d)
            continue;
        // Find the ReLU fed by this conv, then the Dropout fed by the
        // ReLU.  The BCNN construction guarantees a unique such chain.
        NodeId relu = Network::inputNode;
        for (NodeId c : consumers_[id]) {
            if (net.layer(c).kind() == LayerKind::ReLU) {
                relu = c;
                break;
            }
        }
        if (relu == Network::inputNode) {
            fatal("BCNN invariant violated: conv '%s' is not followed "
                  "by a ReLU", net.layer(id).name().c_str());
        }
        NodeId dropout = Network::inputNode;
        for (NodeId c : consumers_[relu]) {
            if (net.layer(c).kind() == LayerKind::Dropout) {
                dropout = c;
                break;
            }
        }
        if (dropout == Network::inputNode) {
            fatal("BCNN invariant violated: conv '%s' has no dropout "
                  "layer after its ReLU (add one per Section II-A)",
                  net.layer(id).name().c_str());
        }
        blocks_.push_back(ConvBlock{blocks_.size(), id, relu, dropout,
                                    net.shapeOf(id)});
    }
    if (blocks_.empty())
        fatal("network '%s' has no convolutional blocks", net.name().c_str());
}

const ConvBlock &
BcnnTopology::blockOfConv(NodeId conv) const
{
    for (const ConvBlock &b : blocks_) {
        if (b.conv == conv)
            return b;
    }
    fatal("node %zu is not a conv block", conv);
}

const ConvBlock &
BcnnTopology::blockOfDropout(const std::string &name) const
{
    for (const ConvBlock &b : blocks_) {
        if (net_->layer(b.dropout).name() == name)
            return b;
    }
    fatal("no conv block with dropout layer '%s'", name.c_str());
}

const std::vector<NodeId> &
BcnnTopology::consumersOf(NodeId id) const
{
    FASTBCNN_CHECK(id < consumers_.size(), "node id out of range");
    return consumers_[id];
}

} // namespace fastbcnn
