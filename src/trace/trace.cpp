#include "trace.hpp"

#include <algorithm>

#include "common/math_util.hpp"
#include "guard/guard.hpp"

namespace fastbcnn {

namespace {

/** Evaluate one node given the per-node output vector and hooks. */
Tensor
evalNode(const Network &net, NodeId id, const Tensor &input,
         const std::vector<Tensor> &outputs, ForwardHooks *hooks)
{
    std::vector<const Tensor *> ins;
    ins.reserve(net.inputsOf(id).size());
    for (NodeId producer : net.inputsOf(id)) {
        ins.push_back(producer == Network::inputNode
                          ? &input : &outputs[producer]);
    }
    return net.layer(id).forward(ins, hooks);
}

/** Cnvlutin work of one block for one sample. */
struct CnvWork {
    std::array<std::uint64_t, 4> laneCycles{};
    std::uint64_t macs = 0;
};

/**
 * Cnvlutin cycle/work model for one block (DESIGN.md §5): the T_n
 * synapse lanes each own a contiguous slice of the input channels and
 * stream that slice's nonzero inputs; a window completes when the
 * slowest lane drains, so its cost is max over lanes of the lane's
 * nonzero count.  Computed from per-channel integral images of the
 * nonzero-input indicator.  When @p force_dense is set (layer 1:
 * Cnvlutin does not skip the raw image) every in-range input counts
 * as nonzero.
 */
CnvWork
cnvWork(const BlockInfo &info, const Tensor &conv_input,
        bool force_dense)
{
    const std::size_t in_h = conv_input.shape().dim(1);
    const std::size_t in_w = conv_input.shape().dim(2);
    const std::size_t n_ch = conv_input.shape().dim(0);

    // Per-channel integral image: pref(n, r, c) = nonzeros of channel
    // n in [0, r) x [0, c).
    const std::size_t stride_r = in_w + 1;
    const std::size_t stride_n = (in_h + 1) * stride_r;
    std::vector<std::uint32_t> prefix(n_ch * stride_n, 0);
    for (std::size_t n = 0; n < n_ch; ++n) {
        std::uint32_t *pf = prefix.data() + n * stride_n;
        for (std::size_t r = 0; r < in_h; ++r) {
            for (std::size_t c = 0; c < in_w; ++c) {
                const std::uint32_t nz =
                    (force_dense || conv_input(n, r, c) != 0.0f) ? 1
                                                                 : 0;
                pf[(r + 1) * stride_r + c + 1] =
                    nz + pf[r * stride_r + c + 1] +
                    pf[(r + 1) * stride_r + c] - pf[r * stride_r + c];
            }
        }
    }

    CnvWork work;
    std::vector<std::uint32_t> ch_nnz(n_ch, 0);
    for (std::size_t r = 0; r < info.outH; ++r) {
        const std::ptrdiff_t r0 = static_cast<std::ptrdiff_t>(
            r * info.stride) - static_cast<std::ptrdiff_t>(info.padding);
        const std::size_t lo_r = static_cast<std::size_t>(
            std::max<std::ptrdiff_t>(r0, 0));
        const std::size_t hi_r = static_cast<std::size_t>(
            std::min<std::ptrdiff_t>(r0 + static_cast<std::ptrdiff_t>(
                                         info.kernel),
                                     static_cast<std::ptrdiff_t>(in_h)));
        for (std::size_t c = 0; c < info.outW; ++c) {
            const std::ptrdiff_t c0 = static_cast<std::ptrdiff_t>(
                c * info.stride) -
                static_cast<std::ptrdiff_t>(info.padding);
            const std::size_t lo_c = static_cast<std::size_t>(
                std::max<std::ptrdiff_t>(c0, 0));
            const std::size_t hi_c = static_cast<std::size_t>(
                std::min<std::ptrdiff_t>(
                    c0 + static_cast<std::ptrdiff_t>(info.kernel),
                    static_cast<std::ptrdiff_t>(in_w)));
            for (std::size_t n = 0; n < n_ch; ++n) {
                const std::uint32_t *pf = prefix.data() + n * stride_n;
                ch_nnz[n] = pf[hi_r * stride_r + hi_c] -
                            pf[lo_r * stride_r + hi_c] -
                            pf[hi_r * stride_r + lo_c] +
                            pf[lo_r * stride_r + lo_c];
                work.macs += ch_nnz[n];
            }
            for (std::size_t i = 0; i < traceTnValues.size(); ++i) {
                const std::size_t lanes = traceTnValues[i];
                const std::size_t slice = ceilDiv(n_ch, lanes);
                std::uint64_t max_lane = 0;
                for (std::size_t lane = 0; lane * slice < n_ch;
                     ++lane) {
                    std::uint64_t nnz = 0;
                    const std::size_t hi = std::min(n_ch,
                                                    (lane + 1) * slice);
                    for (std::size_t n = lane * slice; n < hi; ++n)
                        nnz += ch_nnz[n];
                    max_lane = std::max(max_lane, nnz);
                }
                work.laneCycles[i] += max_lane;
            }
        }
    }
    return work;
}

} // namespace

std::uint64_t
BlockSampleTrace::totalDropped() const
{
    std::uint64_t n = 0;
    for (std::uint32_t v : dropped)
        n += v;
    return n;
}

std::uint64_t
BlockSampleTrace::totalPredicted() const
{
    std::uint64_t n = 0;
    for (std::uint32_t v : predicted)
        n += v;
    return n;
}

std::uint64_t
BlockSampleTrace::totalSkipped() const
{
    std::uint64_t n = 0;
    for (std::uint32_t v : skipped)
        n += v;
    return n;
}

TraceBundle
buildTrace(const BcnnTopology &topo, const IndicatorSet &indicators,
           const ThresholdSet &thresholds, const Tensor &input,
           const TraceOptions &opts)
{
    if (opts.samples == 0)
        fatal("trace needs at least one sample");
    const Network &net = topo.network();

    TraceBundle bundle;
    InferenceTrace &trace = bundle.trace;
    trace.model = net.name();
    trace.samples = opts.samples;
    trace.dropRate = opts.dropRate;

    // Pre-inference: zero maps define both the zero index the hardware
    // ships off-chip and the unaffected-neuron census reference.
    const ZeroMaps zero_maps = computeZeroMaps(topo, input);
    for (const ConvBlock &b : topo.blocks()) {
        const auto &conv =
            static_cast<const Conv2d &>(net.layer(b.conv));
        BlockInfo info;
        info.index = b.index;
        info.conv = b.conv;
        info.name = conv.name();
        info.inChannels = conv.inChannels();
        info.outChannels = conv.outChannels();
        info.kernel = conv.kernelSize();
        info.stride = conv.stride();
        info.padding = conv.padding();
        info.outH = b.outShape.dim(1);
        info.outW = b.outShape.dim(2);
        info.zeroPre = zero_maps.at(b.conv).popcount();
        trace.blocks.push_back(std::move(info));
    }

    auto brng = makeBrng(opts.brng, opts.dropRate, opts.seed);
    std::vector<Tensor> exact_outputs;
    std::vector<Tensor> fb_outputs;
    exact_outputs.reserve(opts.samples);

    for (std::size_t t = 0; t < opts.samples; ++t) {
        // Under a guard the sample uses whatever thresholds the guard
        // holds *now* — the trace loop is serial, so this reproduces
        // the guarded runner's round semantics with interval 1.
        ThresholdSet guard_thresholds;
        const ThresholdSet *active = &thresholds;
        if (opts.guard != nullptr) {
            guard_thresholds = opts.guard->effectiveThresholds();
            active = &guard_thresholds;
        }

        // Exact sample inference, node by node, keeping activations.
        std::vector<Tensor> node_out(net.size());
        SamplingHooks hooks(*brng, true);
        for (NodeId id = 0; id < net.size(); ++id)
            node_out[id] = evalNode(net, id, input, node_out, &hooks);
        const MaskSet masks = hooks.takeMasks();

        SampleTrace sample;
        sample.blocks.reserve(trace.blocks.size());
        for (std::size_t bi = 0; bi < trace.blocks.size(); ++bi) {
            const BlockInfo &info = trace.blocks[bi];
            const ConvBlock &b = topo.blocks()[bi];
            const auto &conv =
                static_cast<const Conv2d &>(net.layer(b.conv));
            const std::size_t plane = info.plane();

            BlockSampleTrace bst;
            bst.dropped.assign(info.outChannels, 0);
            bst.predicted.assign(info.outChannels, 0);
            bst.skipped.assign(info.outChannels, 0);

            // The block's own dropout mask gives the dropped neurons.
            const BitVolume &drop_mask =
                masks.at(net.layer(b.dropout).name());

            // Prediction bits exactly as the central predictor forms
            // them: counts from the effective input mask, thresholds,
            // AND the zero index.
            const BitVolume in_mask =
                effectiveInputMask(topo, b.conv, masks);
            const CountVolume counts = countDroppedNwInputs(
                conv, in_mask, indicators.of(b.conv));
            const BitVolume predicted = predictUnaffected(
                zero_maps.at(b.conv), counts, *active, b.conv);

            const Tensor &o_true = node_out[b.conv];
            const BitVolume &zeros = zero_maps.at(b.conv);
            for (std::size_t m = 0; m < info.outChannels; ++m) {
                for (std::size_t i = 0; i < plane; ++i) {
                    const std::size_t flat = m * plane + i;
                    const bool d = drop_mask.getFlat(flat);
                    const bool p = predicted.getFlat(flat);
                    const bool z_now = o_true.at(flat) <= 0.0f;
                    bst.dropped[m] += d ? 1 : 0;
                    bst.predicted[m] += p ? 1 : 0;
                    bst.skipped[m] += (d || p) ? 1 : 0;
                    if (zeros.getFlat(flat) && z_now)
                        ++bst.actualUnaffected;
                    if (p) {
                        if (z_now)
                            ++bst.correctPredictions;
                        else
                            ++bst.falsePredictions;
                    }
                }
            }

            // Cnvlutin work from the exact conv input of this sample.
            const NodeId producer = net.inputsOf(b.conv)[0];
            const Tensor &conv_in = producer == Network::inputNode
                                        ? input : node_out[producer];
            const CnvWork cw = cnvWork(info, conv_in,
                                       info.index == 0);
            bst.cnvLaneCyclesPerChannel = cw.laneCycles;
            bst.cnvMacsPerChannel = cw.macs;
            sample.blocks.push_back(std::move(bst));
        }
        trace.perSample.push_back(std::move(sample));

        if (opts.captureFunctional) {
            exact_outputs.push_back(node_out.back());
            PredictiveOptions popts;
            popts.captureNodeOutputs =
                opts.guard != nullptr &&
                opts.guard->options().audit.rate > 0.0;
            const PredictiveResult pres = predictiveForward(
                topo, indicators, zero_maps, *active, input, masks,
                popts);
            if (opts.guard != nullptr) {
                opts.guard->onSampleAudit(
                    popts.captureNodeOutputs
                        ? auditPredictedNeurons(
                              topo, input, pres.nodeOutputs,
                              pres.predicted,
                              opts.guard->options().audit, t)
                        : SampleAudit{t, {}});
            }
            fb_outputs.push_back(pres.output);
        }
    }

    if (opts.captureFunctional) {
        FunctionalOutcome &f = bundle.functional;
        f.exactSummary = summarizeSamples(exact_outputs);
        f.fbSummary = summarizeSamples(fb_outputs);
        f.exactMean = f.exactSummary.mean;
        f.fbMean = f.fbSummary.mean;
        f.exactArgmax = f.exactSummary.argmax;
        f.fbArgmax = f.fbSummary.argmax;
        if (exact_outputs.size() >= 2) {
            const std::size_t half = exact_outputs.size() / 2;
            const UncertaintySummary a = summarizeSamples(
                {exact_outputs.begin(), exact_outputs.begin() + half});
            const UncertaintySummary b = summarizeSamples(
                {exact_outputs.begin() + half, exact_outputs.end()});
            f.exactSplitDisagree = a.argmax != b.argmax;
        }
    }
    return bundle;
}

std::vector<BlockCensus>
censusOf(const InferenceTrace &trace)
{
    std::vector<BlockCensus> census;
    census.reserve(trace.blocks.size());
    for (std::size_t bi = 0; bi < trace.blocks.size(); ++bi) {
        const BlockInfo &info = trace.blocks[bi];
        BlockCensus c;
        c.name = info.name;
        c.neurons = info.neurons();
        c.zeroRatio = static_cast<double>(info.zeroPre) /
                      static_cast<double>(info.neurons());
        std::uint64_t unaffected = 0, dropped = 0, predicted = 0;
        std::uint64_t skipped = 0, correct = 0;
        for (const SampleTrace &s : trace.perSample) {
            const BlockSampleTrace &b = s.blocks[bi];
            unaffected += b.actualUnaffected;
            dropped += b.totalDropped();
            predicted += b.totalPredicted();
            skipped += b.totalSkipped();
            correct += b.correctPredictions;
        }
        const double denom = static_cast<double>(info.neurons()) *
                             static_cast<double>(trace.perSample.size());
        c.unaffectedRatio = static_cast<double>(unaffected) / denom;
        c.affectedRatio = c.zeroRatio - c.unaffectedRatio;
        c.unaffectedOfZero =
            info.zeroPre == 0
                ? 0.0
                : c.unaffectedRatio / c.zeroRatio;
        c.droppedRatio = static_cast<double>(dropped) / denom;
        c.predictedRatio = static_cast<double>(predicted) / denom;
        c.skipRatio = static_cast<double>(skipped) / denom;
        c.predictionAccuracy =
            predicted == 0 ? 1.0
                           : static_cast<double>(correct) /
                                 static_cast<double>(predicted);
        census.push_back(std::move(c));
    }
    return census;
}

} // namespace fastbcnn
