/**
 * @file
 * Trace-driven simulation interface (DESIGN.md §5).
 *
 * Phase 1 (here): run the exact functional BCNN MC-dropout inference
 * once and record, per sample and per conv block, everything any of
 * the timing models needs — per-channel dropped / predicted / skipped
 * neuron counts, Cnvlutin-style nonzero-input work, and the neuron
 * census behind Fig. 3/4.  Phase 2 (src/sim) replays these traces
 * under different accelerator configurations without recomputing any
 * numerics.
 */

#ifndef FASTBCNN_TRACE_TRACE_HPP
#define FASTBCNN_TRACE_TRACE_HPP

#include <array>
#include <string>
#include <vector>

#include "skip/threshold_optimizer.hpp"

namespace fastbcnn {

class SkipGuard;

/** The T_n values the Cnvlutin work sums are precomputed for. */
inline constexpr std::array<std::size_t, 4> traceTnValues{4, 8, 16, 32};

/** Static geometry of one conv block (identical across samples). */
struct BlockInfo {
    std::size_t index = 0;        ///< block order
    NodeId conv = 0;              ///< conv node id in the network
    std::string name;             ///< conv layer name
    std::size_t inChannels = 0;   ///< N
    std::size_t outChannels = 0;  ///< M
    std::size_t kernel = 0;       ///< K
    std::size_t stride = 0;
    std::size_t padding = 0;
    std::size_t outH = 0;         ///< R
    std::size_t outW = 0;         ///< C
    std::uint64_t zeroPre = 0;    ///< pre-inference zero neurons
    /** @return neurons per output channel (R·C). */
    std::size_t plane() const { return outH * outW; }
    /** @return total neurons (M·R·C). */
    std::uint64_t neurons() const
    {
        return static_cast<std::uint64_t>(outChannels) * plane();
    }
    /** @return MACs of one dense neuron (K²·N). */
    std::uint64_t macsPerNeuron() const
    {
        return static_cast<std::uint64_t>(kernel) * kernel * inChannels;
    }
};

/** Per-sample, per-block dynamic skip/census data. */
struct BlockSampleTrace {
    /** Dropped output neurons per channel (dropout bit = 1). */
    std::vector<std::uint32_t> dropped;
    /** Predicted-unaffected neurons per channel. */
    std::vector<std::uint32_t> predicted;
    /** |dropped ∪ predicted| per channel (the skip engine's view). */
    std::vector<std::uint32_t> skipped;
    /**
     * Cnvlutin cycles per output channel: Σ over the channel's
     * neurons of the *slowest synapse lane's* nonzero count, where the
     * T_n lanes each own a contiguous slice of the input channels —
     * the real Cnvlutin bottleneck.  One value per T_n in
     * traceTnValues; identical for every output channel of a block
     * (windows are channel-independent), so one copy is stored.
     */
    std::array<std::uint64_t, 4> cnvLaneCyclesPerChannel{};
    /**
     * Cnvlutin multiplications per output channel: Σ over windows of
     * the window's nonzero-input count (T_n-independent).
     */
    std::uint64_t cnvMacsPerChannel = 0;
    /** Census: zero-pre neurons still zero in this sample's output. */
    std::uint64_t actualUnaffected = 0;
    /** Census: predicted neurons that are truly zero (correct). */
    std::uint64_t correctPredictions = 0;
    /** Census: predicted neurons that are non-zero (mispredicted). */
    std::uint64_t falsePredictions = 0;

    /** @return total dropped neurons in the block. */
    std::uint64_t totalDropped() const;
    /** @return total predicted neurons in the block. */
    std::uint64_t totalPredicted() const;
    /** @return total skipped neurons in the block. */
    std::uint64_t totalSkipped() const;
};

/** All blocks of one sample inference. */
struct SampleTrace {
    std::vector<BlockSampleTrace> blocks;
};

/** A complete captured MC-dropout run of one input. */
struct InferenceTrace {
    std::string model;            ///< network name
    std::size_t samples = 0;      ///< T
    double dropRate = 0.0;        ///< p
    std::vector<BlockInfo> blocks;
    std::vector<SampleTrace> perSample;  ///< size T
};

/** Functional outcomes used for accuracy-loss measurements. */
struct FunctionalOutcome {
    Tensor exactMean;   ///< exact MC-dropout mean output (Eq. 4)
    Tensor fbMean;      ///< Fast-BCNN (prediction mode) mean output
    std::size_t exactArgmax = 0;
    std::size_t fbArgmax = 0;
    UncertaintySummary exactSummary;
    UncertaintySummary fbSummary;
    /**
     * MC-noise floor: true when the argmax of the first half of the
     * exact samples disagrees with the second half's.  Skipping-induced
     * argmax flips below this floor are estimator noise, not accuracy
     * loss.
     */
    bool exactSplitDisagree = false;
};

/** Trace construction options. */
struct TraceOptions {
    std::size_t samples = 50;
    double dropRate = 0.3;
    BrngKind brng = BrngKind::Lfsr;
    std::uint64_t seed = 1;
    /** Also run the predictive cascade to capture functional outputs
     *  (needed for accuracy; ~2x slower to build). */
    bool captureFunctional = true;
    /**
     * Optional skip guard (not owned; may be nullptr).  When set, each
     * sample's census and predictive cascade use the guard's *current*
     * effective thresholds instead of the fixed @ref buildTrace
     * thresholds, and — when captureFunctional is also on — the
     * predictive pass is shadow-audited and folded into the guard, so
     * a trace doubles as a guarded run.  Without captureFunctional the
     * guard only supplies thresholds (there is no predictive cascade
     * to audit).
     */
    SkipGuard *guard = nullptr;
};

/** The trace plus the functional outcome of one input. */
struct TraceBundle {
    InferenceTrace trace;
    FunctionalOutcome functional;  ///< valid when captureFunctional
};

/**
 * Build the trace of one input under a fixed threshold set.
 *
 * @param topo       analysed BCNN
 * @param indicators weight-sign indicators
 * @param thresholds per-kernel α (from optimizeThresholds)
 * @param input      the image
 * @param opts       sampling configuration
 */
TraceBundle buildTrace(const BcnnTopology &topo,
                       const IndicatorSet &indicators,
                       const ThresholdSet &thresholds,
                       const Tensor &input, const TraceOptions &opts);

/** Aggregated neuron census of one block (Fig. 3/4 statistics). */
struct BlockCensus {
    std::string name;
    std::uint64_t neurons = 0;          ///< per sample
    double zeroRatio = 0.0;             ///< zero-pre / neurons
    double unaffectedRatio = 0.0;       ///< actually-unaffected mean
    double affectedRatio = 0.0;         ///< zero-pre minus unaffected
    double unaffectedOfZero = 0.0;      ///< unaffected / zero-pre
    double droppedRatio = 0.0;          ///< dropout bits
    double predictedRatio = 0.0;        ///< predicted-unaffected
    double skipRatio = 0.0;             ///< |dropped ∪ predicted|
    double predictionAccuracy = 0.0;    ///< correct / predicted
};

/** Compute the per-block census averaged over a trace's samples. */
std::vector<BlockCensus> censusOf(const InferenceTrace &trace);

} // namespace fastbcnn

#endif // FASTBCNN_TRACE_TRACE_HPP
