/**
 * @file
 * 32-bit linear feedback shift register, modelled after the hardware
 * BRNG of Fast-BCNN (Fig. 8 (b)): taps at positions 25, 26, 30 and 32,
 * i.e. the maximal-length polynomial x^32 + x^30 + x^26 + x^25 + 1.
 */

#ifndef FASTBCNN_RNG_LFSR_HPP
#define FASTBCNN_RNG_LFSR_HPP

#include <cstdint>

namespace fastbcnn {

/**
 * A Fibonacci-style 32-bit LFSR.
 *
 * Each step() shifts the register by one and feeds back the XOR of the
 * tapped bits; the "leftmost" (most significant) bit is read out as a
 * uniformly distributed random bit, exactly as the paper's hardware
 * does.  The all-zero state is forbidden (the register would lock up),
 * so a zero seed is silently remapped.
 */
class Lfsr32
{
  public:
    /** Tap positions (1-indexed from the LSB end, per Fig. 8 (b)). */
    static constexpr unsigned tap1 = 32;
    static constexpr unsigned tap2 = 30;
    static constexpr unsigned tap3 = 26;
    static constexpr unsigned tap4 = 25;

    /** Construct with a seed; 0 is remapped to a fixed non-zero state. */
    explicit Lfsr32(std::uint32_t seed = 0xace1u);

    /** Advance one cycle and @return the output bit (0 or 1). */
    std::uint32_t step();

    /** @return the current register contents (for tests). */
    std::uint32_t state() const { return state_; }

  private:
    std::uint32_t state_;
};

} // namespace fastbcnn

#endif // FASTBCNN_RNG_LFSR_HPP
