#include "brng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace fastbcnn {

LfsrBrng::LfsrBrng(double drop_rate, std::uint32_t seed)
    : dropRate_(drop_rate),
      threshold_(static_cast<std::uint32_t>(
          std::lround(256.0 * drop_rate))),
      lfsrs_{Lfsr32(seed * 2654435761u + 1), Lfsr32(seed * 40503u + 3),
             Lfsr32(seed ^ 0xdeadbeefu), Lfsr32(seed + 0x9e3779b9u),
             Lfsr32(~seed), Lfsr32(seed << 7 | 5u),
             Lfsr32(seed * 48271u + 11), Lfsr32(seed ^ 0x5bd1e995u)}
{
    FASTBCNN_CHECK(drop_rate >= 0.0 && drop_rate <= 1.0,
                   "drop rate must be a probability");
    // Warm up so correlated seeds decorrelate before first use.
    for (int i = 0; i < 64; ++i)
        (void)nextUniform8();
}

std::uint32_t
LfsrBrng::nextUniform8()
{
    std::uint32_t u = 0;
    for (std::size_t i = 0; i < lfsrs_.size(); ++i)
        u |= lfsrs_[i].step() << i;
    return u;
}

bool
LfsrBrng::nextBit()
{
    return nextUniform8() < threshold_;
}

SoftwareBrng::SoftwareBrng(double drop_rate, std::uint64_t seed)
    : dropRate_(drop_rate), engine_(seed), dist_(drop_rate)
{
    FASTBCNN_CHECK(drop_rate >= 0.0 && drop_rate <= 1.0,
                   "drop rate must be a probability");
}

bool
SoftwareBrng::nextBit()
{
    return dist_(engine_);
}

double
measureDropRate(Brng &brng, std::size_t n)
{
    FASTBCNN_CHECK(n > 0, "need at least one draw");
    std::size_t ones = 0;
    for (std::size_t i = 0; i < n; ++i)
        ones += brng.nextBit() ? 1 : 0;
    return static_cast<double>(ones) / static_cast<double>(n);
}

} // namespace fastbcnn
