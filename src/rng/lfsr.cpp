#include "lfsr.hpp"

namespace fastbcnn {

Lfsr32::Lfsr32(std::uint32_t seed)
    : state_(seed == 0 ? 0xace1u : seed)
{
}

std::uint32_t
Lfsr32::step()
{
    // XOR of the tapped bits; tap position p (1-indexed) is bit p-1.
    const std::uint32_t fb =
        ((state_ >> (tap1 - 1)) ^ (state_ >> (tap2 - 1)) ^
         (state_ >> (tap3 - 1)) ^ (state_ >> (tap4 - 1))) & 1u;
    state_ = (state_ << 1) | fb;
    // The leftmost bit is the per-cycle uniform output.
    return (state_ >> 31) & 1u;
}

} // namespace fastbcnn
