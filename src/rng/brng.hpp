/**
 * @file
 * Bernoulli random number generators producing dropout bits.
 *
 * Two implementations:
 *  - LfsrBrng: the hardware design from Section V-B3 — eight 32-bit
 *    LFSRs, one output bit each, combined into an 8-bit uniform value
 *    and compared against the threshold t = 2^8 * drop_rate.
 *  - SoftwareBrng: a std::mt19937-backed reference, the "software
 *    approach" column of Table III.
 */

#ifndef FASTBCNN_RNG_BRNG_HPP
#define FASTBCNN_RNG_BRNG_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <random>

#include "lfsr.hpp"

namespace fastbcnn {

/**
 * Abstract Bernoulli bit source.  nextBit() == true means "this neuron
 * is dropped" (dropout bit 1), matching the paper's convention.
 */
class Brng
{
  public:
    virtual ~Brng() = default;

    /** Draw one dropout bit. */
    virtual bool nextBit() = 0;

    /** @return the configured drop probability. */
    virtual double dropRate() const = 0;
};

/**
 * Hardware LFSR-based BRNG (Fig. 8 (b)).
 *
 * Eight LFSRs step in lockstep; their output bits form an 8-bit
 * uniform integer u in [0, 255].  The dropout bit is (u < t) with
 * t = round(2^8 * drop_rate).
 */
class LfsrBrng : public Brng
{
  public:
    /**
     * @param drop_rate Bernoulli probability of producing a 1
     * @param seed      distinct seeds are derived per LFSR from this
     */
    explicit LfsrBrng(double drop_rate, std::uint32_t seed = 0x1234u);

    bool nextBit() override;
    double dropRate() const override { return dropRate_; }

    /** @return the 8-bit comparison threshold t = 2^8 * drop_rate. */
    std::uint32_t threshold() const { return threshold_; }

    /** Draw the raw 8-bit uniform value (advances the generator). */
    std::uint32_t nextUniform8();

  private:
    double dropRate_;
    std::uint32_t threshold_;
    std::array<Lfsr32, 8> lfsrs_;
};

/** Software mt19937-based BRNG (Table III comparison column). */
class SoftwareBrng : public Brng
{
  public:
    explicit SoftwareBrng(double drop_rate, std::uint64_t seed = 42);

    bool nextBit() override;
    double dropRate() const override { return dropRate_; }

  private:
    double dropRate_;
    std::mt19937_64 engine_;
    std::bernoulli_distribution dist_;
};

/**
 * Measure the empirical drop rate of @p brng over @p n draws
 * (the Table III experiment).
 */
double measureDropRate(Brng &brng, std::size_t n);

} // namespace fastbcnn

#endif // FASTBCNN_RNG_BRNG_HPP
