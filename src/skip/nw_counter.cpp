#include "nw_counter.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "simd/simd.hpp"

namespace fastbcnn {

CountVolume::CountVolume(std::size_t channels, std::size_t height,
                         std::size_t width)
    : channels_(channels), height_(height), width_(width),
      data_(channels * height * width, 0)
{
}

std::uint16_t &
CountVolume::at(std::size_t c, std::size_t r, std::size_t col)
{
    FASTBCNN_CHECK(c < channels_ && r < height_ && col < width_,
                   "CountVolume index out of range");
    return data_[(c * height_ + r) * width_ + col];
}

std::uint16_t
CountVolume::at(std::size_t c, std::size_t r, std::size_t col) const
{
    FASTBCNN_CHECK(c < channels_ && r < height_ && col < width_,
                   "CountVolume index out of range");
    return data_[(c * height_ + r) * width_ + col];
}

std::uint16_t
CountVolume::atFlat(std::size_t i) const
{
    FASTBCNN_CHECK_LT(i, data_.size());
    return data_[i];
}

std::uint16_t
CountVolume::maxValue() const
{
    std::uint16_t m = 0;
    for (std::uint16_t v : data_)
        m = std::max(m, v);
    return m;
}

CountVolume
countDroppedNwInputs(const Conv2d &conv, const BitVolume &input_mask,
                     const LayerIndicators &indicators)
{
    FASTBCNN_CHECK_EQ(input_mask.channels(), conv.inChannels());
    const std::size_t k = conv.kernelSize();
    const std::size_t s = conv.stride();
    const std::size_t p = conv.padding();
    const std::size_t in_h = input_mask.height();
    const std::size_t in_w = input_mask.width();
    const std::size_t out_h = (in_h + 2 * p - k) / s + 1;
    const std::size_t out_w = (in_w + 2 * p - k) / s + 1;

    CountVolume counts(conv.outChannels(), out_h, out_w);
    // Eq. 5 inner loops live in the dispatched SIMD kernel layer: the
    // vector levels collapse each indicator row into one
    // popcount(mask_window & indicator_bits) per output column.  The
    // plane scratch is hoisted here so the hot kernels never allocate.
    std::vector<std::uint32_t> row_scratch(out_h * out_w, 0);
    for (std::size_t m = 0; m < conv.outChannels(); ++m) {
        const BitVolume &ind = indicators.kernel(m);
        FASTBCNN_DCHECK(ind.channels() == conv.inChannels() &&
                        ind.height() == k && ind.width() == k,
                        "indicator volume shape mismatch");
        simd::active().countKernelPlane(
            input_mask.words(), ind.words(), &counts.at(m, 0, 0),
            row_scratch.data(), conv.inChannels(), in_h, in_w, out_h,
            out_w, k, s, p);
    }
    return counts;
}

} // namespace fastbcnn
