#include "nw_counter.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace fastbcnn {

namespace {

/**
 * Eq. 5 inner loops for one output kernel m: slide the indicator
 * volume over the dropout mask and count dropped nw-inputs per output
 * position into @p out (a preallocated out_h*out_w plane).  This is
 * the skip predictor's central per-sample operation (FASTBCNN_HOT —
 * lint rule R3 keeps allocation, locks, I/O and logging out).
 */
FASTBCNN_HOT void
countKernelPlane(const BitVolume &input_mask, const BitVolume &ind,
                 std::uint16_t *out, std::size_t in_channels,
                 std::size_t in_h, std::size_t in_w, std::size_t out_h,
                 std::size_t out_w, std::size_t k, std::size_t s,
                 std::size_t p)
{
    for (std::size_t r = 0; r < out_h; ++r) {
        for (std::size_t c = 0; c < out_w; ++c) {
            std::uint32_t n_d = 0;
            for (std::size_t n = 0; n < in_channels; ++n) {
                for (std::size_t i = 0; i < k; ++i) {
                    const std::ptrdiff_t in_r =
                        static_cast<std::ptrdiff_t>(r * s + i) -
                        static_cast<std::ptrdiff_t>(p);
                    if (in_r < 0 ||
                        in_r >= static_cast<std::ptrdiff_t>(in_h)) {
                        continue;
                    }
                    for (std::size_t j = 0; j < k; ++j) {
                        const std::ptrdiff_t in_c =
                            static_cast<std::ptrdiff_t>(c * s + j) -
                            static_cast<std::ptrdiff_t>(p);
                        if (in_c < 0 ||
                            in_c >=
                                static_cast<std::ptrdiff_t>(in_w)) {
                            continue;
                        }
                        if (input_mask.get(
                                n, static_cast<std::size_t>(in_r),
                                static_cast<std::size_t>(in_c)) &&
                            ind.get(n, i, j)) {
                            ++n_d;
                        }
                    }
                }
            }
            out[r * out_w + c] = static_cast<std::uint16_t>(
                std::min<std::uint32_t>(n_d, 0xffffu));
        }
    }
}

} // namespace

CountVolume::CountVolume(std::size_t channels, std::size_t height,
                         std::size_t width)
    : channels_(channels), height_(height), width_(width),
      data_(channels * height * width, 0)
{
}

std::uint16_t &
CountVolume::at(std::size_t c, std::size_t r, std::size_t col)
{
    FASTBCNN_CHECK(c < channels_ && r < height_ && col < width_,
                   "CountVolume index out of range");
    return data_[(c * height_ + r) * width_ + col];
}

std::uint16_t
CountVolume::at(std::size_t c, std::size_t r, std::size_t col) const
{
    FASTBCNN_CHECK(c < channels_ && r < height_ && col < width_,
                   "CountVolume index out of range");
    return data_[(c * height_ + r) * width_ + col];
}

std::uint16_t
CountVolume::atFlat(std::size_t i) const
{
    FASTBCNN_CHECK_LT(i, data_.size());
    return data_[i];
}

std::uint16_t
CountVolume::maxValue() const
{
    std::uint16_t m = 0;
    for (std::uint16_t v : data_)
        m = std::max(m, v);
    return m;
}

CountVolume
countDroppedNwInputs(const Conv2d &conv, const BitVolume &input_mask,
                     const LayerIndicators &indicators)
{
    FASTBCNN_CHECK_EQ(input_mask.channels(), conv.inChannels());
    const std::size_t k = conv.kernelSize();
    const std::size_t s = conv.stride();
    const std::size_t p = conv.padding();
    const std::size_t in_h = input_mask.height();
    const std::size_t in_w = input_mask.width();
    const std::size_t out_h = (in_h + 2 * p - k) / s + 1;
    const std::size_t out_w = (in_w + 2 * p - k) / s + 1;

    CountVolume counts(conv.outChannels(), out_h, out_w);
    for (std::size_t m = 0; m < conv.outChannels(); ++m) {
        countKernelPlane(input_mask, indicators.kernel(m),
                         &counts.at(m, 0, 0), conv.inChannels(), in_h,
                         in_w, out_h, out_w, k, s, p);
    }
    return counts;
}

} // namespace fastbcnn
