#include "indicator.hpp"

#include "common/check.hpp"

namespace fastbcnn {

LayerIndicators::LayerIndicators(const Conv2d &conv)
{
    const std::size_t m_total = conv.outChannels();
    const std::size_t n_total = conv.inChannels();
    const std::size_t k = conv.kernelSize();
    planes_.reserve(m_total);
    for (std::size_t m = 0; m < m_total; ++m) {
        BitVolume plane(n_total, k, k);
        for (std::size_t n = 0; n < n_total; ++n) {
            for (std::size_t i = 0; i < k; ++i) {
                for (std::size_t j = 0; j < k; ++j) {
                    plane.set(n, i, j,
                              conv.weights()(m, n, i, j) <= 0.0f);
                }
            }
        }
        planes_.push_back(std::move(plane));
    }
}

const BitVolume &
LayerIndicators::kernel(std::size_t m) const
{
    FASTBCNN_CHECK(m < planes_.size(), "kernel index out of range");
    return planes_[m];
}

std::size_t
LayerIndicators::negativeCount(std::size_t m) const
{
    return kernel(m).popcount();
}

std::size_t
LayerIndicators::storageBits() const
{
    std::size_t bits = 0;
    for (const BitVolume &p : planes_)
        bits += p.size();
    return bits;
}

IndicatorSet::IndicatorSet(const BcnnTopology &topo)
{
    for (const ConvBlock &b : topo.blocks()) {
        const auto &conv =
            static_cast<const Conv2d &>(topo.network().layer(b.conv));
        byConv_.emplace(b.conv, LayerIndicators(conv));
    }
}

const LayerIndicators &
IndicatorSet::of(NodeId conv) const
{
    auto it = byConv_.find(conv);
    if (it == byConv_.end())
        fatal("no indicators for node %zu", conv);
    return it->second;
}

std::size_t
IndicatorSet::storageBits() const
{
    std::size_t bits = 0;
    for (const auto &[id, ind] : byConv_)
        bits += ind.storageBits();
    return bits;
}

} // namespace fastbcnn
