/**
 * @file
 * Weight-sign indicator bits (Section V-B2): each conv kernel's
 * weights are compressed to one bit per weight — 1 for negative
 * weights, 0 for positive — so the prediction unit can count dropped
 * nw-inputs with AND gates and counters instead of arithmetic.
 */

#ifndef FASTBCNN_SKIP_INDICATOR_HPP
#define FASTBCNN_SKIP_INDICATOR_HPP

#include <map>
#include <vector>

#include "bayes/topology.hpp"
#include "common/bitvolume.hpp"

namespace fastbcnn {

/**
 * Indicator planes for one conv layer: for each output kernel m a
 * BitVolume of shape (N, K, K) where bit (n, i, j) is set when weight
 * w(m, n, i, j) <= 0 (Algorithm 1 line 4, "Idx_n").
 */
class LayerIndicators
{
  public:
    /** Build from a conv layer's current weights. */
    explicit LayerIndicators(const Conv2d &conv);

    /** @return indicator planes of kernel @p m. */
    const BitVolume &kernel(std::size_t m) const;

    /** @return number of kernels (output channels). */
    std::size_t kernels() const { return planes_.size(); }

    /** @return count of negative weights in kernel @p m. */
    std::size_t negativeCount(std::size_t m) const;

    /** @return total indicator storage in bits (hardware mini-buffer). */
    std::size_t storageBits() const;

  private:
    std::vector<BitVolume> planes_;
};

/** Indicator sets of every conv block of a network, keyed by conv node. */
class IndicatorSet
{
  public:
    /** Profile every conv block of @p topo (the "Preparation" stage). */
    explicit IndicatorSet(const BcnnTopology &topo);

    /** @return indicators of the conv at node @p conv. */
    const LayerIndicators &of(NodeId conv) const;

    /** @return total storage in bits across all layers. */
    std::size_t storageBits() const;

  private:
    std::map<NodeId, LayerIndicators> byConv_;
};

} // namespace fastbcnn

#endif // FASTBCNN_SKIP_INDICATOR_HPP
