#include "threshold_optimizer.hpp"

#include <algorithm>

#include "common/math_util.hpp"

namespace fastbcnn {

namespace {

/** Central-predictor counter width: counts clamp to 10 bits. */
constexpr std::size_t counterCeiling = 1 << 10;

/** Per-(input, sample) evaluation state for the lockstep cascade. */
struct SampleState {
    std::size_t inputIdx = 0;
    MaskSet masks;
    std::vector<Tensor> trueOutputs;  ///< exact dropout inference
    std::vector<Tensor> cascOutputs;  ///< prediction-mode cascade
};

/** Evaluate one node given a per-node output vector and hooks. */
Tensor
evalNode(const Network &net, NodeId id, const Tensor &input,
         const std::vector<Tensor> &outputs, ForwardHooks *hooks)
{
    std::vector<const Tensor *> ins;
    ins.reserve(net.inputsOf(id).size());
    for (NodeId producer : net.inputsOf(id)) {
        ins.push_back(producer == Network::inputNode
                          ? &input : &outputs[producer]);
    }
    return net.layer(id).forward(ins, hooks);
}

} // namespace

Status
validateOptimizerOptions(const OptimizerOptions &opts)
{
    if (opts.initialThreshold <= 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "OptimizerOptions::initialThreshold Th must be "
                      "positive (got %d)", opts.initialThreshold);
    }
    if (opts.step <= 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "OptimizerOptions::step Δs must be positive "
                      "(got %d)", opts.step);
    }
    if (!(opts.confidence > 0.0 && opts.confidence <= 1.0)) {
        return errorf(ErrorCode::InvalidArgument,
                      "OptimizerOptions::confidence p_cf %g outside "
                      "(0, 1]", opts.confidence);
    }
    if (opts.samples == 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "OptimizerOptions::samples: need at least one "
                      "tuning sample (got 0)");
    }
    if (!(opts.dropRate >= 0.0 && opts.dropRate < 1.0)) {
        return errorf(ErrorCode::InvalidArgument,
                      "OptimizerOptions::dropRate %g outside [0, 1)",
                      opts.dropRate);
    }
    if (!(opts.tolerance >= 0.0f)) {
        return errorf(ErrorCode::InvalidArgument,
                      "OptimizerOptions::tolerance %g must be >= 0 "
                      "and finite",
                      static_cast<double>(opts.tolerance));
    }
    return Status::ok();
}

Expected<OptimizeResult>
tryOptimizeThresholds(const BcnnTopology &topo,
                      const IndicatorSet &indicators,
                      const std::vector<Tensor> &dataset,
                      const OptimizerOptions &opts)
{
    if (dataset.empty()) {
        return errorf(ErrorCode::InvalidArgument,
                      "threshold optimization needs at least one "
                      "input: an empty tuning set would leave every "
                      "alpha at Th (degenerate prediction)");
    }
    FASTBCNN_RETURN_IF_ERROR(validateOptimizerOptions(opts));

    const Network &net = topo.network();
    const int th0 = static_cast<int>(
        std::min<std::size_t>(
            static_cast<std::size_t>(std::max(opts.initialThreshold, 1)),
            counterCeiling));

    // Preparation (Algorithm 1 lines 1-5): zero maps per input; the
    // indicator bits arrive pre-profiled.
    std::vector<ZeroMaps> zero_maps;
    zero_maps.reserve(dataset.size());
    for (const Tensor &input : dataset)
        zero_maps.push_back(computeZeroMaps(topo, input));

    // Phase A: exact dropout inferences ("Inference", line 13) — one
    // pass per (input, sample) recording masks and node outputs.
    auto brng = makeBrng(opts.brng, opts.dropRate, opts.seed);
    std::vector<SampleState> states;
    states.reserve(dataset.size() * opts.samples);
    for (std::size_t d = 0; d < dataset.size(); ++d) {
        for (std::size_t t = 0; t < opts.samples; ++t) {
            SampleState st;
            st.inputIdx = d;
            st.trueOutputs.resize(net.size());
            SamplingHooks hooks(*brng, true);
            for (NodeId id = 0; id < net.size(); ++id) {
                st.trueOutputs[id] = evalNode(net, id, dataset[d],
                                              st.trueOutputs, &hooks);
            }
            st.masks = hooks.takeMasks();
            st.cascOutputs.resize(net.size());
            states.push_back(std::move(st));
        }
    }

    // Optimization (lines 7-23), evaluated as a lockstep cascade: every
    // node is computed exactly once per sample; when a conv block is
    // reached its kernels' α are frozen from N_d histograms, then its
    // prediction is applied so downstream nodes see the cascade.
    OptimizeResult result;
    result.thresholds = ThresholdSet(topo, th0);

    for (NodeId id = 0; id < net.size(); ++id) {
        for (SampleState &st : states) {
            ReplayHooks replay(st.masks);
            st.cascOutputs[id] = evalNode(net, id, dataset[st.inputIdx],
                                          st.cascOutputs, &replay);
        }
        if (net.layer(id).kind() != LayerKind::Conv2d)
            continue;

        const ConvBlock &block = topo.blockOfConv(id);
        const auto &conv = static_cast<const Conv2d &>(net.layer(id));
        const std::size_t m_total = conv.outChannels();
        const std::size_t plane = block.outShape.dim(1) *
                                  block.outShape.dim(2);

        // Histograms over zero-pre neurons, bucketed by N_d, plus the
        // α-independent correctness of everything else.
        std::vector<std::vector<std::uint64_t>> pred_ok(
            m_total, std::vector<std::uint64_t>(counterCeiling, 0));
        std::vector<std::vector<std::uint64_t>> base_ok(
            m_total, std::vector<std::uint64_t>(counterCeiling, 0));
        std::vector<std::uint64_t> fixed_ok(m_total, 0);

        for (SampleState &st : states) {
            const BitVolume in_mask =
                effectiveInputMask(topo, id, st.masks);
            const CountVolume counts = countDroppedNwInputs(
                conv, in_mask, indicators.of(id));
            const BitVolume &zeros = zero_maps[st.inputIdx].at(id);
            const Tensor &o_true = st.trueOutputs[id];
            const Tensor &o_base = st.cascOutputs[id];
            for (std::size_t m = 0; m < m_total; ++m) {
                for (std::size_t i = 0; i < plane; ++i) {
                    const std::size_t flat = m * plane + i;
                    const float tv = std::max(o_true.at(flat), 0.0f);
                    const float bv = std::max(o_base.at(flat), 0.0f);
                    // A predicted neuron is forced to zero, so it is
                    // correct exactly when the true value is zero.
                    const bool p_ok = tv == 0.0f;
                    const bool b_ok =
                        opts.metric == PredictMetric::PatternMatch
                            ? (bv == 0.0f) == (tv == 0.0f)
                            : nearlyEqual(bv, tv, opts.tolerance);
                    if (zeros.getFlat(flat)) {
                        const std::size_t v = std::min<std::size_t>(
                            counts.atFlat(flat), counterCeiling - 1);
                        pred_ok[m][v] += p_ok ? 1 : 0;
                        base_ok[m][v] += b_ok ? 1 : 0;
                    } else {
                        fixed_ok[m] += b_ok ? 1 : 0;
                    }
                }
            }
        }

        // Inner while-loop of Algorithm 1: α decreases from Th by Δs
        // until the confidence level is met.
        const std::uint64_t total_per_kernel =
            static_cast<std::uint64_t>(plane) * states.size();
        const double target = opts.confidence *
                              static_cast<double>(total_per_kernel);
        BlockTuneReport report;
        report.conv = id;
        report.achievedConfidence = 1.0;
        report.evaluatedNeurons = total_per_kernel * m_total;
        double alpha_sum = 0.0;

        for (std::size_t m = 0; m < m_total; ++m) {
            // Prefix sums: correct(α) = fixed + Σ_{v<α} predOk +
            // Σ_{v>=α} baseOk.
            std::vector<std::uint64_t> pred_prefix(counterCeiling + 1,
                                                   0);
            std::vector<std::uint64_t> base_suffix(counterCeiling + 1,
                                                   0);
            for (std::size_t v = 0; v < counterCeiling; ++v) {
                pred_prefix[v + 1] = pred_prefix[v] + pred_ok[m][v];
            }
            for (std::size_t v = counterCeiling; v-- > 0;) {
                base_suffix[v] = base_suffix[v + 1] + base_ok[m][v];
            }
            auto correct = [&](int alpha) {
                const std::size_t a = static_cast<std::size_t>(
                    clampValue<int>(alpha, 0,
                                    static_cast<int>(counterCeiling)));
                return fixed_ok[m] + pred_prefix[a] + base_suffix[a];
            };
            int alpha = th0;
            while (alpha > 0 &&
                   static_cast<double>(correct(alpha)) < target) {
                alpha -= opts.step;
            }
            alpha = std::max(alpha, 0);
            result.thresholds.set(id, m, alpha);
            alpha_sum += alpha;
            const double conf = static_cast<double>(correct(alpha)) /
                                static_cast<double>(total_per_kernel);
            report.achievedConfidence =
                std::min(report.achievedConfidence, conf);
        }
        report.meanAlpha = alpha_sum / static_cast<double>(m_total);
        result.reports.push_back(report);

        // Apply the frozen prediction so downstream blocks tune
        // against the real cascade (prediction mode from layer 1).
        for (SampleState &st : states) {
            const BitVolume in_mask =
                effectiveInputMask(topo, id, st.masks);
            const CountVolume counts = countDroppedNwInputs(
                conv, in_mask, indicators.of(id));
            const BitVolume predicted = predictUnaffected(
                zero_maps[st.inputIdx].at(id), counts,
                result.thresholds, id);
            Tensor &out = st.cascOutputs[id];
            for (std::size_t i = 0; i < out.numel(); ++i) {
                if (predicted.getFlat(i))
                    out.at(i) = 0.0f;
            }
        }
    }
    // Blocks that cannot reach p_cf even with prediction disabled are
    // dominated by upstream cascade error; summarise once.
    std::size_t below = 0;
    for (const BlockTuneReport &r : result.reports)
        below += r.achievedConfidence < opts.confidence ? 1 : 0;
    if (below > 0) {
        informVerbose("threshold optimization: %zu of %zu blocks below "
                      "the requested confidence %.2f even at alpha = 0 "
                      "(upstream cascade error dominates there)",
                      below, result.reports.size(), opts.confidence);
    }
    return result;
}

OptimizeResult
optimizeThresholds(const BcnnTopology &topo,
                   const IndicatorSet &indicators,
                   const std::vector<Tensor> &dataset,
                   const OptimizerOptions &opts)
{
    Expected<OptimizeResult> result =
        tryOptimizeThresholds(topo, indicators, dataset, opts);
    if (!result)
        fatal("threshold optimization failed: %s",
              result.error().toString().c_str());
    return std::move(result).value();
}

std::map<NodeId, double>
evaluatePrediction(const BcnnTopology &topo,
                   const IndicatorSet &indicators,
                   const ThresholdSet &thresholds,
                   const std::vector<Tensor> &dataset,
                   const OptimizerOptions &opts)
{
    if (dataset.empty())
        fatal("evaluatePrediction needs at least one input");
    const Network &net = topo.network();
    auto brng = makeBrng(opts.brng, opts.dropRate, opts.seed);

    std::map<NodeId, std::uint64_t> correct;
    std::map<NodeId, std::uint64_t> total;
    for (const Tensor &input : dataset) {
        const ZeroMaps zeros = computeZeroMaps(topo, input);
        for (std::size_t t = 0; t < opts.samples; ++t) {
            // Exact pass (records masks) then the predictive cascade.
            SamplingHooks hooks(*brng, true);
            CaptureHooks capture(&hooks,
                                 [](const std::string &, LayerKind k) {
                                     return k == LayerKind::Conv2d;
                                 });
            net.forward(input, &capture);
            const MaskSet masks = hooks.takeMasks();

            PredictiveOptions popts;
            popts.captureConvOutputs = true;
            const PredictiveResult pres = predictiveForward(
                topo, indicators, zeros, thresholds, input, masks,
                popts);

            for (const ConvBlock &b : topo.blocks()) {
                const Tensor &o_true = capture.activation(
                    net.layer(b.conv).name());
                const Tensor &o_pred = pres.convOutputs.at(b.conv);
                for (std::size_t i = 0; i < o_true.numel(); ++i) {
                    const float tv = std::max(o_true.at(i), 0.0f);
                    const float pv = std::max(o_pred.at(i), 0.0f);
                    const bool ok =
                        opts.metric == PredictMetric::PatternMatch
                            ? (pv == 0.0f) == (tv == 0.0f)
                            : nearlyEqual(pv, tv, opts.tolerance);
                    correct[b.conv] += ok ? 1 : 0;
                    total[b.conv] += 1;
                }
            }
        }
    }
    std::map<NodeId, double> fractions;
    for (const auto &[id, c] : correct) {
        fractions[id] = static_cast<double>(c) /
                        static_cast<double>(total[id]);
    }
    return fractions;
}

} // namespace fastbcnn
