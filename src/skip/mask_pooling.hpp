/**
 * @file
 * Mask pooling and effective-input-mask resolution.
 *
 * The hardware's mask pooling unit (Section V-B2) converts the dropout
 * mask of a pre-pool feature map into the mask seen by the next conv
 * layer: a pooled position counts as dropped only when *all* bits in
 * its window are dropped, because max pooling forwards any non-dropped
 * non-zero value.
 */

#ifndef FASTBCNN_SKIP_MASK_POOLING_HPP
#define FASTBCNN_SKIP_MASK_POOLING_HPP

#include "bayes/hooks.hpp"
#include "bayes/topology.hpp"
#include "common/bitvolume.hpp"

namespace fastbcnn {

/**
 * Pool a dropout mask through a window of @p kernel/@p stride/@p pad.
 * Out-of-range (zero-padding) positions count as dropped: a constant
 * zero can never contribute a non-zero pooled value.
 */
BitVolume maskPool(const BitVolume &mask, std::size_t kernel,
                   std::size_t stride, std::size_t pad);

/**
 * Resolve the dropout mask a given network node's *output* carries,
 * i.e. which positions of that activation are guaranteed-zero due to
 * dropout.  Dropout nodes introduce their recorded mask; pooling
 * applies maskPool(); Concat concatenates; shape-preserving layers
 * (ReLU, LRN) pass through; anything that mixes values (Conv, Linear,
 * input) yields an all-zero mask.
 *
 * @param topo  analysed network
 * @param id    node whose output mask is wanted (inputNode allowed)
 * @param masks this sample's recorded masks; dropout layers missing
 *              from the set contribute all-zero masks (pre-inference)
 */
BitVolume maskAtNode(const BcnnTopology &topo, NodeId id,
                     const MaskSet &masks);

/**
 * The mask the accelerator's prediction unit sees at the *input* of a
 * conv block: maskAtNode() of the conv's producer.
 */
BitVolume effectiveInputMask(const BcnnTopology &topo, NodeId conv,
                             const MaskSet &masks);

} // namespace fastbcnn

#endif // FASTBCNN_SKIP_MASK_POOLING_HPP
