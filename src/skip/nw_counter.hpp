/**
 * @file
 * Counting of dropped nw-inputs per output neuron (Fig. 9): the binary
 * convolution of the input dropout mask with each kernel's indicator
 * bits.  This is the prediction unit's data product; the central
 * predictor then compares the counts against per-kernel thresholds.
 */

#ifndef FASTBCNN_SKIP_NW_COUNTER_HPP
#define FASTBCNN_SKIP_NW_COUNTER_HPP

#include <cstdint>
#include <vector>

#include "indicator.hpp"
#include "mask_pooling.hpp"

namespace fastbcnn {

/** A dense (M, R, C) grid of 16-bit counters. */
class CountVolume
{
  public:
    CountVolume() = default;

    /** Construct a zeroed (channels, height, width) grid. */
    CountVolume(std::size_t channels, std::size_t height,
                std::size_t width);

    /** @return number of channels. */
    std::size_t channels() const { return channels_; }
    /** @return rows. */
    std::size_t height() const { return height_; }
    /** @return columns. */
    std::size_t width() const { return width_; }

    /** Element access. */
    std::uint16_t &at(std::size_t c, std::size_t r, std::size_t col);
    /** Element access (const). */
    std::uint16_t at(std::size_t c, std::size_t r, std::size_t col) const;

    /** Flat element access (c*H*W + r*W + col order). */
    std::uint16_t atFlat(std::size_t i) const;

    /** @return total element count. */
    std::size_t size() const { return data_.size(); }

    /** @return the largest counter value (0 for empty). */
    std::uint16_t maxValue() const;

  private:
    std::size_t channels_ = 0;
    std::size_t height_ = 0;
    std::size_t width_ = 0;
    std::vector<std::uint16_t> data_;
};

/**
 * Count the dropped nw-inputs N_d for every output neuron of a conv
 * block: N_d(m, r, c) = Σ_{n,i,j} mask(n, r·s+i−p, c·s+j−p) AND
 * indicator_m(n, i, j).  Zero-padding positions contribute nothing
 * (they were already zero without dropout).
 *
 * @param conv       the block's convolution layer (geometry source)
 * @param input_mask the effective input dropout mask (N, H, W)
 * @param indicators the layer's weight-sign indicator planes
 */
CountVolume countDroppedNwInputs(const Conv2d &conv,
                                 const BitVolume &input_mask,
                                 const LayerIndicators &indicators);

} // namespace fastbcnn

#endif // FASTBCNN_SKIP_NW_COUNTER_HPP
