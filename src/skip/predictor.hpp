/**
 * @file
 * The unaffected-neuron predictor (Section IV-A, Eq. 5): combines the
 * pre-inference zero-neuron index, the per-neuron dropped-nw-input
 * counts and the per-kernel thresholds into a predicted-unaffected
 * bitmap — exactly the central predictor's function (prediction bit =
 * (N_d < α) AND zero-index bit).
 */

#ifndef FASTBCNN_SKIP_PREDICTOR_HPP
#define FASTBCNN_SKIP_PREDICTOR_HPP

#include "nw_counter.hpp"
#include "thresholds.hpp"

namespace fastbcnn {

/** Zero-neuron indices of the pre-inference, keyed by conv node. */
using ZeroMaps = std::map<NodeId, BitVolume>;

/**
 * Run the non-dropout pre-inference and record, for every conv block,
 * which post-ReLU neurons are zero (the "location[L]" of Algorithm 1
 * line 3).
 *
 * @param topo  analysed BCNN
 * @param input the input image
 * @return per-conv-block zero maps of shape (M, R, C)
 */
ZeroMaps computeZeroMaps(const BcnnTopology &topo, const Tensor &input);

/**
 * Produce the prediction bitmap for one conv block.
 *
 * @param zero_map   the block's pre-inference zero map (M, R, C)
 * @param counts     dropped-nw-input counts for this sample (M, R, C)
 * @param thresholds per-kernel α values of this conv
 * @param conv       the conv node id (threshold lookup key)
 * @return bit (m, r, c) set iff the neuron is predicted unaffected
 */
BitVolume predictUnaffected(const BitVolume &zero_map,
                            const CountVolume &counts,
                            const ThresholdSet &thresholds, NodeId conv);

/**
 * Ground truth for prediction quality: the bitmap of *actually*
 * unaffected neurons, i.e. zero in the pre-inference and still zero
 * (post-ReLU) in the dropout sample's true conv output.
 *
 * @param zero_map    the block's pre-inference zero map
 * @param true_output the sample's exact conv output (pre-ReLU)
 */
BitVolume actualUnaffected(const BitVolume &zero_map,
                           const Tensor &true_output);

/**
 * Ground truth for the audit layer: the bitmap of mispredicted
 * neurons, i.e. predicted unaffected (forced to zero by the skip
 * engine) but actually positive (post-ReLU) in the sample's true conv
 * output.  The shadow audit estimates exactly this set's density by
 * re-computing a sampled fraction of @p predicted; tests compare the
 * estimate against this full enumeration.
 *
 * @param predicted   the block's prediction bitmap (predictUnaffected)
 * @param true_output the sample's exact conv output (pre-ReLU)
 */
BitVolume mispredicted(const BitVolume &predicted,
                       const Tensor &true_output);

} // namespace fastbcnn

#endif // FASTBCNN_SKIP_PREDICTOR_HPP
