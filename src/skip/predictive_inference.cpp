#include "predictive_inference.hpp"

namespace fastbcnn {

PredictiveResult
predictiveForward(const BcnnTopology &topo,
                  const IndicatorSet &indicators,
                  const ZeroMaps &zero_maps,
                  const ThresholdSet &thresholds, const Tensor &input,
                  const MaskSet &masks, const PredictiveOptions &opts)
{
    const Network &net = topo.network();
    ReplayHooks replay(masks);

    PredictiveResult result;
    std::vector<Tensor> outputs(net.size());

    for (NodeId id = 0; id < net.size(); ++id) {
        std::vector<const Tensor *> ins;
        ins.reserve(net.inputsOf(id).size());
        for (NodeId producer : net.inputsOf(id)) {
            ins.push_back(producer == Network::inputNode
                              ? &input : &outputs[producer]);
        }
        outputs[id] = net.layer(id).forward(ins, &replay);

        if (net.layer(id).kind() != LayerKind::Conv2d)
            continue;
        const ConvBlock &block = topo.blockOfConv(id);
        if (block.index > opts.upToBlock)
            continue;

        // Emulate the central predictor for this block: count dropped
        // nw-inputs from the effective input mask, compare with the
        // per-kernel thresholds, AND with the zero index, then force
        // the predicted neurons to zero (the MUX in the skip engine).
        const auto &conv = static_cast<const Conv2d &>(net.layer(id));
        const BitVolume in_mask = effectiveInputMask(topo, id, masks);
        const CountVolume counts =
            countDroppedNwInputs(conv, in_mask, indicators.of(id));
        BitVolume predicted = predictUnaffected(
            zero_maps.at(id), counts, thresholds, id);

        Tensor &out = outputs[id];
        for (std::size_t i = 0; i < out.numel(); ++i) {
            if (predicted.getFlat(i))
                out.at(i) = 0.0f;
        }
        result.predictedNeurons += predicted.popcount();
        if (opts.captureConvOutputs)
            result.convOutputs.emplace(id, out);
        result.predicted.emplace(id, std::move(predicted));
    }

    result.output = outputs.back();
    if (opts.captureNodeOutputs)
        result.nodeOutputs = std::move(outputs);
    return result;
}

} // namespace fastbcnn
