#include "mask_pooling.hpp"

#include "common/check.hpp"
#include "nn/pooling.hpp"

namespace fastbcnn {

BitVolume
maskPool(const BitVolume &mask, std::size_t kernel, std::size_t stride,
         std::size_t pad)
{
    FASTBCNN_CHECK(kernel > 0 && stride > 0, "bad pooling geometry");
    const std::size_t h = mask.height() + 2 * pad;
    const std::size_t w = mask.width() + 2 * pad;
    FASTBCNN_CHECK(h >= kernel && w >= kernel,
                   "pool window larger than padded mask");
    const std::size_t out_h = (h - kernel) / stride + 1;
    const std::size_t out_w = (w - kernel) / stride + 1;
    BitVolume out(mask.channels(), out_h, out_w);
    for (std::size_t c = 0; c < mask.channels(); ++c) {
        for (std::size_t r = 0; r < out_h; ++r) {
            for (std::size_t col = 0; col < out_w; ++col) {
                bool all_dropped = true;
                for (std::size_t i = 0; i < kernel && all_dropped; ++i) {
                    const std::ptrdiff_t in_r =
                        static_cast<std::ptrdiff_t>(r * stride + i) -
                        static_cast<std::ptrdiff_t>(pad);
                    for (std::size_t j = 0; j < kernel; ++j) {
                        const std::ptrdiff_t in_c =
                            static_cast<std::ptrdiff_t>(col * stride + j)
                            - static_cast<std::ptrdiff_t>(pad);
                        const bool in_range =
                            in_r >= 0 && in_c >= 0 &&
                            in_r < static_cast<std::ptrdiff_t>(
                                mask.height()) &&
                            in_c < static_cast<std::ptrdiff_t>(
                                mask.width());
                        // Padding positions are constant zero, which
                        // behaves as "dropped" for pooling purposes.
                        const bool dropped =
                            !in_range ||
                            mask.get(c, static_cast<std::size_t>(in_r),
                                     static_cast<std::size_t>(in_c));
                        if (!dropped) {
                            all_dropped = false;
                            break;
                        }
                    }
                }
                out.set(c, r, col, all_dropped);
            }
        }
    }
    return out;
}

BitVolume
maskAtNode(const BcnnTopology &topo, NodeId id, const MaskSet &masks)
{
    const Network &net = topo.network();
    auto zero_mask_of = [&](const Shape &s) {
        FASTBCNN_CHECK(s.rank() == 3, "mask resolution needs CHW");
        return BitVolume(s.dim(0), s.dim(1), s.dim(2));
    };
    if (id == Network::inputNode)
        return zero_mask_of(net.inputShape());

    const Layer &layer = net.layer(id);
    switch (layer.kind()) {
      case LayerKind::Dropout: {
        auto it = masks.find(layer.name());
        if (it == masks.end())
            return zero_mask_of(net.shapeOf(id));
        return it->second;
      }
      case LayerKind::MaxPool2d:
      case LayerKind::AvgPool2d: {
        const auto &pool = static_cast<const Pool2dBase &>(layer);
        BitVolume producer =
            maskAtNode(topo, net.inputsOf(id)[0], masks);
        return maskPool(producer, pool.kernelSize(), pool.stride(),
                        pool.padding());
      }
      case LayerKind::Concat: {
        const Shape &out = net.shapeOf(id);
        BitVolume result(out.dim(0), out.dim(1), out.dim(2));
        std::size_t ch = 0;
        for (NodeId producer : net.inputsOf(id)) {
            BitVolume part = maskAtNode(topo, producer, masks);
            for (std::size_t c = 0; c < part.channels(); ++c) {
                for (std::size_t r = 0; r < part.height(); ++r) {
                    for (std::size_t w = 0; w < part.width(); ++w) {
                        if (part.get(c, r, w))
                            result.set(ch + c, r, w, true);
                    }
                }
            }
            ch += part.channels();
        }
        return result;
      }
      case LayerKind::ReLU:
      case LayerKind::LocalResponseNorm:
        // Shape-preserving and zero-preserving: the mask passes through.
        return maskAtNode(topo, net.inputsOf(id)[0], masks);
      default:
        // Value-mixing layers destroy per-position dropout knowledge.
        return zero_mask_of(net.shapeOf(id));
    }
}

BitVolume
effectiveInputMask(const BcnnTopology &topo, NodeId conv,
                   const MaskSet &masks)
{
    return maskAtNode(topo, topo.network().inputsOf(conv)[0], masks);
}

} // namespace fastbcnn
