/**
 * @file
 * Per-kernel prediction thresholds α (Section IV-A2).  Thresholds are
 * model-dependent, produced offline by the optimizer (Algorithm 1) and
 * consumed at runtime by the central predictor.
 */

#ifndef FASTBCNN_SKIP_THRESHOLDS_HPP
#define FASTBCNN_SKIP_THRESHOLDS_HPP

#include <iosfwd>
#include <map>
#include <vector>

#include "bayes/topology.hpp"

namespace fastbcnn {

/**
 * The α values for every kernel of every conv block, keyed by the
 * conv's node id.  α is an int: a neuron with N_d < α is predicted
 * unaffected (Eq. 5); α = 0 disables prediction for that kernel.
 */
class ThresholdSet
{
  public:
    ThresholdSet() = default;

    /** Initialise every kernel of every block of @p topo to @p value. */
    ThresholdSet(const BcnnTopology &topo, int value);

    /** @return threshold of kernel @p m of the conv at node @p conv. */
    int of(NodeId conv, std::size_t m) const;

    /** Set the threshold of kernel @p m of the conv at @p conv. */
    void set(NodeId conv, std::size_t m, int value);

    /** @return all kernel thresholds of one conv (empty if unknown). */
    const std::vector<int> &layer(NodeId conv) const;

    /** @return true when the set holds thresholds for node @p conv. */
    bool has(NodeId conv) const;

    /** @return every conv's kernel thresholds (guard iteration). */
    const std::map<NodeId, std::vector<int>> &all() const
    {
        return byConv_;
    }

    /** @return the mean threshold across every kernel (diagnostics). */
    double mean() const;

    /**
     * Serialise as "conv_node m alpha" lines; loadText() reverses it.
     * This is the artefact of the offline optimization stage.
     */
    void saveText(std::ostream &os) const;

    /** Parse the saveText() format; fatal() on malformed input. */
    static ThresholdSet loadText(std::istream &is);

  private:
    std::map<NodeId, std::vector<int>> byConv_;
};

} // namespace fastbcnn

#endif // FASTBCNN_SKIP_THRESHOLDS_HPP
