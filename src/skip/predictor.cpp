#include "predictor.hpp"

#include "bayes/hooks.hpp"
#include "common/check.hpp"

namespace fastbcnn {

namespace {

/**
 * Threshold-compare loops of the central predictor: a neuron is
 * predicted unaffected when it is zero in the pre-inference AND its
 * dropped nw-input count stays below the kernel's α (FASTBCNN_HOT —
 * lint rule R3 keeps allocation, locks, I/O and logging out).
 */
FASTBCNN_HOT void
predictUnaffectedKernel(const BitVolume &zero_map,
                        const CountVolume &counts,
                        const ThresholdSet &thresholds, NodeId conv,
                        BitVolume &predicted)
{
    for (std::size_t m = 0; m < counts.channels(); ++m) {
        const int alpha = thresholds.of(conv, m);
        for (std::size_t r = 0; r < counts.height(); ++r) {
            for (std::size_t c = 0; c < counts.width(); ++c) {
                // Only zero neurons can be predicted unaffected
                // (the AND with the zero indexer in Section V-C).
                if (zero_map.get(m, r, c) &&
                    static_cast<int>(counts.at(m, r, c)) < alpha) {
                    predicted.set(m, r, c, true);
                }
            }
        }
    }
}

} // namespace

ZeroMaps
computeZeroMaps(const BcnnTopology &topo, const Tensor &input)
{
    // Capture every ReLU output of the non-dropout pre-inference.
    CaptureHooks capture(nullptr,
                         [](const std::string &, LayerKind k) {
                             return k == LayerKind::ReLU;
                         });
    topo.network().forward(input, &capture);

    ZeroMaps maps;
    for (const ConvBlock &b : topo.blocks()) {
        const Tensor &relu_out =
            capture.activation(topo.network().layer(b.relu).name());
        const Shape &s = relu_out.shape();
        BitVolume zero(s.dim(0), s.dim(1), s.dim(2));
        for (std::size_t i = 0; i < relu_out.numel(); ++i)
            zero.setFlat(i, relu_out.at(i) == 0.0f);
        maps.emplace(b.conv, std::move(zero));
    }
    return maps;
}

BitVolume
predictUnaffected(const BitVolume &zero_map, const CountVolume &counts,
                  const ThresholdSet &thresholds, NodeId conv)
{
    FASTBCNN_CHECK(zero_map.channels() == counts.channels() &&
                   zero_map.height() == counts.height() &&
                   zero_map.width() == counts.width(),
                   "zero map / count volume shape mismatch");
    BitVolume predicted(counts.channels(), counts.height(),
                        counts.width());
    predictUnaffectedKernel(zero_map, counts, thresholds, conv,
                            predicted);
    return predicted;
}

BitVolume
actualUnaffected(const BitVolume &zero_map, const Tensor &true_output)
{
    FASTBCNN_CHECK(true_output.shape().rank() == 3,
                   "conv output must be CHW");
    FASTBCNN_CHECK(zero_map.size() == true_output.numel(),
                   "zero map / output shape mismatch");
    BitVolume unaffected(zero_map.channels(), zero_map.height(),
                         zero_map.width());
    for (std::size_t i = 0; i < true_output.numel(); ++i) {
        // Post-ReLU zero <=> pre-activation <= 0.
        if (zero_map.getFlat(i) && true_output.at(i) <= 0.0f)
            unaffected.setFlat(i, true);
    }
    return unaffected;
}

BitVolume
mispredicted(const BitVolume &predicted, const Tensor &true_output)
{
    FASTBCNN_CHECK(true_output.shape().rank() == 3,
                   "conv output must be CHW");
    FASTBCNN_CHECK(predicted.size() == true_output.numel(),
                   "prediction map / output shape mismatch");
    BitVolume missed(predicted.channels(), predicted.height(),
                     predicted.width());
    for (std::size_t i = 0; i < true_output.numel(); ++i) {
        // Predicted unaffected (forced to zero) yet actually positive
        // pre-ReLU: the skip engine corrupted this neuron.
        if (predicted.getFlat(i) && true_output.at(i) > 0.0f)
            missed.setFlat(i, true);
    }
    return missed;
}

} // namespace fastbcnn
