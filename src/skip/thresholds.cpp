#include "thresholds.hpp"

#include <istream>
#include <ostream>

#include "common/check.hpp"

namespace fastbcnn {

ThresholdSet::ThresholdSet(const BcnnTopology &topo, int value)
{
    for (const ConvBlock &b : topo.blocks()) {
        const auto &conv =
            static_cast<const Conv2d &>(topo.network().layer(b.conv));
        byConv_[b.conv] = std::vector<int>(conv.outChannels(), value);
    }
}

int
ThresholdSet::of(NodeId conv, std::size_t m) const
{
    auto it = byConv_.find(conv);
    if (it == byConv_.end())
        fatal("no thresholds for conv node %zu", conv);
    FASTBCNN_CHECK(m < it->second.size(), "kernel index out of range");
    return it->second[m];
}

void
ThresholdSet::set(NodeId conv, std::size_t m, int value)
{
    auto it = byConv_.find(conv);
    if (it == byConv_.end())
        fatal("no thresholds for conv node %zu", conv);
    FASTBCNN_CHECK(m < it->second.size(), "kernel index out of range");
    it->second[m] = value;
}

const std::vector<int> &
ThresholdSet::layer(NodeId conv) const
{
    static const std::vector<int> empty;
    auto it = byConv_.find(conv);
    return it == byConv_.end() ? empty : it->second;
}

bool
ThresholdSet::has(NodeId conv) const
{
    return byConv_.count(conv) != 0;
}

double
ThresholdSet::mean() const
{
    double total = 0.0;
    std::size_t n = 0;
    for (const auto &[id, v] : byConv_) {
        for (int a : v) {
            total += a;
            ++n;
        }
    }
    return n == 0 ? 0.0 : total / static_cast<double>(n);
}

void
ThresholdSet::saveText(std::ostream &os) const
{
    for (const auto &[id, v] : byConv_) {
        for (std::size_t m = 0; m < v.size(); ++m)
            os << id << ' ' << m << ' ' << v[m] << '\n';
    }
}

ThresholdSet
ThresholdSet::loadText(std::istream &is)
{
    ThresholdSet set;
    std::size_t id = 0, m = 0;
    int alpha = 0;
    while (is >> id >> m >> alpha) {
        auto &v = set.byConv_[id];
        if (v.size() <= m)
            v.resize(m + 1, 0);
        v[m] = alpha;
    }
    if (!is.eof() && is.fail())
        fatal("malformed threshold file");
    return set;
}

} // namespace fastbcnn
