/**
 * @file
 * The prediction-mode forward pass ("PredictInference" of Algorithm 1,
 * and the functional semantics of the Fast-BCNN accelerator): every
 * neuron predicted unaffected is forced to zero without being
 * computed; everything else is computed exactly.
 */

#ifndef FASTBCNN_SKIP_PREDICTIVE_INFERENCE_HPP
#define FASTBCNN_SKIP_PREDICTIVE_INFERENCE_HPP

#include "predictor.hpp"

namespace fastbcnn {

/** Options for a predictive forward pass. */
struct PredictiveOptions {
    /**
     * Apply prediction only to blocks with index <= up_to_block
     * (Algorithm 1 runs prediction mode "from the first layer to the
     * current layer"); later blocks execute normally.
     */
    std::size_t upToBlock = static_cast<std::size_t>(-1);
    /** Record the (post-zeroing) conv outputs per conv node. */
    bool captureConvOutputs = false;
    /** Record the output of every node (used by the optimizer). */
    bool captureNodeOutputs = false;
};

/** Outcome of a predictive forward pass. */
struct PredictiveResult {
    Tensor output;                         ///< final network output
    std::map<NodeId, BitVolume> predicted; ///< per-conv predicted maps
    std::map<NodeId, Tensor> convOutputs;  ///< when captureConvOutputs
    std::vector<Tensor> nodeOutputs;       ///< when captureNodeOutputs
    std::uint64_t predictedNeurons = 0;    ///< total predicted count
};

/**
 * Execute one sample inference in prediction mode.
 *
 * @param topo       analysed BCNN
 * @param indicators per-layer weight-sign indicators
 * @param zero_maps  pre-inference zero maps (computeZeroMaps)
 * @param thresholds per-kernel α values
 * @param input      the input image
 * @param masks      this sample's recorded dropout masks
 * @param opts       scope / capture options
 */
PredictiveResult predictiveForward(const BcnnTopology &topo,
                                   const IndicatorSet &indicators,
                                   const ZeroMaps &zero_maps,
                                   const ThresholdSet &thresholds,
                                   const Tensor &input,
                                   const MaskSet &masks,
                                   const PredictiveOptions &opts = {});

} // namespace fastbcnn

#endif // FASTBCNN_SKIP_PREDICTIVE_INFERENCE_HPP
