/**
 * @file
 * Offline threshold optimization — Algorithm 1 of the paper.
 *
 * For each conv block (in topological order) and each of its kernels,
 * the threshold α starts at an initial value Th and is decreased by Δs
 * until the fraction of correctly predicted neurons in that kernel's
 * feature map, measured over T sample inferences with prediction mode
 * cascaded from the first layer, reaches the confidence level p_cf.
 *
 * Implementation note: because upstream thresholds are already frozen
 * when block l is tuned, the cascaded input of block l — and therefore
 * both the counts N_d and the non-predicted neuron values — do not
 * depend on block l's own α.  The inner while-loop of Algorithm 1 can
 * thus be evaluated against per-kernel histograms bucketed by N_d
 * instead of re-running inference per α step: identical results,
 * orders of magnitude cheaper.  Counters are clamped to 10 bits, the
 * width of the central predictor's adders (Section V-C).
 */

#ifndef FASTBCNN_SKIP_THRESHOLD_OPTIMIZER_HPP
#define FASTBCNN_SKIP_THRESHOLD_OPTIMIZER_HPP

#include "bayes/mc_runner.hpp"
#include "common/error.hpp"
#include "predictive_inference.hpp"

namespace fastbcnn {

/** How EvaluatePredict compares predictive and true feature maps. */
enum class PredictMetric {
    /**
     * A neuron is correct when the predictive and true maps agree on
     * zero vs non-zero (post-ReLU).  This is the reading that
     * reproduces Fig. 12a's confidence/speedup trade-off and is the
     * default.
     */
    PatternMatch,
    /** Stricter: values must also match within `tolerance`. */
    ValueMatch
};

/** Algorithm 1 inputs (names follow the paper). */
struct OptimizerOptions {
    int initialThreshold = 1 << 10;  ///< Th (10-bit counter ceiling)
    int step = 1;                    ///< Δs
    double confidence = 0.68;        ///< p_cf, the paper's sweet spot
    std::size_t samples = 8;         ///< T during optimization
    double dropRate = 0.3;           ///< dropout rate during tuning
    BrngKind brng = BrngKind::Software;
    std::uint64_t seed = 7;
    /** EvaluatePredict comparison mode (DESIGN.md §6 note 2). */
    PredictMetric metric = PredictMetric::PatternMatch;
    /** Value-match tolerance (ValueMatch metric only). */
    float tolerance = 0.05f;
};

/** Tuning diagnostics for one conv block. */
struct BlockTuneReport {
    NodeId conv = 0;
    double meanAlpha = 0.0;        ///< mean α over the block's kernels
    double achievedConfidence = 0.0;  ///< min per-kernel confidence
    std::uint64_t evaluatedNeurons = 0;
};

/** The optimizer's full output. */
struct OptimizeResult {
    ThresholdSet thresholds;
    std::vector<BlockTuneReport> reports;
};

/**
 * Validate @p opts at the API boundary (the engine does this before
 * any work).  @return ok, or an InvalidArgument error naming the bad
 * value: non-positive Th or Δs, p_cf outside (0, 1], zero tuning
 * samples, dropRate outside [0, 1), negative tolerance.
 */
[[nodiscard]] Status validateOptimizerOptions(
    const OptimizerOptions &opts);

/**
 * Run Algorithm 1 over an optimization dataset.
 *
 * Errors (never aborts): invalid options, or an empty tuning dataset —
 * tuning against nothing would silently "succeed" with every α left at
 * Th, a degenerate set that predicts nearly everything.
 *
 * @param topo       analysed BCNN
 * @param indicators weight-sign indicators ("Preparation", lines 4-5)
 * @param dataset    optimization inputs D (at least one)
 * @param opts       Th, Δs, p_cf, T, ...
 */
[[nodiscard]] Expected<OptimizeResult> tryOptimizeThresholds(
    const BcnnTopology &topo, const IndicatorSet &indicators,
    const std::vector<Tensor> &dataset,
    const OptimizerOptions &opts = {});

/**
 * Legacy convenience wrapper around tryOptimizeThresholds():
 * identical behaviour, but any error is fatal().
 */
OptimizeResult optimizeThresholds(const BcnnTopology &topo,
                                  const IndicatorSet &indicators,
                                  const std::vector<Tensor> &dataset,
                                  const OptimizerOptions &opts = {});

/**
 * Measure EvaluatePredict (the fraction of neurons of each block whose
 * predictive value matches the true value) for a fixed threshold set —
 * used by tests and the Fig. 12a sweep to verify achieved confidence.
 *
 * @return per-block correct fraction, averaged over samples, keyed by
 *         conv node.
 */
std::map<NodeId, double> evaluatePrediction(
    const BcnnTopology &topo, const IndicatorSet &indicators,
    const ThresholdSet &thresholds, const std::vector<Tensor> &dataset,
    const OptimizerOptions &opts);

} // namespace fastbcnn

#endif // FASTBCNN_SKIP_THRESHOLD_OPTIMIZER_HPP
