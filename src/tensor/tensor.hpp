/**
 * @file
 * A minimal dense float tensor used by the functional NN library.
 *
 * Feature maps are stored CHW (channel, row, column); batches are
 * handled one image at a time because the accelerator processes single
 * inputs (MC-dropout repeats one input T times, Section II-B).
 */

#ifndef FASTBCNN_TENSOR_TENSOR_HPP
#define FASTBCNN_TENSOR_TENSOR_HPP

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "common/check.hpp"

namespace fastbcnn {

/**
 * An N-dimensional extent (N <= 4 in practice: kernels are MCKK,
 * feature maps CHW, logits C).
 */
class Shape
{
  public:
    /** Construct an empty (rank-0) shape. */
    Shape() = default;

    /** Construct from a dimension list, e.g. Shape({16, 28, 28}). */
    Shape(std::initializer_list<std::size_t> dims) : dims_(dims) {}

    /** Construct from a vector of dimensions. */
    explicit Shape(std::vector<std::size_t> dims)
        : dims_(std::move(dims)) {}

    /** @return number of dimensions. */
    std::size_t rank() const { return dims_.size(); }

    /** @return extent of dimension @p i (bounds DCHECKed). */
    std::size_t dim(std::size_t i) const
    {
        FASTBCNN_DCHECK(i < dims_.size(), "shape dim out of range");
        return dims_[i];
    }

    /** @return product of all extents (1 for rank-0). */
    std::size_t numel() const;

    /** @return true when ranks and all extents match. */
    bool operator==(const Shape &other) const
    {
        return dims_ == other.dims_;
    }

    /** @return "[a, b, c]" rendering for diagnostics. */
    std::string toString() const;

    /** @return read-only view of the extents. */
    std::span<const std::size_t> dims() const { return dims_; }

  private:
    std::vector<std::size_t> dims_;
};

/**
 * A dense row-major float tensor.
 *
 * Value semantics (copyable, movable).  Indexing helpers are provided
 * for the ranks the library uses; all are bounds-checked through
 * FASTBCNN_DCHECK, active by default (FASTBCNN_DCHECKS=ON) because the
 * functional model is the accuracy reference for every experiment, and
 * compiled out only in explicitly-requested release builds.
 */
class Tensor
{
  public:
    /** Construct an empty tensor. */
    Tensor() = default;

    /** Construct a zero-filled tensor of the given shape. */
    explicit Tensor(Shape shape);

    /**
     * Construct from shape and explicit data (sizes must agree).  The
     * data is copied into the tensor's cache-line-aligned storage.
     */
    Tensor(Shape shape, std::vector<float> data);

    /** @return the tensor's shape. */
    const Shape &shape() const { return shape_; }

    /** @return total element count. */
    std::size_t numel() const { return data_.size(); }

    /** @return true when the tensor holds no elements. */
    bool empty() const { return data_.empty(); }

    /** Flat element access (bounds DCHECKed). */
    float &at(std::size_t i)
    {
        FASTBCNN_DCHECK(i < data_.size(), "flat index out of range");
        return data_[i];
    }
    /** Flat element access (const, bounds DCHECKed). */
    float at(std::size_t i) const
    {
        FASTBCNN_DCHECK(i < data_.size(), "flat index out of range");
        return data_[i];
    }

    /** Rank-1 access. */
    float &operator()(std::size_t i) { return at(i); }
    /** Rank-1 access (const). */
    float operator()(std::size_t i) const { return at(i); }

    /** Rank-3 (CHW) access. */
    float &operator()(std::size_t c, std::size_t h, std::size_t w);
    /** Rank-3 (CHW) access (const). */
    float operator()(std::size_t c, std::size_t h, std::size_t w) const;

    /** Rank-4 (MCKK kernel) access. */
    float &operator()(std::size_t m, std::size_t c, std::size_t i,
                      std::size_t j);
    /** Rank-4 (MCKK kernel) access (const). */
    float operator()(std::size_t m, std::size_t c, std::size_t i,
                     std::size_t j) const;

    /** @return mutable view of the underlying storage. */
    std::span<float> data() { return data_; }
    /** @return read-only view of the underlying storage. */
    std::span<const float> data() const { return data_; }

    /** Set every element to @p value. */
    void fill(float value);

    /** @return number of elements equal to zero. */
    std::size_t zeroCount() const;

    /** @return sum of all elements. */
    double sum() const;

    /** @return largest absolute element (0 for empty). */
    float maxAbs() const;

    /**
     * @return true when shapes match and every element pair satisfies
     * nearlyEqual(a, b, tol).
     */
    bool allClose(const Tensor &other, float tol = 1e-5f) const;

  private:
    std::size_t index3(std::size_t c, std::size_t h, std::size_t w) const;
    std::size_t index4(std::size_t m, std::size_t c, std::size_t i,
                       std::size_t j) const;

    Shape shape_;
    // 64-byte-aligned so the SIMD kernel layer's vector loads against
    // tensor storage never split a cache line (DESIGN.md §14).
    AlignedVector<float> data_;
};

} // namespace fastbcnn

#endif // FASTBCNN_TENSOR_TENSOR_HPP
