#include "tensor.hpp"

#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace fastbcnn {

std::size_t
Shape::numel() const
{
    std::size_t n = 1;
    for (std::size_t d : dims_)
        n *= d;
    return n;
}

std::string
Shape::toString() const
{
    std::string out = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        out += std::to_string(dims_[i]);
        if (i + 1 < dims_.size())
            out += ", ";
    }
    out += "]";
    return out;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_.numel(), 0.0f)
{
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(data.begin(), data.end())
{
    FASTBCNN_CHECK(data_.size() == shape_.numel(),
                   "tensor data size does not match shape");
}

std::size_t
Tensor::index3(std::size_t c, std::size_t h, std::size_t w) const
{
    FASTBCNN_DCHECK(shape_.rank() == 3, "rank-3 access on non-3D tensor");
    FASTBCNN_DCHECK(c < shape_.dim(0) && h < shape_.dim(1) &&
                    w < shape_.dim(2), "CHW index out of range");
    return (c * shape_.dim(1) + h) * shape_.dim(2) + w;
}

std::size_t
Tensor::index4(std::size_t m, std::size_t c, std::size_t i,
               std::size_t j) const
{
    FASTBCNN_DCHECK(shape_.rank() == 4, "rank-4 access on non-4D tensor");
    FASTBCNN_DCHECK(m < shape_.dim(0) && c < shape_.dim(1) &&
                    i < shape_.dim(2) && j < shape_.dim(3),
                    "MCKK index out of range");
    return ((m * shape_.dim(1) + c) * shape_.dim(2) + i) * shape_.dim(3)
           + j;
}

float &
Tensor::operator()(std::size_t c, std::size_t h, std::size_t w)
{
    return data_[index3(c, h, w)];
}

float
Tensor::operator()(std::size_t c, std::size_t h, std::size_t w) const
{
    return data_[index3(c, h, w)];
}

float &
Tensor::operator()(std::size_t m, std::size_t c, std::size_t i,
                   std::size_t j)
{
    return data_[index4(m, c, i, j)];
}

float
Tensor::operator()(std::size_t m, std::size_t c, std::size_t i,
                   std::size_t j) const
{
    return data_[index4(m, c, i, j)];
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

std::size_t
Tensor::zeroCount() const
{
    std::size_t n = 0;
    for (float v : data_)
        n += (v == 0.0f) ? 1 : 0;
    return n;
}

double
Tensor::sum() const
{
    return std::accumulate(data_.begin(), data_.end(), 0.0);
}

float
Tensor::maxAbs() const
{
    float m = 0.0f;
    for (float v : data_)
        m = std::max(m, std::fabs(v));
    return m;
}

bool
Tensor::allClose(const Tensor &other, float tol) const
{
    if (!(shape_ == other.shape_))
        return false;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        if (!nearlyEqual(data_[i], other.data_[i], tol))
            return false;
    }
    return true;
}

} // namespace fastbcnn
