/**
 * @file
 * Numeric precision selector for the inference engine.  Dependency-free
 * so that the MC runner, engine options and serve request types can all
 * name a precision without pulling in the quantization subsystem.
 */

#ifndef FASTBCNN_QUANT_PRECISION_HPP
#define FASTBCNN_QUANT_PRECISION_HPP

namespace fastbcnn {

/** Arithmetic used for the MC predictive forward passes. */
enum class Precision {
    Float32, ///< reference f32 path (SIMD float kernels)
    Int8,    ///< quantized path: int8 weights/activations, i32 accumulators
};

/** @return stable lowercase name ("f32" / "int8") of @p precision. */
inline const char *precisionName(Precision precision)
{
    return precision == Precision::Int8 ? "int8" : "f32";
}

/**
 * Parse a precision name as accepted on CLI flags and config files.
 *
 * @param name "f32", "float32", "fp32" or "int8", "i8"
 * @param out  parsed value, untouched on failure
 * @return true iff @p name named a precision
 */
inline bool precisionFromName(const char *name, Precision *out)
{
    const auto is = [name](const char *want) {
        const char *a = name;
        const char *b = want;
        while (*a != '\0' && *a == *b) {
            ++a;
            ++b;
        }
        return *a == '\0' && *b == '\0';
    };
    if (is("f32") || is("float32") || is("fp32")) {
        *out = Precision::Float32;
        return true;
    }
    if (is("int8") || is("i8")) {
        *out = Precision::Int8;
        return true;
    }
    return false;
}

} // namespace fastbcnn

#endif // FASTBCNN_QUANT_PRECISION_HPP
