#include "quant/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pooling.hpp"
#include "simd/kernels_internal.hpp"
#include "simd/simd.hpp"

namespace fastbcnn::quant {

namespace {

/// Calibration observer: records the running maxabs of every
/// parametric layer's output.  Dropout stays off (nullptr masks) —
/// calibration ranges come from the deterministic pre-inference path.
class MaxAbsHooks final : public ForwardHooks
{
  public:
    const BitVolume *dropoutMask(const std::string &layer_name,
                                 const Shape &shape) override
    {
        (void)layer_name;
        (void)shape;
        return nullptr;
    }

    void onActivation(const std::string &layer_name, LayerKind kind,
                      const Tensor &out) override
    {
        if (kind != LayerKind::Conv2d && kind != LayerKind::Linear)
            return;
        float &slot = maxAbs_[layer_name];  // zero on first touch
        slot = std::max(slot, out.maxAbs());
    }

    const std::map<std::string, float> &maxAbs() const { return maxAbs_; }

  private:
    std::map<std::string, float> maxAbs_;
};

bool
allFinite(const Tensor &t)
{
    for (float v : t.data()) {
        if (!std::isfinite(v))
            return false;
    }
    return true;
}

/**
 * Recompute the output scale from the *rounded* weight scale so that
 * outScale == inScale * wScale * 2^shift holds bit-exactly in float —
 * the invariant fromRecords() verifies.  The 2^shift multiply is exact
 * (power of two); the single rounding lives in inScale * wScale.
 */
float
chainOutScale(float in_scale, float w_scale, std::int32_t shift)
{
    const float s = in_scale * w_scale;
    return s * std::exp2f(static_cast<float>(shift));
}

bool
isParametric(LayerKind kind)
{
    return kind == LayerKind::Conv2d || kind == LayerKind::Linear;
}

/** Expected weight / bias element counts of a parametric node. */
void
paramCounts(const Network &net, const QuantNode &n, std::size_t &w_count,
            std::size_t &b_count, std::size_t &taps)
{
    if (n.kind == LayerKind::Conv2d) {
        const auto &c = static_cast<const Conv2d &>(net.layer(n.id));
        w_count = c.weights().numel();
        b_count = c.bias().numel();
        taps = c.inChannels() * c.kernelSize() * c.kernelSize();
    } else {
        const auto &l = static_cast<const Linear &>(net.layer(n.id));
        w_count = l.weights().numel();
        b_count = l.bias().numel();
        taps = l.inFeatures();
    }
}

} // namespace

float
scaleFromMaxAbs(float max_abs)
{
    return max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
}

std::int8_t
quantizeValue(float x, float scale)
{
    if (std::isnan(x))
        return 0;
    const double q =
        static_cast<double>(x) / static_cast<double>(scale);
    if (q >= 127.0)
        return 127;
    if (q <= -128.0)
        return -128;
    return static_cast<std::int8_t>(std::lround(q));
}

Expected<CalibrationProfile>
tryCalibrateActivations(const Network &net,
                        const std::vector<Tensor> &calib)
{
    if (calib.empty()) {
        return errorf(ErrorCode::InvalidArgument,
                      "calibration sweep for '%s' has no inputs",
                      net.name().c_str());
    }
    CalibrationProfile profile;
    MaxAbsHooks hooks;
    for (std::size_t i = 0; i < calib.size(); ++i) {
        const Tensor &in = calib[i];
        if (!(in.shape() == net.inputShape())) {
            return errorf(ErrorCode::InvalidArgument,
                          "calibration input %zu has shape %s, "
                          "network '%s' expects %s",
                          i, in.shape().toString().c_str(),
                          net.name().c_str(),
                          net.inputShape().toString().c_str());
        }
        if (!allFinite(in)) {
            return errorf(ErrorCode::InvalidArgument,
                          "calibration input %zu contains a "
                          "non-finite value", i);
        }
        profile.inputMaxAbs = std::max(profile.inputMaxAbs, in.maxAbs());
        (void)net.forward(in, &hooks);
    }
    for (const auto &[name, max_abs] : hooks.maxAbs()) {
        if (!std::isfinite(max_abs)) {
            return errorf(ErrorCode::InvalidArgument,
                          "calibration recorded a non-finite range "
                          "for layer '%s'", name.c_str());
        }
    }
    profile.outputMaxAbs = hooks.maxAbs();
    profile.samples = calib.size();
    return profile;
}

Expected<QuantizedNetwork>
QuantizedNetwork::fromSkeleton(const Network &net)
{
    if (net.size() == 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "cannot quantize empty network '%s'",
                      net.name().c_str());
    }
    NodeId last_linear = Network::inputNode;
    for (NodeId id = 0; id < net.size(); ++id) {
        const Layer &l = net.layer(id);
        const auto &ins = net.inputsOf(id);
        const NodeId expect = (id == 0) ? Network::inputNode : id - 1;
        if (ins.size() != 1 || ins[0] != expect) {
            return errorf(ErrorCode::InvalidArgument,
                          "int8 engine requires a sequential chain; "
                          "node '%s' breaks it", l.name().c_str());
        }
        switch (l.kind()) {
        case LayerKind::Conv2d:
        case LayerKind::ReLU:
        case LayerKind::MaxPool2d:
        case LayerKind::Dropout:
        case LayerKind::Flatten:
        case LayerKind::Linear:
        case LayerKind::Softmax:
            break;
        default:
            return errorf(ErrorCode::InvalidArgument,
                          "int8 engine does not support %s layer '%s'",
                          layerKindName(l.kind()), l.name().c_str());
        }
        if (l.kind() == LayerKind::Linear)
            last_linear = id;
    }
    if (last_linear == Network::inputNode) {
        return errorf(ErrorCode::InvalidArgument,
                      "int8 engine requires a Linear head; network "
                      "'%s' has none", net.name().c_str());
    }
    for (NodeId id = last_linear + 1; id < net.size(); ++id) {
        if (net.layer(id).kind() != LayerKind::Softmax) {
            return errorf(ErrorCode::InvalidArgument,
                          "int8 engine allows only Softmax after the "
                          "Linear head, found %s layer '%s'",
                          layerKindName(net.layer(id).kind()),
                          net.layer(id).name().c_str());
        }
    }

    QuantizedNetwork q;
    q.modelName_ = net.name();
    q.inputShape_ = net.inputShape();
    q.outputShape_ = net.outputShape();
    q.nodes_.reserve(net.size());
    for (NodeId id = 0; id < net.size(); ++id) {
        const Layer &l = net.layer(id);
        QuantNode n;
        n.id = id;
        n.kind = l.kind();
        n.name = l.name();
        n.inShape = (id == 0) ? net.inputShape() : net.shapeOf(id - 1);
        n.outShape = net.shapeOf(id);
        switch (l.kind()) {
        case LayerKind::Conv2d: {
            const auto &c = static_cast<const Conv2d &>(l);
            n.kernel = c.kernelSize();
            n.stride = c.stride();
            n.padding = c.padding();
            break;
        }
        case LayerKind::MaxPool2d: {
            const auto &p = static_cast<const MaxPool2d &>(l);
            n.kernel = p.kernelSize();
            n.stride = p.stride();
            n.padding = p.padding();
            break;
        }
        case LayerKind::ReLU:
            if (id > 0 &&
                net.layer(id - 1).kind() == LayerKind::Conv2d) {
                n.convProducer = id - 1;
            }
            break;
        default:
            break;
        }
        n.head = (l.kind() == LayerKind::Linear && id == last_linear);
        q.nodes_.push_back(std::move(n));
    }
    return q;
}

Expected<QuantizedNetwork>
QuantizedNetwork::build(const Network &net,
                        const CalibrationProfile &calib)
{
    auto skel = fromSkeleton(net);
    if (!skel.hasValue())
        return std::move(skel).takeError();
    QuantizedNetwork q = std::move(skel.value());

    if (!std::isfinite(calib.inputMaxAbs) || calib.inputMaxAbs < 0.0f) {
        return errorf(ErrorCode::InvalidArgument,
                      "calibration input range %g is not a finite "
                      "non-negative value",
                      static_cast<double>(calib.inputMaxAbs));
    }
    q.inputScale_ = scaleFromMaxAbs(calib.inputMaxAbs);

    float s_in = q.inputScale_;
    for (QuantNode &n : q.nodes_) {
        if (!isParametric(n.kind))
            continue;
        const auto it = calib.outputMaxAbs.find(n.name);
        if (it == calib.outputMaxAbs.end()) {
            return errorf(ErrorCode::InvalidArgument,
                          "calibration profile has no range for "
                          "layer '%s'", n.name.c_str());
        }
        if (!std::isfinite(it->second) || it->second < 0.0f) {
            return errorf(ErrorCode::InvalidArgument,
                          "calibration range %g for layer '%s' is not "
                          "a finite non-negative value",
                          static_cast<double>(it->second),
                          n.name.c_str());
        }
        const float s_out_target = scaleFromMaxAbs(it->second);

        const Tensor *w = nullptr;
        const Tensor *b = nullptr;
        std::size_t taps = 0;
        if (n.kind == LayerKind::Conv2d) {
            const auto &c = static_cast<const Conv2d &>(net.layer(n.id));
            w = &c.weights();
            b = &c.bias();
            taps = c.inChannels() * c.kernelSize() * c.kernelSize();
        } else {
            const auto &l = static_cast<const Linear &>(net.layer(n.id));
            w = &l.weights();
            b = &l.bias();
            taps = l.inFeatures();
        }
        const float w_max = w->maxAbs();
        if (!std::isfinite(w_max) || !allFinite(*b)) {
            return errorf(ErrorCode::InvalidArgument,
                          "layer '%s' has non-finite parameters",
                          n.name.c_str());
        }
        const float s_w_ideal = scaleFromMaxAbs(w_max);

        // Fold the scale chain into one right shift: pick the power of
        // two nearest s_out / (s_in * s_w), then absorb the remainder
        // into the weight scale so the requant invariant is exact.
        const double ratio = static_cast<double>(s_out_target) /
                             (static_cast<double>(s_in) *
                              static_cast<double>(s_w_ideal));
        long sh = std::lround(std::log2(ratio));
        sh = std::clamp(sh, 0L, 30L);
        n.shift = static_cast<std::int32_t>(sh);
        n.inScale = s_in;
        n.wScale = static_cast<float>(
            static_cast<double>(s_out_target) /
            (static_cast<double>(s_in) *
             std::exp2(static_cast<double>(sh))));
        n.outScale = chainOutScale(n.inScale, n.wScale, n.shift);

        n.weights.resize(w->numel());
        for (std::size_t i = 0; i < w->numel(); ++i)
            n.weights[i] = quantizeValue(w->at(i), n.wScale);

        const double b_scale = static_cast<double>(n.inScale) *
                               static_cast<double>(n.wScale);
        n.bias.resize(b->numel());
        long long max_abs_bias = 0;
        for (std::size_t i = 0; i < b->numel(); ++i) {
            long long bq = std::llround(
                static_cast<double>(b->at(i)) / b_scale);
            bq = std::clamp<long long>(
                bq, std::numeric_limits<std::int32_t>::min(),
                std::numeric_limits<std::int32_t>::max());
            n.bias[i] = static_cast<std::int32_t>(bq);
            max_abs_bias = std::max(max_abs_bias,
                                    bq < 0 ? -bq : bq);
        }

        // int32 accumulation headroom: worst case every tap saturates.
        const long long worst =
            static_cast<long long>(taps) * 127 * 127 + max_abs_bias;
        if (worst > std::numeric_limits<std::int32_t>::max()) {
            return errorf(ErrorCode::InvalidArgument,
                          "layer '%s': %zu taps could overflow int32 "
                          "accumulation (worst case %lld)",
                          n.name.c_str(), taps, worst);
        }

        s_in = n.outScale;
    }
    return q;
}

Expected<QuantizedNetwork>
QuantizedNetwork::fromRecords(const Network &net,
                              const std::vector<QuantRecord> &records)
{
    auto skel = fromSkeleton(net);
    if (!skel.hasValue())
        return std::move(skel).takeError();
    QuantizedNetwork q = std::move(skel.value());

    std::vector<std::size_t> param_idx;
    for (std::size_t i = 0; i < q.nodes_.size(); ++i) {
        if (isParametric(q.nodes_[i].kind))
            param_idx.push_back(i);
    }
    if (records.size() != param_idx.size()) {
        return errorf(ErrorCode::Mismatch,
                      "checkpoint carries %zu quant records, network "
                      "'%s' has %zu parametric layers",
                      records.size(), net.name().c_str(),
                      param_idx.size());
    }

    float s_prev = 0.0f;
    for (std::size_t k = 0; k < records.size(); ++k) {
        QuantNode &n = q.nodes_[param_idx[k]];
        const QuantRecord &r = records[k];
        if (r.name != n.name) {
            return errorf(ErrorCode::Mismatch,
                          "quant record %zu is '%s', expected layer "
                          "'%s'", k, r.name.c_str(), n.name.c_str());
        }
        if (r.kind != n.kind) {
            return errorf(ErrorCode::Mismatch,
                          "quant record '%s' has kind %s, layer is %s",
                          r.name.c_str(), layerKindName(r.kind),
                          layerKindName(n.kind));
        }
        std::size_t w_count = 0;
        std::size_t b_count = 0;
        std::size_t taps = 0;
        paramCounts(net, n, w_count, b_count, taps);
        if (r.weights.size() != w_count || r.bias.size() != b_count) {
            return errorf(ErrorCode::Mismatch,
                          "quant record '%s' carries %zu weights / "
                          "%zu biases, layer needs %zu / %zu",
                          r.name.c_str(), r.weights.size(),
                          r.bias.size(), w_count, b_count);
        }
        const bool scales_ok =
            std::isfinite(r.wScale) && r.wScale > 0.0f &&
            std::isfinite(r.inScale) && r.inScale > 0.0f &&
            std::isfinite(r.outScale) && r.outScale > 0.0f;
        if (!scales_ok) {
            return errorf(ErrorCode::InvalidArgument,
                          "quant record '%s' has a non-finite or "
                          "non-positive scale", r.name.c_str());
        }
        if (r.shift < 0 || r.shift > 30) {
            return errorf(ErrorCode::InvalidArgument,
                          "quant record '%s' has shift %d outside "
                          "[0, 30]", r.name.c_str(),
                          static_cast<int>(r.shift));
        }
        if (chainOutScale(r.inScale, r.wScale, r.shift) != r.outScale) {
            return errorf(ErrorCode::Mismatch,
                          "quant record '%s': outScale %g breaks the "
                          "requant invariant inScale * wScale * "
                          "2^shift", r.name.c_str(),
                          static_cast<double>(r.outScale));
        }
        if (k == 0) {
            q.inputScale_ = r.inScale;
        } else if (r.inScale != s_prev) {
            return errorf(ErrorCode::Mismatch,
                          "quant record '%s': inScale %g does not "
                          "chain from the previous outScale %g",
                          r.name.c_str(),
                          static_cast<double>(r.inScale),
                          static_cast<double>(s_prev));
        }
        s_prev = r.outScale;

        n.weights = r.weights;
        n.bias = r.bias;
        n.wScale = r.wScale;
        n.inScale = r.inScale;
        n.outScale = r.outScale;
        n.shift = r.shift;
    }
    return q;
}

std::vector<QuantRecord>
QuantizedNetwork::records() const
{
    std::vector<QuantRecord> out;
    for (const QuantNode &n : nodes_) {
        if (!isParametric(n.kind))
            continue;
        QuantRecord r;
        r.name = n.name;
        r.kind = n.kind;
        r.weights = n.weights;
        r.bias = n.bias;
        r.wScale = n.wScale;
        r.inScale = n.inScale;
        r.outScale = n.outScale;
        r.shift = n.shift;
        out.push_back(std::move(r));
    }
    return out;
}

Tensor
QuantizedNetwork::forward(const Tensor &input, ForwardHooks *hooks)
    const
{
    return run(input, hooks, nullptr);
}

std::map<NodeId, BitVolume>
QuantizedNetwork::computeZeroMaps(const Tensor &input) const
{
    std::map<NodeId, BitVolume> maps;
    (void)run(input, nullptr, &maps);
    return maps;
}

Tensor
QuantizedNetwork::run(const Tensor &input, ForwardHooks *hooks,
                      std::map<NodeId, BitVolume> *zero_maps) const
{
    FASTBCNN_CHECK(input.shape() == inputShape_,
                   "quant forward: input shape mismatch");
    const simd::SimdKernels &k = simd::active();

    std::vector<std::int8_t> cur(input.numel());
    for (std::size_t i = 0; i < input.numel(); ++i)
        cur[i] = quantizeValue(input.at(i), inputScale_);

    std::vector<std::int8_t> nxt;
    std::vector<std::int8_t> padded;  // conv pre-pad scratch
    std::vector<std::int32_t> acc;    // conv / dense accumulators
    Tensor float_out;
    bool in_float = false;

    for (const QuantNode &n : nodes_) {
        switch (n.kind) {
        case LayerKind::Conv2d: {
            const std::size_t in_c = n.inShape.dim(0);
            const std::size_t in_h = n.inShape.dim(1);
            const std::size_t in_w = n.inShape.dim(2);
            const std::size_t out_c = n.outShape.dim(0);
            const std::size_t out_h = n.outShape.dim(1);
            const std::size_t out_w = n.outShape.dim(2);
            // Pre-pad spatially so every dispatch level sees the
            // padding-free fast shape (and the boundary logic of the
            // vector kernels stays dead).
            const std::int8_t *src = cur.data();
            std::size_t eff_h = in_h;
            std::size_t eff_w = in_w;
            std::size_t eff_p = n.padding;
            if (n.padding > 0) {
                const std::size_t p = n.padding;
                eff_h = in_h + 2 * p;
                eff_w = in_w + 2 * p;
                eff_p = 0;
                padded.assign(in_c * eff_h * eff_w, 0);
                for (std::size_t ch = 0; ch < in_c; ++ch) {
                    for (std::size_t r = 0; r < in_h; ++r) {
                        std::memcpy(
                            padded.data() +
                                (ch * eff_h + r + p) * eff_w + p,
                            cur.data() + (ch * in_h + r) * in_w,
                            in_w);
                    }
                }
                src = padded.data();
            }
            nxt.resize(out_c * out_h * out_w);
            acc.resize(out_h * out_w);
            k.quantConvForward(src, n.weights.data(), n.bias.data(),
                               nxt.data(), acc.data(), in_c, out_c,
                               eff_h, eff_w, out_h, out_w, n.kernel,
                               n.stride, eff_p, n.shift);
            cur.swap(nxt);
            break;
        }
        case LayerKind::ReLU: {
            nxt.resize(cur.size());
            k.quantRelu(cur.data(), nxt.data(), cur.size());
            cur.swap(nxt);
            if (zero_maps && n.convProducer != Network::inputNode) {
                BitVolume zm(n.outShape.dim(0), n.outShape.dim(1),
                             n.outShape.dim(2));
                for (std::size_t i = 0; i < cur.size(); ++i) {
                    if (cur[i] == 0)
                        zm.setFlat(i, true);
                }
                zero_maps->emplace(n.convProducer, std::move(zm));
            }
            break;
        }
        case LayerKind::MaxPool2d: {
            const std::size_t c = n.inShape.dim(0);
            const std::int8_t init =
                n.padding > 0 ? std::int8_t{0} : std::int8_t{-128};
            nxt.resize(n.outShape.numel());
            k.quantPoolMax(cur.data(), nxt.data(), c,
                           n.inShape.dim(1), n.inShape.dim(2),
                           n.outShape.dim(1), n.outShape.dim(2),
                           n.kernel, n.stride, n.padding, init);
            cur.swap(nxt);
            break;
        }
        case LayerKind::Dropout: {
            const BitVolume *mask =
                hooks ? hooks->dropoutMask(n.name, n.outShape)
                      : nullptr;
            if (mask) {
                FASTBCNN_CHECK(
                    mask->channels() == n.outShape.dim(0) &&
                        mask->height() == n.outShape.dim(1) &&
                        mask->width() == n.outShape.dim(2),
                    "dropout mask shape mismatch");
                for (std::size_t i = 0; i < cur.size(); ++i) {
                    if (mask->getFlat(i))
                        cur[i] = 0;
                }
            }
            break;
        }
        case LayerKind::Flatten:
            break;  // same bytes, new shape
        case LayerKind::Linear: {
            const std::size_t in_f = n.inShape.numel();
            const std::size_t out_f = n.outShape.dim(0);
            acc.resize(out_f);
            k.quantDenseAccum(n.weights.data(), n.bias.data(),
                              cur.data(), acc.data(), out_f, in_f);
            if (n.head) {
                float_out = Tensor(n.outShape);
                const double deq = static_cast<double>(n.inScale) *
                                   static_cast<double>(n.wScale);
                for (std::size_t o = 0; o < out_f; ++o) {
                    float_out.at(o) = static_cast<float>(
                        static_cast<double>(acc[o]) * deq);
                }
                in_float = true;
            } else {
                nxt.resize(out_f);
                for (std::size_t o = 0; o < out_f; ++o) {
                    nxt[o] =
                        simd::detail::requantSat(acc[o], n.shift);
                }
                cur.swap(nxt);
            }
            break;
        }
        case LayerKind::Softmax: {
            // Replicates Softmax::forward() float-for-float so the
            // int8 path's probabilities use the exact same epilogue.
            FASTBCNN_CHECK(in_float,
                           "Softmax before the quantized head");
            float max_v = -std::numeric_limits<float>::infinity();
            for (float v : float_out.data())
                max_v = std::max(max_v, v);
            double total = 0.0;
            for (std::size_t i = 0; i < float_out.numel(); ++i) {
                const float e = std::exp(float_out.at(i) - max_v);
                float_out.at(i) = e;
                total += e;
            }
            for (std::size_t i = 0; i < float_out.numel(); ++i) {
                float_out.at(i) = static_cast<float>(
                    float_out.at(i) / total);
            }
            break;
        }
        default:
            FASTBCNN_CHECK(false, "unreachable quant layer kind");
        }
    }
    FASTBCNN_CHECK(in_float, "quantized network produced no head "
                             "output");
    return float_out;
}

} // namespace fastbcnn::quant
