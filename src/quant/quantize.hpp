/**
 * @file
 * Quantized int8 inference engine (DESIGN.md §15).
 *
 * Offline flow: run a calibration sweep over representative inputs to
 * record per-layer activation ranges (tryCalibrateActivations), then
 * build a QuantizedNetwork from the float network plus the profile.
 * Quantization is symmetric per-layer (real ≈ q * scale, zero-point
 * 0): int8 weights and activations, int32 accumulators, and a
 * per-layer round-half-up right shift folding the scale chain back
 * into int8 — the arithmetic the SimdKernels quant entries implement.
 *
 * The scale chain is pinned exactly: for every parametric layer,
 *   outScale == inScale * wScale * 2^shift   (bit-exact in float)
 * because wScale is derived from the target output scale and outScale
 * is then recomputed from the rounded wScale.  fromRecords() verifies
 * this invariant on load, so a checkpoint can never smuggle in an
 * inconsistent chain.
 *
 * Determinism: integer arithmetic is exact and associative, so int8
 * outputs are bit-identical across SIMD levels and thread counts by
 * construction (the QuantDispatch suite pins it anyway).  Non-finite
 * *runtime* inputs map deterministically (NaN → 0, ±inf → ±sat);
 * non-finite *calibration* inputs are rejected (InvalidArgument) —
 * a poisoned sweep must not silently produce scales.
 */

#ifndef FASTBCNN_QUANT_QUANTIZE_HPP
#define FASTBCNN_QUANT_QUANTIZE_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bitvolume.hpp"
#include "common/error.hpp"
#include "nn/network.hpp"
#include "nn/serialize.hpp"
#include "quant/precision.hpp"

namespace fastbcnn::quant {

/**
 * Per-layer activation ranges from an offline calibration sweep.
 * Keys of outputMaxAbs are parametric-layer (Conv2d / Linear) names.
 */
struct CalibrationProfile {
    float inputMaxAbs = 0.0f;                 ///< maxabs over inputs
    std::map<std::string, float> outputMaxAbs;///< per-layer output maxabs
    std::size_t samples = 0;                  ///< inputs swept
};

/**
 * Sweep @p calib through non-dropout forward passes of @p net and
 * record the running maxabs of every parametric layer's output.
 *
 * Errors (InvalidArgument): empty @p calib, an input whose shape does
 * not match net.inputShape(), any non-finite element in an input, or
 * a non-finite captured activation.
 */
[[nodiscard]] Expected<CalibrationProfile> tryCalibrateActivations(
    const Network &net, const std::vector<Tensor> &calib);

/**
 * Symmetric scale for a signed-int8 range: max_abs / 127.  A layer
 * whose calibration range collapsed to zero (constant-zero output —
 * e.g. a dead ReLU block) gets scale 1.0: every quantized value is 0
 * either way, and the scale stays valid (no division by zero
 * anywhere downstream).
 */
float scaleFromMaxAbs(float max_abs);

/** Quantize one float against a scale: sat8(lround(x / scale)),
 *  with NaN → 0 and ±inf → ±saturation (deterministic). */
std::int8_t quantizeValue(float x, float scale);

/**
 * One node of the quantized graph — a flattened, sequential mirror of
 * the float network's node (same id, same name) plus the quantized
 * parameters for Conv2d / Linear nodes.
 */
struct QuantNode {
    NodeId id = 0;
    LayerKind kind = LayerKind::Conv2d;
    std::string name;
    Shape inShape;   ///< input feature-map shape
    Shape outShape;  ///< output feature-map shape

    // Parametric (Conv2d / Linear) state.
    std::vector<std::int8_t> weights;
    std::vector<std::int32_t> bias;
    float wScale = 1.0f;
    float inScale = 1.0f;
    float outScale = 1.0f;
    std::int32_t shift = 0;
    bool head = false;  ///< last Linear: dequantizes to float logits

    // Conv2d / pooling geometry (zero when not applicable).
    std::size_t kernel = 0;
    std::size_t stride = 0;
    std::size_t padding = 0;

    /** For a ReLU fed by a Conv2d: the producing conv's node id
     *  (zero-map key); Network::inputNode otherwise. */
    NodeId convProducer = Network::inputNode;
};

/**
 * An int8 mirror of a sequential BCNN, runnable with the same
 * ForwardHooks as the float network (dropout masks are requested per
 * Dropout node in node order, so SamplingHooks / ReplayHooks produce
 * identical masks on both paths).
 *
 * Supported topology: single-input sequential chains of Conv2d, ReLU,
 * MaxPool2d, Dropout, Flatten and Linear, ending in a Linear head
 * optionally followed by Softmax.  Anything else (Concat, AvgPool,
 * GlobalAvgPool, LocalResponseNorm, branches) is rejected with
 * InvalidArgument at build time — the int8 engine covers the paper's
 * B-LeNet-5 / B-VGG16 family, not arbitrary graphs.
 */
class QuantizedNetwork
{
  public:
    QuantizedNetwork(QuantizedNetwork &&) = default;
    QuantizedNetwork &operator=(QuantizedNetwork &&) = default;

    /**
     * Quantize @p net against a calibration profile.
     *
     * Errors: InvalidArgument for unsupported topology, a parametric
     * layer missing from the profile, a non-finite recorded range, or
     * an int32 overflow hazard (taps * 127^2 + |bias| exceeding int32
     * — impossible for the supported zoo, checked anyway).
     */
    [[nodiscard]] static Expected<QuantizedNetwork> build(
        const Network &net, const CalibrationProfile &calib);

    /**
     * Rebuild from checkpointed quant records against the float
     * network's topology.  Validates record count and order (Mismatch),
     * name/kind/geometry agreement (Mismatch), scale sanity — finite,
     * positive, shift in [0, 30] (InvalidArgument) — and the exact
     * requant invariant outScale == inScale * wScale * 2^shift plus
     * inter-layer scale continuity (Mismatch).
     */
    [[nodiscard]] static Expected<QuantizedNetwork> fromRecords(
        const Network &net, const std::vector<QuantRecord> &records);

    /**
     * Run an int8 forward pass.  The input is quantized against the
     * calibrated input scale, every hidden layer runs in int8 through
     * the active SimdKernels table, and the head Linear dequantizes
     * its raw int32 accumulators to float logits (followed by the
     * float Softmax when present).  @p hooks supplies dropout masks
     * exactly as on the float path; activation-capture callbacks are
     * NOT invoked (there are no intermediate float tensors to report).
     */
    Tensor forward(const Tensor &input, ForwardHooks *hooks = nullptr)
        const;

    /**
     * Quantized analogue of skip's computeZeroMaps(): run the
     * non-dropout pre-inference and record, for every ReLU fed by a
     * Conv2d, which post-ReLU int8 neurons are zero — keyed by the
     * conv's NodeId, same keys and shapes as the float zero maps.
     */
    std::map<NodeId, BitVolume> computeZeroMaps(const Tensor &input)
        const;

    /** Snapshot the quantized parameters for checkpointing. */
    std::vector<QuantRecord> records() const;

    /** @return the calibrated input activation scale. */
    float inputScale() const { return inputScale_; }
    /** @return the mirrored model's name. */
    const std::string &modelName() const { return modelName_; }
    /** @return the network input shape (CHW). */
    const Shape &inputShape() const { return inputShape_; }
    /** @return the network output shape. */
    const Shape &outputShape() const { return outputShape_; }
    /** @return number of mirrored nodes. */
    std::size_t size() const { return nodes_.size(); }
    /** @return node @p i in execution order. */
    const QuantNode &node(std::size_t i) const { return nodes_[i]; }

  private:
    QuantizedNetwork() = default;

    /** Structural pass shared by build() and fromRecords(): mirrors
     *  the topology, leaving parameters/scales default. */
    [[nodiscard]] static Expected<QuantizedNetwork> fromSkeleton(
        const Network &net);

    Tensor run(const Tensor &input, ForwardHooks *hooks,
               std::map<NodeId, BitVolume> *zero_maps) const;

    std::string modelName_;
    Shape inputShape_;
    Shape outputShape_;
    float inputScale_ = 1.0f;
    std::vector<QuantNode> nodes_;
};

} // namespace fastbcnn::quant

#endif // FASTBCNN_QUANT_QUANTIZE_HPP
