/**
 * @file
 * Uncertainty-fidelity instrumentation for the int8 engine: does the
 * quantized network preserve what the Bayesian machinery actually
 * consumes?  Two things matter (DESIGN.md §15):
 *
 *  - skip-decision agreement: the Eq. 5 predictor is driven by the
 *    pre-inference zero maps; if quantization flips zero neurons the
 *    skip engine skips different neurons.  We compare predictions bit
 *    by bit under identical dropout masks, counts and thresholds, so
 *    the only varying term is the zero map itself.
 *  - posterior moments: the MC mean / variance over T samples must
 *    stay within tolerance of the float run.
 */

#ifndef FASTBCNN_QUANT_FIDELITY_HPP
#define FASTBCNN_QUANT_FIDELITY_HPP

#include <cstdint>

#include "bayes/topology.hpp"
#include "bayes/uncertainty.hpp"
#include "quant/quantize.hpp"

namespace fastbcnn::quant {

/** Bitwise agreement between float- and int8-driven skip predictions. */
struct SkipAgreement {
    std::size_t compared = 0;  ///< prediction bits compared
    std::size_t matched = 0;   ///< bits where both paths agree

    /** @return matched / compared (1.0 when nothing was compared). */
    double agreement() const
    {
        return compared == 0
                   ? 1.0
                   : static_cast<double>(matched) /
                         static_cast<double>(compared);
    }
};

/**
 * Measure skip-decision agreement on one input.
 *
 * Both paths share everything except the zero map: the same Bernoulli
 * masks (drawn once per sample from an LFSR BRNG over each conv's
 * *input* volume — the quantity Eq. 5 counts), the same dropped-nw
 * counts, the same thresholds.  Each of @p mask_samples rounds draws
 * fresh masks for every block, so the agreement is averaged over many
 * skip decisions, not one lucky draw.
 *
 * @param topo         analysed float BCNN
 * @param qnet         its quantized mirror
 * @param input        the image driving both pre-inferences
 * @param threshold    per-kernel α for the shared ThresholdSet
 * @param drop_rate    Bernoulli rate of the synthetic masks
 * @param seed         BRNG seed (deterministic)
 * @param mask_samples mask draws per conv block
 */
SkipAgreement compareSkipPredictions(const BcnnTopology &topo,
                                     const QuantizedNetwork &qnet,
                                     const Tensor &input,
                                     double threshold, double drop_rate,
                                     std::uint64_t seed,
                                     std::size_t mask_samples);

/** Elementwise distance between two MC summaries. */
struct MomentFidelity {
    double maxMeanDiff = 0.0;  ///< max |mean_f[c] - mean_q[c]|
    double maxVarDiff = 0.0;   ///< max |var_f[c] - var_q[c]|
    bool argmaxMatch = false;  ///< same predicted class
};

/**
 * Compare the float and int8 MC summaries of the same run
 * configuration.  fatal()s when the shapes disagree (caller bug).
 */
MomentFidelity compareSummaries(const UncertaintySummary &ref,
                                const UncertaintySummary &quant);

} // namespace fastbcnn::quant

#endif // FASTBCNN_QUANT_FIDELITY_HPP
