#include "quant/fidelity.hpp"

#include <cmath>

#include "bayes/mc_runner.hpp"
#include "common/check.hpp"
#include "skip/indicator.hpp"
#include "skip/predictor.hpp"

namespace fastbcnn::quant {

namespace {

/** Draw a Bernoulli mask over a CHW volume from @p brng. */
BitVolume
sampleMask(Brng &brng, const Shape &shape)
{
    FASTBCNN_CHECK(shape.rank() == 3, "mask volume must be CHW");
    BitVolume mask(shape.dim(0), shape.dim(1), shape.dim(2));
    for (std::size_t i = 0; i < mask.size(); ++i) {
        if (brng.nextBit())
            mask.setFlat(i, true);
    }
    return mask;
}

} // namespace

SkipAgreement
compareSkipPredictions(const BcnnTopology &topo,
                       const QuantizedNetwork &qnet, const Tensor &input,
                       double threshold, double drop_rate,
                       std::uint64_t seed, std::size_t mask_samples)
{
    const Network &net = topo.network();
    const ZeroMaps float_maps = computeZeroMaps(topo, input);
    const std::map<NodeId, BitVolume> quant_maps =
        qnet.computeZeroMaps(input);
    const IndicatorSet indicators(topo);
    const ThresholdSet thresholds(topo, threshold);
    const auto brng = makeBrng(BrngKind::Lfsr, drop_rate, seed);

    SkipAgreement result;
    for (std::size_t t = 0; t < mask_samples; ++t) {
        for (const ConvBlock &block : topo.blocks()) {
            const auto &conv = static_cast<const Conv2d &>(
                net.layer(block.conv));
            const NodeId producer = net.inputsOf(block.conv)[0];
            const Shape &in_shape = producer == Network::inputNode
                                        ? net.inputShape()
                                        : net.shapeOf(producer);
            const BitVolume mask = sampleMask(*brng, in_shape);
            const CountVolume counts = countDroppedNwInputs(
                conv, mask, indicators.of(block.conv));
            const BitVolume pred_f = predictUnaffected(
                float_maps.at(block.conv), counts, thresholds,
                block.conv);
            const BitVolume pred_q = predictUnaffected(
                quant_maps.at(block.conv), counts, thresholds,
                block.conv);
            FASTBCNN_CHECK(pred_f.size() == pred_q.size(),
                           "prediction bitmap size mismatch");
            result.compared += pred_f.size();
            for (std::size_t i = 0; i < pred_f.size(); ++i) {
                if (pred_f.getFlat(i) == pred_q.getFlat(i))
                    ++result.matched;
            }
        }
    }
    return result;
}

MomentFidelity
compareSummaries(const UncertaintySummary &ref,
                 const UncertaintySummary &quant)
{
    FASTBCNN_CHECK(ref.mean.shape() == quant.mean.shape() &&
                       ref.variance.shape() == quant.variance.shape(),
                   "summary shape mismatch");
    MomentFidelity out;
    for (std::size_t i = 0; i < ref.mean.numel(); ++i) {
        out.maxMeanDiff = std::max(
            out.maxMeanDiff,
            std::fabs(static_cast<double>(ref.mean.at(i)) -
                      static_cast<double>(quant.mean.at(i))));
    }
    for (std::size_t i = 0; i < ref.variance.numel(); ++i) {
        out.maxVarDiff = std::max(
            out.maxVarDiff,
            std::fabs(static_cast<double>(ref.variance.at(i)) -
                      static_cast<double>(quant.variance.at(i))));
    }
    out.argmaxMatch = ref.argmax == quant.argmax;
    return out;
}

} // namespace fastbcnn::quant
