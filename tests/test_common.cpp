/**
 * @file
 * Unit tests for the common module: bit containers, tables, stats,
 * math helpers and logging.
 */

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "common/bitvolume.hpp"
#include "common/math_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace fastbcnn;

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0);
    EXPECT_EQ(ceilDiv(1, 4), 1);
    EXPECT_EQ(ceilDiv(4, 4), 1);
    EXPECT_EQ(ceilDiv(5, 4), 2);
    EXPECT_EQ(ceilDiv<std::uint64_t>(512, 4), 128u);
    EXPECT_EQ(ceilDiv<std::uint64_t>(3, 32), 1u);
}

TEST(MathUtil, RoundUp)
{
    EXPECT_EQ(roundUp(0, 8), 0);
    EXPECT_EQ(roundUp(1, 8), 8);
    EXPECT_EQ(roundUp(8, 8), 8);
    EXPECT_EQ(roundUp(9, 8), 16);
}

TEST(MathUtil, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(65));
    EXPECT_TRUE(isPowerOfTwo(1ull << 63));
}

TEST(MathUtil, ClampValue)
{
    EXPECT_EQ(clampValue(5, 0, 10), 5);
    EXPECT_EQ(clampValue(-1, 0, 10), 0);
    EXPECT_EQ(clampValue(11, 0, 10), 10);
}

TEST(MathUtil, NearlyEqual)
{
    EXPECT_TRUE(nearlyEqual(1.0f, 1.0f, 0.0f));
    EXPECT_TRUE(nearlyEqual(1.0f, 1.0099f, 0.01f));
    EXPECT_FALSE(nearlyEqual(1.0f, 1.02f, 0.01f));
    // Scale grows with the larger magnitude.
    EXPECT_TRUE(nearlyEqual(100.0f, 100.9f, 0.01f));
    // Small values compare against a floor of 1.
    EXPECT_TRUE(nearlyEqual(0.0f, 0.005f, 0.01f));
    EXPECT_FALSE(nearlyEqual(0.0f, 0.02f, 0.01f));
}

TEST(BitVolume, DefaultEmpty)
{
    BitVolume v;
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.size(), 0u);
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVolume, SetGetRoundTrip)
{
    BitVolume v(3, 4, 5);
    EXPECT_EQ(v.size(), 60u);
    EXPECT_FALSE(v.get(2, 3, 4));
    v.set(2, 3, 4, true);
    EXPECT_TRUE(v.get(2, 3, 4));
    EXPECT_EQ(v.popcount(), 1u);
    v.set(2, 3, 4, false);
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVolume, FlatMatchesIndexed)
{
    BitVolume v(2, 3, 4);
    v.set(1, 2, 3, true);
    EXPECT_TRUE(v.getFlat((1 * 3 + 2) * 4 + 3));
    v.setFlat(0, true);
    EXPECT_TRUE(v.get(0, 0, 0));
}

TEST(BitVolume, FillRespectsPadding)
{
    // 70 bits spans two words; fill(true) must not set the padding
    // bits of the last word or popcount() would overcount.
    BitVolume v(1, 7, 10);
    v.fill(true);
    EXPECT_EQ(v.popcount(), 70u);
    v.fill(false);
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVolume, PopcountChannel)
{
    BitVolume v(2, 2, 2);
    v.set(0, 0, 0, true);
    v.set(1, 1, 1, true);
    v.set(1, 0, 1, true);
    EXPECT_EQ(v.popcountChannel(0), 1u);
    EXPECT_EQ(v.popcountChannel(1), 2u);
}

TEST(BitVolume, AndPopcount)
{
    BitVolume a(1, 2, 64), b(1, 2, 64);
    for (std::size_t i = 0; i < 128; i += 2)
        a.setFlat(i, true);
    for (std::size_t i = 0; i < 128; i += 3)
        b.setFlat(i, true);
    // Multiples of 6 in [0, 128): 22 values.
    EXPECT_EQ(a.andPopcount(b), 22u);
}

TEST(BitVolume, OrWith)
{
    BitVolume a(1, 1, 8), b(1, 1, 8);
    a.setFlat(0, true);
    b.setFlat(7, true);
    a.orWith(b);
    EXPECT_EQ(a.popcount(), 2u);
    EXPECT_TRUE(a.getFlat(0));
    EXPECT_TRUE(a.getFlat(7));
}

TEST(BitVolume, Equality)
{
    BitVolume a(2, 2, 2), b(2, 2, 2), c(1, 2, 4);
    EXPECT_TRUE(a == b);
    b.setFlat(3, true);
    EXPECT_FALSE(a == b);
    EXPECT_FALSE(a == c);  // same bit count, different shape
}

#if FASTBCNN_ENABLE_DCHECKS
TEST(BitVolume, OutOfRangePanics)
{
    BitVolume v(1, 2, 2);
    EXPECT_DEATH(v.get(1, 0, 0), "out of range");
    EXPECT_DEATH(v.setFlat(4, true), "out of range");
}
#endif

/** Property test: BitVolume agrees with a std::vector<bool> model. */
class BitVolumeProperty : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(BitVolumeProperty, MatchesReferenceModel)
{
    const std::size_t seed = GetParam();
    std::mt19937_64 rng(seed);
    const std::size_t c = 1 + rng() % 5;
    const std::size_t h = 1 + rng() % 17;
    const std::size_t w = 1 + rng() % 33;
    BitVolume v(c, h, w);
    std::vector<bool> model(c * h * w, false);
    for (int step = 0; step < 500; ++step) {
        const std::size_t i = rng() % model.size();
        const bool bit = rng() % 2 == 0;
        v.setFlat(i, bit);
        model[i] = bit;
    }
    std::size_t expected = 0;
    for (std::size_t i = 0; i < model.size(); ++i) {
        EXPECT_EQ(v.getFlat(i), model[i]);
        expected += model[i] ? 1 : 0;
    }
    EXPECT_EQ(v.popcount(), expected);
}

INSTANTIATE_TEST_SUITE_P(Randomized, BitVolumeProperty,
                         ::testing::Range<std::size_t>(0, 8));

TEST(Table, AlignsAndCounts)
{
    Table t({"a", "long header"});
    t.addRow({"1", "2"});
    t.addSeparator();
    t.addRow({"333", "4"});
    EXPECT_EQ(t.rowCount(), 2u);
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("long header"), std::string::npos);
    EXPECT_NE(out.find("333"), std::string::npos);
}

TEST(Table, Csv)
{
    Table t({"x", "y"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, RowWidthMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only one"}), "row width");
}

TEST(Format, Printf)
{
    EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(format("%.2f", 3.14159), "3.14");
    EXPECT_EQ(format("empty"), "empty");
}

TEST(StatGroup, CountersAndGauges)
{
    StatGroup g("pe0");
    g.add("cycles", 10);
    g.add("cycles", 5);
    g.set("util", 0.5);
    EXPECT_EQ(g.counter("cycles"), 15u);
    EXPECT_DOUBLE_EQ(g.gauge("util"), 0.5);
    EXPECT_EQ(g.counter("absent"), 0u);
    EXPECT_DOUBLE_EQ(g.gauge("absent"), 0.0);
}

TEST(StatGroup, MergeAndReset)
{
    StatGroup a("a"), b("b");
    a.add("x", 1);
    b.add("x", 2);
    a.merge(b);
    EXPECT_EQ(a.counter("x"), 3u);
    a.reset();
    EXPECT_EQ(a.counter("x"), 0u);
}

TEST(StatGroup, Dump)
{
    StatGroup g("grp");
    g.add("n", 7);
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "grp.n = 7\n");
}

TEST(Logging, LevelRoundTrip)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(before);
}
