/**
 * @file
 * Serving-layer tests: queue admission control and ordering, scheduler
 * load shedding and micro-batch formation, InferenceServer end-to-end
 * behaviour (per-request overrides, deadlines, cancellation, fault
 * plans, drain/shutdown), and the ServeConcurrency soak suite — the
 * TSan-targeted workload proving that many producers, fault-injected
 * engines and a mid-load shutdown lose no request and complete none
 * twice.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "models/zoo.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/serialize.hpp"
#include "serve/server.hpp"

using namespace fastbcnn;
using namespace fastbcnn::serve;

namespace {

Network
tinyBcnn(double drop_rate = 0.3)
{
    Network net("tiny", Shape({1, 6, 6}));
    net.add(std::make_unique<Conv2d>("c1", 1, 2, 3, 1, 1));
    net.add(std::make_unique<ReLU>("r1"));
    net.add(std::make_unique<Dropout>("d1", drop_rate));
    net.add(std::make_unique<Conv2d>("c2", 2, 3, 3));
    net.add(std::make_unique<ReLU>("r2"));
    net.add(std::make_unique<Dropout>("d2", drop_rate));
    InitOptions init;
    init.seed = 3;
    init.biasShift = 0.0;
    initializeWeights(net, init);
    return net;
}

Tensor
ones(const Shape &s)
{
    Tensor t(s);
    t.fill(1.0f);
    return t;
}

/** A calibrated tiny-model replica factory (deterministic). */
Expected<std::unique_ptr<FastBcnnEngine>>
makeTinyReplica(std::size_t samples = 4)
{
    EngineOptions eopts;
    eopts.mc.samples = samples;
    eopts.mc.seed = 21;
    eopts.mc.recordMasks = false;
    eopts.optimizer.samples = 2;
    Expected<std::unique_ptr<FastBcnnEngine>> engine =
        FastBcnnEngine::create(tinyBcnn(), eopts);
    if (!engine.hasValue())
        return engine;
    Status calibrated =
        engine.value()->tryCalibrate({ones(Shape({1, 6, 6}))});
    if (!calibrated.isOk())
        return calibrated;
    return engine;
}

ModelSpec
namedSpec(std::string id, EngineFactory factory)
{
    ModelSpec spec;
    spec.id = std::move(id);
    spec.factory = std::move(factory);
    return spec;
}

ModelSpec
tinySpec(std::string id = "tiny", std::size_t samples = 4)
{
    return namedSpec(std::move(id),
                     [samples]() { return makeTinyReplica(samples); });
}

PendingRequest
makePending(std::uint64_t id, std::uint64_t seq,
            const std::string &model, Priority priority,
            double deadline_ms = 0.0)
{
    PendingRequest p;
    p.id = id;
    p.seq = seq;
    p.request.modelId = model;
    p.request.priority = priority;
    p.request.deadlineMs = deadline_ms;
    p.submitted = ServeClock::now();
    if (deadline_ms > 0.0) {
        p.hasDeadline = true;
        p.deadline =
            p.submitted +
            std::chrono::duration_cast<ServeClock::duration>(
                std::chrono::duration<double, std::milli>(
                    deadline_ms));
    }
    return p;
}

} // namespace

// ---------------------------------------------------------------------------
// BoundedRequestQueue

TEST(ServeQueue, AdmissionControlRejectsWhenFull)
{
    BoundedRequestQueue queue(2);
    EXPECT_TRUE(queue.push(makePending(1, 1, "m", Priority::Standard))
                    .isOk());
    EXPECT_TRUE(queue.push(makePending(2, 2, "m", Priority::Standard))
                    .isOk());
    Status full = queue.push(makePending(3, 3, "m", Priority::Standard));
    ASSERT_FALSE(full.isOk());
    EXPECT_EQ(full.code(), ErrorCode::ResourceExhausted);
    EXPECT_EQ(queue.size(), 2u);

    queue.close(false);
    Status closed =
        queue.push(makePending(4, 4, "m", Priority::Standard));
    ASSERT_FALSE(closed.isOk());
    EXPECT_EQ(closed.code(), ErrorCode::Unavailable);
}

TEST(ServeQueue, PopOrdersByPriorityThenDeadlineThenFifo)
{
    BoundedRequestQueue queue(8);
    // Insertion order deliberately scrambled.
    ASSERT_TRUE(queue.push(makePending(1, 1, "m", Priority::Background))
                    .isOk());
    ASSERT_TRUE(
        queue.push(makePending(2, 2, "m", Priority::Standard, 1e6))
            .isOk());
    ASSERT_TRUE(
        queue.push(makePending(3, 3, "m", Priority::Standard, 1e3))
            .isOk());
    ASSERT_TRUE(queue.push(makePending(4, 4, "m", Priority::Standard))
                    .isOk());
    ASSERT_TRUE(
        queue.push(makePending(5, 5, "m", Priority::Interactive))
            .isOk());
    ASSERT_TRUE(
        queue.push(makePending(6, 6, "m", Priority::Standard))
            .isOk());

    std::vector<std::uint64_t> order;
    queue.close(true);  // drain: pop everything then nullopt
    while (auto p = queue.pop())
        order.push_back(p->id);
    // Interactive first; Standard EDF (1e3 before 1e6), then the two
    // no-deadline Standards in FIFO order; Background last.
    EXPECT_EQ(order, (std::vector<std::uint64_t>{5, 3, 2, 4, 6, 1}));
}

TEST(ServeQueue, TryPopModelPicksOnlyMatching)
{
    BoundedRequestQueue queue(4);
    ASSERT_TRUE(queue.push(makePending(1, 1, "a", Priority::Standard))
                    .isOk());
    ASSERT_TRUE(queue.push(makePending(2, 2, "b", Priority::Standard))
                    .isOk());
    EXPECT_FALSE(queue.tryPopModel("c").has_value());
    auto b = queue.tryPopModel("b");
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->id, 2u);
    EXPECT_EQ(queue.size(), 1u);
}

TEST(ServeQueue, HardCloseLeavesLeftoversForFlush)
{
    BoundedRequestQueue queue(4);
    ASSERT_TRUE(queue.push(makePending(1, 1, "m", Priority::Standard))
                    .isOk());
    ASSERT_TRUE(queue.push(makePending(2, 2, "m", Priority::Standard))
                    .isOk());
    queue.close(false);
    EXPECT_FALSE(queue.pop().has_value());  // hard close: no draining
    std::vector<PendingRequest> leftovers = queue.flush();
    EXPECT_EQ(leftovers.size(), 2u);
    EXPECT_EQ(queue.size(), 0u);
}

// ---------------------------------------------------------------------------
// BatchScheduler

TEST(ServeScheduler, ShedsExpiredAndBatchesSameModel)
{
    BoundedRequestQueue queue(8);
    std::vector<std::uint64_t> shedIds;
    BatchScheduler scheduler(
        queue, SchedulerOptions{2},
        [&shedIds](PendingRequest &&p) { shedIds.push_back(p.id); });

    // One already-expired request and three live ones (two models).
    ASSERT_TRUE(
        queue.push(makePending(1, 1, "a", Priority::Standard, 1e-6))
            .isOk());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(queue.push(makePending(2, 2, "a", Priority::Standard))
                    .isOk());
    ASSERT_TRUE(queue.push(makePending(3, 3, "b", Priority::Standard))
                    .isOk());
    ASSERT_TRUE(queue.push(makePending(4, 4, "a", Priority::Standard))
                    .isOk());

    auto first = scheduler.nextBatch();
    ASSERT_TRUE(first.has_value());
    // Expired head was shed; batch groups model 'a' past the queued
    // 'b' request, up to maxBatch = 2.
    EXPECT_EQ(shedIds, std::vector<std::uint64_t>{1});
    ASSERT_EQ(first->size(), 2u);
    EXPECT_EQ((*first)[0].id, 2u);
    EXPECT_EQ((*first)[1].id, 4u);

    auto second = scheduler.nextBatch();
    ASSERT_TRUE(second.has_value());
    ASSERT_EQ(second->size(), 1u);
    EXPECT_EQ((*second)[0].id, 3u);

    queue.close(true);
    EXPECT_FALSE(scheduler.nextBatch().has_value());
}

// ---------------------------------------------------------------------------
// InferenceServer

TEST(ServeServer, CreateRejectsBadConfigurations)
{
    ServerOptions bad;
    bad.workers = 0;
    EXPECT_FALSE(validateServerOptions(bad).isOk());

    auto noModels = InferenceServer::create({}, ServerOptions{});
    ASSERT_FALSE(noModels.hasValue());
    EXPECT_EQ(noModels.error().code(), ErrorCode::InvalidArgument);

    auto uncalibrated = InferenceServer::create(
        {namedSpec("raw", []() {
             return FastBcnnEngine::create(tinyBcnn(), EngineOptions{});
         })},
        ServerOptions{});
    ASSERT_FALSE(uncalibrated.hasValue());
    EXPECT_EQ(uncalibrated.error().code(), ErrorCode::InvalidArgument);
}

TEST(ServeServer, EndToEndServesAndReportsLatency)
{
    ServerOptions sopts;
    sopts.workers = 2;
    sopts.queueCapacity = 32;
    sopts.maxBatch = 4;
    auto server = InferenceServer::create({tinySpec()}, sopts);
    ASSERT_TRUE(server.hasValue());
    InferenceServer &srv = *server.value();

    std::vector<RequestHandle> handles;
    for (int i = 0; i < 8; ++i) {
        InferRequest req;
        req.modelId = "tiny";
        req.input = ones(Shape({1, 6, 6}));
        auto handle = srv.submit(std::move(req));
        ASSERT_TRUE(handle.hasValue());
        handles.push_back(std::move(handle).value());
    }
    srv.drain();

    for (RequestHandle &h : handles) {
        InferResponse resp = h.response.get();
        EXPECT_EQ(resp.outcome, Outcome::Ok);
        ASSERT_TRUE(resp.result.has_value());
        EXPECT_EQ(resp.result->outputs.size(), 4u);
        EXPECT_GE(resp.batchSize, 1u);
        EXPECT_GE(resp.totalMs, resp.serviceMs);
    }
    EXPECT_EQ(srv.stats().counter("accepted"), 8u);
    EXPECT_EQ(srv.stats().counter("ok"), 8u);
    EXPECT_EQ(srv.stats().counter("failed"), 0u);
    EXPECT_EQ(srv.latencySnapshot(Outcome::Ok).count(), 8u);
    EXPECT_GT(srv.latencySnapshot(Outcome::Ok).p99Ms(), 0.0);

    // Draining is sticky: nothing is accepted afterwards.
    EXPECT_FALSE(srv.accepting());
    InferRequest late;
    late.modelId = "tiny";
    late.input = ones(Shape({1, 6, 6}));
    auto rejected = srv.submit(std::move(late));
    ASSERT_FALSE(rejected.hasValue());
    EXPECT_EQ(rejected.error().code(), ErrorCode::Unavailable);
}

TEST(ServeServer, AdmissionRejectsInvalidRequests)
{
    auto server = InferenceServer::create({tinySpec()}, ServerOptions{});
    ASSERT_TRUE(server.hasValue());
    InferenceServer &srv = *server.value();

    InferRequest unknown;
    unknown.modelId = "nope";
    unknown.input = ones(Shape({1, 6, 6}));
    auto r1 = srv.submit(std::move(unknown));
    ASSERT_FALSE(r1.hasValue());
    EXPECT_EQ(r1.error().code(), ErrorCode::NotFound);

    InferRequest badShape;
    badShape.modelId = "tiny";
    badShape.input = ones(Shape({1, 4, 4}));
    auto r2 = srv.submit(std::move(badShape));
    ASSERT_FALSE(r2.hasValue());
    EXPECT_EQ(r2.error().code(), ErrorCode::InvalidArgument);

    InferRequest badQuorum;
    badQuorum.modelId = "tiny";
    badQuorum.input = ones(Shape({1, 6, 6}));
    badQuorum.mc.quorum = 100;  // exceeds T = 4: can never be met
    auto r3 = srv.submit(std::move(badQuorum));
    ASSERT_FALSE(r3.hasValue());
    EXPECT_EQ(r3.error().code(), ErrorCode::InvalidArgument);

    EXPECT_EQ(srv.stats().counter("rejected_invalid"), 3u);
    srv.shutdown();
}

TEST(ServeServer, PerRequestSeedIsDeterministicAcrossReplicas)
{
    ServerOptions sopts;
    sopts.workers = 2;
    auto server = InferenceServer::create({tinySpec()}, sopts);
    ASSERT_TRUE(server.hasValue());
    InferenceServer &srv = *server.value();

    auto submitSeeded = [&srv]() {
        InferRequest req;
        req.modelId = "tiny";
        req.input = ones(Shape({1, 6, 6}));
        req.mc.seed = 99;
        req.mc.samples = 6;
        auto handle = srv.submit(std::move(req));
        EXPECT_TRUE(handle.hasValue());
        return std::move(handle).value();
    };
    RequestHandle a = submitSeeded();
    RequestHandle b = submitSeeded();
    srv.drain();

    InferResponse ra = a.response.get();
    InferResponse rb = b.response.get();
    ASSERT_EQ(ra.outcome, Outcome::Ok);
    ASSERT_EQ(rb.outcome, Outcome::Ok);
    ASSERT_EQ(ra.result->outputs.size(), 6u);
    // Same seed, same calibrated replicas: bit-identical regardless
    // of which worker served which request.
    EXPECT_TRUE(ra.result->summary.mean.allClose(
        rb.result->summary.mean, 0.0f));
    EXPECT_EQ(ra.result->summary.argmax, rb.result->summary.argmax);
}

TEST(ServeServer, CancelledBeforeSubmitCompletesAsCancelled)
{
    auto server = InferenceServer::create({tinySpec()}, ServerOptions{});
    ASSERT_TRUE(server.hasValue());
    InferenceServer &srv = *server.value();

    InferRequest req;
    req.modelId = "tiny";
    req.input = ones(Shape({1, 6, 6}));
    req.token.cancel();  // cancelled while "in flight" to the server
    auto handle = srv.submit(std::move(req));
    ASSERT_TRUE(handle.hasValue());
    InferResponse resp = handle.value().response.get();
    EXPECT_EQ(resp.outcome, Outcome::Cancelled);
    EXPECT_EQ(resp.error.code(), ErrorCode::Cancelled);
    srv.drain();
    EXPECT_EQ(srv.stats().counter("cancelled"), 1u);
}

TEST(ServeServer, ExpiredDeadlineIsShedNotServed)
{
    auto server = InferenceServer::create({tinySpec()}, ServerOptions{});
    ASSERT_TRUE(server.hasValue());
    InferenceServer &srv = *server.value();

    InferRequest req;
    req.modelId = "tiny";
    req.input = ones(Shape({1, 6, 6}));
    req.deadlineMs = 1e-6;  // expires before any dispatch can happen
    auto handle = srv.submit(std::move(req));
    ASSERT_TRUE(handle.hasValue());
    InferResponse resp = handle.value().response.get();
    EXPECT_EQ(resp.outcome, Outcome::Shed);
    EXPECT_EQ(resp.error.code(), ErrorCode::DeadlineExceeded);
    EXPECT_EQ(resp.serviceMs, 0.0);
    srv.drain();
    EXPECT_EQ(srv.stats().counter("shed"), 1u);
    EXPECT_EQ(srv.latencySnapshot(Outcome::Shed).count(), 1u);
}

TEST(ServeServer, PerRequestFaultPlanDegradesOrFails)
{
    auto server = InferenceServer::create({tinySpec()}, ServerOptions{});
    ASSERT_TRUE(server.hasValue());
    InferenceServer &srv = *server.value();

    FaultPlan killOne;
    FaultSpec spec;
    spec.kind = FaultKind::SampleKill;
    spec.sample = 0;
    killOne.add(spec);

    FaultPlan killAll;
    FaultSpec all;
    all.kind = FaultKind::SampleKill;
    all.sample = kEverySample;
    killAll.add(all);

    InferRequest degradedReq;
    degradedReq.modelId = "tiny";
    degradedReq.input = ones(Shape({1, 6, 6}));
    degradedReq.mc.faults = &killOne;
    auto h1 = srv.submit(std::move(degradedReq));
    ASSERT_TRUE(h1.hasValue());

    InferRequest doomedReq;
    doomedReq.modelId = "tiny";
    doomedReq.input = ones(Shape({1, 6, 6}));
    doomedReq.mc.faults = &killAll;
    auto h2 = srv.submit(std::move(doomedReq));
    ASSERT_TRUE(h2.hasValue());

    srv.drain();

    InferResponse degraded = h1.value().response.get();
    EXPECT_EQ(degraded.outcome, Outcome::Ok);
    EXPECT_TRUE(degraded.degraded());
    EXPECT_EQ(degraded.result->census.survived, 3u);

    InferResponse doomed = h2.value().response.get();
    EXPECT_EQ(doomed.outcome, Outcome::Failed);
    EXPECT_EQ(doomed.error.code(), ErrorCode::QuorumNotMet);

    EXPECT_EQ(srv.stats().counter("degraded"), 1u);
    EXPECT_EQ(srv.stats().counter("failed"), 1u);
}

TEST(ServeServer, ShutdownCancelsQueuedRequests)
{
    // One worker, and a first request large enough to keep it busy
    // while more requests stack up behind it.
    ServerOptions sopts;
    sopts.workers = 1;
    sopts.queueCapacity = 16;
    sopts.maxBatch = 1;
    auto server =
        InferenceServer::create({tinySpec("tiny", 64)}, sopts);
    ASSERT_TRUE(server.hasValue());
    InferenceServer &srv = *server.value();

    std::vector<RequestHandle> handles;
    for (int i = 0; i < 6; ++i) {
        InferRequest req;
        req.modelId = "tiny";
        req.input = ones(Shape({1, 6, 6}));
        auto handle = srv.submit(std::move(req));
        ASSERT_TRUE(handle.hasValue());
        handles.push_back(std::move(handle).value());
    }
    srv.shutdown();

    std::size_t okCount = 0, cancelledCount = 0;
    for (RequestHandle &h : handles) {
        InferResponse resp = h.response.get();
        ASSERT_TRUE(resp.outcome == Outcome::Ok ||
                    resp.outcome == Outcome::Cancelled);
        (resp.outcome == Outcome::Ok ? okCount : cancelledCount)++;
    }
    // Every request resolved exactly once; the hard shutdown cancelled
    // whatever the single worker had not pulled yet.
    EXPECT_EQ(okCount + cancelledCount, 6u);
    EXPECT_EQ(srv.stats().counter("ok"), okCount);
    EXPECT_EQ(srv.stats().counter("cancelled"), cancelledCount);
}

// ---------------------------------------------------------------------------
// ServeConcurrency — the TSan-targeted soak suite (the tsan preset
// runs every suite matching 'Concurrency').

TEST(ServeConcurrency, SoakManyProducersFaultsAndMidLoadDrain)
{
    ServerOptions sopts;
    sopts.workers = 3;
    sopts.queueCapacity = 24;
    sopts.maxBatch = 4;
    auto server = InferenceServer::create({tinySpec("tiny", 3)}, sopts);
    ASSERT_TRUE(server.hasValue());
    InferenceServer &srv = *server.value();

    // One shared, immutable fault plan: kills sample 0 of any run it
    // is attached to.  Concurrent reads from worker threads are the
    // point (FaultPlan is const while runs are in flight).
    FaultPlan killOne;
    FaultSpec spec;
    spec.kind = FaultKind::SampleKill;
    spec.sample = 0;
    killOne.add(spec);

    constexpr std::size_t producers = 4;
    constexpr std::size_t perProducer = 24;
    std::mutex handlesMutex;
    std::vector<RequestHandle> handles;
    std::atomic<std::size_t> rejected{0};

    std::vector<std::thread> pool;
    pool.reserve(producers);
    for (std::size_t p = 0; p < producers; ++p) {
        pool.emplace_back([&, p]() {
            for (std::size_t i = 0; i < perProducer; ++i) {
                InferRequest req;
                req.modelId = "tiny";
                req.input = ones(Shape({1, 6, 6}));
                req.priority = static_cast<Priority>(i % 3);
                req.mc.seed = p * 1000 + i;
                if (i % 3 == 0)
                    req.mc.faults = &killOne;
                if (i % 5 == 0)
                    req.deadlineMs = 0.05;  // some will be shed
                if (i % 7 == 0)
                    req.token.cancel();
                auto handle = srv.submit(std::move(req));
                if (!handle.hasValue()) {
                    // Backpressure (queue full) or the drain racing
                    // in: both are expected under overload.
                    EXPECT_TRUE(
                        handle.error().code() ==
                            ErrorCode::ResourceExhausted ||
                        handle.error().code() == ErrorCode::Unavailable);
                    rejected.fetch_add(1);
                    continue;
                }
                const std::lock_guard<std::mutex> lock(handlesMutex);
                handles.push_back(std::move(handle).value());
            }
        });
    }
    // Drain mid-load: producers are still submitting when admission
    // closes; whatever was accepted must still complete.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    srv.drain();
    for (std::thread &t : pool)
        t.join();

    // No lost requests: every accepted future resolves.  No
    // double-completions: a second set_value on any promise would
    // have thrown std::future_error inside the server.
    std::array<std::size_t, kOutcomeCount> byOutcome{};
    for (RequestHandle &h : handles) {
        ASSERT_EQ(h.response.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready);
        InferResponse resp = h.response.get();
        ++byOutcome[static_cast<std::size_t>(resp.outcome)];
        if (resp.outcome == Outcome::Ok && resp.degraded()) {
            EXPECT_EQ(resp.result->census.survived, 2u);
        }
    }
    const std::size_t accepted = handles.size();
    EXPECT_EQ(accepted + rejected.load(), producers * perProducer);
    EXPECT_EQ(byOutcome[0] + byOutcome[1] + byOutcome[2] + byOutcome[3],
              accepted);
    EXPECT_EQ(srv.stats().counter("accepted"), accepted);
    EXPECT_EQ(srv.stats().counter("ok"),
              byOutcome[static_cast<std::size_t>(Outcome::Ok)]);
    EXPECT_EQ(srv.stats().counter("shed"),
              byOutcome[static_cast<std::size_t>(Outcome::Shed)]);
    EXPECT_EQ(srv.stats().counter("cancelled"),
              byOutcome[static_cast<std::size_t>(Outcome::Cancelled)]);
    EXPECT_EQ(srv.stats().counter("failed"),
              byOutcome[static_cast<std::size_t>(Outcome::Failed)]);
    const std::uint64_t latencyTotal =
        srv.latencySnapshot(Outcome::Ok).count() +
        srv.latencySnapshot(Outcome::Shed).count() +
        srv.latencySnapshot(Outcome::Cancelled).count() +
        srv.latencySnapshot(Outcome::Failed).count();
    EXPECT_EQ(latencyTotal, accepted);
}

TEST(ServeConcurrency, ConcurrentSubmittersSeeConsistentCounters)
{
    ServerOptions sopts;
    sopts.workers = 2;
    sopts.queueCapacity = 64;
    auto server = InferenceServer::create({tinySpec("tiny", 2)}, sopts);
    ASSERT_TRUE(server.hasValue());
    InferenceServer &srv = *server.value();

    constexpr std::size_t producers = 3;
    constexpr std::size_t perProducer = 10;
    std::atomic<std::size_t> accepted{0};
    std::vector<std::thread> pool;
    std::mutex handlesMutex;
    std::vector<RequestHandle> handles;
    pool.reserve(producers);
    for (std::size_t p = 0; p < producers; ++p) {
        pool.emplace_back([&]() {
            for (std::size_t i = 0; i < perProducer; ++i) {
                InferRequest req;
                req.modelId = "tiny";
                req.input = ones(Shape({1, 6, 6}));
                auto handle = srv.submit(std::move(req));
                if (handle.hasValue()) {
                    accepted.fetch_add(1);
                    const std::lock_guard<std::mutex> lock(
                        handlesMutex);
                    handles.push_back(std::move(handle).value());
                }
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
    srv.drain();
    for (RequestHandle &h : handles)
        EXPECT_EQ(h.response.get().outcome, Outcome::Ok);
    EXPECT_EQ(srv.stats().counter("accepted"), accepted.load());
    EXPECT_EQ(srv.stats().counter("ok"), accepted.load());
}

// ---------------------------------------------------------------------------
// ServeBreaker — per-model circuit breaking

namespace {

/** Breaker options that trip and recover at unit-test speed. */
BreakerOptions
fastBreaker(std::size_t threshold = 2, double cooldown_ms = 40.0)
{
    BreakerOptions opts;
    opts.enabled = true;
    opts.failureThreshold = threshold;
    opts.cooldownMs = cooldown_ms;
    opts.halfOpenProbes = 1;
    opts.closeSuccesses = 1;
    return opts;
}

/** A guard-enabled tiny-model replica factory. */
Expected<std::unique_ptr<FastBcnnEngine>>
makeGuardedReplica(double tolerance)
{
    EngineOptions eopts;
    eopts.mc.samples = 4;
    eopts.mc.seed = 21;
    eopts.mc.recordMasks = false;
    eopts.optimizer.samples = 2;
    eopts.guard.enabled = true;
    eopts.guard.audit.rate = 1.0;
    eopts.guard.tolerance = tolerance;
    eopts.guard.decisionInterval = 1;
    eopts.guard.minAudited = 1;
    eopts.guard.cooldownRounds = 1000;  // stay backed off once tripped
    Expected<std::unique_ptr<FastBcnnEngine>> engine =
        FastBcnnEngine::create(tinyBcnn(), eopts);
    if (!engine.hasValue())
        return engine;
    Status calibrated =
        engine.value()->tryCalibrate({ones(Shape({1, 6, 6}))});
    if (!calibrated.isOk())
        return calibrated;
    return engine;
}

/** The kill-every-sample fault plan (forces Outcome::Failed). */
const FaultPlan &
killAllPlan()
{
    static const FaultPlan plan = []() {
        FaultPlan p;
        FaultSpec all;
        all.kind = FaultKind::SampleKill;
        all.sample = kEverySample;
        p.add(all);
        return p;
    }();
    return plan;
}

} // namespace

TEST(ServeBreaker, DisabledBreakerAdmitsEverything)
{
    CircuitBreaker breaker;  // default: disabled
    const auto now = ServeClock::now();
    for (int i = 0; i < 10; ++i) {
        breaker.report(BreakerSignal::Failure, false, now);
        const CircuitBreaker::Admission a = breaker.admit(now);
        EXPECT_TRUE(a.admitted);
        EXPECT_FALSE(a.probe);
    }
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
    EXPECT_EQ(breaker.opens(), 0u);
    EXPECT_EQ(breaker.rejections(), 0u);
}

TEST(ServeBreaker, OpensAfterConsecutiveFailuresThenRecovers)
{
    BreakerOptions opts = fastBreaker(3, 100.0);
    opts.closeSuccesses = 2;
    CircuitBreaker breaker(opts);
    const auto t0 = ServeClock::now();

    // A success resets the consecutive-failure run.
    breaker.report(BreakerSignal::Failure, false, t0);
    breaker.report(BreakerSignal::Failure, false, t0);
    breaker.report(BreakerSignal::Success, false, t0);
    breaker.report(BreakerSignal::Failure, false, t0);
    breaker.report(BreakerSignal::Failure, false, t0);
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
    breaker.report(BreakerSignal::Failure, false, t0);
    EXPECT_EQ(breaker.state(), BreakerState::Open);
    EXPECT_EQ(breaker.opens(), 1u);

    // Inside the cooldown everything is rejected, fast.
    const auto early = t0 + std::chrono::milliseconds(10);
    EXPECT_FALSE(breaker.admit(early).admitted);
    EXPECT_FALSE(breaker.admit(early).admitted);
    EXPECT_EQ(breaker.rejections(), 2u);

    // Cooldown expiry: the next admit is the (single) probe; the
    // next one is rejected because the slot is taken.
    const auto late = t0 + std::chrono::milliseconds(150);
    const CircuitBreaker::Admission probe = breaker.admit(late);
    EXPECT_TRUE(probe.admitted);
    EXPECT_TRUE(probe.probe);
    EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
    EXPECT_FALSE(breaker.admit(late).admitted);

    // Two probe successes close it.
    breaker.report(BreakerSignal::Success, true, late);
    EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
    const CircuitBreaker::Admission probe2 = breaker.admit(late);
    ASSERT_TRUE(probe2.probe);
    breaker.report(BreakerSignal::Success, true, late);
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
    EXPECT_TRUE(breaker.admit(late).admitted);
}

TEST(ServeBreaker, ProbeFailureReopens)
{
    CircuitBreaker breaker(fastBreaker(1, 50.0));
    const auto t0 = ServeClock::now();
    breaker.report(BreakerSignal::Failure, false, t0);
    ASSERT_EQ(breaker.state(), BreakerState::Open);

    const auto late = t0 + std::chrono::milliseconds(80);
    const CircuitBreaker::Admission probe = breaker.admit(late);
    ASSERT_TRUE(probe.probe);
    breaker.report(BreakerSignal::Failure, true, late);
    EXPECT_EQ(breaker.state(), BreakerState::Open);
    EXPECT_EQ(breaker.opens(), 2u);

    // The new cooldown starts at the reopen, not the first trip.
    EXPECT_FALSE(breaker.admit(late).admitted);
    const auto later = late + std::chrono::milliseconds(80);
    EXPECT_TRUE(breaker.admit(later).admitted);
}

TEST(ServeBreaker, NeutralProbeReleasesSlotWithoutClosing)
{
    CircuitBreaker breaker(fastBreaker(1, 50.0));
    const auto t0 = ServeClock::now();
    breaker.report(BreakerSignal::Failure, false, t0);
    const auto late = t0 + std::chrono::milliseconds(80);
    ASSERT_TRUE(breaker.admit(late).probe);
    ASSERT_FALSE(breaker.admit(late).admitted);

    // A shed / cancelled probe neither closes nor reopens — it only
    // frees the slot for the next probe.
    breaker.report(BreakerSignal::Neutral, true, late);
    EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
    EXPECT_TRUE(breaker.admit(late).probe);
}

TEST(ServeBreaker, ServerOpensRejectsFastAndRecovers)
{
    ServerOptions sopts;
    sopts.workers = 1;
    sopts.breaker = fastBreaker(2, 40.0);
    auto server = InferenceServer::create({tinySpec()}, sopts);
    ASSERT_TRUE(server.hasValue());
    InferenceServer &srv = *server.value();

    // Two forced failures trip the breaker.
    for (int i = 0; i < 2; ++i) {
        InferRequest doomed;
        doomed.modelId = "tiny";
        doomed.input = ones(Shape({1, 6, 6}));
        doomed.mc.faults = &killAllPlan();
        auto handle = srv.submit(std::move(doomed));
        ASSERT_TRUE(handle.hasValue());
        EXPECT_EQ(handle.value().response.get().outcome,
                  Outcome::Failed);
    }
    ASSERT_NE(srv.breaker("tiny"), nullptr);
    EXPECT_EQ(srv.breaker("tiny")->state(), BreakerState::Open);

    // While open, requests are rejected with Unavailable without
    // touching the queue.
    InferRequest rejected;
    rejected.modelId = "tiny";
    rejected.input = ones(Shape({1, 6, 6}));
    auto nope = srv.submit(std::move(rejected));
    ASSERT_FALSE(nope.hasValue());
    EXPECT_EQ(nope.error().code(), ErrorCode::Unavailable);
    EXPECT_GE(srv.stats().counter("rejected_breaker"), 1u);

    HealthReport mid = srv.health();
    ASSERT_EQ(mid.models.size(), 1u);
    EXPECT_EQ(mid.models[0].breakerState, BreakerState::Open);
    EXPECT_GE(mid.models[0].breakerOpens, 1u);
    EXPECT_GE(mid.rejectedBreaker, 1u);

    // After the cooldown a healthy request probes it closed again.
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    InferRequest probe;
    probe.modelId = "tiny";
    probe.input = ones(Shape({1, 6, 6}));
    auto probed = srv.submit(std::move(probe));
    ASSERT_TRUE(probed.hasValue());
    EXPECT_EQ(probed.value().response.get().outcome, Outcome::Ok);
    EXPECT_EQ(srv.breaker("tiny")->state(), BreakerState::Closed);

    InferRequest after;
    after.modelId = "tiny";
    after.input = ones(Shape({1, 6, 6}));
    auto served = srv.submit(std::move(after));
    ASSERT_TRUE(served.hasValue());
    EXPECT_EQ(served.value().response.get().outcome, Outcome::Ok);
    srv.drain();
}

TEST(ServeBreaker, GuardedPathServesAndReportsHealth)
{
    ServerOptions sopts;
    sopts.workers = 2;
    auto server = InferenceServer::create(
        {namedSpec("guarded",
                   []() { return makeGuardedReplica(0.9); }),
         tinySpec("plain")},
        sopts);
    ASSERT_TRUE(server.hasValue()) << server.error().toString();
    InferenceServer &srv = *server.value();

    // useGuardedSkip against a guard-less model is an admission error.
    InferRequest wrong;
    wrong.modelId = "plain";
    wrong.input = ones(Shape({1, 6, 6}));
    wrong.useGuardedSkip = true;
    auto bad = srv.submit(std::move(wrong));
    ASSERT_FALSE(bad.hasValue());
    EXPECT_EQ(bad.error().code(), ErrorCode::InvalidArgument);

    std::vector<RequestHandle> handles;
    for (int i = 0; i < 4; ++i) {
        InferRequest req;
        req.modelId = "guarded";
        req.input = ones(Shape({1, 6, 6}));
        req.useGuardedSkip = true;
        auto handle = srv.submit(std::move(req));
        ASSERT_TRUE(handle.hasValue());
        handles.push_back(std::move(handle).value());
    }
    srv.drain();
    for (RequestHandle &h : handles) {
        InferResponse response = h.response.get();
        ASSERT_EQ(response.outcome, Outcome::Ok);
        ASSERT_TRUE(response.guarded.has_value());
        EXPECT_EQ(response.guarded->outputs.size(), 4u);
        EXPECT_FALSE(response.result.has_value());
    }

    const HealthReport report = srv.health();
    ASSERT_EQ(report.models.size(), 2u);  // map order: guarded, plain
    const ModelHealth &guarded = report.models[0];
    EXPECT_EQ(guarded.id, "guarded");
    EXPECT_TRUE(guarded.guardEnabled);
    EXPECT_GT(guarded.guard.samplesSeen, 0u);
    EXPECT_GT(guarded.guard.auditedNeurons, 0u);
    EXPECT_FALSE(report.models[1].guardEnabled);
    EXPECT_EQ(report.ok, 4u);
}

TEST(ServeBreaker, GuardTripCountsAsBreakerFailure)
{
    // A guard with a near-zero tolerance trips on the first audited
    // mispredict; the breaker must read the served-but-degraded
    // response as a failure and open.  (The guard's backoff persists
    // across requests, so the trip happens exactly once per replica —
    // the threshold must be 1 for a single trip to open the breaker.)
    ServerOptions sopts;
    sopts.workers = 1;
    sopts.breaker = fastBreaker(1, 10000.0);
    auto server = InferenceServer::create(
        {namedSpec("touchy",
                   []() { return makeGuardedReplica(1e-6); })},
        sopts);
    ASSERT_TRUE(server.hasValue()) << server.error().toString();
    InferenceServer &srv = *server.value();

    std::size_t tripped = 0;
    for (int i = 0; i < 6 &&
                    srv.breaker("touchy")->state() ==
                        BreakerState::Closed;
         ++i) {
        InferRequest req;
        req.modelId = "touchy";
        req.input = ones(Shape({1, 6, 6}));
        req.useGuardedSkip = true;
        auto handle = srv.submit(std::move(req));
        ASSERT_TRUE(handle.hasValue());
        InferResponse response = handle.value().response.get();
        ASSERT_EQ(response.outcome, Outcome::Ok);
        tripped += response.guardTripped() ? 1 : 0;
    }
    EXPECT_GE(tripped, 1u) << "guard never tripped on mispredicts";
    EXPECT_EQ(srv.breaker("touchy")->state(), BreakerState::Open);
    srv.drain();
}

TEST(ServeConcurrency, BreakerSoakLosesNoRequestAndDoublesNone)
{
    // TSan target: many producers race a flapping breaker (forced
    // failures trip it, cooldowns re-close it).  Every accepted
    // request's future must resolve exactly once; every rejection must
    // be Unavailable (breaker) or ResourceExhausted (queue).
    ServerOptions sopts;
    sopts.workers = 2;
    sopts.queueCapacity = 32;
    sopts.breaker = fastBreaker(3, 5.0);
    auto server = InferenceServer::create({tinySpec("tiny", 2)}, sopts);
    ASSERT_TRUE(server.hasValue());
    InferenceServer &srv = *server.value();

    // FASTBCNN_CHAOS=1 (the nightly chaos-soak job) scales the load
    // up and dooms more of the traffic, flapping the breaker harder.
    const bool chaos = std::getenv("FASTBCNN_CHAOS") != nullptr;
    const std::size_t producers = chaos ? 8 : 4;
    const std::size_t perProducer = chaos ? 100 : 25;
    const std::size_t doomEvery = chaos ? 2 : 3;
    std::atomic<std::size_t> accepted{0};
    std::atomic<std::size_t> rejectedBreaker{0};
    std::atomic<std::size_t> rejectedOther{0};
    std::mutex handlesMutex;
    std::vector<RequestHandle> handles;
    std::vector<std::thread> pool;
    pool.reserve(producers);
    for (std::size_t p = 0; p < producers; ++p) {
        pool.emplace_back([&, p]() {
            for (std::size_t i = 0; i < perProducer; ++i) {
                InferRequest req;
                req.modelId = "tiny";
                req.input = ones(Shape({1, 6, 6}));
                // Every doomEvery-th request of producer 0 keeps
                // tripping the breaker under load.
                if (p == 0 && i % doomEvery == 0)
                    req.mc.faults = &killAllPlan();
                auto handle = srv.submit(std::move(req));
                if (handle.hasValue()) {
                    accepted.fetch_add(1);
                    const std::lock_guard<std::mutex> lock(
                        handlesMutex);
                    handles.push_back(std::move(handle).value());
                } else if (handle.error().code() ==
                           ErrorCode::Unavailable) {
                    rejectedBreaker.fetch_add(1);
                } else {
                    ASSERT_EQ(handle.error().code(),
                              ErrorCode::ResourceExhausted);
                    rejectedOther.fetch_add(1);
                }
                if (i % 8 == 7) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(6));
                }
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
    srv.drain();

    std::size_t resolved = 0;
    for (RequestHandle &h : handles) {
        const InferResponse response = h.response.get();
        ++resolved;
        EXPECT_TRUE(response.outcome == Outcome::Ok ||
                    response.outcome == Outcome::Failed ||
                    response.outcome == Outcome::Cancelled);
    }
    EXPECT_EQ(resolved, accepted.load());
    EXPECT_EQ(srv.stats().counter("accepted"), accepted.load());
    EXPECT_EQ(srv.stats().counter("rejected_breaker"),
              rejectedBreaker.load());
    EXPECT_EQ(srv.stats().counter("submitted"),
              producers * perProducer);
    EXPECT_EQ(srv.stats().counter("ok") +
                  srv.stats().counter("failed") +
                  srv.stats().counter("cancelled") +
                  srv.stats().counter("shed"),
              accepted.load());
}

// ---------------------------------------------------------------------------
// RegistrySwap: hot-swap atomicity, rollback, backoff, health gate.
// ---------------------------------------------------------------------------

namespace {

/** A tiny-model replica with version-specific weights. */
Expected<std::unique_ptr<FastBcnnEngine>>
makeVersionReplica(std::uint64_t weight_seed, std::size_t samples = 4)
{
    Network net = tinyBcnn();
    InitOptions init;
    init.seed = weight_seed;
    init.biasShift = 0.0;
    initializeWeights(net, init);
    EngineOptions eopts;
    eopts.mc.samples = samples;
    eopts.mc.seed = 21;
    eopts.mc.recordMasks = false;
    eopts.optimizer.samples = 2;
    Expected<std::unique_ptr<FastBcnnEngine>> engine =
        FastBcnnEngine::create(std::move(net), eopts);
    if (!engine.hasValue())
        return engine;
    Status calibrated =
        engine.value()->tryCalibrate({ones(Shape({1, 6, 6}))});
    if (!calibrated.isOk())
        return calibrated;
    return engine;
}

ModelVersionSpec
versionSpec(std::uint64_t version, std::uint64_t weight_seed,
            std::string id = "tiny")
{
    ModelVersionSpec spec;
    spec.modelId = std::move(id);
    spec.version = version;
    spec.factory = [weight_seed]() {
        return makeVersionReplica(weight_seed);
    };
    return spec;
}

const RegistryModelHealth &
registryHealthOf(const HealthReport &report, const std::string &id)
{
    for (const ModelHealth &model : report.models) {
        if (model.id == id)
            return model.registry;
    }
    ADD_FAILURE() << "model '" << id << "' missing from health()";
    static const RegistryModelHealth empty;
    return empty;
}

} // namespace

TEST(RegistrySwap, SwapUnderLoadLosesNothingAndStaysVersionAtomic)
{
    ServerOptions opts;
    opts.workers = 2;
    opts.queueCapacity = 256;
    opts.maxBatch = 4;
    auto created =
        InferenceServer::create({tinySpec("tiny", 2)}, opts);
    ASSERT_TRUE(created.hasValue()) << created.error().toString();
    InferenceServer &srv = *created.value();

    constexpr std::size_t producers = 4;
    constexpr std::size_t perProducer = 48;
    std::atomic<std::uint64_t> accepted{0};
    std::mutex handlesMutex;
    std::vector<RequestHandle> handles;

    std::vector<std::thread> pool;
    pool.reserve(producers);
    for (std::size_t p = 0; p < producers; ++p) {
        pool.emplace_back([&]() {
            for (std::size_t i = 0; i < perProducer; ++i) {
                InferRequest req;
                req.modelId = "tiny";
                req.input = ones(Shape({1, 6, 6}));
                auto handle = srv.submit(std::move(req));
                if (handle.hasValue()) {
                    accepted.fetch_add(1);
                    const std::lock_guard<std::mutex> lock(
                        handlesMutex);
                    handles.push_back(std::move(handle).value());
                } else {
                    ASSERT_EQ(handle.error().code(),
                              ErrorCode::ResourceExhausted);
                }
                if (i % 16 == 15) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(2));
                }
            }
        });
    }

    // Two hot-swaps race the producers.
    auto swap2 = srv.requestSwap(versionSpec(2, 100));
    ASSERT_TRUE(swap2.hasValue()) << swap2.error().toString();
    const Status s2 = swap2.value().get();
    EXPECT_TRUE(s2.isOk()) << s2.toString();
    auto swap3 = srv.requestSwap(versionSpec(3, 101));
    ASSERT_TRUE(swap3.hasValue());
    const Status s3 = swap3.value().get();
    EXPECT_TRUE(s3.isOk()) << s3.toString();

    for (std::thread &t : pool)
        t.join();
    srv.drain();

    // Exactly-once completion, and every served request ran on
    // exactly one *installed* version — no request ever observes a
    // half-swapped model.
    std::size_t resolved = 0;
    for (RequestHandle &h : handles) {
        const InferResponse response = h.response.get();
        ++resolved;
        if (response.outcome == Outcome::Ok) {
            EXPECT_TRUE(response.modelVersion == 1 ||
                        response.modelVersion == 2 ||
                        response.modelVersion == 3)
                << "request served by uninstalled version "
                << response.modelVersion;
        }
    }
    EXPECT_EQ(resolved, accepted.load());
    EXPECT_EQ(srv.stats().counter("accepted"), accepted.load());
    EXPECT_EQ(srv.stats().counter("ok") +
                  srv.stats().counter("failed") +
                  srv.stats().counter("cancelled") +
                  srv.stats().counter("shed"),
              accepted.load());
    EXPECT_EQ(srv.stats().counter("swaps"), 2u);

    const HealthReport report = srv.health();
    const RegistryModelHealth &reg = registryHealthOf(report, "tiny");
    EXPECT_EQ(3u, reg.activeVersion);
    EXPECT_EQ(0u, reg.warmingVersion);
    EXPECT_EQ(3u, reg.swaps);  // initial install + 2 hot-swaps
    EXPECT_EQ(0u, reg.rollbacks);
}

TEST(RegistrySwap, FailedSwapRollsBackAndBacksOff)
{
    ServerOptions opts;
    opts.workers = 1;
    opts.registry.backoffBaseMs = 400.0;
    auto created = InferenceServer::create({tinySpec()}, opts);
    ASSERT_TRUE(created.hasValue()) << created.error().toString();
    InferenceServer &srv = *created.value();

    // A factory that cannot load its checkpoint.
    ModelVersionSpec broken;
    broken.modelId = "tiny";
    broken.version = 2;
    broken.factory = []() -> Expected<std::unique_ptr<FastBcnnEngine>> {
        return errorf(ErrorCode::DataLoss,
                      "checkpoint failed its CRC32 check");
    };
    auto attempt = srv.requestSwap(broken);
    ASSERT_TRUE(attempt.hasValue());
    const Status failed = attempt.value().get();
    ASSERT_FALSE(failed.isOk());
    EXPECT_EQ(ErrorCode::DataLoss, failed.code());

    // Rolled back: v1 still serves, health says so.
    {
        const HealthReport report = srv.health();
        const RegistryModelHealth &reg =
            registryHealthOf(report, "tiny");
        EXPECT_EQ(1u, reg.activeVersion);
        EXPECT_EQ(1u, reg.rollbacks);
        EXPECT_EQ(1u, reg.consecutiveLoadFailures);
        EXPECT_GT(reg.backoffMs, 0.0);
        EXPECT_NE(std::string::npos, reg.lastEvent.find("rejected"));
    }
    InferRequest req;
    req.modelId = "tiny";
    req.input = ones(Shape({1, 6, 6}));
    auto handle = srv.submit(std::move(req));
    ASSERT_TRUE(handle.hasValue());
    EXPECT_EQ(Outcome::Ok, handle.value().response.get().outcome);

    // Inside the backoff window even a good swap fails fast...
    auto tooSoon = srv.requestSwap(versionSpec(2, 100));
    ASSERT_TRUE(tooSoon.hasValue());
    const Status rejected = tooSoon.value().get();
    ASSERT_FALSE(rejected.isOk());
    EXPECT_EQ(ErrorCode::Unavailable, rejected.code());

    // ...and once it expires, the swap lands and clears the failure
    // streak.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    auto retry = srv.requestSwap(versionSpec(2, 100));
    ASSERT_TRUE(retry.hasValue());
    const Status landed = retry.value().get();
    EXPECT_TRUE(landed.isOk()) << landed.toString();
    const HealthReport report = srv.health();
    const RegistryModelHealth &reg = registryHealthOf(report, "tiny");
    EXPECT_EQ(2u, reg.activeVersion);
    EXPECT_EQ(0u, reg.consecutiveLoadFailures);
    EXPECT_EQ(0.0, reg.backoffMs);
    srv.drain();
}

TEST(RegistrySwap, HealthGateRejectsWrongDigestAcceptsRightOne)
{
    ServerOptions opts;
    opts.workers = 1;
    opts.registry.backoffBaseMs = 1.0;  // no waiting between attempts
    auto created = InferenceServer::create({tinySpec()}, opts);
    ASSERT_TRUE(created.hasValue()) << created.error().toString();
    InferenceServer &srv = *created.value();

    const Tensor gateInput = ones(Shape({1, 6, 6}));
    // The recorded reference: what the *candidate* checkpoint (weight
    // seed 100) is supposed to produce, computed out-of-band.
    auto reference = makeVersionReplica(100);
    ASSERT_TRUE(reference.hasValue());
    auto expected = reference.value()->tryReferenceDigest(
        gateInput, 4, 777);
    ASSERT_TRUE(expected.hasValue()) << expected.error().toString();

    // Candidate with DIFFERENT weights (seed 200) against that
    // digest: the gate must catch the mismatch and roll back.
    ModelVersionSpec wrong = versionSpec(2, 200);
    wrong.gate.enabled = true;
    wrong.gate.input = gateInput;
    wrong.gate.expectedMean = expected.value();
    wrong.gate.samples = 4;
    wrong.gate.seed = 777;
    wrong.gate.epsilon = 1e-9;
    auto rejected = srv.requestSwap(wrong);
    ASSERT_TRUE(rejected.hasValue());
    const Status miss = rejected.value().get();
    ASSERT_FALSE(miss.isOk());
    EXPECT_EQ(ErrorCode::DataLoss, miss.code());
    EXPECT_EQ(1u,
              registryHealthOf(srv.health(), "tiny").activeVersion);

    // The matching candidate passes the same gate.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ModelVersionSpec right = versionSpec(2, 100);
    right.gate = wrong.gate;
    auto accepted2 = srv.requestSwap(right);
    ASSERT_TRUE(accepted2.hasValue());
    const Status landed = accepted2.value().get();
    EXPECT_TRUE(landed.isOk()) << landed.toString();
    EXPECT_EQ(2u,
              registryHealthOf(srv.health(), "tiny").activeVersion);
    srv.drain();
}

TEST(RegistrySwap, BreakerResetsOnSuccessfulSwap)
{
    ServerOptions opts;
    opts.workers = 1;
    opts.breaker = fastBreaker(3, 60000.0);  // cooldown >> test
    auto created = InferenceServer::create({tinySpec()}, opts);
    ASSERT_TRUE(created.hasValue()) << created.error().toString();
    InferenceServer &srv = *created.value();

    // Trip the breaker against v1.
    for (int i = 0; i < 3; ++i) {
        InferRequest doomed;
        doomed.modelId = "tiny";
        doomed.input = ones(Shape({1, 6, 6}));
        doomed.mc.faults = &killAllPlan();
        auto handle = srv.submit(std::move(doomed));
        ASSERT_TRUE(handle.hasValue());
        EXPECT_EQ(Outcome::Failed,
                  handle.value().response.get().outcome);
    }
    ASSERT_EQ(BreakerState::Open, srv.breaker("tiny")->state());
    {
        InferRequest req;
        req.modelId = "tiny";
        req.input = ones(Shape({1, 6, 6}));
        auto blocked = srv.submit(std::move(req));
        ASSERT_FALSE(blocked.hasValue());
        EXPECT_EQ(ErrorCode::Unavailable, blocked.error().code());
    }

    // A successful swap gives the new version a Closed breaker well
    // before the cooldown would have expired.
    auto swap = srv.requestSwap(versionSpec(2, 100));
    ASSERT_TRUE(swap.hasValue());
    const Status landed = swap.value().get();
    ASSERT_TRUE(landed.isOk()) << landed.toString();
    EXPECT_EQ(BreakerState::Closed, srv.breaker("tiny")->state());
    InferRequest req;
    req.modelId = "tiny";
    req.input = ones(Shape({1, 6, 6}));
    auto handle = srv.submit(std::move(req));
    ASSERT_TRUE(handle.hasValue()) << handle.error().toString();
    EXPECT_EQ(Outcome::Ok, handle.value().response.get().outcome);
    srv.drain();
}

TEST(RegistrySwap, RejectsUnknownModelAndStaleVersion)
{
    auto created = InferenceServer::create({tinySpec()}, {});
    ASSERT_TRUE(created.hasValue()) << created.error().toString();
    InferenceServer &srv = *created.value();

    auto unknown = srv.requestSwap(versionSpec(2, 100, "nope"));
    ASSERT_FALSE(unknown.hasValue());
    EXPECT_EQ(ErrorCode::NotFound, unknown.error().code());

    auto stale = srv.requestSwap(versionSpec(1, 100));
    ASSERT_TRUE(stale.hasValue());
    const Status refused = stale.value().get();
    ASSERT_FALSE(refused.isOk());
    EXPECT_EQ(ErrorCode::InvalidArgument, refused.code());
    srv.drain();
}

TEST(RegistrySwap, HealthReportsRegistryAndLegacyLoadState)
{
    auto created = InferenceServer::create({tinySpec()}, {});
    ASSERT_TRUE(created.hasValue()) << created.error().toString();
    InferenceServer &srv = *created.value();

    const HealthReport report = srv.health();
    const RegistryModelHealth &reg = registryHealthOf(report, "tiny");
    EXPECT_EQ(1u, reg.activeVersion);
    EXPECT_EQ(0u, reg.warmingVersion);
    EXPECT_EQ(1u, reg.swaps);
    EXPECT_EQ(0u, reg.rollbacks);
    EXPECT_NE(std::string::npos, reg.lastEvent.find("swapped to v1"));
    EXPECT_EQ(checkpointStats().counter("legacy_text_loads"),
              report.legacyTextLoads);
    srv.drain();
}

// ---------------------------------------------------------------------------
// Brownout: the overload ladder that degrades samples, not requests.

namespace {

/** Brownout options tuned so unit tests drive the ladder directly:
 *  alpha 1 makes the EWMAs track the last completion exactly. */
BrownoutOptions
testBrownout()
{
    BrownoutOptions opts;
    opts.enabled = true;
    opts.tickIntervalMs = 5.0;
    opts.queueDelayHighMs = 50.0;
    opts.queueDelayLowMs = 20.0;
    opts.missRateHigh = 0.5;
    opts.missRateLow = 0.1;
    opts.ewmaAlpha = 1.0;
    opts.recoverTicks = 2;
    return opts;
}

} // namespace

TEST(Brownout, ValidationRejectsBadOptions)
{
    BrownoutOptions opts = testBrownout();
    opts.queueDelayLowMs = 60.0;  // low > high
    EXPECT_FALSE(validateBrownoutOptions(opts).isOk());
    opts = testBrownout();
    opts.missRateHigh = 1.5;
    EXPECT_FALSE(validateBrownoutOptions(opts).isOk());
    opts = testBrownout();
    opts.ewmaAlpha = 0.0;
    EXPECT_FALSE(validateBrownoutOptions(opts).isOk());
    opts = testBrownout();
    opts.recoverTicks = 0;
    EXPECT_FALSE(validateBrownoutOptions(opts).isOk());
    opts = testBrownout();
    opts.targetCiWidth = 0.0;
    EXPECT_FALSE(validateBrownoutOptions(opts).isOk());
    opts = testBrownout();
    opts.budgetFraction[1] = 0.0;
    EXPECT_FALSE(validateBrownoutOptions(opts).isOk());
    opts = testBrownout();
    opts.budgetFloor = 0;
    EXPECT_FALSE(validateBrownoutOptions(opts).isOk());
    EXPECT_TRUE(validateBrownoutOptions(testBrownout()).isOk());
    EXPECT_TRUE(validateBrownoutOptions(BrownoutOptions{}).isOk());
}

TEST(Brownout, LadderEscalatesImmediatelyRecoversAdditively)
{
    BrownoutController ctl(testBrownout());
    EXPECT_EQ(ctl.level(), BrownoutLevel::Normal);

    // One pressured tick per rung: multiplicative-decrease analog.
    for (const BrownoutLevel want :
         {BrownoutLevel::AdaptiveExit, BrownoutLevel::BudgetClamp,
          BrownoutLevel::Shed}) {
        ctl.recordCompletion(100.0, true, false);
        ctl.tick(4);
        EXPECT_EQ(ctl.level(), want);
    }
    // Pressure at the top rung holds it (no further escalation).
    ctl.recordCompletion(100.0, true, false);
    ctl.tick(4);
    EXPECT_EQ(ctl.level(), BrownoutLevel::Shed);
    EXPECT_EQ(ctl.state().escalations, 3u);

    // Recovery needs recoverTicks consecutive healthy ticks per rung.
    ctl.recordCompletion(1.0, false, false);
    ctl.tick(0);
    EXPECT_EQ(ctl.level(), BrownoutLevel::Shed);  // 1 of 2
    ctl.recordCompletion(1.0, false, false);
    ctl.tick(0);
    EXPECT_EQ(ctl.level(), BrownoutLevel::BudgetClamp);  // 2 of 2
    ctl.recordCompletion(1.0, false, false);
    ctl.tick(0);
    ctl.recordCompletion(1.0, false, false);
    ctl.tick(0);
    EXPECT_EQ(ctl.level(), BrownoutLevel::AdaptiveExit);
    EXPECT_EQ(ctl.state().recoveries, 2u);
}

TEST(Brownout, HysteresisBandHoldsAndForfeitsCredit)
{
    BrownoutController ctl(testBrownout());
    ctl.recordCompletion(100.0, false, false);
    ctl.tick(1);
    ASSERT_EQ(ctl.level(), BrownoutLevel::AdaptiveExit);

    // One healthy tick of credit...
    ctl.recordCompletion(1.0, false, false);
    ctl.tick(1);
    // ...forfeited by a tick in the hysteresis band (30 ms is between
    // low 20 and high 50), so two more healthy ticks are needed.
    ctl.recordCompletion(30.0, false, false);
    ctl.tick(1);
    EXPECT_EQ(ctl.level(), BrownoutLevel::AdaptiveExit);
    ctl.recordCompletion(1.0, false, false);
    ctl.tick(1);
    EXPECT_EQ(ctl.level(), BrownoutLevel::AdaptiveExit);
    ctl.recordCompletion(1.0, false, false);
    ctl.tick(1);
    EXPECT_EQ(ctl.level(), BrownoutLevel::Normal);
}

TEST(Brownout, IdleTicksRecoverOnlyWithEmptyQueue)
{
    BrownoutController ctl(testBrownout());
    ctl.recordCompletion(100.0, true, false);
    ctl.tick(4);
    ASSERT_EQ(ctl.level(), BrownoutLevel::AdaptiveExit);

    // No completions + queued work: the EWMAs are stale, hold.
    ctl.tick(4);
    ctl.tick(4);
    ctl.tick(4);
    EXPECT_EQ(ctl.level(), BrownoutLevel::AdaptiveExit);
    // No completions + empty queue: nothing flowing, nothing hurting.
    ctl.tick(0);
    ctl.tick(0);
    EXPECT_EQ(ctl.level(), BrownoutLevel::Normal);
}

TEST(Brownout, DisabledControllerNeverMoves)
{
    BrownoutOptions opts = testBrownout();
    opts.enabled = false;
    BrownoutController ctl(opts);
    ctl.recordCompletion(1000.0, true, false);
    ctl.tick(100);
    EXPECT_EQ(ctl.level(), BrownoutLevel::Normal);
    McOptions mc;
    mc.samples = 50;
    EXPECT_EQ(ctl.apply(mc, Priority::Background),
              BrownoutLevel::Normal);
    EXPECT_EQ(mc.targetCiWidth, 0.0);
    EXPECT_EQ(ctl.effectiveSamples(50, Priority::Background, 0), 50u);
}

TEST(Brownout, ApplyForcesAdaptiveButRespectsCallerFloors)
{
    BrownoutController ctl(testBrownout());
    ctl.forceLevel(BrownoutLevel::AdaptiveExit);

    McOptions mc;
    mc.samples = 50;
    EXPECT_EQ(ctl.apply(mc, Priority::Standard),
              BrownoutLevel::AdaptiveExit);
    EXPECT_EQ(mc.targetCiWidth, ctl.options().targetCiWidth);
    EXPECT_EQ(mc.minSamples, ctl.options().minSamples);
    EXPECT_EQ(mc.sampleBudget, 0u);  // no clamp below BudgetClamp
    EXPECT_TRUE(validateMcOptions(mc).isOk());

    // A tighter per-request width wins; a looser one is tightened.
    McOptions tight;
    tight.samples = 50;
    tight.targetCiWidth = 0.001;
    tight.minSamples = 20;
    ctl.apply(tight, Priority::Standard);
    EXPECT_EQ(tight.targetCiWidth, 0.001);
    EXPECT_EQ(tight.minSamples, 20u);
    McOptions loose;
    loose.samples = 50;
    loose.targetCiWidth = 10.0;
    ctl.apply(loose, Priority::Standard);
    EXPECT_EQ(loose.targetCiWidth, ctl.options().targetCiWidth);
}

TEST(Brownout, BudgetClampPerClassWithQuorumFloor)
{
    BrownoutController ctl(testBrownout());
    ctl.forceLevel(BrownoutLevel::BudgetClamp);

    // Default fractions: 0.75 / 0.50 / 0.25 of T = 40.
    EXPECT_EQ(ctl.effectiveSamples(40, Priority::Interactive, 0), 30u);
    EXPECT_EQ(ctl.effectiveSamples(40, Priority::Standard, 0), 20u);
    EXPECT_EQ(ctl.effectiveSamples(40, Priority::Background, 0), 10u);
    // The quorum floor always holds (quality degrades, correctness
    // floors do not).
    EXPECT_EQ(ctl.effectiveSamples(40, Priority::Background, 25), 25u);
    // The budget floor holds for tiny T; never exceeds T itself.
    EXPECT_EQ(ctl.effectiveSamples(2, Priority::Background, 0), 2u);

    McOptions mc;
    mc.samples = 40;
    mc.quorum = 25;
    ctl.apply(mc, Priority::Background);
    EXPECT_EQ(mc.sampleBudget, 25u);
    EXPECT_TRUE(validateMcOptions(mc).isOk());

    // A smaller caller-set budget survives (never loosened).
    McOptions own;
    own.samples = 40;
    own.sampleBudget = 4;
    ctl.apply(own, Priority::Interactive);
    EXPECT_EQ(own.sampleBudget, 4u);
}

TEST(Brownout, BrownedOutResponseIsOkNotBreakerFailure)
{
    ServerOptions sopts;
    sopts.workers = 1;
    sopts.brownout = testBrownout();
    sopts.brownout.tickIntervalMs = 10000.0;  // ticks stay out of the way
    sopts.breaker.enabled = true;
    sopts.breaker.failureThreshold = 1;  // any failure would trip it
    auto server = InferenceServer::create({tinySpec()}, sopts);
    ASSERT_TRUE(server.hasValue()) << server.error().toString();
    InferenceServer &srv = *server.value();
    srv.brownout().forceLevel(BrownoutLevel::BudgetClamp);

    InferRequest req;
    req.modelId = "tiny";
    req.input = ones(Shape({1, 6, 6}));
    req.priority = Priority::Standard;
    Expected<RequestHandle> handle = srv.submit(req);
    ASSERT_TRUE(handle.hasValue());
    InferResponse resp = handle.value().response.get();

    EXPECT_EQ(resp.outcome, Outcome::Ok);
    EXPECT_EQ(resp.brownoutLevel, BrownoutLevel::BudgetClamp);
    ASSERT_TRUE(resp.result.has_value());
    // T = 4 defaults: Standard gets ceil(0.5 * 4) = 2 samples.
    EXPECT_EQ(resp.result->census.budget, 2u);
    EXPECT_EQ(resp.result->census.requested, 4u);
    EXPECT_LE(resp.effectiveSamples, 2u);
    EXPECT_GE(resp.effectiveSamples, 1u);
    EXPECT_FALSE(resp.result->census.degraded);
    // Quality degradation is never a breaker failure.
    EXPECT_EQ(srv.breaker("tiny")->state(), BreakerState::Closed);
    srv.drain();
    EXPECT_EQ(srv.stats().counter("failed"), 0u);
}

TEST(Brownout, ShedRungDropsBackgroundKeepsPayingClasses)
{
    ServerOptions sopts;
    sopts.workers = 1;
    sopts.brownout = testBrownout();
    sopts.brownout.tickIntervalMs = 10000.0;
    auto server = InferenceServer::create({tinySpec()}, sopts);
    ASSERT_TRUE(server.hasValue());
    InferenceServer &srv = *server.value();
    srv.brownout().forceLevel(BrownoutLevel::Shed);

    InferRequest bg;
    bg.modelId = "tiny";
    bg.input = ones(Shape({1, 6, 6}));
    bg.priority = Priority::Background;
    Expected<RequestHandle> bgHandle = srv.submit(bg);
    ASSERT_TRUE(bgHandle.hasValue());
    InferResponse bgResp = bgHandle.value().response.get();
    EXPECT_EQ(bgResp.outcome, Outcome::Shed);
    EXPECT_EQ(bgResp.brownoutLevel, BrownoutLevel::Shed);
    EXPECT_EQ(bgResp.error.code(), ErrorCode::ResourceExhausted);

    InferRequest fg;
    fg.modelId = "tiny";
    fg.input = ones(Shape({1, 6, 6}));
    fg.priority = Priority::Interactive;
    Expected<RequestHandle> fgHandle = srv.submit(fg);
    ASSERT_TRUE(fgHandle.hasValue());
    InferResponse fgResp = fgHandle.value().response.get();
    EXPECT_EQ(fgResp.outcome, Outcome::Ok);

    srv.drain();
    EXPECT_GE(srv.stats().counter("brownout_shed"), 1u);
    EXPECT_GE(srv.health().brownout.brownoutSheds, 1u);
}

TEST(Brownout, HealthReportsControllerStateAndEffectiveT)
{
    ServerOptions sopts;
    sopts.workers = 1;
    sopts.brownout = testBrownout();
    sopts.brownout.tickIntervalMs = 10000.0;
    auto server = InferenceServer::create({tinySpec()}, sopts);
    ASSERT_TRUE(server.hasValue());
    InferenceServer &srv = *server.value();

    HealthReport normal = srv.health();
    EXPECT_TRUE(normal.brownout.enabled);
    EXPECT_EQ(normal.brownout.level, BrownoutLevel::Normal);
    ASSERT_EQ(normal.models.size(), 1u);
    for (std::size_t p = 0; p < kPriorityLevels; ++p)
        EXPECT_EQ(normal.models[0].effectiveSamples[p], 4u);

    srv.brownout().forceLevel(BrownoutLevel::BudgetClamp);
    HealthReport clamped = srv.health();
    EXPECT_EQ(clamped.brownout.level, BrownoutLevel::BudgetClamp);
    EXPECT_EQ(clamped.models[0].effectiveSamples[0], 3u);  // 0.75 * 4
    EXPECT_EQ(clamped.models[0].effectiveSamples[1], 2u);  // 0.50 * 4
    EXPECT_EQ(clamped.models[0].effectiveSamples[2], 2u);  // floor

    const std::string json = healthJson(clamped);
    EXPECT_NE(json.find("\"brownout\""), std::string::npos);
    EXPECT_NE(json.find("\"level\":\"BudgetClamp\""),
              std::string::npos);
    EXPECT_NE(json.find("\"effective_samples\":[3,2,2]"),
              std::string::npos);
    srv.drain();
}

TEST(Brownout, AdaptiveOverridesMergeAndValidateAtSubmit)
{
    auto server = InferenceServer::create({tinySpec()}, {});
    ASSERT_TRUE(server.hasValue());
    InferenceServer &srv = *server.value();

    // Invalid merged options are an immediate submit error.
    InferRequest bad;
    bad.modelId = "tiny";
    bad.input = ones(Shape({1, 6, 6}));
    bad.mc.minSamples = 10;  // replica default T = 4
    Expected<RequestHandle> rejected = srv.submit(bad);
    ASSERT_FALSE(rejected.hasValue());
    EXPECT_EQ(rejected.error().code(), ErrorCode::InvalidArgument);

    // A loose per-request CI target converges the run early.
    InferRequest adaptive;
    adaptive.modelId = "tiny";
    adaptive.input = ones(Shape({1, 6, 6}));
    adaptive.mc.targetCiWidth = 10.0;
    Expected<RequestHandle> handle = srv.submit(adaptive);
    ASSERT_TRUE(handle.hasValue());
    InferResponse resp = handle.value().response.get();
    ASSERT_EQ(resp.outcome, Outcome::Ok);
    ASSERT_TRUE(resp.result.has_value());
    EXPECT_TRUE(resp.result->census.converged);
    EXPECT_EQ(resp.result->census.convergedAt, 2u);
    EXPECT_EQ(resp.effectiveSamples, 2u);
    // Converged early exits are counted, and never as degradation.
    srv.drain();
    EXPECT_GE(srv.stats().counter("converged"), 1u);
    EXPECT_EQ(srv.stats().counter("degraded"), 0u);
    EXPECT_GE(srv.health().brownout.converged, 1u);
}

TEST(BrownoutConcurrency, TickingLadderUnderMixedLoad)
{
    ServerOptions sopts;
    sopts.workers = 2;
    sopts.queueCapacity = 256;
    sopts.brownout = testBrownout();
    sopts.brownout.tickIntervalMs = 1.0;  // ladder moves mid-load
    sopts.brownout.queueDelayHighMs = 2.0;
    sopts.brownout.queueDelayLowMs = 1.0;
    auto server = InferenceServer::create({tinySpec()}, sopts);
    ASSERT_TRUE(server.hasValue());
    InferenceServer &srv = *server.value();

    constexpr std::size_t kThreads = 3;
    constexpr std::size_t kPerThread = 30;
    std::atomic<std::size_t> accepted{0};
    std::atomic<std::size_t> resolved{0};
    std::vector<std::thread> producers;
    producers.reserve(kThreads);
    for (std::size_t w = 0; w < kThreads; ++w) {
        producers.emplace_back([&, w]() {
            for (std::size_t i = 0; i < kPerThread; ++i) {
                InferRequest req;
                req.modelId = "tiny";
                req.input = ones(Shape({1, 6, 6}));
                req.priority =
                    static_cast<Priority>((w + i) % kPriorityLevels);
                req.deadlineMs = (i % 4 == 0) ? 0.5 : 200.0;
                Expected<RequestHandle> handle =
                    srv.submit(std::move(req));
                if (!handle.hasValue())
                    continue;
                accepted.fetch_add(1);
                handle.value().response.get();
                resolved.fetch_add(1);
            }
        });
    }
    for (std::thread &t : producers)
        t.join();
    srv.drain();
    // Every accepted request resolved exactly once, whatever rung the
    // ladder was on when it dispatched.
    EXPECT_EQ(resolved.load(), accepted.load());
    const StatGroup &stats = srv.stats();
    EXPECT_EQ(stats.counter("ok") + stats.counter("shed") +
                  stats.counter("cancelled") + stats.counter("failed"),
              accepted.load());
    EXPECT_GE(srv.health().brownout.ticks, 1u);
}
