/**
 * @file
 * Fuzz harness for the checkpoint parsers: arbitrary bytes go through
 * the text loader (tryLoadWeights), the binary loader
 * (tryLoadWeightsBinary) and the format-agnostic auditor
 * (tryAuditCheckpoint).  Every one must return a clean Error — never
 * abort, never trip ASan/UBSan, never partially corrupt the network
 * badly enough to crash a later parse.
 *
 * Two build modes (tests/fuzz/CMakeLists.txt):
 *  - libFuzzer: clang -fsanitize=fuzzer,address provides main() and
 *    calls LLVMFuzzerTestOneInput in a coverage-guided loop (the CI
 *    fuzz-smoke job runs this for ~30s).
 *  - standalone (FASTBCNN_FUZZ_STANDALONE): a plain main() replays
 *    every file in the checked-in corpus plus deterministic mutations
 *    of a freshly saved checkpoint, so the harness runs under plain
 *    GCC as a tier-1 regression test and can never rot.
 */

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "models/zoo.hpp"
#include "nn/checkpoint.hpp"
#include "nn/serialize.hpp"
#include "quant/quantize.hpp"

namespace {

/** The target network: small, fixed topology, fixed seed. */
fastbcnn::Network &
fuzzNetwork()
{
    static fastbcnn::Network net = [] {
        fastbcnn::ModelOptions opts;
        opts.widthMultiplier = 0.25;
        opts.init.seed = 7;
        return fastbcnn::buildLenet5(opts);
    }();
    return net;
}

int
runOne(const std::uint8_t *data, std::size_t size)
{
    const std::string bytes(reinterpret_cast<const char *>(data),
                            size);
    // Every parser sees every input — a binary blob hitting the text
    // path (and vice versa) is exactly the confusion a bad deploy
    // produces.  Any Status is fine; crashing is the only failure.
    {
        std::istringstream in(bytes);
        const fastbcnn::Status s =
            fastbcnn::tryLoadWeights(fuzzNetwork(), in);
        (void)s;
    }
    {
        std::istringstream in(bytes);
        const fastbcnn::Status s =
            fastbcnn::tryLoadWeightsBinary(fuzzNetwork(), in);
        (void)s;
    }
    {
        const fastbcnn::Expected<fastbcnn::CheckpointAudit> audit =
            fastbcnn::tryAuditCheckpoint(bytes);
        (void)audit;
    }
    return 0;
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    return runOne(data, size);
}

#ifdef FASTBCNN_FUZZ_STANDALONE

#include <filesystem>
#include <fstream>
#include <iostream>
#include <random>
#include <vector>

namespace {

std::vector<std::string>
collectCorpus(const std::string &dir)
{
    std::vector<std::string> files;
    std::error_code ec;
    for (std::filesystem::directory_iterator it(dir, ec), end;
         it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file(ec))
            files.push_back(it->path().string());
    }
    return files;
}

void
replay(const std::string &text)
{
    runOne(reinterpret_cast<const std::uint8_t *>(text.data()),
           text.size());
}

} // namespace

int
main(int argc, char **argv)
{
    // Replay explicit file arguments, or the baked-in corpus dir.
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i)
        files.push_back(argv[i]);
#ifdef FASTBCNN_FUZZ_CORPUS_DIR
    if (files.empty())
        files = collectCorpus(FASTBCNN_FUZZ_CORPUS_DIR);
#endif

    std::size_t ran = 0;
    for (const std::string &f : files) {
        std::ifstream in(f, std::ios::binary);
        if (!in) {
            std::cerr << "fuzz_checkpoint: cannot read " << f << "\n";
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        replay(ss.str());
        ++ran;
    }

    // Deterministic mutations of real checkpoints in BOTH formats:
    // flip one byte at a stride through the stream so the deep parse
    // + CRC paths get exercised without any corpus at all.
    std::ostringstream savedText;
    std::ostringstream savedBinary;
    const fastbcnn::Status st =
        fastbcnn::trySaveWeights(fuzzNetwork(), savedText);
    const fastbcnn::Status sb =
        fastbcnn::trySaveWeightsBinary(fuzzNetwork(), savedBinary);
    if (!st.isOk() || !sb.isOk()) {
        std::cerr << "fuzz_checkpoint: cannot save seed checkpoint: "
                  << (st.isOk() ? sb : st).toString() << "\n";
        return 2;
    }

    // A quantized binary checkpoint as a third mutation source, so the
    // int8 section parser (kind codes 3/4, scale/shift param blocks)
    // gets the same byte-flip + truncation sweep as the float paths.
    std::ostringstream savedQuant;
    {
        fastbcnn::Network &net = fuzzNetwork();
        std::vector<fastbcnn::Tensor> calib;
        std::mt19937_64 rng(11);
        std::normal_distribution<float> g(0.0f, 1.0f);
        for (int i = 0; i < 2; ++i) {
            fastbcnn::Tensor t(net.inputShape());
            for (float &v : t.data())
                v = g(rng);
            calib.push_back(std::move(t));
        }
        fastbcnn::Expected<fastbcnn::quant::CalibrationProfile>
            profile =
                fastbcnn::quant::tryCalibrateActivations(net, calib);
        if (!profile.hasValue()) {
            std::cerr << "fuzz_checkpoint: cannot calibrate: "
                      << profile.error().toString() << "\n";
            return 2;
        }
        fastbcnn::Expected<fastbcnn::quant::QuantizedNetwork> qnet =
            fastbcnn::quant::QuantizedNetwork::build(net,
                                                     profile.value());
        if (!qnet.hasValue()) {
            std::cerr << "fuzz_checkpoint: cannot quantize: "
                      << qnet.error().toString() << "\n";
            return 2;
        }
        fastbcnn::CheckpointImage image =
            fastbcnn::checkpointImageOf(net);
        image.quantRecords = qnet.value().records();
        const fastbcnn::Status sq =
            fastbcnn::tryEmitBinaryCheckpoint(image, savedQuant);
        if (!sq.isOk()) {
            std::cerr << "fuzz_checkpoint: cannot emit quantized "
                         "checkpoint: " << sq.toString() << "\n";
            return 2;
        }
    }

    for (const std::string &good :
         {savedText.str(), savedBinary.str(), savedQuant.str()}) {
        replay(good);
        for (std::size_t pos = 0; pos < good.size();
             pos += 1 + good.size() / 64) {
            std::string bad = good;
            bad[pos] = static_cast<char>(bad[pos] ^ 0x5a);
            replay(bad);
            replay(bad.substr(0, pos));  // truncation at the same spot
            ++ran;
        }
    }

    std::cout << "fuzz_checkpoint: replayed " << ran
              << " corpus/mutation case(s) without crashing\n";
    return 0;
}

#endif // FASTBCNN_FUZZ_STANDALONE
