/**
 * @file
 * Tests for the skipping machinery: indicator bits, mask pooling,
 * nw-input counting (against brute force), the predictor, predictive
 * inference invariants and Algorithm 1.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "models/zoo.hpp"
#include "nn/activations.hpp"
#include "nn/concat.hpp"
#include "nn/dropout.hpp"
#include "nn/pooling.hpp"
#include "skip/predictive_inference.hpp"
#include "skip/threshold_optimizer.hpp"

using namespace fastbcnn;

namespace {

Network
tinyBcnn(std::uint64_t seed = 3, double drop_rate = 0.3)
{
    Network net("tiny", Shape({1, 8, 8}));
    net.add(std::make_unique<Conv2d>("c1", 1, 3, 3, 1, 1));
    net.add(std::make_unique<ReLU>("r1"));
    net.add(std::make_unique<Dropout>("d1", drop_rate));
    net.add(std::make_unique<MaxPool2d>("p1", 2));
    net.add(std::make_unique<Conv2d>("c2", 3, 4, 3));
    net.add(std::make_unique<ReLU>("r2"));
    net.add(std::make_unique<Dropout>("d2", drop_rate));
    InitOptions init;
    init.seed = seed;
    initializeWeights(net, init);
    return net;
}

Tensor
randomInput(std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::normal_distribution<float> g(0.3f, 1.0f);
    Tensor t(Shape({1, 8, 8}));
    for (float &v : t.data())
        v = g(rng);
    return t;
}

BitVolume
randomMask(std::size_t c, std::size_t h, std::size_t w,
           std::uint64_t seed, double p = 0.3)
{
    std::mt19937_64 rng(seed);
    std::bernoulli_distribution bit(p);
    BitVolume m(c, h, w);
    for (std::size_t i = 0; i < m.size(); ++i)
        m.setFlat(i, bit(rng));
    return m;
}

} // namespace

TEST(Indicator, MatchesWeightSigns)
{
    Conv2d conv("c", 2, 2, 3);
    conv.weights().fill(1.0f);
    conv.weights()(1, 0, 1, 2) = -0.5f;
    conv.weights()(1, 1, 0, 0) = 0.0f;  // w <= 0 counts as negative
    LayerIndicators ind(conv);
    EXPECT_EQ(ind.kernels(), 2u);
    EXPECT_EQ(ind.negativeCount(0), 0u);
    EXPECT_EQ(ind.negativeCount(1), 2u);
    EXPECT_TRUE(ind.kernel(1).get(0, 1, 2));
    EXPECT_TRUE(ind.kernel(1).get(1, 0, 0));
    EXPECT_FALSE(ind.kernel(0).get(0, 0, 0));
    EXPECT_EQ(ind.storageBits(), 2u * 2 * 9);
}

TEST(Indicator, SetCoversAllBlocks)
{
    Network net = tinyBcnn();
    BcnnTopology topo(net);
    IndicatorSet set(topo);
    for (const ConvBlock &b : topo.blocks())
        EXPECT_NO_FATAL_FAILURE(set.of(b.conv));
    EXPECT_GT(set.storageBits(), 0u);
    EXPECT_DEATH(set.of(9999), "no indicators");
}

TEST(MaskPool, AllDroppedWindowOnly)
{
    // 2x2 pool: the pooled bit is 1 only when all four bits are 1.
    BitVolume m(1, 2, 4);
    m.set(0, 0, 0, true);
    m.set(0, 0, 1, true);
    m.set(0, 1, 0, true);
    m.set(0, 1, 1, true);  // window 0 fully dropped
    m.set(0, 0, 2, true);  // window 1 partially dropped
    BitVolume out = maskPool(m, 2, 2, 0);
    ASSERT_EQ(out.width(), 2u);
    EXPECT_TRUE(out.get(0, 0, 0));
    EXPECT_FALSE(out.get(0, 0, 1));
}

TEST(MaskPool, PaddingCountsAsDropped)
{
    // 3x3/s1/p1 over a 1x1 mask: the window is 8 padding positions
    // plus the single real bit, so the pooled bit equals that bit.
    BitVolume m(1, 1, 1);
    BitVolume out0 = maskPool(m, 3, 1, 1);
    EXPECT_FALSE(out0.get(0, 0, 0));
    m.set(0, 0, 0, true);
    BitVolume out1 = maskPool(m, 3, 1, 1);
    EXPECT_TRUE(out1.get(0, 0, 0));
}

TEST(MaskPool, PropertyMatchesBruteForce)
{
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        BitVolume m = randomMask(2, 6, 6, seed, 0.5);
        const std::size_t k = 2 + seed % 2, s = 1 + seed % 2;
        BitVolume out = maskPool(m, k, s, 0);
        for (std::size_t c = 0; c < out.channels(); ++c) {
            for (std::size_t r = 0; r < out.height(); ++r) {
                for (std::size_t col = 0; col < out.width(); ++col) {
                    bool all = true;
                    for (std::size_t i = 0; i < k; ++i) {
                        for (std::size_t j = 0; j < k; ++j)
                            all &= m.get(c, r * s + i, col * s + j);
                    }
                    ASSERT_EQ(out.get(c, r, col), all);
                }
            }
        }
    }
}

TEST(MaskAtNode, ResolvesThroughPoolAndRelu)
{
    Network net = tinyBcnn();
    BcnnTopology topo(net);
    MaskSet masks;
    masks.emplace("d1", randomMask(3, 8, 8, 4, 0.5));

    // c2 consumes p1(d1(...)): its effective input mask must be the
    // mask-pooled d1 mask.
    BitVolume expected = maskPool(masks.at("d1"), 2, 2, 0);
    BitVolume got = effectiveInputMask(topo, net.findNode("c2"), masks);
    EXPECT_TRUE(got == expected);

    // c1 consumes the raw input: all-zero mask.
    BitVolume first = effectiveInputMask(topo, net.findNode("c1"),
                                         masks);
    EXPECT_EQ(first.popcount(), 0u);
}

TEST(MaskAtNode, ConcatJoinsMasks)
{
    Network net("cat", Shape({1, 4, 4}));
    NodeId a = net.add(std::make_unique<Conv2d>("ca", 1, 2, 1),
                       {Network::inputNode});
    NodeId ra = net.add(std::make_unique<ReLU>("ra"), {a});
    NodeId da = net.add(std::make_unique<Dropout>("da", 0.3), {ra});
    NodeId b = net.add(std::make_unique<Conv2d>("cb", 1, 1, 1),
                       {Network::inputNode});
    NodeId rb = net.add(std::make_unique<ReLU>("rb"), {b});
    NodeId db = net.add(std::make_unique<Dropout>("db", 0.3), {rb});
    NodeId cat = net.add(std::make_unique<Concat>("cat", 2), {da, db});
    net.add(std::make_unique<Conv2d>("c2", 3, 1, 1), {cat});
    net.add(std::make_unique<ReLU>("r2"));
    net.add(std::make_unique<Dropout>("d2", 0.3));
    BcnnTopology topo(net);

    MaskSet masks;
    masks.emplace("da", randomMask(2, 4, 4, 1, 0.5));
    masks.emplace("db", randomMask(1, 4, 4, 2, 0.5));
    BitVolume got = effectiveInputMask(topo, net.findNode("c2"), masks);
    ASSERT_EQ(got.channels(), 3u);
    for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t c = 0; c < 4; ++c) {
            EXPECT_EQ(got.get(0, r, c), masks.at("da").get(0, r, c));
            EXPECT_EQ(got.get(1, r, c), masks.at("da").get(1, r, c));
            EXPECT_EQ(got.get(2, r, c), masks.at("db").get(0, r, c));
        }
    }
}

TEST(NwCounter, MatchesBruteForce)
{
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        std::mt19937_64 rng(seed);
        const std::size_t n = 1 + rng() % 3;
        const std::size_t m = 1 + rng() % 3;
        const std::size_t k = 1 + (rng() % 2) * 2;
        const std::size_t pad = rng() % 2;
        Conv2d conv("c", n, m, k, 1, pad);
        std::normal_distribution<float> g(0.0f, 1.0f);
        for (float &w : conv.weights().data())
            w = g(rng);
        const std::size_t h = 5, w = 6;
        BitVolume mask = randomMask(n, h, w, seed * 7 + 1, 0.4);
        LayerIndicators ind(conv);
        CountVolume counts = countDroppedNwInputs(conv, mask, ind);

        const std::size_t out_h = h + 2 * pad - k + 1;
        const std::size_t out_w = w + 2 * pad - k + 1;
        ASSERT_EQ(counts.height(), out_h);
        ASSERT_EQ(counts.width(), out_w);
        for (std::size_t mm = 0; mm < m; ++mm) {
            for (std::size_t r = 0; r < out_h; ++r) {
                for (std::size_t c = 0; c < out_w; ++c) {
                    std::uint32_t expected = 0;
                    for (std::size_t nn = 0; nn < n; ++nn) {
                        for (std::size_t i = 0; i < k; ++i) {
                            for (std::size_t j = 0; j < k; ++j) {
                                const std::ptrdiff_t ir =
                                    static_cast<std::ptrdiff_t>(r + i) -
                                    static_cast<std::ptrdiff_t>(pad);
                                const std::ptrdiff_t ic =
                                    static_cast<std::ptrdiff_t>(c + j) -
                                    static_cast<std::ptrdiff_t>(pad);
                                if (ir < 0 || ic < 0 ||
                                    ir >= static_cast<std::ptrdiff_t>(
                                              h) ||
                                    ic >= static_cast<std::ptrdiff_t>(
                                              w)) {
                                    continue;
                                }
                                if (mask.get(nn, ir, ic) &&
                                    conv.weights()(mm, nn, i, j) <=
                                        0.0f) {
                                    ++expected;
                                }
                            }
                        }
                    }
                    ASSERT_EQ(counts.at(mm, r, c), expected);
                }
            }
        }
    }
}

TEST(Thresholds, SetGetAndMean)
{
    Network net = tinyBcnn();
    BcnnTopology topo(net);
    ThresholdSet set(topo, 5);
    const NodeId c1 = net.findNode("c1");
    EXPECT_EQ(set.of(c1, 0), 5);
    set.set(c1, 1, 9);
    EXPECT_EQ(set.of(c1, 1), 9);
    EXPECT_TRUE(set.has(c1));
    EXPECT_FALSE(set.has(9999));
    EXPECT_GT(set.mean(), 5.0);
    EXPECT_DEATH(set.of(9999, 0), "no thresholds");
}

TEST(Thresholds, TextRoundTrip)
{
    Network net = tinyBcnn();
    BcnnTopology topo(net);
    ThresholdSet set(topo, 3);
    set.set(net.findNode("c2"), 2, 17);
    std::stringstream ss;
    set.saveText(ss);
    ThresholdSet loaded = ThresholdSet::loadText(ss);
    EXPECT_EQ(loaded.of(net.findNode("c2"), 2), 17);
    EXPECT_EQ(loaded.of(net.findNode("c1"), 0), 3);
}

TEST(Predictor, ZeroIndexGatesPrediction)
{
    BitVolume zeros(1, 2, 2);
    zeros.set(0, 0, 0, true);
    CountVolume counts(1, 2, 2);  // all counts zero
    Network net = tinyBcnn();
    BcnnTopology topo(net);
    ThresholdSet thr(topo, 4);
    // Counts (0) < alpha (4) everywhere, but only the zero-index
    // position may be predicted.
    BitVolume pred = predictUnaffected(zeros, counts, thr,
                                       net.findNode("c1"));
    EXPECT_EQ(pred.popcount(), 1u);
    EXPECT_TRUE(pred.get(0, 0, 0));
}

TEST(Predictor, ThresholdSemantics)
{
    BitVolume zeros(1, 1, 3);
    zeros.fill(true);
    CountVolume counts(1, 1, 3);
    counts.at(0, 0, 0) = 0;
    counts.at(0, 0, 1) = 4;
    counts.at(0, 0, 2) = 5;
    Network net = tinyBcnn();
    BcnnTopology topo(net);
    ThresholdSet thr(topo, 5);  // N_d < 5 predicted
    BitVolume pred = predictUnaffected(zeros, counts, thr,
                                       net.findNode("c1"));
    EXPECT_TRUE(pred.get(0, 0, 0));
    EXPECT_TRUE(pred.get(0, 0, 1));
    EXPECT_FALSE(pred.get(0, 0, 2));  // N_d == alpha is not predicted
}

TEST(Predictor, ActualUnaffected)
{
    BitVolume zeros(1, 1, 2);
    zeros.fill(true);
    Tensor out(Shape({1, 1, 2}), {-0.5f, 0.7f});
    BitVolume u = actualUnaffected(zeros, out);
    EXPECT_TRUE(u.get(0, 0, 0));   // still <= 0
    EXPECT_FALSE(u.get(0, 0, 1));  // flipped positive: affected
}

TEST(Predictor, ZeroMapsMatchPreInference)
{
    Network net = tinyBcnn();
    BcnnTopology topo(net);
    Tensor in = randomInput(2);
    ZeroMaps maps = computeZeroMaps(topo, in);
    CaptureHooks capture(nullptr,
                         [](const std::string &, LayerKind k) {
                             return k == LayerKind::ReLU;
                         });
    net.forward(in, &capture);
    for (const ConvBlock &b : topo.blocks()) {
        const Tensor &relu = capture.activation(
            net.layer(b.relu).name());
        const BitVolume &zeros = maps.at(b.conv);
        for (std::size_t i = 0; i < relu.numel(); ++i)
            ASSERT_EQ(zeros.getFlat(i), relu.at(i) == 0.0f);
    }
}

TEST(PredictiveInference, AlphaZeroIsExact)
{
    // The key functional invariant: with every threshold at 0 nothing
    // is predicted, so the prediction-mode forward equals the exact
    // replayed inference bit for bit.
    Network net = tinyBcnn();
    BcnnTopology topo(net);
    IndicatorSet ind(topo);
    Tensor in = randomInput(5);
    ZeroMaps zeros = computeZeroMaps(topo, in);
    ThresholdSet thr(topo, 0);

    SoftwareBrng brng(0.3, 21);
    SamplingHooks sample(brng);
    Tensor exact = net.forward(in, &sample);
    MaskSet masks = sample.takeMasks();

    PredictiveResult res = predictiveForward(topo, ind, zeros, thr, in,
                                             masks);
    EXPECT_EQ(res.predictedNeurons, 0u);
    EXPECT_TRUE(res.output.allClose(exact, 0.0f));
}

TEST(PredictiveInference, HugeAlphaPredictsAllZeroIndexed)
{
    Network net = tinyBcnn();
    BcnnTopology topo(net);
    IndicatorSet ind(topo);
    Tensor in = randomInput(6);
    ZeroMaps zeros = computeZeroMaps(topo, in);
    ThresholdSet thr(topo, 1 << 20);

    SoftwareBrng brng(0.3, 22);
    SamplingHooks sample(brng);
    net.forward(in, &sample);
    MaskSet masks = sample.takeMasks();

    PredictiveResult res = predictiveForward(topo, ind, zeros, thr, in,
                                             masks);
    // First block: predictions equal its zero map exactly.
    const ConvBlock &b0 = topo.blocks()[0];
    EXPECT_TRUE(res.predicted.at(b0.conv) == zeros.at(b0.conv));
}

TEST(PredictiveInference, UpToBlockLimitsScope)
{
    Network net = tinyBcnn();
    BcnnTopology topo(net);
    IndicatorSet ind(topo);
    Tensor in = randomInput(7);
    ZeroMaps zeros = computeZeroMaps(topo, in);
    ThresholdSet thr(topo, 1 << 20);

    SoftwareBrng brng(0.3, 23);
    SamplingHooks sample(brng);
    net.forward(in, &sample);
    MaskSet masks = sample.takeMasks();

    PredictiveOptions opts;
    opts.upToBlock = 0;
    PredictiveResult res = predictiveForward(topo, ind, zeros, thr, in,
                                             masks, opts);
    EXPECT_EQ(res.predicted.count(topo.blocks()[0].conv), 1u);
    EXPECT_EQ(res.predicted.count(topo.blocks()[1].conv), 0u);
}

TEST(PredictiveInference, PredictedNeuronsAreZeroInOutput)
{
    Network net = tinyBcnn();
    BcnnTopology topo(net);
    IndicatorSet ind(topo);
    Tensor in = randomInput(8);
    ZeroMaps zeros = computeZeroMaps(topo, in);
    ThresholdSet thr(topo, 8);

    SoftwareBrng brng(0.3, 24);
    SamplingHooks sample(brng);
    net.forward(in, &sample);
    MaskSet masks = sample.takeMasks();

    PredictiveOptions opts;
    opts.captureConvOutputs = true;
    PredictiveResult res = predictiveForward(topo, ind, zeros, thr, in,
                                             masks, opts);
    for (const ConvBlock &b : topo.blocks()) {
        const Tensor &out = res.convOutputs.at(b.conv);
        const BitVolume &pred = res.predicted.at(b.conv);
        for (std::size_t i = 0; i < out.numel(); ++i) {
            if (pred.getFlat(i)) {
                ASSERT_EQ(out.at(i), 0.0f);
            }
        }
    }
}

TEST(Optimizer, MeetsConfidenceWhenFeasible)
{
    Network net = tinyBcnn();
    BcnnTopology topo(net);
    IndicatorSet ind(topo);
    OptimizerOptions opts;
    opts.samples = 4;
    opts.confidence = 0.6;
    OptimizeResult res = optimizeThresholds(topo, ind,
                                            {randomInput(9)}, opts);
    ASSERT_EQ(res.reports.size(), topo.blocks().size());
    for (const BlockTuneReport &r : res.reports)
        EXPECT_GE(r.achievedConfidence, opts.confidence - 1e-9);
}

TEST(Optimizer, HigherConfidenceNeverIncreasesAlpha)
{
    Network net = tinyBcnn();
    BcnnTopology topo(net);
    IndicatorSet ind(topo);
    OptimizerOptions lo, hi;
    lo.samples = hi.samples = 4;
    lo.confidence = 0.55;
    hi.confidence = 0.95;
    const Tensor in = randomInput(10);
    ThresholdSet a = optimizeThresholds(topo, ind, {in}, lo).thresholds;
    ThresholdSet b = optimizeThresholds(topo, ind, {in}, hi).thresholds;
    // For the first block the histograms are identical in both runs
    // (no upstream cascade), so a stricter target can only keep or
    // lower each alpha.  Deeper blocks see different cascades, so the
    // guarantee is per-block-conditional and not asserted there.
    const ConvBlock &blk = topo.blocks()[0];
    for (std::size_t m = 0; m < a.layer(blk.conv).size(); ++m)
        EXPECT_LE(b.of(blk.conv, m), a.of(blk.conv, m));
}

TEST(Optimizer, InvalidInputsFatal)
{
    Network net = tinyBcnn();
    BcnnTopology topo(net);
    IndicatorSet ind(topo);
    OptimizerOptions opts;
    EXPECT_DEATH(optimizeThresholds(topo, ind, {}, opts),
                 "at least one");
    opts.confidence = 1.5;
    EXPECT_DEATH(optimizeThresholds(topo, ind, {randomInput(1)}, opts),
                 "confidence");
    opts.confidence = 0.68;
    opts.step = 0;
    EXPECT_DEATH(optimizeThresholds(topo, ind, {randomInput(1)}, opts),
                 "step");
}

TEST(Optimizer, EvaluatePredictionReflectsThresholds)
{
    Network net = tinyBcnn();
    BcnnTopology topo(net);
    IndicatorSet ind(topo);
    OptimizerOptions opts;
    opts.samples = 3;
    const std::vector<Tensor> data{randomInput(11)};
    // alpha = 0: nothing predicted, everything matches exactly.
    const auto perfect = evaluatePrediction(topo, ind,
                                            ThresholdSet(topo, 0),
                                            data, opts);
    for (const auto &[id, frac] : perfect)
        EXPECT_DOUBLE_EQ(frac, 1.0);
    // Huge alpha: mispredictions possible, fractions stay in [0, 1].
    const auto loose = evaluatePrediction(topo, ind,
                                          ThresholdSet(topo, 1 << 20),
                                          data, opts);
    for (const auto &[id, frac] : loose) {
        EXPECT_GE(frac, 0.0);
        EXPECT_LE(frac, 1.0);
        EXPECT_LE(frac, perfect.at(id) + 1e-12);
    }
}

TEST(Optimizer, EmptyTuningSetIsRecoverableError)
{
    Network net = tinyBcnn();
    BcnnTopology topo(net);
    IndicatorSet ind(topo);
    // The try-path reports the degenerate tuning set as a validation
    // error instead of dying (the serving path hits this when a
    // calibration shard comes back empty).
    Expected<OptimizeResult> res =
        tryOptimizeThresholds(topo, ind, {}, {});
    ASSERT_FALSE(res.hasValue());
    EXPECT_EQ(res.error().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(res.error().message().find("empty tuning set"),
              std::string::npos);
}

TEST(Optimizer, FullConfidenceIsAcceptedAndConservative)
{
    Network net = tinyBcnn();
    BcnnTopology topo(net);
    IndicatorSet ind(topo);
    OptimizerOptions opts;
    opts.samples = 4;
    opts.confidence = 1.0;  // p_cf = 1.0 is the inclusive upper edge
    Expected<OptimizeResult> res =
        tryOptimizeThresholds(topo, ind, {randomInput(30)}, opts);
    ASSERT_TRUE(res.hasValue()) << res.error().toString();
    // Every kernel must now be perfectly predicted on the tuning set,
    // so each achieved confidence is exactly 1.
    for (const BlockTuneReport &r : res.value().reports)
        EXPECT_DOUBLE_EQ(r.achievedConfidence, 1.0);
    // And a stricter target can never loosen a first-block alpha
    // relative to the default 0.68 run.
    OptimizerOptions dflt;
    dflt.samples = 4;
    ThresholdSet loose = optimizeThresholds(topo, ind,
                                            {randomInput(30)}, dflt)
                             .thresholds;
    const ConvBlock &blk = topo.blocks()[0];
    for (std::size_t m = 0; m < loose.layer(blk.conv).size(); ++m)
        EXPECT_LE(res.value().thresholds.of(blk.conv, m),
                  loose.of(blk.conv, m));
}

TEST(Optimizer, AllPositiveKernelKeepsFullThreshold)
{
    // A kernel with no negative weights has N_d = 0 everywhere:
    // dropping positive-weight inputs can only lower the
    // pre-activation, so a zero output can never flip positive and
    // Algorithm 1 never needs to back its alpha off from Th.
    Network net = tinyBcnn(8);
    auto &c1 = static_cast<Conv2d &>(net.layer(net.findNode("c1")));
    for (float &w : c1.weights().data())
        w = std::abs(w) + 0.01f;
    BcnnTopology topo(net);
    IndicatorSet ind(topo);
    OptimizerOptions opts;
    opts.samples = 4;
    opts.confidence = 0.99;
    OptimizeResult res = optimizeThresholds(
        topo, ind, {randomInput(31), randomInput(32)}, opts);
    const NodeId conv = topo.blocks()[0].conv;
    for (std::size_t m = 0; m < res.thresholds.layer(conv).size(); ++m)
        EXPECT_EQ(res.thresholds.of(conv, m), opts.initialThreshold)
            << "kernel " << m;
}
