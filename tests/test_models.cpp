/**
 * @file
 * Tests for the model zoo builders, weight initialisation and the
 * activation-sparsity calibration.
 */

#include <gtest/gtest.h>

#include "bayes/hooks.hpp"
#include "bayes/topology.hpp"
#include "data/synthetic.hpp"
#include "models/zoo.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"

using namespace fastbcnn;

namespace {

ModelOptions
scaled(double width, std::size_t classes = 10)
{
    ModelOptions opts;
    opts.widthMultiplier = width;
    opts.numClasses = classes;
    return opts;
}

} // namespace

TEST(Zoo, LenetShapes)
{
    Network net = buildLenet5(scaled(1.0));
    EXPECT_EQ(net.name(), "B-LeNet-5");
    EXPECT_TRUE(net.inputShape() == Shape({1, 28, 28}));
    EXPECT_TRUE(net.outputShape() == Shape({10}));
    BcnnTopology topo(net);
    ASSERT_EQ(topo.blocks().size(), 3u);
    // Classic LeNet geometry: 6x28x28, 16x10x10, 120x1x1.
    EXPECT_TRUE(topo.blocks()[0].outShape == Shape({6, 28, 28}));
    EXPECT_TRUE(topo.blocks()[1].outShape == Shape({16, 10, 10}));
    EXPECT_TRUE(topo.blocks()[2].outShape == Shape({120, 1, 1}));
}

TEST(Zoo, Vgg16Shapes)
{
    Network net = buildVgg16(scaled(1.0, 100));
    EXPECT_TRUE(net.inputShape() == Shape({3, 32, 32}));
    EXPECT_TRUE(net.outputShape() == Shape({100}));
    BcnnTopology topo(net);
    ASSERT_EQ(topo.blocks().size(), 13u);  // the 13 conv layers
    EXPECT_TRUE(topo.blocks()[0].outShape == Shape({64, 32, 32}));
    EXPECT_TRUE(topo.blocks()[12].outShape == Shape({512, 2, 2}));
}

TEST(Zoo, GooglenetShapes)
{
    Network net = buildGooglenet(scaled(0.25, 100));
    EXPECT_TRUE(net.outputShape() == Shape({100}));
    BcnnTopology topo(net);
    // Stem (3 convs) + 9 inception modules x 6 convs each.
    EXPECT_EQ(topo.blocks().size(), 3u + 9u * 6u);
}

TEST(Zoo, GooglenetConcatChannels)
{
    Network net = buildGooglenet(scaled(1.0, 100));
    // Inception 3a output: 64 + 128 + 32 + 32 = 256 channels at 16x16.
    const NodeId cat = net.findNode("i3a_concat");
    EXPECT_TRUE(net.shapeOf(cat) == Shape({256, 16, 16}));
    // 5b output: 384 + 384 + 128 + 128 = 1024 at 4x4.
    const NodeId cat5b = net.findNode("i5b_concat");
    EXPECT_TRUE(net.shapeOf(cat5b) == Shape({1024, 4, 4}));
}

TEST(Zoo, WidthScaling)
{
    Network full = buildVgg16(scaled(1.0));
    Network half = buildVgg16(scaled(0.5));
    BcnnTopology tf(full), th(half);
    EXPECT_TRUE(tf.blocks()[0].outShape == Shape({64, 32, 32}));
    EXPECT_TRUE(th.blocks()[0].outShape == Shape({32, 32, 32}));
    EXPECT_GT(full.totalMacs(), half.totalMacs() * 3);
}

TEST(Zoo, WidthNeverScalesToZero)
{
    Network net = buildGooglenet(scaled(0.01));
    BcnnTopology topo(net);
    for (const ConvBlock &b : topo.blocks())
        EXPECT_GE(b.outShape.dim(0), 1u);
}

TEST(Zoo, BuildModelDispatch)
{
    EXPECT_EQ(buildModel(ModelKind::LeNet5).name(), "B-LeNet-5");
    ModelOptions small = scaled(0.25, 100);
    EXPECT_EQ(buildModel(ModelKind::Vgg16, small).name(), "B-VGG16");
    EXPECT_EQ(buildModel(ModelKind::GoogLeNet, small).name(),
              "B-GoogLeNet");
    EXPECT_STREQ(modelKindName(ModelKind::Vgg16), "B-VGG16");
}

TEST(Init, Deterministic)
{
    ModelOptions opts = scaled(1.0);
    opts.init.seed = 77;
    Network a = buildLenet5(opts);
    Network b = buildLenet5(opts);
    const auto &ca = static_cast<const Conv2d &>(
        a.layer(a.findNode("c1_conv")));
    const auto &cb = static_cast<const Conv2d &>(
        b.layer(b.findNode("c1_conv")));
    EXPECT_TRUE(ca.weights().allClose(cb.weights(), 0.0f));
    EXPECT_TRUE(ca.bias().allClose(cb.bias(), 0.0f));
}

TEST(Init, SeedChangesWeights)
{
    ModelOptions a = scaled(1.0), b = scaled(1.0);
    a.init.seed = 1;
    b.init.seed = 2;
    Network na = buildLenet5(a);
    Network nb = buildLenet5(b);
    const auto &ca = static_cast<const Conv2d &>(
        na.layer(na.findNode("c1_conv")));
    const auto &cb = static_cast<const Conv2d &>(
        nb.layer(nb.findNode("c1_conv")));
    EXPECT_FALSE(ca.weights().allClose(cb.weights(), 0.0f));
}

TEST(Init, BiasesAreNegative)
{
    Network net = buildLenet5(scaled(1.0));
    const auto &conv = static_cast<const Conv2d &>(
        net.layer(net.findNode("c1_conv")));
    for (float b : conv.bias().data())
        EXPECT_LT(b, 0.0f);
}

TEST(Sparsity, CalibrationHitsTarget)
{
    Network net = buildLenet5(scaled(1.0));
    std::vector<Tensor> probes{makeMnistLikeImage(1, 1),
                               makeMnistLikeImage(7, 2)};
    SparsityOptions opts;
    opts.targetZeroRatio = 0.6;
    opts.channelJitter = 0.0;
    calibrateSparsity(net, probes, opts);

    // Measure the post-ReLU zero ratio on the probe inputs.
    BcnnTopology topo(net);
    for (const Tensor &probe : probes) {
        CaptureHooks capture(nullptr,
                             [](const std::string &, LayerKind k) {
                                 return k == LayerKind::ReLU;
                             });
        net.forward(probe, &capture);
        for (const ConvBlock &b : topo.blocks()) {
            const Tensor &relu = capture.activation(
                net.layer(b.relu).name());
            if (relu.numel() < 200)
                continue;  // tiny planes have coarse quantiles
            const double zero =
                static_cast<double>(relu.zeroCount()) /
                static_cast<double>(relu.numel());
            EXPECT_NEAR(zero, 0.6, 0.12)
                << net.layer(b.conv).name();
        }
    }
}

TEST(Sparsity, InvalidOptionsFatal)
{
    Network net = buildLenet5(scaled(0.5));
    EXPECT_DEATH(calibrateSparsity(net, {}), "at least one");
    SparsityOptions bad;
    bad.targetZeroRatio = 1.0;
    EXPECT_DEATH(calibrateSparsity(net, {makeMnistLikeImage(0, 0)},
                                   bad),
                 "target zero ratio");
}

TEST(Sparsity, DropRatePlumbing)
{
    ModelOptions opts = scaled(1.0);
    opts.dropRate = 0.42;
    Network net = buildLenet5(opts);
    BcnnTopology topo(net);
    for (const ConvBlock &b : topo.blocks()) {
        const auto &drop = static_cast<const Dropout &>(
            net.layer(b.dropout));
        EXPECT_DOUBLE_EQ(drop.dropRate(), 0.42);
    }
}
