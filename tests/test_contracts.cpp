/**
 * @file
 * Death tests for the error-reporting paths in common/logging.cpp and
 * the contract-check macros in common/check.hpp: panic(), fatal() and
 * every FASTBCNN_CHECK* flavour, including the value printing of the
 * comparison checks and the compile-time gating of FASTBCNN_DCHECK.
 */

#include <gtest/gtest.h>

#include "common/check.hpp"

using namespace fastbcnn;

TEST(PanicDeath, FormatsTagMessageAndAborts)
{
    EXPECT_DEATH(panic("broken invariant %d/%s", 7, "x"),
                 "panic: broken invariant 7/x");
}

TEST(FatalDeath, ExitsWithStatusOne)
{
    EXPECT_EXIT(fatal("bad configuration: %s", "threads"),
                ::testing::ExitedWithCode(1),
                "fatal: bad configuration: threads");
}

TEST(WarnInform, DoNotTerminate)
{
    warn("modelled imprecisely: %d", 1);
    inform("status %d", 2);
    informVerbose("detail %d", 3);
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Verbose);
    informVerbose("visible detail");
    setLogLevel(before);
    SUCCEED();
}

TEST(CheckDeath, PassingConditionIsSilent)
{
    FASTBCNN_CHECK(1 + 1 == 2, "arithmetic works");
    SUCCEED();
}

TEST(CheckDeath, FailingConditionPanicsWithLocation)
{
    EXPECT_DEATH(FASTBCNN_CHECK(false, "the message"),
                 "check 'false' failed at .*test_contracts\\.cpp:"
                 ".*the message");
}

TEST(CheckDeath, ConditionTextIsStringified)
{
    const int limit = 3;
    EXPECT_DEATH(FASTBCNN_CHECK(limit > 5, "limit too small"),
                 "check 'limit > 5' failed");
}

TEST(CheckOpDeath, EqPrintsBothValues)
{
    const std::size_t got = 3, want = 4;
    EXPECT_DEATH(FASTBCNN_CHECK_EQ(got, want),
                 "got == want \\(with got = 3, want = 4\\)");
}

TEST(CheckOpDeath, LtPrintsBothValues)
{
    const int idx = 9, size = 4;
    EXPECT_DEATH(FASTBCNN_CHECK_LT(idx, size),
                 "idx < size \\(with idx = 9, size = 4\\)");
}

TEST(CheckOpDeath, LePassesOnEqualFailsAbove)
{
    FASTBCNN_CHECK_LE(4, 4);
    EXPECT_DEATH(FASTBCNN_CHECK_LE(5, 4), "with 5 = 5, 4 = 4");
}

TEST(CheckOpDeath, RemainingComparisons)
{
    FASTBCNN_CHECK_NE(1, 2);
    FASTBCNN_CHECK_GT(2, 1);
    FASTBCNN_CHECK_GE(2, 2);
    EXPECT_DEATH(FASTBCNN_CHECK_NE(7, 7), "7 != 7");
    EXPECT_DEATH(FASTBCNN_CHECK_GT(1, 2), "1 > 2");
    EXPECT_DEATH(FASTBCNN_CHECK_GE(1, 2), "1 >= 2");
}

TEST(CheckOpDeath, OperandsEvaluatedExactlyOnce)
{
    int calls = 0;
    auto counted = [&calls]() {
        ++calls;
        return 1;
    };
    FASTBCNN_CHECK_EQ(counted(), 1);
    EXPECT_EQ(calls, 1);
}

#if FASTBCNN_ENABLE_DCHECKS

TEST(DcheckDeath, ActiveWhenEnabled)
{
    EXPECT_DEATH(FASTBCNN_DCHECK(false, "debug contract"),
                 "debug contract");
    EXPECT_DEATH(FASTBCNN_DCHECK_EQ(1, 2), "1 == 2");
    EXPECT_DEATH(FASTBCNN_DCHECK_LT(2, 1), "2 < 1");
    EXPECT_DEATH(FASTBCNN_DCHECK_LE(2, 1), "2 <= 1");
}

#else

TEST(DcheckDeath, CompiledOutWhenDisabled)
{
    // Conditions must not be evaluated at all in a no-DCHECK build.
    int evaluations = 0;
    auto probe = [&evaluations]() {
        ++evaluations;
        return false;
    };
    FASTBCNN_DCHECK(probe(), "never evaluated");
    FASTBCNN_DCHECK_EQ(evaluations, 99);
    EXPECT_EQ(evaluations, 0);
}

#endif // FASTBCNN_ENABLE_DCHECKS
