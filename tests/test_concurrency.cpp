/**
 * @file
 * Concurrency tests: the parallel MC-dropout runner's determinism
 * guarantee (bit-identical results for any thread count) and the
 * thread safety of the shared logging / stats sinks.  This file is the
 * designated ThreadSanitizer workload — the `tsan` CMake preset runs
 * exactly these suites — so every test here must exercise real
 * cross-thread sharing, not mocked concurrency.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "bayes/mc_runner.hpp"
#include "common/stats.hpp"
#include "models/zoo.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"

using namespace fastbcnn;

namespace {

Network
tinyBcnn(double drop_rate = 0.3)
{
    Network net("tiny", Shape({1, 6, 6}));
    net.add(std::make_unique<Conv2d>("c1", 1, 2, 3, 1, 1));
    net.add(std::make_unique<ReLU>("r1"));
    net.add(std::make_unique<Dropout>("d1", drop_rate));
    net.add(std::make_unique<Conv2d>("c2", 2, 3, 3));
    net.add(std::make_unique<ReLU>("r2"));
    net.add(std::make_unique<Dropout>("d2", drop_rate));
    InitOptions init;
    init.seed = 3;
    init.biasShift = 0.0;
    initializeWeights(net, init);
    return net;
}

Tensor
ones(const Shape &s)
{
    Tensor t(s);
    t.fill(1.0f);
    return t;
}

/** Exact (tolerance-zero) equality of two MC results, summary included. */
void
expectBitIdentical(const McResult &a, const McResult &b)
{
    ASSERT_EQ(a.outputs.size(), b.outputs.size());
    for (std::size_t t = 0; t < a.outputs.size(); ++t)
        EXPECT_TRUE(a.outputs[t].allClose(b.outputs[t], 0.0f));
    ASSERT_EQ(a.masks.size(), b.masks.size());
    for (std::size_t t = 0; t < a.masks.size(); ++t) {
        ASSERT_EQ(a.masks[t].size(), b.masks[t].size());
        for (const auto &[layer, mask] : a.masks[t])
            EXPECT_TRUE(b.masks[t].at(layer) == mask);
    }
    EXPECT_TRUE(a.summary.mean.allClose(b.summary.mean, 0.0f));
    EXPECT_TRUE(a.summary.variance.allClose(b.summary.variance, 0.0f));
    EXPECT_EQ(a.summary.predictiveEntropy, b.summary.predictiveEntropy);
    EXPECT_EQ(a.summary.expectedEntropy, b.summary.expectedEntropy);
    EXPECT_EQ(a.summary.mutualInformation, b.summary.mutualInformation);
    EXPECT_EQ(a.summary.argmax, b.summary.argmax);
    EXPECT_EQ(a.summary.maxProbability, b.summary.maxProbability);
}

} // namespace

TEST(ParallelMc, BitIdenticalToSerial)
{
    const Network net = tinyBcnn();
    const Tensor in = ones(Shape({1, 6, 6}));
    McOptions opts;
    opts.samples = 8;
    opts.seed = 42;

    opts.threads = 1;
    const McResult serial = runMcDropout(net, in, opts);
    opts.threads = 4;
    const McResult parallel = runMcDropout(net, in, opts);

    expectBitIdentical(serial, parallel);
}

TEST(ParallelMc, ThreadCountSweepIsDeterministic)
{
    const Network net = tinyBcnn(0.5);
    const Tensor in = ones(Shape({1, 6, 6}));
    McOptions opts;
    opts.samples = 6;
    opts.seed = 7;
    opts.brng = BrngKind::Software;

    opts.threads = 1;
    const McResult reference = runMcDropout(net, in, opts);
    for (std::size_t threads : {std::size_t{0}, std::size_t{2},
                                std::size_t{3}, std::size_t{8}}) {
        opts.threads = threads;
        expectBitIdentical(reference, runMcDropout(net, in, opts));
    }
}

TEST(ParallelMc, MoreThreadsThanSamples)
{
    const Network net = tinyBcnn();
    const Tensor in = ones(Shape({1, 6, 6}));
    McOptions opts;
    opts.samples = 2;
    opts.threads = 16;
    const McResult res = runMcDropout(net, in, opts);
    EXPECT_EQ(res.outputs.size(), 2u);
    EXPECT_EQ(res.masks.size(), 2u);
}

/**
 * Regression for the BRNG seed derivation: the old code truncated the
 * 64-bit mix with a bare cast, so seeds differing only in their high
 * word (s and s + 2^32) collided, and seed 0 could slip through the
 * Lfsr32 zero fallback.  Distinct seeds must now yield distinct mask
 * streams for both generator kinds.
 */
TEST(ParallelMc, DistinctSeedsYieldDistinctMaskStreams)
{
    const Shape shape({1, 16, 16});
    const std::vector<std::uint64_t> seeds{
        0u, 1u, 2u, 1u + (1ull << 32), 2u + (7ull << 32)};
    for (BrngKind kind : {BrngKind::Lfsr, BrngKind::Software}) {
        std::vector<BitVolume> streams;
        for (std::uint64_t seed : seeds) {
            auto brng = makeBrng(kind, 0.5, seed);
            SamplingHooks hooks(*brng, true);
            streams.push_back(*hooks.dropoutMask("d", shape));
        }
        for (std::size_t i = 0; i < streams.size(); ++i) {
            for (std::size_t j = i + 1; j < streams.size(); ++j) {
                EXPECT_FALSE(streams[i] == streams[j])
                    << layerKindName(LayerKind::Dropout) << " masks for "
                    << "seeds " << seeds[i] << " and " << seeds[j]
                    << " collide (kind " << static_cast<int>(kind)
                    << ")";
            }
        }
    }
}

/**
 * Regression for the deadline/quorum interaction: a quorum miss caused
 * by the deadline stopping launches must surface as DeadlineExceeded
 * (the serving layer sheds/retries on it), never QuorumNotMet (which
 * means samples actually died), and the outcome must not depend on the
 * thread count.  A pre-expired deadline pins the schedule: only sample
 * 0 ever launches, whatever the pool size.
 */
TEST(ParallelMc, DeadlineStarvedQuorumIsDeadlineExceededAtAnyThreadCount)
{
    const Network net = tinyBcnn();
    const Tensor in = ones(Shape({1, 6, 6}));
    McOptions opts;
    opts.samples = 6;
    opts.seed = 11;
    opts.deadlineMs = 1e-9;  // expired before any launch decision
    opts.quorum = 2;         // sample 0 alone can never satisfy it

    for (std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        opts.threads = threads;
        Expected<McResult> run = tryRunMcDropout(net, in, opts);
        ASSERT_FALSE(run.hasValue()) << "threads = " << threads;
        EXPECT_EQ(run.error().code(), ErrorCode::DeadlineExceeded)
            << "threads = " << threads << ": "
            << run.error().message();
    }

    // With the quorum satisfiable by the always-launched sample 0, the
    // same starved run succeeds degraded — and bit-identically at
    // every thread count, because the survivor set is pinned to {0}.
    opts.quorum = 1;
    opts.threads = 1;
    Expected<McResult> reference = tryRunMcDropout(net, in, opts);
    ASSERT_TRUE(reference.hasValue());
    EXPECT_EQ(reference.value().sampleIndices,
              std::vector<std::size_t>{0});
    EXPECT_TRUE(reference.value().degraded());
    for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
        opts.threads = threads;
        Expected<McResult> run = tryRunMcDropout(net, in, opts);
        ASSERT_TRUE(run.hasValue()) << "threads = " << threads;
        EXPECT_EQ(run.value().sampleIndices,
                  std::vector<std::size_t>{0});
        expectBitIdentical(reference.value(), run.value());
    }
}

TEST(ConcurrencyStress, IndependentRunsOnSharedNetwork)
{
    const Network net = tinyBcnn();
    const Tensor in = ones(Shape({1, 6, 6}));
    McOptions opts;
    opts.samples = 4;
    opts.seed = 11;

    const McResult reference = runMcDropout(net, in, opts);

    // The Network is shared read-only across callers; every thread
    // must reproduce the reference bit-for-bit.
    constexpr std::size_t callers = 4;
    std::vector<McResult> results(callers);
    std::vector<std::thread> pool;
    pool.reserve(callers);
    for (std::size_t i = 0; i < callers; ++i) {
        pool.emplace_back([&, i]() {
            results[i] = runMcDropout(net, in, opts);
        });
    }
    for (std::thread &th : pool)
        th.join();
    for (const McResult &res : results)
        expectBitIdentical(reference, res);
}

TEST(ConcurrencyStress, NestedParallelRunners)
{
    // Outer concurrency (two callers) with inner worker pools: the
    // worst realistic contention shape for the shared sinks.
    const Network net = tinyBcnn();
    const Tensor in = ones(Shape({1, 6, 6}));
    McOptions opts;
    opts.samples = 6;
    opts.threads = 2;
    opts.recordMasks = false;

    McResult a, b;
    std::thread ta([&]() { a = runMcDropout(net, in, opts); });
    std::thread tb([&]() { b = runMcDropout(net, in, opts); });
    ta.join();
    tb.join();
    expectBitIdentical(a, b);
}

TEST(ThreadSafeLogging, ConcurrentReportsAndLevelChanges)
{
    const LogLevel before = logLevel();
    constexpr int threads = 4;
    constexpr int iterations = 64;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int w = 0; w < threads; ++w) {
        pool.emplace_back([w]() {
            for (int i = 0; i < iterations; ++i) {
                // Mostly-suppressed messages keep the stress loop from
                // spamming stderr while still crossing the mutex.
                setLogLevel(w % 2 == 0 ? LogLevel::Quiet
                                       : LogLevel::Normal);
                inform("worker %d iteration %d", w, i);
                informVerbose("worker %d verbose %d", w, i);
                (void)logLevel();
            }
        });
    }
    for (std::thread &th : pool)
        th.join();
    setLogLevel(before);
    SUCCEED();
}

TEST(ThreadSafeStats, ConcurrentCountersAndGauges)
{
    StatGroup group("mc.workers");
    constexpr std::size_t threads = 4;
    constexpr std::uint64_t perThread = 512;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) {
        pool.emplace_back([&group, w]() {
            for (std::uint64_t i = 0; i < perThread; ++i) {
                group.add("samples");
                group.add("bits", 8);
                group.set("last_worker", static_cast<double>(w));
            }
        });
    }
    for (std::thread &th : pool)
        th.join();
    EXPECT_EQ(group.counter("samples"), threads * perThread);
    EXPECT_EQ(group.counter("bits"), threads * perThread * 8);
    EXPECT_LT(group.gauge("last_worker"), static_cast<double>(threads));
}

TEST(ThreadSafeStats, ConcurrentMergeAndDump)
{
    StatGroup sink("sink");
    constexpr std::size_t threads = 4;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) {
        pool.emplace_back([&sink]() {
            StatGroup local("local");
            for (int i = 0; i < 64; ++i)
                local.add("events");
            sink.merge(local);
            // Reads race benignly against other merges; the lock makes
            // them well-defined.
            std::ostringstream os;
            sink.dump(os);
            EXPECT_FALSE(os.str().empty());
        });
    }
    for (std::thread &th : pool)
        th.join();
    EXPECT_EQ(sink.counter("events"), threads * 64u);
}
