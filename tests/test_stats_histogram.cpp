/**
 * @file
 * LatencyHistogram unit tests: bucketing, quantile estimation and its
 * clamping guarantees, merge/reset/copy semantics, and a
 * ThreadSafeHistogram suite (run under the tsan preset) hammering one
 * histogram from many recorder threads.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "common/stats.hpp"

using namespace fastbcnn;

TEST(LatencyHistogram, EmptyIsAllZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.totalMs(), 0.0);
    EXPECT_EQ(h.meanMs(), 0.0);
    EXPECT_EQ(h.minMs(), 0.0);
    EXPECT_EQ(h.maxMs(), 0.0);
    EXPECT_EQ(h.p50Ms(), 0.0);
    EXPECT_EQ(h.p99Ms(), 0.0);
}

TEST(LatencyHistogram, SingleSampleIsExactEverywhere)
{
    // The [min, max] clamp collapses every quantile of a one-sample
    // histogram onto the sample itself, despite log-bucket coarseness.
    LatencyHistogram h;
    h.record(3.7);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.totalMs(), 3.7);
    EXPECT_DOUBLE_EQ(h.meanMs(), 3.7);
    EXPECT_DOUBLE_EQ(h.minMs(), 3.7);
    EXPECT_DOUBLE_EQ(h.maxMs(), 3.7);
    EXPECT_DOUBLE_EQ(h.p50Ms(), 3.7);
    EXPECT_DOUBLE_EQ(h.p95Ms(), 3.7);
    EXPECT_DOUBLE_EQ(h.p99Ms(), 3.7);
    EXPECT_DOUBLE_EQ(h.quantileMs(0.0), 3.7);
    EXPECT_DOUBLE_EQ(h.quantileMs(1.0), 3.7);
}

TEST(LatencyHistogram, QuantilesAreOrderedAndBucketAccurate)
{
    LatencyHistogram h;
    // 100 samples spread over three decades: 1, 2, ..., 100 ms.
    for (int i = 1; i <= 100; ++i)
        h.record(static_cast<double>(i));
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.minMs(), 1.0);
    EXPECT_DOUBLE_EQ(h.maxMs(), 100.0);
    EXPECT_DOUBLE_EQ(h.meanMs(), 50.5);

    const double p50 = h.p50Ms();
    const double p95 = h.p95Ms();
    const double p99 = h.p99Ms();
    EXPECT_LE(h.quantileMs(0.0), p50);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_LE(p99, h.maxMs());
    // Log buckets are exact to within a factor of two: the true p50 is
    // 50 ms, so the estimate must land in [25, 100].
    EXPECT_GE(p50, 25.0);
    EXPECT_LE(p50, 100.0);
    // True p99 is 99 ms; estimate within its bucket [64, 128) clamped
    // to max.
    EXPECT_GE(p99, 49.5);
    EXPECT_LE(p99, 100.0);
}

TEST(LatencyHistogram, SubMicrosecondAndZeroSamplesLandInBucketZero)
{
    LatencyHistogram h;
    h.record(0.0);
    h.record(0.0005);   // 0.5 us
    h.record(-1.0);     // negative clamps to zero
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.minMs(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxMs(), 0.0005);
    EXPECT_LE(h.p99Ms(), 0.0005);
}

TEST(LatencyHistogram, MergeMatchesRecordingIntoOne)
{
    LatencyHistogram a, b, combined;
    for (int i = 0; i < 50; ++i) {
        const double fast = 0.1 * (i + 1);
        const double slow = 10.0 * (i + 1);
        a.record(fast);
        b.record(slow);
        combined.record(fast);
        combined.record(slow);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_DOUBLE_EQ(a.totalMs(), combined.totalMs());
    EXPECT_DOUBLE_EQ(a.minMs(), combined.minMs());
    EXPECT_DOUBLE_EQ(a.maxMs(), combined.maxMs());
    EXPECT_DOUBLE_EQ(a.p50Ms(), combined.p50Ms());
    EXPECT_DOUBLE_EQ(a.p95Ms(), combined.p95Ms());
    EXPECT_DOUBLE_EQ(a.p99Ms(), combined.p99Ms());

    // Merging an empty histogram is a no-op.
    LatencyHistogram empty;
    const double before = a.p95Ms();
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.p95Ms(), before);
}

TEST(LatencyHistogram, CopyTakesASnapshot)
{
    LatencyHistogram h;
    h.record(5.0);
    LatencyHistogram snap = h;
    h.record(500.0);
    EXPECT_EQ(snap.count(), 1u);
    EXPECT_DOUBLE_EQ(snap.maxMs(), 5.0);
    EXPECT_EQ(h.count(), 2u);

    snap = h;  // copy-assignment re-snapshots
    EXPECT_EQ(snap.count(), 2u);
    EXPECT_DOUBLE_EQ(snap.maxMs(), 500.0);
}

TEST(LatencyHistogram, ResetForgetsEverything)
{
    LatencyHistogram h;
    h.record(1.0);
    h.record(2.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.totalMs(), 0.0);
    EXPECT_EQ(h.p99Ms(), 0.0);
    h.record(7.0);  // usable after reset
    EXPECT_DOUBLE_EQ(h.p50Ms(), 7.0);
}

TEST(LatencyHistogram, DumpEmitsAllFields)
{
    LatencyHistogram h;
    h.record(1.5);
    h.record(2.5);
    std::ostringstream os;
    h.dump(os, "serve.ok");
    const std::string out = os.str();
    EXPECT_NE(out.find("serve.ok.count = 2"), std::string::npos);
    EXPECT_NE(out.find("serve.ok.mean_ms"), std::string::npos);
    EXPECT_NE(out.find("serve.ok.p50_ms"), std::string::npos);
    EXPECT_NE(out.find("serve.ok.p95_ms"), std::string::npos);
    EXPECT_NE(out.find("serve.ok.p99_ms"), std::string::npos);
    EXPECT_NE(out.find("serve.ok.max_ms"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ThreadSafeHistogram — runs under the tsan preset ('ThreadSafe'
// matches its test filter).

TEST(ThreadSafeHistogram, ConcurrentRecordersLoseNothing)
{
    LatencyHistogram h;
    constexpr std::size_t recorders = 8;
    constexpr std::size_t perRecorder = 2000;
    std::vector<std::thread> pool;
    pool.reserve(recorders);
    for (std::size_t r = 0; r < recorders; ++r) {
        pool.emplace_back([&h, r]() {
            for (std::size_t i = 0; i < perRecorder; ++i)
                h.record(static_cast<double>(r + 1));
        });
    }
    for (std::thread &t : pool)
        t.join();
    EXPECT_EQ(h.count(), recorders * perRecorder);
    EXPECT_DOUBLE_EQ(h.minMs(), 1.0);
    EXPECT_DOUBLE_EQ(h.maxMs(), static_cast<double>(recorders));
}

TEST(ThreadSafeHistogram, ConcurrentMergeAndReadStaysConsistent)
{
    // Per-worker local histograms merged into a shared sink while a
    // reader polls quantiles: the serving layer's aggregation pattern.
    LatencyHistogram sink;
    constexpr std::size_t workers = 4;
    std::vector<std::thread> pool;
    pool.reserve(workers + 1);
    for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&sink, w]() {
            for (int round = 0; round < 50; ++round) {
                LatencyHistogram local;
                for (int i = 0; i < 20; ++i)
                    local.record(static_cast<double>(w * 10 + i + 1));
                sink.merge(local);
            }
        });
    }
    pool.emplace_back([&sink]() {
        for (int i = 0; i < 200; ++i) {
            const LatencyHistogram snap = sink;
            EXPECT_LE(snap.p50Ms(), snap.maxMs());
            EXPECT_GE(snap.p50Ms(), snap.minMs());
        }
    });
    for (std::thread &t : pool)
        t.join();
    EXPECT_EQ(sink.count(), workers * 50u * 20u);
}
