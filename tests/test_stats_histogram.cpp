/**
 * @file
 * LatencyHistogram unit tests: bucketing, quantile estimation and its
 * clamping guarantees, merge/reset/copy semantics, and a
 * ThreadSafeHistogram suite (run under the tsan preset) hammering one
 * histogram from many recorder threads.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "common/stats.hpp"

using namespace fastbcnn;

TEST(LatencyHistogram, EmptyIsAllZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.totalMs(), 0.0);
    EXPECT_EQ(h.meanMs(), 0.0);
    EXPECT_EQ(h.minMs(), 0.0);
    EXPECT_EQ(h.maxMs(), 0.0);
    EXPECT_EQ(h.p50Ms(), 0.0);
    EXPECT_EQ(h.p99Ms(), 0.0);
}

TEST(LatencyHistogram, SingleSampleIsExactEverywhere)
{
    // The [min, max] clamp collapses every quantile of a one-sample
    // histogram onto the sample itself, despite log-bucket coarseness.
    LatencyHistogram h;
    h.record(3.7);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.totalMs(), 3.7);
    EXPECT_DOUBLE_EQ(h.meanMs(), 3.7);
    EXPECT_DOUBLE_EQ(h.minMs(), 3.7);
    EXPECT_DOUBLE_EQ(h.maxMs(), 3.7);
    EXPECT_DOUBLE_EQ(h.p50Ms(), 3.7);
    EXPECT_DOUBLE_EQ(h.p95Ms(), 3.7);
    EXPECT_DOUBLE_EQ(h.p99Ms(), 3.7);
    EXPECT_DOUBLE_EQ(h.quantileMs(0.0), 3.7);
    EXPECT_DOUBLE_EQ(h.quantileMs(1.0), 3.7);
}

TEST(LatencyHistogram, QuantilesAreOrderedAndBucketAccurate)
{
    LatencyHistogram h;
    // 100 samples spread over three decades: 1, 2, ..., 100 ms.
    for (int i = 1; i <= 100; ++i)
        h.record(static_cast<double>(i));
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.minMs(), 1.0);
    EXPECT_DOUBLE_EQ(h.maxMs(), 100.0);
    EXPECT_DOUBLE_EQ(h.meanMs(), 50.5);

    const double p50 = h.p50Ms();
    const double p95 = h.p95Ms();
    const double p99 = h.p99Ms();
    EXPECT_LE(h.quantileMs(0.0), p50);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_LE(p99, h.maxMs());
    // Log buckets are exact to within a factor of two: the true p50 is
    // 50 ms, so the estimate must land in [25, 100].
    EXPECT_GE(p50, 25.0);
    EXPECT_LE(p50, 100.0);
    // True p99 is 99 ms; estimate within its bucket [64, 128) clamped
    // to max.
    EXPECT_GE(p99, 49.5);
    EXPECT_LE(p99, 100.0);
}

TEST(LatencyHistogram, SubMicrosecondAndZeroSamplesLandInBucketZero)
{
    LatencyHistogram h;
    h.record(0.0);
    h.record(0.0005);   // 0.5 us
    h.record(-1.0);     // negative clamps to zero
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.minMs(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxMs(), 0.0005);
    EXPECT_LE(h.p99Ms(), 0.0005);
}

TEST(LatencyHistogram, MergeMatchesRecordingIntoOne)
{
    LatencyHistogram a, b, combined;
    for (int i = 0; i < 50; ++i) {
        const double fast = 0.1 * (i + 1);
        const double slow = 10.0 * (i + 1);
        a.record(fast);
        b.record(slow);
        combined.record(fast);
        combined.record(slow);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_DOUBLE_EQ(a.totalMs(), combined.totalMs());
    EXPECT_DOUBLE_EQ(a.minMs(), combined.minMs());
    EXPECT_DOUBLE_EQ(a.maxMs(), combined.maxMs());
    EXPECT_DOUBLE_EQ(a.p50Ms(), combined.p50Ms());
    EXPECT_DOUBLE_EQ(a.p95Ms(), combined.p95Ms());
    EXPECT_DOUBLE_EQ(a.p99Ms(), combined.p99Ms());

    // Merging an empty histogram is a no-op.
    LatencyHistogram empty;
    const double before = a.p95Ms();
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.p95Ms(), before);
}

TEST(LatencyHistogram, CopyTakesASnapshot)
{
    LatencyHistogram h;
    h.record(5.0);
    LatencyHistogram snap = h;
    h.record(500.0);
    EXPECT_EQ(snap.count(), 1u);
    EXPECT_DOUBLE_EQ(snap.maxMs(), 5.0);
    EXPECT_EQ(h.count(), 2u);

    snap = h;  // copy-assignment re-snapshots
    EXPECT_EQ(snap.count(), 2u);
    EXPECT_DOUBLE_EQ(snap.maxMs(), 500.0);
}

TEST(LatencyHistogram, ResetForgetsEverything)
{
    LatencyHistogram h;
    h.record(1.0);
    h.record(2.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.totalMs(), 0.0);
    EXPECT_EQ(h.p99Ms(), 0.0);
    h.record(7.0);  // usable after reset
    EXPECT_DOUBLE_EQ(h.p50Ms(), 7.0);
}

TEST(LatencyHistogram, DumpEmitsAllFields)
{
    LatencyHistogram h;
    h.record(1.5);
    h.record(2.5);
    std::ostringstream os;
    h.dump(os, "serve.ok");
    const std::string out = os.str();
    EXPECT_NE(out.find("serve.ok.count = 2"), std::string::npos);
    EXPECT_NE(out.find("serve.ok.mean_ms"), std::string::npos);
    EXPECT_NE(out.find("serve.ok.p50_ms"), std::string::npos);
    EXPECT_NE(out.find("serve.ok.p95_ms"), std::string::npos);
    EXPECT_NE(out.find("serve.ok.p99_ms"), std::string::npos);
    EXPECT_NE(out.find("serve.ok.max_ms"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ThreadSafeHistogram — runs under the tsan preset ('ThreadSafe'
// matches its test filter).

TEST(ThreadSafeHistogram, ConcurrentRecordersLoseNothing)
{
    LatencyHistogram h;
    constexpr std::size_t recorders = 8;
    constexpr std::size_t perRecorder = 2000;
    std::vector<std::thread> pool;
    pool.reserve(recorders);
    for (std::size_t r = 0; r < recorders; ++r) {
        pool.emplace_back([&h, r]() {
            for (std::size_t i = 0; i < perRecorder; ++i)
                h.record(static_cast<double>(r + 1));
        });
    }
    for (std::thread &t : pool)
        t.join();
    EXPECT_EQ(h.count(), recorders * perRecorder);
    EXPECT_DOUBLE_EQ(h.minMs(), 1.0);
    EXPECT_DOUBLE_EQ(h.maxMs(), static_cast<double>(recorders));
}

TEST(ThreadSafeHistogram, ConcurrentMergeAndReadStaysConsistent)
{
    // Per-worker local histograms merged into a shared sink while a
    // reader polls quantiles: the serving layer's aggregation pattern.
    LatencyHistogram sink;
    constexpr std::size_t workers = 4;
    std::vector<std::thread> pool;
    pool.reserve(workers + 1);
    for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&sink, w]() {
            for (int round = 0; round < 50; ++round) {
                LatencyHistogram local;
                for (int i = 0; i < 20; ++i)
                    local.record(static_cast<double>(w * 10 + i + 1));
                sink.merge(local);
            }
        });
    }
    pool.emplace_back([&sink]() {
        for (int i = 0; i < 200; ++i) {
            const LatencyHistogram snap = sink;
            EXPECT_LE(snap.p50Ms(), snap.maxMs());
            EXPECT_GE(snap.p50Ms(), snap.minMs());
        }
    });
    for (std::thread &t : pool)
        t.join();
    EXPECT_EQ(sink.count(), workers * 50u * 20u);
}

// ---------------------------------------------------------------------
// Wilson bounds and the guard layer's RateEstimator.
// ---------------------------------------------------------------------

TEST(WilsonBounds, BracketTheEmpiricalRate)
{
    for (std::uint64_t trials : {1u, 7u, 50u, 1000u}) {
        for (std::uint64_t hits = 0; hits <= trials;
             hits += trials / 4 + 1) {
            const double p =
                static_cast<double>(hits) / static_cast<double>(trials);
            const double lo = wilsonLowerBound(hits, trials, 1.96);
            const double hi = wilsonUpperBound(hits, trials, 1.96);
            EXPECT_GE(lo, 0.0);
            EXPECT_LE(hi, 1.0);
            EXPECT_LE(lo, p + 1e-12)
                << hits << '/' << trials;
            EXPECT_GE(hi, p - 1e-12)
                << hits << '/' << trials;
        }
    }
}

TEST(WilsonBounds, NoTrialsIsMaximallyUncertain)
{
    // Zero evidence: the interval must span [0, 1] so the guard never
    // trips (or recovers) off an unaudited kernel.
    EXPECT_DOUBLE_EQ(wilsonLowerBound(0, 0, 1.96), 0.0);
    EXPECT_DOUBLE_EQ(wilsonUpperBound(0, 0, 1.96), 1.0);
}

TEST(WilsonBounds, TightenWithMoreEvidence)
{
    // Same empirical rate, 10x the trials: the interval shrinks.
    const double lo1 = wilsonLowerBound(5, 50, 1.96);
    const double hi1 = wilsonUpperBound(5, 50, 1.96);
    const double lo2 = wilsonLowerBound(50, 500, 1.96);
    const double hi2 = wilsonUpperBound(50, 500, 1.96);
    EXPECT_GT(lo2, lo1);
    EXPECT_LT(hi2, hi1);
}

TEST(RateEstimator, FoldsBatchesAndSeedsEwma)
{
    RateEstimator est(0.5);
    EXPECT_EQ(est.trials(), 0u);
    EXPECT_DOUBLE_EQ(est.rate(), 0.0);
    EXPECT_DOUBLE_EQ(est.ewma(), 0.0);

    // First batch seeds the EWMA at the batch rate, not alpha-blended
    // with the zero prior.
    est.observe(2, 10);
    EXPECT_DOUBLE_EQ(est.ewma(), 0.2);
    EXPECT_DOUBLE_EQ(est.rate(), 0.2);

    // Second batch blends: 0.5 * 0.8 + 0.5 * 0.2 = 0.5.
    est.observe(8, 10);
    EXPECT_DOUBLE_EQ(est.ewma(), 0.5);
    EXPECT_EQ(est.hits(), 10u);
    EXPECT_EQ(est.trials(), 20u);
    EXPECT_DOUBLE_EQ(est.rate(), 0.5);

    // Empty batches change nothing.
    est.observe(0, 0);
    EXPECT_DOUBLE_EQ(est.ewma(), 0.5);
    EXPECT_EQ(est.trials(), 20u);
}

TEST(RateEstimator, BoundsOrderAroundLifetimeRate)
{
    RateEstimator est;
    est.observe(3, 40);
    EXPECT_LE(est.lowerBound(), est.rate());
    EXPECT_GE(est.upperBound(), est.rate());
    EXPECT_LT(est.lowerBound(), est.upperBound());
}

TEST(RateEstimator, ResetForgetsEverything)
{
    RateEstimator est;
    est.observe(9, 10);
    est.reset();
    EXPECT_EQ(est.trials(), 0u);
    EXPECT_EQ(est.hits(), 0u);
    EXPECT_DOUBLE_EQ(est.rate(), 0.0);
    EXPECT_DOUBLE_EQ(est.ewma(), 0.0);
    EXPECT_DOUBLE_EQ(est.lowerBound(), 0.0);
    EXPECT_DOUBLE_EQ(est.upperBound(), 1.0);
    // And re-seeds cleanly after the reset.
    est.observe(1, 4);
    EXPECT_DOUBLE_EQ(est.ewma(), 0.25);
}
