/**
 * @file
 * Quantized int8 engine tests.  QuantDispatch pins the kernel-level
 * promises (bit-identical int8 outputs at every dispatch level, the
 * pinned requantization convention, calibration edge cases and the
 * record-chain invariants); BinaryCheckpointQuant covers the quant
 * sections of the binary checkpoint format; QuantServe covers the
 * per-request precision override and admission; and the
 * QuantDispatchConcurrency suite (picked up by the TSan CI regex)
 * proves thread-count invariance of the int8 MC path.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <sstream>
#include <vector>

#include "bayes/mc_runner.hpp"
#include "core/engine.hpp"
#include "models/zoo.hpp"
#include "nn/activations.hpp"
#include "nn/checkpoint.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/pooling.hpp"
#include "nn/serialize.hpp"
#include "quant/fidelity.hpp"
#include "quant/quantize.hpp"
#include "serve/server.hpp"
#include "simd/kernels_internal.hpp"
#include "simd/simd.hpp"

using namespace fastbcnn;

namespace {

std::vector<simd::SimdLevel>
availableLevels()
{
    std::vector<simd::SimdLevel> levels;
    for (int l = 0; l < simd::kSimdLevelCount; ++l) {
        const auto level = static_cast<simd::SimdLevel>(l);
        if (simd::levelAvailable(level))
            levels.push_back(level);
    }
    return levels;
}

std::vector<std::int8_t>
randomInt8(std::size_t n, std::uint64_t seed, double zero_fraction = 0.0)
{
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> dist(-128, 127);
    std::uniform_real_distribution<double> zero(0.0, 1.0);
    std::vector<std::int8_t> v(n);
    for (std::int8_t &x : v)
        x = zero(rng) < zero_fraction
                ? std::int8_t{0}
                : static_cast<std::int8_t>(dist(rng));
    return v;
}

std::vector<std::int32_t>
randomInt32(std::size_t n, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<std::int32_t> dist(-5000, 5000);
    std::vector<std::int32_t> v(n);
    for (std::int32_t &x : v)
        x = dist(rng);
    return v;
}

/** A tiny quantizable BCNN: conv/relu/pool/dropout chain into a
 *  Linear + Softmax head — the topology class the int8 engine covers. */
Network
quantBcnn(double drop_rate = 0.3, std::uint64_t seed = 5)
{
    Network net("qtiny", Shape({1, 6, 6}));
    net.add(std::make_unique<Conv2d>("c1", 1, 4, 3, 1, 1));
    net.add(std::make_unique<ReLU>("r1"));
    net.add(std::make_unique<Dropout>("d1", drop_rate));
    net.add(std::make_unique<MaxPool2d>("p1", 2, 2));
    net.add(std::make_unique<Conv2d>("c2", 4, 6, 3, 1, 0));
    net.add(std::make_unique<ReLU>("r2"));
    net.add(std::make_unique<Dropout>("d2", drop_rate));
    net.add(std::make_unique<Flatten>("f"));
    net.add(std::make_unique<Linear>("fc", 6, 4));
    net.add(std::make_unique<Softmax>("sm"));
    InitOptions init;
    init.seed = seed;
    initializeWeights(net, init);
    return net;
}

Tensor
randomInput(const Shape &shape, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::normal_distribution<float> g(0.3f, 1.0f);
    Tensor t(shape);
    for (float &v : t.data())
        v = g(rng);
    return t;
}

std::vector<Tensor>
calibInputs(const Network &net, std::uint64_t seed = 31,
            std::size_t count = 2)
{
    std::vector<Tensor> calib;
    for (std::size_t i = 0; i < count; ++i)
        calib.push_back(randomInput(net.inputShape(), seed + i));
    return calib;
}

quant::QuantizedNetwork
mustQuantize(const Network &net)
{
    Expected<quant::CalibrationProfile> profile =
        quant::tryCalibrateActivations(net, calibInputs(net));
    EXPECT_TRUE(profile.hasValue());
    Expected<quant::QuantizedNetwork> qnet =
        quant::QuantizedNetwork::build(net, profile.value());
    EXPECT_TRUE(qnet.hasValue())
        << (qnet.hasValue() ? "" : qnet.error().toString());
    return std::move(qnet).value();
}

ForwardTarget
targetOf(const quant::QuantizedNetwork &qnet, const Network &net)
{
    ForwardTarget target;
    const quant::QuantizedNetwork *q = &qnet;
    target.forward = [q](const Tensor &in, ForwardHooks *hooks) {
        return q->forward(in, hooks);
    };
    target.name = net.name() + "-int8";
    target.inputShape = net.inputShape();
    return target;
}

bool
sameBytes(const Tensor &a, const Tensor &b)
{
    return a.numel() == b.numel() &&
           std::memcmp(a.data().data(), b.data().data(),
                       a.numel() * sizeof(float)) == 0;
}

} // namespace

// ---------------------------------------------------------------------------
// QuantDispatch: scale derivation and value quantization

TEST(QuantDispatch, ScaleFromMaxAbsHandlesZeroRange)
{
    EXPECT_FLOAT_EQ(quant::scaleFromMaxAbs(12.7f), 0.1f);
    // Collapsed calibration range: scale 1.0, not a division by zero.
    EXPECT_FLOAT_EQ(quant::scaleFromMaxAbs(0.0f), 1.0f);
}

TEST(QuantDispatch, QuantizeValueSaturatesAndMapsNonFinite)
{
    EXPECT_EQ(quant::quantizeValue(0.0f, 0.1f), 0);
    EXPECT_EQ(quant::quantizeValue(1.0f, 0.1f), 10);
    EXPECT_EQ(quant::quantizeValue(-1.0f, 0.1f), -10);
    // Saturation at the int8 rails.
    EXPECT_EQ(quant::quantizeValue(1e9f, 0.1f), 127);
    EXPECT_EQ(quant::quantizeValue(-1e9f, 0.1f), -128);
    // Deterministic non-finite mapping: NaN -> 0, +/-inf -> rails.
    EXPECT_EQ(quant::quantizeValue(
                  std::numeric_limits<float>::quiet_NaN(), 0.1f),
              0);
    EXPECT_EQ(quant::quantizeValue(
                  std::numeric_limits<float>::infinity(), 0.1f),
              127);
    EXPECT_EQ(quant::quantizeValue(
                  -std::numeric_limits<float>::infinity(), 0.1f),
              -128);
}

TEST(QuantDispatch, RequantSatRoundsHalfUp)
{
    using simd::detail::requantSat;
    // shift == 0: plain saturation, no rounding term.
    EXPECT_EQ(requantSat(100, 0), 100);
    EXPECT_EQ(requantSat(1000, 0), 127);
    EXPECT_EQ(requantSat(-1000, 0), -128);
    // Round-half-up: (acc + (1 << (shift-1))) >> shift.
    EXPECT_EQ(requantSat(5, 1), 3);    // 2.5 rounds up
    EXPECT_EQ(requantSat(4, 1), 2);
    EXPECT_EQ(requantSat(-5, 1), -2);  // -2.5 rounds toward +inf
    EXPECT_EQ(requantSat(6, 2), 2);    // 1.5 rounds up
    EXPECT_EQ(requantSat(1 << 20, 13), 127);
}

// ---------------------------------------------------------------------------
// QuantDispatch: kernel bit-identity across dispatch levels

TEST(QuantDispatch, QuantConvBitIdenticalAcrossLevels)
{
    struct ConvShape {
        std::size_t in_c, out_c, h, w, k, s, p;
        std::int32_t shift;
    } shapes[] = {
        {1, 1, 5, 5, 3, 1, 0, 7},  {3, 4, 11, 13, 3, 1, 1, 9},
        {2, 3, 9, 17, 5, 1, 2, 8}, {3, 2, 12, 12, 3, 2, 1, 10},
        {1, 2, 8, 21, 1, 1, 0, 6}, {2, 2, 6, 7, 3, 1, 2, 0},
    };
    const simd::SimdKernels &ref =
        simd::kernelsFor(simd::SimdLevel::Scalar);
    std::uint64_t seed = 301;
    for (const ConvShape &sh : shapes) {
        const std::size_t out_h = (sh.h + 2 * sh.p - sh.k) / sh.s + 1;
        const std::size_t out_w = (sh.w + 2 * sh.p - sh.k) / sh.s + 1;
        const auto in = randomInt8(sh.in_c * sh.h * sh.w, seed++);
        // ~30% exactly-zero weights exercise the skip-zero branch.
        const auto w = randomInt8(
            sh.out_c * sh.in_c * sh.k * sh.k, seed++, 0.3);
        const auto bias = randomInt32(sh.out_c, seed++);
        std::vector<std::int8_t> expect(sh.out_c * out_h * out_w);
        std::vector<std::int32_t> scratch(out_h * out_w);
        ref.quantConvForward(in.data(), w.data(), bias.data(),
                             expect.data(), scratch.data(), sh.in_c,
                             sh.out_c, sh.h, sh.w, out_h, out_w, sh.k,
                             sh.s, sh.p, sh.shift);
        for (simd::SimdLevel level : availableLevels()) {
            std::vector<std::int8_t> got(expect.size(), 99);
            simd::kernelsFor(level).quantConvForward(
                in.data(), w.data(), bias.data(), got.data(),
                scratch.data(), sh.in_c, sh.out_c, sh.h, sh.w, out_h,
                out_w, sh.k, sh.s, sh.p, sh.shift);
            EXPECT_EQ(expect, got)
                << "quant conv mismatch at level "
                << simd::simdLevelName(level) << " shape " << sh.h
                << "x" << sh.w << " k" << sh.k << " s" << sh.s << " p"
                << sh.p;
        }
    }
}

TEST(QuantDispatch, QuantDenseAccumBitIdenticalAcrossLevels)
{
    const std::size_t in_sizes[] = {1, 2, 7, 8, 9, 16, 23, 40, 129};
    const simd::SimdKernels &ref =
        simd::kernelsFor(simd::SimdLevel::Scalar);
    std::uint64_t seed = 401;
    for (std::size_t in_f : in_sizes) {
        const std::size_t out_f = 5;
        const auto w = randomInt8(out_f * in_f, seed++, 0.2);
        const auto x = randomInt8(in_f, seed++);
        const auto bias = randomInt32(out_f, seed++);
        std::vector<std::int32_t> expect(out_f);
        ref.quantDenseAccum(w.data(), bias.data(), x.data(),
                            expect.data(), out_f, in_f);
        for (simd::SimdLevel level : availableLevels()) {
            std::vector<std::int32_t> got(out_f, 0x7fffffff);
            simd::kernelsFor(level).quantDenseAccum(
                w.data(), bias.data(), x.data(), got.data(), out_f,
                in_f);
            EXPECT_EQ(expect, got)
                << "quant dense mismatch at level "
                << simd::simdLevelName(level) << " in=" << in_f;
        }
    }
}

TEST(QuantDispatch, QuantReluAndPoolBitIdenticalAcrossLevels)
{
    const simd::SimdKernels &ref =
        simd::kernelsFor(simd::SimdLevel::Scalar);
    const auto in = randomInt8(3 * 9 * 11, 501);
    std::vector<std::int8_t> relu_ref(in.size());
    ref.quantRelu(in.data(), relu_ref.data(), in.size());
    for (std::int8_t v : relu_ref)
        EXPECT_GE(v, 0);

    const std::size_t out_h = (9 + 2 - 2) / 2 + 1;
    const std::size_t out_w = (11 + 2 - 2) / 2 + 1;
    std::vector<std::int8_t> pool_ref(3 * out_h * out_w);
    ref.quantPoolMax(in.data(), pool_ref.data(), 3, 9, 11, out_h,
                     out_w, 2, 2, 1, 0);
    for (simd::SimdLevel level : availableLevels()) {
        const simd::SimdKernels &k = simd::kernelsFor(level);
        std::vector<std::int8_t> relu_got(in.size(), 99);
        k.quantRelu(in.data(), relu_got.data(), in.size());
        EXPECT_EQ(relu_ref, relu_got)
            << "quant relu mismatch at "
            << simd::simdLevelName(level);
        std::vector<std::int8_t> pool_got(pool_ref.size(), 99);
        k.quantPoolMax(in.data(), pool_got.data(), 3, 9, 11, out_h,
                       out_w, 2, 2, 1, 0);
        EXPECT_EQ(pool_ref, pool_got)
            << "quant pool mismatch at "
            << simd::simdLevelName(level);
    }
}

// ---------------------------------------------------------------------------
// QuantDispatch: calibration and network-level behaviour

TEST(QuantDispatch, CalibrationRejectsBadSweeps)
{
    const Network net = quantBcnn();

    const auto empty = quant::tryCalibrateActivations(net, {});
    ASSERT_FALSE(empty.hasValue());
    EXPECT_EQ(empty.error().code(), ErrorCode::InvalidArgument);

    std::vector<Tensor> wrongShape;
    wrongShape.emplace_back(Shape({1, 4, 4}));
    const auto shape = quant::tryCalibrateActivations(net, wrongShape);
    ASSERT_FALSE(shape.hasValue());
    EXPECT_EQ(shape.error().code(), ErrorCode::InvalidArgument);

    // A poisoned sweep (NaN / inf input) must not produce scales.
    std::vector<Tensor> poisoned = calibInputs(net);
    poisoned[0].data()[3] = std::numeric_limits<float>::quiet_NaN();
    const auto nan = quant::tryCalibrateActivations(net, poisoned);
    ASSERT_FALSE(nan.hasValue());
    EXPECT_EQ(nan.error().code(), ErrorCode::InvalidArgument);

    poisoned[0].data()[3] = std::numeric_limits<float>::infinity();
    const auto inf = quant::tryCalibrateActivations(net, poisoned);
    ASSERT_FALSE(inf.hasValue());
    EXPECT_EQ(inf.error().code(), ErrorCode::InvalidArgument);
}

TEST(QuantDispatch, BuildRejectsUnsupportedTopology)
{
    Network net("branchy", Shape({1, 6, 6}));
    net.add(std::make_unique<Conv2d>("c1", 1, 2, 3, 1, 1));
    net.add(std::make_unique<ReLU>("r1"));
    net.add(std::make_unique<GlobalAvgPool>("g"));
    net.add(std::make_unique<Linear>("fc", 2, 4));
    InitOptions init;
    init.seed = 9;
    initializeWeights(net, init);
    Expected<quant::CalibrationProfile> profile =
        quant::tryCalibrateActivations(net, calibInputs(net));
    ASSERT_TRUE(profile.hasValue());
    const auto built =
        quant::QuantizedNetwork::build(net, profile.value());
    ASSERT_FALSE(built.hasValue());
    EXPECT_EQ(built.error().code(), ErrorCode::InvalidArgument);
}

TEST(QuantDispatch, ForwardBitIdenticalAcrossLevels)
{
    const Network net = quantBcnn();
    const quant::QuantizedNetwork qnet = mustQuantize(net);
    const Tensor input = randomInput(net.inputShape(), 71);

    const std::vector<simd::SimdLevel> levels = availableLevels();
    Tensor ref;
    for (std::size_t i = 0; i < levels.size(); ++i) {
        const simd::SimdLevel prev = simd::setLevel(levels[i]);
        Tensor out = qnet.forward(input);
        simd::setLevel(prev);
        if (i == 0) {
            ref = std::move(out);
            continue;
        }
        EXPECT_TRUE(sameBytes(ref, out))
            << "int8 forward differs at "
            << simd::simdLevelName(levels[i]);
    }
}

TEST(QuantDispatch, RecordsRoundTripBitExactly)
{
    const Network net = quantBcnn();
    const quant::QuantizedNetwork qnet = mustQuantize(net);
    Expected<quant::QuantizedNetwork> rebuilt =
        quant::QuantizedNetwork::fromRecords(net, qnet.records());
    ASSERT_TRUE(rebuilt.hasValue()) << rebuilt.error().toString();

    const Tensor input = randomInput(net.inputShape(), 72);
    EXPECT_TRUE(sameBytes(qnet.forward(input),
                          rebuilt.value().forward(input)));
}

TEST(QuantDispatch, FromRecordsRejectsBrokenScaleChain)
{
    const Network net = quantBcnn();
    const quant::QuantizedNetwork qnet = mustQuantize(net);

    std::vector<QuantRecord> tampered = qnet.records();
    ASSERT_FALSE(tampered.empty());
    tampered[0].outScale *= 1.5f;  // breaks the requant invariant
    EXPECT_FALSE(quant::QuantizedNetwork::fromRecords(net, tampered)
                     .hasValue());

    std::vector<QuantRecord> badShift = qnet.records();
    badShift[0].shift = 31;  // outside [0, 30]
    EXPECT_FALSE(quant::QuantizedNetwork::fromRecords(net, badShift)
                     .hasValue());

    std::vector<QuantRecord> nanScale = qnet.records();
    nanScale[0].wScale = std::numeric_limits<float>::quiet_NaN();
    EXPECT_FALSE(quant::QuantizedNetwork::fromRecords(net, nanScale)
                     .hasValue());

    std::vector<QuantRecord> truncated = qnet.records();
    truncated.pop_back();
    EXPECT_FALSE(quant::QuantizedNetwork::fromRecords(net, truncated)
                     .hasValue());
}

TEST(QuantDispatch, FidelityStaysInToleranceOnTinyModel)
{
    const Network net = quantBcnn();
    const BcnnTopology topo(net);
    const quant::QuantizedNetwork qnet = mustQuantize(net);
    const Tensor input = randomInput(net.inputShape(), 73);

    McOptions mc;
    mc.samples = 8;
    mc.seed = 74;
    mc.recordMasks = false;
    Expected<McResult> ref = tryRunMcDropout(net, input, mc);
    ASSERT_TRUE(ref.hasValue());
    Expected<McResult> got =
        tryRunMcDropoutWith(targetOf(qnet, net), input, mc);
    ASSERT_TRUE(got.hasValue());

    const quant::MomentFidelity fid = quant::compareSummaries(
        ref.value().summary, got.value().summary);
    EXPECT_LE(fid.maxMeanDiff, 0.05);
    EXPECT_LE(fid.maxVarDiff, 0.02);

    const quant::SkipAgreement agreement =
        quant::compareSkipPredictions(topo, qnet, input, 8.0, 0.3, 75,
                                      4);
    EXPECT_GT(agreement.compared, 0u);
    EXPECT_GE(agreement.agreement(), 0.95);
}

// ---------------------------------------------------------------------------
// BinaryCheckpointQuant: quant sections of the binary format

TEST(BinaryCheckpointQuant, EmitParseRoundTrip)
{
    const Network net = quantBcnn();
    const quant::QuantizedNetwork qnet = mustQuantize(net);

    CheckpointImage image = checkpointImageOf(net);
    image.quantRecords = qnet.records();
    std::ostringstream os;
    ASSERT_TRUE(tryEmitBinaryCheckpoint(image, os).isOk());

    Expected<CheckpointImage> parsed =
        tryParseBinaryCheckpoint(os.str());
    ASSERT_TRUE(parsed.hasValue()) << parsed.error().toString();
    const CheckpointImage &back = parsed.value();
    ASSERT_EQ(back.quantRecords.size(), image.quantRecords.size());
    for (std::size_t i = 0; i < back.quantRecords.size(); ++i) {
        const QuantRecord &a = image.quantRecords[i];
        const QuantRecord &b = back.quantRecords[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.weights, b.weights);
        EXPECT_EQ(a.bias, b.bias);
        EXPECT_EQ(a.wScale, b.wScale);
        EXPECT_EQ(a.inScale, b.inScale);
        EXPECT_EQ(a.outScale, b.outScale);
        EXPECT_EQ(a.shift, b.shift);
    }

    // The parsed records rebuild a working int8 mirror.
    Expected<quant::QuantizedNetwork> adopted =
        quant::QuantizedNetwork::fromRecords(net, back.quantRecords);
    ASSERT_TRUE(adopted.hasValue()) << adopted.error().toString();
    const Tensor input = randomInput(net.inputShape(), 81);
    EXPECT_TRUE(sameBytes(qnet.forward(input),
                          adopted.value().forward(input)));
}

TEST(BinaryCheckpointQuant, ByteFlipsAreCaughtByCrc)
{
    const Network net = quantBcnn();
    const quant::QuantizedNetwork qnet = mustQuantize(net);
    CheckpointImage image = checkpointImageOf(net);
    image.quantRecords = qnet.records();
    std::ostringstream os;
    ASSERT_TRUE(tryEmitBinaryCheckpoint(image, os).isOk());
    const std::string good = os.str();

    // Flip one byte at a stride: every corruption — header, float
    // payload, quant scales, int8 weights — must fail, never load.
    for (std::size_t pos = 16; pos < good.size();
         pos += 1 + good.size() / 48) {
        std::string bad = good;
        bad[pos] = static_cast<char>(bad[pos] ^ 0x5a);
        const auto parsed = tryParseBinaryCheckpoint(bad);
        EXPECT_FALSE(parsed.hasValue())
            << "byte flip at " << pos << " parsed anyway";
    }
}

TEST(BinaryCheckpointQuant, TextFormatRefusesQuantSections)
{
    const Network net = quantBcnn();
    const quant::QuantizedNetwork qnet = mustQuantize(net);
    CheckpointImage image = checkpointImageOf(net);
    image.quantRecords = qnet.records();
    std::ostringstream os;
    const Status refused = tryEmitTextCheckpoint(image, os);
    ASSERT_FALSE(refused.isOk());
    EXPECT_EQ(refused.code(), ErrorCode::InvalidArgument);
}

TEST(BinaryCheckpointQuant, AuditCountsQuantSections)
{
    const Network net = quantBcnn();
    const quant::QuantizedNetwork qnet = mustQuantize(net);
    CheckpointImage image = checkpointImageOf(net);
    image.quantRecords = qnet.records();
    std::ostringstream os;
    ASSERT_TRUE(tryEmitBinaryCheckpoint(image, os).isOk());

    Expected<CheckpointAudit> audit = tryAuditCheckpoint(os.str());
    ASSERT_TRUE(audit.hasValue()) << audit.error().toString();
    EXPECT_EQ(audit.value().quantSections, image.quantRecords.size());
    EXPECT_TRUE(audit.value().crcVerified);
}

// ---------------------------------------------------------------------------
// QuantServe: per-request precision through the serving stack

namespace {

using namespace fastbcnn::serve;

Tensor
onesInput()
{
    Tensor t(Shape({1, 6, 6}));
    t.fill(1.0f);
    return t;
}

/** Replica factory with an int8 mirror (precision default Float32). */
Expected<std::unique_ptr<FastBcnnEngine>>
makeQuantReplica()
{
    EngineOptions eopts;
    eopts.mc.samples = 4;
    eopts.mc.seed = 21;
    eopts.mc.recordMasks = false;
    eopts.optimizer.samples = 2;
    Expected<std::unique_ptr<FastBcnnEngine>> engine =
        FastBcnnEngine::create(quantBcnn(), eopts);
    if (!engine.hasValue())
        return engine;
    const std::vector<Tensor> calib = {onesInput()};
    Status calibrated = engine.value()->tryCalibrate(calib);
    if (!calibrated.isOk())
        return calibrated;
    Status quantized = engine.value()->tryQuantize(calib);
    if (!quantized.isOk())
        return quantized;
    return engine;
}

/** Replica factory without an int8 mirror. */
Expected<std::unique_ptr<FastBcnnEngine>>
makeFloatReplica()
{
    EngineOptions eopts;
    eopts.mc.samples = 4;
    eopts.mc.seed = 21;
    eopts.mc.recordMasks = false;
    eopts.optimizer.samples = 2;
    Expected<std::unique_ptr<FastBcnnEngine>> engine =
        FastBcnnEngine::create(quantBcnn(), eopts);
    if (!engine.hasValue())
        return engine;
    Status calibrated = engine.value()->tryCalibrate({onesInput()});
    if (!calibrated.isOk())
        return calibrated;
    return engine;
}

ModelSpec
quantSpec(std::string id = "qtiny")
{
    ModelSpec spec;
    spec.id = std::move(id);
    spec.factory = makeQuantReplica;
    return spec;
}

ModelSpec
floatSpec(std::string id = "ftiny")
{
    ModelSpec spec;
    spec.id = std::move(id);
    spec.factory = makeFloatReplica;
    return spec;
}

} // namespace

TEST(QuantServe, PrecisionOverrideServesInt8)
{
    auto server =
        InferenceServer::create({quantSpec()}, ServerOptions{});
    ASSERT_TRUE(server.hasValue()) << server.error().toString();
    InferenceServer &srv = *server.value();

    InferRequest int8Req;
    int8Req.modelId = "qtiny";
    int8Req.input = onesInput();
    int8Req.mc.precision = Precision::Int8;
    auto h8 = srv.submit(std::move(int8Req));
    ASSERT_TRUE(h8.hasValue()) << h8.error().toString();

    InferRequest floatReq;
    floatReq.modelId = "qtiny";
    floatReq.input = onesInput();
    auto hf = srv.submit(std::move(floatReq));
    ASSERT_TRUE(hf.hasValue());
    srv.drain();

    InferResponse r8 = h8.value().response.get();
    EXPECT_EQ(r8.outcome, Outcome::Ok);
    EXPECT_EQ(r8.precision, Precision::Int8);
    ASSERT_TRUE(r8.result.has_value());

    InferResponse rf = hf.value().response.get();
    EXPECT_EQ(rf.outcome, Outcome::Ok);
    EXPECT_EQ(rf.precision, Precision::Float32);

    // Both paths classify the same way on this input.
    ASSERT_TRUE(rf.result.has_value());
    EXPECT_EQ(r8.result->summary.argmax, rf.result->summary.argmax);
}

TEST(QuantServe, Int8RejectedWithoutMirror)
{
    auto server =
        InferenceServer::create({floatSpec()}, ServerOptions{});
    ASSERT_TRUE(server.hasValue()) << server.error().toString();
    InferenceServer &srv = *server.value();

    InferRequest req;
    req.modelId = "ftiny";
    req.input = onesInput();
    req.mc.precision = Precision::Int8;
    auto handle = srv.submit(std::move(req));
    ASSERT_FALSE(handle.hasValue());
    EXPECT_EQ(handle.error().code(), ErrorCode::InvalidArgument);
    EXPECT_EQ(srv.stats().counter("rejected_invalid"), 1u);

    // Float requests still serve.
    InferRequest ok;
    ok.modelId = "ftiny";
    ok.input = onesInput();
    auto h = srv.submit(std::move(ok));
    ASSERT_TRUE(h.hasValue());
    srv.drain();
    EXPECT_EQ(h.value().response.get().outcome, Outcome::Ok);
}

TEST(QuantServe, HealthReportsInt8Availability)
{
    auto server = InferenceServer::create(
        {quantSpec("q"), floatSpec("f")}, ServerOptions{});
    ASSERT_TRUE(server.hasValue()) << server.error().toString();
    bool sawQuant = false, sawFloat = false;
    for (const ModelHealth &m : server.value()->health().models) {
        if (m.id == "q") {
            sawQuant = true;
            EXPECT_TRUE(m.int8Available);
        } else if (m.id == "f") {
            sawFloat = true;
            EXPECT_FALSE(m.int8Available);
        }
    }
    EXPECT_TRUE(sawQuant);
    EXPECT_TRUE(sawFloat);
    server.value()->drain();
}

// ---------------------------------------------------------------------------
// QuantDispatchConcurrency: thread-count invariance (TSan suite)

TEST(QuantDispatchConcurrency, McResultInvariantAcrossThreadCounts)
{
    const Network net = quantBcnn();
    const quant::QuantizedNetwork qnet = mustQuantize(net);
    const Tensor input = randomInput(net.inputShape(), 91);

    McOptions mc;
    mc.samples = 12;
    mc.seed = 92;
    mc.recordMasks = false;

    Expected<McResult> serial =
        tryRunMcDropoutWith(targetOf(qnet, net), input, mc);
    ASSERT_TRUE(serial.hasValue());
    for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
        McOptions pmc = mc;
        pmc.threads = threads;
        Expected<McResult> parallel =
            tryRunMcDropoutWith(targetOf(qnet, net), input, pmc);
        ASSERT_TRUE(parallel.hasValue());
        ASSERT_EQ(parallel.value().outputs.size(),
                  serial.value().outputs.size());
        for (std::size_t t = 0; t < serial.value().outputs.size();
             ++t) {
            EXPECT_TRUE(sameBytes(serial.value().outputs[t],
                                  parallel.value().outputs[t]))
                << "sample " << t << " differs at threads="
                << threads;
        }
        EXPECT_TRUE(sameBytes(serial.value().summary.mean,
                              parallel.value().summary.mean));
        EXPECT_TRUE(sameBytes(serial.value().summary.variance,
                              parallel.value().summary.variance));
    }
}
