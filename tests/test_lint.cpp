/**
 * @file
 * fastbcnn-lint self-tests: lexer edge cases, every rule, inline
 * suppressions, and the baseline round-trip — driven in-process
 * against the checked-in fixtures under tests/lint_fixtures/
 * (FASTBCNN_LINT_FIXTURE_DIR, injected by the build).
 */

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "driver.hpp"

namespace {

using fbl::Finding;
using fbl::LexedFile;
using fbl::TokKind;

std::string
fixturePath(const std::string &name)
{
    return std::string(FASTBCNN_LINT_FIXTURE_DIR) + "/" + name;
}

std::string
readFixture(const std::string &name)
{
    std::ifstream in(fixturePath(name), std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << name;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::vector<std::string>
rulesOf(const std::vector<Finding> &findings)
{
    std::vector<std::string> rules;
    rules.reserve(findings.size());
    for (const Finding &f : findings)
        rules.push_back(f.rule);
    return rules;
}

int
countRule(const std::vector<Finding> &findings, const std::string &rule)
{
    const std::vector<std::string> rules = rulesOf(findings);
    return static_cast<int>(
        std::count(rules.begin(), rules.end(), rule));
}

// ------------------------------------------------------------- lexer

TEST(LintLexer, ClassifiesBasicTokens)
{
    const LexedFile lf = fbl::lexCpp("int x = 42; // tail");
    ASSERT_EQ(lf.tokens.size(), 5u);
    EXPECT_EQ(lf.tokens[0].kind, TokKind::Ident);
    EXPECT_EQ(lf.tokens[0].text, "int");
    EXPECT_EQ(lf.tokens[2].kind, TokKind::Punct);
    EXPECT_EQ(lf.tokens[3].kind, TokKind::Number);
    EXPECT_EQ(lf.tokens[3].text, "42");
    EXPECT_EQ(lf.lineCount, 1);
}

TEST(LintLexer, RawStringSwallowsBait)
{
    const LexedFile lf =
        fbl::lexCpp("auto s = R\"x(assert(1); throw 2;)x\";\n");
    int strs = 0;
    for (const auto &t : lf.tokens) {
        EXPECT_NE(t.text, "assert");
        EXPECT_NE(t.text, "throw");
        strs += t.kind == TokKind::Str ? 1 : 0;
    }
    EXPECT_EQ(strs, 1);
}

TEST(LintLexer, PreprocLogicalLineIsOneToken)
{
    const LexedFile lf = fbl::lexCpp(
        "#define M(a) \\\n    growable(a)\nint y;\n");
    ASSERT_GE(lf.tokens.size(), 1u);
    EXPECT_EQ(lf.tokens[0].kind, TokKind::Preproc);
    EXPECT_NE(lf.tokens[0].text.find("growable"), std::string::npos);
    // The tokens after the directive belong to line 3.
    ASSERT_EQ(lf.tokens.size(), 4u);
    EXPECT_EQ(lf.tokens[1].line, 3);
}

TEST(LintLexer, DigitSeparatorsAndHexFloats)
{
    const LexedFile lf = fbl::lexCpp("auto a = 1'000; auto b = 0x1.8p3;");
    int numbers = 0;
    for (const auto &t : lf.tokens) {
        if (t.kind == TokKind::Number) {
            ++numbers;
            EXPECT_TRUE(t.text == "1'000" || t.text == "0x1.8p3")
                << t.text;
        }
    }
    EXPECT_EQ(numbers, 2);
}

TEST(LintLexer, CollectsSuppressions)
{
    const LexedFile lf = fbl::lexCpp(
        "// NOLINTNEXTLINE-FASTBCNN(determinism): reason\n"
        "int a;\n"
        "int b; // NOLINT-FASTBCNN(hot-path, banned-function): why\n");
    ASSERT_EQ(lf.suppressions.size(), 2u);
    EXPECT_EQ(lf.suppressions[0].line, 2);
    ASSERT_EQ(lf.suppressions[0].rules.size(), 1u);
    EXPECT_EQ(lf.suppressions[0].rules[0], "determinism");
    EXPECT_EQ(lf.suppressions[1].line, 3);
    EXPECT_EQ(lf.suppressions[1].rules.size(), 2u);
    EXPECT_TRUE(
        fbl::suppressionCovers(lf.suppressions[1], "hot-path"));
    EXPECT_FALSE(
        fbl::suppressionCovers(lf.suppressions[1], "determinism"));
}

TEST(LintLexer, WildcardSuppressionCoversEverything)
{
    const LexedFile lf =
        fbl::lexCpp("int a; // NOLINT-FASTBCNN(*): all\n");
    ASSERT_EQ(lf.suppressions.size(), 1u);
    for (const std::string &rule : fbl::ruleNames())
        EXPECT_TRUE(fbl::suppressionCovers(lf.suppressions[0], rule));
}

// ------------------------------------------------------------- rules

TEST(LintRules, RegistryIsSortedAndComplete)
{
    const std::vector<std::string> names = fbl::ruleNames();
    EXPECT_EQ(names.size(), 6u);
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(LintRules, CleanEdgeCasesHaveZeroFindings)
{
    // Linted under a src/ path so every rule is armed.
    const auto findings = fbl::lintSource(
        "src/nn/clean_edge_cases.cpp",
        readFixture("clean_edge_cases.cpp"));
    EXPECT_TRUE(findings.empty())
        << findings.size() << " unexpected finding(s), first: "
        << (findings.empty() ? "" : findings[0].message);
}

TEST(LintRules, SeededViolationFixtureFires)
{
    const auto findings = fbl::lintSource(
        "tests/lint_fixtures/seeded_violation.cpp",
        readFixture("seeded_violation.cpp"));
    EXPECT_EQ(countRule(findings, "error-discipline"), 2);
    EXPECT_EQ(countRule(findings, "banned-function"), 1);
    EXPECT_EQ(countRule(findings, "discarded-status"), 1);
    EXPECT_EQ(countRule(findings, "hot-path"), 3);
    EXPECT_EQ(findings.size(), 7u);
    // Deterministic ordering: (line, col, rule).
    for (std::size_t i = 1; i < findings.size(); ++i)
        EXPECT_LE(findings[i - 1].line, findings[i].line);
}

TEST(LintRules, ErrorDisciplineExemptsCommon)
{
    const std::string src = "void f() { throw 1; }\n";
    EXPECT_EQ(fbl::lintSource("src/common/error.cpp", src).size(), 0u);
    EXPECT_EQ(fbl::lintSource("src/nn/conv2d.cpp", src).size(), 1u);
}

TEST(LintRules, DiscardHeuristics)
{
    const char *decl = "Status tryPing(int x);\n";
    EXPECT_TRUE(fbl::lintSource("src/a.cpp", decl).empty());

    const char *bare = "void f() { tryPing(1); }\n";
    ASSERT_EQ(fbl::lintSource("src/a.cpp", bare).size(), 1u);
    EXPECT_EQ(fbl::lintSource("src/a.cpp", bare)[0].rule,
              "discarded-status");

    const char *chained = "void f() { engine->tryPing(1); }\n";
    EXPECT_EQ(fbl::lintSource("src/a.cpp", chained).size(), 1u);

    const char *scoped = "void f() { fastbcnn::tryPing(1); }\n";
    EXPECT_EQ(fbl::lintSource("src/a.cpp", scoped).size(), 1u);

    const char *voided = "void f() { (void)tryPing(1); }\n";
    EXPECT_TRUE(fbl::lintSource("src/a.cpp", voided).empty());

    const char *assigned = "void f() { auto s = tryPing(1); }\n";
    EXPECT_TRUE(fbl::lintSource("src/a.cpp", assigned).empty());

    const char *returned = "Status g() { return tryPing(1); }\n";
    EXPECT_TRUE(fbl::lintSource("src/a.cpp", returned).empty());

    const char *tested = "void f() { if (tryPing(1).ok()) {} }\n";
    EXPECT_TRUE(fbl::lintSource("src/a.cpp", tested).empty());
}

TEST(LintRules, HotPathFixture)
{
    const auto findings = fbl::lintSource(
        "src/nn/hot_path.cpp", readFixture("hot_path.cpp"));
    // All findings are hot-path: hotDirty's lock_guard, mutex,
    // push_back, std::string, the aligned heap pair and
    // FASTBCNN_CHECK, plus hotQuantDirty's allocating scratch vector.
    // hotQuantClean (int8 accumulate + shift requant) must stay clean.
    EXPECT_EQ(findings.size(), 8u);
    std::set<std::string> tokens;
    for (const Finding &f : findings) {
        EXPECT_EQ(f.rule, "hot-path");
        tokens.insert(f.token);
    }
    const std::set<std::string> expected = {
        "lock_guard", "mutex", "push_back", "string",
        "_mm_malloc", "_mm_free", "FASTBCNN_CHECK", "vector"};
    EXPECT_EQ(tokens, expected);
}

TEST(LintRules, DeterminismArmedOnlyOutsideAllowlist)
{
    const std::string src =
        "void f() {\n"
        "  std::random_device rd;\n"
        "  int a = rand();\n"
        "  auto t = std::time(nullptr);\n"
        "  auto n = Clock::now();\n"
        "}\n";
    const auto armed = fbl::lintSource("src/bayes/x.cpp", src);
    EXPECT_EQ(countRule(armed, "determinism"), 4);
    EXPECT_TRUE(fbl::lintSource("src/serve/x.cpp", src).empty());
    EXPECT_TRUE(fbl::lintSource("bench/x.cpp", src).empty());
    EXPECT_TRUE(fbl::lintSource("tests/x.cpp", src).empty());
}

TEST(LintRules, IncludeGuardAcceptsBothForms)
{
    const auto missing = fbl::lintSource(
        "src/x/missing_guard.hpp", readFixture("missing_guard.hpp"));
    ASSERT_EQ(missing.size(), 1u);
    EXPECT_EQ(missing[0].rule, "include-guard");

    EXPECT_TRUE(fbl::lintSource("src/x/classic_guard.hpp",
                                readFixture("classic_guard.hpp"))
                    .empty());
    EXPECT_TRUE(
        fbl::lintSource("src/x/p.hpp", "#pragma once\nint v;\n")
            .empty());
    // Mismatched guard macro does not count as a guard.
    const auto bad = fbl::lintSource(
        "src/x/bad.hpp", "#ifndef A_HPP\n#define B_HPP\nint v;\n#endif\n");
    ASSERT_EQ(bad.size(), 1u);
    EXPECT_EQ(bad[0].rule, "include-guard");
    // Sources are never checked for guards.
    EXPECT_TRUE(fbl::lintSource("src/x/p.cpp", "int v;\n").empty());
}

// ------------------------------------------------------ suppressions

TEST(LintSuppressions, FixtureOnlyWrongRuleSurvives)
{
    const auto findings = fbl::lintSource(
        "tests/lint_fixtures/suppressed.cpp",
        readFixture("suppressed.cpp"));
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "banned-function");
    EXPECT_EQ(findings[0].token, "strcpy");
}

// ---------------------------------------------------------- baseline

TEST(LintBaseline, KeyIsLineIndependent)
{
    Finding a;
    a.rule = "hot-path";
    a.path = "src/nn/conv2d.cpp";
    a.line = 10;
    a.token = "push_back";
    Finding b = a;
    b.line = 999;
    EXPECT_EQ(fbl::baselineKey(a), fbl::baselineKey(b));
}

TEST(LintBaseline, RoundTripNeutralizesSeededFixture)
{
    const std::string baseline =
        testing::TempDir() + "fastbcnn_lint_baseline_test.txt";

    fbl::LintOptions writeOpts;
    writeOpts.root = FASTBCNN_LINT_FIXTURE_DIR;
    writeOpts.paths = {"seeded_violation.cpp"};
    writeOpts.writeBaselinePath = baseline;
    writeOpts.quiet = true;
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(fbl::runLint(writeOpts, out, err), 0) << err.str();

    fbl::Baseline loaded;
    std::string error;
    ASSERT_TRUE(fbl::loadBaseline(baseline, loaded, error)) << error;
    EXPECT_FALSE(loaded.empty());

    // Without the baseline the fixture fails the gate...
    fbl::LintOptions plain;
    plain.root = FASTBCNN_LINT_FIXTURE_DIR;
    plain.paths = {"seeded_violation.cpp"};
    plain.quiet = true;
    EXPECT_EQ(fbl::runLint(plain, out, err), 1);

    // ...and with it, every finding is grandfathered.
    fbl::LintOptions budgeted = plain;
    budgeted.baselinePath = baseline;
    EXPECT_EQ(fbl::runLint(budgeted, out, err), 0) << err.str();
}

TEST(LintBaseline, CheckedInBaselineParses)
{
    // tools/lint_baseline.txt must stay loadable (it is header-only
    // while the tree is clean).
    fbl::Baseline loaded;
    std::string error;
    ASSERT_TRUE(fbl::loadBaseline(
        std::string(FASTBCNN_LINT_FIXTURE_DIR) +
            "/../../tools/lint_baseline.txt",
        loaded, error))
        << error;
    EXPECT_TRUE(loaded.empty());
}

// ------------------------------------------------------------ driver

TEST(LintDriver, JsonOutputIsWellFormedEnough)
{
    fbl::LintOptions opts;
    opts.root = FASTBCNN_LINT_FIXTURE_DIR;
    opts.paths = {"seeded_violation.cpp"};
    opts.json = true;
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(fbl::runLint(opts, out, err), 1);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"findings\": ["), std::string::npos);
    EXPECT_NE(json.find("\"rule\": \"hot-path\""), std::string::npos);
    EXPECT_NE(json.find("\"line\": "), std::string::npos);
}

TEST(LintDriver, MissingExplicitPathIsUsageError)
{
    fbl::LintOptions opts;
    opts.root = FASTBCNN_LINT_FIXTURE_DIR;
    opts.paths = {"no_such_file.cpp"};
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(fbl::runLint(opts, out, err), 2);
    EXPECT_NE(err.str().find("no such path"), std::string::npos);
}

} // namespace
