/**
 * @file
 * Fault-injection and graceful-degradation tests: the FaultPlan
 * primitives, the guarded MC-dropout runner (survivor compaction,
 * census, quorum, deadline), partial-sample statistics, the engine's
 * error-returning entry points, and the sim-report degradation
 * rendering.
 *
 * The ConcurrencyFault suite exercises faulted runs across worker
 * threads; its name matches the tsan preset's `Concurrency` test
 * filter, so it runs under ThreadSanitizer in CI.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "bayes/mc_runner.hpp"
#include "core/engine.hpp"
#include "fault/fault.hpp"
#include "models/zoo.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "sim/report.hpp"

using namespace fastbcnn;

namespace {

Network
tinyBcnn(double drop_rate = 0.3)
{
    Network net("tiny", Shape({1, 6, 6}));
    net.add(std::make_unique<Conv2d>("c1", 1, 2, 3, 1, 1));
    net.add(std::make_unique<ReLU>("r1"));
    net.add(std::make_unique<Dropout>("d1", drop_rate));
    net.add(std::make_unique<Conv2d>("c2", 2, 3, 3));
    net.add(std::make_unique<ReLU>("r2"));
    net.add(std::make_unique<Dropout>("d2", drop_rate));
    InitOptions init;
    init.seed = 3;
    init.biasShift = 0.0;
    initializeWeights(net, init);
    return net;
}

Tensor
ones(const Shape &s)
{
    Tensor t(s);
    t.fill(1.0f);
    return t;
}

McOptions
baseOptions(std::size_t samples = 8)
{
    McOptions opts;
    opts.samples = samples;
    opts.seed = 42;
    return opts;
}

/** Exact equality of two MC results, summary and census included. */
void
expectBitIdentical(const McResult &a, const McResult &b)
{
    ASSERT_EQ(a.outputs.size(), b.outputs.size());
    for (std::size_t t = 0; t < a.outputs.size(); ++t)
        EXPECT_TRUE(a.outputs[t].allClose(b.outputs[t], 0.0f));
    EXPECT_EQ(a.sampleIndices, b.sampleIndices);
    EXPECT_TRUE(a.summary.mean.allClose(b.summary.mean, 0.0f));
    EXPECT_TRUE(a.summary.variance.allClose(b.summary.variance, 0.0f));
    EXPECT_EQ(a.summary.argmax, b.summary.argmax);
    EXPECT_EQ(a.summary.maxProbability, b.summary.maxProbability);
    EXPECT_EQ(a.census.requested, b.census.requested);
    EXPECT_EQ(a.census.survived, b.census.survived);
    EXPECT_EQ(a.census.degraded, b.census.degraded);
    ASSERT_EQ(a.census.failures.size(), b.census.failures.size());
    for (std::size_t i = 0; i < a.census.failures.size(); ++i) {
        EXPECT_EQ(a.census.failures[i].sample,
                  b.census.failures[i].sample);
        EXPECT_EQ(a.census.failures[i].code,
                  b.census.failures[i].code);
    }
}

} // namespace

// ---------------------------------------------------------------------
// FaultPlan primitives
// ---------------------------------------------------------------------

TEST(FaultPlan, AppliesToTargetsOneSampleOrAll)
{
    FaultSpec one;
    one.sample = 3;
    EXPECT_TRUE(FaultPlan::appliesTo(one, 3));
    EXPECT_FALSE(FaultPlan::appliesTo(one, 4));
    FaultSpec all;
    all.sample = kEverySample;
    EXPECT_TRUE(FaultPlan::appliesTo(all, 0));
    EXPECT_TRUE(FaultPlan::appliesTo(all, 999));
}

TEST(FaultPlan, KillRandomSamplesIsDeterministicAndDistinct)
{
    FaultPlan a(123), b(123), c(77);
    a.killRandomSamples(4, 16);
    b.killRandomSamples(4, 16);
    c.killRandomSamples(4, 16);
    ASSERT_EQ(a.specs().size(), 4u);
    std::vector<std::size_t> va, vb, vc;
    for (std::size_t i = 0; i < 4; ++i) {
        va.push_back(a.specs()[i].sample);
        vb.push_back(b.specs()[i].sample);
        vc.push_back(c.specs()[i].sample);
        EXPECT_LT(a.specs()[i].sample, 16u);
        EXPECT_EQ(a.specs()[i].kind, FaultKind::SampleKill);
    }
    EXPECT_EQ(va, vb);  // same seed, same victims
    EXPECT_NE(va, vc);  // different seed, different victims
    // Victims are distinct.
    for (std::size_t i = 0; i < va.size(); ++i)
        for (std::size_t j = i + 1; j < va.size(); ++j)
            EXPECT_NE(va[i], va[j]);
    for (std::size_t t = 0; t < 16; ++t) {
        const bool expected =
            std::find(va.begin(), va.end(), t) != va.end();
        EXPECT_EQ(a.sampleKilled(t), expected) << "sample " << t;
    }
}

TEST(FaultPlan, LayerTargetedSpecNeedsLayerName)
{
    FaultPlan plan;
    FaultSpec spec;
    spec.kind = FaultKind::ActivationNaN;
    EXPECT_DEATH(plan.add(spec), "layer");
}

TEST(FaultPlan, KindNamesAreStable)
{
    EXPECT_STREQ(faultKindName(FaultKind::WeightBitFlip),
                 "WeightBitFlip");
    EXPECT_STREQ(faultKindName(FaultKind::SampleKill), "SampleKill");
}

TEST(StuckBrngTest, ConstantFromConfiguredDraw)
{
    auto inner = std::make_unique<SoftwareBrng>(0.5, 9);
    auto reference = std::make_unique<SoftwareBrng>(0.5, 9);
    StuckBrng stuck(std::move(inner), 4, true);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(stuck.nextBit(), reference->nextBit()) << i;
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_TRUE(stuck.nextBit());
    EXPECT_EQ(stuck.dropRate(), 0.5);
}

// ---------------------------------------------------------------------
// Weight faults
// ---------------------------------------------------------------------

TEST(WeightFaults, FlipChangesValueAndDoubleFlipRestores)
{
    Network net = tinyBcnn();
    auto &conv =
        static_cast<Conv2d &>(net.layer(net.findNode("c1")));
    const float before = conv.weights().at(0);

    FaultPlan plan;
    FaultSpec spec;
    spec.kind = FaultKind::WeightBitFlip;
    spec.layer = "c1";
    spec.element = 0;
    spec.bit = 30;
    plan.add(spec);

    Expected<std::size_t> flips = applyWeightFaults(net, plan);
    ASSERT_TRUE(flips.hasValue());
    EXPECT_EQ(flips.value(), 1u);
    EXPECT_NE(conv.weights().at(0), before);

    Expected<std::size_t> again = applyWeightFaults(net, plan);
    ASSERT_TRUE(again.hasValue());
    EXPECT_EQ(conv.weights().at(0), before);  // XOR is an involution
}

TEST(WeightFaults, UnknownLayerIsError)
{
    Network net = tinyBcnn();
    FaultPlan plan;
    FaultSpec spec;
    spec.kind = FaultKind::WeightBitFlip;
    spec.layer = "ghost";
    plan.add(spec);
    Expected<std::size_t> result = applyWeightFaults(net, plan);
    ASSERT_FALSE(result.hasValue());
    EXPECT_EQ(result.error().code(), ErrorCode::NotFound);
}

TEST(WeightFaults, ParameterlessLayerIsError)
{
    Network net = tinyBcnn();
    FaultPlan plan;
    FaultSpec spec;
    spec.kind = FaultKind::WeightBitFlip;
    spec.layer = "r1";  // ReLU holds no parameters
    plan.add(spec);
    Expected<std::size_t> result = applyWeightFaults(net, plan);
    ASSERT_FALSE(result.hasValue());
    EXPECT_EQ(result.error().code(), ErrorCode::InvalidArgument);
}

// ---------------------------------------------------------------------
// Option validation at the boundary
// ---------------------------------------------------------------------

TEST(McValidation, RejectsBadValuesWithPrintedOffender)
{
    McOptions opts = baseOptions();
    opts.samples = 0;
    Status s = validateMcOptions(opts);
    EXPECT_EQ(s.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(s.message().find("got 0"), std::string::npos);

    opts = baseOptions();
    opts.dropRate = 1.5;
    s = validateMcOptions(opts);
    EXPECT_EQ(s.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(s.message().find("1.5"), std::string::npos);

    opts = baseOptions();
    opts.dropRate = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(validateMcOptions(opts).isOk());

    opts = baseOptions();
    opts.threads = kMaxMcThreads + 1;
    EXPECT_FALSE(validateMcOptions(opts).isOk());

    opts = baseOptions(4);
    opts.quorum = 5;
    s = validateMcOptions(opts);
    EXPECT_EQ(s.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(s.message().find("quorum"), std::string::npos);

    opts = baseOptions();
    opts.deadlineMs = -1.0;
    EXPECT_FALSE(validateMcOptions(opts).isOk());

    EXPECT_TRUE(validateMcOptions(baseOptions()).isOk());
}

TEST(McValidation, TryRunnerReturnsOptionErrorsInsteadOfDying)
{
    const Network net = tinyBcnn();
    const Tensor in = ones(Shape({1, 6, 6}));
    McOptions opts = baseOptions();
    opts.samples = 0;
    Expected<McResult> r = tryRunMcDropout(net, in, opts);
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().code(), ErrorCode::InvalidArgument);
}

TEST(McValidation, WrongInputShapeIsError)
{
    const Network net = tinyBcnn();
    Expected<McResult> r =
        tryRunMcDropout(net, ones(Shape({1, 5, 5})), baseOptions());
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(r.error().message().find("shape"), std::string::npos);
}

// ---------------------------------------------------------------------
// Graceful degradation: the guarded runner
// ---------------------------------------------------------------------

TEST(Degradation, KilledSamplesDegradeToSurvivors)
{
    const Network net = tinyBcnn();
    const Tensor in = ones(Shape({1, 6, 6}));
    McOptions opts = baseOptions(8);

    const McResult clean = runMcDropout(net, in, opts);

    FaultPlan plan(2026);
    plan.killRandomSamples(3, opts.samples);
    opts.faults = &plan;
    const McResult hurt = runMcDropout(net, in, opts);

    EXPECT_TRUE(hurt.degraded());
    EXPECT_EQ(hurt.census.requested, 8u);
    EXPECT_EQ(hurt.census.survived, 5u);
    EXPECT_EQ(hurt.outputs.size(), 5u);
    EXPECT_EQ(hurt.masks.size(), 5u);
    EXPECT_EQ(hurt.sampleIndices.size(), 5u);
    ASSERT_EQ(hurt.census.failures.size(), 3u);
    for (const SampleFailure &f : hurt.census.failures) {
        EXPECT_EQ(f.code, ErrorCode::FaultInjected);
        EXPECT_TRUE(plan.sampleKilled(f.sample));
    }
    // Survivors are the clean run's samples, bit for bit: per-sample
    // seeding means a casualty cannot perturb its neighbours.
    for (std::size_t i = 0; i < hurt.outputs.size(); ++i) {
        const std::size_t t = hurt.sampleIndices[i];
        EXPECT_FALSE(plan.sampleKilled(t));
        EXPECT_TRUE(hurt.outputs[i].allClose(clean.outputs[t], 0.0f));
    }
}

TEST(Degradation, PartialSummaryMatchesIndependentStatistics)
{
    const Network net = tinyBcnn();
    const Tensor in = ones(Shape({1, 6, 6}));
    McOptions opts = baseOptions(10);
    FaultPlan plan(5);
    plan.killRandomSamples(4, opts.samples);
    opts.faults = &plan;

    const McResult res = runMcDropout(net, in, opts);
    ASSERT_EQ(res.outputs.size(), 6u);

    // Recompute the summary from the survivor outputs alone; the
    // runner must agree exactly (it averages over T', not T).
    const UncertaintySummary expected = summarizeSamples(res.outputs);
    EXPECT_TRUE(res.summary.mean.allClose(expected.mean, 0.0f));
    EXPECT_TRUE(res.summary.variance.allClose(expected.variance, 0.0f));
    EXPECT_EQ(res.summary.predictiveEntropy,
              expected.predictiveEntropy);
    EXPECT_EQ(res.summary.expectedEntropy, expected.expectedEntropy);
    EXPECT_EQ(res.summary.mutualInformation,
              expected.mutualInformation);
    EXPECT_EQ(res.summary.argmax, expected.argmax);
    EXPECT_EQ(res.summary.maxProbability, expected.maxProbability);
}

TEST(Degradation, NaNPoisonedSampleDiesAloneWithNonFiniteCode)
{
    const Network net = tinyBcnn();
    const Tensor in = ones(Shape({1, 6, 6}));
    McOptions opts = baseOptions(6);
    FaultPlan plan;
    FaultSpec spec;
    spec.kind = FaultKind::ActivationNaN;
    // Poison the final layer: NaN injected before a ReLU would be
    // squashed to 0 (NaN > 0 is false), masking the fault.
    spec.layer = "d2";
    spec.sample = 2;
    plan.add(spec);
    opts.faults = &plan;

    const McResult res = runMcDropout(net, in, opts);
    EXPECT_EQ(res.census.survived, 5u);
    ASSERT_EQ(res.census.failures.size(), 1u);
    EXPECT_EQ(res.census.failures[0].sample, 2u);
    EXPECT_EQ(res.census.failures[0].code, ErrorCode::NonFinite);
    EXPECT_NE(res.census.failures[0].reason.find("non-finite"),
              std::string::npos);
    for (const Tensor &out : res.outputs)
        for (float v : out.data())
            EXPECT_TRUE(std::isfinite(v));
}

TEST(Degradation, InfPoisonEverySampleFailsTheRun)
{
    const Network net = tinyBcnn();
    const Tensor in = ones(Shape({1, 6, 6}));
    McOptions opts = baseOptions(4);
    FaultPlan plan;
    FaultSpec spec;
    spec.kind = FaultKind::ActivationInf;
    spec.layer = "d2";
    spec.sample = kEverySample;
    plan.add(spec);
    opts.faults = &plan;

    Expected<McResult> r = tryRunMcDropout(net, in, opts);
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().code(), ErrorCode::QuorumNotMet);
}

TEST(Degradation, ActivationBitFlipPerturbsOnlyItsSample)
{
    const Network net = tinyBcnn();
    const Tensor in = ones(Shape({1, 6, 6}));
    McOptions opts = baseOptions(4);
    const McResult clean = runMcDropout(net, in, opts);

    FaultPlan plan;
    FaultSpec spec;
    spec.kind = FaultKind::ActivationBitFlip;
    // Flip a bit of the final output, where nothing downstream (ReLU
    // squashing, dropout zeroing) can mask the damage.
    spec.layer = "d2";
    spec.sample = 1;
    spec.element = 7;
    spec.bit = 22;
    plan.add(spec);
    opts.faults = &plan;
    const McResult hurt = runMcDropout(net, in, opts);

    // The flip perturbs the value but keeps it finite, so the sample
    // survives with a different output; every other sample is
    // untouched.
    EXPECT_FALSE(hurt.degraded());
    ASSERT_EQ(hurt.outputs.size(), 4u);
    EXPECT_FALSE(hurt.outputs[1].allClose(clean.outputs[1], 0.0f));
    for (std::size_t t : {std::size_t{0}, std::size_t{2},
                          std::size_t{3}})
        EXPECT_TRUE(hurt.outputs[t].allClose(clean.outputs[t], 0.0f));
}

TEST(Degradation, CorruptedMaskAndStuckBrngPerturbDeterministically)
{
    const Network net = tinyBcnn();
    const Tensor in = ones(Shape({1, 6, 6}));
    McOptions opts = baseOptions(3);
    const McResult clean = runMcDropout(net, in, opts);

    for (FaultKind kind :
         {FaultKind::MaskCorrupt, FaultKind::StuckBrng}) {
        FaultPlan plan;
        FaultSpec spec;
        spec.kind = kind;
        spec.layer = "d1";  // ignored by StuckBrng
        spec.sample = 0;
        spec.element = kAllElements;
        spec.fromDraw = 0;
        spec.stuckBit = true;  // every Bernoulli draw says "drop"
        if (kind == FaultKind::StuckBrng)
            spec.layer.clear();
        plan.add(spec);
        McOptions faulted = opts;
        faulted.faults = &plan;

        const McResult a = runMcDropout(net, in, faulted);
        const McResult b = runMcDropout(net, in, faulted);
        expectBitIdentical(a, b);
        EXPECT_FALSE(a.outputs[0].allClose(clean.outputs[0], 0.0f))
            << faultKindName(kind);
        EXPECT_TRUE(a.outputs[1].allClose(clean.outputs[1], 0.0f))
            << faultKindName(kind);
    }
}

TEST(Degradation, PoisonedWeightsFailTheWholeRun)
{
    // A net whose last layer is the conv: a trailing ReLU would squash
    // the NaN (NaN > 0 is false) and hide the poisoning.
    Network net("tail", Shape({1, 6, 6}));
    net.add(std::make_unique<Conv2d>("c1", 1, 2, 3, 1, 1));
    net.add(std::make_unique<ReLU>("r1"));
    net.add(std::make_unique<Dropout>("d1", 0.3));
    net.add(std::make_unique<Conv2d>("c2", 2, 3, 3));
    InitOptions init;
    init.seed = 3;
    initializeWeights(net, init);
    auto &conv =
        static_cast<Conv2d &>(net.layer(net.findNode("c2")));
    conv.weights().at(0) = std::numeric_limits<float>::quiet_NaN();

    Expected<McResult> r = tryRunMcDropout(
        net, ones(Shape({1, 6, 6})), baseOptions(4));
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().code(), ErrorCode::NonFinite);
    EXPECT_NE(r.error().message().find("pre-inference"),
              std::string::npos);
}

TEST(Degradation, QuorumFailsWhenTooFewSurvive)
{
    const Network net = tinyBcnn();
    const Tensor in = ones(Shape({1, 6, 6}));
    McOptions opts = baseOptions(6);
    opts.quorum = 4;
    FaultPlan plan(1);
    plan.killRandomSamples(3, opts.samples);  // T' = 3 < quorum 4
    opts.faults = &plan;

    Expected<McResult> r = tryRunMcDropout(net, in, opts);
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().code(), ErrorCode::QuorumNotMet);
    EXPECT_NE(r.error().message().find("quorum"), std::string::npos);

    opts.quorum = 3;  // exactly met
    Expected<McResult> ok = tryRunMcDropout(net, in, opts);
    ASSERT_TRUE(ok.hasValue());
    EXPECT_EQ(ok.value().census.survived, 3u);
}

TEST(Degradation, LegacyWrapperDiesOnRunLevelError)
{
    const Network net = tinyBcnn();
    const Tensor in = ones(Shape({1, 6, 6}));
    McOptions opts = baseOptions(4);
    opts.quorum = 4;
    FaultPlan plan;
    FaultSpec spec;
    spec.kind = FaultKind::SampleKill;
    spec.sample = 0;
    plan.add(spec);
    opts.faults = &plan;
    EXPECT_DEATH(runMcDropout(net, in, opts), "quorum");
}

TEST(Degradation, ZeroSamplesSurvivingAlwaysFails)
{
    const Network net = tinyBcnn();
    const Tensor in = ones(Shape({1, 6, 6}));
    McOptions opts = baseOptions(2);
    FaultPlan plan;
    FaultSpec spec;
    spec.kind = FaultKind::SampleKill;
    spec.sample = kEverySample;
    plan.add(spec);
    opts.faults = &plan;
    // quorum 0 means "any", but an average needs >= 1 survivor.
    Expected<McResult> r = tryRunMcDropout(net, in, opts);
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().code(), ErrorCode::QuorumNotMet);
}

TEST(Degradation, ExpiredDeadlineStillRunsSampleZero)
{
    const Network net = tinyBcnn();
    const Tensor in = ones(Shape({1, 6, 6}));
    McOptions opts = baseOptions(5);
    opts.deadlineMs = 1e-9;  // expires before sample 1 can launch

    const McResult res = runMcDropout(net, in, opts);
    EXPECT_TRUE(res.degraded());
    EXPECT_GE(res.census.survived, 1u);
    ASSERT_GE(res.census.failures.size(), 1u);
    for (const SampleFailure &f : res.census.failures) {
        EXPECT_EQ(f.code, ErrorCode::DeadlineExceeded);
        EXPECT_GT(f.sample, 0u);  // sample 0 always launches
    }
    // A generous deadline changes nothing.
    McOptions lax = baseOptions(5);
    lax.deadlineMs = 1e9;
    EXPECT_FALSE(runMcDropout(net, in, lax).degraded());
}

TEST(Degradation, GuardOffMatchesGuardOnWhenClean)
{
    const Network net = tinyBcnn();
    const Tensor in = ones(Shape({1, 6, 6}));
    McOptions guarded = baseOptions(6);
    McOptions unguarded = baseOptions(6);
    unguarded.sampleGuard = false;
    expectBitIdentical(runMcDropout(net, in, guarded),
                       runMcDropout(net, in, unguarded));
}

// ---------------------------------------------------------------------
// ConcurrencyFault: faulted runs across worker threads (tsan workload)
// ---------------------------------------------------------------------

TEST(ConcurrencyFault, DegradedRunBitIdenticalForAnyThreadCount)
{
    const Network net = tinyBcnn();
    const Tensor in = ones(Shape({1, 6, 6}));
    McOptions opts = baseOptions(8);
    FaultPlan plan(99);
    plan.killRandomSamples(2, opts.samples);
    FaultSpec nan_spec;
    nan_spec.kind = FaultKind::ActivationNaN;
    nan_spec.layer = "d2";
    nan_spec.sample = 5;
    plan.add(nan_spec);
    opts.faults = &plan;

    // The NaN victim may coincide with a random kill victim.
    const std::size_t casualties =
        2 + (plan.sampleKilled(5) ? 0 : 1);
    opts.threads = 1;
    const McResult serial = runMcDropout(net, in, opts);
    EXPECT_TRUE(serial.degraded());
    EXPECT_EQ(serial.census.survived, 8u - casualties);
    for (std::size_t threads : {std::size_t{0}, std::size_t{2},
                                std::size_t{4}, std::size_t{8}}) {
        opts.threads = threads;
        expectBitIdentical(serial, runMcDropout(net, in, opts));
    }
}

TEST(ConcurrencyFault, SharedPlanAcrossConcurrentCallers)
{
    const Network net = tinyBcnn();
    const Tensor in = ones(Shape({1, 6, 6}));
    FaultPlan plan(7);
    plan.killRandomSamples(2, 6);
    McOptions opts = baseOptions(6);
    opts.faults = &plan;
    opts.threads = 2;
    opts.recordMasks = false;

    const McResult reference = runMcDropout(net, in, opts);

    // The plan is shared read-only by every worker of every caller.
    constexpr std::size_t callers = 4;
    std::vector<McResult> results(callers);
    std::vector<std::thread> pool;
    pool.reserve(callers);
    for (std::size_t i = 0; i < callers; ++i) {
        pool.emplace_back([&, i]() {
            results[i] = runMcDropout(net, in, opts);
        });
    }
    for (std::thread &th : pool)
        th.join();
    for (const McResult &res : results)
        expectBitIdentical(reference, res);
}

// ---------------------------------------------------------------------
// Engine boundary
// ---------------------------------------------------------------------

TEST(EngineBoundary, CreateRejectsBadOptions)
{
    EngineOptions opts;
    opts.mc.samples = 0;
    Expected<std::unique_ptr<FastBcnnEngine>> engine =
        FastBcnnEngine::create(tinyBcnn(), opts);
    ASSERT_FALSE(engine.hasValue());
    EXPECT_EQ(engine.error().code(), ErrorCode::InvalidArgument);
    // The context names the offending block.
    EXPECT_NE(engine.error().toString().find("EngineOptions::mc"),
              std::string::npos);
}

TEST(EngineBoundary, ValidateCoversEveryBlock)
{
    EngineOptions opts;
    EXPECT_TRUE(validateEngineOptions(opts).isOk());
    opts.optimizer.confidence = 1.5;
    EXPECT_FALSE(validateEngineOptions(opts).isOk());
    opts.optimizer.confidence = 0.9;
    opts.config.tm = 0;
    EXPECT_FALSE(validateEngineOptions(opts).isOk());
}

TEST(EngineBoundary, TryCalibrateAndTryInferReturnErrors)
{
    EngineOptions opts;
    opts.mc.samples = 2;
    opts.optimizer.samples = 2;
    Expected<std::unique_ptr<FastBcnnEngine>> created =
        FastBcnnEngine::create(tinyBcnn(), opts);
    ASSERT_TRUE(created.hasValue());
    FastBcnnEngine &engine = *created.value();

    EXPECT_EQ(engine.tryCalibrate({}).code(),
              ErrorCode::InvalidArgument);
    EXPECT_EQ(engine.tryCalibrate({ones(Shape({2, 6, 6}))}).code(),
              ErrorCode::InvalidArgument);

    // tryInfer refuses to self-calibrate.
    Expected<EngineResult> premature =
        engine.tryInfer(ones(Shape({1, 6, 6})));
    ASSERT_FALSE(premature.hasValue());
    EXPECT_NE(premature.error().message().find("not calibrated"),
              std::string::npos);

    ASSERT_TRUE(engine.tryCalibrate({ones(Shape({1, 6, 6}))}).isOk());
    EXPECT_TRUE(engine.calibrated());
    EXPECT_FALSE(engine.tryInfer(ones(Shape({1, 5, 5}))).hasValue());
    Expected<EngineResult> good =
        engine.tryInfer(ones(Shape({1, 6, 6})));
    ASSERT_TRUE(good.hasValue());
    EXPECT_GT(good.value().speedup, 0.0);
}

TEST(EngineBoundary, McReferenceReportsDegradationCensus)
{
    FaultPlan plan(31);
    plan.killRandomSamples(2, 6);
    EngineOptions opts;
    opts.mc.samples = 6;
    opts.mc.faults = &plan;
    opts.optimizer.samples = 2;
    FastBcnnEngine engine(tinyBcnn(), opts);

    Expected<McResult> ref = engine.tryMcReference(ones(Shape({1, 6, 6})));
    ASSERT_TRUE(ref.hasValue());
    EXPECT_TRUE(ref.value().degraded());
    EXPECT_EQ(ref.value().census.survived, 4u);

    // The census slots straight into a SimReport for rendering.
    SimReport report;
    report.degradation = ref.value().census;
    EXPECT_TRUE(report.degradation.degraded);
}

TEST(EngineBoundary, ConstructorStillDiesOnBadOptionsForLegacyCallers)
{
    EngineOptions opts;
    opts.mc.dropRate = 2.0;
    EXPECT_DEATH(FastBcnnEngine(tinyBcnn(), opts), "dropRate");
}

// ---------------------------------------------------------------------
// Sim-report rendering of the census
// ---------------------------------------------------------------------

TEST(DegradationReport, SummaryLineAggregatesByCode)
{
    DegradationCensus census;
    census.requested = 50;
    census.survived = 47;
    census.degraded = true;
    census.failures = {
        {3, ErrorCode::FaultInjected, "injected"},
        {9, ErrorCode::NonFinite, "nan"},
        {17, ErrorCode::FaultInjected, "injected"},
    };
    const std::string line = degradationSummary(census);
    EXPECT_NE(line.find("47/50 samples survived"), std::string::npos);
    EXPECT_NE(line.find("degraded"), std::string::npos);
    EXPECT_NE(line.find("2 FaultInjected"), std::string::npos);
    EXPECT_NE(line.find("1 NonFinite"), std::string::npos);

    DegradationCensus clean;
    clean.requested = clean.survived = 8;
    EXPECT_EQ(degradationSummary(clean), "8/8 samples survived");
}

TEST(DegradationReport, TablePrintsEveryCasualty)
{
    DegradationCensus census;
    census.requested = 4;
    census.survived = 3;
    census.degraded = true;
    census.failures = {{2, ErrorCode::DeadlineExceeded,
                        "not launched"}};
    std::ostringstream os;
    printDegradation(census, os);
    EXPECT_NE(os.str().find("DeadlineExceeded"), std::string::npos);
    EXPECT_NE(os.str().find("not launched"), std::string::npos);

    std::ostringstream clean_os;
    printDegradation(DegradationCensus{}, clean_os);
    EXPECT_EQ(clean_os.str().find("reason"), std::string::npos);
}
