// Hot-path rule fixture: one clean FASTBCNN_HOT kernel (zero
// findings expected), one dirty one, and a non-annotated function
// whose allocations are the compiler's business, not the linter's.
#include <cstddef>
#include <mutex>
#include <vector>

#include "common/check.hpp"

namespace fixture {

// Declaration only: nothing to scan even though it is annotated.
FASTBCNN_HOT void hotDeclared(const float *in, float *out,
                              std::size_t n);

FASTBCNN_HOT void
hotClean(const float *in, float *out, std::size_t n)
{
    FASTBCNN_DCHECK(n > 0, "empty kernel");  // compiles out: allowed
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        acc += in[i];
        out[i] = in[i] > 0.0f ? in[i] : 0.0f;
    }
    out[0] = static_cast<float>(acc);
}

FASTBCNN_HOT void
hotDirty(std::vector<float> &v, std::mutex &m)
{
    std::lock_guard<std::mutex> g(m);  // hot-path x2 (lock_guard, mutex)
    v.push_back(1.0f);                 // hot-path (member growth)
    std::string s;                     // hot-path (allocating type)
    (void)s;
    void *q = _mm_malloc(64, 64);      // hot-path (aligned heap alloc)
    _mm_free(q);                       // hot-path (aligned heap free)
    FASTBCNN_CHECK(v.size() > 0, "grew");  // hot-path (always-on check)
}

// Quant-kernel shape: int32 accumulate + shift requant over raw int8
// pointers, the discipline the int8 inference kernels live under.
// Integer-only arithmetic is fine; scratch must be caller-provided.
FASTBCNN_HOT void
hotQuantClean(const signed char *w, const int *bias, signed char *out,
              std::size_t n, int shift)
{
    for (std::size_t i = 0; i < n; ++i) {
        int acc = bias[i] + 3 * static_cast<int>(w[i]);
        acc += 1 << (shift - 1);
        acc >>= shift;
        out[i] = static_cast<signed char>(
            acc < -128 ? -128 : acc > 127 ? 127 : acc);
    }
}

FASTBCNN_HOT void
hotQuantDirty(const signed char *w, signed char *out, std::size_t n)
{
    std::vector<int> acc(n, 0);  // hot-path (allocating scratch)
    for (std::size_t i = 0; i < n; ++i)
        acc[i] = w[i];
    out[0] = static_cast<signed char>(acc[0]);
}

void
coldIsFine(std::vector<float> &v)
{
    v.push_back(2.0f);  // not annotated: no finding
    float *p = new float(1.0f);
    delete p;
}

} // namespace fixture
