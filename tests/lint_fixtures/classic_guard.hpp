// Classic #ifndef/#define guard: must satisfy the include-guard rule
// exactly like `#pragma once` does (the library tree uses this form).
#ifndef FASTBCNN_TESTS_LINT_FIXTURES_CLASSIC_GUARD_HPP
#define FASTBCNN_TESTS_LINT_FIXTURES_CLASSIC_GUARD_HPP

inline int
guardedHelper(int n)
{
    return n - 1;
}

#endif // FASTBCNN_TESTS_LINT_FIXTURES_CLASSIC_GUARD_HPP
