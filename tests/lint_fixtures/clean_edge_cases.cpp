// Exercises every lexer edge the rules must NOT fire on: banned
// tokens inside comments, string / char / raw-string literals, and
// preprocessor lines.  fastbcnn-lint must report zero findings here
// even when the file is linted under a src/ relpath.

// Comment bait: assert( abort( exit( throw strcpy( rand( time(
/* block comment bait: sprintf( random_device ::now(
   spanning lines: atoi( tryDrop(); */

#include <ctime>  // preproc bait: the include itself names time

#define CLEAN_BAIT_MACRO(x) growable(x)  // macro text is preproc too

namespace fixture {

struct Expected {
    int value = 0;
};

Expected tryFetch(int key);
int consume(const Expected &e);

const char *kStrBait =
    "assert(x); throw 1; strcpy(a, b); rand(); clock::now()";
const char *kRawBait = R"lint(
    sprintf(buf, "%d", 1); std::random_device rd; tryFetch(0);
)lint";
const char kChrBait = 't';

// A u8/wide/raw zoo -- all literal text, none of it code.
const char *kU8 = u8"abort() atoi(\"7\") time(nullptr)";
const wchar_t *kWide = L"exit(1)";
const char *kRawParens = R"(a ) mid " quote srand(7) still string)";

int
useTryResults(int key)
{
    // Every consumption form the discard rule must accept.
    Expected kept = tryFetch(key);
    const int direct = consume(tryFetch(key + 1));
    (void)tryFetch(key + 2);  // explicit discard is deliberate
    if (tryFetch(key + 3).value > 0)
        return direct + kept.value;
    return direct - kept.value;
}

Expected
forward(int key)
{
    return tryFetch(key);  // returned, not discarded
}

// Declarations spell `Expected tryX(...)` -- two adjacent idents, so
// the discard rule must treat them as declarations, not calls.
Expected tryDeclaredOnly(int key);

int
numbers()
{
    // Digit separators and hex floats stress the number lexer.
    const int big = 1'000'000;
    const double hexf = 0x1.8p3;
    return big + static_cast<int>(hexf);
}

} // namespace fixture
