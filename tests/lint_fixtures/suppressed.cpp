// Inline-suppression fixture: every violation here is covered by a
// NOLINT-FASTBCNN marker except the last one, which is covered by the
// WRONG rule name and must still be reported.
#include <cstring>

struct Status {
    static Status ok() { return {}; }
};

Status tryNudge();

int
suppressedViolations(int v)
{
    char buf[16];
    // NOLINTNEXTLINE-FASTBCNN(banned-function): fixture exemption
    strcpy(buf, "x");
    (void)buf;

    strcpy(buf, "y");  // NOLINT-FASTBCNN(banned-function): same line

    // NOLINTNEXTLINE-FASTBCNN(*): wildcard covers every rule
    strcpy(buf, "z");

    // NOLINTNEXTLINE-FASTBCNN(discarded-status, banned-function): list
    tryNudge();

    // NOLINTNEXTLINE-FASTBCNN(determinism): wrong rule -- reported
    strcpy(buf, "w");
    return v;
}
