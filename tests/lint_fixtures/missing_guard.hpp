// Header with neither `#pragma once` nor a classic include guard:
// the include-guard rule must flag it.
#include <cstddef>

inline std::size_t
unguardedHelper(std::size_t n)
{
    return n + 1;
}
