// Deliberately violates several fastbcnn-lint rules.  CI lints this
// file explicitly and REQUIRES a non-zero exit -- if the linter ever
// stops seeing these, the gate itself is broken.  The directory is
// excluded from normal tree walks (see skippedDirName in driver.cpp),
// so these findings never pollute a real run.
#include <cassert>
#include <cstring>
#include <vector>

#include "common/check.hpp"

struct Status {
    static Status ok() { return {}; }
};

Status tryPoke();

int
seededViolations(int v)
{
    assert(v >= 0);                       // error-discipline
    char buf[8];
    strcpy(buf, "x");                     // banned-function
    (void)buf;
    tryPoke();                            // discarded-status
    if (v < 0)
        throw v;                          // error-discipline
    return v;
}

FASTBCNN_HOT int
seededHotViolation(std::vector<int> &v)
{
    v.push_back(1);                       // hot-path
    int *p = new int(3);                  // hot-path
    const int r = *p;
    delete p;                             // hot-path
    return r;
}
